(* The bounded model explorer must (a) exhaust tiny clean configurations
   with zero violations, (b) catch every seeded-bug class the offline
   auditor catches — the broken-engine shims ported from test_audit.ml
   are injected between the real engine and the checkers — and (c) hand
   back counterexample specs that replay byte-identically. *)

module Spec = Mcheck.Spec
module Explorer = Mcheck.Explorer
module Report = Audit.Report
module Trace = Dsim.Trace

let rules (report : Report.t) =
  List.map (fun v -> v.Report.rule) report.Report.violations

let check_flags report rule =
  Alcotest.(check bool)
    (Printf.sprintf "flags %s (got: %s)" rule (String.concat ", " (rules report)))
    true
    (List.mem rule (rules report))

(* ------------------------ clean exhaustion ------------------------- *)

(* The acceptance configuration: n = 2 complete graph, 3 delay choices,
   slow/fast drift, tie-break enumeration — the whole choice tree fits
   under the default depth, so the run is a complete proof over the
   discretized adversary. *)
let test_exhausts_n2_clean () =
  let s = Spec.make ~n:2 () in
  let o = Explorer.explore s in
  Alcotest.(check int) "no violations" 0 (List.length o.Explorer.violations);
  Alcotest.(check bool) "exhausted" true o.Explorer.exhausted;
  Alcotest.(check bool) "tree fits under depth" false o.Explorer.truncated;
  Alcotest.(check bool) "visited several traces" true (o.Explorer.stats.traces > 5);
  Alcotest.(check bool) "deduplicated states" true
    (o.Explorer.stats.distinct_states > 10);
  Alcotest.(check bool) "pruning happened" true (o.Explorer.stats.pruned > 0)

let test_exhausts_n2_churn_and_faults () =
  List.iter
    (fun s ->
      let o = Explorer.explore ~max_violations:1 s in
      Alcotest.(check int)
        (Printf.sprintf "no violations under %s" (Spec.to_spec s))
        0
        (List.length o.Explorer.violations))
    [
      Spec.make ~n:2 ~depth:8 ~horizon:3. ~churn:true ();
      Spec.make ~n:2 ~depth:8 ~horizon:3.
        ~faults:
          [
            Dsim.Fault.Crash { node = 1; at = 1. };
            Dsim.Fault.Restart { node = 1; at = 2.; corrupt = false };
          ]
        ();
    ]

let test_deepening_reaches_verdict () =
  let levels = Explorer.explore_deepening (Spec.make ~n:2 ~depth:16 ()) in
  Alcotest.(check bool) "at least one level" true (levels <> []);
  let last = List.nth levels (List.length levels - 1) in
  Alcotest.(check bool) "final level exhausted" true last.Explorer.outcome.exhausted;
  Alcotest.(check int) "final level clean" 0
    (List.length last.Explorer.outcome.violations);
  (* depths double: each level must explore no shallower than the previous *)
  let ds = List.map (fun (l : Explorer.level) -> l.Explorer.at_depth) levels in
  Alcotest.(check bool) "depths increase" true (List.sort compare ds = ds)

(* ------------------- seeded-bug shims (test_audit) ------------------ *)

(* Each shim presents a specific broken engine to the checkers. The
   explorer must catch it at n = 2 within a shallow depth AND the
   counterexample spec it prints must replay byte-identically — the
   whole point of choice-tape determinism. *)
let explore_catches ?entry_shim ?view_shim rule =
  let s = Spec.make ~n:2 ~depth:8 ~horizon:3. () in
  let o = Explorer.explore ?entry_shim ?view_shim ~max_violations:1 s in
  match o.Explorer.violations with
  | [] -> Alcotest.failf "explorer missed the seeded %s bug" rule
  | { Explorer.spec; report } :: _ ->
    check_flags report rule;
    let r1, c1 = Explorer.replay ?entry_shim ?view_shim spec in
    let r2, c2 = Explorer.replay ?entry_shim ?view_shim spec in
    Alcotest.(check string) "trace CSV replays byte-identically" c1 c2;
    Alcotest.(check string) "report renders byte-identically" (Report.render r1)
      (Report.render r2);
    check_flags r1 rule

(* Late delivery: every Deliver is reported 2T after it happened, so the
   implied delay always exceeds the bound (test_audit's delay shim). *)
let test_catches_late_delivery () =
  explore_catches
    ~entry_shim:(fun e ->
      [ (match e.Trace.kind with
        | Trace.Deliver -> { e with Trace.time = e.Trace.time +. 2. }
        | _ -> e);
      ])
    "delay-exceeds-T"

(* FIFO breakage: the engine claims each message twice; the second copy
   matches no outstanding send (test_audit's deliver-without-send). *)
let test_catches_fifo_violation () =
  explore_catches
    ~entry_shim:(fun e ->
      match e.Trace.kind with Trace.Deliver -> [ e; e ] | _ -> [ e ])
    "deliver-without-send"

(* Discovery loss: the engine never reports edge discoveries, breaking
   the discovery-within-D obligation (end-of-run check). *)
let test_catches_missed_discovery () =
  explore_catches
    ~entry_shim:(fun e ->
      match e.Trace.kind with Trace.Discover_add -> [] | _ -> [ e ])
    "missed-discovery"

(* Legality breach: the algorithm's max estimate underruns its own
   logical clock (test_audit's broken-recovery flavor, seen through the
   validity monitor instead of the trace). *)
let test_catches_legality_breach () =
  explore_catches
    ~view_shim:(fun v ->
      { v with Gcs.Metrics.lmax_of = (fun i -> v.Gcs.Metrics.clock_of i -. 1.) })
    "validity-lmax-dominance"

(* Pinned counterexample: the spec the explorer printed for the legality
   shim when this test was written. Replaying it must keep flagging the
   bug and stay byte-stable — if canonicalization or engine scheduling
   changes the choice tree, this fails loudly. *)
let pinned_cex = "n=2 delays=3 drift=sf horizon=2 depth=6 tie=1 churn=0 choices=0.1.0.0.0.0"

let test_pinned_cex_replays () =
  let spec =
    match Spec.of_spec pinned_cex with
    | Ok s -> s
    | Error m -> Alcotest.failf "pinned spec no longer parses: %s" m
  in
  let view_shim v =
    { v with Gcs.Metrics.lmax_of = (fun i -> v.Gcs.Metrics.clock_of i -. 1.) }
  in
  let r1, c1 = Explorer.replay ~view_shim spec in
  let r2, c2 = Explorer.replay ~view_shim spec in
  check_flags r1 "validity-lmax-dominance";
  Alcotest.(check string) "byte-identical CSV" c1 c2;
  Alcotest.(check string) "byte-identical report" (Report.render r1)
    (Report.render r2);
  (* and the same branch on the unbroken engine is clean *)
  let clean, _ = Explorer.replay spec in
  Alcotest.(check bool)
    (Printf.sprintf "clean without the shim (got: %s)"
       (String.concat ", " (rules clean)))
    true (Report.ok clean)

let test_shrink_keeps_failure () =
  let view_shim v =
    { v with Gcs.Metrics.lmax_of = (fun i -> v.Gcs.Metrics.clock_of i -. 1.) }
  in
  let s = Spec.make ~n:2 ~depth:8 ~horizon:4. () in
  let o = Explorer.explore ~view_shim ~max_violations:1 s in
  match o.Explorer.violations with
  | [] -> Alcotest.fail "no counterexample to shrink"
  | { Explorer.spec; _ } :: _ ->
    let shrunk = Explorer.shrink ~view_shim spec in
    let r, _ = Explorer.replay ~view_shim shrunk in
    Alcotest.(check bool) "shrunk spec still fails" false (Report.ok r);
    Alcotest.(check bool) "no larger than the original" true
      (List.length shrunk.Spec.choices <= List.length spec.Spec.choices
      && shrunk.Spec.horizon <= spec.Spec.horizon)

(* --------------------- incremental == batch ------------------------ *)

let small_sim ?(n = 3) ?(scheduler = Gcs.Sim.Heap) ?(shards = 1) ?delay () =
  let params = Gcs.Params.make ~n () in
  let rho = params.Gcs.Params.rho in
  let clocks =
    Array.init n (fun i ->
        if i land 1 = 0 then Dsim.Hwclock.fastest ~rho else Dsim.Hwclock.slowest ~rho)
  in
  let delay =
    match delay with
    | Some d -> d
    | None -> Dsim.Delay.maximal ~bound:params.Gcs.Params.delay_bound
  in
  let trace = Trace.create ~log_limit:200_000 () in
  let cfg =
    Gcs.Sim.config ~algo:Gcs.Sim.Gradient ~scheduler ~shards ~params ~clocks ~delay
      ~trace
      ~initial_edges:(List.init (n - 1) (fun i -> (i, i + 1)))
      ()
  in
  (Gcs.Sim.create cfg, trace, params)

let test_incremental_matches_batch () =
  let sim, trace, params = small_sim () in
  Gcs.Sim.run_until sim 6.;
  let entries = Trace.entries trace in
  Alcotest.(check bool) "trace is non-trivial" true (List.length entries > 20);
  let cfg = Audit.Conformance.of_params params ~horizon:6. () in
  let batch = Audit.Conformance.audit cfg entries in
  let st = Audit.Conformance.create cfg in
  List.iter
    (fun e ->
      Audit.Conformance.step st e;
      ignore (Audit.Conformance.violation_count st))
    entries;
  let incremental = Audit.Conformance.finish st in
  Alcotest.(check string) "same report" (Report.render batch)
    (Report.render incremental)

(* ------------------------ tie-break hook --------------------------- *)

let test_tie_break_identity_hook_is_noop () =
  let run hook =
    let sim, trace, _ = small_sim () in
    Option.iter (fun h -> Dsim.Engine.set_tie_break (Gcs.Sim.engine sim) (Some h)) hook;
    Gcs.Sim.run_until sim 8.;
    Trace.to_csv trace
  in
  let groups = ref 0 in
  let baseline = run None in
  let hooked =
    run
      (Some
         (fun k ->
           if k > 1 then incr groups;
           0))
  in
  Alcotest.(check string) "always-0 hook reproduces default order" baseline hooked;
  Alcotest.(check bool) "hook saw same-instant groups" true (!groups > 0)

let test_tie_break_out_of_range_raises () =
  let sim, _, _ = small_sim () in
  Dsim.Engine.set_tie_break (Gcs.Sim.engine sim) (Some (fun k -> k));
  Alcotest.check_raises "out-of-range choice"
    (Invalid_argument "Engine tie-break hook returned an out-of-range choice")
    (fun () -> Gcs.Sim.run_until sim 4.)

let test_tie_break_rejects_wheel_and_shards () =
  let sim, _, _ = small_sim ~scheduler:Gcs.Sim.Wheel () in
  (try
     Dsim.Engine.set_tie_break (Gcs.Sim.engine sim) (Some (fun _ -> 0));
     Alcotest.fail "wheel scheduler accepted a tie-break hook"
   with Invalid_argument _ -> ());
  let sim, _, _ = small_sim ~n:4 ~shards:2 () in
  try
    Dsim.Engine.set_tie_break (Gcs.Sim.engine sim) (Some (fun _ -> 0));
    Alcotest.fail "sharded engine accepted a tie-break hook"
  with Invalid_argument _ -> ()

(* ------------------------ clamp regression ------------------------- *)

(* A delay policy drawing outside [0, T] is clamped AND reported: one
   Delay_clamped record per clamped draw. The clamped execution itself
   stays legal — the auditor must not flag it. *)
let test_out_of_range_delay_draw_traced () =
  let params = Gcs.Params.make ~n:2 () in
  let calls = ref 0 in
  let delay =
    Dsim.Delay.directed ~bound:params.Gcs.Params.delay_bound
      (fun ~src:_ ~dst:_ ~now:_ ->
        incr calls;
        if !calls land 1 = 1 then -3. else 9.)
  in
  let sim, trace, _ = small_sim ~n:2 ~delay () in
  Gcs.Sim.run_until sim 4.;
  let sends = Trace.count trace Trace.Send in
  Alcotest.(check bool) "messages were sent" true (sends > 0);
  Alcotest.(check int) "every draw was clamped and traced" sends
    (Trace.count trace Trace.Delay_clamped);
  let report =
    Audit.Conformance.audit
      (Audit.Conformance.of_params params ~horizon:4. ())
      (Trace.entries trace)
  in
  Alcotest.(check bool)
    (Printf.sprintf "clamped delays stay within the model (got: %s)"
       (String.concat ", " (rules report)))
    true (Report.ok report)

(* --------------------------- spec format --------------------------- *)

let test_spec_round_trip () =
  List.iter
    (fun s ->
      match Spec.of_spec (Spec.to_spec s) with
      | Ok s' ->
        Alcotest.(check string)
          (Printf.sprintf "round-trips (%s)" (Spec.to_spec s))
          (Spec.to_spec s) (Spec.to_spec s');
        Alcotest.(check bool) "structurally equal" true (s = s')
      | Error m -> Alcotest.failf "failed to parse own spec: %s" m)
    [
      Spec.make ~n:2 ();
      Spec.make ~n:3 ~delays:1 ~drift:"nnn" ~horizon:2.5 ~depth:7 ~tie:false
        ~choices:[ 0; 2; 1 ] ();
      Spec.make ~n:3 ~churn:true
        ~faults:
          [
            Dsim.Fault.Crash { node = 2; at = 1. };
            Dsim.Fault.Restart { node = 2; at = 2.; corrupt = false };
          ]
        ();
    ]

let test_spec_rejects_garbage () =
  List.iter
    (fun bad ->
      match Spec.of_spec bad with
      | Ok _ -> Alcotest.failf "accepted %S" bad
      | Error _ -> ())
    [
      "";
      "n=1 delays=3 drift=s horizon=4 depth=2 tie=1 churn=0 choices=-";
      "n=2 delays=3 drift=xy horizon=4 depth=2 tie=1 churn=0 choices=-";
      "n=2 delays=3 drift=sf horizon=4 depth=2 tie=1 churn=0 choices=0.-1";
      "n=2 delays=3 drift=sf horizon=4 depth=2 tie=1 churn=0";
    ]

let test_replay_diverged_is_detected () =
  (* the first choice group at t=0 has 2 options; forcing option 7 there
     cannot describe any execution of this configuration *)
  let s = Spec.make ~n:2 ~choices:[ 7 ] () in
  try
    ignore (Explorer.replay s);
    Alcotest.fail "out-of-range tape accepted"
  with Explorer.Replay_diverged _ -> ()

let test_roots_grid () =
  Alcotest.(check int) "2^n drift assignments" 4
    (List.length (Explorer.roots ~n:2 ()));
  Alcotest.(check int) "fault grid doubles" 8
    (List.length (Explorer.roots ~n:2 ~fault_grid:true ()));
  List.iter
    (fun s ->
      match Spec.validate s with
      | Ok () -> ()
      | Error m -> Alcotest.failf "invalid root %s: %s" (Spec.to_spec s) m)
    (Explorer.roots ~n:3 ~fault_grid:true ())

(* ------------------------- TLA+ export ----------------------------- *)

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

let test_tla_export_shape () =
  let s = Spec.make ~n:2 ~depth:6 ~horizon:2. () in
  let samples = Explorer.samples s in
  Alcotest.(check bool) "collected samples" true (List.length samples > 3);
  let m = Mcheck.Tla.export ~module_name:"McheckTrace_test" s samples in
  List.iter
    (fun needle ->
      Alcotest.(check bool) (Printf.sprintf "module contains %S" needle) true
        (contains ~needle m))
    [
      "MODULE McheckTrace_test"; "Trace == <<"; "SampleOk(a, b)";
      "StepOk"; "RATE_CHECK == TRUE"; "EXTENDS Integers, Sequences";
    ];
  (* deterministic: exporting twice is byte-identical *)
  Alcotest.(check string) "stable output" m
    (Mcheck.Tla.export ~module_name:"McheckTrace_test" s samples)

let suite =
  [
    Alcotest.test_case "exhausts clean n=2 configuration" `Quick
      test_exhausts_n2_clean;
    Alcotest.test_case "clean under churn and faults" `Quick
      test_exhausts_n2_churn_and_faults;
    Alcotest.test_case "iterative deepening reaches a verdict" `Quick
      test_deepening_reaches_verdict;
    Alcotest.test_case "catches late delivery (shim)" `Quick
      test_catches_late_delivery;
    Alcotest.test_case "catches FIFO violation (shim)" `Quick
      test_catches_fifo_violation;
    Alcotest.test_case "catches missed discovery (shim)" `Quick
      test_catches_missed_discovery;
    Alcotest.test_case "catches legality breach (shim)" `Quick
      test_catches_legality_breach;
    Alcotest.test_case "pinned counterexample replays byte-identically" `Quick
      test_pinned_cex_replays;
    Alcotest.test_case "shrinking preserves the failure" `Quick
      test_shrink_keeps_failure;
    Alcotest.test_case "incremental audit equals batch audit" `Quick
      test_incremental_matches_batch;
    Alcotest.test_case "identity tie-break hook is a no-op" `Quick
      test_tie_break_identity_hook_is_noop;
    Alcotest.test_case "out-of-range tie-break choice raises" `Quick
      test_tie_break_out_of_range_raises;
    Alcotest.test_case "tie-break hook rejects wheel/shards" `Quick
      test_tie_break_rejects_wheel_and_shards;
    Alcotest.test_case "out-of-range delay draws are clamped and traced" `Quick
      test_out_of_range_delay_draw_traced;
    Alcotest.test_case "spec round-trips" `Quick test_spec_round_trip;
    Alcotest.test_case "spec rejects garbage" `Quick test_spec_rejects_garbage;
    Alcotest.test_case "replay divergence is detected" `Quick
      test_replay_diverged_is_detected;
    Alcotest.test_case "root grid enumerates drift x faults" `Quick
      test_roots_grid;
    Alcotest.test_case "TLA export is well-formed and stable" `Quick
      test_tla_export_shape;
  ]
