(* Scenario specs must round-trip, shrinking must be deterministic and
   converge to a fixpoint, and replaying a stored spec must reproduce a
   byte-identical audit verdict. *)

module Scenario = Audit.Scenario
module Fuzz = Audit.Fuzz
module Report = Audit.Report

let scenario_t =
  Alcotest.testable
    (fun fmt s -> Format.pp_print_string fmt (Scenario.to_spec s))
    ( = )

let sample =
  {
    Scenario.n = 8;
    topo = 1;
    drift = 2;
    delay = 2;
    algo = 0;
    churn = true;
    seed = 42;
    horizon = 120.;
    faults = [];
  }

let test_spec_roundtrip () =
  let prng = Dsim.Prng.of_int 99 in
  for _ = 1 to 25 do
    let s = Scenario.generate prng in
    match Scenario.of_spec (Scenario.to_spec s) with
    | Ok s' -> Alcotest.check scenario_t "roundtrip" s s'
    | Error msg -> Alcotest.failf "roundtrip failed on %S: %s" (Scenario.to_spec s) msg
  done;
  (* Same property with generated fault schedules riding along. *)
  let prng = Dsim.Prng.of_int 100 in
  for _ = 1 to 25 do
    let s = Scenario.generate ~faults:true prng in
    match Scenario.of_spec (Scenario.to_spec s) with
    | Ok s' -> Alcotest.check scenario_t "faulted roundtrip" s s'
    | Error msg -> Alcotest.failf "roundtrip failed on %S: %s" (Scenario.to_spec s) msg
  done

(* A spec naming every fault op kind must survive to_spec/of_spec exactly. *)
let test_fault_spec_all_ops_roundtrip () =
  let spec =
    "n=8 topo=ring drift=split delay=uniform algo=gradient churn=0 seed=7 horizon=60 "
    ^ "faults=crash@10:2;restart@20:2!;crash@12:5;restart@18:5;dup@5-25:0>1;"
    ^ "reorder@8-30:3>4;byz@15-22:6"
  in
  match Scenario.of_spec spec with
  | Error msg -> Alcotest.failf "all-op spec did not parse: %s" msg
  | Ok s ->
    Alcotest.(check int) "seven ops" 7 (List.length s.Scenario.faults);
    Alcotest.(check string) "re-rendered spec is byte-identical" spec (Scenario.to_spec s);
    (match Scenario.of_spec (Scenario.to_spec s) with
    | Ok s' -> Alcotest.check scenario_t "second roundtrip" s s'
    | Error msg -> Alcotest.failf "second parse failed: %s" msg)

let test_spec_errors () =
  let expect_error spec =
    match Scenario.of_spec spec with
    | Ok _ -> Alcotest.failf "expected %S to be rejected" spec
    | Error _ -> ()
  in
  expect_error "";
  expect_error "n=8 topo=ring";
  expect_error "n=8 topo=moebius drift=split delay=uniform algo=gradient churn=1 seed=1 horizon=60";
  expect_error "n=one topo=ring drift=split delay=uniform algo=gradient churn=1 seed=1 horizon=60";
  expect_error "n=8 topo=ring drift=split delay=uniform algo=gradient churn=1 seed=1 horizon=-5";
  expect_error "n=1 topo=ring drift=split delay=uniform algo=gradient churn=1 seed=1 horizon=60"

let test_generate_deterministic () =
  let draw seed =
    let prng = Dsim.Prng.of_int seed in
    List.init 10 (fun _ -> Scenario.generate prng)
  in
  Alcotest.(check (list scenario_t)) "same seed, same scenarios" (draw 7) (draw 7)

(* Against a synthetic failure predicate the greedy pass must walk the
   documented candidate order to the same fixpoint every time. *)
let test_shrink_converges_deterministically () =
  let fails s = s.Scenario.n >= 6 in
  let big = { sample with Scenario.n = 12; drift = 3; delay = 2; topo = 2 } in
  let expected =
    { big with Scenario.n = 6; churn = false; horizon = 30.; drift = 0; delay = 0; topo = 0 }
  in
  let shrunk = Fuzz.shrink_with ~fails big in
  Alcotest.check scenario_t "minimal spec" expected shrunk;
  Alcotest.check scenario_t "re-shrinking is identical" shrunk (Fuzz.shrink_with ~fails big);
  Alcotest.check scenario_t "fixpoint: shrinking the minimum is a no-op" shrunk
    (Fuzz.shrink_with ~fails shrunk);
  Alcotest.(check bool) "minimum still fails" true (fails shrunk)

let test_shrink_identity_on_pass () =
  let fails _ = false in
  Alcotest.check scenario_t "non-failing scenario is untouched" sample
    (Fuzz.shrink_with ~fails sample)

let test_replay_byte_identical () =
  let spec = "n=7 topo=tree drift=walk delay=uniform algo=flat churn=1 seed=5 horizon=45" in
  match Scenario.of_spec spec with
  | Error msg -> Alcotest.failf "spec did not parse: %s" msg
  | Ok s ->
    let first = Report.render (Scenario.run s) in
    let second = Report.render (Scenario.run s) in
    Alcotest.(check string) "two replays render identically" first second;
    Alcotest.(check bool) "replay is non-trivial" true (String.length first > 0)

let test_faulted_replay_byte_identical () =
  let spec =
    "n=7 topo=tree drift=walk delay=uniform algo=gradient churn=0 seed=5 horizon=45 "
    ^ "faults=crash@8:1;restart@16:1!;dup@4-20:0>2;byz@10-18:3"
  in
  match Scenario.of_spec spec with
  | Error msg -> Alcotest.failf "faulted spec did not parse: %s" msg
  | Ok s ->
    let first = Report.render (Scenario.run s) in
    let second = Report.render (Scenario.run s) in
    Alcotest.(check string) "two faulted replays render identically" first second

(* Dropping the whole schedule is the first shrink candidate; node
   shrinking prunes ops naming removed nodes so the schedule stays valid. *)
let test_shrink_drops_faults_first () =
  let faulted =
    {
      sample with
      Scenario.churn = false;
      n = 10;
      faults =
        [
          Dsim.Fault.Crash { node = 9; at = 10. };
          Dsim.Fault.Restart { node = 9; at = 20.; corrupt = false };
          Dsim.Fault.Byzantine { node = 2; from_ = 5.; until = 15. };
        ];
    }
  in
  let fails_any _ = true in
  let shrunk = Fuzz.shrink_with ~fails:fails_any faulted in
  Alcotest.(check int) "schedule dropped at the fixpoint" 0
    (List.length shrunk.Scenario.faults);
  (* If the failure needs the faults, n-shrinking must keep the schedule
     valid for the reduced node count. *)
  let fails_with_faults s = s.Scenario.faults <> [] in
  let shrunk = Fuzz.shrink_with ~fails:fails_with_faults faulted in
  Alcotest.(check bool) "faults retained when needed" true (shrunk.Scenario.faults <> []);
  (match Dsim.Fault.validate ~n:shrunk.Scenario.n shrunk.Scenario.faults with
  | Ok () -> ()
  | Error m -> Alcotest.failf "shrunk schedule invalid for n=%d: %s" shrunk.Scenario.n m)

let test_fuzz_run_clean () =
  let outcome = Fuzz.run ~seed:3 ~count:5 () in
  Alcotest.(check int) "all scenarios audited" 5 outcome.Fuzz.scenarios_run;
  Alcotest.(check int)
    (Printf.sprintf "no failures (got: %s)"
       (String.concat "; "
          (List.map (fun f -> Scenario.to_spec f.Fuzz.shrunk) outcome.Fuzz.failures)))
    0
    (List.length outcome.Fuzz.failures)

let test_fuzz_run_clean_with_faults () =
  let outcome = Fuzz.run ~faults:true ~seed:3 ~count:5 () in
  Alcotest.(check int) "all scenarios audited" 5 outcome.Fuzz.scenarios_run;
  Alcotest.(check int)
    (Printf.sprintf "no failures (got: %s)"
       (String.concat "; "
          (List.map (fun f -> Scenario.to_spec f.Fuzz.shrunk) outcome.Fuzz.failures)))
    0
    (List.length outcome.Fuzz.failures)

(* The outcome — counts, failure order, shrunk specs, rendered reports —
   must be byte-identical whatever the pool size (`fuzz --jobs N`). The
   synthetic-failure check exercises the failure path without needing a
   scenario that actually breaks the engine. *)
let render_outcome (o : Fuzz.outcome) =
  Format.asprintf "@[<v>%d@,%a@]" o.Fuzz.scenarios_run
    (Format.pp_print_list Fuzz.pp_failure)
    o.Fuzz.failures

let test_fuzz_jobs_invariant () =
  let serial = render_outcome (Fuzz.run ~jobs:1 ~seed:11 ~count:8 ()) in
  let pooled = render_outcome (Fuzz.run ~jobs:4 ~seed:11 ~count:8 ()) in
  Alcotest.(check string) "jobs=4 outcome equals jobs=1" serial pooled

let test_shrink_order_jobs_invariant () =
  (* Same scenario stream, but shrinking happens inside the workers:
     failures must still come back in draw order for every pool size. *)
  let specs_at jobs =
    let prng = Dsim.Prng.of_int 23 in
    let scenarios =
      let rec draw acc k =
        if k = 0 then List.rev acc else draw (Scenario.generate prng :: acc) (k - 1)
      in
      draw [] 6
    in
    Runner.map ~jobs
      (fun s -> Scenario.to_spec (Fuzz.shrink_with ~fails:(fun x -> x.Scenario.n >= 4) s))
      scenarios
  in
  Alcotest.(check (list string)) "shrunk specs in draw order" (specs_at 1) (specs_at 4)

let suite =
  [
    Alcotest.test_case "spec roundtrip" `Quick test_spec_roundtrip;
    Alcotest.test_case "fault spec with every op roundtrips" `Quick
      test_fault_spec_all_ops_roundtrip;
    Alcotest.test_case "spec error cases" `Quick test_spec_errors;
    Alcotest.test_case "generate is deterministic" `Quick test_generate_deterministic;
    Alcotest.test_case "shrink converges deterministically" `Quick
      test_shrink_converges_deterministically;
    Alcotest.test_case "shrink is identity on pass" `Quick test_shrink_identity_on_pass;
    Alcotest.test_case "replay is byte-identical" `Quick test_replay_byte_identical;
    Alcotest.test_case "faulted replay is byte-identical" `Quick
      test_faulted_replay_byte_identical;
    Alcotest.test_case "shrink drops faults first" `Quick test_shrink_drops_faults_first;
    Alcotest.test_case "fuzz run on clean engine" `Quick test_fuzz_run_clean;
    Alcotest.test_case "faulted fuzz run on clean engine" `Quick
      test_fuzz_run_clean_with_faults;
    Alcotest.test_case "fuzz outcome identical across jobs" `Quick
      test_fuzz_jobs_invariant;
    Alcotest.test_case "shrunk failures stay in draw order" `Quick
      test_shrink_order_jobs_invariant;
  ]
