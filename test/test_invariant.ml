module Invariant = Gcs.Invariant
module Metrics = Gcs.Metrics

let case name f = Alcotest.test_case name `Quick f

(* rho = 0.05, so the derived default rate floor is 1 - rho = 0.95. *)
let params = Gcs.Params.make ~n:2 ()

(* Drive the monitor with a synthetic view backed by mutable clocks so we
   can inject violations deliberately. *)
let make_setup () =
  let clocks = [| 0.; 0. |] in
  let lmaxes = [| 0.; 0. |] in
  let view =
    {
      Metrics.n = 2;
      clock_of = (fun i -> clocks.(i));
      lmax_of = (fun i -> lmaxes.(i));
      iter_edges = (fun f -> f 0 1);
    }
  in
  let engine =
    (Dsim.Engine.create
       ~clocks:[| Dsim.Hwclock.perfect; Dsim.Hwclock.perfect |]
       ~delay:(Dsim.Delay.zero ~bound:1.) ()
      : (Gcs.Proto.message, Gcs.Proto.timer) Dsim.Engine.t)
  in
  Dsim.Engine.install engine 0 (fun _ ->
      {
        Dsim.Engine.on_init = ignore;
        on_discover_add = ignore;
        on_discover_remove = ignore;
        on_receive = (fun _ _ -> ());
        on_timer = ignore;
      });
  Dsim.Engine.install engine 1 (fun _ ->
      {
        Dsim.Engine.on_init = ignore;
        on_discover_add = ignore;
        on_discover_remove = ignore;
        on_receive = (fun _ _ -> ());
        on_timer = ignore;
      });
  (clocks, lmaxes, view, engine)

let advance clocks lmaxes rate dt =
  Array.iteri (fun i v -> clocks.(i) <- v +. (rate *. dt)) clocks;
  Array.iteri (fun i v -> lmaxes.(i) <- Float.max (v +. dt) clocks.(i)) lmaxes

let test_clean_run () =
  let clocks, lmaxes, view, engine = make_setup () in
  let monitor = Invariant.attach engine view ~params ~every:1. ~until:10. () in
  (* Advance clocks at rate 1 between probes via interleaved callbacks. *)
  let rec push t =
    if t <= 10. then
      Dsim.Engine.at engine ~time:t (fun () ->
          advance clocks lmaxes 1.0 0.5;
          push (t +. 0.5))
  in
  push 0.25;
  Dsim.Engine.run_until engine 10.;
  Alcotest.(check bool) "ok" true (Invariant.ok monitor);
  Alcotest.(check int) "probes" 11 (Invariant.probes monitor)

let test_detects_slow_clock () =
  let clocks, lmaxes, view, engine = make_setup () in
  let monitor = Invariant.attach engine view ~params ~every:1. ~until:5. () in
  let rec push t =
    if t <= 5. then
      Dsim.Engine.at engine ~time:t (fun () ->
          (* rate 0.3 < any sane floor *)
          advance clocks lmaxes 0.3 1.0;
          push (t +. 1.))
  in
  push 0.5;
  Dsim.Engine.run_until engine 5.;
  Alcotest.(check bool) "violation found" false (Invariant.ok monitor);
  let kinds = List.map (fun v -> v.Invariant.kind) (Invariant.violations monitor) in
  Alcotest.(check bool) "min-rate kind" true (List.mem "min-rate" kinds)

let test_detects_lmax_violation () =
  let clocks, lmaxes, view, engine = make_setup () in
  let monitor = Invariant.attach engine view ~params ~every:1. ~until:3. () in
  Dsim.Engine.at engine ~time:0.5 (fun () ->
      clocks.(1) <- 10.;
      lmaxes.(1) <- 5. (* L > Lmax: Property 6.3 broken *));
  Dsim.Engine.at engine ~time:2.5 (fun () ->
      clocks.(0) <- 10.;
      clocks.(1) <- 20.;
      lmaxes.(0) <- 10.;
      lmaxes.(1) <- 20.);
  Dsim.Engine.run_until engine 3.;
  let kinds = List.map (fun v -> v.Invariant.kind) (Invariant.violations monitor) in
  Alcotest.(check bool) "lmax-dominance kind" true (List.mem "lmax-dominance" kinds)

let test_custom_rate_floor () =
  let clocks, lmaxes, view, engine = make_setup () in
  (* rate 0.97 passes the derived 0.95 floor but fails an explicit 0.99 *)
  let monitor =
    Invariant.attach engine view ~params ~every:1. ~until:4. ~rate_floor:0.99 ()
  in
  let rec push t =
    if t <= 4. then
      Dsim.Engine.at engine ~time:t (fun () ->
          advance clocks lmaxes 0.97 1.0;
          push (t +. 1.))
  in
  push 0.5;
  Dsim.Engine.run_until engine 4.;
  Alcotest.(check bool) "0.97 fails 0.99 floor" false (Invariant.ok monitor)

(* Regression for the hard-coded 0.5 floor: a clock crawling at rate 0.8
   violates the algorithm's 1 - rho guarantee but slipped past the old
   default. The derived floor must flag it. *)
let test_default_floor_derived_from_params () =
  let clocks, lmaxes, view, engine = make_setup () in
  let monitor = Invariant.attach engine view ~params ~every:1. ~until:4. () in
  let rec push t =
    if t <= 4. then
      Dsim.Engine.at engine ~time:t (fun () ->
          advance clocks lmaxes 0.8 1.0;
          push (t +. 1.))
  in
  push 0.5;
  Dsim.Engine.run_until engine 4.;
  Alcotest.(check bool) "rate 0.8 < 1 - rho flagged by default" false
    (Invariant.ok monitor);
  (* The same run is fine against the paper's weaker validity floor. *)
  let clocks2, lmaxes2, view2, engine2 = make_setup () in
  let monitor2 =
    Invariant.attach engine2 view2 ~params ~every:1. ~until:4. ~rate_floor:0.5 ()
  in
  let rec push2 t =
    if t <= 4. then
      Dsim.Engine.at engine2 ~time:t (fun () ->
          advance clocks2 lmaxes2 0.8 1.0;
          push2 (t +. 1.))
  in
  push2 0.5;
  Dsim.Engine.run_until engine2 4.;
  Alcotest.(check bool) "rate 0.8 passes explicit 0.5" true (Invariant.ok monitor2)

(* Regression for the absolute eps = 1e-6: at clock magnitude ~1e7, float
   round-off of a few microunits exceeded the old absolute slack and
   fabricated violations on perfectly valid runs. The relative slack must
   tolerate it while a genuine deficit is still flagged (the slow-clock
   test above). *)
let test_relative_tolerance_at_large_magnitude () =
  let clocks, lmaxes, view, engine = make_setup () in
  let base = 1e7 in
  Array.fill clocks 0 2 base;
  Array.fill lmaxes 0 2 base;
  let monitor =
    Invariant.attach engine view ~params ~every:1. ~until:4. ~rate_floor:1.0 ()
  in
  let rec push t =
    if t <= 4. then
      Dsim.Engine.at engine ~time:t (fun () ->
          (* exact-rate advance, minus 2e-6 of round-off noise: below the
             old absolute eps' radar only by fabrication *)
          Array.iteri (fun i v -> clocks.(i) <- v +. 1.0 -. 2e-6) clocks;
          Array.iteri (fun i _ -> lmaxes.(i) <- clocks.(i)) lmaxes;
          push (t +. 1.))
  in
  push 0.5;
  Dsim.Engine.run_until engine 4.;
  Alcotest.(check bool) "round-off at 1e7 not a violation" true (Invariant.ok monitor)

let test_violation_printing () =
  let v = { Invariant.time = 1.5; node = 3; kind = "min-rate"; detail = "x" } in
  let s = Format.asprintf "%a" Invariant.pp_violation v in
  Alcotest.(check bool) "mentions node" true
    (String.length s > 0 && s <> "")

let suite =
  [
    case "clean run" test_clean_run;
    case "detects slow clock" test_detects_slow_clock;
    case "detects L > Lmax" test_detects_lmax_violation;
    case "custom rate floor" test_custom_rate_floor;
    case "default floor is 1 - rho" test_default_floor_derived_from_params;
    case "relative tolerance at 1e7" test_relative_tolerance_at_large_magnitude;
    case "violation printing" test_violation_printing;
  ]
