module Engine = Dsim.Engine
module Hwclock = Dsim.Hwclock
module Delay = Dsim.Delay
module Trace = Dsim.Trace

let case name f = Alcotest.test_case name `Quick f

let feq = Alcotest.float 1e-9

(* A recording node: logs every event it sees as (time, description). The
   engine hides real time from nodes, so the log uses a shared clock
   captured through the harness closure. *)
type harness = {
  engine : (string, string) Engine.t;
  log : (float * string) list ref;
}

let make ?(n = 2) ?(clocks = None) ?(delay = Delay.constant ~bound:1. 0.5)
    ?(discovery_lag = 0.) ?(initial_edges = []) ?trace
    ?(on_init = fun _ctx _id -> ()) ?(on_timer = fun _ctx _id _t -> ()) () =
  let clocks =
    match clocks with Some c -> c | None -> Array.init n (fun _ -> Hwclock.perfect)
  in
  let engine = Engine.create ~clocks ~delay ~discovery_lag ~initial_edges ?trace () in
  let log = ref [] in
  let record time entry = log := (time, entry) :: !log in
  for i = 0 to n - 1 do
    Engine.install engine i (fun ctx ->
        {
          Engine.on_init =
            (fun () ->
              record (Engine.now engine) (Printf.sprintf "%d:init" i);
              on_init ctx i);
          on_discover_add =
            (fun v -> record (Engine.now engine) (Printf.sprintf "%d:add(%d)" i v));
          on_discover_remove =
            (fun v -> record (Engine.now engine) (Printf.sprintf "%d:rem(%d)" i v));
          on_receive =
            (fun src msg ->
              record (Engine.now engine) (Printf.sprintf "%d:recv(%d,%s)" i src msg));
          on_timer =
            (fun t ->
              record (Engine.now engine) (Printf.sprintf "%d:timer(%s)" i t);
              on_timer ctx i t);
        })
  done;
  { engine; log }

let entries h = List.rev !(h.log)

let has h entry = List.exists (fun (_, e) -> e = entry) (entries h)

let time_of h entry =
  match List.find_opt (fun (_, e) -> e = entry) (entries h) with
  | Some (t, _) -> t
  | None -> Alcotest.failf "event %s never happened" entry

let test_delivery () =
  let h =
    make ~initial_edges:[ (0, 1) ]
      ~on_init:(fun ctx i -> if i = 0 then Engine.send ctx ~dst:1 "hi")
      ()
  in
  Engine.run_until h.engine 10.;
  Alcotest.(check bool) "received" true (has h "1:recv(0,hi)");
  Alcotest.check feq "after 0.5 delay" 0.5 (time_of h "1:recv(0,hi)")

let test_initial_discovery_at_zero () =
  let h = make ~initial_edges:[ (0, 1) ] () in
  Engine.run_until h.engine 1.;
  Alcotest.check feq "node 0 discovers" 0. (time_of h "0:add(1)");
  Alcotest.check feq "node 1 discovers" 0. (time_of h "1:add(0)");
  (* init strictly precedes discoveries in the log *)
  let log = entries h in
  let idx entry =
    match List.mapi (fun i (_, e) -> (i, e)) log |> List.find_opt (fun (_, e) -> e = entry) with
    | Some (i, _) -> i
    | None -> -1
  in
  Alcotest.(check bool) "init before discovery" true (idx "0:init" < idx "0:add(1)")

let test_fifo_clamping () =
  (* First message has delay 1.0, second (sent later) would overtake with
     delay 0; the engine must clamp the second to the first's arrival. *)
  let sent = ref 0 in
  let delay =
    Delay.directed ~bound:1. (fun ~src:_ ~dst:_ ~now:_ ->
        incr sent;
        if !sent = 1 then 1.0 else 0.0)
  in
  let h =
    make ~delay ~initial_edges:[ (0, 1) ]
      ~on_init:(fun ctx i ->
        if i = 0 then begin
          Engine.send ctx ~dst:1 "first";
          Engine.set_timer ctx ~after:0.2 "t"
        end)
      ~on_timer:(fun ctx _ _ -> Engine.send ctx ~dst:1 "second")
      ()
  in
  Engine.run_until h.engine 5.;
  Alcotest.check feq "first at 1.0" 1.0 (time_of h "1:recv(0,first)");
  Alcotest.check feq "second clamped to 1.0" 1.0 (time_of h "1:recv(0,second)");
  let log = entries h in
  let order =
    List.filter_map
      (fun (_, e) -> if e = "1:recv(0,first)" || e = "1:recv(0,second)" then Some e else None)
      log
  in
  Alcotest.(check (list string)) "FIFO order" [ "1:recv(0,first)"; "1:recv(0,second)" ]
    order

let test_fifo_floor_not_inherited_across_epochs () =
  (* A message with delay 5 sets the link's FIFO floor to t=5, then the
     edge is removed (the message is dropped in flight) and re-added. A
     message sent on the new epoch with delay 0.1 must arrive at
     send-time + 0.1: the dead epoch's floor cannot delay it, because
     every in-flight message of that epoch is dropped at delivery and so
     nothing can be overtaken. *)
  let sent = ref 0 in
  let delay =
    Delay.directed ~bound:5. (fun ~src:_ ~dst:_ ~now:_ ->
        incr sent;
        if !sent = 1 then 5.0 else 0.1)
  in
  let h =
    make ~delay ~initial_edges:[ (0, 1) ]
      ~on_init:(fun ctx i ->
        if i = 0 then begin
          Engine.send ctx ~dst:1 "old-epoch";
          Engine.set_timer ctx ~after:3. "resend"
        end)
      ~on_timer:(fun ctx _ _ -> Engine.send ctx ~dst:1 "new-epoch")
      ()
  in
  Engine.schedule_edge_remove h.engine ~at:1. 0 1;
  Engine.schedule_edge_add h.engine ~at:2. 0 1;
  Engine.run_until h.engine 10.;
  Alcotest.(check bool) "old-epoch message dropped" false (has h "1:recv(0,old-epoch)");
  Alcotest.check feq "new-epoch message not delayed behind the dead floor" 3.1
    (time_of h "1:recv(0,new-epoch)")

let test_fifo_floor_kept_within_epoch () =
  (* Same shape but without the removal: the floor must still clamp. *)
  let sent = ref 0 in
  let delay =
    Delay.directed ~bound:5. (fun ~src:_ ~dst:_ ~now:_ ->
        incr sent;
        if !sent = 1 then 5.0 else 0.1)
  in
  let h =
    make ~delay ~initial_edges:[ (0, 1) ]
      ~on_init:(fun ctx i ->
        if i = 0 then begin
          Engine.send ctx ~dst:1 "first";
          Engine.set_timer ctx ~after:3. "resend"
        end)
      ~on_timer:(fun ctx _ _ -> Engine.send ctx ~dst:1 "second")
      ()
  in
  Engine.run_until h.engine 10.;
  Alcotest.check feq "first at 5.0" 5.0 (time_of h "1:recv(0,first)");
  Alcotest.check feq "second clamped to 5.0" 5.0 (time_of h "1:recv(0,second)")

let test_send_without_edge () =
  let trace = Trace.create () in
  let h =
    make ~trace ~discovery_lag:0.7
      ~on_init:(fun ctx i -> if i = 0 then Engine.send ctx ~dst:1 "lost")
      ()
  in
  Engine.run_until h.engine 5.;
  Alcotest.(check bool) "never received" false (has h "1:recv(0,lost)");
  Alcotest.(check int) "drop counted" 1 (Trace.count trace Trace.Drop_no_edge);
  Alcotest.check feq "sender learns absence within lag" 0.7 (time_of h "0:rem(1)")

let test_edge_add_discovery_lag () =
  let h = make ~discovery_lag:1.5 () in
  Engine.schedule_edge_add h.engine ~at:2. 0 1;
  Engine.run_until h.engine 10.;
  Alcotest.check feq "discovered at 3.5" 3.5 (time_of h "0:add(1)");
  Alcotest.check feq "both endpoints" 3.5 (time_of h "1:add(0)")

let test_in_flight_drop () =
  let trace = Trace.create () in
  (* Message sent at t=0 with delay 1.0; edge removed at t=0.5. *)
  let delay = Delay.constant ~bound:1. 1.0 in
  let h =
    make ~trace ~delay ~discovery_lag:0.25 ~initial_edges:[ (0, 1) ]
      ~on_init:(fun ctx i -> if i = 0 then Engine.send ctx ~dst:1 "doomed")
      ()
  in
  Engine.schedule_edge_remove h.engine ~at:0.5 0 1;
  Engine.run_until h.engine 5.;
  Alcotest.(check bool) "not delivered" false (has h "1:recv(0,doomed)");
  Alcotest.(check int) "in-flight drop" 1 (Trace.count trace Trace.Drop_in_flight);
  Alcotest.check feq "removal discovered" 0.75 (time_of h "0:rem(1)")

let test_transient_change_suppressed () =
  let trace = Trace.create () in
  let h = make ~trace ~discovery_lag:2. () in
  Engine.schedule_edge_add h.engine ~at:1. 0 1;
  Engine.schedule_edge_remove h.engine ~at:1.5 0 1;
  Engine.schedule_edge_add h.engine ~at:1.8 0 1;
  Engine.run_until h.engine 10.;
  (* Only the final add (epoch 3) is discovered, at 1.8 + 2. *)
  let adds = List.filter (fun (_, e) -> e = "0:add(1)") (entries h) in
  Alcotest.(check int) "one discovery" 1 (List.length adds);
  Alcotest.check feq "at 3.8" 3.8 (time_of h "0:add(1)");
  Alcotest.(check bool) "no remove discovery" false (has h "0:rem(1)");
  Alcotest.(check int) "stale discoveries suppressed" 4
    (Trace.count trace Trace.Discover_stale)

let test_subjective_timer () =
  (* Node 0 runs at rate 1.25: a subjective 2.5 elapses at real time 2.0. *)
  let clocks = [| Hwclock.constant 1.25; Hwclock.perfect |] in
  let h =
    make ~clocks:(Some clocks)
      ~on_init:(fun ctx i -> if i = 0 then Engine.set_timer ctx ~after:2.5 "alarm")
      ()
  in
  Engine.run_until h.engine 5.;
  Alcotest.check feq "fires at real 2.0" 2.0 (time_of h "0:timer(alarm)")

let test_timer_cancellation () =
  let h =
    make
      ~on_init:(fun ctx i ->
        if i = 0 then begin
          Engine.set_timer ctx ~after:1. "a";
          Engine.set_timer ctx ~after:2. "b";
          Engine.cancel_timer ctx "a"
        end)
      ()
  in
  Engine.run_until h.engine 5.;
  Alcotest.(check bool) "a cancelled" false (has h "0:timer(a)");
  Alcotest.(check bool) "b fires" true (has h "0:timer(b)")

let test_timer_rearm_supersedes () =
  let h =
    make
      ~on_init:(fun ctx i ->
        if i = 0 then begin
          Engine.set_timer ctx ~after:1. "t";
          Engine.set_timer ctx ~after:3. "t"
        end)
      ()
  in
  Engine.run_until h.engine 5.;
  let fires = List.filter (fun (_, e) -> e = "0:timer(t)") (entries h) in
  Alcotest.(check int) "fires once" 1 (List.length fires);
  Alcotest.check feq "at the re-armed time" 3. (time_of h "0:timer(t)")

let test_periodic_timer_chain () =
  let count = ref 0 in
  let h =
    make
      ~on_init:(fun ctx i -> if i = 0 then Engine.set_timer ctx ~after:1. "tick")
      ~on_timer:(fun ctx _ _ ->
        incr count;
        if !count < 5 then Engine.set_timer ctx ~after:1. "tick")
      ()
  in
  Engine.run_until h.engine 100.;
  Alcotest.(check int) "five ticks" 5 !count

let test_callback () =
  let h = make () in
  let hits = ref [] in
  Engine.at h.engine ~time:2.5 (fun () -> hits := Engine.now h.engine :: !hits);
  Engine.at h.engine ~time:1.5 (fun () -> hits := Engine.now h.engine :: !hits);
  Engine.run_until h.engine 10.;
  Alcotest.(check (list (float 1e-9))) "both in order" [ 1.5; 2.5 ] (List.rev !hits)

let test_run_until_advances_now () =
  let h = make () in
  Engine.run_until h.engine 4.;
  Alcotest.check feq "now" 4. (Engine.now h.engine);
  Alcotest.check_raises "cannot go back"
    (Invalid_argument "Engine.run_until: horizon in the past") (fun () ->
      Engine.run_until h.engine 3.)

let test_bad_destination () =
  let h =
    make
      ~on_init:(fun ctx i ->
        if i = 0 then
          Alcotest.check_raises "self-send" (Invalid_argument "Engine.send: bad destination")
            (fun () -> Engine.send ctx ~dst:0 "oops"))
      ()
  in
  Engine.run_until h.engine 1.

let test_determinism () =
  let build () =
    let trace = Trace.create () in
    let h =
      make ~trace ~initial_edges:[ (0, 1) ]
        ~on_init:(fun ctx i ->
          if i = 0 then Engine.set_timer ctx ~after:1. "tick")
        ~on_timer:(fun ctx _ _ ->
          Engine.send ctx ~dst:1 "m";
          Engine.set_timer ctx ~after:1. "tick")
        ()
    in
    Engine.schedule_edge_remove h.engine ~at:5.2 0 1;
    Engine.schedule_edge_add h.engine ~at:7.9 0 1;
    Engine.run_until h.engine 20.;
    (entries h, Trace.total trace)
  in
  let a = build () and b = build () in
  Alcotest.(check bool) "identical logs" true (fst a = fst b);
  Alcotest.(check int) "identical trace totals" (snd a) (snd b)

let test_graph_view () =
  let h = make ~initial_edges:[ (0, 1) ] () in
  Engine.schedule_edge_remove h.engine ~at:1. 0 1;
  Engine.run_until h.engine 0.5;
  Alcotest.(check bool) "edge present" true (Dsim.Dyngraph.has_edge (Engine.graph h.engine) 0 1);
  Engine.run_until h.engine 2.;
  Alcotest.(check bool) "edge gone" false (Dsim.Dyngraph.has_edge (Engine.graph h.engine) 0 1)

let test_absence_notifications_coalesce () =
  let trace = Trace.create () in
  let h =
    make ~trace ~discovery_lag:1.
      ~on_init:(fun ctx i ->
        if i = 0 then begin
          (* Three failed sends in a burst: one notification. *)
          Engine.send ctx ~dst:1 "a";
          Engine.send ctx ~dst:1 "b";
          Engine.send ctx ~dst:1 "c"
        end)
      ()
  in
  Engine.run_until h.engine 5.;
  let removes = List.filter (fun (_, e) -> e = "0:rem(1)") (entries h) in
  Alcotest.(check int) "coalesced to one notification" 1 (List.length removes);
  Alcotest.(check int) "three drops counted" 3 (Trace.count trace Trace.Drop_no_edge)

let test_same_time_add_then_remove () =
  (* Scheduled in this order at the same instant, the sequence number
     orders them deterministically: add then remove leaves the edge
     absent (and the paper forbids relying on simultaneous changes). *)
  let h = make ~discovery_lag:0.5 () in
  Engine.schedule_edge_add h.engine ~at:2. 0 1;
  Engine.schedule_edge_remove h.engine ~at:2. 0 1;
  Engine.run_until h.engine 5.;
  Alcotest.(check bool) "edge absent" false
    (Dsim.Dyngraph.has_edge (Engine.graph h.engine) 0 1);
  (* Both changes were transient/superseded: only the final (remove)
     discovery can fire, and handlers see a remove for an edge they never
     knew — harmless. *)
  Alcotest.(check bool) "no add discovery" false (has h "0:add(1)")

let test_zero_delay_timer () =
  let h =
    make ~on_init:(fun ctx i -> if i = 0 then Engine.set_timer ctx ~after:0. "now") ()
  in
  Engine.run_until h.engine 1.;
  Alcotest.check feq "fires at once" 0. (time_of h "0:timer(now)")

(* Regression for the stale-timer leak: every cancel or re-arm used to
   leave a dead heap slot that inflated pending_events until its old
   deadline and was then dispatched (and counted) as a no-op. Stale
   entries must be invisible to pending_events, discarded rather than
   dispatched, and excluded from events_processed. *)
let test_stale_timers_not_counted () =
  let trace = Trace.create () in
  let rearms = 50 in
  let h =
    make ~trace
      ~on_init:(fun ctx i ->
        if i = 0 then begin
          (* cancel churn: arm and immediately cancel *)
          for _ = 1 to rearms do
            Engine.set_timer ctx ~after:100. "lost";
            Engine.cancel_timer ctx "lost"
          done;
          (* re-arm churn: each set supersedes the previous *)
          for _ = 1 to rearms do
            Engine.set_timer ctx ~after:50. "beat"
          done
        end)
      ()
  in
  (* After init (t=10 < both deadlines): only the one live "beat" timer
     is actually pending, despite the 100 stale heap slots behind it. *)
  Engine.run_until h.engine 10.;
  Alcotest.(check int) "one live timer" 1 (Engine.live_timers h.engine);
  Alcotest.(check int) "pending sees through stale entries" 1
    (Engine.pending_events h.engine);
  Engine.run_until h.engine 200.;
  let fires = List.filter (fun (_, e) -> e = "0:timer(beat)") (entries h) in
  Alcotest.(check int) "beat fires once" 1 (List.length fires);
  Alcotest.(check bool) "lost never fires" false (has h "0:timer(lost)");
  Alcotest.(check int) "no live timers left" 0 (Engine.live_timers h.engine);
  Alcotest.(check int) "queue drained" 0 (Engine.pending_events h.engine);
  (* The single real timer fire; the stale entries are traced but not
     processed. *)
  Alcotest.(check int) "stale entries excluded from events_processed" 1
    (Engine.events_processed h.engine);
  Alcotest.(check int) "stale discards traced"
    (2 * rearms - 1)
    (Trace.count trace Trace.Timer_stale)

let test_event_counters () =
  let h =
    make ~initial_edges:[ (0, 1) ]
      ~on_init:(fun ctx i -> if i = 0 then Engine.send ctx ~dst:1 "m")
      ()
  in
  Alcotest.(check int) "nothing processed yet" 0 (Engine.events_processed h.engine);
  Engine.run_until h.engine 5.;
  Alcotest.(check bool) "events processed" true (Engine.events_processed h.engine >= 3);
  Alcotest.(check int) "queue drained" 0 (Engine.pending_events h.engine)

(* Property: whatever delays the policy draws, each directed link delivers
   in send order and within [0, bound] of the send time (after clamping). *)
let prop_fifo_random_delays =
  QCheck.Test.make ~name:"FIFO delivery under random delays" ~count:100
    QCheck.(pair (int_range 0 1000) (int_range 2 20))
    (fun (seed, burst) ->
      let prng = Dsim.Prng.of_int seed in
      let delay = Delay.uniform prng ~bound:1. in
      let received = ref [] in
      let engine =
        (Engine.create
           ~clocks:[| Hwclock.perfect; Hwclock.perfect |]
           ~delay ~initial_edges:[ (0, 1) ] ()
          : (int, string) Engine.t)
      in
      Engine.install engine 0 (fun ctx ->
          {
            Engine.on_init =
              (fun () ->
                for i = 1 to burst do
                  Engine.send ctx ~dst:1 i
                done;
                Engine.set_timer ctx ~after:0.3 "again");
            on_discover_add = ignore;
            on_discover_remove = ignore;
            on_receive = (fun _ _ -> ());
            on_timer =
              (fun _ ->
                for i = burst + 1 to 2 * burst do
                  Engine.send ctx ~dst:1 i
                done);
          });
      Engine.install engine 1 (fun _ ->
          {
            Engine.on_init = ignore;
            on_discover_add = ignore;
            on_discover_remove = ignore;
            on_receive = (fun _ i -> received := i :: !received);
            on_timer = ignore;
          });
      Engine.run_until engine 10.;
      List.rev !received = List.init (2 * burst) (fun i -> i + 1))

(* A bare engine over [n] seed nodes whose receive events are logged as
   (time, src, dst, msg); [grow] more nodes join through [add_node] before
   the run starts. Used by the join/churn regressions below, which need
   node ids beyond the seed count — the [make] harness only installs the
   initial range. *)
let make_grown ~n ~grow ~delay =
  let clocks = Array.init n (fun _ -> Hwclock.perfect) in
  let engine = Engine.create ~clocks ~delay () in
  let log = ref [] in
  let ctxs = Hashtbl.create 16 in
  let install i =
    Engine.install engine i (fun ctx ->
        Hashtbl.replace ctxs i ctx;
        {
          Engine.on_init = (fun () -> ());
          on_discover_add = (fun _ -> ());
          on_discover_remove = (fun _ -> ());
          on_receive =
            (fun src msg -> log := (Engine.now engine, src, i, msg) :: !log);
          on_timer = (fun _ -> ());
        })
  in
  for i = 0 to n - 1 do
    install i
  done;
  for _ = 1 to grow do
    let id = Engine.add_node engine ~clock:Hwclock.perfect in
    install id
  done;
  (engine, log, fun i -> Hashtbl.find ctxs i)

(* Joined nodes must get their own FIFO keys. The retired encoding packed
   the pair (src, dst) as [src * n + dst] with [n] frozen at creation;
   after joins pushed ids past the seed count, distinct pairs aliased —
   with a seed of 4 nodes, (1, 7) and (2, 3) both packed to 11, so a slow
   in-flight message on one link dragged the other link's FIFO floor up
   and delayed an unrelated delivery. Keying by destination inside a
   per-source store makes ids collision-free by construction; this pins
   the exact aliasing pair. *)
let test_join_no_pair_key_collision () =
  let delay =
    Delay.directed ~bound:1.0 (fun ~src ~dst ~now:_ ->
        if src = 1 && dst = 7 then 0.9 else 0.1)
  in
  let engine, log, ctx = make_grown ~n:4 ~grow:4 ~delay in
  Engine.schedule_edge_add engine ~at:0. 1 7;
  Engine.schedule_edge_add engine ~at:0. 2 3;
  Engine.at engine ~time:1. (fun () ->
      (* The slow (1 -> 7) message first: under aliased keys its arrival
         at t=1.9 becomes (2, 3)'s FIFO floor too. *)
      Engine.send (ctx 1) ~dst:7 "slow";
      Engine.send (ctx 2) ~dst:3 "fast");
  Engine.run_until engine 3.;
  let find msg =
    match List.find_opt (fun (_, _, _, m) -> m = msg) !log with
    | Some (t, src, dst, _) -> (t, src, dst)
    | None -> Alcotest.failf "message %S never delivered" msg
  in
  Alcotest.(check (triple feq int int)) "slow delivery" (1.9, 1, 7) (find "slow");
  Alcotest.(check (triple feq int int)) "fast delivery" (1.1, 2, 3) (find "fast")

(* Join-heavy churn: double the network after creation, wire every joined
   node to a seed node, and check each link keeps per-link FIFO order
   under a delay policy that begs for clamping (later messages drawn
   faster than earlier ones). Crossing 4 then 8 destinations per source
   also drags each per-source FIFO store through its growth seam
   (capacity 4 -> 8 -> 16) with live floors in it. *)
let test_join_churn_fifo_order () =
  let delay =
    (* Round 0 (sent at t=1) draws the full bound; later rounds draw a
       near-zero delay, so every link's later messages would overtake
       round 0 and must clamp behind its arrival instead. *)
    Delay.directed ~bound:1.0 (fun ~src:_ ~dst:_ ~now ->
        if now < 1.1 then 1.0 else 0.05)
  in
  let seed = 4 and grow = 12 in
  let engine, log, ctx = make_grown ~n:seed ~grow ~delay in
  (* Star: node 0 reaches every other node, joined ids included. *)
  for v = 1 to seed + grow - 1 do
    Engine.schedule_edge_add engine ~at:0. 0 v
  done;
  for round = 0 to 2 do
    Engine.at engine
      ~time:(1. +. (0.3 *. float_of_int round))
      (fun () ->
        for v = 1 to seed + grow - 1 do
          Engine.send (ctx 0) ~dst:v (Printf.sprintf "%d:%d" v round)
        done)
  done;
  Engine.run_until engine 5.;
  (* Per destination, rounds must arrive in send order. *)
  for v = 1 to seed + grow - 1 do
    let arrivals =
      List.rev !log
      |> List.filter_map (fun (t, src, dst, msg) ->
             if src = 0 && dst = v then Some (t, msg) else None)
    in
    let rounds = List.map (fun (_, m) -> Scanf.sscanf m "%d:%d" (fun _ r -> r)) arrivals in
    Alcotest.(check (list int))
      (Printf.sprintf "link 0->%d FIFO order" v)
      [ 0; 1; 2 ] rounds;
    let times = List.map fst arrivals in
    Alcotest.(check bool)
      (Printf.sprintf "link 0->%d non-decreasing arrivals" v)
      true
      (List.sort compare times = times)
  done

(* Engine storage must grow as O(n + live edges), not O(n^2): quadrupling
   the node count of a ring (edges = n) may grow the footprint by ~4x.
   The pre-rework engine kept pair-keyed arrays that made this 16x. The
   check runs after a burst of traffic so FIFO floors, armed timers and
   queue capacities are all warm. *)
let test_footprint_linear_in_n () =
  let footprint n =
    let delay = Delay.constant ~bound:1. 0.5 in
    let clocks = Array.init n (fun _ -> Hwclock.perfect) in
    let engine =
      Engine.create ~clocks ~delay ~initial_edges:(Topology.Static.ring n) ()
    in
    let ctxs = Array.make n None in
    for i = 0 to n - 1 do
      Engine.install engine i (fun ctx ->
          ctxs.(i) <- Some ctx;
          {
            Engine.on_init = (fun () -> ());
            on_discover_add = (fun _ -> ());
            on_discover_remove = (fun _ -> ());
            on_receive = (fun _ _ -> ());
            on_timer = (fun _ -> ());
          })
    done;
    (* Every node pings both ring neighbours to warm FIFO stores. *)
    Engine.at engine ~time:1. (fun () ->
        Array.iteri
          (fun i -> function
            | Some ctx ->
              Engine.send ctx ~dst:((i + 1) mod n) ();
              Engine.send ctx ~dst:((i + n - 1) mod n) ()
            | None -> ())
          ctxs);
    Engine.run_until engine 3.;
    Engine.footprint_words engine
  in
  let f1 = footprint 256 and f4 = footprint 1024 in
  let ratio = float_of_int f4 /. float_of_int f1 in
  Alcotest.(check bool)
    (Printf.sprintf "footprint 256 -> 1024 grew %.2fx (must be < 8, O(n^2) gives ~16)"
       ratio)
    true (ratio < 8.)

(* The traffic-aware partitioner is a pure performance knob (any id->shard
   map yields the same trace), so its regression surface is its *shape*:
   shards=1 must be the all-zeros map, a path must reproduce the
   contiguous split exactly (the greedy BFS walks the line segment by
   segment), a scrambled clustered graph must beat the contiguous cut
   while staying balanced, and the hysteresis must hold on to a previous
   partition unless the fresh cut is a real improvement. *)
let test_partition_shapes () =
  let graph_of ~n edges =
    let g = Dsim.Dyngraph.create ~n in
    List.iter (fun (u, v) -> ignore (Dsim.Dyngraph.add_edge g ~now:0. u v)) edges;
    g
  in
  let edge_cut g part =
    Dsim.Dyngraph.fold_edges g
      (fun acc u v -> if part.(u) <> part.(v) then acc + 1 else acc)
      0
  in
  let n = 24 in
  let pathg = graph_of ~n (Topology.Static.path n) in
  Alcotest.(check (array int))
    "shards=1 is the zero map" (Array.make n 0) (Engine.partition ~shards:1 pathg);
  List.iter
    (fun shards ->
      let chunk = (n + shards - 1) / shards in
      let contiguous = Array.init n (fun i -> min (i / chunk) (shards - 1)) in
      Alcotest.(check (array int))
        (Printf.sprintf "path reproduces the contiguous split (shards=%d)" shards)
        contiguous
        (Engine.partition ~shards pathg))
    [ 2; 4; 7 ];
  let n = 96 in
  let edges =
    Topology.Static.cluster (Dsim.Prng.of_int 7) ~n ~clusters:8 ~degree:4
  in
  let cg = graph_of ~n edges in
  let chunk = (n + 3) / 4 in
  let contiguous = Array.init n (fun i -> min (i / chunk) 3) in
  let greedy = Engine.partition ~shards:4 cg in
  Alcotest.(check bool)
    "greedy cuts fewer edges than contiguous on scrambled clusters" true
    (edge_cut cg greedy < edge_cut cg contiguous);
  let counts = Array.make 4 0 in
  Array.iter (fun s -> counts.(s) <- counts.(s) + 1) greedy;
  Array.iteri
    (fun s c ->
      Alcotest.(check bool)
        (Printf.sprintf "shard %d non-empty and within capacity" s)
        true
        (c > 0 && c <= chunk))
    counts;
  (* Hysteresis: an equal-cut prev is kept (as a copy, not an alias)... *)
  let prev = Engine.partition ~shards:4 cg in
  let kept = Engine.partition ~prev ~shards:4 cg in
  Alcotest.(check (array int)) "prev kept when fresh is no better" prev kept;
  Alcotest.(check bool) "kept partition is a fresh array" true (kept != prev);
  (* ...and a clearly worse prev is replaced by the greedy cut. *)
  let scrambled = Array.init n (fun i -> i mod 4) in
  let replaced = Engine.partition ~prev:scrambled ~shards:4 cg in
  Alcotest.(check bool) "bad prev replaced by the greedy cut" true
    (edge_cut cg replaced < edge_cut cg scrambled)

let suite =
  [
    case "message delivery" test_delivery;
    case "partition: shapes, balance and hysteresis" test_partition_shapes;
    case "joined pair keys cannot collide" test_join_no_pair_key_collision;
    case "join-heavy churn keeps per-link FIFO" test_join_churn_fifo_order;
    case "footprint grows O(n), not O(n^2)" test_footprint_linear_in_n;
    QCheck_alcotest.to_alcotest prop_fifo_random_delays;
    case "absence notifications coalesce" test_absence_notifications_coalesce;
    case "same-time add then remove" test_same_time_add_then_remove;
    case "zero-delay timer" test_zero_delay_timer;
    case "event counters" test_event_counters;
    case "stale timers not counted" test_stale_timers_not_counted;
    case "initial edges discovered at 0" test_initial_discovery_at_zero;
    case "FIFO clamping" test_fifo_clamping;
    case "FIFO floor dies with its epoch" test_fifo_floor_not_inherited_across_epochs;
    case "FIFO floor persists within an epoch" test_fifo_floor_kept_within_epoch;
    case "send without edge" test_send_without_edge;
    case "edge-add discovery lag" test_edge_add_discovery_lag;
    case "in-flight drop on removal" test_in_flight_drop;
    case "transient changes suppressed" test_transient_change_suppressed;
    case "subjective timers follow drift" test_subjective_timer;
    case "timer cancellation" test_timer_cancellation;
    case "timer re-arm supersedes" test_timer_rearm_supersedes;
    case "periodic timer chain" test_periodic_timer_chain;
    case "scheduled callbacks" test_callback;
    case "run_until advances time" test_run_until_advances_now;
    case "bad destination rejected" test_bad_destination;
    case "determinism" test_determinism;
    case "graph view tracks schedule" test_graph_view;
  ]
