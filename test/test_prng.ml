module Prng = Dsim.Prng

let case name f = Alcotest.test_case name `Quick f

let test_determinism () =
  let a = Prng.of_int 42 and b = Prng.of_int 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Prng.next_int64 a) (Prng.next_int64 b)
  done

let test_seed_sensitivity () =
  let a = Prng.of_int 1 and b = Prng.of_int 2 in
  Alcotest.(check bool) "different seeds differ" true
    (Prng.next_int64 a <> Prng.next_int64 b)

let test_copy_independence () =
  let a = Prng.of_int 7 in
  ignore (Prng.next_int64 a);
  let b = Prng.copy a in
  Alcotest.(check int64) "copy continues identically" (Prng.next_int64 a)
    (Prng.next_int64 b);
  ignore (Prng.next_int64 a);
  (* advancing a does not advance b *)
  let va = Prng.next_int64 a and vb = Prng.next_int64 b in
  Alcotest.(check bool) "streams diverge after unequal draws" true (va <> vb)

let test_split_diverges () =
  let parent = Prng.of_int 9 in
  let child = Prng.split parent in
  let clash = ref 0 in
  for _ = 1 to 50 do
    if Prng.next_int64 parent = Prng.next_int64 child then incr clash
  done;
  Alcotest.(check int) "no collisions between parent and child" 0 !clash

let test_int_bounds () =
  let g = Prng.of_int 3 in
  for _ = 1 to 1000 do
    let v = Prng.int g 7 in
    Alcotest.(check bool) "0 <= v < 7" true (v >= 0 && v < 7)
  done

let test_int_covers_range () =
  let g = Prng.of_int 4 in
  let seen = Array.make 5 false in
  for _ = 1 to 500 do
    seen.(Prng.int g 5) <- true
  done;
  Alcotest.(check bool) "all residues appear" true (Array.for_all Fun.id seen)

let test_int_power_of_two_bounds () =
  (* Regression: bound = 2^30 used to derive the rejection limit from
     2^30 - 1, making it 0 — every draw rejected, an infinite loop. Any
     power-of-two bound also needlessly rejected its top values. *)
  let g = Prng.of_int 16 in
  for _ = 1 to 200 do
    let v = Prng.int g (1 lsl 30) in
    Alcotest.(check bool) "0 <= v < 2^30" true (v >= 0 && v < 1 lsl 30)
  done;
  for _ = 1 to 200 do
    let v = Prng.int g (1 lsl 29) in
    Alcotest.(check bool) "0 <= v < 2^29" true (v >= 0 && v < 1 lsl 29)
  done;
  (* The top half of [0, 2^30) must be reachable: with the broken limit
     arithmetic the largest accepted value for bound 2^30 was none at
     all, and for smaller powers of two the top draws were discarded. *)
  let g = Prng.of_int 17 in
  let high = ref 0 in
  for _ = 1 to 2_000 do
    high := max !high (Prng.int g (1 lsl 30))
  done;
  Alcotest.(check bool) "upper half of the range appears" true
    (!high >= 1 lsl 29)

let test_int_in () =
  let g = Prng.of_int 5 in
  for _ = 1 to 200 do
    let v = Prng.int_in g (-3) 3 in
    Alcotest.(check bool) "in [-3, 3]" true (v >= -3 && v <= 3)
  done

let test_float_bounds () =
  let g = Prng.of_int 6 in
  for _ = 1 to 1000 do
    let v = Prng.float g 2.5 in
    Alcotest.(check bool) "in [0, 2.5)" true (v >= 0. && v < 2.5)
  done

let test_float_in () =
  let g = Prng.of_int 8 in
  for _ = 1 to 200 do
    let v = Prng.float_in g 0.95 1.05 in
    Alcotest.(check bool) "in [0.95, 1.05)" true (v >= 0.95 && v < 1.05)
  done

let test_float_mean () =
  let g = Prng.of_int 10 in
  let n = 20_000 in
  let sum = ref 0. in
  for _ = 1 to n do
    sum := !sum +. Prng.float g 1.
  done;
  let mean = !sum /. float_of_int n in
  Alcotest.(check bool) "mean near 0.5" true (Float.abs (mean -. 0.5) < 0.02)

let test_bool_balance () =
  let g = Prng.of_int 11 in
  let trues = ref 0 in
  for _ = 1 to 10_000 do
    if Prng.bool g then incr trues
  done;
  Alcotest.(check bool) "roughly balanced" true (abs (!trues - 5000) < 400)

let test_shuffle_permutation () =
  let g = Prng.of_int 12 in
  let a = Array.init 50 Fun.id in
  Prng.shuffle g a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "still a permutation" (Array.init 50 Fun.id) sorted

let test_shuffle_changes_order () =
  let g = Prng.of_int 13 in
  let a = Array.init 50 Fun.id in
  Prng.shuffle g a;
  Alcotest.(check bool) "not identity" true (a <> Array.init 50 Fun.id)

let test_pick () =
  let g = Prng.of_int 14 in
  let a = [| 10; 20; 30 |] in
  for _ = 1 to 100 do
    let v = Prng.pick g a in
    Alcotest.(check bool) "element of array" true (Array.mem v a)
  done

let test_invalid_args () =
  let g = Prng.of_int 15 in
  Alcotest.check_raises "int 0" (Invalid_argument "Prng.int: bound must be positive")
    (fun () -> ignore (Prng.int g 0));
  Alcotest.check_raises "pick empty" (Invalid_argument "Prng.pick: empty array")
    (fun () -> ignore (Prng.pick g [||]))

let prop_float_in_range =
  QCheck.Test.make ~name:"float_in stays within bounds" ~count:500
    QCheck.(triple small_int pos_float pos_float)
    (fun (seed, a, b) ->
      let lo = Float.min a b and hi = Float.max a b in
      let g = Prng.of_int seed in
      let v = Prng.float_in g lo hi in
      v >= lo && (v < hi || lo = hi))

let suite =
  [
    case "determinism" test_determinism;
    case "seed sensitivity" test_seed_sensitivity;
    case "copy independence" test_copy_independence;
    case "split diverges" test_split_diverges;
    case "int bounds" test_int_bounds;
    case "int covers range" test_int_covers_range;
    case "int at power-of-two bounds (2^30 regression)" test_int_power_of_two_bounds;
    case "int_in bounds" test_int_in;
    case "float bounds" test_float_bounds;
    case "float_in bounds" test_float_in;
    case "float mean" test_float_mean;
    case "bool balance" test_bool_balance;
    case "shuffle permutation" test_shuffle_permutation;
    case "shuffle changes order" test_shuffle_changes_order;
    case "pick membership" test_pick;
    case "invalid arguments" test_invalid_args;
    QCheck_alcotest.to_alcotest prop_float_in_range;
  ]
