(* Whole-algorithm property test: random small scenarios (topology, drift,
   delays, churn, algorithm) must all satisfy the paper's universal
   guarantees — validity (Section 3.3), Property 6.3 and, for
   interval-connected executions, the global skew bound (Theorem 6.9). *)

let scenario_gen =
  QCheck.Gen.(
    let* n = int_range 4 14 in
    let* topo_kind = int_range 0 3 in
    let* drift_kind = int_range 0 3 in
    let* delay_kind = int_range 0 2 in
    let* algo_kind = int_range 0 2 in
    let* churn = bool in
    let* seed = int_range 0 10_000 in
    return (n, topo_kind, drift_kind, delay_kind, algo_kind, churn, seed))

let build_topology kind n seed =
  match kind with
  | 0 -> Topology.Static.path n
  | 1 -> Topology.Static.ring n
  | 2 -> Topology.Static.binary_tree n
  | _ -> Topology.Static.erdos_renyi (Dsim.Prng.of_int seed) ~n ~p:0.5

let run_scenario (n, topo_kind, drift_kind, delay_kind, algo_kind, churn, seed) =
  let horizon = 120. in
  let params = Gcs.Params.make ~n () in
  let edges = build_topology topo_kind n seed in
  let drift =
    match drift_kind with
    | 0 -> Gcs.Drift.Perfect
    | 1 -> Gcs.Drift.Split_extremes
    | 2 -> Gcs.Drift.Alternating 17.
    | _ -> Gcs.Drift.Random_walk 9.
  in
  let bound = params.Gcs.Params.delay_bound in
  let delay =
    match delay_kind with
    | 0 -> Dsim.Delay.maximal ~bound
    | 1 -> Dsim.Delay.zero ~bound
    | _ -> Dsim.Delay.uniform (Dsim.Prng.of_int (seed + 1)) ~bound
  in
  let algo =
    match algo_kind with
    | 0 -> Gcs.Sim.Gradient
    | 1 -> Gcs.Sim.Flat_gradient
    | _ -> Gcs.Sim.Max_only
  in
  let clocks = Gcs.Drift.assign params ~horizon ~seed drift in
  let cfg = Gcs.Sim.config ~algo ~params ~clocks ~delay ~initial_edges:edges () in
  let sim = Gcs.Sim.create cfg in
  let engine = Gcs.Sim.engine sim in
  let view = Gcs.Sim.view sim in
  let recorder = Gcs.Metrics.attach engine view ~every:1. ~until:horizon () in
  let monitor =
    Gcs.Invariant.attach engine view ~params:(Gcs.Sim.params sim) ~every:1. ~until:horizon ()
  in
  (* Backbone-preserving churn keeps every instant connected, so the
     interval-connectivity premise of Theorem 6.9 holds. *)
  if churn then
    Topology.Churn.schedule engine
      (Topology.Churn.random_churn
         (Dsim.Prng.of_int (seed + 2))
         ~n ~base:edges ~rate:0.3 ~horizon);
  Gcs.Sim.run_until sim horizon;
  (Gcs.Invariant.ok monitor, Gcs.Metrics.max_global_skew recorder,
   Gcs.Params.global_skew_bound params)

let prop_validity =
  QCheck.Test.make ~name:"random scenarios: validity + global skew bound" ~count:40
    (QCheck.make scenario_gen)
    (fun scenario ->
      let valid, max_skew, bound = run_scenario scenario in
      valid && max_skew <= bound +. 1e-6)

let suite = [ QCheck_alcotest.to_alcotest prop_validity ]
