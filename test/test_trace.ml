module Trace = Dsim.Trace
module Engine = Dsim.Engine
module Hwclock = Dsim.Hwclock
module Delay = Dsim.Delay

let case name f = Alcotest.test_case name `Quick f

let contains haystack needle =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  nl = 0 || go 0

let test_counters () =
  let t = Trace.create () in
  Trace.record t ~time:0. Trace.Send 0 1 (-1);
  Trace.record t ~time:1. Trace.Send 1 0 (-1);
  Trace.record t ~time:2. Trace.Deliver 0 1 3;
  Alcotest.(check int) "sends" 2 (Trace.count t Trace.Send);
  Alcotest.(check int) "delivers" 1 (Trace.count t Trace.Deliver);
  Alcotest.(check int) "drops" 0 (Trace.count t Trace.Drop_no_edge);
  Alcotest.(check int) "total" 3 (Trace.total t)

let test_log_disabled_by_default () =
  let t = Trace.create () in
  Trace.record t ~time:0. Trace.Send 0 1 (-1);
  Alcotest.(check int) "no entries retained" 0 (List.length (Trace.entries t))

let test_log_limit () =
  let t = Trace.create ~log_limit:2 () in
  Trace.record t ~time:0. Trace.Send 0 1 (-1);
  Trace.record t ~time:1. Trace.Send 0 2 (-1);
  Trace.record t ~time:2. Trace.Send 0 3 (-1);
  let entries = Trace.entries t in
  Alcotest.(check int) "capped at 2" 2 (List.length entries);
  Alcotest.(check (list string)) "oldest first" [ "0->1"; "0->2" ]
    (List.map Trace.detail entries);
  Alcotest.(check int) "counter still 3" 3 (Trace.count t Trace.Send)

let test_detail_formats () =
  let e time kind a b c = { Trace.time; kind; a; b; c } in
  Alcotest.(check string) "send" "3->4" (Trace.detail (e 0. Trace.Send 3 4 (-1)));
  Alcotest.(check string) "edge" "{0,1}" (Trace.detail (e 0. Trace.Edge_add 0 1 (-1)));
  Alcotest.(check string) "discover" "2:{2,5}"
    (Trace.detail (e 0. Trace.Discover_add 2 5 7));
  Alcotest.(check string) "timer" "6" (Trace.detail (e 0. Trace.Timer_fire 6 (-1) (-1)))

let test_kind_names_distinct () =
  let names = List.map Trace.kind_to_string Trace.all_kinds in
  Alcotest.(check int) "all distinct" (List.length names)
    (List.length (List.sort_uniq compare names))

let test_summary_prints () =
  let t = Trace.create () in
  Trace.record t ~time:0. Trace.Send 0 1 (-1);
  let s = Format.asprintf "%a" Trace.pp_summary t in
  Alcotest.(check bool) "mentions send" true (contains s "send");
  Alcotest.(check bool) "omits zero counters" false (contains s "deliver")

let test_to_csv () =
  let t = Trace.create ~log_limit:10 () in
  Trace.record t ~time:0.25 Trace.Send 0 1 (-1);
  Trace.record t ~time:1.5 Trace.Deliver 0 1 2;
  let csv = Trace.to_csv t in
  Alcotest.(check bool) "header" true (contains csv "time,kind,a,b,c");
  Alcotest.(check bool) "send row" true (contains csv "0.25,send,0,1,-1");
  Alcotest.(check bool) "deliver row" true (contains csv "1.5,deliver,0,1,2")

let test_stream_verbosity () =
  let buf = Buffer.create 64 in
  let sink = Format.formatter_of_buffer buf in
  let t = Trace.create ~verbosity:1 ~sink () in
  Trace.record t ~time:0.5 Trace.Send 0 1 (-1);
  Format.pp_print_flush sink ();
  let s = Buffer.contents buf in
  Alcotest.(check bool) "streamed" true (contains s "send");
  Alcotest.(check bool) "detail" true (contains s "0->1");
  Alcotest.(check int) "nothing retained" 0 (List.length (Trace.entries t))

(* The tentpole invariant: turning the log on must not change what is
   counted — same workload, same counters, with or without retention. *)
let test_counters_match_on_vs_off () =
  let run trace =
    let engine =
      (Engine.create
         ~clocks:[| Hwclock.perfect; Hwclock.perfect; Hwclock.perfect |]
         ~delay:(Delay.constant ~bound:1. 0.5)
         ~discovery_lag:0.25
         ~initial_edges:[ (0, 1); (1, 2) ]
         ~trace ()
        : (int, string) Engine.t)
    in
    for i = 0 to 2 do
      Engine.install engine i (fun ctx ->
          {
            Engine.on_init = (fun () -> Engine.set_timer ctx ~after:1. "tick");
            on_discover_add = ignore;
            on_discover_remove = ignore;
            on_receive = (fun _ _ -> ());
            on_timer =
              (fun _ ->
                List.iter
                  (fun dst ->
                    if dst <> Engine.node_id ctx then Engine.send ctx ~dst 7)
                  [ 0; 1; 2 ];
                Engine.set_timer ctx ~after:1. "tick");
          })
    done;
    Engine.schedule_edge_remove engine ~at:3.4 0 1;
    Engine.schedule_edge_add engine ~at:5.1 0 1;
    Engine.run_until engine 10.
  in
  let off = Dsim.Trace.create () in
  let on = Dsim.Trace.create ~log_limit:100_000 () in
  run off;
  run on;
  List.iter
    (fun k ->
      Alcotest.(check int)
        (Printf.sprintf "counter %s" (Trace.kind_to_string k))
        (Trace.count off k) (Trace.count on k))
    Trace.all_kinds;
  Alcotest.(check bool) "log actually retained entries" true
    (List.length (Trace.entries on) > 0);
  Alcotest.(check int) "entries bounded by total" (Trace.total on)
    (List.length (Trace.entries on))

let suite =
  [
    case "counters" test_counters;
    case "log disabled by default" test_log_disabled_by_default;
    case "log limit" test_log_limit;
    case "detail formats" test_detail_formats;
    case "kind names distinct" test_kind_names_distinct;
    case "summary printing" test_summary_prints;
    case "entries to csv" test_to_csv;
    case "stream verbosity" test_stream_verbosity;
    case "counters identical with log on vs off" test_counters_match_on_vs_off;
  ]
