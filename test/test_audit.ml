(* The conformance auditor must flag hand-broken traces — a "broken
   engine" shim emitting out-of-order deliveries, late discoveries,
   deliveries on absent edges, delays beyond T — and must stay silent on
   a well-formed trace. Entries are built directly so each test controls
   exactly what the faulty engine would have recorded. *)

module Trace = Dsim.Trace
module Conformance = Audit.Conformance
module Report = Audit.Report

let params = Gcs.Params.make ~n:4 ()

(* Defaults: T = 1.0, D ~ 1.605, dT ~ 2.053. *)
let t_bound = params.Gcs.Params.delay_bound
let d_bound = params.Gcs.Params.discovery_bound
let dt_bound = Gcs.Params.delta_t params

let cfg ?(check_gaps = true) ?check_lost_timers ?faults horizon =
  Conformance.of_params params ~horizon ~check_gaps ?check_lost_timers ?faults ()

let e ?(a = -1) ?(b = -1) ?(c = -1) time kind = { Trace.time; kind; a; b; c }

let rules report =
  List.map (fun v -> v.Report.rule) report.Report.violations

let has_rule report rule = List.mem rule (rules report)

let check_flags report rule =
  Alcotest.(check bool)
    (Printf.sprintf "flags %s (got: %s)" rule (String.concat ", " (rules report)))
    true (has_rule report rule)

(* A well-formed exchange: edge up at 0, both endpoints discover in
   time, one message each way inside the delay bound. *)
let clean_trace =
  [
    e 0. Trace.Edge_add ~a:0 ~b:1;
    e 0.1 Trace.Discover_add ~a:0 ~b:1 ~c:1;
    e 0.1 Trace.Discover_add ~a:1 ~b:0 ~c:1;
    e 1.0 Trace.Send ~a:0 ~b:1 ~c:1;
    e 1.5 Trace.Deliver ~a:0 ~b:1 ~c:1;
    e 1.6 Trace.Send ~a:1 ~b:0 ~c:1;
    e 1.9 Trace.Deliver ~a:1 ~b:0 ~c:1;
  ]

let test_clean_trace_passes () =
  let report = Conformance.audit (cfg 2.0) clean_trace in
  Alcotest.(check bool)
    (Printf.sprintf "no violations (got: %s)" (String.concat ", " (rules report)))
    true (Report.ok report);
  Alcotest.(check int) "every entry audited" (List.length clean_trace)
    report.Report.events_audited

let test_delay_exceeds_t () =
  let trace =
    [
      e 0. Trace.Edge_add ~a:0 ~b:1;
      e 0.1 Trace.Discover_add ~a:0 ~b:1 ~c:1;
      e 0.1 Trace.Discover_add ~a:1 ~b:0 ~c:1;
      e 1.0 Trace.Send ~a:0 ~b:1 ~c:1;
      e (1.0 +. t_bound +. 0.8) Trace.Deliver ~a:0 ~b:1 ~c:1;
    ]
  in
  check_flags (Conformance.audit (cfg ~check_gaps:false 3.0) trace) "delay-exceeds-T"

(* True FIFO inversion is not directly observable (payload identity is
   not traced), but it always shows up through head-of-epoch matching:
   delivering the young send first pairs the delivery with the old one,
   whose age then breaks the delay bound. *)
let test_out_of_order_delivery () =
  let trace =
    [
      e 0. Trace.Edge_add ~a:0 ~b:1;
      e 0.05 Trace.Discover_add ~a:0 ~b:1 ~c:1;
      e 0.05 Trace.Discover_add ~a:1 ~b:0 ~c:1;
      e 0.1 Trace.Send ~a:0 ~b:1 ~c:1;
      e 1.9 Trace.Send ~a:0 ~b:1 ~c:1;
      (* delivery of the SECOND send overtaking the first *)
      e 2.0 Trace.Deliver ~a:0 ~b:1 ~c:1;
    ]
  in
  check_flags (Conformance.audit (cfg ~check_gaps:false 2.05) trace) "delay-exceeds-T"

let test_phantom_delivery () =
  let trace =
    [
      e 0. Trace.Edge_add ~a:0 ~b:1;
      e 0.1 Trace.Discover_add ~a:0 ~b:1 ~c:1;
      e 0.1 Trace.Discover_add ~a:1 ~b:0 ~c:1;
      e 0.5 Trace.Deliver ~a:0 ~b:1 ~c:1;
    ]
  in
  check_flags (Conformance.audit (cfg ~check_gaps:false 1.0) trace) "deliver-without-send"

let test_deliver_on_absent_edge () =
  let trace =
    [
      e 0. Trace.Edge_add ~a:0 ~b:1;
      e 0.1 Trace.Discover_add ~a:0 ~b:1 ~c:1;
      e 0.1 Trace.Discover_add ~a:1 ~b:0 ~c:1;
      e 1.0 Trace.Send ~a:0 ~b:1 ~c:1;
      e 1.2 Trace.Edge_remove ~a:0 ~b:1;
      (* in-flight message of a removed edge must be dropped, not delivered *)
      e 1.5 Trace.Deliver ~a:0 ~b:1 ~c:1;
    ]
  in
  let report = Conformance.audit (cfg ~check_gaps:false 2.0) trace in
  check_flags report "deliver-on-absent-edge"

let test_deliver_across_epochs () =
  let trace =
    [
      e 0. Trace.Edge_add ~a:0 ~b:1;
      e 0.05 Trace.Discover_add ~a:0 ~b:1 ~c:1;
      e 0.05 Trace.Discover_add ~a:1 ~b:0 ~c:1;
      e 0.5 Trace.Send ~a:0 ~b:1 ~c:1;
      e 0.6 Trace.Edge_remove ~a:0 ~b:1;
      e 0.7 Trace.Edge_add ~a:0 ~b:1;
      e 0.75 Trace.Discover_add ~a:0 ~b:1 ~c:3;
      e 0.75 Trace.Discover_add ~a:1 ~b:0 ~c:3;
      (* stale epoch-1 message surviving a down/up cycle *)
      e 0.9 Trace.Deliver ~a:0 ~b:1 ~c:1;
    ]
  in
  check_flags (Conformance.audit (cfg ~check_gaps:false 1.0) trace) "deliver-across-epochs"

let test_send_on_absent_edge () =
  let trace = [ e 0.5 Trace.Send ~a:0 ~b:1 ~c:1 ] in
  check_flags (Conformance.audit (cfg ~check_gaps:false 1.0) trace) "send-on-absent-edge"

let test_late_discovery () =
  let trace =
    [
      e 0. Trace.Edge_add ~a:0 ~b:1;
      e (d_bound +. 0.5) Trace.Discover_add ~a:0 ~b:1 ~c:1;
    ]
  in
  let report = Conformance.audit (cfg ~check_gaps:false (d_bound +. 1.0)) trace in
  check_flags report "late-discovery";
  (* node 1 never hears of the edge at all *)
  check_flags report "missed-discovery"

let test_missed_discovery () =
  let trace = [ e 0. Trace.Edge_add ~a:0 ~b:1 ] in
  let report = Conformance.audit (cfg ~check_gaps:false (d_bound +. 1.0)) trace in
  check_flags report "missed-discovery";
  Alcotest.(check int) "exactly one violation" 1 (List.length report.Report.violations)

let test_undelivered_within_t () =
  let trace =
    [
      e 0. Trace.Edge_add ~a:0 ~b:1;
      e 0.1 Trace.Discover_add ~a:0 ~b:1 ~c:1;
      e 0.1 Trace.Discover_add ~a:1 ~b:0 ~c:1;
      e 0.2 Trace.Send ~a:0 ~b:1 ~c:1;
      (* delivery window [0.2, 0.2+T] closes well before the horizon *)
    ]
  in
  check_flags (Conformance.audit (cfg ~check_gaps:false 3.0) trace) "undelivered-within-T"

let test_receipt_gap () =
  let gap_start = 0.2 in
  let gap_end = gap_start +. dt_bound +. 0.75 in
  let trace =
    [
      e 0. Trace.Edge_add ~a:0 ~b:1;
      e 0.05 Trace.Discover_add ~a:0 ~b:1 ~c:1;
      e 0.05 Trace.Discover_add ~a:1 ~b:0 ~c:1;
      e gap_start Trace.Send ~a:0 ~b:1 ~c:1;
      e gap_start Trace.Deliver ~a:0 ~b:1 ~c:1;
      e gap_end Trace.Send ~a:0 ~b:1 ~c:1;
      e gap_end Trace.Deliver ~a:0 ~b:1 ~c:1;
    ]
  in
  let report = Conformance.audit (cfg ~check_gaps:true (gap_end +. 0.1)) trace in
  check_flags report "receipt-gap-exceeds-dT";
  (* the same trace audited without gap checking is quiet *)
  let report' = Conformance.audit (cfg ~check_gaps:false (gap_end +. 0.1)) trace in
  Alcotest.(check bool)
    (Printf.sprintf "gap check off => ok (got: %s)" (String.concat ", " (rules report')))
    true (Report.ok report')

(* ----------------------- fault-aware excusals ---------------------- *)

(* A crash/restart on the sender opens a silence the liveness rule would
   normally convict; with the schedule in the config the gap is excused,
   without it the same trace is flagged. *)
let crash_gap_trace =
  [
    e 0. Trace.Edge_add ~a:0 ~b:1;
    e 0.05 Trace.Discover_add ~a:0 ~b:1 ~c:1;
    e 0.05 Trace.Discover_add ~a:1 ~b:0 ~c:1;
    e 0.2 Trace.Send ~a:0 ~b:1 ~c:1;
    e 0.4 Trace.Deliver ~a:0 ~b:1 ~c:1;
    e 2.0 Trace.Fault_crash ~a:0;
    e 5.0 Trace.Fault_restart ~a:0;
    e 5.5 Trace.Send ~a:0 ~b:1 ~c:1;
    e 5.7 Trace.Deliver ~a:0 ~b:1 ~c:1;
  ]

let crash_gap_faults =
  [
    Dsim.Fault.Crash { node = 0; at = 2. };
    Dsim.Fault.Restart { node = 0; at = 5.; corrupt = false };
  ]

let test_crash_excuses_receipt_gap () =
  let report =
    Conformance.audit (cfg ~faults:crash_gap_faults 6.0) crash_gap_trace
  in
  Alcotest.(check bool)
    (Printf.sprintf "crash outage excused (got: %s)" (String.concat ", " (rules report)))
    true (Report.ok report);
  (* The same silence with no schedule in the config is a liveness break. *)
  check_flags (Conformance.audit (cfg 6.0) crash_gap_trace) "receipt-gap-exceeds-dT"

(* A Fault_duplicate record licenses exactly one sendless delivery on its
   directed link — the copy is exempt from FIFO send-matching, but a
   second phantom still convicts. *)
let test_duplicate_excused_from_fifo () =
  let dup_trace =
    [
      e 0. Trace.Edge_add ~a:0 ~b:1;
      e 0.05 Trace.Discover_add ~a:0 ~b:1 ~c:1;
      e 0.05 Trace.Discover_add ~a:1 ~b:0 ~c:1;
      e 0.5 Trace.Send ~a:0 ~b:1 ~c:1;
      e 0.5 Trace.Fault_duplicate ~a:0 ~b:1 ~c:1;
      e 0.9 Trace.Deliver ~a:0 ~b:1 ~c:1;
      e 1.0 Trace.Deliver ~a:0 ~b:1 ~c:1;
    ]
  in
  let report = Conformance.audit (cfg ~check_gaps:false 1.2) dup_trace in
  Alcotest.(check bool)
    (Printf.sprintf "duplicate excused (got: %s)" (String.concat ", " (rules report)))
    true (Report.ok report);
  (* A third delivery exhausts the credit. *)
  let report' =
    Conformance.audit (cfg ~check_gaps:false 1.2)
      (dup_trace @ [ e 1.1 Trace.Deliver ~a:0 ~b:1 ~c:1 ])
  in
  check_flags report' "deliver-without-send"

(* Lost-timer cadence: a fire at the very instant of a delivery (gap = 0)
   is the benign same-instant race, a strictly positive but sub-minimum
   gap is a premature fire, and the opt-out silences even that. *)
let test_lost_timer_same_instant_clean () =
  let lost_label = 1 in
  (* label = src + 1 *)
  let base =
    [
      e 0. Trace.Edge_add ~a:0 ~b:1;
      e 0.05 Trace.Discover_add ~a:0 ~b:1 ~c:1;
      e 0.05 Trace.Discover_add ~a:1 ~b:0 ~c:1;
      e 0.5 Trace.Send ~a:0 ~b:1 ~c:1;
      e 0.5 Trace.Deliver ~a:0 ~b:1 ~c:1;
    ]
  in
  let same_instant = base @ [ e 0.5 Trace.Timer_fire ~a:1 ~b:lost_label ] in
  let report = Conformance.audit (cfg ~check_gaps:false 1.0) same_instant in
  Alcotest.(check bool)
    (Printf.sprintf "gap = 0 is clean (got: %s)" (String.concat ", " (rules report)))
    true (Report.ok report);
  let premature = base @ [ e 0.8 Trace.Timer_fire ~a:1 ~b:lost_label ] in
  check_flags
    (Conformance.audit (cfg ~check_gaps:false 1.0) premature)
    "premature-lost-timer";
  let report' =
    Conformance.audit (cfg ~check_gaps:false ~check_lost_timers:false 1.0) premature
  in
  Alcotest.(check bool)
    (Printf.sprintf "opt-out silences (got: %s)" (String.concat ", " (rules report')))
    true (Report.ok report')

(* A deliberately broken recovery: node 1's clock freezes across its
   crash and never rejoins, so once the recovery window closes the
   guarantees probe must convict with "recovery-exceeded" — and only
   after the window, not during it. *)
let test_broken_recovery_flagged () =
  let p2 = Gcs.Params.make ~n:2 () in
  let faults =
    [
      Dsim.Fault.Crash { node = 1; at = 2. };
      Dsim.Fault.Restart { node = 1; at = 4.; corrupt = false };
    ]
  in
  let clocks = [| Dsim.Hwclock.perfect; Dsim.Hwclock.perfect |] in
  let engine =
    Dsim.Engine.create ~clocks ~delay:(Dsim.Delay.constant ~bound:1.0 0.5) ()
  in
  for i = 0 to 1 do
    Dsim.Engine.install engine i (fun _ctx ->
        {
          Dsim.Engine.on_init = (fun () -> ());
          on_discover_add = (fun (_ : int) -> ());
          on_discover_remove = (fun _ -> ());
          on_receive = (fun _ (_ : Gcs.Proto.message) -> ());
          on_timer = (fun (_ : Gcs.Proto.timer) -> ());
        })
  done;
  (* The shim: node 0 tracks real time, node 1 is stuck at its crash
     value forever — a recovery that never happens. *)
  let view =
    {
      Gcs.Metrics.n = 2;
      clock_of =
        (fun i -> if i = 0 then Dsim.Engine.now engine else Float.min 2. (Dsim.Engine.now engine));
      lmax_of = (fun _ -> Dsim.Engine.now engine);
      iter_edges = (fun _ -> ());
    }
  in
  let recovery_bound = 10. in
  let mon =
    Audit.Guarantees.attach engine view ~params:p2 ~faults ~recovery_bound ~every:1.
      ~until:40. ()
  in
  Dsim.Engine.run_until engine 40.;
  let report = Audit.Guarantees.report mon in
  check_flags report "recovery-exceeded";
  let window_end = 4. +. recovery_bound in
  Alcotest.(check bool) "silent inside the suspension window" true
    (List.for_all
       (fun v -> v.Report.time > window_end)
       report.Report.violations)

let test_report_merge_and_render () =
  let v t rule = { Report.time = t; rule; detail = "d" } in
  let r1 = { Report.violations = [ v 1. "a"; v 3. "c" ]; events_audited = 10; probes = 2 } in
  let r2 = { Report.violations = [ v 2. "b" ]; events_audited = 5; probes = 1 } in
  let m = Report.merge r1 r2 in
  Alcotest.(check (list string)) "chronological merge" [ "a"; "b"; "c" ] (rules m);
  Alcotest.(check int) "summed events" 15 m.Report.events_audited;
  Alcotest.(check int) "summed probes" 3 m.Report.probes;
  Alcotest.(check bool) "merged not ok" false (Report.ok m);
  Alcotest.(check string) "render is deterministic" (Report.render m) (Report.render m)

(* End-to-end: the real engine, audited through the same pipeline the
   fuzzer uses, produces a clean report. *)
let test_real_engine_is_conformant () =
  match
    Audit.Scenario.of_spec
      "n=6 topo=ring drift=split delay=uniform algo=gradient churn=1 seed=11 horizon=60"
  with
  | Error msg -> Alcotest.failf "spec did not parse: %s" msg
  | Ok s ->
    let report = Audit.Scenario.run s in
    Alcotest.(check bool)
      (Printf.sprintf "engine run audits clean (got: %s)"
         (String.concat ", " (rules report)))
      true (Report.ok report);
    Alcotest.(check bool) "trace was actually replayed" true
      (report.Report.events_audited > 100);
    Alcotest.(check bool) "guarantees were actually probed" true
      (report.Report.probes > 10)

let suite =
  [
    Alcotest.test_case "clean trace passes" `Quick test_clean_trace_passes;
    Alcotest.test_case "delay > T flagged" `Quick test_delay_exceeds_t;
    Alcotest.test_case "out-of-order delivery flagged" `Quick test_out_of_order_delivery;
    Alcotest.test_case "phantom delivery flagged" `Quick test_phantom_delivery;
    Alcotest.test_case "deliver on absent edge flagged" `Quick test_deliver_on_absent_edge;
    Alcotest.test_case "deliver across epochs flagged" `Quick test_deliver_across_epochs;
    Alcotest.test_case "send on absent edge flagged" `Quick test_send_on_absent_edge;
    Alcotest.test_case "late discovery flagged" `Quick test_late_discovery;
    Alcotest.test_case "missed discovery flagged" `Quick test_missed_discovery;
    Alcotest.test_case "undelivered within T flagged" `Quick test_undelivered_within_t;
    Alcotest.test_case "receipt gap > dT flagged" `Quick test_receipt_gap;
    Alcotest.test_case "crash outage excuses receipt gap" `Quick
      test_crash_excuses_receipt_gap;
    Alcotest.test_case "duplicate excused from FIFO matching" `Quick
      test_duplicate_excused_from_fifo;
    Alcotest.test_case "lost-timer same-instant vs premature" `Quick
      test_lost_timer_same_instant_clean;
    Alcotest.test_case "broken recovery flagged after the window" `Quick
      test_broken_recovery_flagged;
    Alcotest.test_case "report merge and render" `Quick test_report_merge_and_render;
    Alcotest.test_case "real engine is conformant" `Quick test_real_engine_is_conformant;
  ]
