(* The conformance auditor must flag hand-broken traces — a "broken
   engine" shim emitting out-of-order deliveries, late discoveries,
   deliveries on absent edges, delays beyond T — and must stay silent on
   a well-formed trace. Entries are built directly so each test controls
   exactly what the faulty engine would have recorded. *)

module Trace = Dsim.Trace
module Conformance = Audit.Conformance
module Report = Audit.Report

let params = Gcs.Params.make ~n:4 ()

(* Defaults: T = 1.0, D ~ 1.605, dT ~ 2.053. *)
let t_bound = params.Gcs.Params.delay_bound
let d_bound = params.Gcs.Params.discovery_bound
let dt_bound = Gcs.Params.delta_t params

let cfg ?(check_gaps = true) horizon =
  Conformance.of_params params ~horizon ~check_gaps ()

let e ?(a = -1) ?(b = -1) ?(c = -1) time kind = { Trace.time; kind; a; b; c }

let rules report =
  List.map (fun v -> v.Report.rule) report.Report.violations

let has_rule report rule = List.mem rule (rules report)

let check_flags report rule =
  Alcotest.(check bool)
    (Printf.sprintf "flags %s (got: %s)" rule (String.concat ", " (rules report)))
    true (has_rule report rule)

(* A well-formed exchange: edge up at 0, both endpoints discover in
   time, one message each way inside the delay bound. *)
let clean_trace =
  [
    e 0. Trace.Edge_add ~a:0 ~b:1;
    e 0.1 Trace.Discover_add ~a:0 ~b:1 ~c:1;
    e 0.1 Trace.Discover_add ~a:1 ~b:0 ~c:1;
    e 1.0 Trace.Send ~a:0 ~b:1 ~c:1;
    e 1.5 Trace.Deliver ~a:0 ~b:1 ~c:1;
    e 1.6 Trace.Send ~a:1 ~b:0 ~c:1;
    e 1.9 Trace.Deliver ~a:1 ~b:0 ~c:1;
  ]

let test_clean_trace_passes () =
  let report = Conformance.audit (cfg 2.0) clean_trace in
  Alcotest.(check bool)
    (Printf.sprintf "no violations (got: %s)" (String.concat ", " (rules report)))
    true (Report.ok report);
  Alcotest.(check int) "every entry audited" (List.length clean_trace)
    report.Report.events_audited

let test_delay_exceeds_t () =
  let trace =
    [
      e 0. Trace.Edge_add ~a:0 ~b:1;
      e 0.1 Trace.Discover_add ~a:0 ~b:1 ~c:1;
      e 0.1 Trace.Discover_add ~a:1 ~b:0 ~c:1;
      e 1.0 Trace.Send ~a:0 ~b:1 ~c:1;
      e (1.0 +. t_bound +. 0.8) Trace.Deliver ~a:0 ~b:1 ~c:1;
    ]
  in
  check_flags (Conformance.audit (cfg ~check_gaps:false 3.0) trace) "delay-exceeds-T"

(* True FIFO inversion is not directly observable (payload identity is
   not traced), but it always shows up through head-of-epoch matching:
   delivering the young send first pairs the delivery with the old one,
   whose age then breaks the delay bound. *)
let test_out_of_order_delivery () =
  let trace =
    [
      e 0. Trace.Edge_add ~a:0 ~b:1;
      e 0.05 Trace.Discover_add ~a:0 ~b:1 ~c:1;
      e 0.05 Trace.Discover_add ~a:1 ~b:0 ~c:1;
      e 0.1 Trace.Send ~a:0 ~b:1 ~c:1;
      e 1.9 Trace.Send ~a:0 ~b:1 ~c:1;
      (* delivery of the SECOND send overtaking the first *)
      e 2.0 Trace.Deliver ~a:0 ~b:1 ~c:1;
    ]
  in
  check_flags (Conformance.audit (cfg ~check_gaps:false 2.05) trace) "delay-exceeds-T"

let test_phantom_delivery () =
  let trace =
    [
      e 0. Trace.Edge_add ~a:0 ~b:1;
      e 0.1 Trace.Discover_add ~a:0 ~b:1 ~c:1;
      e 0.1 Trace.Discover_add ~a:1 ~b:0 ~c:1;
      e 0.5 Trace.Deliver ~a:0 ~b:1 ~c:1;
    ]
  in
  check_flags (Conformance.audit (cfg ~check_gaps:false 1.0) trace) "deliver-without-send"

let test_deliver_on_absent_edge () =
  let trace =
    [
      e 0. Trace.Edge_add ~a:0 ~b:1;
      e 0.1 Trace.Discover_add ~a:0 ~b:1 ~c:1;
      e 0.1 Trace.Discover_add ~a:1 ~b:0 ~c:1;
      e 1.0 Trace.Send ~a:0 ~b:1 ~c:1;
      e 1.2 Trace.Edge_remove ~a:0 ~b:1;
      (* in-flight message of a removed edge must be dropped, not delivered *)
      e 1.5 Trace.Deliver ~a:0 ~b:1 ~c:1;
    ]
  in
  let report = Conformance.audit (cfg ~check_gaps:false 2.0) trace in
  check_flags report "deliver-on-absent-edge"

let test_deliver_across_epochs () =
  let trace =
    [
      e 0. Trace.Edge_add ~a:0 ~b:1;
      e 0.05 Trace.Discover_add ~a:0 ~b:1 ~c:1;
      e 0.05 Trace.Discover_add ~a:1 ~b:0 ~c:1;
      e 0.5 Trace.Send ~a:0 ~b:1 ~c:1;
      e 0.6 Trace.Edge_remove ~a:0 ~b:1;
      e 0.7 Trace.Edge_add ~a:0 ~b:1;
      e 0.75 Trace.Discover_add ~a:0 ~b:1 ~c:3;
      e 0.75 Trace.Discover_add ~a:1 ~b:0 ~c:3;
      (* stale epoch-1 message surviving a down/up cycle *)
      e 0.9 Trace.Deliver ~a:0 ~b:1 ~c:1;
    ]
  in
  check_flags (Conformance.audit (cfg ~check_gaps:false 1.0) trace) "deliver-across-epochs"

let test_send_on_absent_edge () =
  let trace = [ e 0.5 Trace.Send ~a:0 ~b:1 ~c:1 ] in
  check_flags (Conformance.audit (cfg ~check_gaps:false 1.0) trace) "send-on-absent-edge"

let test_late_discovery () =
  let trace =
    [
      e 0. Trace.Edge_add ~a:0 ~b:1;
      e (d_bound +. 0.5) Trace.Discover_add ~a:0 ~b:1 ~c:1;
    ]
  in
  let report = Conformance.audit (cfg ~check_gaps:false (d_bound +. 1.0)) trace in
  check_flags report "late-discovery";
  (* node 1 never hears of the edge at all *)
  check_flags report "missed-discovery"

let test_missed_discovery () =
  let trace = [ e 0. Trace.Edge_add ~a:0 ~b:1 ] in
  let report = Conformance.audit (cfg ~check_gaps:false (d_bound +. 1.0)) trace in
  check_flags report "missed-discovery";
  Alcotest.(check int) "exactly one violation" 1 (List.length report.Report.violations)

let test_undelivered_within_t () =
  let trace =
    [
      e 0. Trace.Edge_add ~a:0 ~b:1;
      e 0.1 Trace.Discover_add ~a:0 ~b:1 ~c:1;
      e 0.1 Trace.Discover_add ~a:1 ~b:0 ~c:1;
      e 0.2 Trace.Send ~a:0 ~b:1 ~c:1;
      (* delivery window [0.2, 0.2+T] closes well before the horizon *)
    ]
  in
  check_flags (Conformance.audit (cfg ~check_gaps:false 3.0) trace) "undelivered-within-T"

let test_receipt_gap () =
  let gap_start = 0.2 in
  let gap_end = gap_start +. dt_bound +. 0.75 in
  let trace =
    [
      e 0. Trace.Edge_add ~a:0 ~b:1;
      e 0.05 Trace.Discover_add ~a:0 ~b:1 ~c:1;
      e 0.05 Trace.Discover_add ~a:1 ~b:0 ~c:1;
      e gap_start Trace.Send ~a:0 ~b:1 ~c:1;
      e gap_start Trace.Deliver ~a:0 ~b:1 ~c:1;
      e gap_end Trace.Send ~a:0 ~b:1 ~c:1;
      e gap_end Trace.Deliver ~a:0 ~b:1 ~c:1;
    ]
  in
  let report = Conformance.audit (cfg ~check_gaps:true (gap_end +. 0.1)) trace in
  check_flags report "receipt-gap-exceeds-dT";
  (* the same trace audited without gap checking is quiet *)
  let report' = Conformance.audit (cfg ~check_gaps:false (gap_end +. 0.1)) trace in
  Alcotest.(check bool)
    (Printf.sprintf "gap check off => ok (got: %s)" (String.concat ", " (rules report')))
    true (Report.ok report')

let test_report_merge_and_render () =
  let v t rule = { Report.time = t; rule; detail = "d" } in
  let r1 = { Report.violations = [ v 1. "a"; v 3. "c" ]; events_audited = 10; probes = 2 } in
  let r2 = { Report.violations = [ v 2. "b" ]; events_audited = 5; probes = 1 } in
  let m = Report.merge r1 r2 in
  Alcotest.(check (list string)) "chronological merge" [ "a"; "b"; "c" ] (rules m);
  Alcotest.(check int) "summed events" 15 m.Report.events_audited;
  Alcotest.(check int) "summed probes" 3 m.Report.probes;
  Alcotest.(check bool) "merged not ok" false (Report.ok m);
  Alcotest.(check string) "render is deterministic" (Report.render m) (Report.render m)

(* End-to-end: the real engine, audited through the same pipeline the
   fuzzer uses, produces a clean report. *)
let test_real_engine_is_conformant () =
  match
    Audit.Scenario.of_spec
      "n=6 topo=ring drift=split delay=uniform algo=gradient churn=1 seed=11 horizon=60"
  with
  | Error msg -> Alcotest.failf "spec did not parse: %s" msg
  | Ok s ->
    let report = Audit.Scenario.run s in
    Alcotest.(check bool)
      (Printf.sprintf "engine run audits clean (got: %s)"
         (String.concat ", " (rules report)))
      true (Report.ok report);
    Alcotest.(check bool) "trace was actually replayed" true
      (report.Report.events_audited > 100);
    Alcotest.(check bool) "guarantees were actually probed" true
      (report.Report.probes > 10)

let suite =
  [
    Alcotest.test_case "clean trace passes" `Quick test_clean_trace_passes;
    Alcotest.test_case "delay > T flagged" `Quick test_delay_exceeds_t;
    Alcotest.test_case "out-of-order delivery flagged" `Quick test_out_of_order_delivery;
    Alcotest.test_case "phantom delivery flagged" `Quick test_phantom_delivery;
    Alcotest.test_case "deliver on absent edge flagged" `Quick test_deliver_on_absent_edge;
    Alcotest.test_case "deliver across epochs flagged" `Quick test_deliver_across_epochs;
    Alcotest.test_case "send on absent edge flagged" `Quick test_send_on_absent_edge;
    Alcotest.test_case "late discovery flagged" `Quick test_late_discovery;
    Alcotest.test_case "missed discovery flagged" `Quick test_missed_discovery;
    Alcotest.test_case "undelivered within T flagged" `Quick test_undelivered_within_t;
    Alcotest.test_case "receipt gap > dT flagged" `Quick test_receipt_gap;
    Alcotest.test_case "report merge and render" `Quick test_report_merge_and_render;
    Alcotest.test_case "real engine is conformant" `Quick test_real_engine_is_conformant;
  ]
