module Dyngraph = Dsim.Dyngraph

let case name f = Alcotest.test_case name `Quick f

let test_empty () =
  let g = Dyngraph.create ~n:4 in
  Alcotest.(check int) "n" 4 (Dyngraph.n g);
  Alcotest.(check bool) "no edge" false (Dyngraph.has_edge g 0 1);
  Alcotest.(check int) "no edges" 0 (Dyngraph.edge_count g);
  Alcotest.(check (list int)) "no neighbors" [] (Dyngraph.neighbors g 0)

let test_add_remove () =
  let g = Dyngraph.create ~n:4 in
  Alcotest.(check bool) "add" true (Dyngraph.add_edge g ~now:1. 0 1);
  Alcotest.(check bool) "add duplicate" false (Dyngraph.add_edge g ~now:2. 1 0);
  Alcotest.(check bool) "present" true (Dyngraph.has_edge g 1 0);
  Alcotest.(check bool) "remove" true (Dyngraph.remove_edge g ~now:3. 0 1);
  Alcotest.(check bool) "remove again" false (Dyngraph.remove_edge g ~now:4. 0 1);
  Alcotest.(check bool) "absent" false (Dyngraph.has_edge g 0 1)

let test_epoch () =
  let g = Dyngraph.create ~n:3 in
  Alcotest.(check int) "untouched epoch" 0 (Dyngraph.epoch g 0 1);
  ignore (Dyngraph.add_edge g ~now:0. 0 1);
  Alcotest.(check int) "after add" 1 (Dyngraph.epoch g 0 1);
  ignore (Dyngraph.remove_edge g ~now:1. 0 1);
  Alcotest.(check int) "after remove" 2 (Dyngraph.epoch g 0 1);
  ignore (Dyngraph.add_edge g ~now:2. 0 1);
  Alcotest.(check int) "after re-add" 3 (Dyngraph.epoch g 0 1)

let test_since () =
  let g = Dyngraph.create ~n:3 in
  Alcotest.(check (option (float 0.))) "absent" None (Dyngraph.since g 0 1);
  ignore (Dyngraph.add_edge g ~now:5. 0 1);
  Alcotest.(check (option (float 0.))) "present since 5" (Some 5.) (Dyngraph.since g 0 1);
  ignore (Dyngraph.remove_edge g ~now:6. 0 1);
  ignore (Dyngraph.add_edge g ~now:9. 0 1);
  Alcotest.(check (option (float 0.))) "re-added at 9" (Some 9.) (Dyngraph.since g 0 1)

let test_neighbors_sorted () =
  let g = Dyngraph.create ~n:5 in
  ignore (Dyngraph.add_edge g ~now:0. 2 4);
  ignore (Dyngraph.add_edge g ~now:0. 2 0);
  ignore (Dyngraph.add_edge g ~now:0. 2 3);
  Alcotest.(check (list int)) "sorted" [ 0; 3; 4 ] (Dyngraph.neighbors g 2);
  Alcotest.(check int) "degree" 3 (Dyngraph.degree g 2)

let test_edges_normalized () =
  let g = Dyngraph.create ~n:4 in
  ignore (Dyngraph.add_edge g ~now:0. 3 1);
  ignore (Dyngraph.add_edge g ~now:0. 0 2);
  Alcotest.(check (list (pair int int))) "normalized sorted" [ (0, 2); (1, 3) ]
    (Dyngraph.edges g)

let test_iter_fold_edges () =
  let g = Dyngraph.create ~n:4 in
  ignore (Dyngraph.add_edge g ~now:0. 3 1);
  ignore (Dyngraph.add_edge g ~now:0. 0 2);
  ignore (Dyngraph.add_edge g ~now:0. 0 1);
  ignore (Dyngraph.remove_edge g ~now:1. 0 1);
  let seen = ref [] in
  Dyngraph.iter_edges g (fun u v -> seen := (u, v) :: !seen);
  Alcotest.(check (list (pair int int)))
    "iter visits present edges, normalized" [ (0, 2); (1, 3) ]
    (List.sort compare !seen);
  Alcotest.(check int) "fold agrees with edge_count" (Dyngraph.edge_count g)
    (Dyngraph.fold_edges g (fun acc _ _ -> acc + 1) 0)

let test_connectivity () =
  let g = Dyngraph.create ~n:4 in
  Alcotest.(check bool) "empty disconnected" false (Dyngraph.is_connected g);
  ignore (Dyngraph.add_edge g ~now:0. 0 1);
  ignore (Dyngraph.add_edge g ~now:0. 1 2);
  Alcotest.(check bool) "missing node 3" false (Dyngraph.is_connected g);
  ignore (Dyngraph.add_edge g ~now:0. 2 3);
  Alcotest.(check bool) "path connected" true (Dyngraph.is_connected g);
  ignore (Dyngraph.remove_edge g ~now:1. 1 2);
  Alcotest.(check bool) "split" false (Dyngraph.is_connected g)

let test_validation () =
  let g = Dyngraph.create ~n:3 in
  Alcotest.check_raises "self loop" (Invalid_argument "Dyngraph: self-loop") (fun () ->
      ignore (Dyngraph.add_edge g ~now:0. 1 1));
  Alcotest.check_raises "out of range" (Invalid_argument "Dyngraph: node out of range")
    (fun () -> ignore (Dyngraph.add_edge g ~now:0. 0 7))

let test_normalize () =
  Alcotest.(check (pair int int)) "swap" (1, 2) (Dyngraph.normalize 2 1);
  Alcotest.(check (pair int int)) "keep" (1, 2) (Dyngraph.normalize 1 2)

let suite =
  [
    case "empty graph" test_empty;
    case "add/remove" test_add_remove;
    case "epochs count changes" test_epoch;
    case "since timestamps" test_since;
    case "neighbors sorted" test_neighbors_sorted;
    case "edges normalized" test_edges_normalized;
    case "iter/fold edges" test_iter_fold_edges;
    case "connectivity" test_connectivity;
    case "validation" test_validation;
    case "normalize" test_normalize;
  ]
