(* Unit tests of Algorithm 2's event handlers, driven through a real engine
   on small hand-built scenarios. *)

module Engine = Dsim.Engine
module Hwclock = Dsim.Hwclock
module Delay = Dsim.Delay
module Node = Gcs.Node
module Params = Gcs.Params

let case name f = Alcotest.test_case name `Quick f

let feq eps = Alcotest.float eps

let params n = Params.make ~n ()

(* Builds a gradient-node simulation over the given edges and returns the
   node states for inspection. *)
let build ?(n = 2) ?(clocks = None) ?(delay = None) ?(discovery_lag = 0.)
    ?(initial_edges = [ (0, 1) ]) ?tolerance ?timeout ?params:p ?trace ?faults () =
  let p = match p with Some p -> p | None -> params n in
  let clocks =
    match clocks with Some c -> c | None -> Array.init n (fun _ -> Hwclock.perfect)
  in
  let delay =
    match delay with Some d -> d | None -> Delay.constant ~bound:p.Params.delay_bound 0.5
  in
  let engine =
    Engine.create ~clocks ~delay ~discovery_lag ~initial_edges ?trace ?faults
      ~fault_seed:17 ()
  in
  let nodes = Array.make n None in
  for i = 0 to n - 1 do
    Engine.install engine i (fun ctx ->
        let node = Node.create ?tolerance ?timeout p ctx in
        nodes.(i) <- Some node;
        Node.handlers node)
  done;
  let nodes = Array.map Option.get nodes in
  (engine, nodes, p)

let test_initial_state () =
  let engine, nodes, _ = build () in
  Engine.run_until engine 0.;
  Alcotest.check (feq 1e-9) "L = 0" 0. (Node.logical_clock nodes.(0));
  Alcotest.check (feq 1e-9) "Lmax = 0" 0. (Node.max_estimate nodes.(0));
  Alcotest.(check (list int)) "upsilon from initial discovery" [ 1 ]
    (Node.upsilon nodes.(0))

let test_gamma_after_first_message () =
  let engine, nodes, _ = build () in
  Engine.run_until engine 0.4;
  Alcotest.(check (list int)) "gamma empty before delivery" [] (Node.gamma nodes.(0));
  Engine.run_until engine 0.6;
  Alcotest.(check (list int)) "gamma after delivery" [ 1 ] (Node.gamma nodes.(0));
  Alcotest.(check bool) "estimate exists" true (Node.peer_estimate nodes.(0) 1 <> None)

let test_clock_advances_at_hardware_rate () =
  let clocks = [| Hwclock.constant 1.04; Hwclock.constant 0.96 |] in
  let engine, nodes, _ = build ~clocks:(Some clocks) () in
  Engine.run_until engine 10.;
  (* Node 1 chases node 0's Lmax, so it is at least its own hardware clock
     and at most node 0's plus slack. *)
  Alcotest.(check bool) "node0 >= hardware" true
    (Node.logical_clock nodes.(0) >= 10.4 -. 1e-9);
  Alcotest.(check bool) "node1 above its own hardware rate" true
    (Node.logical_clock nodes.(1) > 9.6)

let test_two_nodes_synchronize () =
  let clocks = [| Hwclock.constant 1.05; Hwclock.constant 0.95 |] in
  let engine, nodes, p = build ~clocks:(Some clocks) () in
  Engine.run_until engine 200.;
  let skew = Float.abs (Node.logical_clock nodes.(0) -. Node.logical_clock nodes.(1)) in
  Alcotest.(check bool) "skew below stable bound" true
    (skew <= Params.stable_local_skew p);
  Alcotest.(check bool) "skew small in absolute terms" true (skew < 3.)

let test_lost_timer_removes_from_gamma () =
  let engine, nodes, p = build ~discovery_lag:0.1 () in
  Engine.run_until engine 5.;
  Alcotest.(check (list int)) "gamma populated" [ 1 ] (Node.gamma nodes.(0));
  (* Remove the edge: node 0 stops hearing from 1. After discovery it
     leaves Upsilon immediately; even without discovery the lost timer
     would clear Gamma after dT'. *)
  Engine.schedule_edge_remove engine ~at:5. 0 1;
  Engine.run_until engine (5. +. 0.1 +. Params.delta_t' p +. 0.1);
  Alcotest.(check (list int)) "gamma cleared" [] (Node.gamma nodes.(0));
  Alcotest.(check (list int)) "upsilon cleared" [] (Node.upsilon nodes.(0))

let test_receive_updates_estimate_every_time () =
  let engine, nodes, _ = build () in
  Engine.run_until engine 3.;
  let e1 = Option.get (Node.peer_estimate nodes.(0) 1) in
  Engine.run_until engine 8.;
  let e2 = Option.get (Node.peer_estimate nodes.(0) 1) in
  Alcotest.(check bool) "estimate tracks peer" true (e2 > e1 +. 4.)

let test_c_anchor_set_once_per_gamma_entry () =
  let engine, nodes, p = build () in
  Engine.run_until engine 10.;
  (* The age H - C grows even though messages keep arriving: C is only set
     when v enters Gamma (lines 17-19), not on every receipt (line 20). *)
  let age1 = Option.get (Node.peer_age nodes.(0) 1) in
  Engine.run_until engine 20.;
  let age2 = Option.get (Node.peer_age nodes.(0) 1) in
  Alcotest.(check bool) "age grows across receipts" true (age2 > age1 +. 9.);
  ignore p

let test_tolerance_decays () =
  let engine, nodes, p = build () in
  Engine.run_until engine 1.;
  let b1 = Option.get (Node.peer_tolerance nodes.(0) 1) in
  Engine.run_until engine 50.;
  let b2 = Option.get (Node.peer_tolerance nodes.(0) 1) in
  Alcotest.(check bool) "B decays" true (b2 < b1);
  Alcotest.(check bool) "B at least B0" true (b2 >= p.Params.b0)

let test_custom_tolerance () =
  let engine, nodes, p = build ~tolerance:(Node.Tol_fun (fun ~peer:_ _ -> 42.)) () in
  Engine.run_until engine 5.;
  Alcotest.check (feq 1e-9) "flat tolerance" 42.
    (Option.get (Node.peer_tolerance nodes.(0) 1));
  ignore p

let test_lmax_propagates () =
  (* Node 0 fast: its Lmax leads; node 1 adopts it on receipt. *)
  let clocks = [| Hwclock.constant 1.05; Hwclock.constant 0.95 |] in
  let engine, nodes, _ = build ~clocks:(Some clocks) () in
  Engine.run_until engine 50.;
  let lmax0 = Node.max_estimate nodes.(0) in
  let lmax1 = Node.max_estimate nodes.(1) in
  Alcotest.(check bool) "close" true (Float.abs (lmax0 -. lmax1) < 1.);
  Alcotest.(check bool) "node1 pulled above its hardware clock" true (lmax1 > 0.95 *. 50.)

let test_never_exceeds_lmax () =
  let clocks = [| Hwclock.constant 1.05; Hwclock.constant 0.95 |] in
  let engine, nodes, _ = build ~clocks:(Some clocks) () in
  let ok = ref true in
  let rec probe t =
    if t <= 60. then
      Engine.at engine ~time:t (fun () ->
          Array.iter
            (fun node ->
              if Node.logical_clock node > Node.max_estimate node +. 1e-9 then ok := false)
            nodes;
          probe (t +. 0.5))
  in
  probe 0.;
  Engine.run_until engine 60.;
  Alcotest.(check bool) "L <= Lmax always (Property 6.3)" true !ok

let test_blocked_detection () =
  (* Three nodes on a path; node 2 far ahead via fast clock, node 0 far
     behind: the middle node's raise is capped by its estimate of node 0
     once skews exceed the (tiny, flat) tolerance. *)
  let clocks =
    [| Hwclock.constant 0.95; Hwclock.constant 1.0; Hwclock.constant 1.05 |]
  in
  let engine, nodes, _ =
    build ~n:3 ~clocks:(Some clocks) ~initial_edges:[ (0, 1); (1, 2) ]
      ~tolerance:(Node.Tol_fun (fun ~peer:_ _ -> 25.6)) ()
  in
  Engine.run_until engine 400.;
  (* node 1 wants Lmax (from node 2) but is held back by node 0. *)
  let lag1 = Node.max_estimate nodes.(1) -. Node.logical_clock nodes.(1) in
  if lag1 > 1e-6 then
    Alcotest.(check bool) "lagging node is blocked" true (Node.is_blocked nodes.(1))

let test_jump_counter () =
  let clocks = [| Hwclock.constant 1.05; Hwclock.constant 0.95 |] in
  let engine, nodes, _ = build ~clocks:(Some clocks) () in
  Engine.run_until engine 50.;
  Alcotest.(check bool) "slow node jumps" true (Node.discrete_jumps nodes.(1) > 0);
  Alcotest.(check bool) "messages sent" true (Node.messages_sent nodes.(0) > 40)

let test_gamma_reentry_resets_tolerance () =
  (* Lemma 6.10 hinges on C^v being the time v LAST entered Gamma: when an
     edge disappears long enough for v to leave Gamma and then returns,
     the edge must be treated as brand new (tolerance back at B(0)). *)
  let engine, nodes, p = build ~discovery_lag:0.05 () in
  Engine.run_until engine 40.;
  let b_aged = Option.get (Node.peer_tolerance nodes.(0) 1) in
  Alcotest.(check bool) "tolerance decayed to the floor by t=40" true
    (b_aged <= p.Params.b0 +. 1e-6);
  Engine.schedule_edge_remove engine ~at:40. 0 1;
  Engine.schedule_edge_add engine ~at:50. 0 1;
  Engine.run_until engine 45.;
  Alcotest.(check (list int)) "gamma empty while down" [] (Node.gamma nodes.(0));
  Engine.run_until engine 52.;
  let age = Option.get (Node.peer_age nodes.(0) 1) in
  let b_fresh = Option.get (Node.peer_tolerance nodes.(0) 1) in
  Alcotest.(check bool) "age restarted" true (age < 3.);
  Alcotest.(check bool) "tolerance back near B(0)" true (b_fresh > Params.b p 5.)

let test_gamma_reentry_after_silence_only () =
  (* Even without any discover(remove) - pure silence via the lost timer -
     re-entry must reset C^v. Silence is forced by removing the edge with
     a discovery lag longer than the test. *)
  let engine, nodes, p = build ~discovery_lag:1000. () in
  Engine.run_until engine 40.;
  Engine.schedule_edge_remove engine ~at:40. 0 1;
  (* No discovery: gamma is cleared by the lost timer after dT'. *)
  Engine.run_until engine (41. +. Params.delta_t' p +. 0.5);
  Alcotest.(check (list int)) "gamma cleared by silence" [] (Node.gamma nodes.(0));
  Alcotest.(check (list int)) "upsilon still believes the edge" [ 1 ]
    (Node.upsilon nodes.(0));
  Engine.schedule_edge_add engine ~at:50. 0 1;
  Engine.run_until engine 55.;
  let age = Option.get (Node.peer_age nodes.(0) 1) in
  Alcotest.(check bool) "age restarted after silence" true (age < 6.)

let test_discover_remove_cancels_lost_timer () =
  (* Discovery of an edge removal drops the peer from Γ; the pending
     Lost timer must be cancelled with it, or it later fires as a live
     timer and churns AdjustClock for a peer that is long gone. Large ΔH
     keeps Tick timers out of the window, so every Timer_fire below
     would be a stale Lost firing. *)
  let p =
    Params.make ~n:2 ~delta_h:50. ()
  in
  let trace = Dsim.Trace.create () in
  let engine, nodes, _ =
    build ~params:p ~trace ~timeout:(Node.Timeout_fun (fun ~peer:_ -> 3.)) ()
  in
  Engine.schedule_edge_remove engine ~at:1. 0 1;
  (* Updates exchanged at t=0 arrive at t=0.5 and arm Lost timers for
     t=3.5; the removal is discovered at t=1. Run well past 3.5. *)
  Engine.run_until engine 10.;
  Alcotest.(check (list int)) "gamma cleared" [] (Node.gamma nodes.(0));
  Alcotest.(check int) "no live timer fires after cancellation" 0
    (Dsim.Trace.count trace Dsim.Trace.Timer_fire);
  Alcotest.(check int) "both cancelled Lost timers pop as stale" 2
    (Dsim.Trace.count trace Dsim.Trace.Timer_stale)

let test_isolated_node_follows_own_clock () =
  let engine, nodes, _ = build ~n:2 ~initial_edges:[] () in
  Engine.run_until engine 10.;
  Alcotest.check (feq 1e-9) "L = hardware" 10. (Node.logical_clock nodes.(0));
  Alcotest.(check (list int)) "no neighbours" [] (Node.upsilon nodes.(0))

(* Restart semantics (fault injection): the crash loses every piece of
   volatile state, so right after the restart event — before any
   post-restart receipt — the peer table is empty except for re-discovered
   Upsilon membership, estimates are gone, and the clock registers are
   back at the initial state. *)
let test_restart_loses_state () =
  let faults =
    [
      Dsim.Fault.Crash { node = 1; at = 5. };
      Dsim.Fault.Restart { node = 1; at = 8.; corrupt = false };
    ]
  in
  let engine, nodes, _ = build ~faults () in
  Engine.run_until engine 4.;
  Alcotest.(check (list int)) "gamma populated before crash" [ 0 ]
    (Node.gamma nodes.(1));
  Alcotest.(check bool) "clock advanced before crash" true
    (Node.logical_clock nodes.(1) > 3.);
  Engine.run_until engine 8.;
  (* t = 8: the restart and the re-discovery fire, but the first
     post-restart delivery (constant delay 0.5) has not happened yet. *)
  Alcotest.(check (list int)) "gamma empty after restart" [] (Node.gamma nodes.(1));
  Alcotest.(check (list int)) "upsilon re-discovered" [ 0 ] (Node.upsilon nodes.(1));
  Alcotest.(check bool) "peer estimate forgotten" true
    (Node.peer_estimate nodes.(1) 0 = None);
  Alcotest.check (feq 1e-9) "L reset" 0. (Node.logical_clock nodes.(1));
  Alcotest.check (feq 1e-9) "Lmax reset" 0. (Node.max_estimate nodes.(1));
  (* The survivor's state is untouched and re-synchronization follows. *)
  Alcotest.(check bool) "peer kept its clock" true (Node.logical_clock nodes.(0) > 7.);
  Engine.run_until engine 30.;
  Alcotest.(check (list int)) "gamma recovered" [ 0 ] (Node.gamma nodes.(1));
  Alcotest.(check bool) "clocks re-synchronized" true
    (Float.abs (Node.logical_clock nodes.(0) -. Node.logical_clock nodes.(1)) < 2.)

let test_corrupt_restart_recovers () =
  let faults =
    [
      Dsim.Fault.Crash { node = 1; at = 5. };
      Dsim.Fault.Restart { node = 1; at = 8.; corrupt = true };
    ]
  in
  let engine, nodes, p = build ~faults () in
  Engine.run_until engine 8.;
  let l = Node.logical_clock nodes.(1) and m = Node.max_estimate nodes.(1) in
  Alcotest.(check bool) "corrupted registers stay ordered" true (l <= m);
  Alcotest.(check bool) "corruption drew garbage" true (l <> 0. || m <> 0.);
  Engine.run_until engine 80.;
  Alcotest.(check bool) "skew re-enters the global bound" true
    (Float.abs (Node.logical_clock nodes.(0) -. Node.logical_clock nodes.(1))
    <= Params.global_skew_bound p)

let suite =
  [
    case "initial state" test_initial_state;
    case "gamma entered on first message" test_gamma_after_first_message;
    case "clock advances at hardware rate" test_clock_advances_at_hardware_rate;
    case "two nodes synchronize" test_two_nodes_synchronize;
    case "edge removal clears gamma and upsilon" test_lost_timer_removes_from_gamma;
    case "receive refreshes estimates" test_receive_updates_estimate_every_time;
    case "C anchor persists across receipts" test_c_anchor_set_once_per_gamma_entry;
    case "tolerance decays to B0" test_tolerance_decays;
    case "custom (flat) tolerance" test_custom_tolerance;
    case "Lmax propagates" test_lmax_propagates;
    case "L never exceeds Lmax" test_never_exceeds_lmax;
    case "blocked detection" test_blocked_detection;
    case "jump and message counters" test_jump_counter;
    case "gamma re-entry resets the tolerance clock" test_gamma_reentry_resets_tolerance;
    case "gamma re-entry after pure silence" test_gamma_reentry_after_silence_only;
    case "discover(remove) cancels the lost timer" test_discover_remove_cancels_lost_timer;
    case "isolated node follows own clock" test_isolated_node_follows_own_clock;
    case "restart loses volatile state" test_restart_loses_state;
    case "corrupted restart stays ordered and recovers" test_corrupt_restart_recovers;
  ]
