module Sim = Gcs.Sim
module Params = Gcs.Params
module Hwclock = Dsim.Hwclock
module Delay = Dsim.Delay

let case name f = Alcotest.test_case name `Quick f

let base_cfg ?(algo = Sim.Gradient) ?(n = 8) () =
  let params = Params.make ~n () in
  Sim.config ~algo ~params
    ~clocks:(Array.init n (fun i -> if i mod 2 = 0 then Hwclock.fastest ~rho:0.05 else Hwclock.slowest ~rho:0.05))
    ~delay:(Delay.maximal ~bound:params.Params.delay_bound)
    ~initial_edges:(Topology.Static.path n) ()

let test_runs_and_syncs () =
  let sim = Sim.create (base_cfg ()) in
  Sim.run_until sim 100.;
  let view = Sim.view sim in
  let p = Sim.params sim in
  Alcotest.(check bool) "global skew below bound" true
    (Gcs.Metrics.global_skew view <= Params.global_skew_bound p);
  Alcotest.(check bool) "clocks advanced" true (Sim.logical_clock sim 0 > 50.)

let test_clock_accessors_agree_with_view () =
  let sim = Sim.create (base_cfg ()) in
  Sim.run_until sim 10.;
  let view = Sim.view sim in
  for i = 0 to 7 do
    Alcotest.(check (float 1e-9)) "view = accessor" (Sim.logical_clock sim i)
      (view.Gcs.Metrics.clock_of i)
  done

let test_gradient_node_access () =
  let sim = Sim.create (base_cfg ()) in
  Alcotest.(check bool) "gradient node available" true (Sim.gradient_node sim 0 <> None);
  let max_sim = Sim.create (base_cfg ~algo:Sim.Max_only ()) in
  Alcotest.(check bool) "max-only has no gradient node" true
    (Sim.gradient_node max_sim 0 = None)

let test_counters () =
  let sim = Sim.create (base_cfg ()) in
  Sim.run_until sim 50.;
  Alcotest.(check bool) "messages flowing" true (Sim.total_messages sim > 100);
  Alcotest.(check bool) "some jumps" true (Sim.total_jumps sim > 0)

let test_topology_scheduling () =
  let sim = Sim.create (base_cfg ()) in
  Sim.add_edge_at sim ~at:5. 0 7;
  Sim.remove_edge_at sim ~at:10. 0 7;
  Sim.run_until sim 7.;
  Alcotest.(check bool) "edge added" true
    (Dsim.Dyngraph.has_edge (Dsim.Engine.graph (Sim.engine sim)) 0 7);
  Sim.run_until sim 12.;
  Alcotest.(check bool) "edge removed" false
    (Dsim.Dyngraph.has_edge (Dsim.Engine.graph (Sim.engine sim)) 0 7)

let test_config_validation () =
  let n = 4 in
  let params = Params.make ~n () in
  let good_clocks = Array.init n (fun _ -> Hwclock.perfect) in
  let delay = Delay.zero ~bound:params.Params.delay_bound in
  let edges = Topology.Static.path n in
  (match
     Sim.config ~params ~clocks:(Array.make 3 Hwclock.perfect) ~delay
       ~initial_edges:edges ()
   with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "wrong clock count accepted");
  (match
     Sim.config ~params
       ~clocks:(Array.init n (fun _ -> Hwclock.constant 1.2))
       ~delay ~initial_edges:edges ()
   with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "drift violation accepted");
  (match
     Sim.config ~params ~clocks:good_clocks
       ~delay:(Delay.zero ~bound:(2. *. params.Params.delay_bound))
       ~initial_edges:edges ()
   with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "delay bound above T accepted");
  (match
     Sim.config ~params ~clocks:good_clocks ~delay ~initial_edges:edges
       ~discovery_lag:(params.Params.discovery_bound +. 1.) ()
   with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "lag above D accepted")

let test_algo_names () =
  Alcotest.(check string) "gradient" "gradient" (Sim.algo_to_string Sim.Gradient);
  Alcotest.(check string) "flat" "flat-gradient" (Sim.algo_to_string Sim.Flat_gradient);
  Alcotest.(check string) "max" "max-only" (Sim.algo_to_string Sim.Max_only)

let test_deterministic_replay () =
  let run () =
    let sim = Sim.create (base_cfg ()) in
    Sim.run_until sim 60.;
    Array.init 8 (Sim.logical_clock sim)
  in
  Alcotest.(check (array (float 0.))) "identical clocks" (run ()) (run ())

let test_larger_network_scales () =
  (* Deterministic scale guard: a 200-node path runs to completion with
     the expected event volume and keeps its guarantees. Stale timer
     entries (cancelled or superseded) are discarded, not dispatched, so
     they do not count towards the volume. *)
  let n = 200 in
  let params = Params.make ~n () in
  let cfg =
    Sim.config ~params
      ~clocks:
        (Array.init n (fun i ->
             if i < n / 2 then Hwclock.fastest ~rho:0.05 else Hwclock.slowest ~rho:0.05))
      ~delay:(Delay.maximal ~bound:params.Params.delay_bound)
      ~initial_edges:(Topology.Static.path n) ()
  in
  let sim = Sim.create cfg in
  Sim.run_until sim 50.;
  let events = Dsim.Engine.events_processed (Sim.engine sim) in
  Alcotest.(check bool) "plausible event volume" true (events > 25_000 && events < 300_000);
  Alcotest.(check bool) "global skew within bound" true
    (Gcs.Metrics.global_skew (Sim.view sim) <= Params.global_skew_bound params)

let suite =
  [
    case "runs and synchronizes" test_runs_and_syncs;
    case "200-node network" test_larger_network_scales;
    case "view agrees with accessors" test_clock_accessors_agree_with_view;
    case "gradient node access" test_gradient_node_access;
    case "counters" test_counters;
    case "topology scheduling" test_topology_scheduling;
    case "config validation" test_config_validation;
    case "algo names" test_algo_names;
    case "deterministic replay" test_deterministic_replay;
  ]
