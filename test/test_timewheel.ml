(* The timer wheel's ordering contract: entries surface in strictly
   increasing (deadline, seq) order — the same total order the event heap
   produces — regardless of which level they land on, how often they
   cascade, or whether they are armed after their granule was resolved. *)

module Tw = Dsim.Timewheel

let case name f = Alcotest.test_case name `Quick f

(* Drain every entry due by [upto], returning (deadline, seq, node, label,
   gen) tuples in surfacing order. *)
let drain w ~upto =
  let out = ref [] in
  while Tw.peek w ~upto do
    out :=
      (Tw.top_time w, Tw.top_seq w, Tw.top_node w, Tw.top_label w, Tw.top_gen w)
      :: !out;
    Tw.pop w
  done;
  List.rev !out

let arm_all w entries =
  List.iter
    (fun (deadline, seq) -> Tw.arm w ~node:seq ~label:0 ~gen:0 ~seq ~deadline)
    entries

let deadlines_seqs popped = List.map (fun (d, s, _, _, _) -> (d, s)) popped

let test_ordering () =
  let w = Tw.create ~granularity:0.5 () in
  (* Scrambled deadlines, seqs in arming order. *)
  arm_all w [ (7.3, 1); (0.2, 2); (3.9, 3); (0.9, 4); (12.0, 5); (3.1, 6) ];
  let popped = deadlines_seqs (drain w ~upto:20.) in
  Alcotest.(check (list (pair (float 1e-12) int)))
    "sorted by (deadline, seq)"
    [ (0.2, 2); (0.9, 4); (3.1, 6); (3.9, 3); (7.3, 1); (12.0, 5) ]
    popped

let test_seq_ties () =
  let w = Tw.create ~granularity:1.0 () in
  (* Equal deadlines resolve by seq — the engine's determinism tie-break. *)
  arm_all w [ (4.0, 3); (4.0, 1); (4.0, 2) ];
  let popped = deadlines_seqs (drain w ~upto:10.) in
  Alcotest.(check (list (pair (float 1e-12) int)))
    "seq breaks deadline ties"
    [ (4.0, 1); (4.0, 2); (4.0, 3) ]
    popped

let test_cascade_across_levels () =
  (* Tiny wheel (4 slots, 3 levels) so every deadline below crosses at
     least one level boundary before resolving: level 0 spans granules
     [0, 4), level 1 [4, 16), level 2 [16, 64). *)
  let w = Tw.create ~granularity:1.0 ~slots:4 ~levels:3 () in
  let entries = [ (2.5, 1); (6.1, 2); (14.9, 3); (30.0, 4); (61.5, 5) ] in
  arm_all w entries;
  Alcotest.(check int) "size counts all levels" 5 (Tw.size w);
  let popped = deadlines_seqs (drain w ~upto:100.) in
  Alcotest.(check (list (pair (float 1e-12) int)))
    "cascades preserve order"
    [ (2.5, 1); (6.1, 2); (14.9, 3); (30.0, 4); (61.5, 5) ]
    popped;
  Alcotest.(check int) "drained" 0 (Tw.size w)

let test_far_future_clamped () =
  (* Span = 4^2 = 16 granules: a deadline 100 granules out exceeds it and
     is parked in the top level, re-cascading until its granule is
     reachable. It must not surface early, and entries armed later with
     nearer deadlines must still come out first. *)
  let w = Tw.create ~granularity:1.0 ~slots:4 ~levels:2 () in
  Tw.arm w ~node:0 ~label:0 ~gen:0 ~seq:1 ~deadline:100.0;
  Alcotest.(check bool) "far entry not due early" false (Tw.peek w ~upto:99.0);
  Tw.arm w ~node:0 ~label:0 ~gen:0 ~seq:2 ~deadline:50.0;
  let popped = deadlines_seqs (drain w ~upto:200.) in
  Alcotest.(check (list (pair (float 1e-12) int)))
    "clamped entries surface at their true deadlines"
    [ (50.0, 2); (100.0, 1) ]
    popped

let test_arm_into_resolved_past () =
  let w = Tw.create ~granularity:1.0 () in
  Tw.arm w ~node:0 ~label:0 ~gen:0 ~seq:1 ~deadline:8.0;
  Alcotest.(check bool) "first entry due" true (Tw.peek w ~upto:20.);
  (* The cursor has advanced past granule 2; a re-arm landing there must
     still surface, and in (deadline, seq) order. *)
  Tw.arm w ~node:0 ~label:0 ~gen:0 ~seq:2 ~deadline:2.0;
  let popped = deadlines_seqs (drain w ~upto:20.) in
  Alcotest.(check (list (pair (float 1e-12) int)))
    "past-granule arm surfaces in order"
    [ (2.0, 2); (8.0, 1) ]
    popped

let test_peek_respects_upto () =
  let w = Tw.create ~granularity:1.0 () in
  Tw.arm w ~node:3 ~label:7 ~gen:5 ~seq:1 ~deadline:5.0;
  Alcotest.(check bool) "not due before deadline" false (Tw.peek w ~upto:4.9);
  Alcotest.(check bool) "due at deadline" true (Tw.peek w ~upto:5.0);
  Alcotest.(check (float 1e-12)) "top_time" 5.0 (Tw.top_time w);
  Alcotest.(check int) "top_node" 3 (Tw.top_node w);
  Alcotest.(check int) "top_label" 7 (Tw.top_label w);
  Alcotest.(check int) "top_gen" 5 (Tw.top_gen w);
  Alcotest.(check int) "size before pop" 1 (Tw.size w);
  Tw.pop w;
  Alcotest.(check int) "size after pop" 0 (Tw.size w);
  Alcotest.(check bool) "empty after pop" false (Tw.peek w ~upto:100.)

let test_interleaved_arm_and_drain () =
  (* Exercise cursor movement interleaved with arming, mimicking the
     engine's re-arm pattern: pop one, arm its successor further out. *)
  let w = Tw.create ~granularity:0.25 ~slots:8 ~levels:3 () in
  let seq = ref 0 in
  let next_seq () = incr seq; !seq in
  for i = 0 to 9 do
    Tw.arm w ~node:i ~label:0 ~gen:0 ~seq:(next_seq ()) ~deadline:(0.9 *. float_of_int (i + 1))
  done;
  let surfaced = ref [] in
  let t = ref 0. in
  while Tw.size w > 0 && !t < 100. do
    t := !t +. 1.3;
    while Tw.peek w ~upto:!t do
      let d = Tw.top_time w and node = Tw.top_node w and g = Tw.top_gen w in
      surfaced := d :: !surfaced;
      Tw.pop w;
      (* Re-arm each entry twice, doubling its period. *)
      if g < 2 then
        Tw.arm w ~node ~label:0 ~gen:(g + 1) ~seq:(next_seq ())
          ~deadline:(d +. (2.2 *. float_of_int (g + 1)))
    done
  done;
  let surfaced = List.rev !surfaced in
  Alcotest.(check int) "all entries surfaced" 30 (List.length surfaced);
  let sorted = List.sort Float.compare surfaced in
  Alcotest.(check (list (float 1e-12))) "non-decreasing deadlines" sorted surfaced

let suite =
  [
    case "pops in (deadline, seq) order" test_ordering;
    case "equal deadlines break by seq" test_seq_ties;
    case "cascade across levels" test_cascade_across_levels;
    case "far-future deadlines clamp and re-cascade" test_far_future_clamped;
    case "arm into already-resolved granule" test_arm_into_resolved_past;
    case "peek honours upto; top fields; size" test_peek_respects_upto;
    case "interleaved arm/drain stays ordered" test_interleaved_arm_and_drain;
  ]
