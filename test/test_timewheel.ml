(* The timer wheel's ordering contract: entries surface in strictly
   increasing (deadline, seq) order — the same total order the event heap
   produces — regardless of which level they land on, how often they
   cascade, or whether they are armed after their granule was resolved. *)

module Tw = Dsim.Timewheel

let case name f = Alcotest.test_case name `Quick f

(* Drain every entry due by [upto], returning (deadline, seq, node, label,
   gen) tuples in surfacing order. *)
let drain w ~upto =
  let out = ref [] in
  while Tw.peek w ~upto do
    out :=
      (Tw.top_time w, Tw.top_seq w, Tw.top_node w, Tw.top_label w, Tw.top_gen w)
      :: !out;
    Tw.pop w
  done;
  List.rev !out

let arm_all w entries =
  List.iter
    (fun (deadline, seq) -> Tw.arm w ~node:seq ~label:0 ~gen:0 ~seq ~deadline)
    entries

let deadlines_seqs popped = List.map (fun (d, s, _, _, _) -> (d, s)) popped

let test_ordering () =
  let w = Tw.create ~granularity:0.5 () in
  (* Scrambled deadlines, seqs in arming order. *)
  arm_all w [ (7.3, 1); (0.2, 2); (3.9, 3); (0.9, 4); (12.0, 5); (3.1, 6) ];
  let popped = deadlines_seqs (drain w ~upto:20.) in
  Alcotest.(check (list (pair (float 1e-12) int)))
    "sorted by (deadline, seq)"
    [ (0.2, 2); (0.9, 4); (3.1, 6); (3.9, 3); (7.3, 1); (12.0, 5) ]
    popped

let test_seq_ties () =
  let w = Tw.create ~granularity:1.0 () in
  (* Equal deadlines resolve by seq — the engine's determinism tie-break. *)
  arm_all w [ (4.0, 3); (4.0, 1); (4.0, 2) ];
  let popped = deadlines_seqs (drain w ~upto:10.) in
  Alcotest.(check (list (pair (float 1e-12) int)))
    "seq breaks deadline ties"
    [ (4.0, 1); (4.0, 2); (4.0, 3) ]
    popped

let test_cascade_across_levels () =
  (* Tiny wheel (4 slots, 3 levels) so every deadline below crosses at
     least one level boundary before resolving: level 0 spans granules
     [0, 4), level 1 [4, 16), level 2 [16, 64). *)
  let w = Tw.create ~granularity:1.0 ~slots:4 ~levels:3 () in
  let entries = [ (2.5, 1); (6.1, 2); (14.9, 3); (30.0, 4); (61.5, 5) ] in
  arm_all w entries;
  Alcotest.(check int) "size counts all levels" 5 (Tw.size w);
  let popped = deadlines_seqs (drain w ~upto:100.) in
  Alcotest.(check (list (pair (float 1e-12) int)))
    "cascades preserve order"
    [ (2.5, 1); (6.1, 2); (14.9, 3); (30.0, 4); (61.5, 5) ]
    popped;
  Alcotest.(check int) "drained" 0 (Tw.size w)

let test_far_future_clamped () =
  (* Span = 4^2 = 16 granules: a deadline 100 granules out exceeds it and
     is parked in the top level, re-cascading until its granule is
     reachable. It must not surface early, and entries armed later with
     nearer deadlines must still come out first. *)
  let w = Tw.create ~granularity:1.0 ~slots:4 ~levels:2 () in
  Tw.arm w ~node:0 ~label:0 ~gen:0 ~seq:1 ~deadline:100.0;
  Alcotest.(check bool) "far entry not due early" false (Tw.peek w ~upto:99.0);
  Tw.arm w ~node:0 ~label:0 ~gen:0 ~seq:2 ~deadline:50.0;
  let popped = deadlines_seqs (drain w ~upto:200.) in
  Alcotest.(check (list (pair (float 1e-12) int)))
    "clamped entries surface at their true deadlines"
    [ (50.0, 2); (100.0, 1) ]
    popped

let test_arm_into_resolved_past () =
  let w = Tw.create ~granularity:1.0 () in
  Tw.arm w ~node:0 ~label:0 ~gen:0 ~seq:1 ~deadline:8.0;
  Alcotest.(check bool) "first entry due" true (Tw.peek w ~upto:20.);
  (* The cursor has advanced past granule 2; a re-arm landing there must
     still surface, and in (deadline, seq) order. *)
  Tw.arm w ~node:0 ~label:0 ~gen:0 ~seq:2 ~deadline:2.0;
  let popped = deadlines_seqs (drain w ~upto:20.) in
  Alcotest.(check (list (pair (float 1e-12) int)))
    "past-granule arm surfaces in order"
    [ (2.0, 2); (8.0, 1) ]
    popped

let test_peek_respects_upto () =
  let w = Tw.create ~granularity:1.0 () in
  Tw.arm w ~node:3 ~label:7 ~gen:5 ~seq:1 ~deadline:5.0;
  Alcotest.(check bool) "not due before deadline" false (Tw.peek w ~upto:4.9);
  Alcotest.(check bool) "due at deadline" true (Tw.peek w ~upto:5.0);
  Alcotest.(check (float 1e-12)) "top_time" 5.0 (Tw.top_time w);
  Alcotest.(check int) "top_node" 3 (Tw.top_node w);
  Alcotest.(check int) "top_label" 7 (Tw.top_label w);
  Alcotest.(check int) "top_gen" 5 (Tw.top_gen w);
  Alcotest.(check int) "size before pop" 1 (Tw.size w);
  Tw.pop w;
  Alcotest.(check int) "size after pop" 0 (Tw.size w);
  Alcotest.(check bool) "empty after pop" false (Tw.peek w ~upto:100.)

let test_interleaved_arm_and_drain () =
  (* Exercise cursor movement interleaved with arming, mimicking the
     engine's re-arm pattern: pop one, arm its successor further out. *)
  let w = Tw.create ~granularity:0.25 ~slots:8 ~levels:3 () in
  let seq = ref 0 in
  let next_seq () = incr seq; !seq in
  for i = 0 to 9 do
    Tw.arm w ~node:i ~label:0 ~gen:0 ~seq:(next_seq ()) ~deadline:(0.9 *. float_of_int (i + 1))
  done;
  let surfaced = ref [] in
  let t = ref 0. in
  while Tw.size w > 0 && !t < 100. do
    t := !t +. 1.3;
    while Tw.peek w ~upto:!t do
      let d = Tw.top_time w and node = Tw.top_node w and g = Tw.top_gen w in
      surfaced := d :: !surfaced;
      Tw.pop w;
      (* Re-arm each entry twice, doubling its period. *)
      if g < 2 then
        Tw.arm w ~node ~label:0 ~gen:(g + 1) ~seq:(next_seq ())
          ~deadline:(d +. (2.2 *. float_of_int (g + 1)))
    done
  done;
  let surfaced = List.rev !surfaced in
  Alcotest.(check int) "all entries surfaced" 30 (List.length surfaced);
  let sorted = List.sort Float.compare surfaced in
  Alcotest.(check (list (float 1e-12))) "non-decreasing deadlines" sorted surfaced

(* --- Far-future clamp boundary pins (ISSUE 6 satellite) -------------- *)

let test_last_covered_granule_of_each_ring () =
  (* Span = 4^3 = 64. From cursor 0, the last granule each ring covers is
     slots^(l+1) - 1 (granules 3, 15, 63), and granule 64 is the first
     uncovered one (parked at cursor + span - 1 = 63, the same slot a
     real granule-63 entry lives in). All four must surface at their true
     deadlines, in order, with the parked entry re-placed rather than
     surfaced when slot 63 is drained. *)
  let w = Tw.create ~granularity:1.0 ~slots:4 ~levels:3 () in
  arm_all w [ (64.0, 1); (63.0, 2); (15.0, 3); (3.0, 4) ];
  let popped = deadlines_seqs (drain w ~upto:200.) in
  Alcotest.(check (list (pair (float 1e-12) int)))
    "ring-boundary deadlines surface in order"
    [ (3.0, 4); (15.0, 3); (63.0, 2); (64.0, 1) ]
    popped

let test_park_into_drained_slot () =
  (* One-level wheel: span = slots, and a far-future entry re-places from
     the very level-0 slot being drained back into that same slot (parked
     granule cursor + span - 1 ≡ cursor - 1 ≡ the drained slot mod slots).
     This is the array-aliasing seam [resolve] now detaches around; pile
     several parked entries together with a due one so the drain loop both
     surfaces and re-parks from the same bucket. *)
  let w = Tw.create ~granularity:1.0 ~slots:4 ~levels:1 () in
  arm_all w [ (100.0, 1); (101.0, 2); (102.0, 3); (3.0, 4) ];
  (* All four share slot 3: granule 3 is real, the rest are parked there. *)
  let popped = deadlines_seqs (drain w ~upto:99.) in
  Alcotest.(check (list (pair (float 1e-12) int)))
    "only the real granule-3 entry is due early"
    [ (3.0, 4) ]
    popped;
  let popped = deadlines_seqs (drain w ~upto:300.) in
  Alcotest.(check (list (pair (float 1e-12) int)))
    "parked entries survive repeated re-parking and surface in order"
    [ (100.0, 1); (101.0, 2); (102.0, 3) ]
    popped

let test_rearm_into_cursor_granule () =
  (* Advance the cursor mid-stream, then arm a deadline inside the
     cursor's own (not yet resolved) granule: distance 0, level 0, and it
     must surface ahead of everything further out. *)
  let w = Tw.create ~granularity:1.0 ~slots:4 ~levels:2 () in
  arm_all w [ (5.0, 1); (40.0, 2) ];
  Alcotest.(check (list (pair (float 1e-12) int)))
    "first drain" [ (5.0, 1) ]
    (deadlines_seqs (drain w ~upto:6.4));
  (* Cursor now sits at granule 7 (the granule containing 6.4, resolved
     through). Arm exactly into the next unresolved granule. *)
  Tw.arm w ~node:0 ~label:0 ~gen:0 ~seq:3 ~deadline:7.0;
  Alcotest.(check (list (pair (float 1e-12) int)))
    "cursor-granule re-arm surfaces before the far entry"
    [ (7.0, 3); (40.0, 2) ]
    (deadlines_seqs (drain w ~upto:100.))

let test_clamp_then_cancel_then_rearm () =
  (* The engine cancels by bumping the generation and arming a fresh
     (gen, seq): the stale parked entry stays in the wheel and must
     surface late, after the replacement, carrying its stale gen — never
     early, and never reordered by the re-cascade of its parking slot. *)
  let w = Tw.create ~granularity:1.0 ~slots:4 ~levels:2 () in
  (* Far-future arm: granule 90 is beyond span 16, parked at slot of
     granule 15. *)
  Tw.arm w ~node:7 ~label:1 ~gen:0 ~seq:1 ~deadline:90.0;
  (* "Cancel" + re-arm nearer with a newer gen and seq. *)
  Tw.arm w ~node:7 ~label:1 ~gen:1 ~seq:2 ~deadline:12.0;
  let popped = drain w ~upto:200. in
  Alcotest.(check (list (pair (float 1e-12) int)))
    "replacement first, stale parked entry at its true deadline"
    [ (12.0, 2); (90.0, 1) ]
    (deadlines_seqs popped);
  Alcotest.(check (list int))
    "gens distinguish live from stale" [ 1; 0 ]
    (List.map (fun (_, _, _, _, g) -> g) popped)

(* Deterministic model-based differential: random arm/drain interleavings
   with deadlines biased to the clamp boundaries (last covered granule of
   each ring, first uncovered granule, the cursor's own granule, the
   resolved past), checked against a sorted-list reference. Compact
   version of the offline fuzzer used to audit the clamp logic. *)
let test_differential_vs_reference () =
  let run_case ~seed ~slots ~levels ~granularity ~ops =
    let prng = Dsim.Prng.of_int seed in
    let w = Tw.create ~granularity ~slots ~levels () in
    let span = int_of_float (float_of_int slots ** float_of_int levels) in
    let reference = ref [] in
    let seq = ref 0 in
    let drained_upto = ref 0. in
    for _ = 1 to ops do
      let g_now = int_of_float (Float.floor (!drained_upto /. granularity)) in
      if Dsim.Prng.int prng 100 < 60 then begin
        let deadline =
          match Dsim.Prng.int prng 8 with
          | 0 -> !drained_upto +. (Dsim.Prng.float prng 1. *. 3. *. granularity)
          | 1 -> float_of_int (g_now + span - 1) *. granularity
          | 2 -> float_of_int (g_now + span) *. granularity
          | 3 ->
            float_of_int (g_now + span + Dsim.Prng.int prng (3 * span))
            *. granularity
          | 4 -> float_of_int g_now *. granularity
          | 5 ->
            let l = Dsim.Prng.int prng levels in
            let wl1 = int_of_float (float_of_int slots ** float_of_int (l + 1)) in
            float_of_int (g_now + wl1 - 1) *. granularity
          | 6 ->
            Float.max 0.
              (!drained_upto -. (Dsim.Prng.float prng 1. *. 5. *. granularity))
          | _ ->
            !drained_upto
            +. (Dsim.Prng.float prng 1. *. float_of_int span *. granularity)
        in
        let deadline = Float.max 0. deadline in
        incr seq;
        Tw.arm w ~node:0 ~label:0 ~gen:0 ~seq:!seq ~deadline;
        reference := (deadline, !seq) :: !reference
      end
      else begin
        let upto =
          !drained_upto
          +. (Dsim.Prng.float prng 1. *. 4. *. granularity
             *. float_of_int (1 + Dsim.Prng.int prng span))
        in
        let expected =
          List.filter (fun (d, _) -> d <= upto) !reference
          |> List.sort (fun (d1, s1) (d2, s2) ->
                 match Float.compare d1 d2 with 0 -> compare s1 s2 | c -> c)
        in
        let got = deadlines_seqs (drain w ~upto) in
        if got <> expected then
          Alcotest.failf "divergence seed=%d slots=%d levels=%d upto=%g" seed
            slots levels upto;
        reference := List.filter (fun (d, _) -> d > upto) !reference;
        drained_upto := Float.max !drained_upto upto
      end
    done
  in
  List.iter
    (fun (slots, levels, granularity) ->
      for seed = 1 to 40 do
        run_case ~seed:(seed + (slots * 1000) + (levels * 100000)) ~slots
          ~levels ~granularity ~ops:40
      done)
    [ (2, 1, 1.0); (4, 2, 1.0); (3, 2, 0.25); (4, 3, 1.0) ]

(* Bucket growth seam: a hot bucket (one granule hammered by hundreds of
   entries, the shape a dense node range's Tick timers produce) must keep
   the (deadline, seq) surfacing order and every entry's generation while
   its arrays double repeatedly from the cold start, and again when its
   storage circulates through the detached-bucket scratch on a second
   burst into the same granule. *)
let test_bucket_growth_preserves_order_and_gens () =
  let w = Tw.create ~granularity:1.0 () in
  let burst ~seq0 ~deadline count =
    (* Interleave two deadlines inside the granule and give every entry a
       distinct gen so a dropped or reordered slot is visible. *)
    for k = 0 to count - 1 do
      let d = if k mod 2 = 0 then deadline else deadline +. 0.25 in
      Tw.arm w ~node:(k mod 7) ~label:k ~gen:(1000 + k) ~seq:(seq0 + k) ~deadline:d
    done
  in
  burst ~seq0:0 ~deadline:5.0 300;
  Alcotest.(check int) "all held" 300 (Tw.size w);
  let fp_grown = Tw.footprint_words w in
  let popped = drain w ~upto:6.0 in
  Alcotest.(check int) "all surfaced" 300 (List.length popped);
  (* Expected order: the 150 entries at d=5.0 by seq, then the 150 at
     d=5.25 by seq; gens ride along untouched. *)
  let expect =
    List.init 150 (fun i -> (5.0, 2 * i)) @ List.init 150 (fun i -> (5.25, (2 * i) + 1))
  in
  Alcotest.(check (list (pair (float 1e-12) int)))
    "(deadline, seq) order across growth" expect (deadlines_seqs popped);
  List.iter
    (fun (_, seq, node, label, gen) ->
      Alcotest.(check int) "gen preserved" (1000 + seq) gen;
      Alcotest.(check int) "label preserved" seq label;
      Alcotest.(check int) "node preserved" (seq mod 7) node)
    popped;
  (* Second burst into a later granule: the grown arrays circulate via the
     drain scratch; ordering must survive the swap and no growth beyond
     the first warm-up is required. *)
  burst ~seq0:1000 ~deadline:9.0 300;
  let popped2 = drain w ~upto:10.0 in
  let expect2 =
    List.init 150 (fun i -> (9.0, 1000 + (2 * i)))
    @ List.init 150 (fun i -> (9.25, 1000 + (2 * i) + 1))
  in
  Alcotest.(check (list (pair (float 1e-12) int)))
    "(deadline, seq) order after scratch swap" expect2 (deadlines_seqs popped2);
  ignore fp_grown;
  (* Storage circulates: each drain swaps the hot bucket's arrays with
     the scratch set, so after a burst per slot plus one revisit (one
     revolution later, 64 level-0 granules of 1.0, deadlines 69/73 land
     back in the slots 5/9 warmed above) every party of the rotation —
     both hot slots and the scratch — holds full-sized arrays. From that
     point further equal-sized bursts must not grow the footprint at
     all. *)
  burst ~seq0:2000 ~deadline:69.0 300;
  let popped3 = drain w ~upto:70.0 in
  Alcotest.(check int) "third burst surfaced" 300 (List.length popped3);
  let fp_warm = Tw.footprint_words w in
  burst ~seq0:3000 ~deadline:73.0 300;
  let popped4 = drain w ~upto:74.0 in
  Alcotest.(check int) "fourth burst surfaced" 300 (List.length popped4);
  Alcotest.(check bool)
    (Printf.sprintf "footprint steady once warm (%d then %d words)" fp_warm
       (Tw.footprint_words w))
    true
    (Tw.footprint_words w <= fp_warm)

let suite =
  [
    case "pops in (deadline, seq) order" test_ordering;
    case "bucket growth keeps order and gens" test_bucket_growth_preserves_order_and_gens;
    case "equal deadlines break by seq" test_seq_ties;
    case "cascade across levels" test_cascade_across_levels;
    case "far-future deadlines clamp and re-cascade" test_far_future_clamped;
    case "arm into already-resolved granule" test_arm_into_resolved_past;
    case "peek honours upto; top fields; size" test_peek_respects_upto;
    case "interleaved arm/drain stays ordered" test_interleaved_arm_and_drain;
    case "last covered granule of each ring" test_last_covered_granule_of_each_ring;
    case "park back into the slot being drained" test_park_into_drained_slot;
    case "re-arm into the cursor's own granule" test_rearm_into_cursor_granule;
    case "clamp, cancel, re-arm" test_clamp_then_cancel_then_rearm;
    case "differential vs sorted reference" test_differential_vs_reference;
  ]
