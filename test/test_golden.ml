(* Golden regression test: a fixed, seeded scenario whose sampled skews
   were recorded once and must never change. Executions are deterministic
   (splitmix64 PRNG, tie-broken event queue), so any drift here signals an
   unintended semantic change to the engine or the algorithm. Tolerance is
   1e-6 to allow for float ordering differences across compilers. *)

let golden_samples =
  [
    (0.0, 0.000000000, 0.000000000);
    (10.0, 0.489779391, 0.340168442);
    (20.0, 0.534747615, 0.291794745);
    (30.0, 0.657323124, 0.447444293);
    (40.0, 0.872366464, 0.616537180);
    (50.0, 1.308815116, 0.438554312);
    (60.0, 0.893218487, 0.458016784);
    (70.0, 0.767762740, 0.316445664);
    (80.0, 0.671325490, 0.526921121);
    (90.0, 0.474020644, 0.231721021);
    (100.0, 0.712288452, 0.370080245);
    (110.0, 0.840937744, 0.380201798);
    (120.0, 0.693326987, 0.559846044);
    (130.0, 0.457759473, 0.429694563);
    (140.0, 0.536021417, 0.284215374);
    (150.0, 0.778975038, 0.662272917);
  ]

(* Stale timer entries are discarded rather than dispatched, so the event
   count excludes them; the sampled skews, message/jump counts and final
   clocks below are unchanged from the pre-discard engine, pinning that
   the accounting fix did not alter the dynamics. *)
let golden_events = 5611

let golden_messages = 3789

let golden_jumps = 338

let golden_l0 = 153.890702451

(* The pinned values were recorded under the heap scheduler; the default
   config now runs the timer wheel, so passing here doubles as parity
   evidence. [~scheduler] lets the heap case assert the same numbers. *)
let run_fixed_scenario ?(scheduler = Gcs.Sim.Wheel) () =
  let n = 12 in
  let params = Gcs.Params.make ~n () in
  let horizon = 150. in
  let clocks =
    Gcs.Drift.assign params ~horizon ~seed:2026 (Gcs.Drift.Random_walk 15.)
  in
  let delay =
    Dsim.Delay.uniform (Dsim.Prng.of_int 77) ~bound:params.Gcs.Params.delay_bound
  in
  let cfg =
    Gcs.Sim.config ~scheduler ~params ~clocks ~delay
      ~initial_edges:(Topology.Static.ring n) ()
  in
  let sim = Gcs.Sim.create cfg in
  let recorder =
    Gcs.Metrics.attach (Gcs.Sim.engine sim) (Gcs.Sim.view sim) ~every:10.
      ~until:horizon ()
  in
  Gcs.Sim.add_edge_at sim ~at:60. 0 6;
  Gcs.Sim.run_until sim horizon;
  (sim, recorder)

let test_samples () =
  let _, recorder = run_fixed_scenario () in
  let samples = Gcs.Metrics.samples recorder in
  Alcotest.(check int) "sample count" (List.length golden_samples) (List.length samples);
  List.iter2
    (fun (t, g, l) s ->
      Alcotest.(check (float 1e-6)) (Printf.sprintf "time %g" t) t s.Gcs.Metrics.time;
      Alcotest.(check (float 1e-6))
        (Printf.sprintf "global skew at %g" t)
        g s.Gcs.Metrics.global_skew;
      Alcotest.(check (float 1e-6))
        (Printf.sprintf "local skew at %g" t)
        l s.Gcs.Metrics.local_skew)
    golden_samples samples

let test_counters () =
  let sim, _ = run_fixed_scenario () in
  Alcotest.(check int) "events" golden_events
    (Dsim.Engine.events_processed (Gcs.Sim.engine sim));
  Alcotest.(check int) "messages" golden_messages (Gcs.Sim.total_messages sim);
  Alcotest.(check int) "jumps" golden_jumps (Gcs.Sim.total_jumps sim);
  Alcotest.(check (float 1e-6)) "final clock of node 0" golden_l0
    (Gcs.Sim.logical_clock sim 0)

let test_counters_heap () =
  let sim, _ = run_fixed_scenario ~scheduler:Gcs.Sim.Heap () in
  Alcotest.(check int) "events" golden_events
    (Dsim.Engine.events_processed (Gcs.Sim.engine sim));
  Alcotest.(check int) "messages" golden_messages (Gcs.Sim.total_messages sim);
  Alcotest.(check int) "jumps" golden_jumps (Gcs.Sim.total_jumps sim);
  Alcotest.(check (float 1e-6)) "final clock of node 0" golden_l0
    (Gcs.Sim.logical_clock sim 0)

let suite =
  [
    Alcotest.test_case "golden samples" `Quick test_samples;
    Alcotest.test_case "golden counters" `Quick test_counters;
    Alcotest.test_case "golden counters (heap scheduler)" `Quick test_counters_heap;
  ]
