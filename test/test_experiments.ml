(* Integration: the full quick-mode experiment battery must pass every
   check. These are the repository's headline claims (EXPERIMENTS.md). *)

let case name f = Alcotest.test_case name `Slow f

let run_experiment (e : Experiments.Registry.entry) () =
  let result = e.Experiments.Registry.run ~quick:true in
  List.iter
    (fun c ->
      Alcotest.(check bool)
        (Printf.sprintf "%s: %s (%s)" e.Experiments.Registry.id
           c.Experiments.Common.name c.Experiments.Common.detail)
        true c.Experiments.Common.pass)
    result.Experiments.Common.checks;
  Alcotest.(check bool) "has at least one table" true
    (result.Experiments.Common.tables <> [])

let test_registry_lookup () =
  Alcotest.(check bool) "find e4 (case-insensitive)" true
    (Experiments.Registry.find "e4" <> None);
  Alcotest.(check bool) "unknown id" true (Experiments.Registry.find "E99" = None);
  Alcotest.(check bool) "find a4" true (Experiments.Registry.find "a4" <> None);
  Alcotest.(check bool) "find a8" true (Experiments.Registry.find "a8" <> None);
  Alcotest.(check int) "sixteen experiments" 16 (List.length Experiments.Registry.all)

let suite =
  Alcotest.test_case "registry lookup" `Quick test_registry_lookup
  :: List.map
       (fun e ->
         case
           (Printf.sprintf "%s passes all checks" e.Experiments.Registry.id)
           (run_experiment e))
       Experiments.Registry.all
