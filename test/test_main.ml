(* Entry point: every module's suite, plus the quick-mode experiment
   battery as an integration test. *)

let () =
  Alcotest.run "gradient_clock_sync"
    [
      ("prng", Test_prng.suite);
      ("runner", Test_runner.suite);
      ("pqueue", Test_pqueue.suite);
      ("timewheel", Test_timewheel.suite);
      ("hwclock", Test_hwclock.suite);
      ("delay", Test_delay.suite);
      ("dyngraph", Test_dyngraph.suite);
      ("trace", Test_trace.suite);
      ("engine", Test_engine.suite);
      ("mcheck", Test_mcheck.suite);
      ("params", Test_params.suite);
      ("estimate", Test_estimate.suite);
      ("node", Test_node.suite);
      ("baseline", Test_baseline.suite);
      ("metrics", Test_metrics.suite);
      ("invariant", Test_invariant.suite);
      ("sim", Test_sim.suite);
      ("hetero", Test_hetero.suite);
      ("drift", Test_drift.suite);
      ("topology-static", Test_static.suite);
      ("topology-churn", Test_churn.suite);
      ("topology-connectivity", Test_connectivity.suite);
      ("lowerbound-mask", Test_mask.suite);
      ("lowerbound-subseq", Test_subseq.suite);
      ("lowerbound-layered", Test_layered.suite);
      ("lowerbound-twochain", Test_twochain.suite);
      ("analysis-stats", Test_stats.suite);
      ("analysis-series", Test_series.suite);
      ("analysis-table", Test_table.suite);
      ("analysis-plot", Test_plot.suite);
      ("weights", Test_weights.suite);
      ("random-scenarios", Test_random_scenarios.suite);
      ("audit", Test_audit.suite);
      ("fuzz", Test_fuzz.suite);
      ("scheduler-parity", Test_parity.suite);
      ("scaling", Test_scaling.suite);
      ("golden", Test_golden.suite);
      ("experiments", Test_experiments.suite);
    ]
