module Metrics = Gcs.Metrics

let case name f = Alcotest.test_case name `Quick f

let feq = Alcotest.float 1e-9

(* A hand-built view: clocks [0; 3; 10], lmax [5; 5; 10], edges 0-1, 1-2. *)
let view =
  {
    Metrics.n = 3;
    clock_of = (fun i -> [| 0.; 3.; 10. |].(i));
    lmax_of = (fun i -> [| 5.; 5.; 10. |].(i));
    iter_edges = (fun f -> List.iter (fun (u, v) -> f u v) [ (0, 1); (1, 2) ]);
  }

let test_global_skew () = Alcotest.check feq "max - min" 10. (Metrics.global_skew view)

let test_local_skew () =
  (* edge skews: |0-3| = 3, |3-10| = 7 *)
  Alcotest.check feq "max edge skew" 7. (Metrics.local_skew view)

let test_edge_skew () =
  Alcotest.check feq "pair 0,2 (no edge needed)" 10. (Metrics.edge_skew view 0 2);
  Alcotest.check feq "symmetric" 3. (Metrics.edge_skew view 1 0)

let test_lmax_lag () = Alcotest.check feq "best - worst" 5. (Metrics.lmax_lag view)

let test_clock_lag () =
  (* per node: 5-0=5, 5-3=2, 0 *)
  Alcotest.check feq "max lag behind own Lmax" 5. (Metrics.clock_lag view)

let test_no_edges () =
  let lonely = { view with Metrics.iter_edges = (fun _ -> ()) } in
  Alcotest.check feq "local skew 0" 0. (Metrics.local_skew lonely)

let test_recorder () =
  (* Attach to a real (trivial) engine and check sampling cadence. *)
  let p = Gcs.Params.make ~n:2 () in
  let cfg =
    Gcs.Sim.config ~params:p
      ~clocks:[| Dsim.Hwclock.perfect; Dsim.Hwclock.constant 0.96 |]
      ~delay:(Dsim.Delay.constant ~bound:1. 0.5)
      ~initial_edges:[ (0, 1) ] ()
  in
  let sim = Gcs.Sim.create cfg in
  let rec_ =
    Metrics.attach (Gcs.Sim.engine sim) (Gcs.Sim.view sim) ~every:2. ~until:10.
      ~watch:[ (0, 1) ] ()
  in
  Gcs.Sim.run_until sim 10.;
  let samples = Metrics.samples rec_ in
  Alcotest.(check int) "6 samples (0,2,..,10)" 6 (List.length samples);
  let times = List.map (fun s -> s.Metrics.time) samples in
  Alcotest.(check (list (float 1e-9))) "sample times" [ 0.; 2.; 4.; 6.; 8.; 10. ] times;
  Alcotest.(check int) "trace has same cadence" 6
    (List.length (Metrics.pair_trace rec_ (0, 1)));
  Alcotest.(check (list (pair (float 0.) (float 0.)))) "unwatched pair empty" []
    (Metrics.pair_trace rec_ (0, 2));
  Alcotest.(check bool) "max global >= final" true
    (Metrics.max_global_skew rec_ >= Metrics.global_skew (Gcs.Sim.view sim) -. 1e-9)

let suite =
  [
    case "global skew" test_global_skew;
    case "local skew" test_local_skew;
    case "edge skew" test_edge_skew;
    case "lmax lag" test_lmax_lag;
    case "clock lag" test_clock_lag;
    case "no edges" test_no_edges;
    case "recorder sampling" test_recorder;
  ]
