(* Scheduler parity: the `Heap and `Wheel engines must produce
   byte-identical executions — same dispatch order, same structured
   trace, same counters. The wheel draws its tie-break seqs from the
   queue's shared counter and surfaces entries in (time, seq) order, so
   any divergence here is a determinism-contract break (DESIGN.md §10). *)

module Engine = Dsim.Engine
module Hwclock = Dsim.Hwclock
module Delay = Dsim.Delay
module Trace = Dsim.Trace

let case name f = Alcotest.test_case name `Quick f

(* A timer-heavy toy protocol over int timer labels: each node keeps a
   periodic label-0 tick broadcasting to all peers it has heard from, and
   per-source label-(src+1) timeouts re-armed on every receipt — the same
   arm/re-arm/cancel pattern as the gradient algorithm's Lost timers. *)
let build ~scheduler ~trace =
  let n = 8 in
  let clocks =
    Array.init n (fun i ->
        Hwclock.two_rate ~rho:0.05 ~period:(7. +. float_of_int i)
          ~horizon:200. ~fast_first:(i mod 2 = 0))
  in
  let delay = Delay.uniform (Dsim.Prng.of_int 42) ~bound:1.0 in
  let initial_edges = Topology.Static.ring n in
  let engine =
    Engine.create ~clocks ~delay ~discovery_lag:0.4 ~initial_edges ~trace
      ~timer_label:(fun t -> t) ~scheduler ()
  in
  for i = 0 to n - 1 do
    Engine.install engine i (fun ctx ->
        let heard = Hashtbl.create 8 in
        let broadcast () =
          Hashtbl.iter (fun v () -> Engine.send ctx ~dst:v i) heard
        in
        {
          Engine.on_init = (fun () -> Engine.set_timer ctx ~after:0.9 0);
          on_discover_add = (fun v -> Hashtbl.replace heard v ());
          on_discover_remove =
            (fun v ->
              Hashtbl.remove heard v;
              Engine.cancel_timer ctx (v + 1));
          on_receive =
            (fun src _ ->
              Hashtbl.replace heard src ();
              Engine.set_timer ctx ~after:2.7 (src + 1));
          on_timer =
            (fun t ->
              if t = 0 then begin
                broadcast ();
                Engine.set_timer ctx ~after:0.9 0
              end
              else Hashtbl.remove heard (t - 1));
        })
  done;
  (* Churn a few ring edges so cancels, re-discoveries and in-flight
     drops all happen under both schedulers. *)
  Engine.schedule_edge_remove engine ~at:11.3 0 1;
  Engine.schedule_edge_add engine ~at:14.8 0 1;
  Engine.schedule_edge_remove engine ~at:20.1 3 4;
  Engine.schedule_edge_add engine ~at:20.2 2 4;
  Engine.schedule_edge_add engine ~at:33.9 3 4;
  engine

let run_engine scheduler =
  let trace = Trace.create ~log_limit:200_000 () in
  let engine = build ~scheduler ~trace in
  Engine.run_until engine 80.;
  (engine, trace)

let test_engine_parity () =
  let heap, heap_trace = run_engine `Heap in
  let wheel, wheel_trace = run_engine (`Wheel 0.0625) in
  Alcotest.(check int)
    "events processed" (Engine.events_processed heap) (Engine.events_processed wheel);
  Alcotest.(check int)
    "pending events" (Engine.pending_events heap) (Engine.pending_events wheel);
  Alcotest.(check int)
    "live timers" (Engine.live_timers heap) (Engine.live_timers wheel);
  Alcotest.(check string)
    "byte-identical trace" (Trace.to_csv heap_trace) (Trace.to_csv wheel_trace)

(* Clear-and-rerun at the scheduler seam: ranks handed out through
   [alloc_seq] live on in the wheel across a [Pqueue.clear], so a
   cleared-and-reused queue must keep counting — a post-clear push at the
   same instant as a surviving wheel entry has to surface *after* it.
   (The old clear reset [next_seq] to 0, which let fresh pushes interleave
   below stale wheel ranks and broke heap/wheel trace parity.) *)
let test_clear_and_rerun_merge_order () =
  let q = Dsim.Pqueue.create () in
  let w = Dsim.Timewheel.create ~granularity:0.25 () in
  (* Round 1: mixed traffic consumes seqs on both sides of the seam. *)
  Dsim.Pqueue.push q ~time:1.0 "a";
  Dsim.Timewheel.arm w ~node:0 ~label:0 ~gen:0 ~seq:(Dsim.Pqueue.alloc_seq q)
    ~deadline:5.0;
  Dsim.Pqueue.push q ~time:2.0 "b";
  Alcotest.(check (option string)) "round 1 pops" (Some "a") (Option.map snd (Dsim.Pqueue.pop q));
  (* Reset the event queue mid-run; the wheel entry at t=5 survives. *)
  Dsim.Pqueue.clear q;
  Alcotest.(check bool) "queue empty after clear" true (Dsim.Pqueue.is_empty q);
  (* Round 2: a fresh wheel arm, then a queue push, both due at t=5. *)
  Dsim.Timewheel.arm w ~node:1 ~label:0 ~gen:0 ~seq:(Dsim.Pqueue.alloc_seq q)
    ~deadline:5.0;
  Dsim.Pqueue.push q ~time:5.0 "c";
  Alcotest.(check bool) "wheel has due entries" true (Dsim.Timewheel.peek w ~upto:5.0);
  (* Merged (time, seq) order: both surviving wheel entries outrank the
     post-clear push at the tied deadline. *)
  Alcotest.(check bool) "round-1 wheel entry first"
    true (Dsim.Timewheel.top_seq w < Dsim.Pqueue.top_seq q);
  Alcotest.(check int) "round-1 wheel node" 0 (Dsim.Timewheel.top_node w);
  Dsim.Timewheel.pop w;
  Alcotest.(check bool) "wheel still due" true (Dsim.Timewheel.peek w ~upto:5.0);
  Alcotest.(check bool) "round-2 wheel entry still outranks the push"
    true (Dsim.Timewheel.top_seq w < Dsim.Pqueue.top_seq q);
  Alcotest.(check int) "round-2 wheel node" 1 (Dsim.Timewheel.top_node w);
  Dsim.Timewheel.pop w;
  Alcotest.(check (option string)) "queue event last" (Some "c")
    (Option.map snd (Dsim.Pqueue.pop q))

(* Full-stack parity: the gradient algorithm on a seeded churned topology,
   audited trace and all. This is the scenario class the wheel was built
   for (periodic ΔH ticks plus per-peer ΔT' lost timers at scale). *)
let run_sim ?(faults = []) ?(shards = 1) scheduler =
  let n = 24 in
  let horizon = 50. in
  let params = Gcs.Params.make ~n () in
  let edges = Topology.Static.ring n in
  let clocks = Gcs.Drift.assign params ~horizon ~seed:5 Gcs.Drift.Split_extremes in
  let delay =
    Dsim.Delay.uniform (Dsim.Prng.of_int 9) ~bound:params.Gcs.Params.delay_bound
  in
  let trace = Trace.create ~log_limit:500_000 () in
  let cfg =
    Gcs.Sim.config ~scheduler ~shards ~params ~clocks ~delay ~initial_edges:edges
      ~trace ~faults ~fault_seed:21 ()
  in
  let sim = Gcs.Sim.create cfg in
  Topology.Churn.schedule (Gcs.Sim.engine sim)
    (Topology.Churn.random_churn (Dsim.Prng.of_int 13) ~n ~base:edges ~rate:0.4
       ~horizon);
  Gcs.Sim.run_until sim horizon;
  (sim, trace)

let test_sim_parity () =
  let heap, heap_trace = run_sim Gcs.Sim.Heap in
  let wheel, wheel_trace = run_sim Gcs.Sim.Wheel in
  Alcotest.(check int)
    "events processed"
    (Dsim.Engine.events_processed (Gcs.Sim.engine heap))
    (Dsim.Engine.events_processed (Gcs.Sim.engine wheel));
  Alcotest.(check int) "messages" (Gcs.Sim.total_messages heap)
    (Gcs.Sim.total_messages wheel);
  Alcotest.(check int) "jumps" (Gcs.Sim.total_jumps heap) (Gcs.Sim.total_jumps wheel);
  for i = 0 to (Gcs.Sim.params heap).Gcs.Params.n - 1 do
    Alcotest.(check (float 0.))
      (Printf.sprintf "clock of node %d" i)
      (Gcs.Sim.logical_clock heap i)
      (Gcs.Sim.logical_clock wheel i)
  done;
  Alcotest.(check string)
    "byte-identical trace" (Trace.to_csv heap_trace) (Trace.to_csv wheel_trace)

(* The wheel run's trace must also satisfy the conformance auditor,
   including the lost-timer cadence rule that reads the new label field. *)
let test_wheel_trace_audits_clean () =
  let sim, trace = run_sim Gcs.Sim.Wheel in
  let cfg =
    Audit.Conformance.of_params (Gcs.Sim.params sim) ~horizon:50. ()
  in
  let report = Audit.Conformance.audit cfg (Trace.entries trace) in
  Alcotest.(check int) "no violations" 0
    (List.length report.Audit.Report.violations);
  Alcotest.(check bool) "events audited" true (report.Audit.Report.events_audited > 0)

(* Fault parity: the whole fault layer — crash/restart events, dup
   pushes, Byzantine corruption draws, incarnation drops — is routed
   through the shared event queue, so it must replay byte-identically
   under both schedulers, and the fault-aware auditor must accept both
   traces. *)
let parity_faults =
  [
    Dsim.Fault.Crash { node = 4; at = 8. };
    Dsim.Fault.Restart { node = 4; at = 16.5; corrupt = true };
    Dsim.Fault.Crash { node = 11; at = 20. };
    Dsim.Fault.Restart { node = 11; at = 27.25; corrupt = false };
    Dsim.Fault.Duplicate { src = 0; dst = 1; from_ = 5.; until = 30. };
    Dsim.Fault.Reorder { src = 7; dst = 8; from_ = 10.; until = 35. };
    Dsim.Fault.Byzantine { node = 17; from_ = 12.; until = 24. };
  ]

let test_sim_parity_faulted () =
  let heap, heap_trace = run_sim ~faults:parity_faults Gcs.Sim.Heap in
  let wheel, wheel_trace = run_sim ~faults:parity_faults Gcs.Sim.Wheel in
  Alcotest.(check int)
    "events processed"
    (Dsim.Engine.events_processed (Gcs.Sim.engine heap))
    (Dsim.Engine.events_processed (Gcs.Sim.engine wheel));
  for i = 0 to (Gcs.Sim.params heap).Gcs.Params.n - 1 do
    Alcotest.(check (float 0.))
      (Printf.sprintf "clock of node %d" i)
      (Gcs.Sim.logical_clock heap i)
      (Gcs.Sim.logical_clock wheel i)
  done;
  let heap_csv = Trace.to_csv heap_trace in
  Alcotest.(check string) "byte-identical trace" heap_csv (Trace.to_csv wheel_trace);
  Alcotest.(check bool) "fault events present" true
    (Dsim.Trace.count heap_trace Dsim.Trace.Fault_crash > 0
    && Dsim.Trace.count heap_trace Dsim.Trace.Fault_duplicate > 0
    && Dsim.Trace.count heap_trace Dsim.Trace.Fault_byzantine_msg > 0);
  List.iter
    (fun (name, trace) ->
      let cfg =
        Audit.Conformance.of_params (Gcs.Sim.params heap) ~horizon:50.
          ~faults:parity_faults ()
      in
      let report = Audit.Conformance.audit cfg (Trace.entries trace) in
      Alcotest.(check int)
        (Printf.sprintf "%s faulted trace audits clean" name)
        0
        (List.length report.Audit.Report.violations))
    [ ("heap", heap_trace); ("wheel", wheel_trace) ]

(* Shard parity: partitioning the node ids across per-shard queues and
   wheels moves every cross-shard event through the outbox merge barrier,
   yet the global sequence counter keeps the merged (time, seq) order —
   and therefore the trace — byte-identical at every shard count
   (DESIGN.md §12). n=24 with 7 shards exercises uneven ranges (the last
   shard owns a wider tail). *)
let test_shard_parity () =
  let base, base_trace = run_sim ~shards:1 Gcs.Sim.Wheel in
  let base_csv = Trace.to_csv base_trace in
  List.iter
    (fun shards ->
      let sim, trace = run_sim ~shards Gcs.Sim.Wheel in
      Alcotest.(check int)
        (Printf.sprintf "events processed (shards=%d)" shards)
        (Dsim.Engine.events_processed (Gcs.Sim.engine base))
        (Dsim.Engine.events_processed (Gcs.Sim.engine sim));
      Alcotest.(check string)
        (Printf.sprintf "byte-identical trace (shards=%d)" shards)
        base_csv (Trace.to_csv trace))
    [ 2; 4; 7 ];
  (* And across the scheduler axis at the same time: a sharded wheel run
     must still match the single-queue heap engine. *)
  let _, heap_trace = run_sim Gcs.Sim.Heap in
  let _, sharded_trace = run_sim ~shards:4 Gcs.Sim.Wheel in
  Alcotest.(check string) "sharded wheel = unsharded heap"
    (Trace.to_csv heap_trace) (Trace.to_csv sharded_trace)

(* Fault events cross shard boundaries too: crashes purge remote state,
   duplication re-pushes on the send path, restarts re-discover. All of
   it must replay byte-identically under sharding. *)
let test_shard_parity_faulted () =
  let _, base_trace = run_sim ~faults:parity_faults Gcs.Sim.Wheel in
  let _, sharded_trace = run_sim ~faults:parity_faults ~shards:3 Gcs.Sim.Wheel in
  Alcotest.(check string) "byte-identical faulted trace (shards=3)"
    (Trace.to_csv base_trace) (Trace.to_csv sharded_trace)

(* Parallel-window parity: with a pure delay policy of positive min_lat
   the engine dispatches the shards in conservative windows, handing out
   provisional per-lane ranks that the merge barrier rewrites to the
   exact sequential ones (DESIGN.md §14). The jittered keyed-uniform
   policy makes the delays non-degenerate (every message gets its own
   hash-drawn latency) while keeping the lookahead positive, and churn
   keeps control events interleaving with the windows. The contract:
   (shards, jobs) is pure placement — every combination must reproduce
   the sequential trace byte for byte. *)
let run_sim_windowed ?(faults = []) ?(shards = 1) ?(jobs = 1) scheduler =
  let n = 24 in
  let horizon = 50. in
  let params = Gcs.Params.make ~n () in
  let edges = Topology.Static.ring n in
  let clocks = Gcs.Drift.assign params ~horizon ~seed:5 Gcs.Drift.Split_extremes in
  let bound = params.Gcs.Params.delay_bound in
  let delay = Dsim.Delay.uniform_keyed ~seed:9 ~lo:(0.25 *. bound) ~bound () in
  let trace = Trace.create ~log_limit:500_000 () in
  let cfg =
    Gcs.Sim.config ~scheduler ~shards ~params ~clocks ~delay ~initial_edges:edges
      ~trace ~faults ~fault_seed:21 ()
  in
  let sim = Gcs.Sim.create cfg in
  Topology.Churn.schedule (Gcs.Sim.engine sim)
    (Topology.Churn.random_churn (Dsim.Prng.of_int 13) ~n ~base:edges ~rate:0.4
       ~horizon);
  (if jobs > 1 then begin
     (* Lift the ambient domain budget so worker domains really spawn —
        otherwise a single-core host would cap the pool to the caller
        and this test would never cross a domain boundary. *)
     let saved = Runner.default_jobs () in
     Runner.set_default_jobs (max saved jobs);
     Fun.protect
       ~finally:(fun () -> Runner.set_default_jobs saved)
       (fun () ->
         Runner.scoped ~jobs (fun pool ->
             let engine = Gcs.Sim.engine sim in
             Dsim.Engine.set_executor engine (Some (Runner.run pool));
             Fun.protect
               ~finally:(fun () -> Dsim.Engine.set_executor engine None)
               (fun () -> Gcs.Sim.run_until sim horizon)))
   end
   else Gcs.Sim.run_until sim horizon);
  (sim, trace)

let test_parallel_dispatch_parity () =
  let base, base_trace = run_sim_windowed ~shards:1 Gcs.Sim.Wheel in
  let base_csv = Trace.to_csv base_trace in
  (* The sequential reference must itself match the heap engine — the
     keyed delay changes nothing about scheduler parity. *)
  let _, heap_trace = run_sim_windowed ~shards:1 Gcs.Sim.Heap in
  Alcotest.(check string) "wheel = heap (keyed delay)" base_csv
    (Trace.to_csv heap_trace);
  List.iter
    (fun shards ->
      List.iter
        (fun jobs ->
          let sim, trace = run_sim_windowed ~shards ~jobs Gcs.Sim.Wheel in
          Alcotest.(check int)
            (Printf.sprintf "events processed (shards=%d jobs=%d)" shards jobs)
            (Dsim.Engine.events_processed (Gcs.Sim.engine base))
            (Dsim.Engine.events_processed (Gcs.Sim.engine sim));
          Alcotest.(check string)
            (Printf.sprintf "byte-identical trace (shards=%d jobs=%d)" shards
               jobs)
            base_csv (Trace.to_csv trace))
        [ 1; shards ])
    [ 2; 4; 7 ]

(* Adaptive-window parity: without churn the control queue goes quiet
   after the initial discovery burst, so the engine keeps extending each
   window and batches many dispatch rounds per merge barrier. The grid
   pins two things at once, per topology: every (shards, jobs, partition)
   point still reproduces the sequential trace byte for byte, and the
   adaptive extension actually amortizes — strictly more windows than
   barriers. The cluster topology scatters community members across the
   id range, which is the worst case for the contiguous split and the
   showcase for the greedy partitioner; both maps must agree on the
   trace. *)
let run_sim_adaptive ~edges ?(shards = 1) ?(jobs = 1) ?(partition = `Contiguous) ()
    =
  let n = 24 in
  let horizon = 50. in
  let params = Gcs.Params.make ~n () in
  let clocks = Gcs.Drift.assign params ~horizon ~seed:5 Gcs.Drift.Split_extremes in
  let bound = params.Gcs.Params.delay_bound in
  let delay = Dsim.Delay.uniform_keyed ~seed:9 ~lo:(0.25 *. bound) ~bound () in
  let trace = Trace.create ~log_limit:500_000 () in
  let cfg =
    Gcs.Sim.config ~scheduler:Gcs.Sim.Wheel ~shards ~partition ~params ~clocks
      ~delay ~initial_edges:edges ~trace ()
  in
  let sim = Gcs.Sim.create cfg in
  (if jobs > 1 then begin
     let saved = Runner.default_jobs () in
     Runner.set_default_jobs (max saved jobs);
     Fun.protect
       ~finally:(fun () -> Runner.set_default_jobs saved)
       (fun () ->
         Runner.scoped ~jobs (fun pool ->
             let engine = Gcs.Sim.engine sim in
             Dsim.Engine.set_executor engine (Some (Runner.run pool));
             Fun.protect
               ~finally:(fun () -> Dsim.Engine.set_executor engine None)
               (fun () -> Gcs.Sim.run_until sim horizon)))
   end
   else Gcs.Sim.run_until sim horizon);
  (sim, trace)

let test_adaptive_window_parity () =
  let topologies =
    [
      ("path", Topology.Static.path 24);
      ( "cluster",
        Topology.Static.cluster (Dsim.Prng.of_int 11) ~n:24 ~clusters:4 ~degree:4
      );
    ]
  in
  List.iter
    (fun (name, edges) ->
      let base, base_trace = run_sim_adaptive ~edges () in
      let base_csv = Trace.to_csv base_trace in
      List.iter
        (fun shards ->
          List.iter
            (fun jobs ->
              List.iter
                (fun (pname, partition) ->
                  let sim, trace =
                    run_sim_adaptive ~edges ~shards ~jobs ~partition ()
                  in
                  let tag =
                    Printf.sprintf "(%s shards=%d jobs=%d partition=%s)" name
                      shards jobs pname
                  in
                  Alcotest.(check int)
                    ("events processed " ^ tag)
                    (Dsim.Engine.events_processed (Gcs.Sim.engine base))
                    (Dsim.Engine.events_processed (Gcs.Sim.engine sim));
                  Alcotest.(check string)
                    ("byte-identical trace " ^ tag)
                    base_csv (Trace.to_csv trace);
                  Alcotest.(check bool)
                    ("windows amortize barriers " ^ tag)
                    true
                    (Trace.windows trace > Trace.barriers trace))
                [ ("contiguous", `Contiguous); ("greedy", `Greedy) ])
            [ 1; shards ])
        [ 2; 4; 7 ])
    topologies

(* A fault schedule turns the parallel gate off at create time; a
   sharded multi-domain run must then take the sequential path (the
   executor never fires) and still replay the campaign byte-identically. *)
let test_parallel_dispatch_parity_faulted () =
  let _, base_trace = run_sim_windowed ~faults:parity_faults Gcs.Sim.Wheel in
  let _, par_trace =
    run_sim_windowed ~faults:parity_faults ~shards:4 ~jobs:4 Gcs.Sim.Wheel
  in
  Alcotest.(check string)
    "byte-identical faulted trace (shards=4 jobs=4)"
    (Trace.to_csv base_trace) (Trace.to_csv par_trace)

(* The trace coming out of a genuinely parallel run must satisfy the
   conformance auditor — barrier re-ranking has to keep entries in
   dispatch order, FIFO per link, delays within [0, T]. *)
let test_parallel_trace_audits_clean () =
  let sim, trace = run_sim_windowed ~shards:4 ~jobs:4 Gcs.Sim.Wheel in
  let cfg = Audit.Conformance.of_params (Gcs.Sim.params sim) ~horizon:50. () in
  let report = Audit.Conformance.audit cfg (Trace.entries trace) in
  Alcotest.(check int) "no violations" 0
    (List.length report.Audit.Report.violations);
  Alcotest.(check bool) "events audited" true
    (report.Audit.Report.events_audited > 0)

let suite =
  [
    case "engine: heap = wheel (timer-heavy protocol)" test_engine_parity;
    case "sim: sharded = unsharded, byte-identical" test_shard_parity;
    case "sim: sharded fault campaign, byte-identical" test_shard_parity_faulted;
    case "sim: parallel windows, shards x jobs grid, byte-identical"
      test_parallel_dispatch_parity;
    case "sim: adaptive windows, shards x jobs x topology x partition grid"
      test_adaptive_window_parity;
    case "sim: faulted campaign falls back sequential under jobs=4"
      test_parallel_dispatch_parity_faulted;
    case "parallel trace passes conformance audit" test_parallel_trace_audits_clean;
    case "pqueue clear-and-rerun keeps the seam's total order"
      test_clear_and_rerun_merge_order;
    case "sim: heap = wheel (seeded churn)" test_sim_parity;
    case "sim: heap = wheel under a fault campaign" test_sim_parity_faulted;
    case "wheel trace passes conformance audit" test_wheel_trace_audits_clean;
  ]
