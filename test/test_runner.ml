(* The runner's determinism contract: order-preserving merge (results
   byte-identical for every pool size), per-item split streams that
   depend only on the parent seed and item order, and a pool that joins
   every domain even when the work raises. *)

module Prng = Dsim.Prng

let case name f = Alcotest.test_case name `Quick f

(* A task whose completion order under a real pool differs from its
   submission order: early items spin longest. *)
let lopsided i =
  let spins = (20 - i) * 10_000 in
  let acc = ref ((i + 1) * 7919) in
  for _ = 1 to spins do
    acc := !acc * 48271 mod 0x7fffffff
  done;
  (i, !acc)

let test_map_matches_serial () =
  let items = List.init 20 Fun.id in
  let serial = List.map lopsided items in
  List.iter
    (fun jobs ->
      Alcotest.(check (list (pair int int)))
        (Printf.sprintf "jobs=%d equals serial" jobs)
        serial
        (Runner.map ~jobs lopsided items))
    [ 1; 2; 4; 7 ]

let test_map_empty_and_singleton () =
  Alcotest.(check (list int)) "empty" [] (Runner.map ~jobs:4 (fun x -> x) []);
  Alcotest.(check (list int)) "singleton" [ 9 ] (Runner.map ~jobs:4 (fun x -> x * 9) [ 1 ])

let test_sweep_pairs_points () =
  let points = [ 3; 1; 4; 1; 5 ] in
  Alcotest.(check (list (pair int int)))
    "each point paired with its result, in order"
    (List.map (fun p -> (p, p * p)) points)
    (Runner.sweep ~jobs:4 (fun p -> p * p) points)

let test_map_prng_jobs_invariant () =
  let draw jobs =
    let parent = Prng.of_int 2024 in
    let results =
      Runner.map_prng ~jobs parent
        (fun g item -> (item, Prng.int g 1_000_000, Prng.int g 1_000_000))
        (List.init 12 Fun.id)
    in
    (* The parent must have advanced identically too: one split per item. *)
    (results, Prng.next_int64 parent)
  in
  let serial = draw 1 in
  Alcotest.(check bool) "jobs=4 equals jobs=1 (streams and parent state)" true
    (draw 4 = serial);
  Alcotest.(check bool) "jobs=3 equals jobs=1" true (draw 3 = serial)

let test_map_prng_streams_distinct () =
  (* Child streams are pairwise distinct and also avoid the parent's
     subsequent output (split smoke test over the first draws). *)
  let parent = Prng.of_int 7 in
  let children = Runner.map_prng ~jobs:1 parent (fun g _ -> g) (List.init 8 Fun.id) in
  let streams =
    List.map (fun g -> List.init 50 (fun _ -> Prng.next_int64 g)) children
  in
  let parent_stream = List.init 50 (fun _ -> Prng.next_int64 parent) in
  let all = parent_stream :: streams in
  List.iteri
    (fun i si ->
      List.iteri
        (fun j sj ->
          if i < j then
            List.iter
              (fun v ->
                Alcotest.(check bool)
                  (Printf.sprintf "streams %d and %d share no values" i j)
                  false (List.mem v sj))
              si)
        all)
    all

exception Boom of int

let test_pool_joins_on_raise () =
  Alcotest.(check int) "no live domains before" 0 (Runner.live_domains ());
  let raised =
    match
      Runner.map ~jobs:4
        (fun i -> if i mod 3 = 1 then raise (Boom i) else i)
        (List.init 12 Fun.id)
    with
    | _ -> None
    | exception Boom i -> Some i
  in
  (* Deterministic choice: the smallest failing index, not whichever
     worker lost the race. *)
  Alcotest.(check (option int)) "smallest failing item re-raised" (Some 1) raised;
  Alcotest.(check int) "all domains joined after the raise" 0 (Runner.live_domains ());
  Alcotest.(check (list int)) "pool still works afterwards" [ 0; 2; 4 ]
    (Runner.map ~jobs:2 (fun i -> 2 * i) [ 0; 1; 2 ])

let test_registry_output_jobs_invariant () =
  (* `exp` byte-identical between --jobs 1 and --jobs 4, at the library
     layer the CLI prints from: render a cheap registry subset. *)
  let entries =
    List.filter_map Experiments.Registry.find [ "E1"; "A7" ]
  in
  Alcotest.(check int) "both experiments found" 2 (List.length entries);
  let render jobs =
    Runner.map ~jobs
      (fun (e : Experiments.Registry.entry) -> e.run ~quick:true)
      entries
    |> List.map (Format.asprintf "%a" Experiments.Common.pp_result)
    |> String.concat "\n"
  in
  let serial = render 1 in
  Alcotest.(check string) "rendered reports identical for jobs=4" serial (render 4);
  Alcotest.(check bool) "reports are non-trivial" true (String.length serial > 100)

(* Scoped pool: thunks all execute exactly once per round, rounds are
   barriers, and teardown always happens — the shape the engine's
   parallel dispatch windows lean on. *)
let test_scoped_run_rounds () =
  Alcotest.(check int) "no live domains before" 0 (Runner.live_domains ());
  let out =
    Runner.scoped ~jobs:4 (fun pool ->
        Alcotest.(check bool) "pool_size within the request" true
          (Runner.pool_size pool >= 1 && Runner.pool_size pool <= 4);
        let acc = Array.make 8 0 in
        (* Two rounds back to back: the second reads what the first
           wrote, which is only safe because run is a full barrier. *)
        Runner.run pool
          (Array.init 8 (fun i () -> acc.(i) <- (i + 1) * 3));
        Runner.run pool (Array.init 8 (fun i () -> acc.(i) <- acc.(i) + i));
        acc)
  in
  Alcotest.(check (list int)) "both rounds applied to every slot"
    (List.init 8 (fun i -> ((i + 1) * 3) + i))
    (Array.to_list out);
  Alcotest.(check int) "all domains joined after the block" 0
    (Runner.live_domains ())

let test_scoped_run_raise () =
  let raised =
    match
      Runner.scoped ~jobs:3 (fun pool ->
          Runner.run pool
            (Array.init 9 (fun i () -> if i mod 4 = 2 then raise (Boom i))))
    with
    | () -> None
    | exception Boom i -> Some i
  in
  Alcotest.(check (option int)) "smallest failing thunk re-raised" (Some 2)
    raised;
  Alcotest.(check int) "domains joined after the raise" 0
    (Runner.live_domains ())

(* Oversubscription cap: with the ambient budget pinned to 1 the scoped
   pool must not spawn any worker — and the rounds still execute, in the
   caller. *)
let test_scoped_respects_budget () =
  let saved = Runner.default_jobs () in
  Runner.set_default_jobs 1;
  Fun.protect
    ~finally:(fun () -> Runner.set_default_jobs saved)
    (fun () ->
      Runner.scoped ~jobs:4 (fun pool ->
          Alcotest.(check int) "budget of 1 spawns no workers" 0
            (Runner.live_domains ());
          Alcotest.(check int) "pool_size reports the granted size" 1
            (Runner.pool_size pool);
          let hits = Array.make 5 false in
          Runner.run pool (Array.init 5 (fun i () -> hits.(i) <- true));
          Alcotest.(check bool) "every thunk still ran" true
            (Array.for_all Fun.id hits)))

let test_default_jobs () =
  let saved = Runner.default_jobs () in
  Alcotest.(check bool) "default is positive" true (saved >= 1);
  Runner.set_default_jobs 3;
  Alcotest.(check int) "override visible" 3 (Runner.default_jobs ());
  Alcotest.check_raises "zero rejected"
    (Invalid_argument "Runner.set_default_jobs: jobs must be >= 1") (fun () ->
      Runner.set_default_jobs 0);
  Runner.set_default_jobs saved

let suite =
  [
    case "map equals serial for every pool size" test_map_matches_serial;
    case "map on empty and singleton lists" test_map_empty_and_singleton;
    case "sweep pairs grid points with results" test_sweep_pairs_points;
    case "map_prng is jobs-invariant" test_map_prng_jobs_invariant;
    case "split streams do not overlap" test_map_prng_streams_distinct;
    case "pool joins all domains when work raises" test_pool_joins_on_raise;
    case "scoped pool runs barrier rounds" test_scoped_run_rounds;
    case "scoped pool re-raises smallest thunk index" test_scoped_run_raise;
    case "scoped pool respects the domain budget" test_scoped_respects_budget;
    case "registry output identical across jobs" test_registry_output_jobs_invariant;
    case "default jobs override" test_default_jobs;
  ]
