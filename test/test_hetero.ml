module Hetero = Gcs.Hetero
module Params = Gcs.Params

let case name f = Alcotest.test_case name `Quick f

let feq = Alcotest.float 1e-9

let p = Params.make ~rho:0.05 ~delta_h:0.5 ~n:8 ()

let t = p.Params.delay_bound

let test_uniform_degenerates () =
  (* With T_e = T on every link, the per-link quantities equal the global
     ones. *)
  Alcotest.check feq "delta_t" (Params.delta_t p) (Hetero.delta_t_e p ~t_e:t);
  Alcotest.check feq "timeout" (Params.delta_t' p) (Hetero.timeout_e p ~t_e:t);
  Alcotest.check feq "tau" (Params.tau p) (Hetero.tau_e p ~t_e:t);
  Alcotest.check feq "b0" p.Params.b0 (Hetero.b0_e p ~t_e:t);
  List.iter
    (fun age -> Alcotest.check feq "B" (Params.b p age) (Hetero.b_e p ~t_e:t age))
    [ 0.; 10.; 1e6 ];
  Alcotest.check feq "uniform_bounds" t (Hetero.uniform_bounds p 3 5)

let test_tight_links_scale_down () =
  let tight = 0.1 *. t in
  Alcotest.(check bool) "tau_e smaller" true (Hetero.tau_e p ~t_e:tight < Params.tau p);
  Alcotest.(check bool) "b0_e smaller" true (Hetero.b0_e p ~t_e:tight < p.Params.b0);
  Alcotest.(check bool) "stable bound smaller" true
    (Hetero.stable_local_skew_e p ~t_e:tight < Params.stable_local_skew p)

let test_admissibility_preserved () =
  (* B0_e / ((1+rho) tau_e) is the same ratio (> 2) on every link. *)
  let ratio t_e = Hetero.b0_e p ~t_e /. ((1. +. p.Params.rho) *. Hetero.tau_e p ~t_e) in
  Alcotest.check feq "ratio invariant" (ratio t) (ratio (0.05 *. t));
  Alcotest.(check bool) "above the admissibility floor" true (ratio (0.3 *. t) > 2.)

let test_b_e_shape () =
  let t_e = 0.2 *. t in
  Alcotest.(check bool) "starts above 5G" true
    (Hetero.b_e p ~t_e 0. > 5. *. Params.global_skew_bound p);
  Alcotest.check feq "floors at b0_e" (Hetero.b0_e p ~t_e) (Hetero.b_e p ~t_e 1e9);
  Alcotest.(check bool) "non-increasing" true
    (Hetero.b_e p ~t_e 10. >= Hetero.b_e p ~t_e 20.)

let test_of_alist () =
  let lb = Hetero.of_alist ~default:1. [ ((2, 1), 0.25) ] in
  Alcotest.check feq "listed (normalized)" 0.25 (lb 1 2);
  Alcotest.check feq "listed (reverse)" 0.25 (lb 2 1);
  Alcotest.check feq "default" 1. (lb 0 3)

let test_delay_policy_per_link () =
  let lb = Hetero.of_alist ~default:t [ ((0, 1), 0.1) ] in
  let policy = Hetero.delay_policy (Dsim.Prng.of_int 4) p ~link_bound:lb in
  for _ = 1 to 200 do
    let tight = policy.Dsim.Delay.draw ~src:0 ~dst:1 ~now:0. in
    let loose = policy.Dsim.Delay.draw ~src:1 ~dst:2 ~now:0. in
    Alcotest.(check bool) "tight within [0, 0.1]" true (tight >= 0. && tight <= 0.1);
    Alcotest.(check bool) "loose within [0, T]" true (loose >= 0. && loose <= t)
  done

let test_bad_bound_rejected () =
  let lb = Hetero.of_alist ~default:t [ ((0, 1), 2. *. t) ] in
  let policy = Hetero.delay_policy (Dsim.Prng.of_int 4) p ~link_bound:lb in
  match policy.Dsim.Delay.draw ~src:0 ~dst:1 ~now:0. with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "link bound above T accepted"

let test_end_to_end_sync () =
  (* Mixed-bound path: the heterogeneous nodes synchronize and tight links
     honor tighter bounds. *)
  let n = 6 in
  let p = Params.make ~n () in
  let lb = Hetero.of_alist ~default:1. [ ((0, 1), 0.1); ((1, 2), 0.1) ] in
  let clocks =
    Array.init n (fun i ->
        if i mod 2 = 0 then Dsim.Hwclock.fastest ~rho:p.Params.rho
        else Dsim.Hwclock.slowest ~rho:p.Params.rho)
  in
  let delay = Hetero.delay_policy (Dsim.Prng.of_int 8) p ~link_bound:lb in
  let engine, nodes =
    Hetero.create_sim ~params:p ~clocks ~delay ~link_bound:lb
      ~initial_edges:(Topology.Static.path n) ()
  in
  Dsim.Engine.run_until engine 200.;
  let skew u v =
    Float.abs (Gcs.Node.logical_clock nodes.(u) -. Gcs.Node.logical_clock nodes.(v))
  in
  Alcotest.(check bool) "tight link below refined bound" true
    (skew 0 1 <= Hetero.stable_local_skew_e p ~t_e:0.1);
  Alcotest.(check bool) "loose link below its bound" true
    (skew 3 4 <= Hetero.stable_local_skew_e p ~t_e:1.);
  (* Peer tolerance exposed by nodes matches the per-link B_e floor after
     long enough. *)
  match Gcs.Node.peer_tolerance nodes.(0) 1 with
  | Some b -> Alcotest.(check bool) "tolerance from B_e" true (b <= Params.b p 0.)
  | None -> Alcotest.fail "peer 1 not in gamma"

let test_view () =
  let n = 3 in
  let p = Params.make ~n () in
  let lb = Hetero.uniform_bounds p in
  let clocks = Array.init n (fun _ -> Dsim.Hwclock.perfect) in
  let delay = Hetero.delay_policy (Dsim.Prng.of_int 1) p ~link_bound:lb in
  let engine, nodes =
    Hetero.create_sim ~params:p ~clocks ~delay ~link_bound:lb
      ~initial_edges:(Topology.Static.path n) ()
  in
  Dsim.Engine.run_until engine 20.;
  let view = Hetero.view nodes (Dsim.Dyngraph.iter_edges (Dsim.Engine.graph engine)) in
  Alcotest.(check int) "n" 3 view.Gcs.Metrics.n;
  Alcotest.(check bool) "clocks advanced" true (view.Gcs.Metrics.clock_of 0 > 19.);
  Alcotest.(check bool) "skew tiny with perfect clocks" true
    (Gcs.Metrics.global_skew view < 1.)

let suite =
  [
    case "uniform bounds degenerate to the plain algorithm" test_uniform_degenerates;
    case "tight links scale every quantity down" test_tight_links_scale_down;
    case "admissibility ratio preserved" test_admissibility_preserved;
    case "B_e shape" test_b_e_shape;
    case "of_alist" test_of_alist;
    case "delay policy per link" test_delay_policy_per_link;
    case "bad link bound rejected" test_bad_bound_rejected;
    case "end-to-end mixed-bound sync" test_end_to_end_sync;
    case "view" test_view;
  ]
