module Churn = Topology.Churn
module Static = Topology.Static
module Prng = Dsim.Prng

let case name f = Alcotest.test_case name `Quick f

let test_normalize_sorts () =
  let events =
    [
      { Churn.time = 5.; op = Churn.Add; u = 3; v = 1 };
      { Churn.time = 1.; op = Churn.Remove; u = 0; v = 2 };
    ]
  in
  let sorted = Churn.normalize events in
  Alcotest.(check (float 1e-9)) "first by time" 1. (List.hd sorted).Churn.time;
  let last = List.nth sorted 1 in
  Alcotest.(check (pair int int)) "endpoints normalized" (1, 3) (last.Churn.u, last.Churn.v)

let test_final_edges () =
  let events =
    [
      { Churn.time = 1.; op = Churn.Add; u = 0; v = 2 };
      { Churn.time = 2.; op = Churn.Remove; u = 0; v = 1 };
      { Churn.time = 3.; op = Churn.Add; u = 0; v = 1 };
      { Churn.time = 4.; op = Churn.Remove; u = 0; v = 2 };
    ]
  in
  Alcotest.(check (list (pair int int))) "net effect" [ (0, 1) ]
    (Churn.final_edges ~initial:[ (0, 1) ] events)

let test_same_time_tie_break () =
  (* Documented behavior, not an accident: at equal timestamps on the
     same edge, Add sorts (and is applied) before Remove, so the edge
     ends down — whatever order the events were built in. *)
  let add = { Churn.time = 5.; op = Churn.Add; u = 1; v = 0 } in
  let remove = { Churn.time = 5.; op = Churn.Remove; u = 0; v = 1 } in
  List.iter
    (fun events ->
      (match Churn.normalize events with
      | [ first; second ] ->
        Alcotest.(check bool) "Add first" true (first.Churn.op = Churn.Add);
        Alcotest.(check bool) "Remove second" true (second.Churn.op = Churn.Remove)
      | _ -> Alcotest.fail "expected both events to survive normalize");
      Alcotest.(check (list (pair int int))) "edge ends down (initially present)" []
        (Churn.final_edges ~initial:[ (0, 1) ] events);
      Alcotest.(check (list (pair int int))) "edge ends down (initially absent)" []
        (Churn.final_edges ~initial:[] events))
    [ [ add; remove ]; [ remove; add ] ]

let test_flapping_many_edges_linearish () =
  (* Regression guard for the hoisted List.length: generating a schedule
     over many flapping edges must stay well under quadratic work. This
     is a smoke test (it finishes fast either way at this size) plus a
     shape check that every edge still gets its staggered phase. *)
  let extra = List.init 400 (fun i -> (2 * i, (2 * i) + 1)) in
  let events = Churn.flapping ~extra ~period:10. ~up_for:5. ~horizon:20. in
  let distinct_times =
    List.sort_uniq compare (List.map (fun e -> e.Churn.time) events)
  in
  Alcotest.(check bool) "phases remain staggered" true
    (List.length distinct_times > 100);
  Alcotest.(check bool) "events generated for every edge" true
    (List.length events >= 400)

let test_flapping_cycle () =
  let events = Churn.flapping ~extra:[ (0, 1) ] ~period:10. ~up_for:6. ~horizon:30. in
  (* Edge starts present: remove at 6, add at 10, remove at 16, add at 20,
     remove at 26. *)
  let times = List.map (fun e -> (e.Churn.time, e.Churn.op)) events in
  Alcotest.(check int) "five events" 5 (List.length times);
  Alcotest.(check bool) "alternates remove/add" true
    (times
    = [ (6., Churn.Remove); (10., Churn.Add); (16., Churn.Remove); (20., Churn.Add);
        (26., Churn.Remove) ])

let test_flapping_phases_differ () =
  let events =
    Churn.flapping ~extra:[ (0, 1); (2, 3) ] ~period:10. ~up_for:5. ~horizon:20.
  in
  let first_removal edge =
    List.find (fun e -> (e.Churn.u, e.Churn.v) = edge && e.Churn.op = Churn.Remove) events
  in
  Alcotest.(check bool) "staggered" true
    ((first_removal (0, 1)).Churn.time <> (first_removal (2, 3)).Churn.time)

let test_random_churn_preserves_backbone () =
  let n = 12 in
  let base = Static.ring n in
  let tree = Static.spanning_tree ~n base in
  let events = Churn.random_churn (Prng.of_int 5) ~n ~base ~rate:2. ~horizon:50. in
  Alcotest.(check bool) "events generated" true (List.length events > 10);
  List.iter
    (fun e ->
      Alcotest.(check bool) "never touches the spanning tree" false
        (List.mem (Dsim.Dyngraph.normalize e.Churn.u e.Churn.v) tree))
    events;
  (* Toggles are consistent: every remove is preceded by presence. *)
  let _final = Churn.final_edges ~initial:base events in
  ()

let test_random_churn_connectivity_invariant () =
  let n = 10 in
  let base = Static.ring n in
  let events = Churn.random_churn (Prng.of_int 6) ~n ~base ~rate:1. ~horizon:40. in
  (* Replay: after every event the graph stays connected. *)
  let module ES = Set.Make (struct
    type t = int * int

    let compare = compare
  end) in
  let state = ref (ES.of_list (List.map (fun (u, v) -> Dsim.Dyngraph.normalize u v) base)) in
  List.iter
    (fun e ->
      let key = Dsim.Dyngraph.normalize e.Churn.u e.Churn.v in
      (match e.Churn.op with
      | Churn.Add -> state := ES.add key !state
      | Churn.Remove -> state := ES.remove key !state);
      Alcotest.(check bool) "still connected" true
        (Static.is_connected ~n (ES.elements !state)))
    (Churn.normalize events)

let test_periodic_partition () =
  let events =
    Churn.periodic_partition ~cut:[ (0, 1); (2, 3) ] ~first_cut_at:10. ~down_for:5.
      ~every:20. ~horizon:50.
  in
  (* Cuts at 10 and 30 (cut at 50 >= horizon excluded): 2 edges x 2 cycles
     x (down+up). *)
  let removes = List.filter (fun e -> e.Churn.op = Churn.Remove) events in
  let adds = List.filter (fun e -> e.Churn.op = Churn.Add) events in
  Alcotest.(check int) "removes" 4 (List.length removes);
  Alcotest.(check int) "adds" 4 (List.length adds)

let test_single_new_edge () =
  match Churn.single_new_edge ~at:7. 3 1 with
  | [ e ] ->
    Alcotest.(check (float 1e-9)) "time" 7. e.Churn.time;
    Alcotest.(check bool) "is add" true (e.Churn.op = Churn.Add)
  | _ -> Alcotest.fail "expected exactly one event"

let test_schedule_applies_to_engine () =
  let engine =
    (Dsim.Engine.create
       ~clocks:[| Dsim.Hwclock.perfect; Dsim.Hwclock.perfect |]
       ~delay:(Dsim.Delay.zero ~bound:1.) ()
      : (unit, unit) Dsim.Engine.t)
  in
  let noop _ =
    {
      Dsim.Engine.on_init = ignore;
      on_discover_add = ignore;
      on_discover_remove = ignore;
      on_receive = (fun _ _ -> ());
      on_timer = ignore;
    }
  in
  Dsim.Engine.install engine 0 noop;
  Dsim.Engine.install engine 1 noop;
  Churn.schedule engine
    [
      { Churn.time = 1.; op = Churn.Add; u = 0; v = 1 };
      { Churn.time = 2.; op = Churn.Remove; u = 0; v = 1 };
    ];
  Dsim.Engine.run_until engine 1.5;
  Alcotest.(check bool) "added" true (Dsim.Dyngraph.has_edge (Dsim.Engine.graph engine) 0 1);
  Dsim.Engine.run_until engine 2.5;
  Alcotest.(check bool) "removed" false
    (Dsim.Dyngraph.has_edge (Dsim.Engine.graph engine) 0 1)

(* Property: replaying a random schedule through the engine ends with
   exactly the edge set final_edges predicts. *)
let prop_engine_replay_matches_final_edges =
  QCheck.Test.make ~name:"engine replay matches final_edges" ~count:100
    QCheck.(int_range 0 2000)
    (fun seed ->
      let n = 8 in
      let prng = Prng.of_int seed in
      let base = Static.ring n in
      let events = Churn.random_churn prng ~n ~base ~rate:1.5 ~horizon:30. in
      let noop _ =
        {
          Dsim.Engine.on_init = ignore;
          on_discover_add = ignore;
          on_discover_remove = ignore;
          on_receive = (fun _ (_ : unit) -> ());
          on_timer = (fun (_ : unit) -> ());
        }
      in
      let engine =
        Dsim.Engine.create
          ~clocks:(Array.init n (fun _ -> Dsim.Hwclock.perfect))
          ~delay:(Dsim.Delay.zero ~bound:1.) ~initial_edges:base ()
      in
      for i = 0 to n - 1 do
        Dsim.Engine.install engine i noop
      done;
      Churn.schedule engine events;
      Dsim.Engine.run_until engine 31.;
      Dsim.Dyngraph.edges (Dsim.Engine.graph engine)
      = Churn.final_edges ~initial:base events)

let suite =
  [
    case "normalize" test_normalize_sorts;
    QCheck_alcotest.to_alcotest prop_engine_replay_matches_final_edges;
    case "final edges" test_final_edges;
    case "flapping cycle" test_flapping_cycle;
    case "flapping staggered phases" test_flapping_phases_differ;
    case "same-timestamp Add/Remove tie-break" test_same_time_tie_break;
    case "flapping over many edges" test_flapping_many_edges_linearish;
    case "random churn preserves backbone" test_random_churn_preserves_backbone;
    case "random churn keeps connectivity" test_random_churn_connectivity_invariant;
    case "periodic partition" test_periodic_partition;
    case "single new edge" test_single_new_edge;
    case "schedule onto engine" test_schedule_applies_to_engine;
  ]
