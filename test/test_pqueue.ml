module Pqueue = Dsim.Pqueue

let case name f = Alcotest.test_case name `Quick f

let drain q =
  let rec go acc =
    match Pqueue.pop q with Some (t, v) -> go ((t, v) :: acc) | None -> List.rev acc
  in
  go []

let test_empty () =
  let q = Pqueue.create () in
  Alcotest.(check bool) "is_empty" true (Pqueue.is_empty q);
  Alcotest.(check int) "size 0" 0 (Pqueue.size q);
  Alcotest.(check bool) "pop None" true (Pqueue.pop q = None);
  Alcotest.(check bool) "peek None" true (Pqueue.peek_time q = None)

let test_ordering () =
  let q = Pqueue.create () in
  List.iter (fun t -> Pqueue.push q ~time:t (int_of_float t)) [ 3.; 1.; 2.; 0.5; 10. ];
  let times = List.map fst (drain q) in
  Alcotest.(check (list (float 1e-9))) "sorted" [ 0.5; 1.; 2.; 3.; 10. ] times

let test_fifo_at_equal_times () =
  let q = Pqueue.create () in
  List.iteri (fun i () -> Pqueue.push q ~time:5. i) [ (); (); (); (); () ];
  let vals = List.map snd (drain q) in
  Alcotest.(check (list int)) "insertion order preserved" [ 0; 1; 2; 3; 4 ] vals

let test_interleaved_push_pop () =
  let q = Pqueue.create () in
  Pqueue.push q ~time:2. "b";
  Pqueue.push q ~time:1. "a";
  Alcotest.(check bool) "pop a" true (Pqueue.pop q = Some (1., "a"));
  Pqueue.push q ~time:0.5 "c";
  Alcotest.(check bool) "pop c" true (Pqueue.pop q = Some (0.5, "c"));
  Alcotest.(check bool) "pop b" true (Pqueue.pop q = Some (2., "b"));
  Alcotest.(check bool) "empty" true (Pqueue.is_empty q)

let test_peek_does_not_remove () =
  let q = Pqueue.create () in
  Pqueue.push q ~time:7. ();
  Alcotest.(check (option (float 0.))) "peek" (Some 7.) (Pqueue.peek_time q);
  Alcotest.(check int) "size still 1" 1 (Pqueue.size q)

let test_grow () =
  let q = Pqueue.create () in
  for i = 999 downto 0 do
    Pqueue.push q ~time:(float_of_int i) i
  done;
  Alcotest.(check int) "size" 1000 (Pqueue.size q);
  let out = List.map snd (drain q) in
  Alcotest.(check (list int)) "sorted output" (List.init 1000 Fun.id) out

let test_clear () =
  let q = Pqueue.create () in
  Pqueue.push q ~time:1. ();
  Pqueue.clear q;
  Alcotest.(check bool) "empty after clear" true (Pqueue.is_empty q)

let test_capacity_honored () =
  Alcotest.(check int) "requested capacity pre-allocated" 128
    (Pqueue.capacity (Pqueue.create ~capacity:128 ()));
  Alcotest.(check int) "default capacity" 64 (Pqueue.capacity (Pqueue.create ()));
  Alcotest.(check int) "zero clamps to one" 1 (Pqueue.capacity (Pqueue.create ~capacity:0 ()));
  Alcotest.check_raises "negative rejected"
    (Invalid_argument "Pqueue.create: negative capacity") (fun () ->
      ignore (Pqueue.create ~capacity:(-1) ()));
  let q = Pqueue.create ~capacity:4 () in
  for i = 0 to 9 do
    Pqueue.push q ~time:(float_of_int i) i
  done;
  Alcotest.(check bool) "grows past requested capacity" true (Pqueue.capacity q >= 10);
  Alcotest.(check (list int)) "still sorted" (List.init 10 Fun.id)
    (List.map snd (drain q))

(* Popped slots must be reset: the heap array keeping popped cells alive
   retained every delivered message and callback closure against the GC. *)
let seed_and_pop q w =
  let payload = Bytes.make 16 'x' in
  Weak.set w 0 (Some payload);
  Pqueue.push q ~time:1. payload;
  Pqueue.push q ~time:2. (Bytes.make 16 'y');
  match Pqueue.pop q with Some _ -> () | None -> ()

let test_popped_payload_released () =
  let q = Pqueue.create () in
  let w = Weak.create 1 in
  seed_and_pop q w;
  Gc.full_major ();
  Alcotest.(check bool) "popped payload collected" true (Weak.get w 0 = None);
  Alcotest.(check int) "remaining event untouched" 1 (Pqueue.size q)

let seed_and_clear q w =
  let payload = Bytes.make 16 'z' in
  Weak.set w 0 (Some payload);
  Pqueue.push q ~time:1. payload

let test_cleared_payloads_released () =
  let q = Pqueue.create () in
  let w = Weak.create 1 in
  seed_and_clear q w;
  Pqueue.clear q;
  Gc.full_major ();
  Alcotest.(check bool) "cleared payload collected" true (Weak.get w 0 = None)

let test_clear_preserves_sequence () =
  (* Clear drops events but must NOT rewind the tie-break counter: ranks
     handed out through [alloc_seq] (the wheel's entries) survive a clear,
     and post-clear pushes have to keep ranking after them. Pop order for
     identical pushes is still fresh-queue-identical, because shifting all
     seqs by a constant preserves their relative order. *)
  let used = Pqueue.create () in
  for i = 0 to 9 do
    Pqueue.push used ~time:(float_of_int (i mod 3)) i
  done;
  let external_rank = Pqueue.alloc_seq used in
  Pqueue.clear used;
  (* The externally held rank must still precede anything pushed later. *)
  Pqueue.push used ~time:0. 99;
  Alcotest.(check bool) "post-clear push ranks after live external rank"
    true
    (Pqueue.top_seq used > external_rank);
  ignore (Pqueue.pop used);
  let fresh = Pqueue.create () in
  List.iter
    (fun q ->
      List.iteri (fun i t -> Pqueue.push q ~time:t i) [ 2.; 1.; 2.; 1.; 0. ])
    [ used; fresh ];
  Alcotest.(check bool) "identical pop sequences" true (drain used = drain fresh)

let test_drain () =
  let q = Pqueue.create () in
  List.iter (fun t -> Pqueue.push q ~time:t (int_of_float t)) [ 3.; 1.; 2. ];
  let out = ref [] in
  Pqueue.drain q (fun ~time v -> out := (time, v) :: !out);
  Alcotest.(check (list (pair (float 1e-9) int))) "drained in order"
    [ (1., 1); (2., 2); (3., 3) ]
    (List.rev !out);
  Alcotest.(check bool) "empty after drain" true (Pqueue.is_empty q)

let test_next_time () =
  let q = Pqueue.create () in
  Alcotest.(check bool) "infinity when empty" true (Pqueue.next_time q = Float.infinity);
  Pqueue.push q ~time:4.5 ();
  Alcotest.(check (float 1e-9)) "earliest time" 4.5 (Pqueue.next_time q);
  Alcotest.check_raises "pop_exn on empty"
    (Invalid_argument "Pqueue.pop_exn: empty queue") (fun () ->
      let q : unit Pqueue.t = Pqueue.create () in
      ignore (Pqueue.pop_exn q));
  Alcotest.(check unit) "pop_exn returns payload" () (Pqueue.pop_exn q)

let test_rejects_non_finite () =
  let q = Pqueue.create () in
  Alcotest.check_raises "nan" (Invalid_argument "Pqueue.push: non-finite time")
    (fun () -> Pqueue.push q ~time:Float.nan ());
  Alcotest.check_raises "inf" (Invalid_argument "Pqueue.push: non-finite time")
    (fun () -> Pqueue.push q ~time:Float.infinity ())

let prop_sorted =
  QCheck.Test.make ~name:"pops are sorted and complete" ~count:200
    QCheck.(list (float_bound_inclusive 1000.))
    (fun times ->
      let q = Pqueue.create () in
      List.iteri (fun i t -> Pqueue.push q ~time:t i) times;
      let out = ref [] in
      let rec go () =
        match Pqueue.pop q with
        | Some (t, _) ->
          out := t :: !out;
          go ()
        | None -> ()
      in
      go ();
      let popped = List.rev !out in
      List.length popped = List.length times
      && popped = List.sort Float.compare times)

let prop_stability =
  QCheck.Test.make ~name:"equal times pop in insertion order" ~count:200
    QCheck.(list_of_size (Gen.int_range 0 30) (int_bound 3))
    (fun buckets ->
      let q = Pqueue.create () in
      List.iteri (fun i b -> Pqueue.push q ~time:(float_of_int b) i) buckets;
      let rec go acc =
        match Pqueue.pop q with Some (t, i) -> go ((t, i) :: acc) | None -> List.rev acc
      in
      let out = go [] in
      (* Within each time bucket, payload order must be increasing. *)
      let rec check_bucket last = function
        | [] -> true
        | (t, i) :: rest -> (
          match last with
          | Some (t', i') when t = t' -> i > i' && check_bucket (Some (t, i)) rest
          | _ -> check_bucket (Some (t, i)) rest)
      in
      check_bucket None out)

let suite =
  [
    case "empty queue" test_empty;
    case "ordering" test_ordering;
    case "fifo ties" test_fifo_at_equal_times;
    case "interleaved push/pop" test_interleaved_push_pop;
    case "peek" test_peek_does_not_remove;
    case "growth to 1000" test_grow;
    case "clear" test_clear;
    case "capacity honored" test_capacity_honored;
    case "popped payloads released to the GC" test_popped_payload_released;
    case "cleared payloads released to the GC" test_cleared_payloads_released;
    case "clear preserves the tie-break sequence" test_clear_preserves_sequence;
    case "drain" test_drain;
    case "next_time and pop_exn" test_next_time;
    QCheck_alcotest.to_alcotest prop_sorted;
    QCheck_alcotest.to_alcotest prop_stability;
  ]
