(* Regression pins for the large-n scaling work: the per-event allocation
   budget of the hot path, and the structural guarantee that timer
   traffic no longer accumulates in the event heap. *)

let case name f = Alcotest.test_case name `Quick f

let build_sim ?(n = 64) ?(scheduler = Gcs.Sim.Wheel) ~horizon () =
  let params = Gcs.Params.make ~n () in
  let edges = Topology.Static.path n in
  let clocks = Gcs.Drift.assign params ~horizon ~seed:1 Gcs.Drift.Split_extremes in
  let delay = Dsim.Delay.maximal ~bound:params.Gcs.Params.delay_bound in
  let cfg = Gcs.Sim.config ~scheduler ~params ~clocks ~delay ~initial_edges:edges () in
  Gcs.Sim.create cfg

(* Minor-heap budget: with tracing off (counters only, the default), the
   n=64 path run allocates ~48 minor words per event under dune's dev
   profile — which passes [-opaque], so every cross-module call (clock
   reads, queue pushes, trace records) boxes its float arguments and
   results regardless of [@inline] annotations. A release-profile build
   inlines those and sits near 21 words/event (semantic payloads: message
   records, timer variant blocks, delay-sampler closures). Tests run in
   dev, so pin against the dev number with headroom; regressions that
   reintroduce per-event closures, lists or boxed options blow well past
   it (the pre-rework engine sat near 90). *)
let test_minor_words_budget () =
  let horizon = 60. in
  let sim = build_sim ~horizon () in
  Gc.full_major ();
  let m0 = Gc.minor_words () in
  Gcs.Sim.run_until sim horizon;
  let minor = Gc.minor_words () -. m0 in
  let events = Dsim.Engine.events_processed (Gcs.Sim.engine sim) in
  Alcotest.(check bool) "ran" true (events > 1000);
  let per_event = minor /. float_of_int events in
  if per_event > 60. then
    Alcotest.failf "minor words/event %.1f exceeds budget 60.0 (%d events)"
      per_event events

(* Throughput guard: a generous ns/event ceiling that a healthy dev build
   clears by an order of magnitude but any accidental O(n) scan on the
   per-event path (the failure mode this engine was rebuilt to avoid)
   blows through at n=1024. Wall-clock on shared CI is noisy, hence the
   wide margin — this is a quadratic-regression tripwire, not a benchmark
   (bench/scale.ml measures for real, under --profile release). *)
let test_ns_per_event_ceiling () =
  let horizon = 30. in
  let n = 1024 in
  let sim = build_sim ~n ~horizon () in
  let t0 = Unix.gettimeofday () in
  Gcs.Sim.run_until sim horizon;
  let wall = Unix.gettimeofday () -. t0 in
  let events = Dsim.Engine.events_processed (Gcs.Sim.engine sim) in
  Alcotest.(check bool) "ran" true (events > 10_000);
  let ns = wall *. 1e9 /. float_of_int events in
  if ns > 50_000. then
    Alcotest.failf "ns/event %.0f exceeds ceiling 50000 at n=%d (%d events)"
      ns n events

(* Under the wheel scheduler the heap holds only deliveries, discoveries
   and callbacks, so sustained timer re-arm traffic must leave its depth
   flat: the stale Lost entries that used to pile up between a receipt
   and the old entry's distant deadline never enter it. Armed labels are
   bounded by live protocol state (one Tick plus at most one Lost per
   gamma peer per node), and pending_events by heap depth + live timers. *)
let test_bounded_timer_state () =
  let n = 32 in
  let sim = build_sim ~n ~horizon:200. () in
  let engine = Gcs.Sim.engine sim in
  let max_depth_early = ref 0 in
  let max_depth_late = ref 0 in
  let max_pending = ref 0 in
  let max_live = ref 0 in
  let probe cell () =
    cell := max !cell (Dsim.Engine.queue_depth engine);
    max_pending := max !max_pending (Dsim.Engine.pending_events engine);
    max_live := max !max_live (Dsim.Engine.live_timers engine)
  in
  for i = 1 to 40 do
    Dsim.Engine.at engine ~time:(2.5 *. float_of_int i)
      (probe (if i <= 20 then max_depth_early else max_depth_late))
  done;
  Gcs.Sim.run_until sim 200.;
  Alcotest.(check bool) "probes saw traffic" true (!max_depth_early > 0);
  (* One Tick per node plus at most one Lost per gamma peer: on a path
     every node has <= 2 neighbours. *)
  Alcotest.(check bool)
    (Printf.sprintf "live timers %d bounded by 3n" !max_live)
    true
    (!max_live <= 3 * n);
  (* Flat over time: the later half of the run may not out-grow the
     steady state the first half reached. *)
  Alcotest.(check bool)
    (Printf.sprintf "queue depth flat (early max %d, late max %d)"
       !max_depth_early !max_depth_late)
    true
    (!max_depth_late <= !max_depth_early);
  Alcotest.(check bool)
    (Printf.sprintf "pending %d bounded by depth+timers" !max_pending)
    true
    (!max_pending <= !max_depth_early + !max_live)

(* The same execution under the heap scheduler used to keep every
   superseded Lost entry queued until its deadline passed; the wheel keeps
   them out of the heap entirely. Pin the structural win: wheel heap
   depth is a small fraction of the heap scheduler's. *)
let test_wheel_relieves_heap () =
  let horizon = 80. in
  let depth scheduler =
    let sim = build_sim ~n:32 ~scheduler ~horizon () in
    let engine = Gcs.Sim.engine sim in
    let peak = ref 0 in
    for i = 1 to 16 do
      Dsim.Engine.at engine ~time:(4.8 *. float_of_int i) (fun () ->
          peak := max !peak (Dsim.Engine.queue_depth engine))
    done;
    Gcs.Sim.run_until sim horizon;
    !peak
  in
  let heap_peak = depth Gcs.Sim.Heap in
  let wheel_peak = depth Gcs.Sim.Wheel in
  Alcotest.(check bool)
    (Printf.sprintf "wheel heap depth %d < half of heap scheduler's %d"
       wheel_peak heap_peak)
    true
    (2 * wheel_peak < heap_peak)

let suite =
  [
    case "minor words/event within budget (n=64, trace off)" test_minor_words_budget;
    case "ns/event under quadratic-regression ceiling" test_ns_per_event_ceiling;
    case "timer state bounded under sustained traffic" test_bounded_timer_state;
    case "wheel keeps timers out of the event heap" test_wheel_relieves_heap;
  ]
