(* The benchmark harness:

   1. regenerates every reproduced table/figure of the paper (experiments
      E1-E8; see DESIGN.md section 4 and EXPERIMENTS.md), printing the
      tables and their pass/fail checks;
   2. runs Bechamel microbenchmarks of the simulator's hot paths.

   3. with --scale, runs ONLY the n-sweep scaling bench (ns/event,
      events/s and minor-words/event at n in {64 .. 4096} under both
      schedulers, plus a wheel-only large tier up to n = 1M with engine
      footprints; see bench/scale.ml) so CI can smoke it without the
      full suite. --repeat K reports the median of K timed runs per row.

   Usage: dune exec bench/main.exe [-- --quick] [-- --skip-micro]
          dune exec bench/main.exe -- --only E4
          dune exec bench/main.exe -- --quick --jobs 4
          dune exec bench/main.exe -- --scale --quick --repeat 3 --scale-out out.json *)

(* Dev-profile builds pass -opaque, which voids cross-module inlining
   (DESIGN section 12): every number measured under them is meaningless
   and used to be published silently. Fail fast unless this binary came
   out of --profile release, with an explicit escape hatch for running
   the functional checks alone. *)
let () =
  if Profile.name <> "release"
     && not (Array.exists (( = ) "--allow-dev-profile") Sys.argv)
  then begin
    Printf.eprintf
      "bench: built under the '%s' dune profile, where -opaque disables \
       cross-module inlining and voids every measurement (DESIGN section \
       12).\nRe-run as:  dune exec --profile release bench/main.exe -- \
       ...\nor pass --allow-dev-profile to run the functional checks \
       anyway (timings will not be representative).\n"
      Profile.name;
    exit 2
  end

let quick = Array.exists (( = ) "--quick") Sys.argv

let skip_micro = Array.exists (( = ) "--skip-micro") Sys.argv

let scale = Array.exists (( = ) "--scale") Sys.argv

let flag_value name =
  let rec find i =
    if i >= Array.length Sys.argv then None
    else if Sys.argv.(i) = name then
      if i + 1 < Array.length Sys.argv then Some Sys.argv.(i + 1)
      else begin
        Printf.eprintf "%s requires a value (e.g. --only E4, --jobs 4)\n" name;
        prerr_endline "usage: main.exe [--quick] [--skip-micro] [--only ID] [--jobs N]";
        exit 2
      end
    else find (i + 1)
  in
  find 1

let only = flag_value "--only"

(* Worker domains for the experiment sweeps (results are byte-identical
   for every value; only the wall clock moves). *)
let () =
  match flag_value "--jobs" with
  | None -> ()
  | Some v -> (
    match int_of_string_opt v with
    | Some j when j >= 1 -> Runner.set_default_jobs j
    | Some _ | None ->
      Printf.eprintf "--jobs requires a positive integer (got %s)\n" v;
      exit 2)

(* ------------------------------------------------------------------ *)
(* Experiment tables                                                    *)
(* ------------------------------------------------------------------ *)

let run_experiments () =
  let entries =
    match only with
    | None -> Experiments.Registry.all
    | Some id -> (
      match Experiments.Registry.find id with
      | Some e -> [ e ]
      | None ->
        Format.eprintf "unknown experiment id %s@." id;
        exit 2)
  in
  let failures = ref 0 in
  List.iter
    (fun (e : Experiments.Registry.entry) ->
      let t0 = Unix.gettimeofday () in
      let result = e.run ~quick in
      Format.printf "%a" Experiments.Common.pp_result result;
      Format.printf "(%s mode, %.1fs)@.@."
        (if quick then "quick" else "full")
        (Unix.gettimeofday () -. t0);
      if not (Experiments.Common.all_pass result) then incr failures)
    entries;
  !failures

(* ------------------------------------------------------------------ *)
(* Explorer throughput (--only mcheck)                                  *)
(* ------------------------------------------------------------------ *)

(* [--only mcheck] is not an experiment id: it times the bounded model
   explorer (lib/mcheck/) exhausting two fixed configurations and
   reports states/s and events/s for BENCH_engine.json. It must be
   handled before [run_experiments], whose registry lookup exits 2 on
   unknown ids. *)
let run_mcheck () =
  let configs =
    [ Mcheck.Spec.make ~n:2 (); Mcheck.Spec.make ~n:3 () ]
  in
  let failures = ref 0 in
  List.iter
    (fun spec ->
      let t0 = Unix.gettimeofday () in
      let o = Mcheck.Explorer.explore spec in
      let dt = Unix.gettimeofday () -. t0 in
      let s = o.Mcheck.Explorer.stats in
      Format.printf
        "mcheck n=%d depth=%-2d traces=%-4d pruned=%-4d states=%-4d \
         events=%-6d %.3fs (%.0f states/s, %.0f events/s)%s@."
        spec.Mcheck.Spec.n spec.Mcheck.Spec.depth s.Mcheck.Explorer.traces
        s.pruned s.distinct_states s.events dt
        (float_of_int s.distinct_states /. dt)
        (float_of_int s.events /. dt)
        (if o.Mcheck.Explorer.violations = [] then "" else "  VIOLATIONS");
      if o.Mcheck.Explorer.violations <> [] then incr failures)
    configs;
  !failures

(* ------------------------------------------------------------------ *)
(* Microbenchmarks                                                      *)
(* ------------------------------------------------------------------ *)

open Bechamel
open Toolkit

(* The queue is created and sized once, OUTSIDE the staged closure, and
   fully drained each run: the benchmark measures steady-state push/pop,
   not [create] (a fresh queue per run used to dominate the number). *)
let bench_pqueue_n ~name ~elems =
  let q = Dsim.Pqueue.create ~capacity:(2 * elems) () in
  Test.make ~name
    (Staged.stage (fun () ->
         for i = 0 to elems - 1 do
           Dsim.Pqueue.push q ~time:(float_of_int ((i * 7919) mod elems)) i
         done;
         while not (Dsim.Pqueue.is_empty q) do
           ignore (Dsim.Pqueue.pop q)
         done))

let bench_pqueue = bench_pqueue_n ~name:"pqueue push+pop x100" ~elems:100

let bench_pqueue_10k = bench_pqueue_n ~name:"pqueue push+pop x10k" ~elems:10_000

let bench_trace_record =
  (* Counters-only trace: the hot-path configuration of every experiment. *)
  let tr = Dsim.Trace.create () in
  Test.make ~name:"trace-record x100"
    (Staged.stage (fun () ->
         for i = 0 to 99 do
           Dsim.Trace.record tr ~time:1.5 Dsim.Trace.Send i (i + 1) (-1)
         done))

let bench_prng =
  let g = Dsim.Prng.of_int 1 in
  Test.make ~name:"prng float x100"
    (Staged.stage (fun () ->
         for _ = 1 to 100 do
           ignore (Dsim.Prng.float g 1.)
         done))

let clock = Dsim.Hwclock.two_rate ~rho:0.05 ~period:10. ~horizon:1000. ~fast_first:true

let bench_clock_value =
  Test.make ~name:"hwclock value+inverse"
    (Staged.stage (fun () ->
         let h = Dsim.Hwclock.value clock 523.7 in
         ignore (Dsim.Hwclock.inverse clock h)))

let bench_params_b =
  let p = Gcs.Params.make ~n:64 () in
  Test.make ~name:"tolerance B(dt)"
    (Staged.stage (fun () -> ignore (Gcs.Params.b p 137.5)))

let skew_view =
  let clocks = Array.init 64 (fun i -> float_of_int (i * i mod 97)) in
  let graph = Dsim.Dyngraph.create ~n:64 in
  List.iter
    (fun (u, v) -> ignore (Dsim.Dyngraph.add_edge graph ~now:0. u v))
    (Topology.Static.path 64);
  {
    Gcs.Metrics.n = 64;
    clock_of = (fun i -> clocks.(i));
    lmax_of = (fun i -> clocks.(i) +. 1.);
    iter_edges = Dsim.Dyngraph.iter_edges graph;
  }

let bench_global_skew =
  Test.make ~name:"global skew over 64 nodes"
    (Staged.stage (fun () -> ignore (Gcs.Metrics.global_skew skew_view)))

let bench_local_skew =
  Test.make ~name:"local skew over 63 edges"
    (Staged.stage (fun () -> ignore (Gcs.Metrics.local_skew skew_view)))

let small_sim_config () =
  let n = 16 in
  let params = Gcs.Params.make ~n () in
  Gcs.Sim.config ~params
    ~clocks:(Gcs.Drift.assign params ~horizon:50. ~seed:1 Gcs.Drift.Split_extremes)
    ~delay:(Dsim.Delay.maximal ~bound:params.Gcs.Params.delay_bound)
    ~initial_edges:(Topology.Static.path n) ()

let bench_simulation =
  Test.make ~name:"end-to-end sim (n=16, horizon=50)"
    (Staged.stage (fun () ->
         let sim = Gcs.Sim.create (small_sim_config ()) in
         Gcs.Sim.run_until sim 50.))

(* Same run with an active fault schedule: the delta against the plain
   sim above is the whole fault path (crash/restart events, incarnation
   checks on every delivery, duplication and Byzantine windows). *)
let small_faulted_config () =
  let n = 16 in
  let params = Gcs.Params.make ~n () in
  let faults =
    [
      Dsim.Fault.Crash { node = 3; at = 10. };
      Dsim.Fault.Restart { node = 3; at = 20.; corrupt = true };
      Dsim.Fault.Duplicate { src = 0; dst = 1; from_ = 5.; until = 40. };
      Dsim.Fault.Byzantine { node = 8; from_ = 15.; until = 35. };
    ]
  in
  Gcs.Sim.config ~params
    ~clocks:(Gcs.Drift.assign params ~horizon:50. ~seed:1 Gcs.Drift.Split_extremes)
    ~delay:(Dsim.Delay.maximal ~bound:params.Gcs.Params.delay_bound)
    ~initial_edges:(Topology.Static.path n) ~faults ~fault_seed:2 ()

let bench_simulation_faults =
  Test.make ~name:"end-to-end sim, faulted (n=16, horizon=50)"
    (Staged.stage (fun () ->
         let sim = Gcs.Sim.create (small_faulted_config ()) in
         Gcs.Sim.run_until sim 50.))

let bench_flexible_distance =
  let net = Lowerbound.Twochain.build ~n:64 ~k:2 in
  let mask = Lowerbound.Twochain.mask net ~delay:1. in
  Test.make ~name:"0-1 BFS flexible distance (n=64)"
    (Staged.stage (fun () ->
         ignore
           (Lowerbound.Mask.flexible_distances mask ~n:64
              ~edges:net.Lowerbound.Twochain.edges 0)))

let bench_hetero_tolerance =
  let p = Gcs.Params.make ~n:64 () in
  Test.make ~name:"hetero tolerance B_e(dt)"
    (Staged.stage (fun () -> ignore (Gcs.Hetero.b_e p ~t_e:0.25 137.5)))

let bench_mcheck_explore =
  (* Tiny but complete choice tree: the same shape the smoke sweep
     exhausts, small enough for a sub-second Bechamel quota. *)
  let spec = Mcheck.Spec.make ~n:2 ~depth:6 ~horizon:2. () in
  Test.make ~name:"mcheck explore (n=2, depth=6)"
    (Staged.stage (fun () -> ignore (Mcheck.Explorer.explore spec)))

let bench_weighted_diameter =
  let weighted =
    List.map (fun (e : int * int) -> (e, 13.2)) (Topology.Static.ring 32)
  in
  Test.make ~name:"weighted diameter (Dijkstra, n=32)"
    (Staged.stage (fun () -> ignore (Gcs.Weights.effective_diameter ~n:32 weighted)))

let microbenches =
  [
    bench_pqueue; bench_pqueue_10k; bench_trace_record; bench_prng; bench_clock_value;
    bench_params_b;
    bench_hetero_tolerance; bench_global_skew; bench_local_skew; bench_simulation;
    bench_simulation_faults; bench_flexible_distance; bench_weighted_diameter;
    bench_mcheck_explore;
  ]

let run_micro () =
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:None ~stabilize:true ()
  in
  let table =
    Analysis.Table.create ~title:"Microbenchmarks (monotonic clock)"
      ~columns:[ "benchmark"; "ns/run"; "r^2" ]
  in
  List.iter
    (fun test ->
      let raw = Benchmark.all cfg instances (Test.make_grouped ~name:"g" [ test ]) in
      let results = Analyze.all ols Instance.monotonic_clock raw in
      Hashtbl.iter
        (fun name ols_result ->
          let ns =
            match Analyze.OLS.estimates ols_result with
            | Some (est :: _) -> est
            | Some [] | None -> Float.nan
          in
          let r2 = Option.value ~default:Float.nan (Analyze.OLS.r_square ols_result) in
          Analysis.Table.add_row table
            [
              Analysis.Table.Str name;
              Analysis.Table.Float ns;
              Analysis.Table.Float r2;
            ])
        results)
    microbenches;
  Format.printf "%a@." Analysis.Table.pp table

let () =
  Format.printf "gradient-clock-sync benchmark harness (%s mode)@.@."
    (if quick then "quick" else "full");
  (* Validated whether or not --scale is present: a typo'd K must not
     silently fall through to a multi-minute full run. *)
  let repeat =
    match flag_value "--repeat" with
    | None -> 1
    | Some v -> (
      match int_of_string_opt v with
      | Some k when k >= 1 -> k
      | Some _ | None ->
        Printf.eprintf "--repeat requires a positive integer (got %s)\n" v;
        exit 2)
  in
  if Array.exists (( = ) "--budget") Sys.argv then
    (* CI allocation guard: sequential-path minor-words/event at n=1024
       against the fixed ceiling (exit 1 on regression). *)
    exit (Scale.budget ());
  if scale then begin
    let failures = Scale.run ~quick ~repeat ~out:(flag_value "--scale-out") () in
    if failures > 0 then begin
      Format.printf "@.%d scaling check(s) failed@." failures;
      exit 1
    end
    else begin
      Format.printf "@.all scaling checks passed@.";
      exit 0
    end
  end;
  if only = Some "mcheck" then begin
    let failures = run_mcheck () in
    if failures > 0 then begin
      Format.printf "@.%d mcheck configuration(s) had violations@." failures;
      exit 1
    end
    else begin
      Format.printf "@.all mcheck configurations clean@.";
      exit 0
    end
  end;
  let failures = run_experiments () in
  if not skip_micro then run_micro ();
  if failures > 0 then begin
    Format.printf "@.%d experiment(s) had failing checks@." failures;
    exit 1
  end
  else Format.printf "@.all experiment checks passed@."
