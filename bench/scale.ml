(* n-sweep scaling bench.

   Classic tier: end-to-end simulations at n in {64 .. 4096} on a path
   and on the same path under random churn, run under BOTH schedulers
   (event-heap timers vs the timer wheel), reporting ns/event,
   events/s and minor-words/event. The two schedulers execute
   byte-identical traces (pinned by test_parity), so the event counts
   must agree and only the costs differ.

   Large tier (full mode; quick caps it at 64k): wheel scheduler on a
   path at n in {16k, 64k, 256k, 1M} over a shorter horizon, recording
   the engine's resident footprint. Consecutive sizes are 4x apart, so
   the footprint ratio distinguishes O(n + live edges) growth (~4x) from
   a pair-keyed O(n^2) regression (~16x); the sweep fails if any ratio
   exceeds 8. Sizes from 64k up are additionally run with --shards 4 at
   jobs 1 and jobs 4 — the parallel-window dispatch path on one and on
   four domains — to price the barrier re-ranking seam and report the
   actual multi-domain speedup (the execution is byte-identical across
   all of them; only cost moves, which the event-parity check pins).

   Run standalone via [bench/main.exe -- --scale [--quick] [--repeat K]
   [--scale-out FILE]]; --repeat K re-runs every timed row K times and
   reports the median-of-K by ns/event, which takes the scheduler-noise
   jitter out of single-shot numbers. The sweep ends with an E1-style
   check that the global skew bound G(n) — linear in n — still holds
   end-to-end at n = 1024. *)

module Table = Analysis.Table

type row = {
  topo : string;  (* "path" or "churn" *)
  n : int;
  scheduler : Gcs.Sim.scheduler;
  shards : int;
  jobs : int;  (* domains dispatching the parallel windows *)
  events : int;
  ns_per_event : float;
  events_per_s : float;
  words_per_event : float;
  wall_s : float;
  footprint_words : int; (* engine-owned storage after the run *)
  (* Parallel-dispatch shape (all zero on the sequential path): dispatch
     rounds, merge barriers (windows/barriers > 1 means the adaptive
     extension amortized barriers over several rounds), and events that
     crossed shards through the outboxes. *)
  windows : int;
  barriers : int;
  cross_shard : int;
}

let horizon = 60.

(* The large tier trades horizon for population: cost per event is
   steady-state, so a shorter run measures the same thing. *)
let horizon_large = 10.

let sizes ~quick = if quick then [ 64; 256; 1024 ] else [ 64; 256; 1024; 4096 ]

let large_sizes ~quick =
  if quick then [ 16_384; 65_536 ]
  else [ 16_384; 65_536; 262_144; 1_048_576 ]

let build ?(faults = []) ?(shards = 1) ?(horizon = horizon) ~scheduler ~n ~churn () =
  let params = Gcs.Params.make ~n () in
  let edges = Topology.Static.path n in
  let clocks = Gcs.Drift.assign params ~horizon ~seed:1 Gcs.Drift.Split_extremes in
  let delay = Dsim.Delay.maximal ~bound:params.Gcs.Params.delay_bound in
  let cfg =
    Gcs.Sim.config ~scheduler ~shards ~params ~clocks ~delay ~initial_edges:edges
      ~faults ~fault_seed:3 ()
  in
  let sim = Gcs.Sim.create cfg in
  if churn then
    Topology.Churn.schedule (Gcs.Sim.engine sim)
      (Topology.Churn.random_churn (Dsim.Prng.of_int 7) ~n ~base:edges
         ~rate:(float_of_int n /. 256.) ~horizon);
  sim

(* Run to the horizon, on [jobs] domains when asked: the pool lives for
   exactly the timed region, and the executor is detached before it
   dies. Timing includes pool setup/teardown — that is the honest cost
   a caller pays. The ambient budget is lifted for the timed region so
   the row really measures [jobs] domains even on a small host (on a
   single core that shows the cross-domain GC-sync overhead rather than
   silently degrading to the jobs=1 row). *)
let timed_run sim ~jobs ~horizon =
  if jobs > 1 then begin
    let saved = Runner.default_jobs () in
    Runner.set_default_jobs (max saved jobs);
    Fun.protect
      ~finally:(fun () -> Runner.set_default_jobs saved)
      (fun () ->
        Runner.scoped ~jobs (fun pool ->
            let engine = Gcs.Sim.engine sim in
            Dsim.Engine.set_executor engine (Some (Runner.run pool));
            Fun.protect
              ~finally:(fun () -> Dsim.Engine.set_executor engine None)
              (fun () -> Gcs.Sim.run_until sim horizon)))
  end
  else Gcs.Sim.run_until sim horizon

let measure_once ?faults ?shards ?(jobs = 1) ?(horizon = horizon) ~scheduler ~n
    ~churn () =
  let sim = build ?faults ?shards ~horizon ~scheduler ~n ~churn () in
  Gc.full_major ();
  let m0 = Gc.minor_words () in
  let t0 = Unix.gettimeofday () in
  timed_run sim ~jobs ~horizon;
  let wall_s = Unix.gettimeofday () -. t0 in
  let minor = Gc.minor_words () -. m0 in
  let engine = Gcs.Sim.engine sim in
  let events = Dsim.Engine.events_processed engine in
  let tr = Dsim.Engine.trace engine in
  let per ev x = x /. float_of_int ev in
  {
    topo = (if churn then "churn" else "path");
    n;
    scheduler;
    shards = Dsim.Engine.shards engine;
    jobs;
    events;
    ns_per_event = per events (wall_s *. 1e9);
    events_per_s = float_of_int events /. wall_s;
    words_per_event = per events minor;
    wall_s;
    footprint_words = Dsim.Engine.footprint_words engine;
    windows = Dsim.Trace.windows tr;
    barriers = Dsim.Trace.barriers tr;
    cross_shard = Dsim.Trace.cross_shard_events tr;
  }

(* Median-of-K by ns/event. Everything but the wall clock is
   deterministic across repeats (same events, same footprint), so the
   median only picks which timing to report. *)
let measure ?faults ?shards ?jobs ?horizon ~repeat ~scheduler ~n ~churn () =
  let runs =
    List.init (max 1 repeat) (fun _ ->
        measure_once ?faults ?shards ?jobs ?horizon ~scheduler ~n ~churn ())
  in
  let sorted =
    List.sort (fun a b -> Float.compare a.ns_per_event b.ns_per_event) runs
  in
  List.nth sorted (List.length sorted / 2)

(* Fault-path cost at n=1024: the same path run with no schedule and
   with a crash/restart + duplication + Byzantine campaign, back to
   back. The no-schedule number doubles as the regression guard — the
   fault integration is a dormant branch when nothing is installed, so
   its ns/event must track the sweep rows above. *)
let fault_overhead_check ~repeat () =
  let n = 1024 in
  let baseline = measure ~repeat ~scheduler:Gcs.Sim.Wheel ~n ~churn:false () in
  let faults =
    List.concat
      (List.init 8 (fun k ->
           let node = (k * 128) + 1 in
           let at = 10. +. float_of_int k in
           [
             Dsim.Fault.Crash { node; at };
             Dsim.Fault.Restart { node; at = at +. 8.; corrupt = k mod 2 = 0 };
           ]))
    @ [
        Dsim.Fault.Duplicate { src = 0; dst = 1; from_ = 5.; until = 40. };
        Dsim.Fault.Byzantine { node = 512; from_ = 15.; until = 35. };
      ]
  in
  let faulted = measure ~faults ~repeat ~scheduler:Gcs.Sim.Wheel ~n ~churn:false () in
  (baseline, faulted)

(* E1-style end-of-sweep check: the paper's G(n) bound is linear in n;
   verify the measured max global skew still sits under it at n = 1024
   (sampled every horizon/20, separate from the timed runs so the
   recorder's probes do not pollute the cost numbers). *)
let g_linearity_check () =
  let n = 1024 in
  let sim = build ~scheduler:Gcs.Sim.Wheel ~n ~churn:false () in
  let params = Gcs.Sim.params sim in
  let recorder =
    Gcs.Metrics.attach (Gcs.Sim.engine sim) (Gcs.Sim.view sim)
      ~every:(horizon /. 20.) ~until:horizon ()
  in
  Gcs.Sim.run_until sim horizon;
  let max_skew = Gcs.Metrics.max_global_skew recorder in
  let bound = Gcs.Params.global_skew_bound params in
  (n, max_skew, bound, max_skew <= bound)

(* Footprint growth across the large tier's 4x size steps. Linear memory
   gives ratios near 4 (sub-4 when fixed costs still matter); a revived
   O(n^2) pair keying would push them toward 16. *)
let memory_growth_check large_rows =
  let rec ratios = function
    | a :: (b :: _ as rest) when b.n = 4 * a.n ->
      (a.n, b.n, float_of_int b.footprint_words /. float_of_int a.footprint_words)
      :: ratios rest
    | _ :: rest -> ratios rest
    | [] -> []
  in
  let rs = ratios large_rows in
  (rs, List.for_all (fun (_, _, r) -> r <= 8.) rs)

let scheduler_of_row r = Gcs.Sim.scheduler_to_string r.scheduler

let row_json buf r ~last =
  Printf.bprintf buf
    "    {\"topo\": %S, \"n\": %d, \"scheduler\": %S, \"shards\": %d, \
     \"jobs\": %d, \"events\": %d, \"ns_per_event\": %.1f, \
     \"events_per_s\": %.0f, \"minor_words_per_event\": %.2f, \
     \"wall_s\": %.3f, \"footprint_words\": %d, \"windows\": %d, \
     \"barriers\": %d, \"windows_per_barrier\": %.2f, \
     \"cross_shard_events\": %d}%s\n"
    r.topo r.n (scheduler_of_row r) r.shards r.jobs r.events r.ns_per_event
    r.events_per_s r.words_per_event r.wall_s r.footprint_words r.windows
    r.barriers
    (if r.barriers = 0 then 0. else float_of_int r.windows /. float_of_int r.barriers)
    r.cross_shard
    (if last then "" else ",")

let write_json path ~quick ~repeat rows large_rows (gn, gskew, gbound, gpass)
    (mem_ratios, mem_pass) =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf
    "  \"description\": \"n-sweep scaling: end-to-end sim cost per event, \
     heap vs wheel scheduler, path and churned topologies, plus a \
     large-n wheel tier with engine footprints\",\n";
  Printf.bprintf buf "  \"horizon\": %g,\n" horizon;
  Printf.bprintf buf "  \"horizon_large\": %g,\n" horizon_large;
  Printf.bprintf buf "  \"quick\": %b,\n" quick;
  Printf.bprintf buf "  \"repeat\": %d,\n" repeat;
  Buffer.add_string buf "  \"rows\": [\n";
  let k = List.length rows in
  List.iteri (fun i r -> row_json buf r ~last:(i = k - 1)) rows;
  Buffer.add_string buf "  ],\n";
  Buffer.add_string buf "  \"large_rows\": [\n";
  let k = List.length large_rows in
  List.iteri (fun i r -> row_json buf r ~last:(i = k - 1)) large_rows;
  Buffer.add_string buf "  ],\n";
  Buffer.add_string buf "  \"memory_growth_check\": {\"ratios\": [";
  List.iteri
    (fun i (n1, n2, r) ->
      Printf.bprintf buf "%s{\"from_n\": %d, \"to_n\": %d, \"ratio\": %.2f}"
        (if i = 0 then "" else ", ")
        n1 n2 r)
    mem_ratios;
  Printf.bprintf buf "], \"pass\": %b},\n" mem_pass;
  Printf.bprintf buf
    "  \"g_linearity_check\": {\"n\": %d, \"max_global_skew\": %.4f, \
     \"bound\": %.4f, \"pass\": %b}\n"
    gn gskew gbound gpass;
  Buffer.add_string buf "}\n";
  let oc = open_out path in
  output_string oc (Buffer.contents buf);
  close_out oc

let row_columns =
  [ "topology"; "n"; "sched"; "shards"; "jobs"; "events"; "ns/event"; "Mev/s";
    "words/event"; "wall s"; "footprint Mw"; "barriers"; "win/bar" ]

let add_row table r =
  Table.add_row table
    [
      Table.Str r.topo;
      Table.Int r.n;
      Table.Str (scheduler_of_row r);
      Table.Int r.shards;
      Table.Int r.jobs;
      Table.Int r.events;
      Table.Float r.ns_per_event;
      Table.Float (r.events_per_s /. 1e6);
      Table.Float r.words_per_event;
      Table.Float r.wall_s;
      Table.Float (float_of_int r.footprint_words /. 1e6);
      Table.Int r.barriers;
      Table.Float
        (if r.barriers = 0 then 0.
         else float_of_int r.windows /. float_of_int r.barriers);
    ]

(* The CI allocation guard (and a fast local A/B driver): one sequential
   n=1024 path run under the wheel scheduler — the classic-tier row CI
   budgets against — checked against a minor-words/event ceiling.
   Allocation per event is deterministic (no wall-clock noise), so a
   single run suffices and a regression fails loudly. *)
let budget ?(limit = 19.) () =
  let r = measure_once ~scheduler:Gcs.Sim.Wheel ~n:1024 ~churn:false () in
  Format.printf
    "allocation budget: n=%d path wheel sequential — %d events, %.2f \
     minor-words/event (ceiling %.1f)@."
    r.n r.events r.words_per_event limit;
  if r.words_per_event > limit then begin
    Format.printf "budget check FAILED: minor-words/event above ceiling@.";
    1
  end
  else begin
    Format.printf "budget check passed@.";
    0
  end

let run ~quick ~repeat ~out () =
  (* Classic-tier rows are cheap (n <= 4096) and feed the per-event cost
     numbers CI budgets against, so they always take at least a
     median-of-3 — one noisy run must not move a published number. The
     large tier honors --repeat as given. *)
  let classic_repeat = max 3 repeat in
  Format.printf
    "scaling sweep (horizon=%g, %s mode, median of %d classic / %d large; \
     both schedulers)@.@."
    horizon
    (if quick then "quick" else "full")
    classic_repeat repeat;
  let rows =
    List.concat_map
      (fun churn ->
        List.concat_map
          (fun n ->
            List.map
              (fun scheduler ->
                measure ~repeat:classic_repeat ~scheduler ~n ~churn ())
              [ Gcs.Sim.Heap; Gcs.Sim.Wheel ])
          (sizes ~quick))
      [ false; true ]
  in
  let table =
    Table.create ~title:"End-to-end cost per event, heap vs wheel scheduler"
      ~columns:row_columns
  in
  List.iter (add_row table) rows;
  Format.printf "%a@." Table.pp table;
  (* Same-(topo, n) pairs run back to back, heap first: fold into a
     speedup summary and check event-count parity while at it. *)
  let parity_ok = ref true in
  let speedups = Table.create ~title:"Wheel speedup" ~columns:[ "topology"; "n"; "heap/wheel" ] in
  let rec pair = function
    | ({ scheduler = Gcs.Sim.Heap; _ } as h) :: ({ scheduler = Gcs.Sim.Wheel; _ } as w) :: rest ->
      if h.events <> w.events then parity_ok := false;
      Table.add_row speedups
        [ Table.Str h.topo; Table.Int h.n; Table.Float (h.ns_per_event /. w.ns_per_event) ];
      pair rest
    | _ -> ()
  in
  pair rows;
  Format.printf "%a@." Table.pp speedups;
  (* Large tier: wheel only, shorter horizon, engine footprint recorded.
     Sizes from 64k up additionally run sharded (K = 4) with the window
     dispatch on 1 and on 4 domains — barrier-seam cost and the actual
     parallel speedup, side by side. *)
  let large_rows =
    List.concat_map
      (fun n ->
        let base =
          measure ~repeat ~horizon:horizon_large ~scheduler:Gcs.Sim.Wheel ~n
            ~churn:false ()
        in
        if n < 65_536 then [ base ]
        else
          let sharded jobs =
            measure ~repeat ~shards:4 ~jobs ~horizon:horizon_large
              ~scheduler:Gcs.Sim.Wheel ~n ~churn:false ()
          in
          [ base; sharded 1; sharded 4 ])
      (large_sizes ~quick)
  in
  (* Same-n rows are the same execution whatever the (shards, jobs)
     placement, so their event counts must agree exactly. *)
  let shard_parity_ok =
    List.for_all
      (fun r ->
        List.for_all (fun r' -> r'.n <> r.n || r'.events = r.events) large_rows)
      large_rows
  in
  let large_table =
    Table.create ~title:"Large-n tier (wheel, path)" ~columns:row_columns
  in
  List.iter (add_row large_table) large_rows;
  Format.printf "%a@." Table.pp large_table;
  let mem_ratios, mem_pass =
    memory_growth_check (List.filter (fun r -> r.shards = 1) large_rows)
  in
  List.iter
    (fun (n1, n2, r) ->
      Format.printf "footprint growth %d -> %d: %.2fx (linear ~4x, quadratic ~16x)@."
        n1 n2 r)
    mem_ratios;
  Format.printf "memory growth O(n + live edges): %s@."
    (if mem_pass then "PASS" else "FAIL");
  Format.printf "event-count parity across (shards, jobs): %s@."
    (if shard_parity_ok then "PASS" else "FAIL");
  let no_fault, with_fault = fault_overhead_check ~repeat () in
  Format.printf
    "fault path at n=1024 (wheel): empty schedule %.1f ns/event, campaign %.1f \
     ns/event (%d vs %d events)@."
    no_fault.ns_per_event with_fault.ns_per_event no_fault.events with_fault.events;
  let ((gn, gskew, gbound, gpass) as g) = g_linearity_check () in
  Format.printf "G(n) linearity at n=%d: max global skew %.4f vs bound %.4f -> %s@."
    gn gskew gbound
    (if gpass then "PASS" else "FAIL");
  Format.printf "event-count parity across schedulers: %s@."
    (if !parity_ok then "PASS" else "FAIL");
  Option.iter
    (fun path ->
      write_json path ~quick ~repeat rows large_rows g (mem_ratios, mem_pass);
      Format.printf "wrote %s@." path)
    out;
  (if gpass then 0 else 1)
  + (if !parity_ok then 0 else 1)
  + (if mem_pass then 0 else 1)
  + if shard_parity_ok then 0 else 1
