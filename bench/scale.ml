(* n-sweep scaling bench: end-to-end simulations at n in {64 .. 4096} on
   a path and on the same path under random churn, run under BOTH
   schedulers (event-heap timers vs the timer wheel), reporting ns/event
   and minor-words/event. The two schedulers execute byte-identical
   traces (pinned by test_parity), so the event counts must agree and
   only the costs differ.

   Run standalone via [bench/main.exe -- --scale [--quick] [--scale-out
   FILE]]; quick mode caps the sweep at n = 1024. The sweep ends with an
   E1-style check that the global skew bound G(n) — linear in n — still
   holds end-to-end at n = 1024. *)

module Table = Analysis.Table

type row = {
  topo : string;  (* "path" or "churn" *)
  n : int;
  scheduler : Gcs.Sim.scheduler;
  events : int;
  ns_per_event : float;
  words_per_event : float;
  wall_s : float;
}

let horizon = 60.

let sizes ~quick = if quick then [ 64; 256; 1024 ] else [ 64; 256; 1024; 4096 ]

let build ?(faults = []) ~scheduler ~n ~churn () =
  let params = Gcs.Params.make ~n () in
  let edges = Topology.Static.path n in
  let clocks = Gcs.Drift.assign params ~horizon ~seed:1 Gcs.Drift.Split_extremes in
  let delay = Dsim.Delay.maximal ~bound:params.Gcs.Params.delay_bound in
  let cfg =
    Gcs.Sim.config ~scheduler ~params ~clocks ~delay ~initial_edges:edges ~faults
      ~fault_seed:3 ()
  in
  let sim = Gcs.Sim.create cfg in
  if churn then
    Topology.Churn.schedule (Gcs.Sim.engine sim)
      (Topology.Churn.random_churn (Dsim.Prng.of_int 7) ~n ~base:edges
         ~rate:(float_of_int n /. 256.) ~horizon);
  sim

let measure ?faults ~scheduler ~n ~churn () =
  let sim = build ?faults ~scheduler ~n ~churn () in
  Gc.full_major ();
  let m0 = Gc.minor_words () in
  let t0 = Unix.gettimeofday () in
  Gcs.Sim.run_until sim horizon;
  let wall_s = Unix.gettimeofday () -. t0 in
  let minor = Gc.minor_words () -. m0 in
  let events = Dsim.Engine.events_processed (Gcs.Sim.engine sim) in
  let per ev x = x /. float_of_int ev in
  {
    topo = (if churn then "churn" else "path");
    n;
    scheduler;
    events;
    ns_per_event = per events (wall_s *. 1e9);
    words_per_event = per events minor;
    wall_s;
  }

(* Fault-path cost at n=1024: the same path run with no schedule and
   with a crash/restart + duplication + Byzantine campaign, back to
   back. The no-schedule number doubles as the regression guard — the
   fault integration is a dormant branch when nothing is installed, so
   its ns/event must track the sweep rows above. *)
let fault_overhead_check () =
  let n = 1024 in
  let baseline = measure ~scheduler:Gcs.Sim.Wheel ~n ~churn:false () in
  let faults =
    List.concat
      (List.init 8 (fun k ->
           let node = (k * 128) + 1 in
           let at = 10. +. float_of_int k in
           [
             Dsim.Fault.Crash { node; at };
             Dsim.Fault.Restart { node; at = at +. 8.; corrupt = k mod 2 = 0 };
           ]))
    @ [
        Dsim.Fault.Duplicate { src = 0; dst = 1; from_ = 5.; until = 40. };
        Dsim.Fault.Byzantine { node = 512; from_ = 15.; until = 35. };
      ]
  in
  let faulted = measure ~faults ~scheduler:Gcs.Sim.Wheel ~n ~churn:false () in
  (baseline, faulted)

(* E1-style end-of-sweep check: the paper's G(n) bound is linear in n;
   verify the measured max global skew still sits under it at n = 1024
   (sampled every horizon/20, separate from the timed runs so the
   recorder's probes do not pollute the cost numbers). *)
let g_linearity_check () =
  let n = 1024 in
  let sim = build ~scheduler:Gcs.Sim.Wheel ~n ~churn:false () in
  let params = Gcs.Sim.params sim in
  let recorder =
    Gcs.Metrics.attach (Gcs.Sim.engine sim) (Gcs.Sim.view sim)
      ~every:(horizon /. 20.) ~until:horizon ()
  in
  Gcs.Sim.run_until sim horizon;
  let max_skew = Gcs.Metrics.max_global_skew recorder in
  let bound = Gcs.Params.global_skew_bound params in
  (n, max_skew, bound, max_skew <= bound)

let scheduler_of_row r = Gcs.Sim.scheduler_to_string r.scheduler

let write_json path ~quick rows (gn, gskew, gbound, gpass) =
  let buf = Buffer.create 2048 in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf
    "  \"description\": \"n-sweep scaling: end-to-end sim cost per event, \
     heap vs wheel scheduler, path and churned topologies\",\n";
  Printf.bprintf buf "  \"horizon\": %g,\n" horizon;
  Printf.bprintf buf "  \"quick\": %b,\n" quick;
  Buffer.add_string buf "  \"rows\": [\n";
  List.iteri
    (fun i r ->
      Printf.bprintf buf
        "    {\"topo\": %S, \"n\": %d, \"scheduler\": %S, \"events\": %d, \
         \"ns_per_event\": %.1f, \"minor_words_per_event\": %.2f, \
         \"wall_s\": %.3f}%s\n"
        r.topo r.n (scheduler_of_row r) r.events r.ns_per_event r.words_per_event
        r.wall_s
        (if i = List.length rows - 1 then "" else ","))
    rows;
  Buffer.add_string buf "  ],\n";
  Printf.bprintf buf
    "  \"g_linearity_check\": {\"n\": %d, \"max_global_skew\": %.4f, \
     \"bound\": %.4f, \"pass\": %b}\n"
    gn gskew gbound gpass;
  Buffer.add_string buf "}\n";
  let oc = open_out path in
  output_string oc (Buffer.contents buf);
  close_out oc

let run ~quick ~out () =
  Format.printf "scaling sweep (horizon=%g, %s mode; both schedulers)@.@."
    horizon
    (if quick then "quick" else "full");
  let rows =
    List.concat_map
      (fun churn ->
        List.concat_map
          (fun n ->
            List.map
              (fun scheduler -> measure ~scheduler ~n ~churn ())
              [ Gcs.Sim.Heap; Gcs.Sim.Wheel ])
          (sizes ~quick))
      [ false; true ]
  in
  let table =
    Table.create ~title:"End-to-end cost per event, heap vs wheel scheduler"
      ~columns:
        [ "topology"; "n"; "scheduler"; "events"; "ns/event"; "words/event"; "wall s" ]
  in
  List.iter
    (fun r ->
      Table.add_row table
        [
          Table.Str r.topo;
          Table.Int r.n;
          Table.Str (scheduler_of_row r);
          Table.Int r.events;
          Table.Float r.ns_per_event;
          Table.Float r.words_per_event;
          Table.Float r.wall_s;
        ])
    rows;
  Format.printf "%a@." Table.pp table;
  (* Same-(topo, n) pairs run back to back, heap first: fold into a
     speedup summary and check event-count parity while at it. *)
  let parity_ok = ref true in
  let speedups = Table.create ~title:"Wheel speedup" ~columns:[ "topology"; "n"; "heap/wheel" ] in
  let rec pair = function
    | ({ scheduler = Gcs.Sim.Heap; _ } as h) :: ({ scheduler = Gcs.Sim.Wheel; _ } as w) :: rest ->
      if h.events <> w.events then parity_ok := false;
      Table.add_row speedups
        [ Table.Str h.topo; Table.Int h.n; Table.Float (h.ns_per_event /. w.ns_per_event) ];
      pair rest
    | _ -> ()
  in
  pair rows;
  Format.printf "%a@." Table.pp speedups;
  let no_fault, with_fault = fault_overhead_check () in
  Format.printf
    "fault path at n=1024 (wheel): empty schedule %.1f ns/event, campaign %.1f \
     ns/event (%d vs %d events)@."
    no_fault.ns_per_event with_fault.ns_per_event no_fault.events with_fault.events;
  let ((gn, gskew, gbound, gpass) as g) = g_linearity_check () in
  Format.printf "G(n) linearity at n=%d: max global skew %.4f vs bound %.4f -> %s@."
    gn gskew gbound
    (if gpass then "PASS" else "FAIL");
  Format.printf "event-count parity across schedulers: %s@."
    (if !parity_ok then "PASS" else "FAIL");
  Option.iter
    (fun path ->
      write_json path ~quick rows g;
      Format.printf "wrote %s@." path)
    out;
  (if gpass then 0 else 1) + if !parity_ok then 0 else 1
