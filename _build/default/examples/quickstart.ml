(* Quickstart: synchronize 16 drifting clocks on a ring.

   Run with: dune exec examples/quickstart.exe

   The five steps below are the whole public API surface you need:
   parameters -> clocks -> delay policy -> simulation -> measurements. *)

let () =
  (* 1. Model parameters (Section 3 of the paper): 16 nodes, 5% drift,
     message delay bound T = 1, updates every subjective 1.0. *)
  let n = 16 in
  let params = Gcs.Params.make ~rho:0.05 ~n () in
  Format.printf "Parameters and derived bounds:@.%a@.@." Gcs.Params.pp params;

  (* 2. Hardware clocks: half the nodes fast, half slow - the adversarial
     steady state. *)
  let horizon = 300. in
  let clocks = Gcs.Drift.assign params ~horizon ~seed:42 Gcs.Drift.Split_extremes in

  (* 3. Message delays: uniformly random in [0, T]. *)
  let delay =
    Dsim.Delay.uniform (Dsim.Prng.of_int 7) ~bound:params.Gcs.Params.delay_bound
  in

  (* 4. Build and run the simulation on a ring. *)
  let cfg =
    Gcs.Sim.config ~params ~clocks ~delay ~initial_edges:(Topology.Static.ring n) ()
  in
  let sim = Gcs.Sim.create cfg in
  let view = Gcs.Sim.view sim in
  let recorder =
    Gcs.Metrics.attach (Gcs.Sim.engine sim) view ~every:1. ~until:horizon ()
  in
  Gcs.Sim.run_until sim horizon;

  (* 5. Measure. *)
  Format.printf "after %.0f time units:@." horizon;
  Format.printf "  node 0 logical clock   = %.3f@." (Gcs.Sim.logical_clock sim 0);
  Format.printf "  global skew            = %.3f  (bound G(n) = %.3f)@."
    (Gcs.Metrics.global_skew view)
    (Gcs.Params.global_skew_bound params);
  Format.printf "  local skew             = %.3f  (stable bound = %.3f)@."
    (Gcs.Metrics.local_skew view)
    (Gcs.Params.stable_local_skew params);
  Format.printf "  worst global skew seen = %.3f@." (Gcs.Metrics.max_global_skew recorder);
  Format.printf "  messages sent          = %d@." (Gcs.Sim.total_messages sim)
