(* TDMA slot coordination - the paper's motivating application (Section 1).

   Run with: dune exec examples/tdma.exe

   Nodes share a wireless medium and avoid interference by transmitting in
   time slots derived from their LOGICAL clocks. Two interfering nodes
   collide when their logical clocks disagree about the current slot, so a
   TDMA schedule is safe on a link exactly when the skew across it stays
   below half a slot. The gradient algorithm's stable bound B0 + 2 rho W
   tells the operator how long slots must be: we size slots at 2.2x that
   bound and drive the network through the worst dynamic event the paper
   studies - a shortcut edge appearing across a path that the
   Masking-Lemma adversary loaded with Theta(n) skew.

   Reported per algorithm:
   - slot violations on OLD links (the schedule relies on these; the
     paper's Theorem 6.12 promises the gradient algorithm keeps them
     aligned even while absorbing the shortcut);
   - how long the NEW link takes to become slot-safe (no algorithm can
     make this instant - Theorem 4.1's lower bound). *)

let n = 32

let run algo =
  let params = Gcs.Params.make ~b0:10.5 ~n () in
  let slot_length = 2.2 *. Gcs.Params.stable_local_skew params in
  let safe skew = skew < slot_length /. 2. in
  let edges = Topology.Static.path n in
  let layered =
    Lowerbound.Layered.prepare ~n ~edges ~mask:Lowerbound.Mask.empty ~source:0
      ~rho:params.Gcs.Params.rho ~delay_bound:params.Gcs.Params.delay_bound
  in
  let t_add = Lowerbound.Layered.min_time layered (n - 1) +. 10. in
  let horizon = t_add +. 150. in
  let cfg =
    Gcs.Sim.config ~algo ~params
      ~clocks:(Lowerbound.Layered.beta_clocks layered)
      ~delay:(Lowerbound.Layered.beta_delay_policy layered)
      ~initial_edges:edges ()
  in
  let sim = Gcs.Sim.create cfg in
  Gcs.Sim.add_edge_at sim ~at:t_add 0 (n - 1);
  let engine = Gcs.Sim.engine sim in
  let old_violations = ref 0 in
  let old_samples = ref 0 in
  let new_safe_at = ref None in
  let rec probe t =
    if t <= horizon then
      Dsim.Engine.at engine ~time:t (fun () ->
          List.iter
            (fun (u, v) ->
              let skew =
                Float.abs (Gcs.Sim.logical_clock sim u -. Gcs.Sim.logical_clock sim v)
              in
              if (u, v) = (0, n - 1) then begin
                if safe skew && !new_safe_at = None then new_safe_at := Some (t -. t_add);
                if not (safe skew) then new_safe_at := None
              end
              else begin
                incr old_samples;
                if not (safe skew) then incr old_violations
              end)
            (Dsim.Dyngraph.edges (Dsim.Engine.graph engine));
          probe (t +. 0.5))
  in
  probe t_add;
  Gcs.Sim.run_until sim horizon;
  (slot_length, t_add, !old_violations, !old_samples, !new_safe_at)

let () =
  Format.printf "TDMA slot coordination over a %d-node path + shortcut@.@." n;
  List.iter
    (fun algo ->
      let slot_length, t_add, bad, total, new_safe = run algo in
      Format.printf
        "%-14s slots of %.1f; after the shortcut (t=%.0f):@.\
        \               old-link slot violations %d / %d samples; shortcut slot-safe %s@."
        (Gcs.Sim.algo_to_string algo)
        slot_length t_add bad total
        (match new_safe with
        | Some t -> Printf.sprintf "after %.1f time units" t
        | None -> "never")
      )
    [ Gcs.Sim.Gradient; Gcs.Sim.Max_only ];
  Format.printf
    "@.Sizing slots from the gradient algorithm's stable bound keeps every@.\
     established link collision-free through the topology change; the@.\
     max-only baseline yanks one side of every old link forward at once,@.\
     colliding on links the schedule was entitled to trust.@."
