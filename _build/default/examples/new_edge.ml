(* The Section 1 story, end to end: a new edge closes a long path and its
   Theta(n) skew is absorbed at the rate the theory predicts.

   Run with: dune exec examples/new_edge.exe

   Output: a skew-vs-age series for the new edge next to the paper's
   envelope s(n, age) (Corollary 6.13), plus the worst skew any OLD edge
   suffered while the network reconverged (Theorem 6.12's promise). *)

let n = 48

let () =
  let params = Gcs.Params.make ~b0:13.2 ~n () in
  let edges = Topology.Static.path n in
  let layered =
    Lowerbound.Layered.prepare ~n ~edges ~mask:Lowerbound.Mask.empty ~source:0
      ~rho:params.Gcs.Params.rho ~delay_bound:params.Gcs.Params.delay_bound
  in
  let t_add = Lowerbound.Layered.min_time layered (n - 1) +. 10. in
  let horizon = t_add +. 250. in
  let old_edges = List.init (n - 1) (fun i -> (i, i + 1)) in
  let cfg =
    Gcs.Sim.config ~params
      ~clocks:(Lowerbound.Layered.beta_clocks layered)
      ~delay:(Lowerbound.Layered.beta_delay_policy layered)
      ~initial_edges:edges ()
  in
  let sim = Gcs.Sim.create cfg in
  let recorder =
    Gcs.Metrics.attach (Gcs.Sim.engine sim) (Gcs.Sim.view sim) ~every:0.5
      ~until:horizon
      ~watch:((0, n - 1) :: old_edges)
      ()
  in
  Gcs.Sim.add_edge_at sim ~at:t_add 0 (n - 1);
  Gcs.Sim.run_until sim horizon;

  let aged =
    List.map
      (fun (t, s) -> (t -. t_add, s))
      (Analysis.Series.after t_add (Gcs.Metrics.pair_trace recorder (0, n - 1)))
  in
  Format.printf
    "new edge {0,%d} appears at t=%.0f carrying the adversary's skew@.@." (n - 1) t_add;
  Format.printf "%8s  %14s  %18s@." "edge age" "measured skew" "envelope s(n,age)";
  List.iter
    (fun age ->
      match Analysis.Series.value_at aged age with
      | Some skew ->
        Format.printf "%8.1f  %14.3f  %18.3f@." age skew
          (Gcs.Params.dynamic_local_skew params age)
      | None -> ())
    [ 0.; 1.; 2.; 4.; 8.; 16.; 32.; 64.; 128.; 250. ];

  let old_peak =
    List.fold_left
      (fun acc e ->
        Float.max acc
          (Analysis.Series.max_value
             (Analysis.Series.after t_add (Gcs.Metrics.pair_trace recorder e))))
      0. old_edges
  in
  Format.printf "@.worst old-edge skew during reconvergence: %.3f (stable bound %.3f)@."
    old_peak
    (Gcs.Params.stable_local_skew params);
  match
    Analysis.Series.first_below (Gcs.Params.stable_local_skew params) aged
  with
  | Some t -> Format.printf "new edge within the stable bound after %.1f time units@." t
  | None -> Format.printf "new edge still above the stable bound at the horizon@."
