examples/figure1.ml: Analysis Array Float Format Gcs List Lowerbound Option Printf Topology
