examples/new_edge.mli:
