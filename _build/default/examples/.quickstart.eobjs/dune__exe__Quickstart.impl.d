examples/quickstart.ml: Dsim Format Gcs Topology
