examples/quickstart.mli:
