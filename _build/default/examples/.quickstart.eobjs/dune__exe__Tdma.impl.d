examples/tdma.ml: Dsim Float Format Gcs List Lowerbound Printf Topology
