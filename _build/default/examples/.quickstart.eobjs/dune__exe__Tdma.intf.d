examples/tdma.mli:
