examples/new_edge.ml: Analysis Float Format Gcs List Lowerbound Topology
