examples/backbone.mli:
