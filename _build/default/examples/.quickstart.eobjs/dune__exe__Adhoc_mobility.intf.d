examples/adhoc_mobility.mli:
