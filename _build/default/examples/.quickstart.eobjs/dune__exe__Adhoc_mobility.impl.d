examples/adhoc_mobility.ml: Dsim Float Format Gcs List Topology
