examples/backbone.ml: Analysis Dsim Format Gcs List
