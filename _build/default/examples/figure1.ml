(* Figure 1 of the paper, reproduced as a live execution.

   Run with: dune exec examples/figure1.exe

   The two-chain network of Theorem 4.1: w0 and wn joined by chain A
   (with the blocked edges E_block constrained to maximal delay) and
   chain B. The Masking-Lemma adversary runs the real algorithm through
   the indistinguishable executions alpha and beta; in beta the designated
   chain-A nodes u and v end up with Theta(n) skew (Fig. 1a). At T1 the
   adversary inserts the Lemma 4.3 edges along chain B, each carrying
   initial skew ~I (Fig. 1b), and the decay of the worst new edge's skew
   is plotted (Fig. 1c). *)

let () =
  let n = 48 in
  let k = 2 in
  let net = Lowerbound.Twochain.build ~n ~k in
  let params = Gcs.Params.make ~b0:13.2 ~n () in
  let delay_bound = params.Gcs.Params.delay_bound in
  let mask = Lowerbound.Twochain.mask net ~delay:delay_bound in
  let layered =
    Lowerbound.Layered.prepare ~n ~edges:net.Lowerbound.Twochain.edges ~mask
      ~source:(Lowerbound.Twochain.w0 net)
      ~rho:params.Gcs.Params.rho ~delay_bound
  in
  let u = net.Lowerbound.Twochain.u and v = net.Lowerbound.Twochain.v in
  let dist = Lowerbound.Layered.layer layered v - Lowerbound.Layered.layer layered u in
  Format.printf
    "two-chain network: n=%d, k=%d, |A|=%d, |B|=%d, dist_M(u,v)=%d@."
    n k net.Lowerbound.Twochain.a_len net.Lowerbound.Twochain.b_len dist;
  Format.printf "E_block: %d edges constrained to delay T=%g@.@."
    (List.length net.Lowerbound.Twochain.block)
    delay_bound;

  let t1 = Lowerbound.Layered.min_time layered v +. 10. in
  (* Probe run to T1 to read the B-chain clocks for Lemma 4.3. *)
  let run_beta ~horizon ~churn ~watch =
    let cfg =
      Gcs.Sim.config ~params
        ~clocks:(Lowerbound.Layered.beta_clocks layered)
        ~delay:(Lowerbound.Layered.beta_delay_policy layered)
        ~initial_edges:net.Lowerbound.Twochain.edges ()
    in
    let sim = Gcs.Sim.create cfg in
    let recorder =
      Gcs.Metrics.attach (Gcs.Sim.engine sim) (Gcs.Sim.view sim) ~every:1.
        ~until:horizon ~watch ()
    in
    Topology.Churn.schedule (Gcs.Sim.engine sim) churn;
    Gcs.Sim.run_until sim horizon;
    (sim, recorder)
  in
  let probe, _ = run_beta ~horizon:t1 ~churn:[] ~watch:[] in
  let skew_uv = Gcs.Metrics.edge_skew (Gcs.Sim.view probe) u v in
  Format.printf "Fig 1(a): at T1=%.0f, skew(u,v) in beta = %.1f (>= T*d/4 = %.1f)@.@."
    t1 skew_uv
    (Lowerbound.Layered.guaranteed_skew layered v);

  let b_ids = Array.of_list (Lowerbound.Twochain.b_chain net) in
  let b_clocks = Array.map (Gcs.Sim.logical_clock probe) b_ids in
  let d =
    0.5
    +. List.fold_left Float.max 0.
         (List.init (Array.length b_clocks - 1) (fun i ->
              Float.abs (b_clocks.(i) -. b_clocks.(i + 1))))
  in
  let span = b_clocks.(Array.length b_clocks - 1) -. b_clocks.(0) in
  let i_target = Float.max (2. *. d) (span /. 2.) in
  let selected = Lowerbound.Subseq.extract ~values:b_clocks ~c:i_target ~d in
  let new_edges =
    let rec pairs = function
      | a :: (b :: _ as rest) -> (b_ids.(a), b_ids.(b)) :: pairs rest
      | _ -> []
    in
    pairs selected
  in
  Format.printf "Fig 1(b): Lemma 4.3 selects %d new B-chain edges, target I=%.1f:@."
    (List.length new_edges) i_target;
  List.iter (fun (x, y) -> Format.printf "  {%d, %d}@." x y) new_edges;

  let churn =
    List.concat_map
      (fun (x, y) -> Topology.Churn.single_new_edge ~at:t1 x y)
      new_edges
  in
  let horizon = t1 +. 120. in
  let _, recorder = run_beta ~horizon ~churn ~watch:new_edges in
  Format.printf "@.Fig 1(c): worst new-edge skew vs time since T1:@.";
  let worst_edge =
    List.fold_left
      (fun (best_e, best_s) e ->
        let s =
          Analysis.Series.value_at (Gcs.Metrics.pair_trace recorder e) (t1 +. 1.)
          |> Option.value ~default:0.
        in
        if s > best_s then (e, s) else (best_e, best_s))
      (List.hd new_edges, 0.)
      new_edges
    |> fst
  in
  let trace =
    List.map
      (fun (t, s) -> (t -. t1, s))
      (Analysis.Series.after t1 (Gcs.Metrics.pair_trace recorder worst_edge))
  in
  print_string
    (Analysis.Plot.render ~width:64 ~height:12
       [ (Printf.sprintf "skew on {%d,%d}" (fst worst_edge) (snd worst_edge), trace) ]);
  Format.printf "@.(the skew cannot be absorbed faster than Omega(n/B0): Theorem 4.1)@."
