module Mask = Lowerbound.Mask
module Static = Topology.Static

let case name f = Alcotest.test_case name `Quick f

let test_lookup () =
  let m = Mask.create [ ((2, 1), 0.5); ((3, 4), 1.0) ] in
  Alcotest.(check (option (float 1e-9))) "normalized lookup" (Some 0.5) (Mask.delay m 1 2);
  Alcotest.(check (option (float 1e-9))) "reverse order" (Some 0.5) (Mask.delay m 2 1);
  Alcotest.(check (option (float 1e-9))) "absent" None (Mask.delay m 0 1);
  Alcotest.(check bool) "constrained" true (Mask.is_constrained m 3 4);
  Alcotest.(check int) "edge list" 2 (List.length (Mask.constrained_edges m))

let test_negative_delay_rejected () =
  Alcotest.check_raises "negative" (Invalid_argument "Mask.create: negative delay")
    (fun () -> ignore (Mask.create [ ((0, 1), -0.1) ]))

let test_empty_mask_distance_is_hops () =
  let edges = Static.path 6 in
  let d = Mask.flexible_distances Mask.empty ~n:6 ~edges 0 in
  Alcotest.(check (array int)) "plain BFS" [| 0; 1; 2; 3; 4; 5 |] d

let test_constrained_edges_are_free () =
  (* Path 0-1-2-3-4 with edges (1,2) and (2,3) constrained: dist(0,4) =
     2 unconstrained hops. *)
  let edges = Static.path 5 in
  let m = Mask.create [ ((1, 2), 1.); ((2, 3), 1.) ] in
  Alcotest.(check int) "skips constrained" 2 (Mask.flexible_distance m ~n:5 ~edges 0 4);
  Alcotest.(check int) "within the block" 0 (Mask.flexible_distance m ~n:5 ~edges 1 3)

let test_chooses_cheapest_path () =
  (* Triangle 0-1, 1-2, 0-2 with (0,2) constrained: dist(0,2) = 0 via the
     constrained edge even though the 2-hop path exists. *)
  let edges = [ (0, 1); (1, 2); (0, 2) ] in
  let m = Mask.create [ ((0, 2), 1.) ] in
  Alcotest.(check int) "free edge wins" 0 (Mask.flexible_distance m ~n:3 ~edges 0 2);
  Alcotest.(check int) "one unconstrained hop" 1 (Mask.flexible_distance m ~n:3 ~edges 0 1)

let test_unreachable () =
  let d = Mask.flexible_distances Mask.empty ~n:3 ~edges:[ (0, 1) ] 0 in
  Alcotest.(check int) "isolated node" max_int d.(2)

(* Property: 0-1 BFS flexible distance equals a brute-force Bellman-Ford
   with weights 0/1 on random graphs. *)
let prop_matches_bellman_ford =
  QCheck.Test.make ~name:"0-1 BFS matches Bellman-Ford" ~count:100
    QCheck.(pair (int_range 3 12) (int_range 0 100))
    (fun (n, seed) ->
      let prng = Dsim.Prng.of_int seed in
      let edges = Static.erdos_renyi prng ~n ~p:0.4 in
      let constrained =
        List.filter (fun _ -> Dsim.Prng.bool prng) edges
        |> List.map (fun e -> (e, 0.5))
      in
      let m = Mask.create constrained in
      let weight u v = if Mask.is_constrained m u v then 0 else 1 in
      (* Bellman-Ford from node 0. *)
      let dist = Array.make n max_int in
      dist.(0) <- 0;
      for _ = 1 to n do
        List.iter
          (fun (u, v) ->
            let w = weight u v in
            if dist.(u) < max_int && dist.(u) + w < dist.(v) then dist.(v) <- dist.(u) + w;
            if dist.(v) < max_int && dist.(v) + w < dist.(u) then dist.(u) <- dist.(v) + w)
          edges
      done;
      let bfs = Mask.flexible_distances m ~n ~edges 0 in
      bfs = dist)

let suite =
  [
    case "lookup" test_lookup;
    case "negative delay rejected" test_negative_delay_rejected;
    case "empty mask = hop distance" test_empty_mask_distance_is_hops;
    case "constrained edges cost zero" test_constrained_edges_are_free;
    case "cheapest path" test_chooses_cheapest_path;
    case "unreachable" test_unreachable;
    QCheck_alcotest.to_alcotest prop_matches_bellman_ford;
  ]
