module Layered = Lowerbound.Layered
module Mask = Lowerbound.Mask
module Static = Topology.Static
module Hwclock = Dsim.Hwclock

let case name f = Alcotest.test_case name `Quick f

let feq = Alcotest.float 1e-9

let rho = 0.05

let delay_bound = 1.0

let path_layered n =
  Layered.prepare ~n ~edges:(Static.path n) ~mask:Mask.empty ~source:0 ~rho ~delay_bound

let test_layers_on_path () =
  let l = path_layered 5 in
  Alcotest.(check (list int)) "layers = hop distance" [ 0; 1; 2; 3; 4 ]
    (List.init 5 (Layered.layer l));
  Alcotest.(check int) "depth" 4 (Layered.depth l)

let test_layers_with_mask () =
  (* Path 0-1-2-3 with (0,1) constrained: layers 0,0,1,2. *)
  let mask = Mask.create [ ((0, 1), 1.) ] in
  let l = Layered.prepare ~n:4 ~edges:(Static.path 4) ~mask ~source:0 ~rho ~delay_bound in
  Alcotest.(check (list int)) "constrained edge is layer-free" [ 0; 0; 1; 2 ]
    (List.init 4 (Layered.layer l))

let test_alpha_clocks_perfect () =
  let l = path_layered 4 in
  Array.iter
    (fun c -> Alcotest.check feq "rate 1" 1. (Hwclock.rate_at c 10.))
    (Layered.alpha_clocks l)

let test_beta_clock_formula () =
  (* H_x(t) = t + min(rho t, T dist). *)
  let l = path_layered 5 in
  let clocks = Layered.beta_clocks l in
  List.iter
    (fun x ->
      List.iter
        (fun t ->
          let expect =
            t +. Float.min (rho *. t) (delay_bound *. float_of_int (Layered.layer l x))
          in
          Alcotest.check feq
            (Printf.sprintf "H_%d(%g)" x t)
            expect
            (Hwclock.value clocks.(x) t))
        [ 0.; 5.; 19.; 21.; 60.; 79.; 81.; 200. ])
    [ 0; 1; 2; 3; 4 ]

let test_alpha_delays () =
  let l = path_layered 4 in
  let policy = Layered.alpha_delay_policy l in
  let draw ~src ~dst = policy.Dsim.Delay.draw ~src ~dst ~now:3. in
  Alcotest.check feq "uphill full delay" delay_bound (draw ~src:1 ~dst:2);
  Alcotest.check feq "downhill zero" 0. (draw ~src:2 ~dst:1)

let test_alpha_delay_respects_mask () =
  let mask = Mask.create [ ((1, 2), 0.4) ] in
  let l = Layered.prepare ~n:4 ~edges:(Static.path 4) ~mask ~source:0 ~rho ~delay_bound in
  let policy = Layered.alpha_delay_policy l in
  Alcotest.check feq "masked delay both ways" 0.4
    (policy.Dsim.Delay.draw ~src:1 ~dst:2 ~now:0.);
  Alcotest.check feq "masked delay reverse" 0.4
    (policy.Dsim.Delay.draw ~src:2 ~dst:1 ~now:0.)

let test_min_time_and_guarantee () =
  let l = path_layered 9 in
  Alcotest.check feq "min time = T d (1 + 1/rho)" (8. *. 21.) (Layered.min_time l 8);
  Alcotest.check feq "guaranteed skew = T d / 4" 2. (Layered.guaranteed_skew l 8)

(* The heart of Lemma 4.2's Part II: every beta delay is legal, i.e. lies
   in [0, T], and on masked edges within [P/(1+rho), P]. *)
let prop_beta_delays_legal =
  QCheck.Test.make ~name:"beta delays lie in [0, T]" ~count:200
    QCheck.(pair (int_range 3 12) (float_bound_inclusive 500.))
    (fun (n, now) ->
      let l =
        Layered.prepare ~n ~edges:(Static.path n) ~mask:Mask.empty ~source:0 ~rho
          ~delay_bound
      in
      let policy = Layered.beta_delay_policy l in
      List.for_all
        (fun src ->
          List.for_all
            (fun dst ->
              if abs (src - dst) <> 1 then true
              else
                let d = policy.Dsim.Delay.draw ~src ~dst ~now in
                d >= -1e-9 && d <= delay_bound +. 1e-9)
            (List.init n Fun.id))
        (List.init n Fun.id))

let prop_beta_masked_delays =
  QCheck.Test.make ~name:"beta delays on masked edges in [P/(1+rho), P]" ~count:200
    QCheck.(float_bound_inclusive 300.)
    (fun now ->
      let mask = Mask.create [ ((1, 2), 0.8) ] in
      let l =
        Layered.prepare ~n:5 ~edges:(Static.path 5) ~mask ~source:0 ~rho ~delay_bound
      in
      let policy = Layered.beta_delay_policy l in
      let d12 = policy.Dsim.Delay.draw ~src:1 ~dst:2 ~now in
      let d21 = policy.Dsim.Delay.draw ~src:2 ~dst:1 ~now in
      let lo = 0.8 /. (1. +. rho) -. 1e-9 and hi = 0.8 +. 1e-9 in
      d12 >= lo && d12 <= hi && d21 >= lo && d21 <= hi)

let test_indistinguishability_end_to_end () =
  (* Run the actual algorithm in alpha and beta; node 0 (layer 0) must end
     with identical logical clocks in both executions at any time after
     both provide the same hardware history (H_0 identical in alpha and
     beta). *)
  let n = 6 in
  let l = path_layered n in
  let params = Gcs.Params.make ~n () in
  let run clocks delay =
    let cfg =
      Gcs.Sim.config ~params ~clocks ~delay ~discovery_lag:0.
        ~initial_edges:(Static.path n) ()
    in
    let sim = Gcs.Sim.create cfg in
    Gcs.Sim.run_until sim 150.;
    sim
  in
  let a = run (Layered.alpha_clocks l) (Layered.alpha_delay_policy l) in
  let b = run (Layered.beta_clocks l) (Layered.beta_delay_policy l) in
  (* H_0 is rate-1 in both; at real time 150 both are past node 0's
     switch, so L_0 must agree exactly. *)
  Alcotest.(check (float 1e-6)) "source logical clocks agree"
    (Gcs.Sim.logical_clock a 0) (Gcs.Sim.logical_clock b 0);
  (* Deep nodes in beta lead by exactly T * dist once converged. *)
  let lead =
    Gcs.Sim.logical_clock b (n - 1) -. Gcs.Sim.logical_clock a (n - 1)
  in
  Alcotest.(check (float 1e-6)) "deep node leads by T*dist"
    (delay_bound *. float_of_int (n - 1))
    lead

let test_masked_delay_above_bound_rejected () =
  let mask = Mask.create [ ((0, 1), 2.) ] in
  match
    Layered.prepare ~n:3 ~edges:(Static.path 3) ~mask ~source:0 ~rho ~delay_bound:1.
  with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "mask delay above T accepted"

let test_disconnected_rejected () =
  match
    Layered.prepare ~n:3 ~edges:[ (0, 1) ] ~mask:Mask.empty ~source:0 ~rho ~delay_bound
  with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "disconnected network accepted"

let suite =
  [
    case "layers on a path" test_layers_on_path;
    case "layers with mask" test_layers_with_mask;
    case "alpha clocks perfect" test_alpha_clocks_perfect;
    case "beta clock formula (eq. 1)" test_beta_clock_formula;
    case "alpha delays directional" test_alpha_delays;
    case "alpha delays respect mask" test_alpha_delay_respects_mask;
    case "min time and guaranteed skew" test_min_time_and_guarantee;
    QCheck_alcotest.to_alcotest prop_beta_delays_legal;
    QCheck_alcotest.to_alcotest prop_beta_masked_delays;
    case "indistinguishability end-to-end" test_indistinguishability_end_to_end;
    case "masked delay above bound rejected" test_masked_delay_above_bound_rejected;
    case "disconnected network rejected" test_disconnected_rejected;
  ]
