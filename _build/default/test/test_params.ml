module Params = Gcs.Params

let case name f = Alcotest.test_case name `Quick f

let feq = Alcotest.float 1e-9

(* A hand-checkable parameter point: rho = 0.1, T = 2, D = 5, dH = 1,
   B0 = 60. *)
let p = Params.make ~rho:0.1 ~delay_bound:2. ~discovery_bound:5. ~delta_h:1. ~b0:60. ~n:11 ()

let test_delta_t () =
  (* dT = T + dH/(1-rho) = 2 + 1/0.9 *)
  Alcotest.check feq "dT" (2. +. (1. /. 0.9)) (Params.delta_t p);
  Alcotest.check feq "dT'" (1.1 *. (2. +. (1. /. 0.9))) (Params.delta_t' p)

let test_tau () =
  (* tau = (1+rho)/(1-rho) dT + T + D *)
  let dt = 2. +. (1. /. 0.9) in
  Alcotest.check feq "tau" ((1.1 /. 0.9 *. dt) +. 2. +. 5.) (Params.tau p)

let test_global_skew_bound () =
  (* G(n) = ((1+rho) T + 2 rho D)(n-1) = (2.2 + 1.0) * 10 *)
  Alcotest.check feq "G" 32. (Params.global_skew_bound p)

let test_w () =
  let expected = ((4. *. 32. /. 60.) +. 1.) *. Params.tau p in
  Alcotest.check feq "W" expected (Params.w p)

let test_b_at_zero () =
  (* B(0) = 5G + (1+rho) tau + B0 *)
  let expected = (5. *. 32.) +. (1.1 *. Params.tau p) +. 60. in
  Alcotest.check feq "B(0)" expected (Params.b p 0.)

let test_b_floor () =
  Alcotest.check feq "B(huge) = B0" 60. (Params.b p 1e9);
  Alcotest.check feq "B at stabilization = B0" 60.
    (Params.b p (Params.stabilize_subjective p))

let test_b_slope () =
  (* The decay loses exactly B0 per (1+rho) tau of subjective time. *)
  let unit = 1.1 *. Params.tau p in
  Alcotest.check feq "loses B0 per (1+rho)tau" 60. (Params.b p 0. -. Params.b p unit)

let test_dynamic_local_skew_limits () =
  (* Fresh edges get a bound above the global skew; old edges converge to
     B0 + 2 rho W. *)
  Alcotest.(check bool) "fresh bound exceeds G" true
    (Params.dynamic_local_skew p 0. > Params.global_skew_bound p);
  Alcotest.check feq "stable limit" (Params.stable_local_skew p)
    (Params.dynamic_local_skew p 1e12);
  Alcotest.check feq "stable = B0 + 2 rho W" (60. +. (0.2 *. Params.w p))
    (Params.stable_local_skew p)

let test_dynamic_local_skew_clamps_young_edges () =
  (* Before dT + D + W of real age, the envelope sits at its maximum. *)
  let young = Params.delta_t p +. p.Params.discovery_bound +. Params.w p in
  Alcotest.check feq "clamped at B(0)+2rhoW" (Params.dynamic_local_skew p 0.)
    (Params.dynamic_local_skew p (0.9 *. young))

let test_stabilize_real_exceeds_subjective () =
  Alcotest.(check bool) "real > subjective" true
    (Params.stabilize_real p > Params.stabilize_subjective p)

let test_defaults_valid () =
  let d = Params.make ~n:16 () in
  Alcotest.(check bool) "validate" true (Params.validate d = Ok ());
  Alcotest.(check bool) "b0 above floor" true (d.Params.b0 > Params.min_b0 d)

let expect_invalid name build =
  case name (fun () ->
      match build () with
      | exception Invalid_argument _ -> ()
      | _p -> Alcotest.failf "%s: expected rejection" name)

let test_min_b0_enforced () =
  let base = Params.make ~n:8 () in
  match Params.make ~b0:(Params.min_b0 base) ~n:8 () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "b0 = min_b0 must be rejected (strict inequality)"

let prop_b_non_increasing =
  QCheck.Test.make ~name:"B is non-increasing" ~count:300
    QCheck.(pair (float_bound_inclusive 500.) (float_bound_inclusive 500.))
    (fun (a, b) ->
      let lo = Float.min a b and hi = Float.max a b in
      Params.b p lo >= Params.b p hi -. 1e-9)

let prop_b_at_least_b0 =
  QCheck.Test.make ~name:"B >= B0 everywhere" ~count:300
    QCheck.(float_bound_inclusive 1e6)
    (fun dt -> Params.b p dt >= p.Params.b0 -. 1e-9)

let prop_skew_function_axioms =
  (* Definition 3.3: s(n, I, t) non-increasing in t with a finite limit
     independent of I — our s is independent of I by construction, so check
     monotonicity and the limit. *)
  QCheck.Test.make ~name:"dynamic_local_skew is a skew function" ~count:300
    QCheck.(pair (float_bound_inclusive 2000.) (float_bound_inclusive 2000.))
    (fun (a, b) ->
      let lo = Float.min a b and hi = Float.max a b in
      Params.dynamic_local_skew p lo >= Params.dynamic_local_skew p hi -. 1e-9
      && Params.dynamic_local_skew p 1e12 >= Params.stable_local_skew p -. 1e-9)

let suite =
  [
    case "delta_t / delta_t'" test_delta_t;
    case "tau" test_tau;
    case "global skew bound" test_global_skew_bound;
    case "W" test_w;
    case "B(0) intercept" test_b_at_zero;
    case "B floor at B0" test_b_floor;
    case "B slope" test_b_slope;
    case "dynamic local skew limits" test_dynamic_local_skew_limits;
    case "envelope clamps for young edges" test_dynamic_local_skew_clamps_young_edges;
    case "stabilize real vs subjective" test_stabilize_real_exceeds_subjective;
    case "defaults valid" test_defaults_valid;
    expect_invalid "rho = 0 rejected" (fun () -> Params.make ~rho:0. ~n:4 ());
    expect_invalid "rho > 1/2 rejected" (fun () -> Params.make ~rho:0.6 ~n:4 ());
    expect_invalid "n = 1 rejected" (fun () -> Params.make ~n:1 ());
    expect_invalid "D <= T rejected" (fun () ->
        Params.make ~delay_bound:2. ~discovery_bound:1.9 ~n:4 ());
    expect_invalid "D <= dH/(1-rho) rejected" (fun () ->
        Params.make ~delta_h:10. ~discovery_bound:5. ~n:4 ());
    case "minimum B0 enforced strictly" test_min_b0_enforced;
    QCheck_alcotest.to_alcotest prop_b_non_increasing;
    QCheck_alcotest.to_alcotest prop_b_at_least_b0;
    QCheck_alcotest.to_alcotest prop_skew_function_axioms;
  ]
