module Series = Analysis.Series

let case name f = Alcotest.test_case name `Quick f

let feq = Alcotest.float 1e-9

let s = [ (0., 5.); (1., 4.); (2., 6.); (3., 2.); (4., 1.); (5., 1.) ]

let test_values () =
  Alcotest.(check (list (float 1e-9))) "values" [ 5.; 4.; 6.; 2.; 1.; 1. ]
    (Series.values s)

let test_slicing () =
  Alcotest.(check int) "after 2" 4 (List.length (Series.after 2. s));
  Alcotest.(check int) "between 1 and 3" 3 (List.length (Series.between 1. 3. s))

let test_extrema () =
  Alcotest.check feq "max" 6. (Series.max_value s);
  Alcotest.check feq "min" 1. (Series.min_value s);
  Alcotest.(check bool) "empty max is -inf" true (Series.max_value [] = neg_infinity)

let test_value_at () =
  Alcotest.(check (option (float 1e-9))) "exact" (Some 6.) (Series.value_at s 2.);
  Alcotest.(check (option (float 1e-9))) "between points" (Some 6.) (Series.value_at s 2.7);
  Alcotest.(check (option (float 1e-9))) "before start" None (Series.value_at s (-1.));
  Alcotest.(check (option (float 1e-9))) "past end" (Some 1.) (Series.value_at s 99.)

let test_crossings () =
  Alcotest.(check (option (float 1e-9))) "last above 3" (Some 2.) (Series.last_above 3. s);
  Alcotest.(check (option (float 1e-9))) "last above 10" None (Series.last_above 10. s);
  Alcotest.(check (option (float 1e-9))) "first below 3" (Some 3.) (Series.first_below 3. s);
  Alcotest.(check (option (float 1e-9))) "first below 0" None (Series.first_below 0. s)

let test_settle_time () =
  (* From t=0: last above 3 is at t=2, final sample at 5 -> settled after 2. *)
  Alcotest.(check (option (float 1e-9))) "settles" (Some 2.)
    (Series.settle_time ~threshold:3. ~from:0. s);
  (* Threshold never exceeded after from=3. *)
  Alcotest.(check (option (float 1e-9))) "already settled" (Some 0.)
    (Series.settle_time ~threshold:3. ~from:3. s);
  (* Still above at the last sample -> None. *)
  Alcotest.(check (option (float 1e-9))) "never settles" None
    (Series.settle_time ~threshold:0.5 ~from:0. s);
  Alcotest.(check (option (float 1e-9))) "empty tail" None
    (Series.settle_time ~threshold:3. ~from:10. s)

let test_downsample () =
  let dense = List.init 100 (fun i -> (float_of_int i /. 10., float_of_int i)) in
  let sparse = Series.downsample ~every:1. dense in
  Alcotest.(check int) "one per second" 10 (List.length sparse);
  let times = List.map fst sparse in
  Alcotest.(check bool) "sorted" true (times = List.sort Float.compare times)

let prop_first_below_finds_minimum =
  QCheck.Test.make ~name:"first_below succeeds iff min <= threshold" ~count:300
    QCheck.(pair (list (pair (float_bound_inclusive 10.) (float_bound_inclusive 10.)))
              (float_bound_inclusive 10.))
    (fun (points, threshold) ->
      let s = List.sort (fun (a, _) (b, _) -> Float.compare a b) points in
      let found = Series.first_below threshold s <> None in
      let exists = List.exists (fun (_, v) -> v <= threshold) s in
      found = exists)

let suite =
  [
    case "values" test_values;
    case "slicing" test_slicing;
    case "extrema" test_extrema;
    case "value_at" test_value_at;
    case "threshold crossings" test_crossings;
    case "settle time" test_settle_time;
    case "downsample" test_downsample;
    QCheck_alcotest.to_alcotest prop_first_below_finds_minimum;
  ]
