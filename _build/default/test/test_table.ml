module Table = Analysis.Table

let case name f = Alcotest.test_case name `Quick f

let sample () =
  let t = Table.create ~title:"demo" ~columns:[ "name"; "n"; "value"; "ok" ] in
  Table.add_row t [ Table.Str "alpha"; Table.Int 3; Table.Float 1.5; Table.Bool true ];
  Table.add_row t [ Table.Str "beta"; Table.Int 12; Table.Float 0.25; Table.Bool false ];
  t

let contains haystack needle =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  nl = 0 || go 0

let test_structure () =
  let t = sample () in
  Alcotest.(check string) "title" "demo" (Table.title t);
  Alcotest.(check (list string)) "columns" [ "name"; "n"; "value"; "ok" ] (Table.columns t);
  Alcotest.(check int) "rows" 2 (List.length (Table.rows t))

let test_row_length_checked () =
  let t = sample () in
  match Table.add_row t [ Table.Str "short" ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "short row accepted"

let test_cell_rendering () =
  Alcotest.(check string) "int" "7" (Table.cell_to_string (Table.Int 7));
  Alcotest.(check string) "bool" "yes" (Table.cell_to_string (Table.Bool true));
  Alcotest.(check string) "whole float" "2.0" (Table.cell_to_string (Table.Float 2.));
  Alcotest.(check string) "fraction" "0.25" (Table.cell_to_string (Table.Float 0.25))

let test_get_float () =
  let t = sample () in
  Alcotest.(check (float 1e-9)) "float cell" 1.5 (Table.get_float t ~row:0 ~col:2);
  Alcotest.(check (float 1e-9)) "int coerced" 12. (Table.get_float t ~row:1 ~col:1);
  match Table.get_float t ~row:0 ~col:0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "string cell read as float"

let test_pp () =
  let out = Format.asprintf "%a" Table.pp (sample ()) in
  Alcotest.(check bool) "has title" true (contains out "== demo ==");
  Alcotest.(check bool) "has header" true (contains out "name");
  Alcotest.(check bool) "has data" true (contains out "beta")

let test_csv () =
  let csv = Table.to_csv (sample ()) in
  let lines = String.split_on_char '\n' (String.trim csv) in
  Alcotest.(check int) "header + 2 rows" 3 (List.length lines);
  Alcotest.(check string) "header" "name,n,value,ok" (List.hd lines)

let test_csv_escaping () =
  let t = Table.create ~title:"esc" ~columns:[ "a" ] in
  Table.add_row t [ Table.Str "x,y" ];
  Table.add_row t [ Table.Str "quote\"inside" ];
  let csv = Table.to_csv t in
  Alcotest.(check bool) "comma quoted" true (contains csv "\"x,y\"");
  Alcotest.(check bool) "quote doubled" true (contains csv "\"quote\"\"inside\"")

let suite =
  [
    case "structure" test_structure;
    case "row length" test_row_length_checked;
    case "cell rendering" test_cell_rendering;
    case "get_float" test_get_float;
    case "pretty printing" test_pp;
    case "csv" test_csv;
    case "csv escaping" test_csv_escaping;
  ]
