module Trace = Dsim.Trace

let case name f = Alcotest.test_case name `Quick f

let contains haystack needle =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  nl = 0 || go 0

let test_counters () =
  let t = Trace.create () in
  Trace.record t ~time:0. Trace.Send "a";
  Trace.record t ~time:1. Trace.Send "b";
  Trace.record t ~time:2. Trace.Deliver "c";
  Alcotest.(check int) "sends" 2 (Trace.count t Trace.Send);
  Alcotest.(check int) "delivers" 1 (Trace.count t Trace.Deliver);
  Alcotest.(check int) "drops" 0 (Trace.count t Trace.Drop_no_edge);
  Alcotest.(check int) "total" 3 (Trace.total t)

let test_log_disabled_by_default () =
  let t = Trace.create () in
  Trace.record t ~time:0. Trace.Send "a";
  Alcotest.(check int) "no entries retained" 0 (List.length (Trace.entries t))

let test_log_limit () =
  let t = Trace.create ~log_limit:2 () in
  Trace.record t ~time:0. Trace.Send "a";
  Trace.record t ~time:1. Trace.Send "b";
  Trace.record t ~time:2. Trace.Send "c";
  let entries = Trace.entries t in
  Alcotest.(check int) "capped at 2" 2 (List.length entries);
  Alcotest.(check (list string)) "oldest first" [ "a"; "b" ]
    (List.map (fun e -> e.Trace.detail) entries);
  Alcotest.(check int) "counter still 3" 3 (Trace.count t Trace.Send)

let test_kind_names_distinct () =
  let kinds =
    [
      Trace.Send; Trace.Deliver; Trace.Drop_no_edge; Trace.Drop_in_flight;
      Trace.Edge_add; Trace.Edge_remove; Trace.Discover_add; Trace.Discover_remove;
      Trace.Discover_stale; Trace.Timer_fire; Trace.Timer_stale;
    ]
  in
  let names = List.map Trace.kind_to_string kinds in
  Alcotest.(check int) "all distinct" (List.length names)
    (List.length (List.sort_uniq compare names))

let test_summary_prints () =
  let t = Trace.create () in
  Trace.record t ~time:0. Trace.Send "x";
  let s = Format.asprintf "%a" Trace.pp_summary t in
  Alcotest.(check bool) "mentions send" true (contains s "send");
  Alcotest.(check bool) "omits zero counters" false (contains s "deliver")

let suite =
  [
    case "counters" test_counters;
    case "log disabled by default" test_log_disabled_by_default;
    case "log limit" test_log_limit;
    case "kind names distinct" test_kind_names_distinct;
    case "summary printing" test_summary_prints;
  ]
