module Stats = Analysis.Stats

let case name f = Alcotest.test_case name `Quick f

let feq = Alcotest.float 1e-9

let test_mean_stddev () =
  Alcotest.check feq "mean" 2. (Stats.mean [ 1.; 2.; 3. ]);
  Alcotest.check feq "stddev" (sqrt (2. /. 3.)) (Stats.stddev [ 1.; 2.; 3. ]);
  Alcotest.check feq "constant stddev" 0. (Stats.stddev [ 5.; 5.; 5. ])

let test_minmax () =
  Alcotest.check feq "min" (-2.) (Stats.minimum [ 3.; -2.; 7. ]);
  Alcotest.check feq "max" 7. (Stats.maximum [ 3.; -2.; 7. ])

let test_percentile () =
  let xs = [ 1.; 2.; 3.; 4.; 5. ] in
  Alcotest.check feq "median" 3. (Stats.percentile 0.5 xs);
  Alcotest.check feq "p0" 1. (Stats.percentile 0. xs);
  Alcotest.check feq "p100" 5. (Stats.percentile 1. xs);
  Alcotest.check feq "interpolated p25" 2. (Stats.percentile 0.25 xs);
  Alcotest.check feq "interpolated p10" 1.4 (Stats.percentile 0.1 xs);
  Alcotest.check feq "singleton" 9. (Stats.percentile 0.7 [ 9. ])

let test_summary () =
  let s = Stats.summarize [ 4.; 1.; 3.; 2. ] in
  Alcotest.(check int) "count" 4 s.Stats.count;
  Alcotest.check feq "mean" 2.5 s.Stats.mean;
  Alcotest.check feq "median" 2.5 s.Stats.median;
  Alcotest.check feq "min" 1. s.Stats.min;
  Alcotest.check feq "max" 4. s.Stats.max

let test_linear_fit () =
  let slope, intercept = Stats.linear_fit [ (0., 1.); (1., 3.); (2., 5.) ] in
  Alcotest.check feq "slope" 2. slope;
  Alcotest.check feq "intercept" 1. intercept

let test_correlation () =
  Alcotest.check feq "perfect positive" 1.
    (Stats.correlation [ (0., 0.); (1., 2.); (2., 4.) ]);
  Alcotest.check feq "perfect negative" (-1.)
    (Stats.correlation [ (0., 4.); (1., 2.); (2., 0.) ]);
  Alcotest.check feq "constant y" 0. (Stats.correlation [ (0., 1.); (1., 1.) ])

let test_empty_rejected () =
  List.iter
    (fun (name, f) ->
      match f () with
      | exception Invalid_argument _ -> ()
      | _ -> Alcotest.failf "%s accepted empty input" name)
    [
      ("mean", fun () -> ignore (Stats.mean []));
      ("stddev", fun () -> ignore (Stats.stddev []));
      ("percentile", fun () -> ignore (Stats.percentile 0.5 []));
      ("summarize", fun () -> ignore (Stats.summarize []));
      ("fit", fun () -> ignore (Stats.linear_fit [ (1., 1.) ]));
    ]

let prop_percentile_within_range =
  QCheck.Test.make ~name:"percentile lies within [min, max]" ~count:300
    QCheck.(pair (list_of_size (QCheck.Gen.int_range 1 50) (float_bound_inclusive 100.))
              (float_bound_inclusive 1.))
    (fun (xs, q) ->
      QCheck.assume (xs <> []);
      let v = Stats.percentile q xs in
      v >= Stats.minimum xs -. 1e-9 && v <= Stats.maximum xs +. 1e-9)

let prop_fit_recovers_line =
  QCheck.Test.make ~name:"linear_fit recovers exact lines" ~count:200
    QCheck.(pair (float_bound_inclusive 10.) (float_bound_inclusive 10.))
    (fun (a, b) ->
      let points = List.init 5 (fun i -> (float_of_int i, (a *. float_of_int i) +. b)) in
      let slope, intercept = Stats.linear_fit points in
      Float.abs (slope -. a) < 1e-6 && Float.abs (intercept -. b) < 1e-6)

let suite =
  [
    case "mean/stddev" test_mean_stddev;
    case "min/max" test_minmax;
    case "percentile" test_percentile;
    case "summary" test_summary;
    case "linear fit" test_linear_fit;
    case "correlation" test_correlation;
    case "empty inputs rejected" test_empty_rejected;
    QCheck_alcotest.to_alcotest prop_percentile_within_range;
    QCheck_alcotest.to_alcotest prop_fit_recovers_line;
  ]
