module Pqueue = Dsim.Pqueue

let case name f = Alcotest.test_case name `Quick f

let drain q =
  let rec go acc =
    match Pqueue.pop q with Some (t, v) -> go ((t, v) :: acc) | None -> List.rev acc
  in
  go []

let test_empty () =
  let q = Pqueue.create () in
  Alcotest.(check bool) "is_empty" true (Pqueue.is_empty q);
  Alcotest.(check int) "size 0" 0 (Pqueue.size q);
  Alcotest.(check bool) "pop None" true (Pqueue.pop q = None);
  Alcotest.(check bool) "peek None" true (Pqueue.peek_time q = None)

let test_ordering () =
  let q = Pqueue.create () in
  List.iter (fun t -> Pqueue.push q ~time:t (int_of_float t)) [ 3.; 1.; 2.; 0.5; 10. ];
  let times = List.map fst (drain q) in
  Alcotest.(check (list (float 1e-9))) "sorted" [ 0.5; 1.; 2.; 3.; 10. ] times

let test_fifo_at_equal_times () =
  let q = Pqueue.create () in
  List.iteri (fun i () -> Pqueue.push q ~time:5. i) [ (); (); (); (); () ];
  let vals = List.map snd (drain q) in
  Alcotest.(check (list int)) "insertion order preserved" [ 0; 1; 2; 3; 4 ] vals

let test_interleaved_push_pop () =
  let q = Pqueue.create () in
  Pqueue.push q ~time:2. "b";
  Pqueue.push q ~time:1. "a";
  Alcotest.(check bool) "pop a" true (Pqueue.pop q = Some (1., "a"));
  Pqueue.push q ~time:0.5 "c";
  Alcotest.(check bool) "pop c" true (Pqueue.pop q = Some (0.5, "c"));
  Alcotest.(check bool) "pop b" true (Pqueue.pop q = Some (2., "b"));
  Alcotest.(check bool) "empty" true (Pqueue.is_empty q)

let test_peek_does_not_remove () =
  let q = Pqueue.create () in
  Pqueue.push q ~time:7. ();
  Alcotest.(check (option (float 0.))) "peek" (Some 7.) (Pqueue.peek_time q);
  Alcotest.(check int) "size still 1" 1 (Pqueue.size q)

let test_grow () =
  let q = Pqueue.create () in
  for i = 999 downto 0 do
    Pqueue.push q ~time:(float_of_int i) i
  done;
  Alcotest.(check int) "size" 1000 (Pqueue.size q);
  let out = List.map snd (drain q) in
  Alcotest.(check (list int)) "sorted output" (List.init 1000 Fun.id) out

let test_clear () =
  let q = Pqueue.create () in
  Pqueue.push q ~time:1. ();
  Pqueue.clear q;
  Alcotest.(check bool) "empty after clear" true (Pqueue.is_empty q)

let test_rejects_non_finite () =
  let q = Pqueue.create () in
  Alcotest.check_raises "nan" (Invalid_argument "Pqueue.push: non-finite time")
    (fun () -> Pqueue.push q ~time:Float.nan ());
  Alcotest.check_raises "inf" (Invalid_argument "Pqueue.push: non-finite time")
    (fun () -> Pqueue.push q ~time:Float.infinity ())

let prop_sorted =
  QCheck.Test.make ~name:"pops are sorted and complete" ~count:200
    QCheck.(list (float_bound_inclusive 1000.))
    (fun times ->
      let q = Pqueue.create () in
      List.iteri (fun i t -> Pqueue.push q ~time:t i) times;
      let out = ref [] in
      let rec go () =
        match Pqueue.pop q with
        | Some (t, _) ->
          out := t :: !out;
          go ()
        | None -> ()
      in
      go ();
      let popped = List.rev !out in
      List.length popped = List.length times
      && popped = List.sort Float.compare times)

let prop_stability =
  QCheck.Test.make ~name:"equal times pop in insertion order" ~count:200
    QCheck.(list_of_size (Gen.int_range 0 30) (int_bound 3))
    (fun buckets ->
      let q = Pqueue.create () in
      List.iteri (fun i b -> Pqueue.push q ~time:(float_of_int b) i) buckets;
      let rec go acc =
        match Pqueue.pop q with Some (t, i) -> go ((t, i) :: acc) | None -> List.rev acc
      in
      let out = go [] in
      (* Within each time bucket, payload order must be increasing. *)
      let rec check_bucket last = function
        | [] -> true
        | (t, i) :: rest -> (
          match last with
          | Some (t', i') when t = t' -> i > i' && check_bucket (Some (t, i)) rest
          | _ -> check_bucket (Some (t, i)) rest)
      in
      check_bucket None out)

let suite =
  [
    case "empty queue" test_empty;
    case "ordering" test_ordering;
    case "fifo ties" test_fifo_at_equal_times;
    case "interleaved push/pop" test_interleaved_push_pop;
    case "peek" test_peek_does_not_remove;
    case "growth to 1000" test_grow;
    case "clear" test_clear;
    case "rejects non-finite times" test_rejects_non_finite;
    QCheck_alcotest.to_alcotest prop_sorted;
    QCheck_alcotest.to_alcotest prop_stability;
  ]
