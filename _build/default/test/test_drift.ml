module Drift = Gcs.Drift
module Hwclock = Dsim.Hwclock
module Params = Gcs.Params

let case name f = Alcotest.test_case name `Quick f

let p = Params.make ~rho:0.08 ~n:10 ()

let assign spec = Drift.assign p ~horizon:100. ~seed:7 spec

let test_all_within_drift spec name =
  case name (fun () ->
      let clocks = assign spec in
      Alcotest.(check int) "one clock per node" 10 (Array.length clocks);
      Array.iter
        (fun c ->
          Alcotest.(check bool) "within drift" true (Hwclock.within_drift ~rho:0.08 c))
        clocks)

let test_perfect () =
  Array.iter
    (fun c -> Alcotest.(check (float 1e-9)) "rate 1" 1. (Hwclock.rate_at c 5.))
    (assign Drift.Perfect)

let test_split_extremes () =
  let clocks = assign Drift.Split_extremes in
  Alcotest.(check (float 1e-9)) "first fast" 1.08 (Hwclock.rate_at clocks.(0) 0.);
  Alcotest.(check (float 1e-9)) "last slow" 0.92 (Hwclock.rate_at clocks.(9) 0.)

let test_gradient_rates () =
  let clocks = assign Drift.Gradient_rates in
  Alcotest.(check (float 1e-9)) "first at 1+rho" 1.08 (Hwclock.rate_at clocks.(0) 0.);
  Alcotest.(check (float 1e-9)) "last at 1-rho" 0.92 (Hwclock.rate_at clocks.(9) 0.);
  Alcotest.(check bool) "middle strictly between" true
    (Hwclock.rate_at clocks.(5) 0. < 1.08 && Hwclock.rate_at clocks.(5) 0. > 0.92)

let test_alternating_phases () =
  let clocks = assign (Drift.Alternating 10.) in
  Alcotest.(check (float 1e-9)) "even fast first" 1.08 (Hwclock.rate_at clocks.(0) 0.);
  Alcotest.(check (float 1e-9)) "odd slow first" 0.92 (Hwclock.rate_at clocks.(1) 0.)

let test_random_walk_distinct () =
  let clocks = assign (Drift.Random_walk 10.) in
  Alcotest.(check bool) "nodes get different schedules" true
    (Hwclock.segments clocks.(0) <> Hwclock.segments clocks.(1))

let test_custom () =
  let clocks = assign (Drift.Custom (fun i -> if i = 0 then Hwclock.perfect else Hwclock.slowest ~rho:0.08)) in
  Alcotest.(check (float 1e-9)) "custom applied" 1. (Hwclock.rate_at clocks.(0) 3.)

let suite =
  [
    test_all_within_drift Drift.Perfect "perfect within drift";
    test_all_within_drift Drift.Split_extremes "split extremes within drift";
    test_all_within_drift Drift.Gradient_rates "gradient rates within drift";
    test_all_within_drift (Drift.Alternating 7.) "alternating within drift";
    test_all_within_drift (Drift.Random_walk 5.) "random walk within drift";
    case "perfect rates" test_perfect;
    case "split extremes halves" test_split_extremes;
    case "gradient of rates" test_gradient_rates;
    case "alternating phases" test_alternating_phases;
    case "random walks distinct" test_random_walk_distinct;
    case "custom" test_custom;
  ]
