module Engine = Dsim.Engine
module Hwclock = Dsim.Hwclock
module Delay = Dsim.Delay
module Baseline_max = Gcs.Baseline_max
module Params = Gcs.Params

let case name f = Alcotest.test_case name `Quick f

let build ?(n = 2) ?(clocks = None) ?(initial_edges = [ (0, 1) ]) () =
  let p = Params.make ~n () in
  let clocks =
    match clocks with Some c -> c | None -> Array.init n (fun _ -> Hwclock.perfect)
  in
  let delay = Delay.constant ~bound:p.Params.delay_bound 0.5 in
  let engine = Engine.create ~clocks ~delay ~discovery_lag:0. ~initial_edges () in
  let nodes = Array.make n None in
  for i = 0 to n - 1 do
    Engine.install engine i (fun ctx ->
        let node = Baseline_max.create p ctx in
        nodes.(i) <- Some node;
        Baseline_max.handlers node)
  done;
  (engine, Array.map Option.get nodes, p)

let test_chases_max () =
  let clocks = [| Hwclock.constant 1.05; Hwclock.constant 0.95 |] in
  let engine, nodes, _ = build ~clocks:(Some clocks) () in
  Engine.run_until engine 100.;
  let l0 = Baseline_max.logical_clock nodes.(0) in
  let l1 = Baseline_max.logical_clock nodes.(1) in
  (* The slow node's clock sits within one update round of the fast one. *)
  Alcotest.(check bool) "slow node keeps up" true (l0 -. l1 < 1.);
  Alcotest.(check bool) "clock equals max estimate after a jump" true
    (Baseline_max.logical_clock nodes.(1) >= Baseline_max.max_estimate nodes.(1) -. 1e-6)

let test_jump_is_unbounded () =
  (* Unlike the gradient algorithm, a max-only node adopts a huge Lmax in
     one discrete step: simulate by letting the fast node run isolated,
     then connecting. *)
  let clocks = [| Hwclock.constant 1.05; Hwclock.constant 0.95 |] in
  let engine, nodes, _ = build ~clocks:(Some clocks) ~initial_edges:[] () in
  Engine.schedule_edge_add engine ~at:100. 0 1;
  Engine.run_until engine 99.9;
  let before = Baseline_max.logical_clock nodes.(1) in
  Engine.run_until engine 103.;
  let after = Baseline_max.logical_clock nodes.(1) in
  (* 100 time units of 0.10 relative drift = 10 units adopted at once. *)
  Alcotest.(check bool) "single jump of ~10" true (after -. before > 9.);
  Alcotest.(check bool) "jump counted" true (Baseline_max.discrete_jumps nodes.(1) >= 1)

let test_upsilon_tracking () =
  let engine, nodes, _ = build () in
  Engine.run_until engine 1.;
  Alcotest.(check (list int)) "peer known" [ 1 ] (Baseline_max.upsilon nodes.(0));
  Engine.schedule_edge_remove engine ~at:1. 0 1;
  Engine.run_until engine 2.;
  Alcotest.(check (list int)) "peer dropped" [] (Baseline_max.upsilon nodes.(0))

let test_monotone_and_rate () =
  let clocks = [| Hwclock.constant 1.05; Hwclock.constant 0.95 |] in
  let engine, nodes, _ = build ~clocks:(Some clocks) ~initial_edges:[] () in
  Engine.schedule_edge_add engine ~at:50. 0 1;
  let prev = ref (-1.) in
  let ok = ref true in
  let rec probe t =
    if t <= 80. then
      Engine.at engine ~time:t (fun () ->
          let l = Baseline_max.logical_clock nodes.(1) in
          if l < !prev then ok := false;
          prev := l;
          probe (t +. 0.25))
  in
  probe 0.;
  Engine.run_until engine 80.;
  Alcotest.(check bool) "monotone through the jump" true !ok

let test_message_counter () =
  let engine, nodes, _ = build () in
  Engine.run_until engine 20.;
  Alcotest.(check bool) "periodic updates sent" true
    (Baseline_max.messages_sent nodes.(0) >= 19)

let suite =
  [
    case "chases the max" test_chases_max;
    case "unbounded jump on reconnection" test_jump_is_unbounded;
    case "upsilon tracking" test_upsilon_tracking;
    case "monotonicity through jumps" test_monotone_and_rate;
    case "periodic updates" test_message_counter;
  ]
