module Invariant = Gcs.Invariant
module Metrics = Gcs.Metrics

let case name f = Alcotest.test_case name `Quick f

(* Drive the monitor with a synthetic view backed by mutable clocks so we
   can inject violations deliberately. *)
let make_setup () =
  let clocks = [| 0.; 0. |] in
  let lmaxes = [| 0.; 0. |] in
  let view =
    {
      Metrics.n = 2;
      clock_of = (fun i -> clocks.(i));
      lmax_of = (fun i -> lmaxes.(i));
      edges = (fun () -> [ (0, 1) ]);
    }
  in
  let engine =
    (Dsim.Engine.create
       ~clocks:[| Dsim.Hwclock.perfect; Dsim.Hwclock.perfect |]
       ~delay:(Dsim.Delay.zero ~bound:1.) ()
      : (Gcs.Proto.message, Gcs.Proto.timer) Dsim.Engine.t)
  in
  Dsim.Engine.install engine 0 (fun _ ->
      {
        Dsim.Engine.on_init = ignore;
        on_discover_add = ignore;
        on_discover_remove = ignore;
        on_receive = (fun _ _ -> ());
        on_timer = ignore;
      });
  Dsim.Engine.install engine 1 (fun _ ->
      {
        Dsim.Engine.on_init = ignore;
        on_discover_add = ignore;
        on_discover_remove = ignore;
        on_receive = (fun _ _ -> ());
        on_timer = ignore;
      });
  (clocks, lmaxes, view, engine)

let advance clocks lmaxes rate dt =
  Array.iteri (fun i v -> clocks.(i) <- v +. (rate *. dt)) clocks;
  Array.iteri (fun i v -> lmaxes.(i) <- Float.max (v +. dt) clocks.(i)) lmaxes

let test_clean_run () =
  let clocks, lmaxes, view, engine = make_setup () in
  let monitor = Invariant.attach engine view ~every:1. ~until:10. () in
  (* Advance clocks at rate 1 between probes via interleaved callbacks. *)
  let rec push t =
    if t <= 10. then
      Dsim.Engine.at engine ~time:t (fun () ->
          advance clocks lmaxes 1.0 0.5;
          push (t +. 0.5))
  in
  push 0.25;
  Dsim.Engine.run_until engine 10.;
  Alcotest.(check bool) "ok" true (Invariant.ok monitor);
  Alcotest.(check int) "probes" 11 (Invariant.probes monitor)

let test_detects_slow_clock () =
  let clocks, lmaxes, view, engine = make_setup () in
  let monitor = Invariant.attach engine view ~every:1. ~until:5. () in
  let rec push t =
    if t <= 5. then
      Dsim.Engine.at engine ~time:t (fun () ->
          (* rate 0.3 < the 1/2 floor *)
          advance clocks lmaxes 0.3 1.0;
          push (t +. 1.))
  in
  push 0.5;
  Dsim.Engine.run_until engine 5.;
  Alcotest.(check bool) "violation found" false (Invariant.ok monitor);
  let kinds = List.map (fun v -> v.Invariant.kind) (Invariant.violations monitor) in
  Alcotest.(check bool) "min-rate kind" true (List.mem "min-rate" kinds)

let test_detects_lmax_violation () =
  let clocks, lmaxes, view, engine = make_setup () in
  let monitor = Invariant.attach engine view ~every:1. ~until:3. () in
  Dsim.Engine.at engine ~time:0.5 (fun () ->
      clocks.(1) <- 10.;
      lmaxes.(1) <- 5. (* L > Lmax: Property 6.3 broken *));
  Dsim.Engine.at engine ~time:2.5 (fun () ->
      clocks.(0) <- 10.;
      clocks.(1) <- 20.;
      lmaxes.(0) <- 10.;
      lmaxes.(1) <- 20.);
  Dsim.Engine.run_until engine 3.;
  let kinds = List.map (fun v -> v.Invariant.kind) (Invariant.violations monitor) in
  Alcotest.(check bool) "lmax-dominance kind" true (List.mem "lmax-dominance" kinds)

let test_custom_rate_floor () =
  let clocks, lmaxes, view, engine = make_setup () in
  (* rate 0.8 passes the default 0.5 floor but fails a 0.9 floor *)
  let monitor = Invariant.attach engine view ~every:1. ~until:4. ~rate_floor:0.9 () in
  let rec push t =
    if t <= 4. then
      Dsim.Engine.at engine ~time:t (fun () ->
          advance clocks lmaxes 0.8 1.0;
          push (t +. 1.))
  in
  push 0.5;
  Dsim.Engine.run_until engine 4.;
  Alcotest.(check bool) "0.8 fails 0.9 floor" false (Invariant.ok monitor)

let test_violation_printing () =
  let v = { Invariant.time = 1.5; node = 3; kind = "min-rate"; detail = "x" } in
  let s = Format.asprintf "%a" Invariant.pp_violation v in
  Alcotest.(check bool) "mentions node" true
    (String.length s > 0 && s <> "")

let suite =
  [
    case "clean run" test_clean_run;
    case "detects slow clock" test_detects_slow_clock;
    case "detects L > Lmax" test_detects_lmax_violation;
    case "custom rate floor" test_custom_rate_floor;
    case "violation printing" test_violation_printing;
  ]
