module Hwclock = Dsim.Hwclock
module Prng = Dsim.Prng

let case name f = Alcotest.test_case name `Quick f

let feq = Alcotest.float 1e-9

let test_perfect () =
  let c = Hwclock.perfect in
  Alcotest.check feq "H(0)" 0. (Hwclock.value c 0.);
  Alcotest.check feq "H(5)" 5. (Hwclock.value c 5.);
  Alcotest.check feq "inverse" 7.25 (Hwclock.inverse c 7.25);
  Alcotest.check feq "rate" 1. (Hwclock.rate_at c 3.)

let test_constant_rate () =
  let c = Hwclock.constant 1.05 in
  Alcotest.check feq "H(10)" 10.5 (Hwclock.value c 10.);
  Alcotest.check feq "inverse" 10. (Hwclock.inverse c 10.5)

let test_piecewise () =
  (* rate 2 on [0,1), rate 0.5 on [1,3), rate 1 after *)
  let c = Hwclock.of_rates [ (0., 2.); (1., 0.5); (3., 1.) ] in
  Alcotest.check feq "H(0.5)" 1. (Hwclock.value c 0.5);
  Alcotest.check feq "H(1)" 2. (Hwclock.value c 1.);
  Alcotest.check feq "H(2)" 2.5 (Hwclock.value c 2.);
  Alcotest.check feq "H(3)" 3. (Hwclock.value c 3.);
  Alcotest.check feq "H(5)" 5. (Hwclock.value c 5.);
  Alcotest.check feq "inv 1" 0.5 (Hwclock.inverse c 1.);
  Alcotest.check feq "inv 2.5" 2. (Hwclock.inverse c 2.5);
  Alcotest.check feq "inv 5" 5. (Hwclock.inverse c 5.)

let test_rate_at_boundaries () =
  let c = Hwclock.of_rates [ (0., 2.); (1., 0.5) ] in
  Alcotest.check feq "right-continuous at 1" 0.5 (Hwclock.rate_at c 1.);
  Alcotest.check feq "before boundary" 2. (Hwclock.rate_at c 0.999)

let test_validation () =
  Alcotest.check_raises "empty" (Invalid_argument "Hwclock.of_rates: empty schedule")
    (fun () -> ignore (Hwclock.of_rates []));
  Alcotest.check_raises "nonzero start"
    (Invalid_argument "Hwclock.of_rates: first segment must start at 0") (fun () ->
      ignore (Hwclock.of_rates [ (1., 1.) ]));
  Alcotest.check_raises "negative rate"
    (Invalid_argument "Hwclock.of_rates: rate must be positive") (fun () ->
      ignore (Hwclock.of_rates [ (0., -1.) ]));
  Alcotest.check_raises "non-increasing times"
    (Invalid_argument "Hwclock.of_rates: segment times must increase") (fun () ->
      ignore (Hwclock.of_rates [ (0., 1.); (2., 1.); (2., 1.5) ]))

let test_within_drift () =
  Alcotest.(check bool) "perfect ok" true (Hwclock.within_drift ~rho:0.01 Hwclock.perfect);
  Alcotest.(check bool) "fastest ok" true
    (Hwclock.within_drift ~rho:0.1 (Hwclock.fastest ~rho:0.1));
  Alcotest.(check bool) "too fast" false
    (Hwclock.within_drift ~rho:0.05 (Hwclock.constant 1.06))

let test_two_rate () =
  let rho = 0.1 in
  let c = Hwclock.two_rate ~rho ~period:10. ~horizon:25. ~fast_first:true in
  Alcotest.check feq "fast first" (1. +. rho) (Hwclock.rate_at c 0.);
  Alcotest.check feq "slow second" (1. -. rho) (Hwclock.rate_at c 10.);
  Alcotest.check feq "fast third" (1. +. rho) (Hwclock.rate_at c 20.);
  Alcotest.check feq "rate 1 past horizon" 1. (Hwclock.rate_at c 30.);
  Alcotest.(check bool) "within drift" true (Hwclock.within_drift ~rho c)

let test_fast_until () =
  let rho = 0.05 in
  let c = Hwclock.fast_until ~rho 10. in
  Alcotest.check feq "H(10)" 10.5 (Hwclock.value c 10.);
  Alcotest.check feq "H(20) = 10*(1+rho) + 10" 20.5 (Hwclock.value c 20.);
  let c0 = Hwclock.fast_until ~rho 0. in
  Alcotest.check feq "switch at 0 means perfect" 5. (Hwclock.value c0 5.)

let test_beta_formula () =
  (* fast_until realizes H(t) = t + min(rho t, T d) with switch = T d / rho. *)
  let rho = 0.05 and t_bound = 1.0 in
  let d = 7 in
  let c = Hwclock.fast_until ~rho (t_bound *. float_of_int d /. rho) in
  List.iter
    (fun t ->
      let expect = t +. Float.min (rho *. t) (t_bound *. float_of_int d) in
      Alcotest.check feq (Printf.sprintf "H(%g)" t) expect (Hwclock.value c t))
    [ 0.; 10.; 100.; 140.; 141.; 1000. ]

let test_random_walk_bounds () =
  let prng = Prng.of_int 123 in
  let c = Hwclock.random_walk prng ~rho:0.07 ~segment_mean:5. ~horizon:100. in
  Alcotest.(check bool) "within drift" true (Hwclock.within_drift ~rho:0.07 c);
  Alcotest.check feq "rate 1 past horizon" 1. (Hwclock.rate_at c 200.)

let test_segments_roundtrip () =
  let schedule = [ (0., 1.02); (5., 0.98); (12., 1.) ] in
  let c = Hwclock.of_rates schedule in
  Alcotest.(check (list (pair (float 0.) (float 0.)))) "segments" schedule
    (Hwclock.segments c)

let test_negative_time_rejected () =
  Alcotest.check_raises "value" (Invalid_argument "Hwclock.value: negative time")
    (fun () -> ignore (Hwclock.value Hwclock.perfect (-1.)));
  Alcotest.check_raises "inverse" (Invalid_argument "Hwclock.inverse: negative value")
    (fun () -> ignore (Hwclock.inverse Hwclock.perfect (-0.5)))

(* Random piecewise clocks: value and inverse are mutually inverse, value is
   strictly increasing. *)
let random_clock_gen =
  QCheck.Gen.(
    let* k = int_range 1 6 in
    let* rates = list_repeat k (float_range 0.5 1.5) in
    let* gaps = list_repeat (k - 1) (float_range 0.1 10.) in
    let times =
      List.fold_left (fun acc g -> (List.hd acc +. g) :: acc) [ 0. ] gaps
      |> List.rev
    in
    return (List.combine times rates))

let prop_inverse_roundtrip =
  QCheck.Test.make ~name:"inverse (value t) = t" ~count:300
    (QCheck.make random_clock_gen)
    (fun schedule ->
      let c = Dsim.Hwclock.of_rates schedule in
      List.for_all
        (fun t ->
          let h = Dsim.Hwclock.value c t in
          Float.abs (Dsim.Hwclock.inverse c h -. t) < 1e-6)
        [ 0.; 0.3; 1.7; 5.; 23.; 100. ])

let prop_monotone =
  QCheck.Test.make ~name:"value is strictly increasing" ~count:300
    (QCheck.make random_clock_gen)
    (fun schedule ->
      let c = Dsim.Hwclock.of_rates schedule in
      let ts = [ 0.; 0.1; 0.5; 1.; 2.; 4.; 8.; 16.; 50. ] in
      let vs = List.map (Dsim.Hwclock.value c) ts in
      let rec increasing = function
        | a :: (b :: _ as rest) -> a < b && increasing rest
        | _ -> true
      in
      increasing vs)

let suite =
  [
    case "perfect clock" test_perfect;
    case "constant rate" test_constant_rate;
    case "piecewise values and inverse" test_piecewise;
    case "rate at boundaries" test_rate_at_boundaries;
    case "schedule validation" test_validation;
    case "within_drift" test_within_drift;
    case "two_rate pattern" test_two_rate;
    case "fast_until" test_fast_until;
    case "beta clock formula (Lemma 4.2)" test_beta_formula;
    case "random walk bounds" test_random_walk_bounds;
    case "segments roundtrip" test_segments_roundtrip;
    case "negative times rejected" test_negative_time_rejected;
    QCheck_alcotest.to_alcotest prop_inverse_roundtrip;
    QCheck_alcotest.to_alcotest prop_monotone;
  ]
