module Estimate = Gcs.Estimate

let case name f = Alcotest.test_case name `Quick f

let feq = Alcotest.float 1e-9

let test_drift () =
  let e = Estimate.create ~value:10. ~anchor:5. in
  Alcotest.check feq "at anchor" 10. (Estimate.get e ~at:5.);
  Alcotest.check feq "drifts with hardware time" 13. (Estimate.get e ~at:8.)

let test_set () =
  let e = Estimate.create ~value:0. ~anchor:0. in
  Estimate.set e ~at:4. 100.;
  Alcotest.check feq "set value" 100. (Estimate.get e ~at:4.);
  Alcotest.check feq "drifts from new anchor" 101.5 (Estimate.get e ~at:5.5)

let test_raise_to () =
  let e = Estimate.create ~value:10. ~anchor:0. in
  Alcotest.(check bool) "raise below is no-op" false (Estimate.raise_to e ~at:2. 5.);
  Alcotest.check feq "unchanged" 12. (Estimate.get e ~at:2.);
  Alcotest.(check bool) "raise above jumps" true (Estimate.raise_to e ~at:2. 20.);
  Alcotest.check feq "jumped" 20. (Estimate.get e ~at:2.)

let test_raise_to_equal_is_noop () =
  let e = Estimate.create ~value:3. ~anchor:0. in
  Alcotest.(check bool) "equal value" false (Estimate.raise_to e ~at:1. 4.)

let prop_never_decreases_between_events =
  QCheck.Test.make ~name:"get is monotone in hardware time" ~count:300
    QCheck.(triple (float_bound_inclusive 100.) (float_bound_inclusive 100.) pos_float)
    (fun (anchor, v, dt) ->
      let e = Estimate.create ~value:v ~anchor in
      Estimate.get e ~at:(anchor +. dt) >= Estimate.get e ~at:anchor)

let suite =
  [
    case "drift semantics" test_drift;
    case "set re-anchors" test_set;
    case "raise_to" test_raise_to;
    case "raise_to equal" test_raise_to_equal_is_noop;
    QCheck_alcotest.to_alcotest prop_never_decreases_between_events;
  ]
