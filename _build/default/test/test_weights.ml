module Weights = Gcs.Weights
module Params = Gcs.Params

let case name f = Alcotest.test_case name `Quick f

let feq = Alcotest.float 1e-9

let test_distances_dijkstra () =
  (* Square with a heavy diagonal: 0-1 (1), 1-2 (1), 2-3 (1), 0-3 (10),
     0-2 (1.5). *)
  let weighted = [ ((0, 1), 1.); ((1, 2), 1.); ((2, 3), 1.); ((0, 3), 10.); ((0, 2), 1.5) ] in
  let d = Weights.distances ~n:4 weighted 0 in
  Alcotest.check feq "d(0,0)" 0. d.(0);
  Alcotest.check feq "d(0,1)" 1. d.(1);
  Alcotest.check feq "d(0,2) via diagonal" 1.5 d.(2);
  Alcotest.check feq "d(0,3) via 2" 2.5 d.(3)

let test_unreachable () =
  let d = Weights.distances ~n:3 [ ((0, 1), 1.) ] 0 in
  Alcotest.(check bool) "node 2 unreachable" true (d.(2) = infinity)

let test_effective_diameter () =
  let weighted = [ ((0, 1), 2.); ((1, 2), 3.) ] in
  Alcotest.check feq "diameter" 5. (Weights.effective_diameter ~n:3 weighted);
  Alcotest.(check bool) "disconnected -> infinity" true
    (Weights.effective_diameter ~n:3 [ ((0, 1), 1.) ] = infinity)

let test_hop_diameter_weight () =
  let p = Params.make ~n:8 () in
  Alcotest.check feq "B0 * hops" (3. *. p.Params.b0) (Weights.hop_diameter_weight p 3)

(* Live-node weights: run a small simulation and read weights off Gamma. *)
let with_sim f =
  let n = 4 in
  let p = Params.make ~n () in
  let cfg =
    Gcs.Sim.config ~params:p
      ~clocks:(Array.init n (fun _ -> Dsim.Hwclock.perfect))
      ~delay:(Dsim.Delay.constant ~bound:p.Params.delay_bound 0.5)
      ~initial_edges:(Topology.Static.path n) ()
  in
  let sim = Gcs.Sim.create cfg in
  let nodes = Array.init n (fun i -> Option.get (Gcs.Sim.gradient_node sim i)) in
  f sim nodes p

let test_live_edge_weight () =
  with_sim (fun sim nodes p ->
      Gcs.Sim.run_until sim 5.;
      (match Weights.edge_weight nodes 0 1 with
      | Some w ->
        (* Age ~5: the weight has started its linear decay but is far from
           the B0 floor. *)
        Alcotest.(check bool) "young edge weight inside the decay band" true
          (w <= Params.b p 0. && w >= Params.b p 10.)
      | None -> Alcotest.fail "edge not weighted after 5 time units");
      Alcotest.(check bool) "non-adjacent pair has no weight" true
        (Weights.edge_weight nodes 0 3 = None))

let test_weight_anneals () =
  with_sim (fun sim nodes p ->
      Gcs.Sim.run_until sim 5.;
      let w_young = Option.get (Weights.edge_weight nodes 0 1) in
      Gcs.Sim.run_until sim (Params.stabilize_real p +. 20.);
      let w_old = Option.get (Weights.edge_weight nodes 0 1) in
      Alcotest.(check bool) "weight decays" true (w_old < w_young);
      Alcotest.(check (float 1e-6)) "floors at B0" p.Params.b0 w_old)

let test_weighted_edges_fallback () =
  with_sim (fun sim nodes p ->
      (* At time 0 nothing is in Gamma yet: the fallback birth weight is
         used. *)
      Gcs.Sim.run_until sim 0.;
      let weighted = Weights.weighted_edges nodes (Topology.Static.path 4) in
      List.iter
        (fun (_, w) -> Alcotest.check feq "birth weight" (Params.b p 0.) w)
        weighted)

let test_effective_diameter_anneals_live () =
  with_sim (fun sim nodes p ->
      Gcs.Sim.run_until sim 5.;
      let edges = Topology.Static.path 4 in
      let early = Weights.effective_diameter ~n:4 (Weights.weighted_edges nodes edges) in
      Gcs.Sim.run_until sim (Params.stabilize_real p +. 20.);
      let late = Weights.effective_diameter ~n:4 (Weights.weighted_edges nodes edges) in
      Alcotest.(check bool) "diameter shrinks" true (late < early);
      Alcotest.(check (float 1e-6)) "annealed to B0 * hops" (3. *. p.Params.b0) late)

let suite =
  [
    case "dijkstra distances" test_distances_dijkstra;
    case "unreachable" test_unreachable;
    case "effective diameter" test_effective_diameter;
    case "hop diameter weight" test_hop_diameter_weight;
    case "live edge weight" test_live_edge_weight;
    case "weight anneals to B0" test_weight_anneals;
    case "fallback for non-Gamma edges" test_weighted_edges_fallback;
    case "live effective diameter anneals" test_effective_diameter_anneals_live;
  ]
