module Twochain = Lowerbound.Twochain
module Static = Topology.Static
module Mask = Lowerbound.Mask

let case name f = Alcotest.test_case name `Quick f

let t = Twochain.build ~n:20 ~k:2

let test_sizes () =
  Alcotest.(check int) "a_len" 10 t.Twochain.a_len;
  Alcotest.(check int) "b_len" 10 t.Twochain.b_len;
  (* Chains share w0 and wn: (a_len + 1) + (b_len + 1) - 2 = n nodes. *)
  let ids = List.sort_uniq compare (Twochain.a_chain t @ Twochain.b_chain t) in
  Alcotest.(check int) "exactly n distinct ids" 20 (List.length ids);
  Alcotest.(check (list int)) "ids are 0..n-1" (List.init 20 Fun.id) ids

let test_endpoints () =
  Alcotest.(check int) "w0" 0 (Twochain.w0 t);
  Alcotest.(check int) "wn = a_len" 10 (Twochain.wn t);
  Alcotest.(check int) "chains share w0" (Twochain.w0 t) (Twochain.b_id t 0);
  Alcotest.(check int) "chains share wn" (Twochain.wn t) (Twochain.b_id t 10)

let test_u_v_positions () =
  Alcotest.(check int) "u at A-position k" (Twochain.a_id t 2) t.Twochain.u;
  Alcotest.(check int) "v at A-position a_len-k" (Twochain.a_id t 8) t.Twochain.v

let test_graph_shape () =
  let n = 20 in
  Alcotest.(check bool) "connected" true (Static.is_connected ~n t.Twochain.edges);
  (* Two chains: every internal node has degree 2, w0/wn have degree 2. *)
  Alcotest.(check int) "edge count = a_len + b_len" 20 (List.length t.Twochain.edges);
  (* Distance between w0 and wn is min chain length. *)
  Alcotest.(check int) "dist(w0, wn)" 10
    (Static.dist ~n t.Twochain.edges (Twochain.w0 t) (Twochain.wn t))

let test_block_edges () =
  (* k edges at each end of chain A. *)
  Alcotest.(check int) "2k block edges" 4 (List.length t.Twochain.block);
  Alcotest.(check bool) "first A edge blocked" true (Twochain.is_block_edge t 0 (Twochain.a_id t 1));
  Alcotest.(check bool) "middle A edge not blocked" false
    (Twochain.is_block_edge t (Twochain.a_id t 4) (Twochain.a_id t 5));
  List.iter
    (fun (u, v) ->
      Alcotest.(check bool) "block edges are edges" true (List.mem (u, v) t.Twochain.edges))
    t.Twochain.block

let test_mask_constrains_exactly_block () =
  let m = Twochain.mask t ~delay:1. in
  Alcotest.(check int) "constrained count" 4 (List.length (Mask.constrained_edges m));
  List.iter
    (fun (u, v) ->
      Alcotest.(check (option (float 1e-9))) "delay 1" (Some 1.) (Mask.delay m u v))
    t.Twochain.block

let test_flexible_distance_uv () =
  (* With the block constrained, u is at flexible distance 0 from w0 and
     dist_M(u, v) = a_len - 2k via the middle of chain A. *)
  let m = Twochain.mask t ~delay:1. in
  let d = Mask.flexible_distances m ~n:20 ~edges:t.Twochain.edges (Twochain.w0 t) in
  Alcotest.(check int) "u in layer 0" 0 d.(t.Twochain.u);
  Alcotest.(check int) "v at a_len - 2k" 6 d.(t.Twochain.v)

let test_odd_n () =
  let t = Twochain.build ~n:21 ~k:2 in
  Alcotest.(check int) "a_len = floor(n/2)" 10 t.Twochain.a_len;
  Alcotest.(check int) "b_len = ceil(n/2)" 11 t.Twochain.b_len;
  let ids = List.sort_uniq compare (Twochain.a_chain t @ Twochain.b_chain t) in
  Alcotest.(check int) "n distinct ids" 21 (List.length ids);
  Alcotest.(check bool) "connected" true (Static.is_connected ~n:21 t.Twochain.edges)

let test_validation () =
  (match Twochain.build ~n:4 ~k:1 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "tiny n accepted");
  match Twochain.build ~n:20 ~k:5 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "k too large accepted"

let prop_structure =
  QCheck.Test.make ~name:"two-chain structure for random n, k" ~count:100
    QCheck.(pair (int_range 8 80) (int_range 1 10))
    (fun (n, k) ->
      QCheck.assume (k < (n / 2 / 2) - 1);
      let t = Lowerbound.Twochain.build ~n ~k in
      let ids =
        List.sort_uniq compare
          (Lowerbound.Twochain.a_chain t @ Lowerbound.Twochain.b_chain t)
      in
      List.length ids = n
      && Static.is_connected ~n t.Lowerbound.Twochain.edges
      && List.length t.Lowerbound.Twochain.block = 2 * k)

let suite =
  [
    case "sizes" test_sizes;
    case "endpoints" test_endpoints;
    case "u and v positions" test_u_v_positions;
    case "graph shape" test_graph_shape;
    case "block edges" test_block_edges;
    case "mask covers the block" test_mask_constrains_exactly_block;
    case "flexible distance u-v" test_flexible_distance_uv;
    case "odd n" test_odd_n;
    case "validation" test_validation;
    QCheck_alcotest.to_alcotest prop_structure;
  ]
