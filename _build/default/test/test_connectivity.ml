module Connectivity = Topology.Connectivity
module Churn = Topology.Churn

let case name f = Alcotest.test_case name `Quick f

let test_union_find () =
  let uf = Connectivity.Union_find.create 5 in
  Alcotest.(check int) "initial components" 5 (Connectivity.Union_find.components uf);
  Connectivity.Union_find.union uf 0 1;
  Connectivity.Union_find.union uf 2 3;
  Alcotest.(check int) "after two unions" 3 (Connectivity.Union_find.components uf);
  Alcotest.(check bool) "same(0,1)" true (Connectivity.Union_find.same uf 0 1);
  Alcotest.(check bool) "not same(1,2)" false (Connectivity.Union_find.same uf 1 2);
  Connectivity.Union_find.union uf 1 2;
  Connectivity.Union_find.union uf 1 2;
  Alcotest.(check bool) "transitive" true (Connectivity.Union_find.same uf 0 3);
  Alcotest.(check int) "idempotent unions" 2 (Connectivity.Union_find.components uf)

let test_connected () =
  Alcotest.(check bool) "path" true (Connectivity.connected ~n:3 [ (0, 1); (1, 2) ]);
  Alcotest.(check bool) "split" false (Connectivity.connected ~n:4 [ (0, 1); (2, 3) ]);
  Alcotest.(check bool) "single node" true (Connectivity.connected ~n:1 [])

let base = [ (0, 1); (1, 2); (2, 3) ]

let test_static_interval_connected () =
  Alcotest.(check bool) "no events" true
    (Connectivity.interval_connected ~n:4 ~window:2. ~horizon:100. ~initial:base [])

let test_brief_outage_within_window () =
  (* Edge 1-2 gone only during [10, 10.5]: with window 2 every window
     containing the outage is missing the edge -> disconnected windows. *)
  let events =
    [
      { Churn.time = 10.; op = Churn.Remove; u = 1; v = 2 };
      { Churn.time = 10.5; op = Churn.Add; u = 1; v = 2 };
    ]
  in
  Alcotest.(check bool) "outage on a cut edge breaks interval connectivity" false
    (Connectivity.interval_connected ~n:4 ~window:2. ~horizon:100. ~initial:base events)

let test_redundant_edge_outage_is_fine () =
  (* A ring tolerates losing one edge at a time. *)
  let ring = [ (0, 1); (1, 2); (2, 3); (0, 3) ] in
  let events =
    [
      { Churn.time = 10.; op = Churn.Remove; u = 1; v = 2 };
      { Churn.time = 20.; op = Churn.Add; u = 1; v = 2 };
      { Churn.time = 30.; op = Churn.Remove; u = 0; v = 3 };
    ]
  in
  Alcotest.(check bool) "stays interval connected" true
    (Connectivity.interval_connected ~n:4 ~window:2. ~horizon:100. ~initial:ring events)

let test_overlapping_outages_break_it () =
  let ring = [ (0, 1); (1, 2); (2, 3); (0, 3) ] in
  let events =
    [
      { Churn.time = 10.; op = Churn.Remove; u = 1; v = 2 };
      { Churn.time = 12.; op = Churn.Remove; u = 0; v = 3 };
      { Churn.time = 20.; op = Churn.Add; u = 1; v = 2 };
      { Churn.time = 22.; op = Churn.Add; u = 0; v = 3 };
    ]
  in
  Alcotest.(check bool) "two simultaneous cuts split the ring" false
    (Connectivity.interval_connected ~n:4 ~window:2. ~horizon:100. ~initial:ring events);
  match
    Connectivity.first_violation ~n:4 ~window:2. ~horizon:100. ~initial:ring events
  with
  | Some t -> Alcotest.(check bool) "violation near the overlap" true (t >= 10. && t <= 22.)
  | None -> Alcotest.fail "expected a violation"

let test_first_violation_none () =
  Alcotest.(check (option (float 0.))) "no violation" None
    (Connectivity.first_violation ~n:4 ~window:2. ~horizon:50. ~initial:base [])

let suite =
  [
    case "union-find" test_union_find;
    case "connected" test_connected;
    case "static graph" test_static_interval_connected;
    case "cut-edge outage breaks windows" test_brief_outage_within_window;
    case "redundant-edge outage tolerated" test_redundant_edge_outage_is_fine;
    case "overlapping outages break the ring" test_overlapping_outages_break_it;
    case "first_violation none" test_first_violation_none;
  ]
