test/test_connectivity.ml: Alcotest Topology
