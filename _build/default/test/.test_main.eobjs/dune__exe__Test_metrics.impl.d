test/test_metrics.ml: Alcotest Array Dsim Gcs List
