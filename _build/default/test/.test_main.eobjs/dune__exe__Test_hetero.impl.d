test/test_hetero.ml: Alcotest Array Dsim Float Gcs List Topology
