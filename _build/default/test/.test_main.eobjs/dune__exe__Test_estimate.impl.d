test/test_estimate.ml: Alcotest Gcs QCheck QCheck_alcotest
