test/test_drift.ml: Alcotest Array Dsim Gcs
