test/test_static.ml: Alcotest Array Dsim List QCheck QCheck_alcotest Topology
