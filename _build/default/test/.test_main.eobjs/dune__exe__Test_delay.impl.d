test/test_delay.ml: Alcotest Dsim Float
