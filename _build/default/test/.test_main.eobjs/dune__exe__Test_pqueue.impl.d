test/test_pqueue.ml: Alcotest Dsim Float Fun Gen List QCheck QCheck_alcotest
