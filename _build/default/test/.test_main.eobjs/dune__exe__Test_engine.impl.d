test/test_engine.ml: Alcotest Array Dsim List Printf QCheck QCheck_alcotest
