test/test_node.ml: Alcotest Array Dsim Float Gcs Option
