test/test_golden.ml: Alcotest Dsim Gcs List Printf Topology
