test/test_hwclock.ml: Alcotest Dsim Float List Printf QCheck QCheck_alcotest
