test/test_stats.ml: Alcotest Analysis Float List QCheck QCheck_alcotest
