test/test_invariant.ml: Alcotest Array Dsim Float Format Gcs List String
