test/test_trace.ml: Alcotest Dsim Format List String
