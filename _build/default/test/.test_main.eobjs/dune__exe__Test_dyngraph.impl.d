test/test_dyngraph.ml: Alcotest Dsim
