test/test_twochain.ml: Alcotest Array Fun List Lowerbound QCheck QCheck_alcotest Topology
