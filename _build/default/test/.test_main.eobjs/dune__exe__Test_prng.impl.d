test/test_prng.ml: Alcotest Array Dsim Float Fun QCheck QCheck_alcotest
