test/test_table.ml: Alcotest Analysis Format List String
