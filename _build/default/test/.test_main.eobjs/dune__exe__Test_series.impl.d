test/test_series.ml: Alcotest Analysis Float List QCheck QCheck_alcotest
