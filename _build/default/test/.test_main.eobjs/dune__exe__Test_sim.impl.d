test/test_sim.ml: Alcotest Array Dsim Gcs Topology
