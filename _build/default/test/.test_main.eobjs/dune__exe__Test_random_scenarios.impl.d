test/test_random_scenarios.ml: Dsim Gcs QCheck QCheck_alcotest Topology
