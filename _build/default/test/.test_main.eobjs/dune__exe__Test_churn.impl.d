test/test_churn.ml: Alcotest Array Dsim List QCheck QCheck_alcotest Set Topology
