test/test_subseq.ml: Alcotest Array List Lowerbound QCheck QCheck_alcotest
