test/test_params.ml: Alcotest Float Gcs QCheck QCheck_alcotest
