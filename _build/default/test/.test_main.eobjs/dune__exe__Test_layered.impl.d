test/test_layered.ml: Alcotest Array Dsim Float Fun Gcs List Lowerbound Printf QCheck QCheck_alcotest Topology
