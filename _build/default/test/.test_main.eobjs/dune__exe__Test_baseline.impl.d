test/test_baseline.ml: Alcotest Array Dsim Gcs Option
