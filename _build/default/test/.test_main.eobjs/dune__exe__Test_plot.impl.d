test/test_plot.ml: Alcotest Analysis List String
