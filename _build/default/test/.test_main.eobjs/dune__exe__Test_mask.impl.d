test/test_mask.ml: Alcotest Array Dsim List Lowerbound QCheck QCheck_alcotest Topology
