test/test_weights.ml: Alcotest Array Dsim Gcs List Option Topology
