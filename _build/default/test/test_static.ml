module Static = Topology.Static
module Prng = Dsim.Prng

let case name f = Alcotest.test_case name `Quick f

let test_path () =
  Alcotest.(check (list (pair int int))) "path 4" [ (0, 1); (1, 2); (2, 3) ]
    (Static.path 4);
  Alcotest.(check int) "diameter" 3 (Static.diameter ~n:4 (Static.path 4))

let test_ring () =
  let edges = Static.ring 5 in
  Alcotest.(check int) "edge count" 5 (List.length edges);
  Alcotest.(check bool) "wrap edge" true (List.mem (0, 4) edges);
  Alcotest.(check int) "diameter" 2 (Static.diameter ~n:5 edges)

let test_star () =
  let edges = Static.star 6 in
  Alcotest.(check int) "edge count" 5 (List.length edges);
  Alcotest.(check bool) "all incident to 0" true (List.for_all (fun (u, _) -> u = 0) edges);
  Alcotest.(check int) "diameter" 2 (Static.diameter ~n:6 edges)

let test_complete () =
  let edges = Static.complete 5 in
  Alcotest.(check int) "n(n-1)/2" 10 (List.length edges);
  Alcotest.(check int) "diameter" 1 (Static.diameter ~n:5 edges);
  Alcotest.(check int) "no duplicates" 10 (List.length (List.sort_uniq compare edges))

let test_grid () =
  let edges = Static.grid ~rows:3 ~cols:4 in
  (* 3*(4-1) horizontal + (3-1)*4 vertical = 9 + 8 *)
  Alcotest.(check int) "edge count" 17 (List.length edges);
  Alcotest.(check bool) "connected" true (Static.is_connected ~n:12 edges);
  Alcotest.(check int) "diameter = rows+cols-2" 5 (Static.diameter ~n:12 edges)

let test_binary_tree () =
  let edges = Static.binary_tree 7 in
  Alcotest.(check int) "n-1 edges" 6 (List.length edges);
  Alcotest.(check bool) "root-children" true
    (List.mem (0, 1) edges && List.mem (0, 2) edges);
  Alcotest.(check bool) "connected" true (Static.is_connected ~n:7 edges)

let test_distances () =
  let edges = Static.path 5 in
  let d = Static.distances ~n:5 edges 0 in
  Alcotest.(check (array int)) "from end" [| 0; 1; 2; 3; 4 |] d;
  Alcotest.(check int) "dist" 2 (Static.dist ~n:5 edges 1 3)

let test_disconnected () =
  let edges = [ (0, 1); (2, 3) ] in
  Alcotest.(check bool) "not connected" false (Static.is_connected ~n:4 edges);
  (match Static.diameter ~n:4 edges with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "diameter of disconnected graph accepted");
  Alcotest.(check int) "unreachable distance" max_int
    (Static.distances ~n:4 edges 0).(2)

let test_spanning_tree () =
  let edges = Static.ring 6 in
  let tree = Static.spanning_tree ~n:6 edges in
  Alcotest.(check int) "n-1 edges" 5 (List.length tree);
  Alcotest.(check bool) "connected" true (Static.is_connected ~n:6 tree);
  Alcotest.(check bool) "subset of original" true
    (List.for_all (fun e -> List.mem e edges) tree);
  let extra = Static.non_tree_edges ~n:6 edges in
  Alcotest.(check int) "one extra on a ring" 1 (List.length extra)

let test_erdos_renyi () =
  let g = Prng.of_int 42 in
  let edges = Static.erdos_renyi g ~n:20 ~p:0.2 in
  Alcotest.(check bool) "connected" true (Static.is_connected ~n:20 edges);
  Alcotest.(check bool) "normalized" true (List.for_all (fun (u, v) -> u < v) edges)

let test_random_geometric () =
  let g = Prng.of_int 43 in
  let points, edges = Static.random_geometric g ~n:25 ~radius:0.2 in
  Alcotest.(check int) "point per node" 25 (Array.length points);
  Alcotest.(check bool) "connected (radius grown if needed)" true
    (Static.is_connected ~n:25 edges);
  Array.iter
    (fun (x, y) ->
      Alcotest.(check bool) "in unit square" true (x >= 0. && x < 1. && y >= 0. && y < 1.))
    points

let prop_generators_connected =
  QCheck.Test.make ~name:"all generators yield connected graphs" ~count:50
    QCheck.(int_range 4 40)
    (fun n ->
      let n4 = (n + 3) / 4 * 4 in
      Static.is_connected ~n (Static.path n)
      && Static.is_connected ~n (Static.ring n)
      && Static.is_connected ~n (Static.star n)
      && Static.is_connected ~n (Static.binary_tree n)
      && Static.is_connected ~n:n4 (Static.grid ~rows:4 ~cols:(n4 / 4)))

let prop_path_diameter =
  QCheck.Test.make ~name:"path diameter is n-1" ~count:30
    QCheck.(int_range 2 40)
    (fun n -> Static.diameter ~n (Static.path n) = n - 1)

let suite =
  [
    case "path" test_path;
    case "ring" test_ring;
    case "star" test_star;
    case "complete" test_complete;
    case "grid" test_grid;
    case "binary tree" test_binary_tree;
    case "distances" test_distances;
    case "disconnected handling" test_disconnected;
    case "spanning tree" test_spanning_tree;
    case "erdos-renyi" test_erdos_renyi;
    case "random geometric" test_random_geometric;
    QCheck_alcotest.to_alcotest prop_generators_connected;
    QCheck_alcotest.to_alcotest prop_path_diameter;
  ]
