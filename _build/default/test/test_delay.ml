module Delay = Dsim.Delay
module Prng = Dsim.Prng

let case name f = Alcotest.test_case name `Quick f

let feq = Alcotest.float 1e-9

let draw (d : Delay.t) ~src ~dst ~now = d.Delay.draw ~src ~dst ~now

let test_constant () =
  let d = Delay.constant ~bound:2. 1.5 in
  Alcotest.check feq "value" 1.5 (draw d ~src:0 ~dst:1 ~now:0.);
  Alcotest.check feq "bound" 2. d.Delay.bound

let test_zero_and_maximal () =
  let z = Delay.zero ~bound:3. and m = Delay.maximal ~bound:3. in
  Alcotest.check feq "zero" 0. (draw z ~src:0 ~dst:1 ~now:5.);
  Alcotest.check feq "maximal" 3. (draw m ~src:0 ~dst:1 ~now:5.)

let test_constant_validation () =
  Alcotest.check_raises "delay above bound"
    (Invalid_argument "Delay.constant: delay out of range") (fun () ->
      ignore (Delay.constant ~bound:1. 2.));
  Alcotest.check_raises "negative bound"
    (Invalid_argument "Delay: bound must be finite and non-negative") (fun () ->
      ignore (Delay.constant ~bound:(-1.) 0.))

let test_uniform_in_bounds () =
  let d = Delay.uniform (Prng.of_int 1) ~bound:2. in
  for _ = 1 to 500 do
    let v = draw d ~src:0 ~dst:1 ~now:0. in
    Alcotest.(check bool) "within [0, 2]" true (v >= 0. && v <= 2.)
  done

let test_uniform_in_subrange () =
  let d = Delay.uniform_in (Prng.of_int 2) ~bound:2. ~lo:0.5 ~hi:1.0 in
  for _ = 1 to 500 do
    let v = draw d ~src:0 ~dst:1 ~now:0. in
    Alcotest.(check bool) "within [0.5, 1.0]" true (v >= 0.5 && v <= 1.0)
  done;
  Alcotest.check_raises "bad range"
    (Invalid_argument "Delay.uniform_in: range out of bounds") (fun () ->
      ignore (Delay.uniform_in (Prng.of_int 3) ~bound:1. ~lo:0.5 ~hi:1.5))

let test_directed () =
  let d =
    Delay.directed ~bound:1. (fun ~src ~dst ~now:_ ->
        if src < dst then 1. else 0.)
  in
  Alcotest.check feq "uphill" 1. (draw d ~src:0 ~dst:5 ~now:0.);
  Alcotest.check feq "downhill" 0. (draw d ~src:5 ~dst:0 ~now:0.)

let test_per_edge_mask () =
  let default = Delay.zero ~bound:1. in
  let d =
    Delay.per_edge ~bound:1. ~default (function (0, 1) -> Some 0.75 | _ -> None)
  in
  Alcotest.check feq "constrained edge 0->1" 0.75 (draw d ~src:0 ~dst:1 ~now:0.);
  Alcotest.check feq "constrained edge 1->0 (normalized)" 0.75 (draw d ~src:1 ~dst:0 ~now:0.);
  Alcotest.check feq "unconstrained uses default" 0. (draw d ~src:2 ~dst:3 ~now:0.)

let test_lossy () =
  let base = Delay.constant ~bound:1. 0.5 in
  Alcotest.(check bool) "reliable policies never drop" false
    (base.Delay.drop ~src:0 ~dst:1 ~now:0.);
  let lossy = Delay.lossy (Prng.of_int 9) ~rate:0.3 base in
  let drops = ref 0 in
  let n = 10_000 in
  for _ = 1 to n do
    if lossy.Delay.drop ~src:0 ~dst:1 ~now:0. then incr drops
  done;
  let fraction = float_of_int !drops /. float_of_int n in
  Alcotest.(check bool) "drop fraction near the rate" true
    (Float.abs (fraction -. 0.3) < 0.03);
  Alcotest.check feq "delays unchanged" 0.5 (draw lossy ~src:0 ~dst:1 ~now:0.);
  Alcotest.check_raises "rate 1 rejected"
    (Invalid_argument "Delay.lossy: rate must be in [0, 1)") (fun () ->
      ignore (Delay.lossy (Prng.of_int 1) ~rate:1. base))

let test_lossy_composes () =
  let base = Delay.zero ~bound:1. in
  let once = Delay.lossy (Prng.of_int 2) ~rate:0.5 base in
  let twice = Delay.lossy (Prng.of_int 3) ~rate:0.5 once in
  let drops = ref 0 in
  let n = 10_000 in
  for _ = 1 to n do
    if twice.Delay.drop ~src:0 ~dst:1 ~now:0. then incr drops
  done;
  (* 1 - 0.5 * 0.5 = 0.75 combined drop probability *)
  let fraction = float_of_int !drops /. float_of_int n in
  Alcotest.(check bool) "stacked loss compounds" true (Float.abs (fraction -. 0.75) < 0.03)

let suite =
  [
    case "constant" test_constant;
    case "lossy wrapper" test_lossy;
    case "lossy composes" test_lossy_composes;
    case "zero and maximal" test_zero_and_maximal;
    case "constant validation" test_constant_validation;
    case "uniform bounds" test_uniform_in_bounds;
    case "uniform_in subrange" test_uniform_in_subrange;
    case "directed policy" test_directed;
    case "per-edge mask" test_per_edge_mask;
  ]
