module Plot = Analysis.Plot

let case name f = Alcotest.test_case name `Quick f

let contains haystack needle =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  nl = 0 || go 0

let ramp = List.init 50 (fun i -> (float_of_int i, float_of_int i *. 2.))

let test_empty () =
  Alcotest.(check string) "empty" "(empty plot)\n" (Plot.render []);
  Alcotest.(check string) "series with no points" "(empty plot)\n"
    (Plot.render [ ("a", []) ]);
  Alcotest.(check string) "empty sparkline" "" (Plot.sparkline [])

let test_render_dimensions () =
  let out = Plot.render_one ~width:40 ~height:8 ramp in
  let lines = String.split_on_char '\n' out in
  (* 8 canvas rows + axis + x labels (+ trailing empty) *)
  Alcotest.(check bool) "at least 10 lines" true (List.length lines >= 10);
  List.iteri
    (fun i line ->
      if i < 8 then
        Alcotest.(check bool) "canvas width bounded" true (String.length line <= 52))
    lines

let test_render_extremes_labelled () =
  let out = Plot.render_one ramp in
  Alcotest.(check bool) "max label" true (contains out "98");
  Alcotest.(check bool) "min label" true (contains out "0")

let test_corner_glyphs () =
  let out = Plot.render_one ~width:20 ~height:5 ramp in
  let lines = String.split_on_char '\n' out in
  let first = List.nth lines 0 and last = List.nth lines 4 in
  (* Increasing ramp: a point in the top-right and bottom-left. *)
  Alcotest.(check bool) "top row has the max point" true (contains first "*");
  Alcotest.(check bool) "bottom row has the min point" true (contains last "*")

let test_multi_series_legend () =
  let out = Plot.render [ ("alpha", ramp); ("beta", List.map (fun (x, y) -> (x, -.y)) ramp) ] in
  Alcotest.(check bool) "legend alpha" true (contains out "* = alpha");
  Alcotest.(check bool) "legend beta" true (contains out "+ = beta")

let test_flat_series () =
  let flat = List.init 10 (fun i -> (float_of_int i, 3.)) in
  let out = Plot.render_one flat in
  Alcotest.(check bool) "renders without dividing by zero" true (String.length out > 0)

let test_sparkline () =
  let s = Plot.sparkline ~width:10 ramp in
  Alcotest.(check int) "width" 10 (String.length s);
  Alcotest.(check bool) "low start" true (s.[0] = ' ' || s.[0] = '_');
  Alcotest.(check bool) "high end" true (s.[9] = '#')

let suite =
  [
    case "empty inputs" test_empty;
    case "render dimensions" test_render_dimensions;
    case "extremes labelled" test_render_extremes_labelled;
    case "corner glyphs" test_corner_glyphs;
    case "multi-series legend" test_multi_series_legend;
    case "flat series" test_flat_series;
    case "sparkline" test_sparkline;
  ]
