module Subseq = Lowerbound.Subseq

let case name f = Alcotest.test_case name `Quick f

let test_simple_ramp () =
  (* 0,1,2,...,10 with d=1, c=3: gaps must land in [2,3]. *)
  let values = Array.init 11 float_of_int in
  let selected = Subseq.extract ~values ~c:3. ~d:1. in
  Alcotest.(check bool) "starts at 0" true (List.hd selected = 0);
  Alcotest.(check bool) "gap property" true (Subseq.check_gaps ~values ~c:3. ~d:1. selected);
  (* m <= (x_N - x_0)/(c-d) + 1 = 10/2 + 1 = 6 *)
  Alcotest.(check bool) "length bound" true (List.length selected <= 6)

let test_non_monotone_profile () =
  (* A tent: rises then falls back; last >= first still required. *)
  let values = [| 0.; 1.; 2.; 3.; 4.; 3.; 2.; 3.; 4.; 5. |] in
  let selected = Subseq.extract ~values ~c:2.5 ~d:1. in
  Alcotest.(check bool) "gap property" true
    (Subseq.check_gaps ~values ~c:2.5 ~d:1. selected);
  Alcotest.(check bool) "indices increasing" true
    (let rec incr = function
       | a :: (b :: _ as rest) -> a < b && incr rest
       | _ -> true
     in
     incr selected)

let test_flat_sequence () =
  (* No gaps >= c - d exist: only the first index is selected. *)
  let values = [| 1.; 1.; 1.; 1. |] in
  let selected = Subseq.extract ~values ~c:2. ~d:0.5 in
  Alcotest.(check (list int)) "only the start" [ 0 ] selected

let test_preconditions () =
  (match Subseq.extract ~values:[| 1. |] ~c:2. ~d:1. with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "singleton accepted");
  (match Subseq.extract ~values:[| 0.; 1. |] ~c:1. ~d:1. with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "c = d accepted");
  (match Subseq.extract ~values:[| 5.; 0. |] ~c:2. ~d:1. with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "decreasing endpoints accepted (gap 5 > d anyway)");
  match Subseq.extract ~values:[| 0.; 5. |] ~c:7. ~d:6. with
  | exception Invalid_argument _ -> Alcotest.fail "valid input rejected"
  | _ -> ()

(* Lemma 4.3 as a property: on any bounded-increment sequence with
   x_0 <= x_last, the extraction satisfies both conclusions. *)
let bounded_walk_gen =
  QCheck.Gen.(
    let* n = int_range 2 60 in
    let* steps = list_repeat (n - 1) (float_range (-1.) 1.) in
    let values = Array.make n 0. in
    List.iteri (fun i s -> values.(i + 1) <- values.(i) +. s) steps;
    (* Enforce x_0 <= x_last by mirroring if needed. *)
    let values =
      if values.(n - 1) >= values.(0) then values
      else Array.map (fun v -> -.v) values
    in
    return values)

let prop_lemma_4_3 =
  QCheck.Test.make ~name:"Lemma 4.3 conclusions hold" ~count:300
    (QCheck.make bounded_walk_gen)
    (fun values ->
      let d = 1.0 and c = 2.5 in
      let selected = Lowerbound.Subseq.extract ~values ~c ~d in
      let n = Array.length values in
      let m = List.length selected in
      Lowerbound.Subseq.check_gaps ~values ~c ~d selected
      && float_of_int m
         <= ((values.(n - 1) -. values.(0)) /. (c -. d)) +. 1. +. 1e-9
      && List.hd selected = 0)

let suite =
  [
    case "simple ramp" test_simple_ramp;
    case "tent profile" test_non_monotone_profile;
    case "flat sequence" test_flat_sequence;
    case "preconditions" test_preconditions;
    QCheck_alcotest.to_alcotest prop_lemma_4_3;
  ]
