type t = { mutable value : float; mutable anchor : float }

let create ~value ~anchor = { value; anchor }

let get e ~at = e.value +. (at -. e.anchor)

let set e ~at x =
  e.value <- x;
  e.anchor <- at

let raise_to e ~at x =
  let current = get e ~at in
  if x > current then begin
    set e ~at x;
    true
  end
  else false
