(** Convenience constructors for whole-network hardware-clock assignments.

    Every produced array satisfies the drift bound of the given parameter
    set ([Hwclock.within_drift ~rho]). *)

type spec =
  | Perfect
      (** everyone at rate 1 — isolates algorithmic skew from drift *)
  | Split_extremes
      (** first half at [1+rho], second half at [1-rho] — maximizes
          steady-state relative drift across the network *)
  | Gradient_rates
      (** node [i]'s rate interpolates linearly from [1+rho] to [1-rho] —
          a drift gradient along node ids *)
  | Alternating of float
      (** every node flips between [1±rho] with the given period; odd
          nodes start in the opposite phase *)
  | Random_walk of float
      (** independent random piecewise rates, mean segment length as
          given *)
  | Custom of (int -> Dsim.Hwclock.t)

val assign :
  Params.t -> horizon:float -> seed:int -> spec -> Dsim.Hwclock.t array
(** Clock per node. [horizon] bounds the time-varying patterns (beyond it
    they run at rate 1); [seed] drives [Random_walk]. *)
