(** The weighted-graph view of Section 7.

    The paper closes by reinterpreting the tolerance function as a dynamic
    edge weight: "each edge carries a weight, which starts out very large
    when the edge first appears and decreases over time. We use the
    dynamic weights to gradually decrease the effective diameter of the
    graph." This module materializes that view from live node states: the
    weight of edge {u, v} is the larger of the two endpoints' current
    tolerances [B^v_u], i.e. the skew both sides are currently willing to
    tolerate, and the {e effective diameter} is the weighted diameter
    under those weights. A freshly inserted shortcut starts heavy
    (weight ≈ B(0) > 5 G(n)) and anneals to [B0], shrinking the effective
    diameter continuously instead of abruptly. *)

val edge_weight : Node.t array -> int -> int -> float option
(** Current weight of edge {u, v}: [max(B^v_u, B^u_v)] if each endpoint
    has the other in Γ. *)

val weighted_edges :
  Node.t array -> (int * int) list -> ((int * int) * float) list
(** Weights for the given edges; edges not yet in both Γ sets get the
    birth weight [B(0)] of the first node's tolerance — conservative, as
    the algorithm itself would. *)

val distances : n:int -> ((int * int) * float) list -> int -> float array
(** Dijkstra over weighted edges; [infinity] when unreachable. *)

val effective_diameter : n:int -> ((int * int) * float) list -> float
(** Max over sources of the max finite weighted distance; [infinity] if
    the graph is disconnected. *)

val hop_diameter_weight : Params.t -> int -> float
(** [B0 * hops]: the weight a fully annealed path of the given hop count
    converges to — the natural yardstick for {!effective_diameter}. *)
