type t = {
  n : int;
  rho : float;
  delay_bound : float;
  discovery_bound : float;
  delta_h : float;
  b0 : float;
}

let delta_t p = p.delay_bound +. (p.delta_h /. (1. -. p.rho))

let delta_t' p = (1. +. p.rho) *. delta_t p

let tau p =
  ((1. +. p.rho) /. (1. -. p.rho) *. delta_t p) +. p.delay_bound +. p.discovery_bound

let min_b0 p = 2. *. (1. +. p.rho) *. tau p

let global_skew_bound p =
  (((1. +. p.rho) *. p.delay_bound) +. (2. *. p.rho *. p.discovery_bound))
  *. float_of_int (p.n - 1)

let w p = ((4. *. global_skew_bound p /. p.b0) +. 1.) *. tau p

(* The B(0) intercept is 5G + (1+rho)tau + B0; the slope is B0 per
   (1+rho)tau of subjective time (Section 5). *)
let b p dt =
  let unit = (1. +. p.rho) *. tau p in
  Float.max p.b0
    ((5. *. global_skew_bound p) +. unit +. p.b0 -. (p.b0 *. dt /. unit))

let stabilize_subjective p =
  let unit = (1. +. p.rho) *. tau p in
  ((5. *. global_skew_bound p) +. unit) *. unit /. p.b0

let stabilize_real p =
  (stabilize_subjective p /. (1. -. p.rho)) +. delta_t p +. p.discovery_bound +. w p

let dynamic_local_skew p dt =
  let age = Float.max ((1. -. p.rho) *. (dt -. delta_t p -. p.discovery_bound -. w p)) 0. in
  b p age +. (2. *. p.rho *. w p)

let stable_local_skew p = p.b0 +. (2. *. p.rho *. w p)

let local_skew_subjective p dt_subj = b p dt_subj +. (2. *. p.rho *. w p)

let validate p =
  let err fmt = Format.kasprintf (fun s -> Error s) fmt in
  if p.n < 2 then err "n must be at least 2 (got %d)" p.n
  else if not (p.rho > 0. && p.rho <= 0.5) then
    err "rho must lie in (0, 1/2] (got %g); rate >= 1/2 requires rho <= 1/2" p.rho
  else if not (p.delay_bound > 0.) then err "delay bound T must be positive"
  else if not (p.delta_h > 0.) then err "delta_h must be positive"
  else if
    not (p.discovery_bound > Float.max p.delay_bound (p.delta_h /. (1. -. p.rho)))
  then
    err "discovery bound D = %g must exceed max(T, dH/(1-rho)) = %g" p.discovery_bound
      (Float.max p.delay_bound (p.delta_h /. (1. -. p.rho)))
  else if not (p.b0 > min_b0 p) then
    err "b0 = %g must exceed 2(1+rho)tau = %g" p.b0 (min_b0 p)
  else Ok ()

let make ?(rho = 0.05) ?(delay_bound = 1.0) ?discovery_bound ?(delta_h = 1.0) ?b0 ~n () =
  let discovery_bound =
    match discovery_bound with
    | Some d -> d
    | None -> 1.05 *. Float.max delay_bound (delta_h /. (1. -. rho)) +. 0.5
  in
  let provisional =
    { n; rho; delay_bound; discovery_bound; delta_h; b0 = infinity }
  in
  let b0 = match b0 with Some b -> b | None -> 2.5 *. min_b0 provisional in
  let p = { provisional with b0 } in
  match validate p with Ok () -> p | Error msg -> invalid_arg ("Params.make: " ^ msg)

let pp fmt p =
  Format.fprintf fmt
    "@[<v>n=%d rho=%g T=%g D=%g dH=%g B0=%g@,\
     dT=%g dT'=%g tau=%g@,\
     G(n)=%g W=%g B(0)=%g@,\
     stable local skew=%g stabilize(subj)=%g stabilize(real)=%g@]"
    p.n p.rho p.delay_bound p.discovery_bound p.delta_h p.b0 (delta_t p) (delta_t' p)
    (tau p) (global_skew_bound p) (w p) (b p 0.) (stable_local_skew p)
    (stabilize_subjective p) (stabilize_real p)
