let edge_weight nodes u v =
  match (Node.peer_tolerance nodes.(u) v, Node.peer_tolerance nodes.(v) u) with
  | Some a, Some b -> Some (Float.max a b)
  | Some _, None | None, Some _ | None, None -> None

let weighted_edges nodes edges =
  List.map
    (fun (u, v) ->
      let w =
        match edge_weight nodes u v with
        | Some w -> w
        | None ->
          (* Not yet (mutually) in Gamma: the edge is as heavy as a
             newborn one. *)
          Params.b (Node.params_of nodes.(u)) 0.
      in
      ((u, v), w))
    edges

let distances ~n weighted src =
  let adj = Array.make n [] in
  List.iter
    (fun ((u, v), w) ->
      adj.(u) <- (v, w) :: adj.(u);
      adj.(v) <- (u, w) :: adj.(v))
    weighted;
  let dist = Array.make n infinity in
  let visited = Array.make n false in
  dist.(src) <- 0.;
  (* Simple O(n^2) Dijkstra: the graphs here are small. *)
  for _ = 1 to n do
    let best = ref (-1) in
    for i = 0 to n - 1 do
      if (not visited.(i)) && (!best = -1 || dist.(i) < dist.(!best)) then best := i
    done;
    let u = !best in
    if u >= 0 && dist.(u) < infinity then begin
      visited.(u) <- true;
      List.iter
        (fun (v, w) -> if dist.(u) +. w < dist.(v) then dist.(v) <- dist.(u) +. w)
        adj.(u)
    end
  done;
  dist

let effective_diameter ~n weighted =
  let worst = ref 0. in
  for src = 0 to n - 1 do
    Array.iter (fun d -> if d > !worst then worst := d) (distances ~n weighted src)
  done;
  !worst

let hop_diameter_weight params hops = params.Params.b0 *. float_of_int hops
