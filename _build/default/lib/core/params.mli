(** Algorithm and model parameters, with every derived quantity of
    Sections 5-6 of the paper.

    Notation mapping (paper -> here):
    - [rho]: maximum hardware clock drift,
    - [T -> delay_bound]: maximum message delay,
    - [D -> discovery_bound]: maximum time to discover a topology change,
    - [ΔH -> delta_h]: subjective time between update broadcasts,
    - [B0 -> b0]: target stable local skew parameter. *)

type t = private {
  n : int;  (** number of nodes (known to all nodes, Section 5) *)
  rho : float;
  delay_bound : float;
  discovery_bound : float;
  delta_h : float;
  b0 : float;
}

val make :
  ?rho:float ->
  ?delay_bound:float ->
  ?discovery_bound:float ->
  ?delta_h:float ->
  ?b0:float ->
  n:int ->
  unit ->
  t
(** Build a parameter set, raising [Invalid_argument] if the paper's
    well-formedness constraints are violated:
    [0 < rho <= 1/2] (so logical clocks run at rate >= 1/2),
    [delay_bound > 0], [delta_h > 0],
    [discovery_bound > max(delay_bound, delta_h /. (1 -. rho))]
    (Section 3.2/5), and [b0 > 2 (1+rho) tau] (Section 5).

    Defaults: [rho = 0.05], [delay_bound = 1.0], [delta_h = 1.0],
    [discovery_bound] just above its lower bound, and [b0] = 2.5x its
    lower bound. *)

val validate : t -> (unit, string) result

(** {1 Derived quantities} *)

val delta_t : t -> float
(** [ΔT = T + ΔH/(1-rho)]: the longest real time between receipts of two
    messages on a live edge. *)

val delta_t' : t -> float
(** [ΔT' = (1+rho) ΔT]: the subjective timeout after which a silent
    neighbour is dropped from Γ. *)

val tau : t -> float
(** [τ = (1+rho)/(1-rho) ΔT + T + D]: the staleness bound of neighbour
    estimates (Property 6.1). *)

val min_b0 : t -> float
(** [2 (1+rho) τ], the paper's lower bound on admissible [b0]. *)

val global_skew_bound : t -> float
(** [G(n) = ((1+rho) T + 2 rho D)(n-1)] (Theorem 6.9). *)

val w : t -> float
(** [W = (4 G(n)/B0 + 1) τ] (Lemma 6.10): how long an edge must have been
    in Γ before its constraint can block a node. *)

val b : t -> float -> float
(** [b p dt] is the tolerance function
    [B(Δt) = max{B0, 5G(n) + (1+rho)τ + B0 - B0 Δt/((1+rho)τ)}] of a
    subjective edge age [Δt] (Section 5). Non-increasing; equals [B0] for
    [Δt >= stabilize_subjective p]. *)

val stabilize_subjective : t -> float
(** Subjective edge age at which [b] first reaches [b0]:
    [(5G(n) + (1+rho)τ) (1+rho)τ / B0]. Θ(n/B0) — the trade-off of
    Corollary 6.14. *)

val stabilize_real : t -> float
(** Real edge age after which the dynamic local skew (Corollary 6.13) has
    converged to its stable value:
    [stabilize_subjective /. (1-rho) + ΔT + D + W]. *)

val dynamic_local_skew : t -> float -> float
(** [dynamic_local_skew p dt] is Corollary 6.13's skew function
    [s(n, Δt) = B(max{(1-rho)(Δt - ΔT - D - W), 0}) + 2 rho W] —
    the guaranteed bound on the skew of an edge that has existed for [dt]
    real time, regardless of its initial skew. *)

val stable_local_skew : t -> float
(** [lim_{dt -> ∞} dynamic_local_skew p dt = B0 + 2 rho W]. *)

val local_skew_subjective : t -> float -> float
(** Theorem 6.12's bound in terms of [B^v_u]: [B(Δt_subj - ...) + 2 rho W]
    evaluated directly on a subjective age; used by per-edge envelope
    checks where the node's own view of edge age is available. *)

val pp : Format.formatter -> t -> unit
(** Print the parameter set and all derived quantities. *)
