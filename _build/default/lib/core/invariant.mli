(** Runtime validity monitors for the logical-clock requirements of
    Section 3.3 and Property 6.3.

    Between consecutive probes at times [t1 < t2] every node must satisfy:
    - monotonicity / minimum rate: [L(t2) - L(t1) >= rate_floor (t2 - t1)]
      (the paper mandates [rate_floor = 1/2]; the algorithm actually
      achieves [1 - rho]);
    - maximum estimate dominance: [Lmax(t) >= L(t)]. *)

type violation = { time : float; node : int; kind : string; detail : string }

type monitor

val attach :
  (Proto.message, Proto.timer) Dsim.Engine.t ->
  Metrics.view ->
  every:float ->
  until:float ->
  ?rate_floor:float ->
  unit ->
  monitor
(** [rate_floor] defaults to [0.5]. *)

val violations : monitor -> violation list

val ok : monitor -> bool

val probes : monitor -> int

val pp_violation : Format.formatter -> violation -> unit
