lib/core/baseline_max.ml: Dsim Estimate Int Params Proto Set
