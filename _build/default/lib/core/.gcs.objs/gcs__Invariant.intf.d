lib/core/invariant.mli: Dsim Format Metrics Proto
