lib/core/invariant.ml: Array Dsim Format List Metrics Printf
