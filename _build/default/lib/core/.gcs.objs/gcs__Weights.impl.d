lib/core/weights.ml: Array Float List Node Params
