lib/core/sim.mli: Dsim Metrics Node Params Proto
