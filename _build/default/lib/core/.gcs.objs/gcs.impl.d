lib/core/gcs.ml: Baseline_max Drift Estimate Hetero Invariant Metrics Node Params Proto Sim Weights
