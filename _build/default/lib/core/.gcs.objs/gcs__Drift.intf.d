lib/core/drift.mli: Dsim Params
