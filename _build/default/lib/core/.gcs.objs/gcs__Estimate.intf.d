lib/core/estimate.mli:
