lib/core/metrics.mli: Dsim Proto
