lib/core/node.mli: Params Proto
