lib/core/baseline_max.mli: Params Proto
