lib/core/weights.mli: Node Params
