lib/core/estimate.ml:
