lib/core/hetero.mli: Dsim Metrics Node Params Proto
