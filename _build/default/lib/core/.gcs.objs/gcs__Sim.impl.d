lib/core/sim.ml: Array Baseline_max Dsim Metrics Node Params Printf Proto
