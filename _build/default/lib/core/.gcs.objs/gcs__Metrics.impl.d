lib/core/metrics.ml: Dsim Float Hashtbl List
