lib/core/proto.ml: Dsim Format
