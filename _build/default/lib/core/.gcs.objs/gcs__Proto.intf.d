lib/core/proto.mli: Dsim Format
