lib/core/drift.ml: Array Dsim Params
