lib/core/node.ml: Dsim Estimate Float Hashtbl Int List Option Params Proto Set
