lib/core/hetero.ml: Array Dsim Float Hashtbl List Metrics Node Option Params Printf
