(** A register that drifts at the owning node's hardware-clock rate.

    The paper's node variables [L_u], [Lmax_u] and [L^v_u] all "increase at
    the rate of u's hardware clock" between discrete events. We represent
    such a variable by its value at an anchor hardware-clock reading; its
    value at hardware time [h] is [value + (h - anchor)]. All operations
    take the current hardware clock reading [at]. *)

type t

val create : value:float -> anchor:float -> t

val get : t -> at:float -> float

val set : t -> at:float -> float -> unit
(** Discrete assignment at hardware time [at]. *)

val raise_to : t -> at:float -> float -> bool
(** [raise_to e ~at x] sets the register to [max current x]; returns
    [true] iff it increased (a discrete jump happened). *)
