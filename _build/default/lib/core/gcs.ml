(** Gradient clock synchronization in dynamic networks — the algorithm,
    baselines, analysis-side bounds and measurement tools of Kuhn, Locher
    & Oshman (SPAA 2009).

    Start with {!Params} (every derived bound of Sections 5-6), then
    {!Sim} to assemble and run a network. {!Node} is Algorithm 2 itself;
    {!Metrics} and {!Invariant} measure executions; {!Hetero} and
    {!Weights} implement the Section 7 extensions. *)

module Params = Params
(** Model/algorithm parameters and every derived quantity: ΔT, τ, G(n),
    W, B(Δt), the dynamic local skew envelope, stabilization times. *)

module Proto = Proto
(** The wire protocol: update messages [⟨L, Lmax⟩] and timer labels. *)

module Estimate = Estimate
(** Registers drifting at the owner's hardware-clock rate. *)

module Node = Node
(** Algorithm 2: the dynamic gradient clock synchronization node. *)

module Baseline_max = Baseline_max
(** Max-propagation baseline (the Section 1 strawman). *)

module Drift = Drift
(** Whole-network hardware-clock assignments (drift patterns). *)

module Metrics = Metrics
(** Global/local skew queries and periodic recorders. *)

module Invariant = Invariant
(** Validity monitors: monotone clocks, rate >= 1/2, L <= Lmax. *)

module Sim = Sim
(** One-call simulation assembly over any of the three algorithms. *)

module Hetero = Hetero
(** Section 7 extension: per-link delay bounds with scaled tolerances. *)

module Weights = Weights
(** Section 7 extension: the weighted-graph view and effective
    diameter. *)
