module Hwclock = Dsim.Hwclock
module Prng = Dsim.Prng

type spec =
  | Perfect
  | Split_extremes
  | Gradient_rates
  | Alternating of float
  | Random_walk of float
  | Custom of (int -> Hwclock.t)

let assign params ~horizon ~seed spec =
  let n = params.Params.n in
  let rho = params.Params.rho in
  let clock_for i =
    match spec with
    | Perfect -> Hwclock.perfect
    | Split_extremes -> if i < n / 2 then Hwclock.fastest ~rho else Hwclock.slowest ~rho
    | Gradient_rates ->
      let frac = if n = 1 then 0. else float_of_int i /. float_of_int (n - 1) in
      Hwclock.constant (1. +. rho -. (2. *. rho *. frac))
    | Alternating period ->
      Hwclock.two_rate ~rho ~period ~horizon ~fast_first:(i mod 2 = 0)
    | Random_walk segment_mean ->
      let prng = Prng.of_int (seed + (7919 * i)) in
      Hwclock.random_walk prng ~rho ~segment_mean ~horizon
    | Custom f -> f i
  in
  Array.init n clock_for
