module Edge_map = Map.Make (struct
  type t = int * int

  let compare = compare
end)

type t = float Edge_map.t

let create pairs =
  List.fold_left
    (fun acc ((u, v), d) ->
      if d < 0. then invalid_arg "Mask.create: negative delay";
      Edge_map.add (Dsim.Dyngraph.normalize u v) d acc)
    Edge_map.empty pairs

let empty = Edge_map.empty

let delay m u v = Edge_map.find_opt (Dsim.Dyngraph.normalize u v) m

let is_constrained m u v = Edge_map.mem (Dsim.Dyngraph.normalize u v) m

let constrained_edges m = List.map fst (Edge_map.bindings m)

(* 0-1 BFS with a deque: constrained edges have weight 0. *)
let flexible_distances m ~n ~edges u =
  let adj = Array.make n [] in
  List.iter
    (fun (x, y) ->
      let w = if is_constrained m x y then 0 else 1 in
      adj.(x) <- (y, w) :: adj.(x);
      adj.(y) <- (x, w) :: adj.(y))
    edges;
  let dist = Array.make n max_int in
  dist.(u) <- 0;
  (* Simple two-list deque. *)
  let front = ref [ u ] and back = ref [] in
  let push_front x = front := x :: !front in
  let push_back x = back := x :: !back in
  let pop () =
    match !front with
    | x :: rest ->
      front := rest;
      Some x
    | [] -> (
      match List.rev !back with
      | [] -> None
      | x :: rest ->
        front := rest;
        back := [];
        Some x)
  in
  let rec loop () =
    match pop () with
    | None -> ()
    | Some x ->
      List.iter
        (fun (y, w) ->
          if dist.(x) + w < dist.(y) then begin
            dist.(y) <- dist.(x) + w;
            if w = 0 then push_front y else push_back y
          end)
        adj.(x);
      loop ()
  in
  loop ();
  dist

let flexible_distance m ~n ~edges u v = (flexible_distances m ~n ~edges u).(v)
