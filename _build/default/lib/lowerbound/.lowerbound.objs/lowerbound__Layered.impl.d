lib/lowerbound/layered.ml: Array Dsim Float List Mask Stdlib
