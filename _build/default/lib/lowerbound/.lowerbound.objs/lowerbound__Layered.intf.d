lib/lowerbound/layered.mli: Dsim Mask
