lib/lowerbound/mask.mli:
