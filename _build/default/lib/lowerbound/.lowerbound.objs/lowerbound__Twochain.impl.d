lib/lowerbound/twochain.ml: Dsim List Mask
