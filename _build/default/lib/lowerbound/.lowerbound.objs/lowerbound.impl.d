lib/lowerbound/lowerbound.ml: Layered Mask Subseq Twochain
