lib/lowerbound/subseq.mli:
