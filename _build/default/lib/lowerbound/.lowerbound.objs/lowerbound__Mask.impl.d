lib/lowerbound/mask.ml: Array Dsim List Map
