lib/lowerbound/subseq.ml: Array Float List
