lib/lowerbound/twochain.mli: Mask
