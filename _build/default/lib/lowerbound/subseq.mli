(** The subsequence extraction of Lemma 4.3.

    Given [x_0, ..., x_{N-1}] with [x_0 <= x_{N-1}] and
    [|x_i - x_{i+1}| <= d], and a target gap [c > d], returns indices
    [i_1 < ... < i_m] such that every consecutive pair satisfies
    [x_{i_{j+1}} - x_{i_j} ∈ [c - d, c]] and
    [m <= (x_{N-1} - x_0)/(c - d) + 1].

    In the lower-bound construction the [x_i] are the logical clocks along
    the B-chain, [d] is the stable local skew [S], and [c] the desired
    initial skew [I]: the new edges of execution β are drawn between
    consecutive selected nodes. *)

val extract : values:float array -> c:float -> d:float -> int list
(** The selected indices [i_1 .. i_m], in increasing order (starts with
    0). Raises [Invalid_argument] if the preconditions fail. *)

val check_gaps : values:float array -> c:float -> d:float -> int list -> bool
(** Do all consecutive selected pairs have gaps in [\[c - d, c\]]? *)
