(** The lower-bound constructions of Section 4: delay masks, the
    indistinguishable executions of the Masking Lemma, the Lemma 4.3
    subsequence extraction and the Figure 1 two-chain network. *)

module Mask = Mask
(** Delay masks (Definition 4.1) and flexible distance
    (Definition 4.3). *)

module Subseq = Subseq
(** Lemma 4.3: bounded-gap subsequence extraction. *)

module Layered = Layered
(** Lemma 4.2: the executions alpha and beta, as clocks + delay
    policies. *)

module Twochain = Twochain
(** The Theorem 4.1 / Figure 1 network. *)
