(** The two-chain network of Figure 1 and Theorem 4.1.

    Nodes [w0] and [wn] are connected by two parallel chains:
    chain A with [floor(n/2) - 1] internal nodes and chain B with
    [ceil(n/2) - 1] internal nodes ([n] nodes in total). The designated
    nodes [u] and [v] sit on chain A at distance [k] from [w0] and [wn]
    respectively; the A-chain edges within distance [k] of either end form
    the blocked set [E_block], which the delay mask constrains to the
    maximal delay so that the Masking Lemma can build [Ω(n)] skew between
    [u] and [v] (and hence, up to [2 k S], between [w0] and [wn]). The new
    edges of execution β are then drawn between B-chain nodes selected by
    Lemma 4.3. *)

type t = private {
  n : int;
  k : int;
  a_len : int;  (** chain-A positions run 0..a_len; [a_len = floor(n/2)] *)
  b_len : int;  (** chain-B positions run 0..b_len; [b_len = ceil(n/2)] *)
  u : int;      (** node id of [u] (chain A, position [k]) *)
  v : int;      (** node id of [v] (chain A, position [a_len - k]) *)
  edges : (int * int) list;
  block : (int * int) list;  (** E_block *)
}

val build : n:int -> k:int -> t
(** Requires [n >= 6] and [1 <= k < a_len/2 - 1] so that [u] and [v] are
    distinct and separated. *)

val w0 : t -> int

val wn : t -> int

val a_id : t -> int -> int
(** Node id of chain-A position [0..a_len]. *)

val b_id : t -> int -> int
(** Node id of chain-B position [0..b_len]. *)

val b_chain : t -> int list
(** Chain-B node ids in order [w0, ..., wn]. *)

val a_chain : t -> int list

val mask : t -> delay:float -> Mask.t
(** The delay mask constraining [E_block] to the given fixed delay
    (Theorem 4.1 uses the maximal delay [T]). *)

val is_block_edge : t -> int -> int -> bool
