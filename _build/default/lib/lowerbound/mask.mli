(** Delay masks (Definition 4.1) and the flexible distance they induce
    (Definition 4.3).

    A mask constrains a subset of links to fixed message delays; the
    adversary of the Masking Lemma builds skew using only the unconstrained
    links. The [M]-flexible distance between two nodes is the minimum
    number of unconstrained edges on any path between them. *)

type t

val create : ((int * int) * float) list -> t
(** [(edge, delay)] pairs; endpoints are normalized. *)

val empty : t

val delay : t -> int -> int -> float option
(** The prescribed delay [P(e)] if the edge is constrained. *)

val is_constrained : t -> int -> int -> bool

val constrained_edges : t -> (int * int) list

val flexible_distances : t -> n:int -> edges:(int * int) list -> int -> int array
(** [flexible_distances m ~n ~edges u] gives [dist_M(u, x)] for every [x]:
    a 0-1 BFS where constrained edges cost 0 and unconstrained edges cost
    1. Unreachable nodes get [max_int]. *)

val flexible_distance : t -> n:int -> edges:(int * int) list -> int -> int -> int
