(** The two indistinguishable executions of the Masking Lemma (Lemma 4.2).

    Given a static network, a delay mask [M] and a reference node [u], the
    lemma partitions nodes into layers [L_i] by flexible distance from [u]
    and defines:

    - execution [alpha]: all hardware clocks run at rate 1; messages on a
      constrained edge take exactly [P(e)]; on an unconstrained edge from
      the lower to the higher layer they take [T], and [0] in the other
      direction;
    - execution [beta]: node [x] runs at rate [1+rho] until its hardware
      clock satisfies [H(t) = t + T·dist_M(u, x)] (i.e. until real time
      [T·dist_M(u, x)/rho]) and at rate 1 afterwards, so
      [H_x(t) = t + min(rho t, T·dist_M(u, x))] — equation (1) of the
      paper. Message delays in [beta] are chosen so that send/receive
      hardware-clock readings match [alpha] exactly, making the two
      executions indistinguishable to every node while remaining
      [M]-constrained.

    Running any deterministic DCSA in both executions therefore yields, at
    any time [t > T·dist_M(u, v)(1 + 1/rho)], a logical-clock skew of at
    least [T·dist_M(u, v)/4] between [u] and [v] in at least one of them. *)

type t

val prepare :
  n:int ->
  edges:(int * int) list ->
  mask:Mask.t ->
  source:int ->
  rho:float ->
  delay_bound:float ->
  t
(** Compute layers and the derived schedules. [delay_bound] is the model's
    [T]; every masked delay must lie in [\[0, T\]]. *)

val layer : t -> int -> int
(** [dist_M(source, x)]. *)

val depth : t -> int
(** [max_x dist_M(source, x)]. *)

val alpha_clocks : t -> Dsim.Hwclock.t array
(** All perfect. *)

val beta_clocks : t -> Dsim.Hwclock.t array

val alpha_delay_policy : t -> Dsim.Delay.t

val beta_delay_policy : t -> Dsim.Delay.t
(** Derived online from the alpha delays through the clock mapping. *)

val min_time : t -> int -> float
(** [min_time t v] is [T·dist_M(source, v)(1 + 1/rho)]: the lemma's
    earliest time at which the skew guarantee holds between the prepared
    source and [v]. *)

val guaranteed_skew : t -> int -> float
(** [guaranteed_skew t v] is [T·dist_M(source, v)/4], the skew the lemma
    guarantees between the source and [v] in at least one of the two
    executions. *)
