module Hwclock = Dsim.Hwclock
module Delay = Dsim.Delay

type t = {
  n : int;
  mask : Mask.t;
  layers : int array;
  rho : float;
  delay_bound : float;
  beta : Hwclock.t array;
}

let prepare ~n ~edges ~mask ~source ~rho ~delay_bound =
  if rho <= 0. then invalid_arg "Layered.prepare: rho must be positive";
  List.iter
    (fun (u, v) ->
      match Mask.delay mask u v with
      | Some d when d > delay_bound ->
        invalid_arg "Layered.prepare: masked delay exceeds the delay bound"
      | Some _ | None -> ())
    edges;
  let layers = Mask.flexible_distances mask ~n ~edges source in
  Array.iter
    (fun d ->
      if d = max_int then invalid_arg "Layered.prepare: network must be connected")
    layers;
  let beta =
    Array.init n (fun x ->
        (* H_x(t) = t + min(rho t, T . dist): rate 1+rho until
           t = T . dist / rho, rate 1 afterwards. *)
        let switch = delay_bound *. float_of_int layers.(x) /. rho in
        Hwclock.fast_until ~rho switch)
  in
  { n; mask; layers; rho; delay_bound; beta }

let layer t x = t.layers.(x)

let depth t = Array.fold_left Stdlib.max 0 t.layers

(* Alpha delays (all clocks perfect): constrained edges take P(e);
   unconstrained take T "uphill" (away from the source) and 0 "downhill". *)
let alpha_delay t ~src ~dst =
  match Mask.delay t.mask src dst with
  | Some p -> p
  | None -> if t.layers.(src) <= t.layers.(dst) then t.delay_bound else 0.

let alpha_clocks t = Array.init t.n (fun _ -> Hwclock.perfect)

let beta_clocks t = Array.copy t.beta

let alpha_delay_policy t =
  Delay.directed ~bound:t.delay_bound (fun ~src ~dst ~now ->
      ignore now;
      alpha_delay t ~src ~dst)

(* In beta, a message sent at real time s must be received at the real
   time r where the recipient's hardware clock shows what it showed in
   alpha at the alpha-receive time. Alpha clocks are perfect, so
   alpha-time equals hardware value: t_alpha_send = H^beta_src(s),
   t_alpha_recv = t_alpha_send + d_alpha, and
   r = (H^beta_dst)^{-1}(t_alpha_recv). *)
let beta_delay_policy t =
  Delay.directed ~bound:t.delay_bound (fun ~src ~dst ~now ->
      let alpha_send = Hwclock.value t.beta.(src) now in
      let alpha_recv = alpha_send +. alpha_delay t ~src ~dst in
      let recv = Hwclock.inverse t.beta.(dst) alpha_recv in
      Float.max 0. (recv -. now))

let min_time t v =
  t.delay_bound *. float_of_int t.layers.(v) *. (1. +. (1. /. t.rho))

let guaranteed_skew t v = t.delay_bound *. float_of_int t.layers.(v) /. 4.
