let check_preconditions ~values ~c ~d =
  let n = Array.length values in
  if n < 2 then invalid_arg "Subseq.extract: need at least two values";
  if not (c > d) then invalid_arg "Subseq.extract: need c > d";
  if not (d > 0.) then invalid_arg "Subseq.extract: need d > 0";
  if values.(0) > values.(n - 1) then
    invalid_arg "Subseq.extract: need x_0 <= x_{N-1} (reverse the chain)";
  Array.iteri
    (fun i x ->
      if i + 1 < n && Float.abs (x -. values.(i + 1)) > d +. 1e-9 then
        invalid_arg "Subseq.extract: adjacent gap exceeds d")
    values

(* Construction from the proof of Lemma 4.3: i_{j+1} is the smallest index
   l with i_j < l < N-1, x_l - x_{i_j} >= c - d and x_l <= x_{N-1}; if none
   exists the sequence jumps to N-1 and stops. *)
let extract ~values ~c ~d =
  check_preconditions ~values ~c ~d;
  let n = Array.length values in
  let last = n - 1 in
  let next ij =
    let rec scan l =
      if l >= last then last
      else if values.(l) -. values.(ij) >= c -. d && values.(l) <= values.(last) then l
      else scan (l + 1)
    in
    scan (ij + 1)
  in
  let rec build acc ij =
    let l = next ij in
    if l = last then List.rev acc else build (l :: acc) l
  in
  build [ 0 ] 0

let check_gaps ~values ~c ~d selected =
  let rec go = function
    | i :: (j :: _ as rest) ->
      let gap = values.(j) -. values.(i) in
      gap >= c -. d -. 1e-9 && gap <= c +. 1e-9 && go rest
    | [ _ ] | [] -> true
  in
  go selected
