type t = (float * float) list

let values s = List.map snd s

let after t s = List.filter (fun (time, _) -> time >= t) s

let between t1 t2 s = List.filter (fun (time, _) -> time >= t1 && time <= t2) s

let max_value s = List.fold_left (fun acc (_, v) -> Float.max acc v) neg_infinity s

let min_value s = List.fold_left (fun acc (_, v) -> Float.min acc v) infinity s

let value_at s t =
  let rec go best = function
    | (time, v) :: rest when time <= t -> go (Some v) rest
    | _ -> best
  in
  go None s

let last_above threshold s =
  List.fold_left
    (fun acc (time, v) -> if v > threshold then Some time else acc)
    None s

let first_below threshold s =
  List.find_opt (fun (_, v) -> v <= threshold) s |> Option.map fst

let settle_time ~threshold ~from s =
  let tail = after from s in
  match tail with
  | [] -> None
  | _ -> (
    match last_above threshold tail with
    | None -> Some 0.
    | Some t ->
      (* Still above at the very last sample: not settled. *)
      let last_time = fst (List.nth tail (List.length tail - 1)) in
      if t >= last_time then None else Some (t -. from))

let downsample ~every s =
  if every <= 0. then invalid_arg "Series.downsample: period must be positive";
  let rec go next = function
    | [] -> []
    | (time, v) :: rest ->
      if time >= next then (time, v) :: go (time +. every) rest else go next rest
  in
  go neg_infinity s
