(** Summary statistics over float samples. *)

type summary = {
  count : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  median : float;
  p95 : float;
}

val summarize : float list -> summary
(** Raises [Invalid_argument] on an empty list. *)

val mean : float list -> float

val stddev : float list -> float
(** Population standard deviation. *)

val percentile : float -> float list -> float
(** [percentile q xs] for [q] in [\[0, 1\]], linear interpolation between
    order statistics. *)

val minimum : float list -> float

val maximum : float list -> float

val linear_fit : (float * float) list -> float * float
(** Least-squares [(slope, intercept)]. Requires two or more points with
    distinct abscissae. *)

val correlation : (float * float) list -> float
(** Pearson correlation coefficient. *)

val pp_summary : Format.formatter -> summary -> unit
