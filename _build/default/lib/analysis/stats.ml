type summary = {
  count : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  median : float;
  p95 : float;
}

let check_non_empty name = function
  | [] -> invalid_arg (name ^ ": empty sample list")
  | xs -> xs

let mean xs =
  let xs = check_non_empty "Stats.mean" xs in
  List.fold_left ( +. ) 0. xs /. float_of_int (List.length xs)

let stddev xs =
  let xs = check_non_empty "Stats.stddev" xs in
  let m = mean xs in
  let var =
    List.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0. xs
    /. float_of_int (List.length xs)
  in
  sqrt var

let percentile q xs =
  let xs = check_non_empty "Stats.percentile" xs in
  if q < 0. || q > 1. then invalid_arg "Stats.percentile: q must be in [0, 1]";
  let sorted = Array.of_list (List.sort Float.compare xs) in
  let n = Array.length sorted in
  if n = 1 then sorted.(0)
  else begin
    let pos = q *. float_of_int (n - 1) in
    let lo = int_of_float (Float.floor pos) in
    let hi = Stdlib.min (lo + 1) (n - 1) in
    let frac = pos -. float_of_int lo in
    (sorted.(lo) *. (1. -. frac)) +. (sorted.(hi) *. frac)
  end

let minimum xs = List.fold_left Float.min infinity (check_non_empty "Stats.minimum" xs)

let maximum xs =
  List.fold_left Float.max neg_infinity (check_non_empty "Stats.maximum" xs)

let summarize xs =
  let xs = check_non_empty "Stats.summarize" xs in
  {
    count = List.length xs;
    mean = mean xs;
    stddev = stddev xs;
    min = minimum xs;
    max = maximum xs;
    median = percentile 0.5 xs;
    p95 = percentile 0.95 xs;
  }

let linear_fit points =
  if List.length points < 2 then invalid_arg "Stats.linear_fit: need two points";
  let n = float_of_int (List.length points) in
  let sx = List.fold_left (fun a (x, _) -> a +. x) 0. points in
  let sy = List.fold_left (fun a (_, y) -> a +. y) 0. points in
  let sxx = List.fold_left (fun a (x, _) -> a +. (x *. x)) 0. points in
  let sxy = List.fold_left (fun a (x, y) -> a +. (x *. y)) 0. points in
  let denom = (n *. sxx) -. (sx *. sx) in
  if Float.abs denom < 1e-12 then invalid_arg "Stats.linear_fit: degenerate abscissae";
  let slope = ((n *. sxy) -. (sx *. sy)) /. denom in
  let intercept = (sy -. (slope *. sx)) /. n in
  (slope, intercept)

let correlation points =
  if List.length points < 2 then invalid_arg "Stats.correlation: need two points";
  let xs = List.map fst points and ys = List.map snd points in
  let mx = mean xs and my = mean ys in
  let cov =
    List.fold_left (fun a (x, y) -> a +. ((x -. mx) *. (y -. my))) 0. points
  in
  let vx = List.fold_left (fun a x -> a +. ((x -. mx) ** 2.)) 0. xs in
  let vy = List.fold_left (fun a y -> a +. ((y -. my) ** 2.)) 0. ys in
  if vx = 0. || vy = 0. then 0. else cov /. sqrt (vx *. vy)

let pp_summary fmt s =
  Format.fprintf fmt "n=%d mean=%.4g sd=%.4g min=%.4g med=%.4g p95=%.4g max=%.4g"
    s.count s.mean s.stddev s.min s.median s.p95 s.max
