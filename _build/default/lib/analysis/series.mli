(** Operations on chronological [(time, value)] traces. *)

type t = (float * float) list
(** Must be sorted by time (the producers in this repo guarantee it). *)

val values : t -> float list

val after : float -> t -> t
(** Points with [time >= t]. *)

val between : float -> float -> t -> t
(** Points with [t1 <= time <= t2]. *)

val max_value : t -> float
(** Maximum value ([neg_infinity] on empty). *)

val min_value : t -> float

val value_at : t -> float -> float option
(** Value of the latest point at or before the given time. *)

val last_above : float -> t -> float option
(** Time of the last point whose value strictly exceeds the threshold —
    the convergence detector: after this instant the trace stays at or
    below the threshold. [None] if it never exceeds it. *)

val first_below : float -> t -> float option
(** Time of the first point at or below the threshold. *)

val settle_time : threshold:float -> from:float -> t -> float option
(** Time elapsed from [from] until the trace is {e permanently} at or
    below [threshold] (i.e. [last_above] relative to [from]); [Some 0.] if
    it never exceeds the threshold after [from]; [None] if it is still
    above at the final sample. *)

val downsample : every:float -> t -> t
(** Keep at most one point per [every]-length bucket (the first). *)
