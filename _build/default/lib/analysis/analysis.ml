(** Measurement post-processing: statistics, time series, tables and
    terminal plots. *)

module Stats = Stats
(** Summary statistics, least squares, correlation. *)

module Series = Series
(** Chronological [(time, value)] traces: crossings, settle times,
    slicing. *)

module Table = Table
(** Aligned text tables with CSV export. *)

module Plot = Plot
(** ASCII line plots and sparklines. *)
