(** Aligned plain-text tables for experiment output. *)

type cell = Str of string | Int of int | Float of float | Bool of bool

type t

val create : title:string -> columns:string list -> t

val add_row : t -> cell list -> unit
(** Row length must match the column count. *)

val rows : t -> cell list list

val title : t -> string

val columns : t -> string list

val cell_to_string : cell -> string

val get_float : t -> row:int -> col:int -> float
(** Numeric accessor for tests ([Int] is coerced). *)

val pp : Format.formatter -> t -> unit
(** Render with a title line, a header, a rule and aligned columns. *)

val to_csv : t -> string
