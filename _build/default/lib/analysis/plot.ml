let glyphs = [| '*'; '+'; 'o'; 'x' |]

let bounds series_list =
  let fold f init get =
    List.fold_left
      (fun acc (_, s) -> List.fold_left (fun acc p -> f acc (get p)) acc s)
      init series_list
  in
  let x_min = fold Float.min infinity fst and x_max = fold Float.max neg_infinity fst in
  let y_min = fold Float.min infinity snd and y_max = fold Float.max neg_infinity snd in
  (x_min, x_max, y_min, y_max)

let render ?(width = 72) ?(height = 16) ?(x_label = "t") ?(y_label = "") series_list =
  let series_list = List.filteri (fun i _ -> i < Array.length glyphs) series_list in
  let has_points = List.exists (fun (_, s) -> s <> []) series_list in
  if not has_points then "(empty plot)\n"
  else begin
    let x_min, x_max, y_min, y_max = bounds series_list in
    let x_span = if x_max > x_min then x_max -. x_min else 1. in
    let y_span = if y_max > y_min then y_max -. y_min else 1. in
    let canvas = Array.make_matrix height width ' ' in
    List.iteri
      (fun k (_, s) ->
        let glyph = glyphs.(k) in
        List.iter
          (fun (x, y) ->
            let col =
              int_of_float ((x -. x_min) /. x_span *. float_of_int (width - 1))
            in
            let row =
              height - 1
              - int_of_float ((y -. y_min) /. y_span *. float_of_int (height - 1))
            in
            if row >= 0 && row < height && col >= 0 && col < width then
              canvas.(row).(col) <- glyph)
          s)
      series_list;
    let buf = Buffer.create ((width + 12) * (height + 3)) in
    let y_axis_label row =
      if row = 0 then Printf.sprintf "%10.3g |" y_max
      else if row = height - 1 then Printf.sprintf "%10.3g |" y_min
      else Printf.sprintf "%10s |" ""
    in
    if y_label <> "" then Buffer.add_string buf (Printf.sprintf "%s\n" y_label);
    Array.iteri
      (fun row line ->
        Buffer.add_string buf (y_axis_label row);
        Buffer.add_string buf (String.init width (fun c -> line.(c)));
        Buffer.add_char buf '\n')
      canvas;
    Buffer.add_string buf (Printf.sprintf "%10s +%s\n" "" (String.make width '-'));
    Buffer.add_string buf
      (Printf.sprintf "%10s  %-12.6g%*s%12.6g  (%s)\n" "" x_min
         (Stdlib.max 1 (width - 26))
         "" x_max x_label);
    List.iteri
      (fun k (name, _) ->
        if name <> "" then
          Buffer.add_string buf (Printf.sprintf "%10s  %c = %s\n" "" glyphs.(k) name))
      series_list;
    Buffer.contents buf
  end

let render_one ?width ?height s = render ?width ?height [ ("", s) ]

let spark_levels = [| " "; "_"; "-"; "="; "^"; "#" |]

let sparkline ?(width = 60) s =
  match s with
  | [] -> ""
  | s ->
    let y_min = Series.min_value s and y_max = Series.max_value s in
    let y_span = if y_max > y_min then y_max -. y_min else 1. in
    let x_min = fst (List.hd s) in
    let x_max = fst (List.nth s (List.length s - 1)) in
    let x_span = if x_max > x_min then x_max -. x_min else 1. in
    let cells = Array.make width (-1) in
    List.iter
      (fun (x, y) ->
        let col = int_of_float ((x -. x_min) /. x_span *. float_of_int (width - 1)) in
        let level =
          int_of_float
            ((y -. y_min) /. y_span *. float_of_int (Array.length spark_levels - 1))
        in
        if col >= 0 && col < width then cells.(col) <- Stdlib.max cells.(col) level)
      s;
    String.concat ""
      (Array.to_list
         (Array.map (fun l -> if l < 0 then " " else spark_levels.(l)) cells))
