(** Minimal ASCII plotting for time series — enough to eyeball a skew
    trace in a terminal without leaving the harness. *)

val render :
  ?width:int ->
  ?height:int ->
  ?x_label:string ->
  ?y_label:string ->
  (string * Series.t) list ->
  string
(** [render series] draws the named series (up to 4; each gets its own
    glyph) on a shared canvas with axis annotations. Default 72x16.
    Returns a multi-line string. Empty input yields an empty plot frame. *)

val render_one : ?width:int -> ?height:int -> Series.t -> string
(** Single anonymous series. *)

val sparkline : ?width:int -> Series.t -> string
(** One-line unicode sparkline (resampled to [width], default 60). *)
