lib/analysis/analysis.ml: Plot Series Stats Table
