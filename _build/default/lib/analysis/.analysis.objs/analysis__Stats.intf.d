lib/analysis/stats.mli: Format
