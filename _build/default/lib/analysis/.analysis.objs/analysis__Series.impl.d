lib/analysis/series.ml: Float List Option
