lib/analysis/series.mli:
