lib/analysis/plot.mli: Series
