lib/analysis/plot.ml: Array Buffer Float List Printf Series Stdlib String
