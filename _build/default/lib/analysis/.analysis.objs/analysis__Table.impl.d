lib/analysis/table.ml: Buffer Float Format List Printf Stdlib String
