lib/analysis/stats.ml: Array Float Format List Stdlib
