type cell = Str of string | Int of int | Float of float | Bool of bool

type t = {
  title : string;
  columns : string list;
  mutable rev_rows : cell list list;
}

let create ~title ~columns =
  if columns = [] then invalid_arg "Table.create: no columns";
  { title; columns; rev_rows = [] }

let add_row t row =
  if List.length row <> List.length t.columns then
    invalid_arg
      (Printf.sprintf "Table.add_row(%s): %d cells for %d columns" t.title
         (List.length row) (List.length t.columns));
  t.rev_rows <- row :: t.rev_rows

let rows t = List.rev t.rev_rows

let title t = t.title

let columns t = t.columns

let cell_to_string = function
  | Str s -> s
  | Int i -> string_of_int i
  | Float f ->
    if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
    else Printf.sprintf "%.4g" f
  | Bool b -> if b then "yes" else "no"

let get_float t ~row ~col =
  match List.nth (List.nth (rows t) row) col with
  | Float f -> f
  | Int i -> float_of_int i
  | Str _ | Bool _ -> invalid_arg "Table.get_float: not a numeric cell"

let pp fmt t =
  let rows = rows t in
  let header = t.columns in
  let all = header :: List.map (List.map cell_to_string) rows in
  let ncols = List.length header in
  let width c =
    List.fold_left (fun acc row -> Stdlib.max acc (String.length (List.nth row c))) 0 all
  in
  let widths = List.init ncols width in
  let pad s w = s ^ String.make (w - String.length s) ' ' in
  let render_row row =
    String.concat "  " (List.map2 pad row widths) |> String.trim |> fun s ->
    (* Re-pad: trim removed right padding only; keep interior alignment. *)
    s
  in
  Format.fprintf fmt "@[<v>== %s ==@," t.title;
  Format.fprintf fmt "%s@," (render_row header);
  Format.fprintf fmt "%s@,"
    (String.concat "  " (List.map (fun w -> String.make w '-') widths));
  List.iter
    (fun row -> Format.fprintf fmt "%s@," (render_row (List.map cell_to_string row)))
    rows;
  Format.fprintf fmt "@]"

let escape_csv s =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') s then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' s) ^ "\""
  else s

let to_csv t =
  let line cells = String.concat "," (List.map escape_csv cells) in
  let buf = Buffer.create 256 in
  Buffer.add_string buf (line t.columns);
  Buffer.add_char buf '\n';
  List.iter
    (fun row ->
      Buffer.add_string buf (line (List.map cell_to_string row));
      Buffer.add_char buf '\n')
    (rows t);
  Buffer.contents buf
