type ('msg, 'timer) event =
  | Edge_add of int * int
  | Edge_remove of int * int
  | Discover of { node : int; peer : int; epoch : int; add : bool }
  | Absence of { node : int; peer : int }
      (* Pending notification that a send failed because the edge is absent. *)
  | Deliver of { src : int; dst : int; epoch : int; msg : 'msg }
  | Timer of { node : int; timer : 'timer; gen : int }
  | Callback of (unit -> unit)

type ('msg, 'timer) t = {
  n : int;
  clocks : Hwclock.t array;
  delay : Delay.t;
  discovery_lag : float;
  graph : Dyngraph.t;
  queue : ('msg, 'timer) event Pqueue.t;
  trace : Trace.t;
  handlers : ('msg, 'timer) handlers option array;
  timers : ('timer, int) Hashtbl.t array; (* label -> live generation *)
  absence_pending : (int, unit) Hashtbl.t array; (* node -> peers with a pending absence notice *)
  fifo_last : (int * int, float) Hashtbl.t; (* directed edge -> last delivery time *)
  mutable next_gen : int;
  mutable now : float;
  mutable started : bool;
  mutable events_processed : int;
}

and ('msg, 'timer) handlers = {
  on_init : unit -> unit;
  on_discover_add : int -> unit;
  on_discover_remove : int -> unit;
  on_receive : int -> 'msg -> unit;
  on_timer : 'timer -> unit;
}

type ('msg, 'timer) ctx = { engine : ('msg, 'timer) t; id : int }

let create ~clocks ~delay ?(discovery_lag = 0.) ?(initial_edges = []) ?trace () =
  let n = Array.length clocks in
  if n = 0 then invalid_arg "Engine.create: no nodes";
  if discovery_lag < 0. then invalid_arg "Engine.create: negative discovery lag";
  let t =
    {
      n;
      clocks;
      delay;
      discovery_lag;
      graph = Dyngraph.create ~n;
      queue = Pqueue.create ();
      trace = (match trace with Some tr -> tr | None -> Trace.create ());
      handlers = Array.make n None;
      timers = Array.init n (fun _ -> Hashtbl.create 8);
      absence_pending = Array.init n (fun _ -> Hashtbl.create 4);
      fifo_last = Hashtbl.create 64;
      next_gen = 0;
      now = 0.;
      started = false;
      events_processed = 0;
    }
  in
  List.iter
    (fun (u, v) ->
      if Dyngraph.add_edge t.graph ~now:0. u v then begin
        let epoch = Dyngraph.epoch t.graph u v in
        (* Initial topology is known immediately. *)
        Pqueue.push t.queue ~time:0. (Discover { node = u; peer = v; epoch; add = true });
        Pqueue.push t.queue ~time:0. (Discover { node = v; peer = u; epoch; add = true })
      end)
    initial_edges;
  t

let install t i build =
  if i < 0 || i >= t.n then invalid_arg "Engine.install: node out of range";
  if t.started then invalid_arg "Engine.install: engine already started";
  let ctx = { engine = t; id = i } in
  t.handlers.(i) <- Some (build ctx)

let handlers_of t i =
  match t.handlers.(i) with
  | Some h -> h
  | None -> invalid_arg (Printf.sprintf "Engine: node %d has no handlers installed" i)

(* Node-side API ----------------------------------------------------- *)

let node_id ctx = ctx.id

let node_count ctx = ctx.engine.n

let hardware_clock ctx = Hwclock.value ctx.engine.clocks.(ctx.id) ctx.engine.now

let send ctx ~dst msg =
  let t = ctx.engine in
  let src = ctx.id in
  if dst < 0 || dst >= t.n || dst = src then invalid_arg "Engine.send: bad destination";
  Trace.record t.trace ~time:t.now Send (Printf.sprintf "%d->%d" src dst);
  if Dyngraph.has_edge t.graph src dst then begin
    if t.delay.Delay.drop ~src ~dst ~now:t.now then
      (* Silent loss (outside the paper's reliable-link model): no
         delivery and no discovery; only the receiver's lost-timer will
         notice the silence. *)
      Trace.record t.trace ~time:t.now Drop_lossy (Printf.sprintf "%d->%d" src dst)
    else begin
    let epoch = Dyngraph.epoch t.graph src dst in
    let d = t.delay.Delay.draw ~src ~dst ~now:t.now in
    let d = Float.min (Float.max d 0.) t.delay.Delay.bound in
    let deliver_at = t.now +. d in
    (* FIFO per directed link: never deliver before an earlier message. *)
    let deliver_at =
      match Hashtbl.find_opt t.fifo_last (src, dst) with
      | Some last -> Float.max deliver_at last
      | None -> deliver_at
    in
    Hashtbl.replace t.fifo_last (src, dst) deliver_at;
    Pqueue.push t.queue ~time:deliver_at (Deliver { src; dst; epoch; msg })
    end
  end
  else begin
    Trace.record t.trace ~time:t.now Drop_no_edge (Printf.sprintf "%d->%d" src dst);
    (* The model: the sender discovers the absence within D. Coalesce
       multiple failed sends into a single pending notification. *)
    if not (Hashtbl.mem t.absence_pending.(src) dst) then begin
      Hashtbl.replace t.absence_pending.(src) dst ();
      Pqueue.push t.queue ~time:(t.now +. t.discovery_lag)
        (Absence { node = src; peer = dst })
    end
  end

let set_timer ctx ~after timer =
  let t = ctx.engine in
  if after < 0. then invalid_arg "Engine.set_timer: negative delay";
  let clock = t.clocks.(ctx.id) in
  let deadline = Hwclock.inverse clock (Hwclock.value clock t.now +. after) in
  let gen = t.next_gen in
  t.next_gen <- gen + 1;
  Hashtbl.replace t.timers.(ctx.id) timer gen;
  Pqueue.push t.queue ~time:deadline (Timer { node = ctx.id; timer; gen })

let cancel_timer ctx timer = Hashtbl.remove ctx.engine.timers.(ctx.id) timer

(* Harness-side API --------------------------------------------------- *)

let now t = t.now

let graph t = t.graph

let clock t i = t.clocks.(i)

let check_future t at =
  if at < t.now then invalid_arg "Engine: cannot schedule in the past"

let schedule_edge_add t ~at u v =
  check_future t at;
  Pqueue.push t.queue ~time:at (Edge_add (u, v))

let schedule_edge_remove t ~at u v =
  check_future t at;
  Pqueue.push t.queue ~time:at (Edge_remove (u, v))

let at t ~time f =
  check_future t time;
  Pqueue.push t.queue ~time (Callback f)

let events_processed t = t.events_processed

let pending_events t = Pqueue.size t.queue

(* Event dispatch ----------------------------------------------------- *)

let schedule_discovery t u v ~epoch ~add =
  let time = t.now +. t.discovery_lag in
  Pqueue.push t.queue ~time (Discover { node = u; peer = v; epoch; add });
  Pqueue.push t.queue ~time (Discover { node = v; peer = u; epoch; add })

let dispatch t event =
  match event with
  | Edge_add (u, v) ->
    if Dyngraph.add_edge t.graph ~now:t.now u v then begin
      Trace.record t.trace ~time:t.now Edge_add (Printf.sprintf "{%d,%d}" u v);
      schedule_discovery t u v ~epoch:(Dyngraph.epoch t.graph u v) ~add:true
    end
  | Edge_remove (u, v) ->
    if Dyngraph.remove_edge t.graph ~now:t.now u v then begin
      Trace.record t.trace ~time:t.now Edge_remove (Printf.sprintf "{%d,%d}" u v);
      schedule_discovery t u v ~epoch:(Dyngraph.epoch t.graph u v) ~add:false
    end
  | Discover { node; peer; epoch; add } ->
    (* Deliver only if this is still the edge's latest change: a change
       reversed within the lag is superseded by its reversal's own
       discovery (transient changes need not be reported). *)
    if Dyngraph.epoch t.graph node peer = epoch then begin
      if add then begin
        Trace.record t.trace ~time:t.now Discover_add (Printf.sprintf "%d:{%d,%d}" node node peer);
        (handlers_of t node).on_discover_add peer
      end
      else begin
        Trace.record t.trace ~time:t.now Discover_remove
          (Printf.sprintf "%d:{%d,%d}" node node peer);
        (handlers_of t node).on_discover_remove peer
      end
    end
    else Trace.record t.trace ~time:t.now Discover_stale (Printf.sprintf "%d:{%d,%d}" node node peer)
  | Absence { node; peer } ->
    Hashtbl.remove t.absence_pending.(node) peer;
    if not (Dyngraph.has_edge t.graph node peer) then begin
      Trace.record t.trace ~time:t.now Discover_remove (Printf.sprintf "%d:{%d,%d}" node node peer);
      (handlers_of t node).on_discover_remove peer
    end
    else Trace.record t.trace ~time:t.now Discover_stale (Printf.sprintf "%d:{%d,%d}" node node peer)
  | Deliver { src; dst; epoch; msg } ->
    if Dyngraph.has_edge t.graph src dst && Dyngraph.epoch t.graph src dst = epoch then begin
      Trace.record t.trace ~time:t.now Deliver (Printf.sprintf "%d->%d" src dst);
      (handlers_of t dst).on_receive src msg
    end
    else
      Trace.record t.trace ~time:t.now Drop_in_flight (Printf.sprintf "%d->%d" src dst)
  | Timer { node; timer; gen } -> (
    match Hashtbl.find_opt t.timers.(node) timer with
    | Some live when live = gen ->
      Hashtbl.remove t.timers.(node) timer;
      Trace.record t.trace ~time:t.now Timer_fire (string_of_int node);
      (handlers_of t node).on_timer timer
    | Some _ | None -> Trace.record t.trace ~time:t.now Timer_stale (string_of_int node))
  | Callback f -> f ()

let start t =
  if not t.started then begin
    t.started <- true;
    for i = 0 to t.n - 1 do
      (handlers_of t i).on_init ()
    done
  end

let run_until t horizon =
  if horizon < t.now then invalid_arg "Engine.run_until: horizon in the past";
  start t;
  let rec loop () =
    match Pqueue.peek_time t.queue with
    | Some time when time <= horizon ->
      (match Pqueue.pop t.queue with
      | Some (time, event) ->
        assert (time >= t.now);
        t.now <- time;
        t.events_processed <- t.events_processed + 1;
        dispatch t event
      | None -> ());
      loop ()
    | Some _ | None -> ()
  in
  loop ();
  t.now <- horizon
