(** Priority queue of timestamped events.

    A binary heap ordered by [(time, sequence)]: events at equal times pop
    in insertion order, which gives the simulator a deterministic total
    order and preserves FIFO delivery for zero-delay messages. *)

type 'a t

val create : ?capacity:int -> unit -> 'a t

val push : 'a t -> time:float -> 'a -> unit
(** Insert an event at [time]. [time] must be finite. *)

val pop : 'a t -> (float * 'a) option
(** Remove and return the earliest event, if any. *)

val peek_time : 'a t -> float option
(** Time of the earliest event without removing it. *)

val size : 'a t -> int

val is_empty : 'a t -> bool

val clear : 'a t -> unit
