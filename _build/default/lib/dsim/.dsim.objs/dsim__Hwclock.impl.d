lib/dsim/hwclock.ml: Array Float List Prng
