lib/dsim/dsim.ml: Delay Dyngraph Engine Hwclock Pqueue Prng Trace
