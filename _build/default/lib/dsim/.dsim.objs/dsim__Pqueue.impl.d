lib/dsim/pqueue.ml: Array Float
