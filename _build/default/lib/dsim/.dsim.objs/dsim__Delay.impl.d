lib/dsim/delay.ml: Float Prng
