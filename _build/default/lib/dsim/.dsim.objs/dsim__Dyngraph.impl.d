lib/dsim/dyngraph.ml: Array Fun Hashtbl Int List Set
