lib/dsim/hwclock.mli: Prng
