lib/dsim/prng.mli:
