lib/dsim/delay.mli: Prng
