lib/dsim/prng.ml: Array Int64
