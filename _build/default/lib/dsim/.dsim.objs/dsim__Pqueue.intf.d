lib/dsim/pqueue.mli:
