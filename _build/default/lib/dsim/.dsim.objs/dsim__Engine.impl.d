lib/dsim/engine.ml: Array Delay Dyngraph Float Hashtbl Hwclock List Pqueue Printf Trace
