lib/dsim/trace.ml: Array Format List
