lib/dsim/dyngraph.mli:
