lib/dsim/engine.mli: Delay Dyngraph Hwclock Trace
