module Edge_tbl = Hashtbl.Make (struct
  type t = int * int

  let equal (a1, b1) (a2, b2) = a1 = a2 && b1 = b2
  let hash (a, b) = (a * 1_000_003) + b
end)

module Int_set = Set.Make (Int)

type record = { mutable present : bool; mutable epoch : int; mutable since : float }

type t = {
  node_count : int;
  table : record Edge_tbl.t;
  adjacency : Int_set.t array;
}

let create ~n =
  if n <= 0 then invalid_arg "Dyngraph.create: n must be positive";
  { node_count = n; table = Edge_tbl.create 64; adjacency = Array.make n Int_set.empty }

let n g = g.node_count

let normalize u v = if u <= v then (u, v) else (v, u)

let check_nodes g u v =
  if u < 0 || v < 0 || u >= g.node_count || v >= g.node_count then
    invalid_arg "Dyngraph: node out of range";
  if u = v then invalid_arg "Dyngraph: self-loop"

let find g u v = Edge_tbl.find_opt g.table (normalize u v)

let has_edge g u v =
  match find g u v with Some r -> r.present | None -> false

let add_edge g ~now u v =
  check_nodes g u v;
  let key = normalize u v in
  let r =
    match Edge_tbl.find_opt g.table key with
    | Some r -> r
    | None ->
      let r = { present = false; epoch = 0; since = 0. } in
      Edge_tbl.add g.table key r;
      r
  in
  if r.present then false
  else begin
    r.present <- true;
    r.epoch <- r.epoch + 1;
    r.since <- now;
    g.adjacency.(u) <- Int_set.add v g.adjacency.(u);
    g.adjacency.(v) <- Int_set.add u g.adjacency.(v);
    true
  end

let remove_edge g ~now u v =
  check_nodes g u v;
  ignore now;
  match find g u v with
  | Some r when r.present ->
    r.present <- false;
    r.epoch <- r.epoch + 1;
    g.adjacency.(u) <- Int_set.remove v g.adjacency.(u);
    g.adjacency.(v) <- Int_set.remove u g.adjacency.(v);
    true
  | Some _ | None -> false

let epoch g u v = match find g u v with Some r -> r.epoch | None -> 0

let since g u v =
  match find g u v with
  | Some r when r.present -> Some r.since
  | Some _ | None -> None

let neighbors g u = Int_set.elements g.adjacency.(u)

let edges g =
  Edge_tbl.fold (fun key r acc -> if r.present then key :: acc else acc) g.table []
  |> List.sort compare

let edge_count g =
  Edge_tbl.fold (fun _ r acc -> if r.present then acc + 1 else acc) g.table 0

let degree g u = Int_set.cardinal g.adjacency.(u)

let is_connected g =
  let n = g.node_count in
  if n <= 1 then true
  else begin
    let seen = Array.make n false in
    let rec dfs u =
      seen.(u) <- true;
      Int_set.iter (fun v -> if not seen.(v) then dfs v) g.adjacency.(u)
    in
    dfs 0;
    Array.for_all Fun.id seen
  end
