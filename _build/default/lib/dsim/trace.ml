type kind =
  | Send
  | Deliver
  | Drop_no_edge
  | Drop_in_flight
  | Drop_lossy
  | Edge_add
  | Edge_remove
  | Discover_add
  | Discover_remove
  | Discover_stale
  | Timer_fire
  | Timer_stale

let kind_index = function
  | Send -> 0
  | Deliver -> 1
  | Drop_no_edge -> 2
  | Drop_in_flight -> 3
  | Drop_lossy -> 4
  | Edge_add -> 5
  | Edge_remove -> 6
  | Discover_add -> 7
  | Discover_remove -> 8
  | Discover_stale -> 9
  | Timer_fire -> 10
  | Timer_stale -> 11

let kind_count = 12

let kind_to_string = function
  | Send -> "send"
  | Deliver -> "deliver"
  | Drop_no_edge -> "drop-no-edge"
  | Drop_in_flight -> "drop-in-flight"
  | Drop_lossy -> "drop-lossy"
  | Edge_add -> "edge-add"
  | Edge_remove -> "edge-remove"
  | Discover_add -> "discover-add"
  | Discover_remove -> "discover-remove"
  | Discover_stale -> "discover-stale"
  | Timer_fire -> "timer-fire"
  | Timer_stale -> "timer-stale"

let all_kinds =
  [ Send; Deliver; Drop_no_edge; Drop_in_flight; Drop_lossy; Edge_add; Edge_remove;
    Discover_add; Discover_remove; Discover_stale; Timer_fire; Timer_stale ]

type entry = { time : float; kind : kind; detail : string }

type t = {
  counters : int array;
  log_limit : int;
  mutable log : entry list; (* newest first *)
  mutable log_size : int;
}

let create ?(log_limit = 0) () =
  { counters = Array.make kind_count 0; log_limit; log = []; log_size = 0 }

let record t ~time kind detail =
  let i = kind_index kind in
  t.counters.(i) <- t.counters.(i) + 1;
  if t.log_limit > 0 && t.log_size < t.log_limit then begin
    t.log <- { time; kind; detail } :: t.log;
    t.log_size <- t.log_size + 1
  end

let count t kind = t.counters.(kind_index kind)

let total t = Array.fold_left ( + ) 0 t.counters

let entries t = List.rev t.log

let pp_summary fmt t =
  Format.fprintf fmt "@[<v>";
  List.iter
    (fun k ->
      let c = count t k in
      if c > 0 then Format.fprintf fmt "%-18s %d@," (kind_to_string k) c)
    all_kinds;
  Format.fprintf fmt "@]"
