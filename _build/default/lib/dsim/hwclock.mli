(** Drifting hardware clocks as exact piecewise-linear functions of real
    time.

    A clock is defined by a rate schedule: a sequence of segments, each with
    a constant rate in [\[1-rho, 1+rho\]]. The paper (Section 3.3) requires
    [H(0) = 0] and a rate bounded by the drift [rho] at all times; both are
    enforced here. Because rates are strictly positive, the clock is
    invertible, which the engine uses to fire subjective-time timers at the
    correct real times. *)

type t

val of_rates : (float * float) list -> t
(** [of_rates [(t0, r0); (t1, r1); ...]] builds a clock that runs at rate
    [r0] on [\[t0, t1)], [r1] on [\[t1, t2)], ..., with the last rate
    extending forever. Requires [t0 = 0], strictly increasing times and
    strictly positive rates. [H(0) = 0]. *)

val constant : float -> t
(** Clock running forever at the given rate. *)

val perfect : t
(** [constant 1.0]. *)

val value : t -> float -> float
(** [value c t] is [H(t)], for [t >= 0]. *)

val inverse : t -> float -> float
(** [inverse c h] is the unique [t >= 0] with [H(t) = h], for [h >= 0]. *)

val rate_at : t -> float -> float
(** Rate in effect at time [t] (right-continuous). *)

val segments : t -> (float * float) list
(** The defining [(start_time, rate)] schedule. *)

val max_rate : t -> float

val min_rate : t -> float

val within_drift : rho:float -> t -> bool
(** Do all rates lie in [\[1-rho, 1+rho\]]? *)

(** {1 Drift pattern generators}

    All generated clocks satisfy [within_drift ~rho]. *)

val fastest : rho:float -> t
(** Rate [1+rho] forever. *)

val slowest : rho:float -> t
(** Rate [1-rho] forever. *)

val two_rate : rho:float -> period:float -> horizon:float -> fast_first:bool -> t
(** Alternates between [1+rho] and [1-rho] every [period] until [horizon],
    then runs at rate 1. An adversarial pattern that maximizes relative
    drift between out-of-phase nodes. *)

val random_walk :
  Prng.t -> rho:float -> segment_mean:float -> horizon:float -> t
(** Rate re-drawn uniformly from [\[1-rho, 1+rho\]] at exponentially
    distributed intervals with the given mean, until [horizon]. *)

val fast_until : rho:float -> float -> t
(** Rate [1+rho] until the given time, then rate 1. Used to realize the
    layered execution [beta] of the Masking Lemma (Lemma 4.2), where node
    [x] runs fast exactly until [H(t) = t + T.dist] is reached. *)
