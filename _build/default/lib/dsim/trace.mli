(** Lightweight execution tracing: event counters plus an optional bounded
    log of structured records for debugging and assertions in tests. *)

type kind =
  | Send
  | Deliver
  | Drop_no_edge     (** send attempted on an absent edge *)
  | Drop_in_flight   (** message lost because the edge changed in flight *)
  | Drop_lossy       (** silent loss injected by a lossy delay policy *)
  | Edge_add
  | Edge_remove
  | Discover_add
  | Discover_remove
  | Discover_stale   (** discovery suppressed: the change was superseded *)
  | Timer_fire
  | Timer_stale      (** cancelled or superseded timer *)

val kind_to_string : kind -> string

type entry = { time : float; kind : kind; detail : string }

type t

val create : ?log_limit:int -> unit -> t
(** [log_limit] bounds the number of retained entries (default 0: counters
    only). *)

val record : t -> time:float -> kind -> string -> unit

val count : t -> kind -> int

val total : t -> int

val entries : t -> entry list
(** Retained entries, oldest first. *)

val pp_summary : Format.formatter -> t -> unit
