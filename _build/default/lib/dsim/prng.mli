(** Deterministic splittable pseudo-random number generator (splitmix64).

    All randomness in the simulator flows through this module so that an
    execution is a pure function of its seed: identical seeds produce
    identical event sequences, which the test suite relies on. *)

type t
(** Mutable generator state. *)

val create : int64 -> t
(** [create seed] returns a fresh generator. *)

val of_int : int -> t
(** [of_int seed] is [create (Int64.of_int seed)]. *)

val copy : t -> t
(** Independent copy continuing from the current state. *)

val split : t -> t
(** [split g] advances [g] and returns a new generator whose stream is
    statistically independent of [g]'s subsequent output. *)

val next_int64 : t -> int64
(** Next raw 64-bit output. *)

val bits30 : t -> int
(** 30 uniformly random bits as a non-negative [int]. *)

val int : t -> int -> int
(** [int g bound] is uniform in [\[0, bound)]. [bound] must be positive. *)

val int_in : t -> int -> int -> int
(** [int_in g lo hi] is uniform in [\[lo, hi\]] (inclusive). *)

val float : t -> float -> float
(** [float g bound] is uniform in [\[0, bound)]. [bound] must be finite
    and non-negative. *)

val float_in : t -> float -> float -> float
(** [float_in g lo hi] is uniform in [\[lo, hi)]. Requires [lo <= hi]. *)

val bool : t -> bool
(** Fair coin. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val pick : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)
