type 'a cell = { time : float; seq : int; payload : 'a }

type 'a t = {
  mutable cells : 'a cell array; (* heap in [0, size) *)
  mutable size : int;
  mutable next_seq : int;
}

let create ?(capacity = 64) () =
  { cells = [||]; size = 0; next_seq = 0 }
  |> fun q ->
  ignore capacity;
  q

let is_empty q = q.size = 0

let size q = q.size

let clear q =
  q.cells <- [||];
  q.size <- 0

let before a b = a.time < b.time || (a.time = b.time && a.seq < b.seq)

let grow q cell =
  let n = Array.length q.cells in
  let cap = if n = 0 then 64 else 2 * n in
  let cells = Array.make cap cell in
  Array.blit q.cells 0 cells 0 q.size;
  q.cells <- cells

let push q ~time payload =
  if not (Float.is_finite time) then invalid_arg "Pqueue.push: non-finite time";
  let cell = { time; seq = q.next_seq; payload } in
  q.next_seq <- q.next_seq + 1;
  if q.size >= Array.length q.cells then grow q cell;
  (* Sift up. *)
  let i = ref q.size in
  q.size <- q.size + 1;
  q.cells.(!i) <- cell;
  let continue = ref true in
  while !continue && !i > 0 do
    let parent = (!i - 1) / 2 in
    if before cell q.cells.(parent) then begin
      q.cells.(!i) <- q.cells.(parent);
      q.cells.(parent) <- cell;
      i := parent
    end
    else continue := false
  done

let pop q =
  if q.size = 0 then None
  else begin
    let top = q.cells.(0) in
    q.size <- q.size - 1;
    if q.size > 0 then begin
      let last = q.cells.(q.size) in
      q.cells.(0) <- last;
      (* Sift down. *)
      let i = ref 0 in
      let continue = ref true in
      while !continue do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        let smallest = ref !i in
        if l < q.size && before q.cells.(l) q.cells.(!smallest) then smallest := l;
        if r < q.size && before q.cells.(r) q.cells.(!smallest) then smallest := r;
        if !smallest <> !i then begin
          let tmp = q.cells.(!i) in
          q.cells.(!i) <- q.cells.(!smallest);
          q.cells.(!smallest) <- tmp;
          i := !smallest
        end
        else continue := false
      done
    end;
    Some (top.time, top.payload)
  end

let peek_time q = if q.size = 0 then None else Some q.cells.(0).time
