(** Topologies for the simulator: static generators, dynamic (churn)
    schedules and interval-connectivity checking (Definition 3.1). *)

module Static = Static
(** Connected static graph generators and BFS utilities. *)

module Churn = Churn
(** Timed edge insertion/removal schedules and their generators. *)

module Connectivity = Connectivity
(** Union-find and T-interval connectivity verification. *)
