module Union_find = struct
  type t = { parent : int array; rank : int array; mutable components : int }

  let create n =
    { parent = Array.init n Fun.id; rank = Array.make n 0; components = n }

  let rec find t x =
    if t.parent.(x) = x then x
    else begin
      let root = find t t.parent.(x) in
      t.parent.(x) <- root;
      root
    end

  let union t x y =
    let rx = find t x and ry = find t y in
    if rx <> ry then begin
      t.components <- t.components - 1;
      if t.rank.(rx) < t.rank.(ry) then t.parent.(rx) <- ry
      else if t.rank.(rx) > t.rank.(ry) then t.parent.(ry) <- rx
      else begin
        t.parent.(ry) <- rx;
        t.rank.(rx) <- t.rank.(rx) + 1
      end
    end

  let same t x y = find t x = find t y

  let components t = t.components
end

let connected ~n edges =
  if n <= 1 then true
  else begin
    let uf = Union_find.create n in
    List.iter (fun (u, v) -> Union_find.union uf u v) edges;
    Union_find.components uf = 1
  end

module Edge_map = Map.Make (struct
  type t = int * int

  let compare = compare
end)

(* Edge presence intervals [from, until) reconstructed from the schedule. *)
let presence_intervals ~horizon ~initial events =
  let open Churn in
  let state =
    List.fold_left
      (fun acc (u, v) -> Edge_map.add (Dsim.Dyngraph.normalize u v) 0. acc)
      Edge_map.empty initial
  in
  let intervals = ref [] in
  let state =
    List.fold_left
      (fun state e ->
        let key = Dsim.Dyngraph.normalize e.u e.v in
        match e.op with
        | Add -> if Edge_map.mem key state then state else Edge_map.add key e.time state
        | Remove -> (
          match Edge_map.find_opt key state with
          | Some since ->
            intervals := (key, since, e.time) :: !intervals;
            Edge_map.remove key state
          | None -> state))
      state (normalize events)
  in
  Edge_map.iter (fun key since -> intervals := (key, since, horizon) :: !intervals) state;
  !intervals

let window_starts ~horizon events =
  let times = 0. :: List.map (fun e -> e.Churn.time) events in
  List.sort_uniq Float.compare (List.filter (fun t -> t <= horizon) times)

let edges_throughout intervals t window =
  List.filter_map
    (fun (key, since, until) ->
      if since <= t && until >= t +. window then Some key else None)
    intervals

let first_violation ~n ~window ~horizon ~initial events =
  let intervals = presence_intervals ~horizon ~initial events in
  let starts =
    List.filter (fun t -> t +. window <= horizon) (window_starts ~horizon events)
  in
  List.find_opt
    (fun t -> not (connected ~n (edges_throughout intervals t window)))
    starts

let interval_connected ~n ~window ~horizon ~initial events =
  first_violation ~n ~window ~horizon ~initial events = None
