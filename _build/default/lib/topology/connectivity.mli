(** Connectivity checking for static snapshots and dynamic schedules,
    including the paper's T-interval connectivity (Definition 3.1). *)

module Union_find : sig
  type t

  val create : int -> t

  val union : t -> int -> int -> unit

  val same : t -> int -> int -> bool

  val components : t -> int
end

val connected : n:int -> (int * int) list -> bool

val interval_connected :
  n:int ->
  window:float ->
  horizon:float ->
  initial:(int * int) list ->
  Churn.event list ->
  bool
(** Is the dynamic graph given by [initial] and the events [T]-interval
    connected with [T = window] over [\[0, horizon\]]? Checks that for
    every window start [t] (it suffices to check [t = 0] and every event
    time), the set of edges that exist throughout [\[t, t + window\]] is
    connected. *)

val first_violation :
  n:int ->
  window:float ->
  horizon:float ->
  initial:(int * int) list ->
  Churn.event list ->
  float option
(** Earliest window start whose throughout-present edge set is
    disconnected, if any. *)
