lib/topology/connectivity.mli: Churn
