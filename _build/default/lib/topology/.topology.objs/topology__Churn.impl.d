lib/topology/churn.ml: Array Dsim Float List Set Static Stdlib
