lib/topology/connectivity.ml: Array Churn Dsim Float Fun List Map
