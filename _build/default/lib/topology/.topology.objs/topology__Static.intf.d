lib/topology/static.mli: Dsim
