lib/topology/static.ml: Array Dsim Fun List Printf Queue
