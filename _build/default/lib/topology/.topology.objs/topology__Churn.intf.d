lib/topology/churn.mli: Dsim
