lib/topology/topology.ml: Churn Connectivity Static
