(** E3 — Corollary 6.14: the stabilization/skew trade-off.

    The time to absorb a new edge's initial skew is [Θ(n/B0)]: inversely
    proportional to the stable skew the algorithm tolerates, and linear in
    the network size. Two sweeps over the path-plus-new-edge scenario of
    E2 measure the time until the new edge's skew first drops below a
    fixed fraction of its initial value:

    - sweep [B0] at fixed [n]: settle time must decrease as [B0] grows,
      with a strong correlation against [1/B0];
    - sweep [n] at fixed [B0]: settle time must grow with [n]. *)

val run : quick:bool -> Common.result
