module Table = Analysis.Table

type outcome = {
  rate : float;
  local : float;
  global : float;
  delivered_fraction : float;
  valid : bool;
}

let scenario ~n ~rate =
  let params = Common.default_params ~n () in
  let horizon = 400. in
  let warmup = 150. in
  let clocks = Gcs.Drift.assign params ~horizon ~seed:4 Gcs.Drift.Split_extremes in
  let base = Dsim.Delay.uniform (Dsim.Prng.of_int 51) ~bound:params.Gcs.Params.delay_bound in
  let delay =
    if rate = 0. then base else Dsim.Delay.lossy (Dsim.Prng.of_int 52) ~rate base
  in
  let trace = Dsim.Trace.create () in
  let cfg =
    Gcs.Sim.config ~params ~clocks ~delay ~trace
      ~initial_edges:(Topology.Static.ring n) ()
  in
  let run = Common.launch cfg ~horizon in
  let late =
    List.filter
      (fun s -> s.Gcs.Metrics.time >= warmup)
      (Gcs.Metrics.samples run.Common.recorder)
  in
  let max_of f = List.fold_left (fun acc s -> Float.max acc (f s)) 0. late in
  let sent = Dsim.Trace.count trace Dsim.Trace.Send in
  let delivered = Dsim.Trace.count trace Dsim.Trace.Deliver in
  {
    rate;
    local = max_of (fun s -> s.Gcs.Metrics.local_skew);
    global = max_of (fun s -> s.Gcs.Metrics.global_skew);
    delivered_fraction = float_of_int delivered /. float_of_int (Stdlib.max 1 sent);
    valid = Gcs.Invariant.ok run.Common.invariants;
  }

let run ~quick =
  let n = if quick then 16 else 32 in
  let rates = if quick then [ 0.; 0.2; 0.5 ] else [ 0.; 0.05; 0.2; 0.5; 0.8 ] in
  let outcomes = List.map (fun rate -> scenario ~n ~rate) rates in
  let table =
    Table.create
      ~title:(Printf.sprintf "Silent message loss (ring n=%d, outside the model)" n)
      ~columns:[ "loss rate"; "delivered"; "steady local skew"; "steady global skew"; "valid" ]
  in
  List.iter
    (fun o ->
      Table.add_row table
        [
          Table.Float o.rate;
          Table.Float o.delivered_fraction;
          Table.Float o.local;
          Table.Float o.global;
          Table.Bool o.valid;
        ])
    outcomes;
  let reliable = List.hd outcomes in
  let worst = List.nth outcomes (List.length outcomes - 1) in
  let moderate = List.nth outcomes 1 in
  let params = Common.default_params ~n () in
  let checks =
    [
      Common.check ~name:"validity is unconditional"
        ~pass:(List.for_all (fun o -> o.valid) outcomes)
        "0 violations at every loss rate up to %.0f%%" (100. *. worst.rate);
      Common.check ~name:"loss actually happened"
        ~pass:(worst.delivered_fraction < 1. -. worst.rate +. 0.1)
        "delivered fraction %.2f at rate %.2f" worst.delivered_fraction worst.rate;
      Common.check ~name:"moderate loss degrades gracefully"
        ~pass:(moderate.local <= 3. *. Float.max reliable.local 0.5)
        "local skew %.3f at %.0f%% loss vs %.3f reliable" moderate.local
        (100. *. moderate.rate) reliable.local;
      Common.check ~name:"even heavy loss stays within the global bound"
        ~pass:(worst.global <= Gcs.Params.global_skew_bound params)
        "global %.2f vs G(n) = %.2f (bound does not assume loss, but the
         periodic re-broadcasts recover it here)" worst.global
        (Gcs.Params.global_skew_bound params);
    ]
  in
  {
    Common.id = "A6";
    title = "Robustness: silent message loss (outside the model)";
    tables = [ table ];
    checks;
  }
