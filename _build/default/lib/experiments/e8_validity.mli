(** E8 — logical-clock validity (Section 3.3) and reproducibility.

    Sweeps a battery of small scenarios across algorithms, topologies,
    drift patterns, delay policies and churn, checking on every probe:
    monotone logical clocks with rate at least 1/2, and [L <= Lmax]
    (Property 6.3). Also asserts determinism: re-running a seeded scenario
    reproduces the exact sample trace. *)

val run : quick:bool -> Common.result
