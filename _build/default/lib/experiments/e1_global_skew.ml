module Table = Analysis.Table

(* Split_extremes puts the fast and slow regions far apart on paths and
   rings; on a row-major grid the id split would put them one hop apart,
   so the grid uses the per-id rate gradient instead. *)
let topologies =
  [
    ("path", Gcs.Drift.Split_extremes, fun n -> Topology.Static.path n);
    ("ring", Gcs.Drift.Split_extremes, fun n -> Topology.Static.ring n);
    ("grid", Gcs.Drift.Gradient_rates, fun n -> Topology.Static.grid ~rows:4 ~cols:(n / 4));
  ]

let sizes ~quick = if quick then [ 8; 16; 32 ] else [ 8; 16; 32; 64 ]

let run_one ~name ~drift ~edges ~n =
  let params = Common.default_params ~n () in
  let horizon = Float.max 200. (8. *. float_of_int n) in
  let clocks = Gcs.Drift.assign params ~horizon ~seed:1 drift in
  let delay = Dsim.Delay.maximal ~bound:params.Gcs.Params.delay_bound in
  let cfg = Gcs.Sim.config ~params ~clocks ~delay ~initial_edges:edges () in
  let run = Common.launch cfg ~horizon in
  let bound = Gcs.Params.global_skew_bound params in
  let max_skew = Gcs.Metrics.max_global_skew run.Common.recorder in
  (name, n, Topology.Static.diameter ~n edges, max_skew, bound, run)

let run ~quick =
  let table =
    Table.create ~title:"Max observed global skew vs bound G(n) (Theorem 6.9)"
      ~columns:[ "topology"; "n"; "diam"; "max skew"; "G(n)"; "ratio"; "valid" ]
  in
  let results =
    List.concat_map
      (fun (name, drift, gen) ->
        List.map (fun n -> run_one ~name ~drift ~edges:(gen n) ~n) (sizes ~quick))
      topologies
  in
  let checks = ref [] in
  let add_check c = checks := c :: !checks in
  List.iter
    (fun (name, n, diam, max_skew, bound, run) ->
      Table.add_row table
        [
          Table.Str name;
          Table.Int n;
          Table.Int diam;
          Table.Float max_skew;
          Table.Float bound;
          Table.Float (max_skew /. bound);
          Table.Bool (Gcs.Invariant.ok run.Common.invariants);
        ];
      add_check
        (Common.check
           ~name:(Printf.sprintf "G(n) respected (%s, n=%d)" name n)
           ~pass:(max_skew <= bound) "max global skew %.3f vs bound %.3f" max_skew bound);
      if not (Gcs.Invariant.ok run.Common.invariants) then
        add_check (Common.invariants_check run))
    results;
  (* Shape: for each topology the measured skew grows with n. *)
  List.iter
    (fun (name, _, _) ->
      let points =
        List.filter_map
          (fun (name', n, _, skew, _, _) ->
            if name' = name then Some (float_of_int n, skew) else None)
          results
      in
      let corr = Analysis.Stats.correlation points in
      add_check
        (Common.check
           ~name:(Printf.sprintf "skew grows with n (%s)" name)
           ~pass:(corr > 0.8) "correlation(n, max skew) = %.3f" corr))
    topologies;
  {
    Common.id = "E1";
    title = "Global skew bound (Theorem 6.9)";
    tables = [ table ];
    checks = List.rev !checks;
  }
