(** E4 — Theorem 4.1 and Figure 1: the lower bound on adjusting new edges.

    Part A (Masking Lemma, Lemma 4.2): on the two-chain network with the
    blocked edges [E_block] constrained to maximal delay, running the
    algorithm in the indistinguishable executions α and β must leave, in
    at least one of them, a skew of at least [T·dist_M(u, v)/4] between the
    designated chain-A nodes [u] and [v] — and hence [Ω(n)] skew between
    [w0] and [wn].

    Part B (Theorem 4.1): at time [T1] the adversary inserts new edges
    between B-chain nodes selected by Lemma 4.3, each carrying initial
    skew ≈ I. The time the algorithm then needs to reduce the skew on
    those edges by a constant factor is measured and compared against the
    [Ω(n/B0)]-shaped prediction: it must exceed a constant fraction of
    [(I/B0)·ΔT] (the wave argument) and scale with the global skew the
    adversary built. *)

val run : quick:bool -> Common.result
