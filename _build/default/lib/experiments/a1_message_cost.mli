(** A1 (ablation) — the message-rate / skew trade-off in ΔH.

    Algorithm 2 broadcasts every subjective ΔH. Smaller ΔH means fresher
    neighbour estimates — staleness enters every bound through
    [ΔT = T + ΔH/(1-rho)] — at proportionally higher message cost. The
    sweep measures messages per node per time unit and the steady skews on
    a fixed adversarial workload. *)

val run : quick:bool -> Common.result
