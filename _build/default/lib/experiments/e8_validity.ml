module Table = Analysis.Table

type scenario = {
  label : string;
  algo : Gcs.Sim.algo;
  topo : (int * int) list;
  n : int;
  drift : Gcs.Drift.spec;
  delay : [ `Maximal | `Uniform | `Zero | `Lossy ];
  churn : bool;
}

let scenarios ~quick =
  let n = if quick then 12 else 20 in
  [
    {
      label = "gradient/path/split/maximal";
      algo = Gcs.Sim.Gradient;
      topo = Topology.Static.path n;
      n;
      drift = Gcs.Drift.Split_extremes;
      delay = `Maximal;
      churn = false;
    };
    {
      label = "gradient/ring/alternating/uniform+churn";
      algo = Gcs.Sim.Gradient;
      topo = Topology.Static.ring n;
      n;
      drift = Gcs.Drift.Alternating 15.;
      delay = `Uniform;
      churn = true;
    };
    {
      label = "gradient/star/random/zero";
      algo = Gcs.Sim.Gradient;
      topo = Topology.Static.star n;
      n;
      drift = Gcs.Drift.Random_walk 10.;
      delay = `Zero;
      churn = false;
    };
    {
      label = "flat/grid/random/uniform";
      algo = Gcs.Sim.Flat_gradient;
      topo = Topology.Static.grid ~rows:4 ~cols:(n / 4);
      n;
      drift = Gcs.Drift.Random_walk 10.;
      delay = `Uniform;
      churn = false;
    };
    {
      label = "max-only/tree/gradient-rates/maximal+churn";
      algo = Gcs.Sim.Max_only;
      topo = Topology.Static.binary_tree n;
      n;
      drift = Gcs.Drift.Gradient_rates;
      delay = `Maximal;
      churn = true;
    };
    {
      label = "gradient/ring/split/lossy+churn";
      algo = Gcs.Sim.Gradient;
      topo = Topology.Static.ring n;
      n;
      drift = Gcs.Drift.Split_extremes;
      delay = `Lossy;
      churn = true;
    };
  ]

let run_scenario ?(seed = 11) s =
  let horizon = 250. in
  let params = Common.default_params ~n:s.n () in
  let clocks = Gcs.Drift.assign params ~horizon ~seed s.drift in
  let bound = params.Gcs.Params.delay_bound in
  let delay =
    match s.delay with
    | `Maximal -> Dsim.Delay.maximal ~bound
    | `Zero -> Dsim.Delay.zero ~bound
    | `Uniform -> Dsim.Delay.uniform (Dsim.Prng.of_int (seed + 1)) ~bound
    | `Lossy ->
      Dsim.Delay.lossy
        (Dsim.Prng.of_int (seed + 4))
        ~rate:0.3
        (Dsim.Delay.uniform (Dsim.Prng.of_int (seed + 1)) ~bound)
  in
  let churn =
    if not s.churn then []
    else
      Topology.Churn.random_churn
        (Dsim.Prng.of_int (seed + 2))
        ~n:s.n ~base:s.topo ~rate:0.2 ~horizon
  in
  let cfg = Gcs.Sim.config ~algo:s.algo ~params ~clocks ~delay ~initial_edges:s.topo () in
  Common.launch cfg ~horizon ~churn

let fingerprint run =
  List.map
    (fun s ->
      ( s.Gcs.Metrics.time,
        s.Gcs.Metrics.global_skew,
        s.Gcs.Metrics.local_skew,
        s.Gcs.Metrics.lmax_lag ))
    (Gcs.Metrics.samples run.Common.recorder)

let run ~quick =
  let table =
    Table.create ~title:"Validity battery (rate >= 1/2, monotone, L <= Lmax)"
      ~columns:[ "scenario"; "probes"; "violations"; "max global skew"; "G(n)" ]
  in
  let checks = ref [] in
  let add c = checks := c :: !checks in
  List.iter
    (fun s ->
      let run = run_scenario s in
      let violations = Gcs.Invariant.violations run.Common.invariants in
      let params = Gcs.Sim.params run.Common.sim in
      Table.add_row table
        [
          Table.Str s.label;
          Table.Int (Gcs.Invariant.probes run.Common.invariants);
          Table.Int (List.length violations);
          Table.Float (Gcs.Metrics.max_global_skew run.Common.recorder);
          Table.Float (Gcs.Params.global_skew_bound params);
        ];
      add
        (Common.check
           ~name:(Printf.sprintf "validity (%s)" s.label)
           ~pass:(violations = []) "%d violations" (List.length violations)))
    (scenarios ~quick);
  (* Determinism: identical seeds reproduce the exact metric trace. *)
  let s = List.hd (scenarios ~quick) in
  let a = fingerprint (run_scenario ~seed:17 s) in
  let b = fingerprint (run_scenario ~seed:17 s) in
  let c = fingerprint (run_scenario ~seed:18 { s with drift = Gcs.Drift.Random_walk 8. }) in
  add
    (Common.check ~name:"determinism: same seed, same trace" ~pass:(a = b)
       "%d samples compared" (List.length a));
  add
    (Common.check ~name:"different seed changes the trace (sanity)" ~pass:(a <> c)
       "traces differ as expected");
  {
    Common.id = "E8";
    title = "Logical-clock validity and determinism";
    tables = [ table ];
    checks = List.rev !checks;
  }
