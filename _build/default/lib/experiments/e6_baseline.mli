(** E6 — baseline comparison: why the gradient algorithm (and its decaying
    tolerance) is needed.

    Scenario: the Section 1 motivating example — a path driven to [Θ(n)]
    skew by the Masking-Lemma adversary, then a new edge between its ends.
    Three algorithms run the identical execution:

    - [Gradient] (Algorithm 2): old edges stay below the stable bound
      while the new edge is absorbed gradually;
    - [Max_only]: the behind node jumps to the freshly learned maximum,
      creating [Θ(n)] skew across its old edges instantly;
    - [Flat_gradient] (constant tolerance [B0]): safe on old edges, but
      its implicit promise — at most ~[B0] skew on every Γ-edge — is
      violated on the new edge for a long stretch, which the decaying
      [B(Δt)] of the real algorithm is designed to avoid (its envelope is
      honored from the moment the edge appears). *)

val run : quick:bool -> Common.result
