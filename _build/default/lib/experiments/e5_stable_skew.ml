module Table = Analysis.Table

type outcome = {
  n : int;
  b0 : float;
  local : float;   (* max local skew after warmup *)
  global : float;  (* max global skew after warmup *)
  stable_bound : float;
  valid : bool;
}

let scenario ?(drift = Gcs.Drift.Split_extremes) ~n ~b0 () =
  let params = Common.default_params ?b0 ~n () in
  let horizon = Float.max 300. (6. *. float_of_int n) in
  let warmup = horizon /. 3. in
  let clocks = Gcs.Drift.assign params ~horizon ~seed:5 drift in
  let delay = Dsim.Delay.maximal ~bound:params.Gcs.Params.delay_bound in
  let cfg =
    Gcs.Sim.config ~params ~clocks ~delay ~initial_edges:(Topology.Static.path n) ()
  in
  let run = Common.launch cfg ~horizon in
  let samples = Gcs.Metrics.samples run.Common.recorder in
  let late = List.filter (fun s -> s.Gcs.Metrics.time >= warmup) samples in
  let local =
    List.fold_left (fun acc s -> Float.max acc s.Gcs.Metrics.local_skew) 0. late
  in
  let global =
    List.fold_left (fun acc s -> Float.max acc s.Gcs.Metrics.global_skew) 0. late
  in
  {
    n;
    b0 = params.Gcs.Params.b0;
    local;
    global;
    stable_bound = Gcs.Params.stable_local_skew params;
    valid = Gcs.Invariant.ok run.Common.invariants;
  }

let run ~quick =
  let ns = if quick then [ 8; 16; 32 ] else [ 8; 16; 32; 64; 96 ] in
  let n_sweep = List.map (fun n -> scenario ~n ~b0:None ()) ns in
  let table_n =
    Table.create ~title:"Steady-state skew vs n (static path, default B0)"
      ~columns:[ "n"; "local skew"; "global skew"; "stable bound"; "valid" ]
  in
  List.iter
    (fun o ->
      Table.add_row table_n
        [
          Table.Int o.n;
          Table.Float o.local;
          Table.Float o.global;
          Table.Float o.stable_bound;
          Table.Bool o.valid;
        ])
    n_sweep;
  let n_fixed = if quick then 32 else 64 in
  let min_b0 = Gcs.Params.min_b0 (Common.default_params ~n:n_fixed ()) in
  let b0_sweep =
    List.map
      (fun f -> scenario ~drift:(Gcs.Drift.Alternating 25.) ~n:n_fixed ~b0:(Some (f *. min_b0)) ())
      (if quick then [ 1.2; 2.5 ] else [ 1.2; 2.5; 5.0; 10.0 ])
  in
  let table_b0 =
    Table.create
      ~title:(Printf.sprintf "Steady-state local skew vs B0 (path, n=%d)" n_fixed)
      ~columns:[ "B0"; "local skew"; "stable bound B0+2rhoW"; "valid" ]
  in
  List.iter
    (fun o ->
      Table.add_row table_b0
        [
          Table.Float o.b0;
          Table.Float o.local;
          Table.Float o.stable_bound;
          Table.Bool o.valid;
        ])
    b0_sweep;
  let all = n_sweep @ b0_sweep in
  let first = List.hd n_sweep and last = List.nth n_sweep (List.length n_sweep - 1) in
  let checks =
    [
      Common.check ~name:"local skew below stable bound everywhere"
        ~pass:(List.for_all (fun o -> o.local <= o.stable_bound) all)
        "max ratio %.3f"
        (List.fold_left (fun acc o -> Float.max acc (o.local /. o.stable_bound)) 0. all);
      Common.check ~name:"gradient property: local skew does not scale with n"
        ~pass:(last.local <= 3. *. Float.max first.local 1.)
        "local skew n=%d: %.3f vs n=%d: %.3f" first.n first.local last.n last.local;
      Common.check ~name:"global skew grows with n"
        ~pass:(last.global > 1.5 *. first.global)
        "global skew n=%d: %.3f vs n=%d: %.3f" first.n first.global last.n last.global;
      Common.check ~name:"validity in all runs"
        ~pass:(List.for_all (fun o -> o.valid) all)
        "%d runs" (List.length all);
    ]
  in
  {
    Common.id = "E5";
    title = "Stable local skew and the gradient property (Theorem 6.12)";
    tables = [ table_n; table_b0 ];
    checks;
  }
