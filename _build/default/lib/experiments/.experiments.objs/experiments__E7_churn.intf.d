lib/experiments/e7_churn.mli: Common
