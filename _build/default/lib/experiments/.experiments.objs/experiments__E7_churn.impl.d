lib/experiments/e7_churn.ml: Analysis Common Dsim Float Gcs List Printf Topology
