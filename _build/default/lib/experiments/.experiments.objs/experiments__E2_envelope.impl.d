lib/experiments/e2_envelope.ml: Analysis Common Float Gcs List Lowerbound Printf Topology
