lib/experiments/a7_optimal_b0.mli: Common
