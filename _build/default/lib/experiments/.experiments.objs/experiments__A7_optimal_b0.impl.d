lib/experiments/a7_optimal_b0.ml: Analysis Common Dsim Float Gcs List Printf Topology
