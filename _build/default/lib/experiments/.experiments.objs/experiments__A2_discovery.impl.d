lib/experiments/a2_discovery.ml: Analysis Common Gcs List Lowerbound Option Printf Topology
