lib/experiments/e4_lowerbound.mli: Common
