lib/experiments/e4_lowerbound.ml: Analysis Array Common Float Gcs List Lowerbound Option Printf Stdlib Topology
