lib/experiments/a2_discovery.mli: Common
