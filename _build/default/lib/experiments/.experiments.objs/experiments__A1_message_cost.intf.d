lib/experiments/a1_message_cost.mli: Common
