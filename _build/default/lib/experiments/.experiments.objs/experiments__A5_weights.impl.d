lib/experiments/a5_weights.ml: Analysis Array Common Dsim Float Gcs List Option Printf Topology
