lib/experiments/e6_baseline.ml: Analysis Common Float Gcs List Lowerbound Printf Topology
