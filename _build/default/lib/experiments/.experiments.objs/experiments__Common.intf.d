lib/experiments/common.mli: Analysis Format Gcs Topology
