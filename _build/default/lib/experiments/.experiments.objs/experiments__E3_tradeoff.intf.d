lib/experiments/e3_tradeoff.mli: Common
