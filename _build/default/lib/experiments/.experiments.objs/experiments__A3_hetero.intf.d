lib/experiments/a3_hetero.mli: Common
