lib/experiments/e8_validity.ml: Analysis Common Dsim Gcs List Printf Topology
