lib/experiments/a6_lossy.ml: Analysis Common Dsim Float Gcs List Printf Stdlib Topology
