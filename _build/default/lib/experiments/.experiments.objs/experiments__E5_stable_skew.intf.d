lib/experiments/e5_stable_skew.mli: Common
