lib/experiments/e2_envelope.mli: Common
