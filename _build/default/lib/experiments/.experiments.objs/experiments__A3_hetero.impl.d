lib/experiments/a3_hetero.ml: Analysis Common Dsim Gcs List Printf Topology
