lib/experiments/e8_validity.mli: Common
