lib/experiments/a1_message_cost.ml: Analysis Common Dsim Float Gcs List Printf Topology
