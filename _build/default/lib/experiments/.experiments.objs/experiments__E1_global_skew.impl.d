lib/experiments/e1_global_skew.ml: Analysis Common Dsim Float Gcs List Printf Topology
