lib/experiments/e1_global_skew.mli: Common
