lib/experiments/e5_stable_skew.ml: Analysis Common Dsim Float Gcs List Printf Topology
