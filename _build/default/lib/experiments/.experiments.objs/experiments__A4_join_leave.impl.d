lib/experiments/a4_join_leave.ml: Analysis Array Common Dsim Float Fun Gcs List Printf Topology
