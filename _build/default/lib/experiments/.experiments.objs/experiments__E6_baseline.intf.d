lib/experiments/e6_baseline.mli: Common
