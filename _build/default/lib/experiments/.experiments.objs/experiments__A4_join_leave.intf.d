lib/experiments/a4_join_leave.mli: Common
