lib/experiments/e3_tradeoff.ml: Analysis Common Float Gcs List Lowerbound Option Printf String Topology
