lib/experiments/a6_lossy.mli: Common
