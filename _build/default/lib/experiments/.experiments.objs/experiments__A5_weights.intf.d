lib/experiments/a5_weights.mli: Common
