lib/experiments/common.ml: Analysis Format Gcs List Topology
