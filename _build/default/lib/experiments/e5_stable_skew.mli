(** E5 — Theorem 6.12 / stable local skew: on long-lived edges the skew
    stays below [B0 + 2 rho W], and — the "gradient" property that names
    the problem — the local skew does {e not} grow with the network size,
    while the global skew does.

    Workload: static paths under adversarially alternating drift (adjacent
    nodes in opposite phase) with maximal delays; sweep [n] at fixed [B0]
    and [B0] at fixed [n], measuring steady-state local skew after a
    warmup. *)

val run : quick:bool -> Common.result
