module Table = Analysis.Table
module Series = Analysis.Series
module Layered = Lowerbound.Layered
module Twochain = Lowerbound.Twochain

let run ~quick =
  let n = if quick then 64 else 96 in
  let k = Stdlib.max 1 (n / 24) in
  let net = Twochain.build ~n ~k in
  let params = Common.default_params ~b0:13.2 ~n () in
  let delay_bound = params.Gcs.Params.delay_bound in
  let mask = Twochain.mask net ~delay:delay_bound in
  let layered =
    Layered.prepare ~n ~edges:net.Twochain.edges ~mask ~source:(Twochain.w0 net)
      ~rho:params.Gcs.Params.rho ~delay_bound
  in
  let u = net.Twochain.u and v = net.Twochain.v in
  let dist_uv = Layered.layer layered v - Layered.layer layered u in
  let t1 = Layered.min_time layered v +. 10. in
  let t2 = t1 +. (float_of_int k *. delay_bound /. (1. +. params.Gcs.Params.rho)) in
  let run_execution clocks delay ~watch ~churn ~horizon =
    let cfg =
      Gcs.Sim.config ~params ~clocks ~delay ~initial_edges:net.Twochain.edges ()
    in
    Common.launch cfg ~horizon ~sample_every:1.0 ~watch ~churn
  in
  (* Part A: skew between u and v at t2 in alpha and beta. *)
  let alpha =
    run_execution (Layered.alpha_clocks layered) (Layered.alpha_delay_policy layered)
      ~watch:[ (u, v) ] ~churn:[] ~horizon:t2
  in
  let skew_alpha = Gcs.Metrics.edge_skew (Gcs.Sim.view alpha.Common.sim) u v in
  (* Part B continues the beta execution past t1 with the new edges, so we
     build it in two stages: first run beta to t1 to read the B-chain
     clocks, pick the Lemma 4.3 nodes, then re-run with the insertion
     schedule (the execution is deterministic, so the prefix is identical). *)
  let beta_probe =
    run_execution (Layered.beta_clocks layered) (Layered.beta_delay_policy layered)
      ~watch:[ (u, v) ] ~churn:[] ~horizon:t1
  in
  let b_ids = Array.of_list (Twochain.b_chain net) in
  let b_clocks =
    Array.map (fun id -> Gcs.Sim.logical_clock beta_probe.Common.sim id) b_ids
  in
  let adjacent_gap =
    let gaps =
      List.init (Array.length b_clocks - 1) (fun i ->
          Float.abs (b_clocks.(i) -. b_clocks.(i + 1)))
    in
    List.fold_left Float.max 0. gaps
  in
  let d = adjacent_gap +. 0.5 in
  let span = b_clocks.(Array.length b_clocks - 1) -. b_clocks.(0) in
  let i_target = Float.max (2. *. d) (span /. 2.) in
  let selected = Lowerbound.Subseq.extract ~values:b_clocks ~c:i_target ~d in
  let new_edges =
    let rec pairs = function
      | a :: (b :: _ as rest) -> (b_ids.(a), b_ids.(b)) :: pairs rest
      | _ -> []
    in
    pairs selected
  in
  let churn =
    List.concat_map (fun (x, y) -> Topology.Churn.single_new_edge ~at:t1 x y) new_edges
  in
  let horizon = t2 +. Float.max 400. (float_of_int n *. 4.) in
  let beta =
    run_execution (Layered.beta_clocks layered) (Layered.beta_delay_policy layered)
      ~watch:((u, v) :: new_edges) ~churn ~horizon
  in
  let view_t2 skew_pair =
    (* edge skews recorded at sample times; read the trace at t2 *)
    Series.value_at (Gcs.Metrics.pair_trace beta.Common.recorder skew_pair) t2
    |> Option.value ~default:0.
  in
  let skew_beta = view_t2 (u, v) in
  let guaranteed = delay_bound *. float_of_int dist_uv /. 4. in
  let best = Float.max skew_alpha skew_beta in
  (* Part A table. *)
  let table_a =
    Table.create
      ~title:
        (Printf.sprintf
           "Masking Lemma on the two-chain network (n=%d, k=%d, dist_M(u,v)=%d)" n k
           dist_uv)
      ~columns:[ "execution"; "skew(u,v) at T2"; "guaranteed T*d/4" ]
  in
  Table.add_row table_a
    [ Table.Str "alpha"; Table.Float skew_alpha; Table.Float guaranteed ];
  Table.add_row table_a
    [ Table.Str "beta"; Table.Float skew_beta; Table.Float guaranteed ];
  (* Part B: settle times of the new edges. *)
  let table_b =
    Table.create
      ~title:
        (Printf.sprintf
           "New B-chain edges (Lemma 4.3): initial skew and time to halve (I~%.1f)"
           i_target)
      ~columns:[ "edge"; "initial skew"; "time to skew<=I/2"; "pred (I/B0)*dT" ]
  in
  let b0 = params.Gcs.Params.b0 in
  let pred i = i /. b0 *. Gcs.Params.delta_t params in
  let settles =
    List.map
      (fun (x, y) ->
        let trace = Gcs.Metrics.pair_trace beta.Common.recorder (x, y) in
        let aged = List.map (fun (t, s) -> (t -. t1, s)) (Series.after t1 trace) in
        let initial = match aged with (_, s) :: _ -> s | [] -> 0. in
        let settle = Series.first_below (Float.max (initial /. 2.) 1e-9) aged in
        Table.add_row table_b
          [
            Table.Str (Printf.sprintf "{%d,%d}" x y);
            Table.Float initial;
            (match settle with Some s -> Table.Float s | None -> Table.Str ">horizon");
            Table.Float (pred initial);
          ];
        (initial, settle))
      new_edges
  in
  let max_settle =
    List.fold_left
      (fun acc (_, s) -> Float.max acc (Option.value ~default:0. s))
      0. settles
  in
  let slowest_pred =
    List.fold_left (fun acc (i, _) -> Float.max acc (pred i)) 0. settles
  in
  let checks =
    [
      Common.check ~name:"Lemma 4.2: skew >= T*dist/4 in alpha or beta"
        ~pass:(best >= guaranteed -. 1e-6)
        "max(%.2f, %.2f) vs %.2f" skew_alpha skew_beta guaranteed;
      Common.check ~name:"new edges found"
        ~pass:(List.length new_edges >= 1)
        "%d Lemma-4.3 edges with gaps in [%.1f, %.1f]" (List.length new_edges)
        (i_target -. d) i_target;
      Common.check ~name:"Lemma 4.3 gap property"
        ~pass:(Lowerbound.Subseq.check_gaps ~values:b_clocks ~c:i_target ~d selected)
        "selected %d nodes along the B chain" (List.length selected);
      Common.check ~name:"reduction is not instantaneous (lower-bound shape)"
        ~pass:(max_settle >= 0.2 *. slowest_pred)
        "slowest settle %.1f vs wave prediction %.1f" max_settle slowest_pred;
      Common.invariants_check beta;
    ]
  in
  {
    Common.id = "E4";
    title = "Lower bound constructions (Lemma 4.2, Lemma 4.3, Theorem 4.1)";
    tables = [ table_a; table_b ];
    checks;
  }
