module Table = Analysis.Table

let run ~quick =
  let n = if quick then 24 else 48 in
  let params = Gcs.Params.make ~n () in
  let edges = Topology.Static.path n in
  let t_add = 100. in
  let anneal = Gcs.Params.stabilize_real params in
  let horizon = t_add +. anneal +. 100. in
  let clocks = Gcs.Drift.assign params ~horizon ~seed:6 (Gcs.Drift.Random_walk 25.) in
  let delay =
    Dsim.Delay.uniform (Dsim.Prng.of_int 17) ~bound:params.Gcs.Params.delay_bound
  in
  let cfg = Gcs.Sim.config ~params ~clocks ~delay ~initial_edges:edges () in
  let sim = Gcs.Sim.create cfg in
  let engine = Gcs.Sim.engine sim in
  Gcs.Sim.add_edge_at sim ~at:t_add 0 (n - 1);
  (* Sample the effective (weighted) diameter. *)
  let samples = ref [] in
  let nodes = Array.init n (fun i -> Option.get (Gcs.Sim.gradient_node sim i)) in
  let rec probe t =
    if t <= horizon then
      Dsim.Engine.at engine ~time:t (fun () ->
          let current = Dsim.Dyngraph.edges (Dsim.Engine.graph engine) in
          let weighted = Gcs.Weights.weighted_edges nodes current in
          samples := (t, Gcs.Weights.effective_diameter ~n weighted) :: !samples;
          probe (t +. 2.))
  in
  probe 5.;
  Gcs.Sim.run_until sim horizon;
  let series = List.rev !samples in
  let value_at t = Option.value ~default:nan (Analysis.Series.value_at series t) in
  let before = value_at (t_add -. 5.) in
  let just_after = value_at (t_add +. 10.) in
  let final = value_at horizon in
  let annealed_target =
    (* On the closed cycle the weighted diameter converges to B0 times the
       cycle's hop diameter. *)
    Gcs.Weights.hop_diameter_weight params (n / 2)
  in
  let table =
    Table.create
      ~title:
        (Printf.sprintf
           "Effective (weighted) diameter around a shortcut at t=%.0f (path n=%d)" t_add n)
      ~columns:[ "time"; "effective diameter"; "note" ]
  in
  List.iter
    (fun (t, note) ->
      Table.add_row table [ Table.Float t; Table.Float (value_at t); Table.Str note ])
    [
      (t_add -. 5., "before the shortcut");
      (t_add +. 10., "just after (shortcut still heavy)");
      (t_add +. (anneal /. 2.), "annealing");
      (t_add +. anneal, "anneal horizon");
      (horizon, "final");
    ];
  let after_add = Analysis.Series.after t_add series in
  (* The anneal is over once B has decayed to B0 (subjective stabilization
     time); past it the diameter is flat, so measure the trend inside the
     annealing window only. *)
  let anneal_window =
    Analysis.Series.between t_add
      (t_add +. Gcs.Params.stabilize_subjective params +. 10.)
      series
  in
  let decreasing_corr = Analysis.Stats.correlation anneal_window in
  (* With the shortcut at birth weight B(0), the worst pair sits where
     path distance and shortcut route balance:
     diameter ~ (B(0) + (n-1) B0)/2, capped by the old path weight. *)
  let predicted_just_after =
    Float.min before ((Gcs.Params.b params 0. +. (float_of_int (n - 1) *. params.Gcs.Params.b0)) /. 2.)
  in
  let checks =
    [
      Common.check ~name:"birth weight prevents a full collapse"
        ~pass:(just_after > 1.05 *. final)
        "just after %.1f vs annealed %.1f" just_after final;
      Common.check ~name:"partial drop matches the B(0) tent prediction"
        ~pass:(Float.abs (just_after -. predicted_just_after) < 0.25 *. predicted_just_after)
        "measured %.1f vs predicted %.1f" just_after predicted_just_after;
      Common.check ~name:"effective diameter anneals downward"
        ~pass:(decreasing_corr < -0.8)
        "correlation(t, diameter) after the add = %.3f" decreasing_corr;
      Common.check ~name:"anneals toward B0 x cycle diameter"
        ~pass:(final < 1.25 *. annealed_target && final < 0.75 *. before)
        "final %.1f vs target %.1f (was %.1f)" final annealed_target before;
      Common.check ~name:"weighted never below annealed floor"
        ~pass:(List.for_all (fun (_, d) -> d >= 0.9 *. annealed_target) after_add)
        "B0 floors every weight";
    ]
  in
  {
    Common.id = "A5";
    title = "Extension: weighted-graph view / effective diameter (Section 7)";
    tables = [ table ];
    checks;
  }
