module Table = Analysis.Table

let run ~quick =
  let n = if quick then 24 else 32 in
  let horizon = if quick then 600. else 1200. in
  let params = Common.default_params ~n () in
  let base = Topology.Static.ring n in
  (* Chords give the churn generator non-tree edges to play with. *)
  let chords =
    List.init (n / 8) (fun i -> Dsim.Dyngraph.normalize (4 * i) (((4 * i) + (n / 2)) mod n))
    |> List.sort_uniq compare
  in
  let edges = List.sort_uniq compare (base @ chords) in
  let prng = Dsim.Prng.of_int 99 in
  let churn_events =
    Topology.Churn.random_churn prng ~n ~base:edges ~rate:0.5 ~horizon
  in
  let flap_events =
    Topology.Churn.flapping ~extra:(Topology.Static.non_tree_edges ~n edges)
      ~period:40. ~up_for:25. ~horizon
  in
  let window = params.Gcs.Params.delay_bound +. params.Gcs.Params.discovery_bound in
  let connected_ok =
    Topology.Connectivity.interval_connected ~n ~window ~horizon ~initial:edges
      (Topology.Churn.normalize (churn_events @ flap_events))
  in
  let run_with events ~clocks_seed =
    let clocks =
      Gcs.Drift.assign params ~horizon ~seed:clocks_seed Gcs.Drift.Split_extremes
    in
    let delay = Dsim.Delay.maximal ~bound:params.Gcs.Params.delay_bound in
    let cfg = Gcs.Sim.config ~params ~clocks ~delay ~initial_edges:edges () in
    Common.launch cfg ~horizon ~churn:events
  in
  let churny = run_with (Topology.Churn.normalize (churn_events @ flap_events)) ~clocks_seed:3 in
  (* Partition schedule: remove a full cut around the ring for a long
     stretch, aligned with the fast/slow drift boundary so the two sides'
     max estimates drift apart at the full 2 rho - long enough to push the
     global skew past G(n), demonstrating that Theorem 6.9 really needs
     the (T+D)-interval connectivity premise. *)
  let cut =
    [ ((n / 2) - 1, n / 2); (0, n - 1) ] @ chords
    |> List.map (fun (u, v) -> Dsim.Dyngraph.normalize u v)
    |> List.sort_uniq compare
  in
  let down_for = horizon /. 2.5 in
  let partition_events =
    Topology.Churn.periodic_partition ~cut ~first_cut_at:(horizon /. 6.) ~down_for
      ~every:(horizon /. 2.) ~horizon
  in
  let partition_violates =
    not
      (Topology.Connectivity.interval_connected ~n ~window ~horizon ~initial:edges
         partition_events)
  in
  let partitioned = run_with partition_events ~clocks_seed:3 in
  let bound = Gcs.Params.global_skew_bound params in
  let skew_churny = Gcs.Metrics.max_global_skew churny.Common.recorder in
  let skew_partitioned = Gcs.Metrics.max_global_skew partitioned.Common.recorder in
  let drift_accumulation = 2. *. params.Gcs.Params.rho *. down_for in
  let table =
    Table.create ~title:(Printf.sprintf "Global skew under churn (ring+chords, n=%d)" n)
      ~columns:
        [ "schedule"; "interval connected"; "max global skew"; "G(n)"; "valid" ]
  in
  Table.add_row table
    [
      Table.Str "backbone-preserving churn";
      Table.Bool connected_ok;
      Table.Float skew_churny;
      Table.Float bound;
      Table.Bool (Gcs.Invariant.ok churny.Common.invariants);
    ];
  Table.add_row table
    [
      Table.Str (Printf.sprintf "partitioned (down %.0f)" down_for);
      Table.Bool (not partition_violates);
      Table.Float skew_partitioned;
      Table.Float bound;
      Table.Bool (Gcs.Invariant.ok partitioned.Common.invariants);
    ];
  let checks =
    [
      Common.check ~name:"churn schedule is interval connected" ~pass:connected_ok
        "window %.2f over horizon %.0f" window horizon;
      Common.check ~name:"partition schedule violates interval connectivity"
        ~pass:partition_violates "cut of %d edges down for %.0f" (List.length cut)
        down_for;
      Common.check ~name:"G(n) holds under connected churn"
        ~pass:(skew_churny <= bound) "%.2f vs %.2f" skew_churny bound;
      Common.check ~name:"partitions inflate global skew"
        ~pass:(skew_partitioned >= 2. *. skew_churny)
        "partitioned %.2f vs churny %.2f (drift accumulation 2*rho*down = %.1f)"
        skew_partitioned skew_churny drift_accumulation;
      Common.check ~name:"long partitions break the G(n) bound"
        ~pass:(skew_partitioned > 0.8 *. Float.min bound drift_accumulation)
        "partitioned %.2f vs G(n) = %.2f" skew_partitioned bound;
      Common.check ~name:"validity under churn"
        ~pass:
          (Gcs.Invariant.ok churny.Common.invariants
          && Gcs.Invariant.ok partitioned.Common.invariants)
        "both monitors clean";
    ]
  in
  {
    Common.id = "E7";
    title = "Interval-connectivity requirement (Lemma 6.8)";
    tables = [ table ];
    checks;
  }
