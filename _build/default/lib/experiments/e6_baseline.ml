module Table = Analysis.Table
module Series = Analysis.Series

type outcome = {
  algo : Gcs.Sim.algo;
  initial_skew : float;
  peak_old_edge : float;   (* worst skew on pre-existing edges after the add *)
  settle : float option;   (* new edge skew <= stable bound *)
  promise_violation : float; (* time the new edge exceeds the claimed envelope *)
  valid : bool;
}

let b0 = 10.5

let scenario ~n ~algo =
  let params = Common.default_params ~b0 ~n () in
  let edges = Topology.Static.path n in
  let layered =
    Lowerbound.Layered.prepare ~n ~edges ~mask:Lowerbound.Mask.empty ~source:0
      ~rho:params.Gcs.Params.rho ~delay_bound:params.Gcs.Params.delay_bound
  in
  let t_add = Lowerbound.Layered.min_time layered (n - 1) +. 10. in
  let horizon = t_add +. 400. in
  let old_watch = List.init (n - 1) (fun i -> (i, i + 1)) in
  let cfg =
    Gcs.Sim.config ~algo ~params
      ~clocks:(Lowerbound.Layered.beta_clocks layered)
      ~delay:(Lowerbound.Layered.beta_delay_policy layered)
      ~initial_edges:edges ()
  in
  let run =
    Common.launch cfg ~horizon ~sample_every:0.5
      ~watch:((0, n - 1) :: old_watch)
      ~churn:(Topology.Churn.single_new_edge ~at:t_add 0 (n - 1))
  in
  let new_trace =
    List.map
      (fun (t, s) -> (t -. t_add, s))
      (Series.after t_add (Gcs.Metrics.pair_trace run.Common.recorder (0, n - 1)))
  in
  let initial_skew = match new_trace with (_, s) :: _ -> s | [] -> 0. in
  let peak_old_edge =
    List.fold_left
      (fun acc e ->
        Float.max acc
          (Series.max_value
             (Series.after t_add (Gcs.Metrics.pair_trace run.Common.recorder e))))
      0. old_watch
  in
  let stable = Gcs.Params.stable_local_skew params in
  let settle = Series.first_below stable new_trace in
  (* The envelope each algorithm implicitly claims for a Γ-edge of a given
     age: the decaying B for Gradient, the constant B0 for Flat_gradient
     (both plus the 2 rho W estimation slack); Max_only makes no local
     claim, so no violation is counted. *)
  let claimed_envelope age =
    let open Gcs.Params in
    match algo with
    | Gcs.Sim.Gradient -> dynamic_local_skew params age
    | Gcs.Sim.Flat_gradient ->
      (* The static guarantee of [13] that a constant tolerance claims:
         B0 plus the estimate-staleness slack (Lemma 6.6). It only starts
         once the edge can have entered Gamma. *)
      if age <= delta_t params +. params.discovery_bound then infinity
      else params.b0 +. (2. *. params.rho *. tau params)
    | Gcs.Sim.Max_only -> infinity
  in
  let promise_violation =
    let sample_step = 0.5 in
    List.fold_left
      (fun acc (age, skew) ->
        if skew > claimed_envelope age then acc +. sample_step else acc)
      0. new_trace
  in
  {
    algo;
    initial_skew;
    peak_old_edge;
    settle;
    promise_violation;
    valid = Gcs.Invariant.ok run.Common.invariants;
  }

let run ~quick =
  let n = if quick then 64 else 128 in
  let algos = [ Gcs.Sim.Gradient; Gcs.Sim.Flat_gradient; Gcs.Sim.Max_only ] in
  let outcomes = List.map (fun algo -> scenario ~n ~algo) algos in
  let table =
    Table.create
      ~title:
        (Printf.sprintf
           "New-edge absorption by algorithm (path n=%d + edge between ends)" n)
      ~columns:
        [
          "algorithm"; "initial skew"; "peak old-edge skew"; "settle time";
          "promise violated for"; "valid";
        ]
  in
  List.iter
    (fun o ->
      Table.add_row table
        [
          Table.Str (Gcs.Sim.algo_to_string o.algo);
          Table.Float o.initial_skew;
          Table.Float o.peak_old_edge;
          (match o.settle with Some s -> Table.Float s | None -> Table.Str ">horizon");
          Table.Float o.promise_violation;
          Table.Bool o.valid;
        ])
    outcomes;
  let find algo = List.find (fun o -> o.algo = algo) outcomes in
  let grad = find Gcs.Sim.Gradient in
  let flat = find Gcs.Sim.Flat_gradient in
  let max_only = find Gcs.Sim.Max_only in
  let params = Common.default_params ~b0 ~n () in
  let stable = Gcs.Params.stable_local_skew params in
  let checks =
    [
      Common.check ~name:"gradient keeps old edges below the stable bound"
        ~pass:(grad.peak_old_edge <= stable +. 1e-6)
        "peak %.2f vs bound %.2f" grad.peak_old_edge stable;
      Common.check ~name:"max-only spikes Theta(n) skew onto old edges"
        ~pass:
          (max_only.peak_old_edge >= 0.7 *. max_only.initial_skew
          && max_only.peak_old_edge >= 2. *. grad.peak_old_edge)
        "max-only %.2f vs gradient %.2f (initial %.2f)" max_only.peak_old_edge
        grad.peak_old_edge max_only.initial_skew;
      Common.check ~name:"gradient honors its envelope from edge birth"
        ~pass:(grad.promise_violation = 0.)
        "violated for %.1f time units" grad.promise_violation;
      Common.check ~name:"flat tolerance breaks its promise on the new edge"
        ~pass:(flat.promise_violation > 0.)
        "B0-envelope violated for %.1f time units (decaying B: %.1f)"
        flat.promise_violation grad.promise_violation;
      Common.check ~name:"all runs settle eventually"
        ~pass:(List.for_all (fun o -> o.settle <> None) outcomes)
        "settle times recorded for all three algorithms";
      Common.check ~name:"validity in all runs"
        ~pass:(List.for_all (fun o -> o.valid) outcomes)
        "%d runs" (List.length outcomes);
    ]
  in
  {
    Common.id = "E6";
    title = "Baseline comparison (Section 1 motivating example)";
    tables = [ table ];
    checks;
  }
