(** A2 (ablation) — the discovery lag D.

    Nodes learn of topology changes up to [D] late (Section 3.2), and [D]
    enters the bounds through [τ] and through the real-time offset
    [ΔT + D + W] of the envelope. Sweeping the actual lag (0 .. D) on the
    new-edge scenario shows absorption shifting later by roughly the lag
    while the envelope — parameterized by the worst case — always holds. *)

val run : quick:bool -> Common.result
