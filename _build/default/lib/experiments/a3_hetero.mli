(** A3 (extension) — heterogeneous link delay bounds (Section 7 /
    reference [9]).

    A path alternates tight links ([T_e = T/10]) with loose links
    ([T_e = T]); adjacent nodes drift in opposite phase. With the
    per-link algorithm ({!Gcs.Hetero}) each link gets a tolerance and
    timeout scaled to its own uncertainty [τ_e]:

    - measured steady skew on tight links is a fraction of that on loose
      links (skew tracks uncertainty, not hop count);
    - tight links honor their {e refined} stable bound
      [B0_e = B0 τ_e/τ « B0], a promise the uniform algorithm cannot
      make;
    - the uniform-tolerance run on the identical workload shows the same
      physics but only the loose [B0] promise. *)

val run : quick:bool -> Common.result
