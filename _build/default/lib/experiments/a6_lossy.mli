(** A6 (robustness) — breaking the reliable-link assumption.

    The model (Section 3.2) assumes reliable FIFO delivery; the algorithm
    additionally self-protects against silence with the [lost(v)] timeout.
    Injecting independent silent message loss (which the model forbids)
    probes how much of the algorithm's behaviour depends on reliability:

    - validity (monotone, rate >= 1/2, L <= Lmax) is unconditional and
      must survive any loss rate;
    - skews degrade gracefully with moderate loss (every lost update is
      recovered by the next periodic broadcast ΔH later);
    - heavy loss churns Γ through spurious [lost(v)] expirations, which is
      observable but still safe (a node with empty Γ free-runs toward
      Lmax; it never violates validity). *)

val run : quick:bool -> Common.result
