(** A5 (extension) — the weighted-graph view: the effective diameter
    anneals (Section 7).

    After a shortcut edge appears across a path, the hop diameter halves
    instantly, but the algorithm cannot exploit the shortcut immediately:
    its weight (the mutual tolerance [B^v_u]) starts above [5 G(n)] and
    decays to [B0]. Sampling the weighted (effective) diameter over time
    shows a continuous shrink from the old-path value toward
    [B0 x cycle-diameter] — the paper's closing intuition made
    measurable. *)

val run : quick:bool -> Common.result
