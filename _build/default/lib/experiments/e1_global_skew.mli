(** E1 — Theorem 6.9: the algorithm guarantees a global skew of
    [G(n) = ((1+rho)T + 2 rho D)(n-1)].

    Workload: adversarial drift (fast half vs slow half) under maximal
    message delays, on several topologies and network sizes. For every run
    the maximum observed global skew must stay below [G(n)], and across
    sizes it must grow (the bound's linear shape), while validity
    invariants hold. *)

val run : quick:bool -> Common.result
