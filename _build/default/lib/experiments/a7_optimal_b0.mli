(** A7 — Corollary 6.14's √(rho n) sweet spot.

    The stable local skew bound is [S(B0) = B0 + 2 rho W(B0)] with
    [W = (4 G(n)/B0 + 1) τ]: increasing [B0] loosens the per-edge target
    but shrinks the window [W] in which estimates can mislead. The
    minimizer is [B0* = sqrt(8 rho G(n) τ)] = Θ(√(rho n)) — exactly the
    parameter choice Corollary 6.14 says matches the lower bound.

    The experiment verifies, on the implemented formulas (no asymptotic
    hand-waving): a grid search over admissible [B0] locates the
    calculus minimizer; log-log fits of [B0*] against [n] and against
    [rho] have slope ≈ 1/2; and a simulation at [B0*] stays within the
    optimal bound. *)

val run : quick:bool -> Common.result
