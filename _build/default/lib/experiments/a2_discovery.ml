module Table = Analysis.Table
module Series = Analysis.Series

type outcome = {
  lag : float;
  onset : float option;  (* first decrease of the new edge's skew *)
  settle : float option; (* skew <= I/4 *)
  envelope_ok : bool;
  valid : bool;
}

let scenario ~n ~lag =
  let params = Gcs.Params.make ~b0:13.2 ~n () in
  let edges = Topology.Static.path n in
  let layered =
    Lowerbound.Layered.prepare ~n ~edges ~mask:Lowerbound.Mask.empty ~source:0
      ~rho:params.Gcs.Params.rho ~delay_bound:params.Gcs.Params.delay_bound
  in
  let t_add = Lowerbound.Layered.min_time layered (n - 1) +. 10. in
  let horizon = t_add +. 200. in
  let cfg =
    Gcs.Sim.config ~params ~discovery_lag:lag
      ~clocks:(Lowerbound.Layered.beta_clocks layered)
      ~delay:(Lowerbound.Layered.beta_delay_policy layered)
      ~initial_edges:edges ()
  in
  let run =
    Common.launch cfg ~horizon ~sample_every:0.25
      ~watch:[ (0, n - 1) ]
      ~churn:(Topology.Churn.single_new_edge ~at:t_add 0 (n - 1))
  in
  let aged =
    List.map
      (fun (t, s) -> (t -. t_add, s))
      (Series.after t_add (Gcs.Metrics.pair_trace run.Common.recorder (0, n - 1)))
  in
  let initial = match aged with (_, s) :: _ -> s | [] -> 0. in
  let onset =
    List.find_opt (fun (_, s) -> s < initial -. 1.) aged |> Option.map fst
  in
  let settle = Series.first_below (initial /. 4.) aged in
  let envelope_ok =
    List.for_all
      (fun (age, skew) -> skew <= Gcs.Params.dynamic_local_skew params age +. 1e-6)
      aged
  in
  { lag; onset; settle; envelope_ok; valid = Gcs.Invariant.ok run.Common.invariants }

let run ~quick =
  let n = if quick then 32 else 64 in
  let params = Gcs.Params.make ~n () in
  let d = params.Gcs.Params.discovery_bound in
  let lags = [ 0.; 0.5 *. d; d ] in
  let outcomes = List.map (fun lag -> scenario ~n ~lag) lags in
  let table =
    Table.create
      ~title:
        (Printf.sprintf "Discovery lag vs new-edge absorption (path n=%d, D=%.2f)" n d)
      ~columns:[ "lag"; "absorption onset"; "settle (I/4)"; "envelope held"; "valid" ]
  in
  List.iter
    (fun o ->
      let cell = function Some x -> Table.Float x | None -> Table.Str "-" in
      Table.add_row table
        [
          Table.Float o.lag;
          cell o.onset;
          cell o.settle;
          Table.Bool o.envelope_ok;
          Table.Bool o.valid;
        ])
    outcomes;
  let onset_of o = Option.value ~default:infinity o.onset in
  let first = List.hd outcomes and last = List.nth outcomes (List.length outcomes - 1) in
  let checks =
    [
      Common.check ~name:"absorption starts later with larger lag"
        ~pass:(onset_of last >= onset_of first)
        "onset %.2f (lag 0) vs %.2f (lag D)" (onset_of first) (onset_of last);
      Common.check ~name:"onset shift is about the lag"
        ~pass:(onset_of last -. onset_of first <= d +. 2. *. Gcs.Params.delta_t params)
        "shift %.2f vs D + 2dT = %.2f" (onset_of last -. onset_of first)
        (d +. 2. *. Gcs.Params.delta_t params);
      Common.check ~name:"envelope holds at every lag"
        ~pass:(List.for_all (fun o -> o.envelope_ok) outcomes)
        "the worst-case-D envelope covers every actual lag";
      Common.check ~name:"all settle"
        ~pass:(List.for_all (fun o -> o.settle <> None) outcomes)
        "%d runs" (List.length outcomes);
      Common.check ~name:"validity"
        ~pass:(List.for_all (fun o -> o.valid) outcomes)
        "%d runs" (List.length outcomes);
    ]
  in
  {
    Common.id = "A2";
    title = "Ablation: discovery lag (Section 3.2's D)";
    tables = [ table ];
    checks;
  }
