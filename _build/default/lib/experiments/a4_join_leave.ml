module Table = Analysis.Table
module Series = Analysis.Series

let run ~quick =
  let core = 8 in
  let joiners = if quick then 4 else 8 in
  let n = core + joiners in
  let params = Gcs.Params.make ~n () in
  let stable = Gcs.Params.stable_local_skew params in
  let join_every = 60. in
  let first_join = 120. in
  let horizon = first_join +. (join_every *. float_of_int joiners) +. 250. in
  let clocks = Gcs.Drift.assign params ~horizon ~seed:21 (Gcs.Drift.Random_walk 30.) in
  (* Make joiner clocks extreme so isolation builds real offset. *)
  let clocks =
    Array.mapi
      (fun i c ->
        if i < core then c
        else if i mod 2 = 0 then Dsim.Hwclock.fastest ~rho:params.Gcs.Params.rho
        else Dsim.Hwclock.slowest ~rho:params.Gcs.Params.rho)
      clocks
  in
  let ring = Topology.Static.ring core in
  (* Join plan: node core+j joins at first_join + j*join_every with edges
     to two ring members; node 2 leaves mid-run. *)
  let join_time j = first_join +. (join_every *. float_of_int j) in
  let join_edges j =
    let joiner = core + j in
    [ (joiner, j mod core); (joiner, (j + 3) mod core) ]
  in
  let churn =
    List.concat
      (List.init joiners (fun j ->
           List.map
             (fun (u, v) -> { Topology.Churn.time = join_time j; op = Topology.Churn.Add; u; v })
             (join_edges j)))
    @ (* node (core-1) leaves after the last join and rejoins later *)
    (let leaver = core - 1 in
     let t_leave = join_time joiners +. 30. in
     List.map
       (fun v -> { Topology.Churn.time = t_leave; op = Topology.Churn.Remove; u = leaver; v })
       [ (leaver + 1) mod core; leaver - 1 ]
     @ List.map
         (fun v ->
           { Topology.Churn.time = t_leave +. 80.; op = Topology.Churn.Add; u = leaver; v })
         [ (leaver + 1) mod core; leaver - 1 ])
  in
  let watch = ring @ List.concat (List.init joiners join_edges) in
  let cfg =
    Gcs.Sim.config ~params ~clocks
      ~delay:(Dsim.Delay.uniform (Dsim.Prng.of_int 13) ~bound:params.Gcs.Params.delay_bound)
      ~initial_edges:ring ()
  in
  let run =
    Common.launch cfg ~horizon ~sample_every:0.5 ~watch
      ~churn:(Topology.Churn.normalize churn)
  in
  let table =
    Table.create
      ~title:
        (Printf.sprintf
           "Join absorption: %d joiners into an %d-ring (isolation builds rho*t offset)"
           joiners core)
      ~columns:
        [ "joiner"; "join at"; "initial skew"; "envelope ok"; "time to stable bound" ]
  in
  let checks = ref [] in
  let add c = checks := c :: !checks in
  List.iteri
    (fun j _ ->
      let t_join = join_time j in
      let edge = List.hd (join_edges j) in
      let aged =
        List.map
          (fun (t, s) -> (t -. t_join, s))
          (Series.after t_join (Gcs.Metrics.pair_trace run.Common.recorder edge))
      in
      let initial = match aged with (_, s) :: _ -> s | [] -> 0. in
      let violations =
        List.filter
          (fun (age, skew) -> skew > Gcs.Params.dynamic_local_skew params age +. 1e-6)
          aged
      in
      let settle = Series.first_below stable aged in
      Table.add_row table
        [
          Table.Int (core + j);
          Table.Float t_join;
          Table.Float initial;
          Table.Bool (violations = []);
          (match settle with Some s -> Table.Float s | None -> Table.Str "-");
        ];
      add
        (Common.check
           ~name:(Printf.sprintf "join %d within envelope" (core + j))
           ~pass:(violations = []) "%d violations over %d samples"
           (List.length violations) (List.length aged));
      add
        (Common.check
           ~name:(Printf.sprintf "join %d reaches the stable bound" (core + j))
           ~pass:(settle <> None) "initial skew %.2f" initial))
    (List.init joiners Fun.id);
  (* Established ring edges (excluding the leaver's) must hold the stable
     bound through every join. *)
  let leaver = core - 1 in
  let steady_ring_peak =
    List.fold_left
      (fun acc (u, v) ->
        if u = leaver || v = leaver then acc
        else
          Float.max acc
            (Series.max_value
               (Series.after (Gcs.Params.stabilize_real params)
                  (Gcs.Metrics.pair_trace run.Common.recorder (u, v)))))
      0. ring
  in
  (* The first (fast) joiner is the interesting one: it drifted rho*t
     ahead while isolated, so its arrival pushes the whole network up a
     gradient wave. Later fast joiners land on the 1+rho envelope an
     earlier one already established, and slow joiners simply jump up. *)
  let first_join_brings_offset =
    let edge = List.hd (join_edges 0) in
    let trace = Series.after (join_time 0) (Gcs.Metrics.pair_trace run.Common.recorder edge) in
    match trace with
    | (_, s) :: _ -> s >= 0.25 *. params.Gcs.Params.rho *. join_time 0
    | [] -> false
  in
  add
    (Common.check ~name:"established ring edges keep the stable bound"
       ~pass:(steady_ring_peak <= stable +. 1e-6)
       "peak %.3f vs %.3f" steady_ring_peak stable);
  add
    (Common.check ~name:"first fast joiner carries Theta(rho t) offset"
       ~pass:first_join_brings_offset
       "isolation really builds clock offset (>= rho t / 4)");
  add (Common.invariants_check run);
  {
    Common.id = "A4";
    title = "Extension: node joins and leaves (Section 7)";
    tables = [ table ];
    checks = List.rev !checks;
  }
