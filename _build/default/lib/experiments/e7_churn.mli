(** E7 — the (T+D)-interval connectivity premise (Lemma 6.8/Theorem 6.9).

    The global-skew analysis requires the dynamic graph to stay connected
    over every window of length [T + D]. Two workloads probe the premise:

    - heavy but backbone-preserving churn (every non-tree edge flaps and
      churns randomly): connectivity holds at every instant, so the
      global skew must stay below [G(n)] despite the turbulence;
    - a deliberately violating schedule (a cut edge goes down for long
      stretches): while partitioned, the two sides' max estimates drift
      apart at up to [2 rho], and the measured global skew is expected to
      exceed what the same network exhibits when connected — demonstrating
      that the premise is necessary, with skew growth tracking
      [2 rho * downtime]. *)

val run : quick:bool -> Common.result
