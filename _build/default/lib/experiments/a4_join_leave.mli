(** A4 (extension) — node joins and leaves (Section 7's open question).

    The model keeps the node set fixed; we realize joins as nodes that
    spend a long prefix isolated (no edges — permitted by the model, since
    interval connectivity is only needed for the bounds to hold) and then
    acquire links, and leaves as all-edge removals. An isolated node's
    logical clock legitimately drifts up to [rho·t] from the connected
    component, so a late joiner is exactly a "new edge with Θ(rho t)
    initial skew" event:

    - edges among long-connected members keep the stable bound throughout;
    - each join edge stays within the dynamic envelope for its age and
      reaches the stable bound;
    - leaves are absorbed silently (the lost-timer path). *)

val run : quick:bool -> Common.result
