module Table = Analysis.Table
module Series = Analysis.Series

(* Build Theta(n) skew on a path with the beta execution of the Masking
   Lemma (empty mask, source 0), then close the cycle with a new edge
   {0, n-1} and watch its skew decay inside the envelope. *)
let run ~quick =
  let n = if quick then 32 else 64 in
  let params = Common.default_params ~b0:13.2 ~n () in
  let edges = Topology.Static.path n in
  let layered =
    Lowerbound.Layered.prepare ~n ~edges ~mask:Lowerbound.Mask.empty ~source:0
      ~rho:params.Gcs.Params.rho ~delay_bound:params.Gcs.Params.delay_bound
  in
  let t_add = Lowerbound.Layered.min_time layered (n - 1) +. 10. in
  let horizon = t_add +. Float.max 300. (Gcs.Params.stabilize_real params /. 2.) in
  let new_edge = (0, n - 1) in
  let old_edges = [ (0, 1); (n / 2, (n / 2) + 1); (n - 2, n - 1) ] in
  let cfg =
    Gcs.Sim.config ~params
      ~clocks:(Lowerbound.Layered.beta_clocks layered)
      ~delay:(Lowerbound.Layered.beta_delay_policy layered)
      ~initial_edges:edges ()
  in
  let run =
    Common.launch cfg ~horizon ~sample_every:0.5
      ~watch:(new_edge :: old_edges)
      ~churn:(Topology.Churn.single_new_edge ~at:t_add 0 (n - 1))
  in
  let trace = Gcs.Metrics.pair_trace run.Common.recorder new_edge in
  let after_add = Series.after t_add trace in
  let aged = List.map (fun (t, skew) -> (t -. t_add, skew)) after_add in
  let initial_skew = match aged with (_, s) :: _ -> s | [] -> 0. in
  let envelope = Gcs.Params.dynamic_local_skew params in
  (* Table: skew vs envelope at a ladder of edge ages. *)
  let table =
    Table.create
      ~title:
        (Printf.sprintf
           "New-edge skew vs dynamic local skew envelope s(n, age), n=%d, I=%.1f" n
           initial_skew)
      ~columns:[ "edge age"; "measured skew"; "envelope s(n,age)"; "within" ]
  in
  let ages =
    List.filter
      (fun a -> a <= horizon -. t_add)
      [ 0.; 5.; 10.; 20.; 40.; 80.; 120.; 160.; 200.; 250.; 300. ]
  in
  List.iter
    (fun age ->
      match Series.value_at aged age with
      | Some skew ->
        Table.add_row table
          [
            Table.Float age;
            Table.Float skew;
            Table.Float (envelope age);
            Table.Bool (skew <= envelope age +. 1e-6);
          ]
      | None -> ())
    ages;
  (* Checks. *)
  let violations =
    List.filter (fun (age, skew) -> skew > envelope age +. 1e-6) aged
  in
  let stable = Gcs.Params.stable_local_skew params in
  let final_skew = match List.rev aged with (_, s) :: _ -> s | [] -> infinity in
  let old_edge_peak =
    List.fold_left
      (fun acc e ->
        Float.max acc (Series.max_value (Gcs.Metrics.pair_trace run.Common.recorder e)))
      0. old_edges
  in
  let checks =
    [
      Common.check ~name:"initial skew is Theta(n)"
        ~pass:(initial_skew >= 0.8 *. float_of_int (n - 1) *. params.Gcs.Params.delay_bound)
        "I = %.2f vs (n-1)T = %.2f" initial_skew
        (float_of_int (n - 1) *. params.Gcs.Params.delay_bound);
      Common.check ~name:"skew within envelope at all ages" ~pass:(violations = [])
        "%d envelope violations out of %d samples" (List.length violations)
        (List.length aged);
      Common.check ~name:"new edge converges to stable skew"
        ~pass:(final_skew <= stable +. 1.)
        "final skew %.3f vs stable bound %.3f" final_skew stable;
      Common.check ~name:"old edges stay below stable bound during re-convergence"
        ~pass:(old_edge_peak <= stable +. 1e-6)
        "peak old-edge skew %.3f vs stable bound %.3f" old_edge_peak stable;
      Common.invariants_check run;
    ]
  in
  {
    Common.id = "E2";
    title = "Dynamic local skew envelope (Corollary 6.13)";
    tables = [ table ];
    checks;
  }
