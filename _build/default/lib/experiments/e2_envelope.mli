(** E2 — Corollary 6.13: the dynamic local skew envelope.

    The paper's central dynamic guarantee: an edge that has existed for
    [Δt] real time carries skew at most
    [s(n, Δt) = B(max{(1-rho)(Δt - ΔT - D - W), 0}) + 2 rho W], whatever
    its initial skew. This is the "figure" of the reproduction: a
    skew-versus-edge-age series for a freshly inserted edge between the
    two ends of a path that the Masking-Lemma adversary has driven to
    [Θ(n)] skew, plotted against the envelope.

    Also checked: old edges never exceed the stable bound
    [B0 + 2 rho W] while the network re-converges (Theorem 6.12). *)

val run : quick:bool -> Common.result
