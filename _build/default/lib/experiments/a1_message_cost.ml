module Table = Analysis.Table

type outcome = {
  delta_h : float;
  msg_rate : float; (* messages per node per time unit *)
  local : float;
  global : float;
  valid : bool;
}

let scenario ~n ~delta_h =
  let params = Gcs.Params.make ~delta_h ~n () in
  let horizon = 300. in
  let warmup = 100. in
  let clocks = Gcs.Drift.assign params ~horizon ~seed:3 (Gcs.Drift.Alternating 40.) in
  let delay = Dsim.Delay.maximal ~bound:params.Gcs.Params.delay_bound in
  let cfg =
    Gcs.Sim.config ~params ~clocks ~delay ~initial_edges:(Topology.Static.path n) ()
  in
  let run = Common.launch cfg ~horizon in
  let late =
    List.filter
      (fun s -> s.Gcs.Metrics.time >= warmup)
      (Gcs.Metrics.samples run.Common.recorder)
  in
  let max_of f = List.fold_left (fun acc s -> Float.max acc (f s)) 0. late in
  {
    delta_h;
    msg_rate =
      float_of_int (Gcs.Sim.total_messages run.Common.sim)
      /. float_of_int n /. horizon;
    local = max_of (fun s -> s.Gcs.Metrics.local_skew);
    global = max_of (fun s -> s.Gcs.Metrics.global_skew);
    valid = Gcs.Invariant.ok run.Common.invariants;
  }

let run ~quick =
  let n = if quick then 16 else 32 in
  let sweep = if quick then [ 0.25; 1.0; 4.0 ] else [ 0.25; 0.5; 1.0; 2.0; 4.0 ] in
  let outcomes = List.map (fun delta_h -> scenario ~n ~delta_h) sweep in
  let table =
    Table.create
      ~title:(Printf.sprintf "Broadcast period vs cost and skew (path n=%d)" n)
      ~columns:[ "dH"; "msgs/node/time"; "steady local skew"; "steady global skew"; "valid" ]
  in
  List.iter
    (fun o ->
      Table.add_row table
        [
          Table.Float o.delta_h;
          Table.Float o.msg_rate;
          Table.Float o.local;
          Table.Float o.global;
          Table.Bool o.valid;
        ])
    outcomes;
  let first = List.hd outcomes in
  let last = List.nth outcomes (List.length outcomes - 1) in
  let rate_ratio = first.msg_rate /. last.msg_rate in
  let period_ratio = last.delta_h /. first.delta_h in
  let checks =
    [
      Common.check ~name:"message rate scales as 1/dH"
        ~pass:(Float.abs ((rate_ratio /. period_ratio) -. 1.) < 0.25)
        "rate ratio %.2f vs period ratio %.2f" rate_ratio period_ratio;
      (* The steady local skew is capped near (1+rho)T + 2 rho dT's
         dH-term; the sweep must show at least half the predicted extra
         staleness cost. *)
      Common.check ~name:"coarser updates cost skew"
        ~pass:
          (last.local -. first.local
          >= 0.25 *. 2. *. 0.05 *. (last.delta_h -. first.delta_h))
        "local skew %.3f (dH=%.2g) vs %.3f (dH=%.2g)" last.local last.delta_h
        first.local first.delta_h;
      Common.check ~name:"validity across the sweep"
        ~pass:(List.for_all (fun o -> o.valid) outcomes)
        "%d runs" (List.length outcomes);
    ]
  in
  {
    Common.id = "A1";
    title = "Ablation: broadcast period dH (message cost vs skew)";
    tables = [ table ];
    checks;
  }
