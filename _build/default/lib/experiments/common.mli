(** Shared experiment plumbing: standard configurations, one-call
    simulation runs with metrics and invariant monitoring attached, and a
    uniform result format (tables + pass/fail checks) consumed by the
    bench harness, the CLI and the test suite. *)

type check = { name : string; pass : bool; detail : string }

type result = {
  id : string;
  title : string;
  tables : Analysis.Table.t list;
  checks : check list;
}

val check : name:string -> pass:bool -> ('a, Format.formatter, unit, check) format4 -> 'a
(** [check ~name ~pass fmt ...] builds a check with a formatted detail. *)

val all_pass : result -> bool

val pp_result : Format.formatter -> result -> unit

(** {1 Simulation helpers} *)

type run = {
  sim : Gcs.Sim.t;
  recorder : Gcs.Metrics.recorder;
  invariants : Gcs.Invariant.monitor;
}

val launch :
  ?watch:(int * int) list ->
  ?churn:Topology.Churn.event list ->
  ?sample_every:float ->
  Gcs.Sim.config ->
  horizon:float ->
  run
(** Create the simulation, attach a metrics recorder and an invariant
    monitor sampling every [sample_every] (default 1.0), schedule the
    churn events, and run to the horizon. *)

val default_params : ?rho:float -> ?b0:float -> n:int -> unit -> Gcs.Params.t
(** The repository-wide default parameter point: [T = 1], [ΔH = 1],
    [rho = 0.05] unless overridden. *)

val invariants_check : run -> check
(** A standard "no validity violations" check for a finished run. *)
