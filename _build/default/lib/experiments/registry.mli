(** The experiment catalog: every reproduced result of the paper, indexed
    by the ids used in DESIGN.md and EXPERIMENTS.md. *)

type entry = {
  id : string;
  title : string;
  run : quick:bool -> Common.result;
}

val all : entry list

val find : string -> entry option
(** Case-insensitive lookup by id ("e1" .. "e8"). *)

val run_all : quick:bool -> Common.result list
