--------------------------- MODULE ClockSyncGcs ---------------------------
(*
 * Abstract TLA+ model of the dynamic gradient clock synchronization
 * algorithm (Kuhn, Locher, Oshman, SPAA 2009, Algorithm 2) over the
 * Section 3.2 network model: FIFO links with delay at most T, a dynamic
 * edge set that drops in-flight messages when it changes, hardware
 * clocks with bounded drift, and a broadcast of the node's max estimate
 * every DH subjective time units.
 *
 * The clock adjustment is over-approximated: on a receipt the logical
 * clock may jump anywhere between its current value and the (updated)
 * max estimate. Every behavior of the simulator's Algorithm 2 is a
 * behavior of this model, so invariants proved here (dominance of the
 * max estimate, the minimum logical rate built into AdvanceTime) hold
 * for the implementation — and the bounded model explorer exports its
 * traces as instances checked against the same sample-step relation
 * (SampleOk below; see Tla.export and spec/README.md).
 *
 * All times and clock values are integers scaled by SCALE (fixed-point:
 * a real value x is represented by x * SCALE, rounded).
 *)
EXTENDS Integers

CONSTANTS
    \* number of nodes
    \* @type: Int;
    N,
    \* maximum message delay T, scaled
    \* @type: Int;
    TMAX,
    \* broadcast period DH (the paper's ΔH), scaled subjective time
    \* @type: Int;
    DH,
    \* minimum hardware rate (1 - rho), in parts of SCALE
    \* @type: Int;
    RMIN,
    \* maximum hardware rate (1 + rho), in parts of SCALE
    \* @type: Int;
    RMAX,
    \* fixed-point scale factor
    \* @type: Int;
    SCALE

ASSUME
    /\ N >= 2
    /\ TMAX >= 0
    /\ DH > 0
    /\ 0 < RMIN /\ RMIN <= SCALE /\ SCALE <= RMAX

Proc == 1..N

VARIABLES
    \* real time, scaled (inaccessible to the nodes)
    \* @type: Int;
    time,
    \* hardware clocks
    \* @type: Int -> Int;
    hc,
    \* logical clocks L
    \* @type: Int -> Int;
    l,
    \* max estimates Lmax
    \* @type: Int -> Int;
    lmax,
    \* live undirected edges, stored as ordered pairs u < v
    \* @type: Set(<<Int, Int>>);
    edges,
    \* in-flight messages; deadline = send time + TMAX
    \* @type: Set([src: Int, dst: Int, lm: Int, seq: Int, deadline: Int]);
    msgs,
    \* hardware clock value at the node's last broadcast
    \* @type: Int -> Int;
    lastSend,
    \* global send sequence counter: FIFO order within each link
    \* @type: Int;
    sseq

Edge(u, v) == IF u < v THEN <<u, v>> ELSE <<v, u>>

Max2(a, b) == IF a >= b THEN a ELSE b

(***************************** INITIALIZATION ******************************)

\* All clocks start synchronized at 0 on the complete graph.
Init ==
    /\ time = 0
    /\ hc = [p \in Proc |-> 0]
    /\ l = [p \in Proc |-> 0]
    /\ lmax = [p \in Proc |-> 0]
    /\ edges = { pr \in Proc \X Proc : pr[1] < pr[2] }
    /\ msgs = {}
    /\ lastSend = [p \in Proc |-> 0]
    /\ sseq = 0

(******************************** ACTIONS **********************************)

(*
 * Real time advances by delta; every clock advances within the drift
 * bound, and between discrete events the logical clock and max estimate
 * advance exactly at the hardware rate (Algorithm 2 between receipts).
 * Two liveness obligations are folded in as guards: time may not pass an
 * in-flight message's delivery deadline (delay <= T), and no hardware
 * clock may pass its next broadcast instant (a broadcast every DH).
 *)
AdvanceTime(delta) ==
    /\ delta > 0
    /\ \A m \in msgs : time + delta <= m.deadline
    /\ \E adv \in [Proc -> Int] :
         /\ \A p \in Proc :
              /\ adv[p] * SCALE >= RMIN * delta
              /\ adv[p] * SCALE <= RMAX * delta
              /\ hc[p] + adv[p] <= lastSend[p] + DH
         /\ hc' = [p \in Proc |-> hc[p] + adv[p]]
         /\ l' = [p \in Proc |-> l[p] + adv[p]]
         /\ lmax' = [p \in Proc |-> lmax[p] + adv[p]]
    /\ time' = time + delta
    /\ UNCHANGED <<edges, msgs, lastSend, sseq>>

\* Broadcast the max estimate to every current neighbor (one shared
\* sequence number is fine: FIFO is per directed link).
Broadcast(p) ==
    /\ hc[p] - lastSend[p] >= DH
    /\ lastSend' = [lastSend EXCEPT ![p] = hc[p]]
    /\ msgs' = msgs \union
         { [src |-> p, dst |-> q, lm |-> lmax[p], seq |-> sseq,
            deadline |-> time + TMAX] :
           q \in { q2 \in Proc : q2 /= p /\ Edge(p, q2) \in edges } }
    /\ sseq' = sseq + 1
    /\ UNCHANGED <<time, hc, l, lmax, edges>>

\* Deliver the oldest in-flight message of its directed link, provided
\* the edge still exists. The receiver folds the estimate into Lmax and
\* may adjust L anywhere up to the new Lmax (the over-approximation of
\* Algorithm 2's bounded-tolerance jump).
Deliver(m) ==
    /\ m \in msgs
    /\ Edge(m.src, m.dst) \in edges
    /\ \A m2 \in msgs :
         (m2.src = m.src /\ m2.dst = m.dst) => m.seq <= m2.seq
    /\ msgs' = msgs \ {m}
    /\ lmax' = [lmax EXCEPT ![m.dst] = Max2(lmax[m.dst], m.lm)]
    /\ \E nl \in Int :
         /\ nl >= l[m.dst]
         /\ nl <= Max2(lmax[m.dst], m.lm)
         /\ l' = [l EXCEPT ![m.dst] = nl]
    /\ UNCHANGED <<time, hc, edges, lastSend, sseq>>

EdgeAdd(u, v) ==
    /\ u /= v
    /\ Edge(u, v) \notin edges
    /\ edges' = edges \union { Edge(u, v) }
    /\ UNCHANGED <<time, hc, l, lmax, msgs, lastSend, sseq>>

\* Removing an edge drops everything in flight on it (the model's
\* "messages on a changed edge may be lost", which the simulator makes
\* deterministic: they are always dropped).
EdgeRemove(u, v) ==
    /\ Edge(u, v) \in edges
    /\ edges' = edges \ { Edge(u, v) }
    /\ msgs' = { m \in msgs : Edge(m.src, m.dst) /= Edge(u, v) }
    /\ UNCHANGED <<time, hc, l, lmax, lastSend, sseq>>

Next ==
    \/ \E delta \in 1..(2 * TMAX + DH) : AdvanceTime(delta)
    \/ \E p \in Proc : Broadcast(p)
    \/ \E m \in msgs : Deliver(m)
    \/ \E u \in Proc : \E v \in Proc : EdgeAdd(u, v)
    \/ \E u \in Proc : \E v \in Proc : EdgeRemove(u, v)

(****************************** INVARIANTS *********************************)

TypeOK ==
    /\ time >= 0
    /\ \A p \in Proc : hc[p] >= 0
    /\ \A m \in msgs :
         /\ m.src \in Proc
         /\ m.dst \in Proc
         /\ m.src /= m.dst
         /\ m.deadline >= time
    /\ \A e \in edges : e[1] \in Proc /\ e[2] \in Proc /\ e[1] < e[2]

\* Max-estimate dominance: the local part of legality (Section 3.3).
\* The minimum logical rate is enforced by construction in AdvanceTime.
Legality == \A p \in Proc : lmax[p] >= l[p]

(************************* TRACE CROSS-VALIDATION **************************)

(*
 * The abstract sample-step relation the simulator's exported traces are
 * checked against: between two probe samples a = [t, l, lm] and
 * b = [t, l, lm] (clock vectors as sequences indexed by Proc), every
 * logical clock advances at least at the minimum rate and the max
 * estimate dominates. Tla.export emits standalone modules duplicating
 * this operator (with an explicit rounding slack eps) next to the
 * embedded trace, so `apalache-mc check --inv=StepOk` on an exported
 * module validates a real execution against this spec's abstraction.
 *)
\* @type: ({ t: Int, l: Seq(Int), lm: Seq(Int) }, { t: Int, l: Seq(Int), lm: Seq(Int) }, Int) => Bool;
SampleOk(a, b, eps) ==
    /\ b.t >= a.t
    /\ \A v \in Proc :
         /\ b.l[v] - a.l[v] >= ((RMIN * (b.t - a.t)) \div SCALE) - eps
         /\ b.lm[v] + eps >= b.l[v]

============================================================================
