(* Mobile ad-hoc network: a random geometric graph whose non-backbone
   links churn continuously, as when devices move (Section 1's motivation
   for the dynamic model).

   Run with: dune exec examples/adhoc_mobility.exe

   A spanning tree stands in for links that survive mobility (the
   T-interval connectivity assumption); every other radio link flaps and
   re-wires randomly. The algorithm's global and local skews stay inside
   the paper's bounds throughout, which we report over time. *)

let n = 40

let horizon = 600.

let () =
  let params = Gcs.Params.make ~n () in
  let prng = Dsim.Prng.of_int 2024 in
  let _points, edges =
    Topology.Static.random_geometric prng ~n ~radius:(1.8 /. sqrt (float_of_int n))
  in
  Format.printf
    "random geometric network: %d nodes, %d links, diameter %d@." n
    (List.length edges)
    (Topology.Static.diameter ~n edges);

  (* Mobility: random link churn plus periodic flapping of long links. *)
  let churn =
    Topology.Churn.random_churn (Dsim.Prng.split prng) ~n ~base:edges ~rate:1.0 ~horizon
  in
  let flaps =
    Topology.Churn.flapping
      ~extra:(Topology.Static.non_tree_edges ~n edges)
      ~period:60. ~up_for:45. ~horizon
  in
  let events = Topology.Churn.normalize (churn @ flaps) in
  let window = params.Gcs.Params.delay_bound +. params.Gcs.Params.discovery_bound in
  Format.printf "churn events: %d; (T+D)-interval connected: %b@.@."
    (List.length events)
    (Topology.Connectivity.interval_connected ~n ~window ~horizon ~initial:edges events);

  let clocks = Gcs.Drift.assign params ~horizon ~seed:5 (Gcs.Drift.Random_walk 40.) in
  let delay =
    Dsim.Delay.uniform (Dsim.Prng.of_int 77) ~bound:params.Gcs.Params.delay_bound
  in
  let cfg = Gcs.Sim.config ~params ~clocks ~delay ~initial_edges:edges () in
  let sim = Gcs.Sim.create cfg in
  let engine = Gcs.Sim.engine sim in
  let view = Gcs.Sim.view sim in
  Topology.Churn.schedule engine events;
  let recorder = Gcs.Metrics.attach engine view ~every:1. ~until:horizon () in
  let monitor =
    Gcs.Invariant.attach engine view ~params:(Gcs.Sim.params sim) ~every:1. ~until:horizon ()
  in
  Gcs.Sim.run_until sim horizon;

  Format.printf "%8s  %12s  %12s@." "time" "global skew" "local skew";
  List.iter
    (fun s ->
      if Float.rem s.Gcs.Metrics.time 60. < 0.5 then
        Format.printf "%8.0f  %12.3f  %12.3f@." s.Gcs.Metrics.time
          s.Gcs.Metrics.global_skew s.Gcs.Metrics.local_skew)
    (Gcs.Metrics.samples recorder);
  Format.printf "@.max global skew %.3f vs G(n) = %.3f@."
    (Gcs.Metrics.max_global_skew recorder)
    (Gcs.Params.global_skew_bound params);
  Format.printf "max local skew  %.3f vs stable bound = %.3f@."
    (Gcs.Metrics.max_local_skew recorder)
    (Gcs.Params.stable_local_skew params);
  Format.printf "validity: %s@." (if Gcs.Invariant.ok monitor then "ok" else "VIOLATED")
