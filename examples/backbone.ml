(* Heterogeneous links: a wired backbone with wireless leaf clusters.

   Run with: dune exec examples/backbone.exe

   Four backbone routers are joined by tight links (delay bound T/20);
   each router serves a cluster of wireless nodes over loose links (bound
   T). With Gcs.Hetero every link gets a tolerance and timeout scaled to
   its own uncertainty, so the backbone promises (and achieves) an order
   of magnitude tighter synchronization than the leaves - the gradient
   property refined from hop count to link quality (Section 7 / [9]). *)

let routers = 4

let leaves_per_router = 5

let n = routers * (1 + leaves_per_router)

let router r = r * (1 + leaves_per_router)

let leaf r j = router r + 1 + j

let () =
  let params = Gcs.Params.make ~delta_h:0.2 ~n () in
  let t = params.Gcs.Params.delay_bound in
  let tight = 0.05 *. t in
  let backbone =
    List.init (routers - 1) (fun r -> (router r, router (r + 1)))
  in
  let access =
    List.concat
      (List.init routers (fun r ->
           List.init leaves_per_router (fun j -> (router r, leaf r j))))
  in
  let link_bound =
    Gcs.Hetero.of_alist ~default:t (List.map (fun e -> (e, tight)) backbone)
  in
  let horizon = 400. in
  let clocks =
    Gcs.Drift.assign params ~horizon ~seed:31 (Gcs.Drift.Alternating 40.)
  in
  let delay = Gcs.Hetero.delay_policy (Dsim.Prng.of_int 3) params ~link_bound in
  let engine, nodes =
    Gcs.Hetero.create_sim ~params ~clocks ~delay ~link_bound
      ~initial_edges:(backbone @ access) ()
  in
  let view =
    Gcs.Hetero.view nodes (Dsim.Dyngraph.iter_edges (Dsim.Engine.graph engine))
  in
  let recorder =
    Gcs.Metrics.attach engine view ~every:0.5 ~until:horizon
      ~watch:(backbone @ access) ()
  in
  Dsim.Engine.run_until engine horizon;

  let steady e =
    Analysis.Series.max_value
      (Analysis.Series.after 150. (Gcs.Metrics.pair_trace recorder e))
  in
  let backbone_skews = List.map steady backbone in
  let access_skews = List.map steady access in
  Format.printf "backbone of %d routers (T_e = %.2f), %d wireless leaves (T_e = %.2f)@.@."
    routers tight (routers * leaves_per_router) t;
  Format.printf "%-22s %-12s %-12s %-12s@." "link class" "mean skew" "max skew" "promise B0_e+2rhoW";
  Format.printf "%-22s %-12.4f %-12.4f %-12.4f@." "backbone (tight)"
    (Analysis.Stats.mean backbone_skews)
    (Analysis.Stats.maximum backbone_skews)
    (Gcs.Hetero.stable_local_skew_e params ~t_e:tight);
  Format.printf "%-22s %-12.4f %-12.4f %-12.4f@." "access (loose)"
    (Analysis.Stats.mean access_skews)
    (Analysis.Stats.maximum access_skews)
    (Gcs.Hetero.stable_local_skew_e params ~t_e:t);
  Format.printf "@.end-to-end global skew: %.4f (bound %.4f)@."
    (Gcs.Metrics.global_skew view)
    (Gcs.Params.global_skew_bound params);
  Format.printf "@.backbone skew over time:@.%s@."
    (Analysis.Plot.sparkline (Gcs.Metrics.pair_trace recorder (List.hd backbone)));
  Format.printf "access skew over time:@.%s@."
    (Analysis.Plot.sparkline (Gcs.Metrics.pair_trace recorder (List.hd access)))
