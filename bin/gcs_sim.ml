(* Command-line interface to the gradient clock synchronization library.

   gcs_sim list                         enumerate the paper experiments
   gcs_sim exp E2 E4 [--quick] [--csv]  reproduce specific experiments
   gcs_sim params --n 64 [--b0 ...]     print derived parameters
   gcs_sim sim --n 32 --topology ring   run an ad-hoc simulation *)

open Cmdliner

(* --------------------------- shared options ------------------------ *)

let n_arg =
  Arg.(value & opt int 32 & info [ "nodes" ] ~docv:"N" ~doc:"Number of nodes.")

let rho_arg =
  Arg.(value & opt float 0.05 & info [ "rho" ] ~docv:"RHO" ~doc:"Hardware clock drift bound.")

let b0_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "b0" ] ~docv:"B0"
        ~doc:"Target stable skew parameter; defaults to 2.5x its lower bound.")

let seed_arg =
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc:"PRNG seed.")

let jobs_arg =
  Arg.(
    value
    & opt int 0
    & info [ "jobs"; "j" ] ~docv:"N"
        ~doc:
          "Worker domains for parallel runs (0 = one per recommended core). Output \
           is byte-identical for every value.")

(* Resolve --jobs, install it as the ambient pool size (grid sweeps inside
   experiments pick it up), and return it for the explicit fan-outs. *)
let resolve_jobs jobs =
  let jobs = if jobs <= 0 then Runner.default_jobs () else jobs in
  Runner.set_default_jobs jobs;
  jobs

let make_params ~n ~rho ~b0 = Gcs.Params.make ~rho ?b0 ~n ()

(* ------------------------- output plumbing ------------------------- *)

let rec mkdir_p dir =
  if Sys.file_exists dir then begin
    if not (Sys.is_directory dir) then
      Fmt.failwith "output directory %s exists but is not a directory" dir
  end
  else begin
    let parent = Filename.dirname dir in
    if parent <> dir && parent <> "" then mkdir_p parent;
    (* Another process may have won the race; only re-check, don't fail. *)
    try Sys.mkdir dir 0o755 with
    | Sys_error _ when Sys.file_exists dir && Sys.is_directory dir -> ()
  end

let write_file path contents =
  let oc = open_out path in
  (* The happy path closes inside the protected body so flush failures
     surface; the finally is the backstop that keeps a failed write from
     leaking the descriptor (double close is harmless). *)
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc contents;
      close_out oc)

(* ------------------------------ list ------------------------------- *)

let list_cmd =
  let doc = "List the reproduced paper experiments." in
  let run () =
    List.iter
      (fun (e : Experiments.Registry.entry) ->
        Format.printf "%-4s %s@." e.id e.title)
      Experiments.Registry.all
  in
  Cmd.v (Cmd.info "list" ~doc) Term.(const run $ const ())

(* ------------------------------- exp ------------------------------- *)

let exp_cmd =
  let doc = "Run paper experiments (all by default) and print their tables." in
  let ids =
    Arg.(value & pos_all string [] & info [] ~docv:"ID" ~doc:"Experiment ids (E1..E8).")
  in
  let quick =
    Arg.(value & flag & info [ "quick" ] ~doc:"Smaller networks and shorter horizons.")
  in
  let csv =
    Arg.(
      value
      & opt (some string) None
      & info [ "csv" ] ~docv:"DIR" ~doc:"Also write every table as CSV into $(docv).")
  in
  let run ids quick csv jobs =
    let jobs = resolve_jobs jobs in
    let entries =
      match ids with
      | [] -> Experiments.Registry.all
      | ids ->
        List.map
          (fun id ->
            match Experiments.Registry.find id with
            | Some e -> e
            | None -> Fmt.failwith "unknown experiment id %s (try 'list')" id)
          ids
    in
    let results =
      Runner.map ~jobs (fun (e : Experiments.Registry.entry) -> e.run ~quick) entries
    in
    let failed = ref 0 in
    List.iter2
      (fun (e : Experiments.Registry.entry) result ->
        Format.printf "%a@." Experiments.Common.pp_result result;
        if not (Experiments.Common.all_pass result) then incr failed;
        Option.iter
          (fun dir ->
            mkdir_p dir;
            List.iteri
              (fun i table ->
                let path =
                  Filename.concat dir
                    (Printf.sprintf "%s_table%d.csv" (String.lowercase_ascii e.id) i)
                in
                write_file path (Analysis.Table.to_csv table);
                Format.printf "wrote %s@." path)
              result.Experiments.Common.tables)
          csv)
      entries results;
    if !failed > 0 then exit 1
  in
  Cmd.v (Cmd.info "exp" ~doc) Term.(const run $ ids $ quick $ csv $ jobs_arg)

(* ------------------------------ params ----------------------------- *)

let params_cmd =
  let doc = "Print the derived quantities of a parameter point (Sections 5-6)." in
  let run n rho b0 =
    let p = make_params ~n ~rho ~b0 in
    Format.printf "%a@." Gcs.Params.pp p
  in
  Cmd.v (Cmd.info "params" ~doc) Term.(const run $ n_arg $ rho_arg $ b0_arg)

(* ------------------------------- sim ------------------------------- *)

type topology_kind =
  | Path | Ring | Star | Grid | Complete | Tree | Er | Geometric | Cluster

let topology_conv =
  Arg.enum
    [
      ("path", Path); ("ring", Ring); ("star", Star); ("grid", Grid);
      ("complete", Complete); ("tree", Tree); ("er", Er); ("geometric", Geometric);
      ("cluster", Cluster);
    ]

let algo_conv =
  Arg.enum
    [
      ("gradient", Gcs.Sim.Gradient);
      ("flat", Gcs.Sim.Flat_gradient);
      ("max", Gcs.Sim.Max_only);
    ]

type drift_kind = Dperfect | Dsplit | Dalternating | Drandom | Dgradient

let drift_conv =
  Arg.enum
    [
      ("perfect", Dperfect); ("split", Dsplit); ("alternating", Dalternating);
      ("random", Drandom); ("gradient", Dgradient);
    ]

type delay_kind = Ymax | Yzero | Yuniform

let delay_conv = Arg.enum [ ("max", Ymax); ("zero", Yzero); ("uniform", Yuniform) ]

let scheduler_conv = Arg.enum [ ("heap", Gcs.Sim.Heap); ("wheel", Gcs.Sim.Wheel) ]

let build_topology kind ~n ~seed =
  let module S = Topology.Static in
  match kind with
  | Path -> S.path n
  | Ring -> S.ring n
  | Star -> S.star n
  | Grid ->
    let rows = max 2 (int_of_float (sqrt (float_of_int n))) in
    if n mod rows <> 0 then
      Fmt.failwith "grid topology needs n divisible by %d (got n=%d)" rows n;
    S.grid ~rows ~cols:(n / rows)
  | Complete -> S.complete n
  | Tree -> S.binary_tree n
  | Er -> S.erdos_renyi (Dsim.Prng.of_int seed) ~n ~p:(2.5 /. float_of_int n)
  | Geometric ->
    snd (S.random_geometric (Dsim.Prng.of_int seed) ~n ~radius:(1.8 /. sqrt (float_of_int n)))
  | Cluster ->
    (* ~64-node communities over a shuffled id space: the contiguous
       shard split cuts almost every edge, so this is the showcase (and
       regression) input for --partition greedy. *)
    let clusters = max 1 (min (n / 2) (max 2 (n / 64))) in
    S.cluster (Dsim.Prng.of_int seed) ~n ~clusters ~degree:4

let sim_cmd =
  let doc = "Run an ad-hoc simulation and print a skew summary." in
  let topology =
    Arg.(value & opt topology_conv Path & info [ "topology" ] ~docv:"TOPO"
           ~doc:"One of path, ring, star, grid, complete, tree, er, geometric, cluster.")
  in
  let algo =
    Arg.(value & opt algo_conv Gcs.Sim.Gradient
         & info [ "algo" ] ~docv:"ALGO" ~doc:"gradient, flat or max.")
  in
  let drift =
    Arg.(value & opt drift_conv Dsplit
         & info [ "drift" ] ~docv:"DRIFT" ~doc:"perfect, split, alternating, random, gradient.")
  in
  let delay =
    Arg.(value & opt delay_conv Ymax & info [ "delay" ] ~docv:"DELAY" ~doc:"max, zero or uniform.")
  in
  let horizon =
    Arg.(value & opt float 300. & info [ "horizon" ] ~docv:"T" ~doc:"Simulated time.")
  in
  let churn_rate =
    Arg.(value & opt float 0. & info [ "churn" ] ~docv:"RATE"
           ~doc:"Random non-backbone edge toggles per time unit (0 = static).")
  in
  let new_edge =
    Arg.(value & opt (some (t3 ~sep:',' int int float)) None
         & info [ "new-edge" ] ~docv:"U,V,T" ~doc:"Insert edge {u,v} at time t and trace it.")
  in
  let timeline =
    Arg.(value & flag & info [ "timeline" ] ~doc:"Print the sampled skew timeline.")
  in
  let plot =
    Arg.(value & flag & info [ "plot" ] ~doc:"Render an ASCII plot of the skews.")
  in
  let loss =
    Arg.(value & opt float 0. & info [ "loss" ] ~docv:"RATE"
           ~doc:"Silent per-message loss probability (robustness mode, outside the model).")
  in
  let csv =
    Arg.(value & opt (some string) None
         & info [ "csv" ] ~docv:"FILE" ~doc:"Write the sampled timeline as CSV to $(docv).")
  in
  let trace_csv =
    Arg.(value & opt (some string) None
         & info [ "trace-csv" ] ~docv:"FILE"
             ~doc:"Retain the structured event log and write it as CSV to $(docv).")
  in
  let audit =
    Arg.(value & flag
         & info [ "audit" ]
             ~doc:
               "Audit the execution: replay the trace against the model obligations \
                (FIFO, delay <= T, discovery <= D, epochs) and sample the paper \
                guarantees while running. Exits non-zero on any violation.")
  in
  let scheduler =
    Arg.(value & opt scheduler_conv Gcs.Sim.Wheel
         & info [ "scheduler" ] ~docv:"SCHED"
             ~doc:
               "Timer scheduler: wheel (default) or heap. Both produce the same \
                execution; heap is the reference path.")
  in
  let faults =
    Arg.(value & opt string ""
         & info [ "faults" ] ~docv:"SPEC"
             ~doc:
               "Deterministic fault schedule, ';'-joined ops: crash@T:N, \
                restart@T:N (restart@T:N! corrupts the restart state), \
                dup@T1-T2:S>D, reorder@T1-T2:S>D, byz@T1-T2:N. Replayed from \
                --seed; audits become fault-aware automatically.")
  in
  let shards =
    Arg.(value & opt int 1
         & info [ "shards" ] ~docv:"K"
             ~doc:
               "Partition engine state into $(docv) independently scheduled \
                node ranges. With a pure delay policy and no faults the \
                shards dispatch in parallel windows (on up to --jobs \
                domains); the execution and trace are byte-identical at \
                every shard and jobs count.")
  in
  let jobs =
    Arg.(value & opt int 1
         & info [ "jobs"; "j" ] ~docv:"N"
             ~doc:
               "Domains dispatching the parallel windows (capped at --shards; \
                0 = one per recommended core). Only a placement knob: the \
                execution and trace are byte-identical for every value, and \
                1 keeps everything on the calling domain.")
  in
  let partition =
    Arg.(value
         & opt (enum [ ("contiguous", `Contiguous); ("greedy", `Greedy) ]) `Contiguous
         & info [ "partition" ] ~docv:"HOW"
             ~doc:
               "How node ids map to shards: contiguous ranges (default) or \
                greedy, the traffic-aware edge-cut partitioner run over the \
                initial topology. A pure performance knob: the execution \
                and trace are byte-identical under either.")
  in
  let window_stats =
    Arg.(value & flag
         & info [ "window-stats" ]
             ~doc:
               "Print parallel-dispatch window statistics after the run: \
                windows formed, mean window span, barriers paid, \
                cross-shard events, and the reason when the engine fell \
                back to sequential dispatch.")
  in
  let no_gap_check =
    Arg.(value & flag
         & info [ "no-gap-check" ]
             ~doc:
               "Audit opt-out: skip the receipt-gap (liveness) rule. Use for \
                algorithms that do not broadcast every subjective dH.")
  in
  let no_lost_check =
    Arg.(value & flag
         & info [ "no-lost-check" ]
             ~doc:
               "Audit opt-out: skip the lost-timer cadence rule. Use for \
                algorithms with per-peer timeouts shorter than dT'.")
  in
  let run n rho b0 seed topology algo drift delay horizon churn_rate new_edge timeline
      plot loss csv trace_csv audit scheduler shards jobs partition window_stats
      fault_spec no_gap_check no_lost_check =
    let params = make_params ~n ~rho ~b0 in
    if shards < 1 then begin
      Format.eprintf "invalid --shards: must be at least 1 (got %d)@." shards;
      exit 2
    end;
    if jobs < 0 then begin
      Format.eprintf "invalid --jobs: must be non-negative (got %d)@." jobs;
      exit 2
    end;
    if jobs <> 1 && shards < 2 then begin
      Format.eprintf
        "invalid --jobs: needs --shards of at least 2 to dispatch in parallel \
         (got --jobs %d with --shards %d)@."
        jobs shards;
      exit 2
    end;
    (* Like exp/fuzz: an explicit --jobs becomes the ambient domain
       budget, so the scoped dispatch pool below really gets that many
       domains (the runner still caps nested fan-outs against it). *)
    let jobs = resolve_jobs jobs in
    (* Validate like --faults does: a bad id must be a clean exit 2, not an
       uncaught Invalid_argument out of the engine mid-run. *)
    (match new_edge with
    | Some (u, v, t) ->
      if u < 0 || v < 0 || u >= n || v >= n then begin
        Format.eprintf
          "invalid --new-edge: node ids must lie in [0, %d] (got %d,%d)@."
          (n - 1) u v;
        exit 2
      end;
      if u = v then begin
        Format.eprintf "invalid --new-edge: self-loop %d,%d@." u v;
        exit 2
      end;
      if t < 0. then begin
        Format.eprintf "invalid --new-edge: negative time %g@." t;
        exit 2
      end
    | None -> ());
    let faults =
      if fault_spec = "" then []
      else
        match Dsim.Fault.of_spec fault_spec with
        | Ok sched -> (
          match Dsim.Fault.validate ~n sched with
          | Ok () -> sched
          | Error msg ->
            Format.eprintf "invalid --faults schedule: %s@." msg;
            exit 2)
        | Error msg ->
          Format.eprintf "cannot parse --faults spec: %s@." msg;
          exit 2
    in
    let edges = build_topology topology ~n ~seed in
    let drift_spec =
      match drift with
      | Dperfect -> Gcs.Drift.Perfect
      | Dsplit -> Gcs.Drift.Split_extremes
      | Dalternating -> Gcs.Drift.Alternating (horizon /. 12.)
      | Drandom -> Gcs.Drift.Random_walk (horizon /. 20.)
      | Dgradient -> Gcs.Drift.Gradient_rates
    in
    let clocks = Gcs.Drift.assign params ~horizon ~seed drift_spec in
    let bound = params.Gcs.Params.delay_bound in
    let delay_policy =
      match delay with
      | Ymax -> Dsim.Delay.maximal ~bound
      | Yzero -> Dsim.Delay.zero ~bound
      | Yuniform -> Dsim.Delay.uniform (Dsim.Prng.of_int (seed + 1)) ~bound
    in
    let delay_policy =
      if loss > 0. then Dsim.Delay.lossy (Dsim.Prng.of_int (seed + 3)) ~rate:loss delay_policy
      else delay_policy
    in
    let trace =
      (* Entries are only retained (and only then formatted) when the log
         is requested; otherwise the trace is counters-only and free. *)
      if audit || trace_csv <> None then Dsim.Trace.create ~log_limit:2_000_000 ()
      else Dsim.Trace.create ()
    in
    let cfg =
      Gcs.Sim.config ~algo ~scheduler ~shards ~partition ~params ~clocks
        ~delay:delay_policy ~initial_edges:edges ~trace ~faults ~fault_seed:seed ()
    in
    let sim = Gcs.Sim.create cfg in
    let engine = Gcs.Sim.engine sim in
    let view = Gcs.Sim.view sim in
    if churn_rate > 0. then
      Topology.Churn.schedule engine
        (Topology.Churn.random_churn
           (Dsim.Prng.of_int (seed + 2))
           ~n ~base:edges ~rate:churn_rate ~horizon);
    Option.iter (fun (u, v, t) -> Gcs.Sim.add_edge_at sim ~at:t u v) new_edge;
    let watch = match new_edge with Some (u, v, _) -> [ (u, v) ] | None -> [] in
    let recorder =
      Gcs.Metrics.attach engine view ~every:(horizon /. 200.) ~until:horizon ~watch ()
    in
    let monitor =
      Gcs.Invariant.attach engine view ~params ~every:(horizon /. 200.) ~until:horizon
        ~faults ()
    in
    let guarantees =
      if audit then
        Some
          (Audit.Guarantees.attach engine view ~params
             ~check_envelope:
               (algo = Gcs.Sim.Gradient && loss = 0. && churn_rate = 0. && faults = [])
             ~faults ~every:(horizon /. 200.) ~until:horizon ())
      else None
    in
    (* Windows only form when shards > 1 and the configuration is pure
       (Engine.set_executor doc); a pool is pointless otherwise. The
       executor is cleared before the pool is torn down so the later
       audit replay and metric reads never race a dead pool. *)
    if shards > 1 && jobs > 1 then
      Runner.scoped ~jobs:(min jobs shards) (fun pool ->
          Dsim.Engine.set_executor engine (Some (Runner.run pool));
          Fun.protect
            ~finally:(fun () -> Dsim.Engine.set_executor engine None)
            (fun () -> Gcs.Sim.run_until sim horizon))
    else Gcs.Sim.run_until sim horizon;
    Format.printf "%a@.@." Gcs.Params.pp params;
    Format.printf "algo=%s scheduler=%s topology=%s n=%d horizon=%g seed=%d@."
      (Gcs.Sim.algo_to_string algo)
      (Gcs.Sim.scheduler_to_string scheduler)
      (match topology with
      | Path -> "path" | Ring -> "ring" | Star -> "star" | Grid -> "grid"
      | Complete -> "complete" | Tree -> "tree" | Er -> "er" | Geometric -> "geometric"
      | Cluster -> "cluster")
      n horizon seed;
    if faults <> [] then Format.printf "faults=%s@." (Dsim.Fault.to_spec faults);
    Format.printf "events=%d messages=%d jumps=%d@."
      (Dsim.Engine.events_processed engine)
      (Gcs.Sim.total_messages sim) (Gcs.Sim.total_jumps sim);
    Format.printf "event counts:@.%a@." Dsim.Trace.pp_summary trace;
    if window_stats then begin
      let w = Dsim.Trace.windows trace in
      let b = Dsim.Trace.barriers trace in
      Format.printf
        "window stats: windows=%d mean-span=%.4f barriers=%d \
         windowed-events=%d cross-shard=%d@."
        w
        (if w = 0 then 0. else Dsim.Trace.window_span trace /. float_of_int w)
        b
        (Dsim.Trace.window_events trace)
        (Dsim.Trace.cross_shard_events trace);
      match Dsim.Engine.par_blocker engine with
      | None -> Format.printf "parallel dispatch: active@."
      | Some reason ->
        Format.printf "parallel dispatch: sequential fallback (%s)@." reason
    end;
    Option.iter
      (fun path ->
        write_file path (Dsim.Trace.to_csv trace);
        Format.printf "wrote %s (%d entries)@." path
          (List.length (Dsim.Trace.entries trace)))
      trace_csv;
    Format.printf "max global skew = %.4f (bound G(n) = %.4f)@."
      (Gcs.Metrics.max_global_skew recorder)
      (Gcs.Params.global_skew_bound params);
    Format.printf "max local skew  = %.4f (stable bound = %.4f)@."
      (Gcs.Metrics.max_local_skew recorder)
      (Gcs.Params.stable_local_skew params);
    Format.printf "final global/local skew = %.4f / %.4f@."
      (Gcs.Metrics.global_skew view) (Gcs.Metrics.local_skew view);
    (match new_edge with
    | Some (u, v, t) ->
      let pair_trace = Gcs.Metrics.pair_trace recorder (u, v) in
      let aged = List.map (fun (s, x) -> (s -. t, x)) (Analysis.Series.after t pair_trace) in
      let initial = match aged with (_, s) :: _ -> s | [] -> 0. in
      Format.printf "new edge {%d,%d}@@%g: initial skew %.3f, settle-to-stable %s@." u v t
        initial
        (match
           Analysis.Series.first_below (Gcs.Params.stable_local_skew params) aged
         with
        | Some s -> Printf.sprintf "%.1f" s
        | None -> "not reached")
    | None -> ());
    Format.printf "validity: %s (%d probes)@."
      (if Gcs.Invariant.ok monitor then "ok" else "VIOLATIONS")
      (Gcs.Invariant.probes monitor);
    List.iter
      (fun v -> Format.printf "  %a@." Gcs.Invariant.pp_violation v)
      (Gcs.Invariant.violations monitor);
    (* A sim --audit failure should hand back a one-command repro the way
       fuzz failures do. Only the part of sim's knob space whose recipe
       coincides with Scenario.run's maps to a spec that replays the
       identical execution (same PRNG streams, same clock assignment):
       anything else would print a spec reproducing a different run. *)
    let scenario_of_sim () =
      let ( let* ) = Option.bind in
      let* s_topo =
        match topology with
        | Path -> Some 0 | Ring -> Some 1 | Tree -> Some 2 | _ -> None
      in
      let* s_drift =
        (* alternating/walk periods differ (Scenario pins 17/9, sim scales
           with the horizon), so only the horizon-free patterns map *)
        match drift with Dperfect -> Some 0 | Dsplit -> Some 1 | _ -> None
      in
      let s_delay = match delay with Ymax -> 0 | Yzero -> 1 | Yuniform -> 2 in
      let s_algo =
        match algo with
        | Gcs.Sim.Gradient -> 0 | Gcs.Sim.Flat_gradient -> 1 | Gcs.Sim.Max_only -> 2
      in
      let* s_churn =
        (* Scenario churn is rate 0.3 from seed + 2; sim matches exactly
           at that rate *)
        if churn_rate = 0. then Some false
        else if churn_rate = 0.3 then Some true
        else None
      in
      if
        rho <> 0.05 || b0 <> None || loss > 0. || new_edge <> None
        || faults <> [] (* scenario fault replay uses fault seed + 4 *)
      then None
      else
        Some
          {
            Audit.Scenario.n; topo = s_topo; drift = s_drift; delay = s_delay;
            algo = s_algo; churn = s_churn; seed; horizon; faults = [];
          }
    in
    Option.iter
      (fun guarantees ->
        let conformance =
          Audit.Conformance.audit
            (Audit.Conformance.of_params params ~horizon
               ~check_gaps:(loss = 0. && not no_gap_check)
               ~check_lost_timers:(not no_lost_check) ~faults ())
            (Dsim.Trace.entries trace)
        in
        let report =
          Audit.Report.merge conformance (Audit.Guarantees.report guarantees)
        in
        Format.printf "audit: %a@." Audit.Report.pp report;
        if not (Audit.Report.ok report && Gcs.Invariant.ok monitor) then begin
          (match scenario_of_sim () with
          | Some sc ->
            Format.printf "replay spec: %s@." (Audit.Scenario.to_spec sc)
          | None ->
            Format.printf
              "replay spec: (these flags fall outside the fuzz scenario \
               space — rerun gcs_sim sim with the same arguments to \
               reproduce)@.");
          exit 1
        end)
      guarantees;
    if timeline then begin
      Format.printf "@.%-10s %-12s %-12s %-12s@." "time" "global" "local" "lmax-lag";
      List.iter
        (fun s ->
          Format.printf "%-10.2f %-12.4f %-12.4f %-12.4f@." s.Gcs.Metrics.time
            s.Gcs.Metrics.global_skew s.Gcs.Metrics.local_skew s.Gcs.Metrics.lmax_lag)
        (Gcs.Metrics.samples recorder)
    end;
    Option.iter
      (fun path ->
        let table =
          Analysis.Table.create ~title:"timeline"
            ~columns:
              [ "time"; "global_skew"; "local_skew"; "lmax_lag"; "clock_lag"; "events" ]
        in
        List.iter
          (fun s ->
            Analysis.Table.add_row table
              [
                Analysis.Table.Float s.Gcs.Metrics.time;
                Analysis.Table.Float s.Gcs.Metrics.global_skew;
                Analysis.Table.Float s.Gcs.Metrics.local_skew;
                Analysis.Table.Float s.Gcs.Metrics.lmax_lag;
                Analysis.Table.Float s.Gcs.Metrics.clock_lag;
                Analysis.Table.Int s.Gcs.Metrics.events;
              ])
          (Gcs.Metrics.samples recorder);
        write_file path (Analysis.Table.to_csv table);
        Format.printf "wrote %s@." path)
      csv;
    if plot then begin
      let samples = Gcs.Metrics.samples recorder in
      let series f = List.map (fun s -> (s.Gcs.Metrics.time, f s)) samples in
      Format.printf "@.%s@."
        (Analysis.Plot.render ~width:70 ~height:14
           [
             ("global skew", series (fun s -> s.Gcs.Metrics.global_skew));
             ("local skew", series (fun s -> s.Gcs.Metrics.local_skew));
           ])
    end
  in
  Cmd.v (Cmd.info "sim" ~doc)
    Term.(
      const run $ n_arg $ rho_arg $ b0_arg $ seed_arg $ topology $ algo $ drift $ delay
      $ horizon $ churn_rate $ new_edge $ timeline $ plot $ loss $ csv $ trace_csv
      $ audit $ scheduler $ shards $ jobs $ partition $ window_stats $ faults
      $ no_gap_check $ no_lost_check)

(* ------------------------------- fuzz ------------------------------ *)

let fuzz_cmd =
  let doc =
    "Fuzz the seeded scenario space with fully audited executions, or replay a stored \
     spec."
  in
  let count =
    Arg.(value & opt int 50
         & info [ "fuzz" ] ~docv:"N" ~doc:"Number of scenarios to draw and audit.")
  in
  let replay =
    Arg.(value & opt (some string) None
         & info [ "replay" ] ~docv:"SPEC"
             ~doc:
               "Skip fuzzing and replay this one-line scenario spec (as printed for a \
                failure), e.g. 'n=8 topo=ring drift=split delay=uniform algo=gradient \
                churn=1 seed=42 horizon=120'.")
  in
  let out =
    Arg.(value & opt (some string) None
         & info [ "out" ] ~docv:"FILE"
             ~doc:"Write the shrunk replay specs of all failures to $(docv), one per line.")
  in
  let faults =
    Arg.(value & flag
         & info [ "faults" ]
             ~doc:
               "Also draw a random fault schedule (crash/restart, duplication, \
                reordering, Byzantine windows) for each scenario; the fault-aware \
                auditors must still report zero violations.")
  in
  let run seed count replay out jobs faults =
    let jobs = resolve_jobs jobs in
    match replay with
    | Some spec -> (
      match Audit.Scenario.of_spec spec with
      | Error msg ->
        Format.eprintf "bad replay spec: %s@." msg;
        exit 2
      | Ok scenario ->
        let report = Audit.Scenario.run scenario in
        Format.printf "replaying: %s@.%a@." (Audit.Scenario.to_spec scenario)
          Audit.Report.pp report;
        if not (Audit.Report.ok report) then exit 1)
    | None ->
      let outcome = Audit.Fuzz.run ~jobs ~faults ~seed ~count () in
      Format.printf "fuzz: %d scenarios audited, %d failures@."
        outcome.Audit.Fuzz.scenarios_run
        (List.length outcome.Audit.Fuzz.failures);
      List.iter
        (fun f -> Format.printf "%a@." Audit.Fuzz.pp_failure f)
        outcome.Audit.Fuzz.failures;
      Option.iter
        (fun path ->
          match outcome.Audit.Fuzz.failures with
          | [] -> ()
          | failures ->
            let buf = Buffer.create 256 in
            List.iter
              (fun f ->
                Buffer.add_string buf (Audit.Scenario.to_spec f.Audit.Fuzz.shrunk);
                Buffer.add_char buf '\n')
              failures;
            write_file path (Buffer.contents buf);
            Format.printf "wrote %s@." path)
        out;
      if outcome.Audit.Fuzz.failures <> [] then exit 1
  in
  Cmd.v (Cmd.info "fuzz" ~doc)
    Term.(const run $ seed_arg $ count $ replay $ out $ jobs_arg $ faults)

(* ------------------------------ mcheck ------------------------------ *)

let mcheck_cmd =
  let doc =
    "Exhaustively explore every adversary choice sequence of a tiny configuration \
     (delay picks from a discretized grid, same-instant dispatch orders, optional \
     churn and faults) on the real engine, checking each execution against the \
     model obligations. Counterexamples come out as one-line replay specs and \
     TLA+ trace instances."
  in
  let n =
    Arg.(value & opt int 2
         & info [ "n"; "nodes" ] ~docv:"N"
             ~doc:"Nodes (complete graph). Exhaustive exploration only scales to 2-4.")
  in
  let depth =
    Arg.(value & opt int 12
         & info [ "depth" ] ~docv:"D"
             ~doc:
               "Branching depth: adversary choice points beyond $(docv) take the \
                canonical option instead of branching.")
  in
  let delays =
    Arg.(value & opt int 3
         & info [ "delays" ] ~docv:"K"
             ~doc:
               "Delay grid size: each message delay is chosen from {i*T/(K-1)}; \
                3 gives {0, T/2, T}.")
  in
  let drifts =
    Arg.(value & opt string "sf"
         & info [ "drifts" ] ~docv:"LETTERS"
             ~doc:
               "Drift-rate alphabet; every assignment over it is explored. Letters: \
                s(low, 1-rho), n(ominal), f(ast, 1+rho).")
  in
  let horizon =
    Arg.(value & opt float 4. & info [ "horizon" ] ~docv:"T" ~doc:"Simulated time per branch.")
  in
  let churn =
    Arg.(value & flag
         & info [ "churn" ] ~doc:"Flap the edge {0,1}: remove at t=1, re-add at t=2.")
  in
  let fault_spec =
    Arg.(value & opt string ""
         & info [ "faults" ] ~docv:"SPEC"
             ~doc:"Fixed fault schedule applied to every explored configuration \
                   (same grammar as sim --faults).")
  in
  let fault_grid =
    Arg.(value & flag
         & info [ "fault-grid" ]
             ~doc:
               "Also explore each drift assignment under a crash of the last node \
                at t=1 with restart at t=2.")
  in
  let no_tie =
    Arg.(value & flag
         & info [ "no-tie" ]
             ~doc:
               "Do not enumerate same-instant dispatch orders; use the engine's \
                default (time, seq) order.")
  in
  let max_states =
    Arg.(value & opt int 0
         & info [ "max-states" ] ~docv:"N"
             ~doc:"Stop a configuration after $(docv) distinct states (0 = unlimited).")
  in
  let budget_ms =
    Arg.(value & opt float 0.
         & info [ "budget-ms" ] ~docv:"MS"
             ~doc:"Wall-clock budget over the whole sweep (0 = unlimited).")
  in
  let max_violations =
    Arg.(value & opt int 16
         & info [ "max-violations" ] ~docv:"N"
             ~doc:"Stop a configuration after $(docv) counterexamples.")
  in
  let out =
    Arg.(value & opt (some string) None
         & info [ "out" ] ~docv:"DIR"
             ~doc:
               "Write artifacts into $(docv): counterexample replay specs, their \
                TLA+ trace instances, and one passing trace instance.")
  in
  let replay =
    Arg.(value & opt (some string) None
         & info [ "replay" ] ~docv:"SPEC"
             ~doc:
               "Skip exploration and deterministically replay this one-line mcheck \
                spec (as printed for a counterexample).")
  in
  let scheduler =
    Arg.(value & opt scheduler_conv Gcs.Sim.Heap
         & info [ "scheduler" ] ~docv:"SCHED"
             ~doc:
               "Timer scheduler for the explored engine. Only heap is \
                supported: the adversary tie-break hook needs the single \
                totally-ordered event queue.")
  in
  let shards =
    Arg.(value & opt int 1
         & info [ "shards" ] ~docv:"K"
             ~doc:
               "Shard count for the explored engine. Only 1 is supported \
                (see --scheduler).")
  in
  let pp_stats fmt (o : Mcheck.Explorer.outcome) =
    Format.fprintf fmt
      "traces=%d pruned=%d states=%d choices=%d events=%d%s%s"
      o.stats.traces o.stats.pruned o.stats.distinct_states o.stats.choice_points
      o.stats.events
      (if o.exhausted then "" else " BUDGET-STOPPED")
      (if o.truncated then " (truncated at depth)" else "")
  in
  let write_tla dir name spec =
    let module_name = name in
    let path = Filename.concat dir (module_name ^ ".tla") in
    write_file path (Mcheck.Tla.export ~module_name spec (Mcheck.Explorer.samples spec));
    Format.printf "wrote %s@." path
  in
  let run n depth delays drifts horizon churn fault_spec fault_grid no_tie max_states
      budget_ms max_violations out replay scheduler shards =
    (* Validated up front like sim's node-id checks: the explorer drives
       the engine through Engine.set_tie_break, which only the
       single-shard heap scheduler supports — anything else used to
       surface as a raw Invalid_argument backtrace mid-run. *)
    if scheduler <> Gcs.Sim.Heap || shards <> 1 then begin
      Format.eprintf
        "mcheck requires --scheduler heap and --shards 1 (got scheduler=%s \
         shards=%d): exhaustive exploration enumerates same-instant \
         dispatch orders through the engine's adversary tie-break hook, \
         which only the single-shard heap scheduler supports. The parity \
         suite separately pins that wheel and sharded runs are \
         byte-identical to what mcheck explores.@."
        (Gcs.Sim.scheduler_to_string scheduler)
        shards;
      exit 2
    end;
    match replay with
    | Some spec_line -> (
      match Mcheck.Spec.of_spec spec_line with
      | Error msg ->
        Format.eprintf "bad mcheck replay spec: %s@." msg;
        exit 2
      | Ok spec -> (
        match Mcheck.Explorer.replay spec with
        | exception Mcheck.Explorer.Replay_diverged msg ->
          Format.eprintf "replay diverged: %s@." msg;
          exit 2
        | report, csv ->
          Format.printf "replaying: %s@.%a@." (Mcheck.Spec.to_spec spec)
            Audit.Report.pp report;
          Option.iter
            (fun dir ->
              mkdir_p dir;
              let path = Filename.concat dir "replay_trace.csv" in
              write_file path csv;
              Format.printf "wrote %s@." path;
              write_tla dir "McheckTrace_replay" spec)
            out;
          if not (Audit.Report.ok report) then exit 1))
    | None ->
      let faults =
        if fault_spec = "" then []
        else
          match Dsim.Fault.of_spec fault_spec with
          | Ok sched -> sched
          | Error msg ->
            Format.eprintf "cannot parse --faults spec: %s@." msg;
            exit 2
      in
      if faults <> [] && fault_grid then begin
        Format.eprintf "--faults and --fault-grid are mutually exclusive@.";
        exit 2
      end;
      let roots =
        try
          let base =
            Mcheck.Explorer.roots ~delays ~horizon ~depth ~tie:(not no_tie) ~churn
              ~fault_grid ~alphabet:drifts ~n ()
          in
          if faults = [] then base
          else
            List.map
              (fun s ->
                let s = { s with Mcheck.Spec.faults } in
                match Mcheck.Spec.validate s with
                | Ok () -> s
                | Error msg -> Fmt.failwith "invalid configuration: %s" msg)
              base
        with Invalid_argument msg | Failure msg ->
          Format.eprintf "%s@." msg;
          exit 2
      in
      let t0 = Unix.gettimeofday () in
      let elapsed_ms () = (Unix.gettimeofday () -. t0) *. 1000. in
      let max_states = if max_states <= 0 then max_int else max_states in
      let tr = ref 0 and st = ref 0 and ev = ref 0 and stopped = ref 0 in
      let cexs = ref [] in
      List.iter
        (fun root ->
          Format.printf "config: %s@." (Mcheck.Spec.to_spec root);
          let budget =
            if budget_ms <= 0. then 0.
            else Float.max 1. (budget_ms -. elapsed_ms ())
          in
          let levels =
            Mcheck.Explorer.explore_deepening ~max_states ~budget_ms:budget
              ~max_violations root
          in
          List.iter
            (fun (l : Mcheck.Explorer.level) ->
              Format.printf "  depth %2d: %a@." l.at_depth pp_stats l.outcome;
              List.iter
                (fun (c : Mcheck.Explorer.counterexample) ->
                  let key = Mcheck.Spec.to_spec c.spec in
                  if not (List.exists (fun (k, _) -> k = key) !cexs) then
                    cexs := (key, c) :: !cexs)
                l.outcome.violations)
            levels;
          (match List.rev levels with
          | (last : Mcheck.Explorer.level) :: _ ->
            tr := !tr + last.outcome.stats.traces;
            st := !st + last.outcome.stats.distinct_states;
            ev := !ev + last.outcome.stats.events;
            if not last.outcome.exhausted then incr stopped
          | [] -> ()))
        roots;
      let dt = Float.max 1e-9 (elapsed_ms () /. 1000.) in
      Format.printf
        "mcheck: %d configurations, %d traces, %d distinct states, %d events in \
         %.2fs (%.0f states/s, %.0f events/s)%s@."
        (List.length roots) !tr !st !ev dt
        (float_of_int !st /. dt)
        (float_of_int !ev /. dt)
        (if !stopped = 0 then "" else Printf.sprintf ", %d budget-stopped" !stopped);
      let cexs = List.rev !cexs in
      Option.iter
        (fun dir ->
          mkdir_p dir;
          (* one passing trace instance so CI always has an Apalache input *)
          (match roots with
          | first :: _ when cexs = [] ->
            write_tla dir "McheckTrace_ok" { first with Mcheck.Spec.choices = [] }
          | _ -> ());
          if cexs <> [] then begin
            let buf = Buffer.create 256 in
            List.iteri
              (fun i (_, (c : Mcheck.Explorer.counterexample)) ->
                let shrunk = Mcheck.Explorer.shrink c.spec in
                Buffer.add_string buf (Mcheck.Spec.to_spec shrunk);
                Buffer.add_char buf '\n';
                write_tla dir (Printf.sprintf "McheckTrace_cex_%d" (i + 1)) shrunk)
              cexs;
            let path = Filename.concat dir "counterexamples.spec" in
            write_file path (Buffer.contents buf);
            Format.printf "wrote %s@." path
          end)
        out;
      if cexs <> [] then begin
        Format.printf "%d counterexample(s):@." (List.length cexs);
        List.iter
          (fun (_, (c : Mcheck.Explorer.counterexample)) ->
            Format.printf "  replay spec: %s@." (Mcheck.Spec.to_spec c.spec);
            List.iter
              (fun v -> Format.printf "    %a@." Audit.Report.pp_violation v)
              c.report.Audit.Report.violations)
          cexs;
        exit 1
      end
  in
  Cmd.v (Cmd.info "mcheck" ~doc)
    Term.(
      const run $ n $ depth $ delays $ drifts $ horizon $ churn $ fault_spec
      $ fault_grid $ no_tie $ max_states $ budget_ms $ max_violations $ out $ replay
      $ scheduler $ shards)

(* ------------------------------- main ------------------------------ *)

let () =
  let doc = "Gradient clock synchronization in dynamic networks (SPAA 2009) simulator." in
  let info = Cmd.info "gcs_sim" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info [ list_cmd; exp_cmd; params_cmd; sim_cmd; fuzz_cmd; mcheck_cmd ]))
