(** Lightweight execution tracing: per-kind O(1) event counters plus an
    optional bounded log of structured records.

    Recording is allocation-free when the log is off (the default): a
    record is a counter increment, and the human-readable rendering of an
    event is derived lazily from its integer fields only when an entry is
    actually retained ([log_limit > 0]) or streamed ([verbosity > 0]). *)

type kind =
  | Send
  | Deliver
  | Drop_no_edge     (** send attempted on an absent edge *)
  | Drop_in_flight   (** message lost because the edge changed in flight *)
  | Drop_lossy       (** silent loss injected by a lossy delay policy *)
  | Edge_add
  | Edge_remove
  | Discover_add
  | Discover_remove
  | Discover_stale   (** discovery suppressed: the change was superseded *)
  | Timer_fire
  | Timer_stale      (** cancelled or superseded timer *)
  | Fault_crash      (** injected crash: node loses all state *)
  | Fault_restart    (** injected restart: node resumes from scratch *)
  | Fault_corrupt    (** the restart resumed from corrupted state *)
  | Fault_byzantine_msg  (** a Byzantine sender corrupted this message *)
  | Fault_duplicate  (** an extra copy of this send was injected *)
  | Delay_clamped
      (** a user delay policy drew outside [0, bound] and the engine
          clamped it — almost always a broken adversary policy *)

val kind_to_string : kind -> string

val all_kinds : kind list

val kind_count : int
(** Number of kinds; valid indices are [0 .. kind_count - 1]. *)

val kind_index : kind -> int
(** Dense index of a kind, in {!all_kinds} order. Together with
    {!kind_of_index} this is the seam the engine's parallel dispatch
    windows use to buffer records as plain integers per shard lane and
    merge them back deterministically at the barrier (DESIGN §14). *)

val kind_of_index : int -> kind
(** Inverse of {!kind_index}. Raises on out-of-range indices. *)

type entry = { time : float; kind : kind; a : int; b : int; c : int }
(** A structured record: the event kind plus up to three integer fields
    whose meaning depends on the kind — [(src, dst, epoch)] for message
    events, [(u, v, -1)] for topology events, [(node, peer, epoch)] for
    discovery events, [(node, label, -1)] for timers, where [label] is
    the engine's encoded timer label ([-1] when the engine was built
    without [timer_label]). Unused fields are [-1]. *)

type t

val create : ?log_limit:int -> ?verbosity:int -> ?sink:Format.formatter -> unit -> t
(** [log_limit] bounds the number of retained entries (default 0:
    counters only). [verbosity > 0] (default 0) additionally formats and
    prints every entry to [sink] (default [Format.err_formatter]) as it
    is recorded. *)

val record : t -> time:float -> kind -> int -> int -> int -> unit
(** [record t ~time kind a b c] bumps the kind's counter and, only if the
    log or streaming is enabled, retains/prints the structured entry.
    Pass [-1] for fields the kind does not use. *)

val wants_entries : t -> bool
(** Whether entries are retained ([log_limit > 0]). The engine's parallel
    lanes only buffer structured entries when this holds. *)

val streams : t -> bool
(** Whether entries are formatted and printed as recorded
    ([verbosity > 0]). Streaming interleaves with dispatch order, so the
    engine keeps dispatch sequential whenever this holds. *)

val append_entry : t -> time:float -> kind -> int -> int -> int -> unit
(** Retain (and stream, if enabled) an entry {e without} bumping its
    counter. Only for replaying records whose counters were already
    accounted for — the engine's barrier merge folds per-lane counter
    deltas via {!merge_counts} and appends the buffered entries here, in
    the global [(time, seq)] order. *)

val merge_counts : t -> int array -> unit
(** [merge_counts t deltas] adds [deltas] (indexed by {!kind_index},
    length {!kind_count}) into the counters. *)

(** {2 Parallel-dispatch shape counters}

    Maintained by the engine's coordinating domain only (never from lane
    domains), so reads race with nothing. They describe the {e shape} of
    parallel dispatch — how well windows amortize barriers — and are kept
    out of the per-kind counters and the CSV because they depend on
    [(shards, jobs)] while the trace proper must not (DESIGN §14). *)

val note_window : t -> span:float -> unit
(** One dispatch round (window extension) completed, covering [span]
    simulated time. *)

val note_barrier : t -> events:int -> unit
(** One merge barrier paid, having dispatched [events] events across all
    the windows it closed. *)

val note_cross : t -> int -> unit
(** [n] more events crossed a shard boundary in flight. *)

val windows : t -> int
(** Dispatch rounds formed (window extensions count separately). *)

val barriers : t -> int
(** Merge barriers paid. [windows t >= barriers t]; the gap is what
    adaptive extension saved. *)

val window_events : t -> int
(** Events dispatched inside windows (the rest ran sequentially). *)

val window_span : t -> float
(** Total simulated time covered by windows. *)

val cross_shard_events : t -> int
(** Events that crossed a shard boundary through an outbox. *)

val count : t -> kind -> int

val total : t -> int

val counts : t -> (kind * int) list
(** All per-kind counters, in {!all_kinds} order. *)

val entries : t -> entry list
(** Retained entries, oldest first. *)

val detail : entry -> string
(** The entry's detail rendered as the engine's traditional short form,
    e.g. ["3->4"], ["{0,1}"], ["2:{2,5}"]. *)

val pp_detail : Format.formatter -> entry -> unit

val pp_entry : Format.formatter -> entry -> unit
(** One line: time, kind, detail. *)

val to_csv : t -> string
(** Retained entries as CSV with header [time,kind,a,b,c]. *)

val pp_summary : Format.formatter -> t -> unit
