type t = {
  starts : float array; (* segment start times; starts.(0) = 0 *)
  values : float array; (* H at each segment start *)
  rates : float array;  (* rate on [starts.(i), starts.(i+1)) *)
}

let of_rates schedule =
  match schedule with
  | [] -> invalid_arg "Hwclock.of_rates: empty schedule"
  | (t0, _) :: _ when t0 <> 0. ->
    invalid_arg "Hwclock.of_rates: first segment must start at 0"
  | schedule ->
    let n = List.length schedule in
    let starts = Array.make n 0. in
    let rates = Array.make n 0. in
    List.iteri
      (fun i (t, r) ->
        if r <= 0. then invalid_arg "Hwclock.of_rates: rate must be positive";
        if i > 0 && t <= starts.(i - 1) then
          invalid_arg "Hwclock.of_rates: segment times must increase";
        starts.(i) <- t;
        rates.(i) <- r)
      schedule;
    let values = Array.make n 0. in
    for i = 1 to n - 1 do
      values.(i) <- values.(i - 1) +. (rates.(i - 1) *. (starts.(i) -. starts.(i - 1)))
    done;
    { starts; values; rates }

let constant rate = of_rates [ (0., rate) ]

let perfect = constant 1.0

(* Index of the segment containing [t]: greatest i with starts.(i) <= t. *)
let segment_index starts t =
  let lo = ref 0 and hi = ref (Array.length starts - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi + 1) / 2 in
    if starts.(mid) <= t then lo := mid else hi := mid - 1
  done;
  !lo

(* [value]/[inverse] sit on the engine's per-event path (every timer arm
   and clock read). The constant-rate single-segment case — most bench
   and experiment clocks — is forced inline as straight-line arithmetic:
   an out-of-line call here boxes the float argument and result every
   time, several words per event for pure math. The multi-segment search
   stays out of line (Closure cannot inline the loop). *)
let value_multi c t =
  let i = segment_index c.starts t in
  c.values.(i) +. (c.rates.(i) *. (t -. c.starts.(i)))

let[@inline always] value c t =
  if t < 0. then invalid_arg "Hwclock.value: negative time";
  if Array.length c.starts = 1 then c.values.(0) +. (c.rates.(0) *. t)
  else value_multi c t

let inverse_multi c h =
  let i = segment_index c.values h in
  c.starts.(i) +. ((h -. c.values.(i)) /. c.rates.(i))

let[@inline always] inverse c h =
  if h < 0. then invalid_arg "Hwclock.inverse: negative value";
  if Array.length c.starts = 1 then h /. c.rates.(0)
  else inverse_multi c h

let rate_at c t =
  if t < 0. then invalid_arg "Hwclock.rate_at: negative time";
  c.rates.(segment_index c.starts t)

let segments c =
  Array.to_list (Array.init (Array.length c.starts) (fun i -> (c.starts.(i), c.rates.(i))))

let max_rate c = Array.fold_left Float.max neg_infinity c.rates

let min_rate c = Array.fold_left Float.min infinity c.rates

let within_drift ~rho c =
  min_rate c >= 1. -. rho && max_rate c <= 1. +. rho

let fastest ~rho = constant (1. +. rho)

let slowest ~rho = constant (1. -. rho)

let two_rate ~rho ~period ~horizon ~fast_first =
  if period <= 0. then invalid_arg "Hwclock.two_rate: period must be positive";
  let rec build t fast acc =
    if t >= horizon then List.rev ((horizon, 1.) :: acc)
    else
      let r = if fast then 1. +. rho else 1. -. rho in
      build (t +. period) (not fast) ((t, r) :: acc)
  in
  (* Drop a trailing (horizon, 1.) that coincides with a segment start. *)
  let schedule = build 0. fast_first [] in
  let rec dedup = function
    | (t1, _) :: ((t2, _) :: _ as rest) when t1 = t2 -> dedup rest
    | x :: rest -> x :: dedup rest
    | [] -> []
  in
  of_rates (dedup schedule)

let random_walk prng ~rho ~segment_mean ~horizon =
  if segment_mean <= 0. then
    invalid_arg "Hwclock.random_walk: segment_mean must be positive";
  let rec build t acc =
    if t >= horizon then List.rev ((horizon, 1.) :: acc)
    else
      let r = Prng.float_in prng (1. -. rho) (1. +. rho) in
      (* Exponential inter-arrival, clamped away from zero so schedules
         stay short. *)
      let u = Float.max 1e-9 (Prng.float prng 1.) in
      let len = Float.max (segment_mean /. 20.) (-.segment_mean *. log u) in
      build (t +. len) ((t, r) :: acc)
  in
  let rec dedup = function
    | (t1, _) :: ((t2, _) :: _ as rest) when t1 = t2 -> dedup rest
    | x :: rest -> x :: dedup rest
    | [] -> []
  in
  of_rates (dedup (build 0. []))

let fast_until ~rho switch =
  if switch <= 0. then constant 1.0
  else of_rates [ (0., 1. +. rho); (switch, 1.) ]
