(** Deterministic fault schedules for the engine.

    A schedule is a list of fault operations fixed before the run starts:
    node crashes and restarts (with optional arbitrary-state corruption at
    restart, the self-stabilization question), bounded duplication and
    within-[T] reordering windows on directed links, and bounded Byzantine
    windows during which a node's outgoing messages are corrupted in
    flight. The engine applies the schedule as first-class traced events
    ({!Trace.Fault_crash} etc.), identically under both schedulers.

    Schedules have a one-token textual form (no spaces, ops joined by
    [';']) so they can ride inside {!Audit.Scenario} replay specs:

    {v
      crash@T:N          node N crashes at time T
      restart@T:N        node N restarts at time T with fresh state
      restart@T:N!       ... restarting from corrupted state
      dup@T1-T2:S>D      sends S->D in [T1,T2] are delivered twice
      reorder@T1-T2:S>D  sends S->D in [T1,T2] skip the FIFO floor
      byz@T1-T2:N        N's outgoing messages in [T1,T2] are corrupted
    v} *)

type op =
  | Crash of { node : int; at : float }
  | Restart of { node : int; at : float; corrupt : bool }
  | Duplicate of { src : int; dst : int; from_ : float; until : float }
  | Reorder of { src : int; dst : int; from_ : float; until : float }
  | Byzantine of { node : int; from_ : float; until : float }

type schedule = op list

val validate : n:int -> schedule -> (unit, string) result
(** Checks node ids are in range, times are finite and non-negative,
    window ends don't precede their starts, and each node's crash/restart
    ops alternate in time order starting with a crash. *)

val op_time : op -> float
(** When the op takes effect: [at] for crash/restart, [from_] for
    windows. *)

val first_time : schedule -> float option
val last_time : schedule -> float option
(** Earliest effect time / latest time at which any op is still active
    ([at] for crash/restart, [until] for windows). [None] on []. *)

val to_spec : schedule -> string
(** One token: ops joined by [';'] in the grammar above. [""] on []. *)

val of_spec : string -> (schedule, string) result
(** Inverse of {!to_spec}. Does not range-check nodes (use {!validate}
    once [n] is known). *)

val generate : Prng.t -> n:int -> horizon:float -> schedule
(** Draw a small random schedule: up to two crash/restart pairs (possibly
    corrupting), up to one duplication or reordering window, and up to one
    Byzantine window. All times are quantized to 0.25 so specs round-trip
    exactly through {!to_spec}/{!of_spec}. *)

val alive : schedule -> node:int -> at:float -> bool
(** [false] iff the schedule has the node down (crashed, not yet
    restarted) at time [at]. Down intervals are closed on the left:
    a node is dead from its crash instant up to, but excluding, its
    restart instant. *)

val dead_during : schedule -> node:int -> float -> float -> bool
(** Does the node's down time intersect the closed interval [[t0, t1]]? *)

val restarted_in : schedule -> node:int -> float -> float -> bool
(** Did the node restart at some time in [(t0, t1]]? *)

val crashed_in : schedule -> node:int -> float -> float -> bool
(** Did the node crash at some time in [(t0, t1]]? *)

val duplicated : schedule -> src:int -> dst:int -> at:float -> bool
(** Is a duplication window for the directed link active at [at]? *)

val reordered : schedule -> src:int -> dst:int -> at:float -> bool

val reorder_near : schedule -> src:int -> dst:int -> at:float -> slop:float -> bool
(** Like {!reordered} but widening each window by [slop] on both sides —
    used by the auditor, which sees deliveries up to a delay bound after
    the send that was reordered. *)

val byzantine : schedule -> node:int -> at:float -> bool
(** Is a Byzantine window for the node's outgoing messages active at
    [at]? *)
