(** Struct-of-arrays event queue for the engine's encoded events.

    A binary heap ordered by [(time, seq)] — the same total order as
    {!Pqueue} — holding events flattened to a kind tag, four int operands
    and one optional boxed payload. Times live in an off-heap Float64
    [Bigarray]; the operand columns sit in a free-listed slot pool so a
    sift moves [(time, seq, slot)] triples only. The steady-state
    push/pop cycle allocates nothing.

    Unlike {!Pqueue}, tie-break sequence numbers are supplied by the
    caller: the engine owns one global counter shared by all of its
    per-shard queues and its timer wheels, which is what makes the
    sharded merge order — and therefore the trace — independent of the
    shard count. *)

type t

val create : ?capacity:int -> unit -> t
(** [create ?capacity ()] pre-allocates room for [capacity] events
    (default 64); the queue still grows on demand past it. Raises
    [Invalid_argument] on a negative capacity. *)

val push :
  t ->
  time:float ->
  seq:int ->
  kind:int ->
  a:int ->
  b:int ->
  c:int ->
  d:int ->
  Obj.t ->
  unit
(** Insert an encoded event. [time] must be finite; [seq] must be unique
    across every queue sharing the engine's counter. *)

val pop : t -> unit
(** Remove the earliest event and latch it into the registers read by
    {!ev_kind} .. {!ev_payload}. Raises [Invalid_argument] when empty. *)

val next_time : t -> float
(** Time of the earliest event, or [infinity] when empty. *)

val top_seq : t -> int
(** Sequence of the earliest event, or [max_int] when empty — an
    equal-time comparison against another source then always prefers the
    non-empty side. *)

val ev_kind : t -> int
val ev_a : t -> int
val ev_b : t -> int
val ev_c : t -> int
val ev_d : t -> int

val ev_payload : t -> Obj.t
(** Registers of the last {!pop}ped event. The payload register keeps the
    payload alive until the next pop (or {!release}). *)

val release : t -> unit
(** Clear the payload register so the GC can reclaim the last payload. *)

val prov_flag : int
(** Seqs at or above this value are provisional per-lane block ranks
    (DESIGN §14); the queue counts them so {!remap_batch} can skip
    queues holding none. *)

val cre_mask : int
(** Mask extracting a provisional seq's creation index — the index into
    the creating lane's final-rank table. *)

val remap_batch : t -> finals:int array -> unit
(** [remap_batch q ~finals] replaces every live provisional seq [s] with
    [finals.(s land cre_mask)] in place and stops as soon as the queue's
    provisional count is exhausted (one load when it is zero). The
    rewrite must preserve the pairwise order of the live seqs, which the
    engine's barrier guarantees: a lane's provisional ranks resolve in
    creation order and every assigned final rank exceeds every rank the
    queue already held (DESIGN §14). *)

val size : t -> int
val is_empty : t -> bool

val footprint_words : t -> int
(** Words currently allocated across the heap and pool columns (the
    off-heap time column counted at one word per cell) — the engine's
    memory-growth checks read this. *)
