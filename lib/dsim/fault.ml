type op =
  | Crash of { node : int; at : float }
  | Restart of { node : int; at : float; corrupt : bool }
  | Duplicate of { src : int; dst : int; from_ : float; until : float }
  | Reorder of { src : int; dst : int; from_ : float; until : float }
  | Byzantine of { node : int; from_ : float; until : float }

type schedule = op list

let op_time = function
  | Crash { at; _ } | Restart { at; _ } -> at
  | Duplicate { from_; _ } | Reorder { from_; _ } | Byzantine { from_; _ } ->
    from_

let op_end = function
  | Crash { at; _ } | Restart { at; _ } -> at
  | Duplicate { until; _ } | Reorder { until; _ } | Byzantine { until; _ } ->
    until

let first_time = function
  | [] -> None
  | s -> Some (List.fold_left (fun acc op -> Float.min acc (op_time op)) infinity s)

let last_time = function
  | [] -> None
  | s -> Some (List.fold_left (fun acc op -> Float.max acc (op_end op)) neg_infinity s)

let bad fmt = Printf.ksprintf (fun m -> Error m) fmt

let validate ~n sched =
  let ok_time t = Float.is_finite t && t >= 0. in
  let ok_node v = v >= 0 && v < n in
  let check_op = function
    | Crash { node; at } | Byzantine { node; from_ = at; _ } ->
      if not (ok_node node) then bad "fault: node %d out of range" node
      else if not (ok_time at) then bad "fault: bad time %g" at
      else Ok ()
    | Restart { node; at; _ } ->
      if not (ok_node node) then bad "fault: node %d out of range" node
      else if not (ok_time at) then bad "fault: bad time %g" at
      else Ok ()
    | Duplicate { src; dst; from_; until } | Reorder { src; dst; from_; until }
      ->
      if not (ok_node src && ok_node dst) then
        bad "fault: link %d>%d out of range" src dst
      else if src = dst then bad "fault: self-link %d>%d" src dst
      else if not (ok_time from_ && ok_time until) then
        bad "fault: bad window [%g,%g]" from_ until
      else if until < from_ then bad "fault: empty window [%g,%g]" from_ until
      else Ok ()
  in
  let check_window = function
    | Byzantine { from_; until; _ } when until < from_ ->
      bad "fault: empty window [%g,%g]" from_ until
    | _ -> Ok ()
  in
  let rec all = function
    | [] -> Ok ()
    | op :: rest -> (
      match check_op op with
      | Error _ as e -> e
      | Ok () -> (
        match check_window op with Error _ as e -> e | Ok () -> all rest))
  in
  match all sched with
  | Error _ as e -> e
  | Ok () ->
    (* Per node, crash and restart ops must alternate in time order
       starting with a crash (a node can't restart before it crashed). *)
    let per_node v = function
      | Error _ as e -> e
      | Ok () ->
        let evs =
          List.filter_map
            (function
              | Crash { node; at } when node = v -> Some (at, `Crash)
              | Restart { node; at; _ } when node = v -> Some (at, `Restart)
              | _ -> None)
            sched
          |> List.stable_sort (fun (a, _) (b, _) -> Float.compare a b)
        in
        let rec walk expect = function
          | [] -> Ok ()
          | (at, got) :: rest ->
            if got <> expect then
              bad "fault: node %d %s at %g out of order" v
                (match got with `Crash -> "crash" | `Restart -> "restart")
                at
            else
              walk (match expect with `Crash -> `Restart | `Restart -> `Crash)
                rest
        in
        walk `Crash evs
    in
    let rec nodes v acc = if v >= n then acc else nodes (v + 1) (per_node v acc) in
    nodes 0 (Ok ())

(* Spec grammar (one token, no spaces):
     crash@T:N  restart@T:N[!]  dup@T1-T2:S>D  reorder@T1-T2:S>D  byz@T1-T2:N
   joined by ';'. *)

let op_to_spec = function
  | Crash { node; at } -> Printf.sprintf "crash@%g:%d" at node
  | Restart { node; at; corrupt } ->
    Printf.sprintf "restart@%g:%d%s" at node (if corrupt then "!" else "")
  | Duplicate { src; dst; from_; until } ->
    Printf.sprintf "dup@%g-%g:%d>%d" from_ until src dst
  | Reorder { src; dst; from_; until } ->
    Printf.sprintf "reorder@%g-%g:%d>%d" from_ until src dst
  | Byzantine { node; from_; until } ->
    Printf.sprintf "byz@%g-%g:%d" from_ until node

let to_spec sched = String.concat ";" (List.map op_to_spec sched)

let op_of_spec tok =
  let split2 c s =
    match String.index_opt s c with
    | None -> None
    | Some i ->
      Some (String.sub s 0 i, String.sub s (i + 1) (String.length s - i - 1))
  in
  let float_of s = float_of_string_opt s in
  let int_of s = int_of_string_opt s in
  match split2 '@' tok with
  | None -> bad "fault op %S: missing '@'" tok
  | Some (verb, rest) -> (
    match split2 ':' rest with
    | None -> bad "fault op %S: missing ':'" tok
    | Some (times, target) -> (
      let window () =
        match split2 '-' times with
        | None -> bad "fault op %S: window must be T1-T2" tok
        | Some (a, b) -> (
          match (float_of a, float_of b) with
          | Some f, Some u -> Ok (f, u)
          | _ -> bad "fault op %S: bad window times" tok)
      in
      let link () =
        match split2 '>' target with
        | None -> bad "fault op %S: link must be S>D" tok
        | Some (s, d) -> (
          match (int_of s, int_of d) with
          | Some s, Some d -> Ok (s, d)
          | _ -> bad "fault op %S: bad link" tok)
      in
      match verb with
      | "crash" -> (
        match (float_of times, int_of target) with
        | Some at, Some node -> Ok (Crash { node; at })
        | _ -> bad "fault op %S: expected crash@T:N" tok)
      | "restart" -> (
        let corrupt = String.length target > 0 && target.[String.length target - 1] = '!' in
        let target =
          if corrupt then String.sub target 0 (String.length target - 1)
          else target
        in
        match (float_of times, int_of target) with
        | Some at, Some node -> Ok (Restart { node; at; corrupt })
        | _ -> bad "fault op %S: expected restart@T:N[!]" tok)
      | "dup" -> (
        match (window (), link ()) with
        | Ok (from_, until), Ok (src, dst) ->
          Ok (Duplicate { src; dst; from_; until })
        | (Error _ as e), _ | _, (Error _ as e) -> e)
      | "reorder" -> (
        match (window (), link ()) with
        | Ok (from_, until), Ok (src, dst) ->
          Ok (Reorder { src; dst; from_; until })
        | (Error _ as e), _ | _, (Error _ as e) -> e)
      | "byz" -> (
        match (window (), int_of target) with
        | Ok (from_, until), Some node -> Ok (Byzantine { node; from_; until })
        | (Error _ as e), _ -> e
        | _, None -> bad "fault op %S: bad node" tok)
      | v -> bad "fault op %S: unknown verb %S" tok v))

let of_spec s =
  if s = "" then Ok []
  else
    let toks = String.split_on_char ';' s in
    let rec go acc = function
      | [] -> Ok (List.rev acc)
      | t :: rest -> (
        match op_of_spec t with Ok op -> go (op :: acc) rest | Error _ as e -> e)
    in
    go [] toks

(* Times are drawn on a 0.25 grid so %g prints them exactly and replayed
   specs are bit-identical to the drawn schedule. *)
let quant prng lo hi =
  let lo_q = int_of_float (Float.ceil (lo /. 0.25)) in
  let hi_q = int_of_float (Float.floor (hi /. 0.25)) in
  let q = if hi_q <= lo_q then lo_q else Prng.int_in prng lo_q hi_q in
  float_of_int q *. 0.25

let generate prng ~n ~horizon =
  let ops = ref [] in
  let pairs = Prng.int prng 3 in
  for _ = 1 to pairs do
    let node = Prng.int prng n in
    let crash_at = quant prng (0.1 *. horizon) (0.6 *. horizon) in
    let restart_at = quant prng (crash_at +. 1.) (0.8 *. horizon) in
    let restart_at = Float.max restart_at (crash_at +. 0.25) in
    let corrupt = Prng.bool prng in
    ops := Restart { node; at = restart_at; corrupt } :: Crash { node; at = crash_at } :: !ops
  done;
  (* Keep at most one crash/restart pair per node: later draws that reuse
     a node would break the alternation rule. *)
  let seen = Hashtbl.create 8 in
  let ops =
    List.filter
      (fun op ->
        match op with
        | Crash { node; _ } | Restart { node; _ } ->
          if Hashtbl.mem seen (`N node) then false
          else begin
            (match op with Restart _ -> Hashtbl.replace seen (`N node) () | _ -> ());
            true
          end
        | _ -> true)
      (List.rev !ops)
  in
  let ops = ref (List.rev ops) in
  if Prng.bool prng then begin
    let src = Prng.int prng n in
    let dst = (src + 1 + Prng.int prng (n - 1)) mod n in
    let from_ = quant prng (0.1 *. horizon) (0.5 *. horizon) in
    let until = quant prng from_ (Float.min horizon (from_ +. (0.3 *. horizon))) in
    let w =
      if Prng.bool prng then Duplicate { src; dst; from_; until }
      else Reorder { src; dst; from_; until }
    in
    ops := w :: !ops
  end;
  if Prng.int prng 3 = 0 then begin
    let node = Prng.int prng n in
    let from_ = quant prng (0.1 *. horizon) (0.5 *. horizon) in
    let until = quant prng from_ (Float.min horizon (from_ +. (0.2 *. horizon))) in
    ops := Byzantine { node; from_; until } :: !ops
  end;
  List.rev !ops

let alive sched ~node ~at =
  (* Down from crash (inclusive) to restart (exclusive). *)
  let down = ref false in
  let last = ref neg_infinity in
  List.iter
    (fun op ->
      match op with
      | Crash { node = v; at = t } when v = node && t <= at && t >= !last ->
        down := true;
        last := t
      | Restart { node = v; at = t; _ } when v = node && t <= at && t >= !last ->
        down := false;
        last := t
      | _ -> ())
    sched;
  not !down

let dead_during sched ~node t0 t1 =
  (* The node is dead somewhere in [t0, t1] iff it entered the interval
     dead, or some crash op lands inside it. *)
  (not (alive sched ~node ~at:t0))
  || List.exists
       (function
         | Crash { node = v; at } -> v = node && at >= t0 && at <= t1
         | _ -> false)
       sched

let restarted_in sched ~node t0 t1 =
  List.exists
    (function
      | Restart { node = v; at; _ } -> v = node && at > t0 && at <= t1
      | _ -> false)
    sched

let crashed_in sched ~node t0 t1 =
  List.exists
    (function
      | Crash { node = v; at } -> v = node && at > t0 && at <= t1
      | _ -> false)
    sched

let window_active sched ~at ~slop pick =
  List.exists
    (fun op ->
      match pick op with
      | Some (from_, until) -> at >= from_ -. slop && at <= until +. slop
      | None -> false)
    sched

let duplicated sched ~src ~dst ~at =
  window_active sched ~at ~slop:0. (function
    | Duplicate { src = s; dst = d; from_; until } when s = src && d = dst ->
      Some (from_, until)
    | _ -> None)

let reordered sched ~src ~dst ~at =
  window_active sched ~at ~slop:0. (function
    | Reorder { src = s; dst = d; from_; until } when s = src && d = dst ->
      Some (from_, until)
    | _ -> None)

let reorder_near sched ~src ~dst ~at ~slop =
  window_active sched ~at ~slop (function
    | Reorder { src = s; dst = d; from_; until } when s = src && d = dst ->
      Some (from_, until)
    | _ -> None)

let byzantine sched ~node ~at =
  window_active sched ~at ~slop:0. (function
    | Byzantine { node = v; from_; until } when v = node -> Some (from_, until)
    | _ -> None)
