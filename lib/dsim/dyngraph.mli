(** The dynamic edge set of an execution.

    Tracks which undirected edges currently exist, when each last changed,
    and an epoch counter per edge that increments on every add or remove.
    Epochs let the engine invalidate in-flight messages and stale discovery
    notifications when the edge they refer to has since changed
    (Section 3.2's transient-change semantics). *)

type t

val create : n:int -> t
(** Graph over nodes [0 .. n-1] with no edges. Storage is edge-sparse:
    O(n + edges ever touched), never O(n²). *)

val n : t -> int

val add_node : t -> int
(** Grow the graph by one node and return its id (the previous {!n}).
    Existing edges, epochs and adjacency are untouched; the new node may
    immediately participate in {!add_edge}. *)

val normalize : int -> int -> int * int
(** Order an edge's endpoints as [(min, max)]. *)

val compare_edge : int * int -> int * int -> int
(** Lexicographic [Int.compare] on the endpoints (the order {!edges}
    returns). *)

val has_edge : t -> int -> int -> bool

val add_edge : t -> now:float -> int -> int -> bool
(** Make the edge present. Returns [false] (and changes nothing) if it was
    already present. *)

val remove_edge : t -> now:float -> int -> int -> bool
(** Make the edge absent. Returns [false] if it was already absent. *)

val epoch : t -> int -> int -> int
(** Number of changes this edge has undergone (0 if never touched). *)

(** {2 Parallel-window seam}

    A topology event whose endpoints share a shard may dispatch inside
    that shard's parallel window (DESIGN §14). The protocol: {!reserve}
    runs at schedule time — always sequential — and pre-allocates the
    edge's pool slot and both adjacency entries without changing
    presence, so the in-window flip below never allocates or touches
    shared arrays. {!flip_add}/{!flip_remove} write only cells the
    owning lane may touch (the slot's presence/epoch/since and the two
    endpoints' degrees) and deliberately skip the global {!edge_count}
    counter; the lane accumulates a live-edge delta that the barrier
    folds back with {!adjust_live}. *)

val reserve : t -> int -> int -> bool
(** Pre-allocate the edge's slot and adjacency entries (presence
    unchanged). Returns [false] — reserving nothing — when an endpoint
    is out of range or the edge is a self-loop; such events must keep
    dispatching sequentially so they raise exactly as before. *)

val flip_add : t -> now:float -> int -> int -> bool
(** {!add_edge} minus validation, allocation and the {!edge_count}
    bump. Requires a prior {!reserve}; returns [false] if the slot is
    missing or the edge is already present. *)

val flip_remove : t -> int -> int -> bool
(** {!remove_edge} minus validation and the {!edge_count} drop. Returns
    [false] if the edge is absent. *)

val adjust_live : t -> int -> unit
(** Fold a lane's accumulated live-edge delta back into
    {!edge_count}. *)

val since : t -> int -> int -> float option
(** If present, the real time at which the edge last appeared. *)

val neighbors : t -> int -> int list
(** Current neighbors of a node, in increasing order. *)

val edges : t -> (int * int) list
(** Current edge list, normalized and sorted. *)

val iter_edges : t -> (int -> int -> unit) -> unit
(** [iter_edges g f] calls [f u v] (normalized, [u < v]) for every present
    edge without allocating. Order is unspecified; use {!edges} when a
    sorted list is needed. *)

val fold_edges : t -> ('a -> int -> int -> 'a) -> 'a -> 'a
(** Allocation-free fold over present edges, same visit contract as
    {!iter_edges}. *)

val edge_count : t -> int

val degree : t -> int -> int

val footprint_words : t -> int
(** Words currently allocated across adjacency and edge-pool arrays —
    read by the engine's memory-growth checks. *)

val is_connected : t -> bool
(** Is the current static snapshot connected? (Singleton graphs count as
    connected.) *)
