(** Discrete-event simulation substrate for dynamic networks with
    drifting hardware clocks (the model of Section 3.2 of the paper).

    Everything here is algorithm-agnostic: {!Engine} drives arbitrary
    node automata that only see their own hardware clock, message
    receipt, discovery events and subjective-time timers. *)

module Prng = Prng
(** Deterministic splittable PRNG (splitmix64). *)

module Pqueue = Pqueue
(** Timestamped event queue (binary heap, FIFO at equal times). *)

module Equeue = Equeue
(** Flat SoA event queue the engine schedules on: int-encoded events in
    an indirect heap, allocation-free push/pop. *)

module Timewheel = Timewheel
(** Hierarchical timer wheel the engine can keep armed timers in instead
    of the event heap. *)

module Hwclock = Hwclock
(** Piecewise-linear drifting hardware clocks with exact inverses. *)

module Delay = Delay
(** Message delay policies in [\[0, T\]], including adversarial and
    (optionally) lossy ones. *)

module Dyngraph = Dyngraph
(** The dynamic edge set with per-edge change epochs. *)

module Trace = Trace
(** Execution event counters and optional structured logs. *)

module Fault = Fault
(** Deterministic fault-injection schedules: crash/restart, duplication,
    reordering and Byzantine windows. *)

module Engine = Engine
(** The simulator core: topology changes, discovery, FIFO delivery,
    subjective timers, probes. *)
