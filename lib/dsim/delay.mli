(** Message delay policies.

    The network model (Section 3.2) guarantees delivery within [T] real
    time on a surviving edge but leaves the specific delay to an adversary.
    A policy chooses the delay of each message at send time; the engine
    additionally enforces FIFO order per directed link. *)

type t = {
  bound : float;
  (** The model's [T]: no drawn delay may exceed it. *)
  draw : src:int -> dst:int -> now:float -> float;
  (** Delay for a message sent from [src] to [dst] at real time [now].
      Must lie in [\[0, bound\]]. *)
  drop : src:int -> dst:int -> now:float -> bool;
  (** Silent per-message loss. The paper's model assumes reliable links
      ([drop] is constantly [false] for every constructor here); {!lossy}
      wraps a policy to study robustness when that assumption breaks.
      Unlike an edge removal, a silent drop triggers no discovery — the
      receiver only notices through the [lost(v)] timeout. *)
  const : float;
  (** Fast path for fixed-delay policies: when non-negative, every call
      to [draw] would return exactly this value (already in
      [\[0, bound\]]), and the engine skips the closure call — a generic
      closure-field call boxes its float result, which is measurable on
      the per-send hot path. Negative for genuinely drawing policies. *)
  may_drop : bool;
  (** [false] guarantees [drop] is constantly [false], letting the engine
      skip the call entirely. Only {!lossy} sets it. *)
  pure : bool;
  (** [true] promises [draw] is a pure function of [(src, dst, now)]:
      no shared PRNG stream or other mutable state, so concurrent calls
      from several domains are safe and produce the same values in any
      order. The engine only runs shards on multiple domains (DESIGN §14)
      under a pure policy — an impure one falls back to the sequential
      dispatch loop, which is always correct. *)
  min_lat : float;
  (** Conservative lower bound on every value [draw] can return (and on
      every [per_edge] override). This is the engine's lookahead: a
      parallel dispatch window spans [min_lat] of simulated time, because
      any message sent inside the window lands at or beyond its end.
      [0.] is always sound and simply disables parallel windows. *)
}

val constant : bound:float -> float -> t
(** Every message takes exactly the given delay. Pure, with
    [min_lat] equal to the delay. *)

val zero : bound:float -> t
(** Instantaneous delivery (still ordered after the sending event). *)

val maximal : bound:float -> t
(** Every message takes the full [bound] — the classic worst case.
    Pure with [min_lat = bound], so it admits maximal parallel windows. *)

val uniform : Prng.t -> bound:float -> t
(** Delay uniform in [\[0, bound\]]. Impure: draws mutate the shared
    [prng] stream in engine event order. *)

val uniform_in : Prng.t -> bound:float -> lo:float -> hi:float -> t
(** Delay uniform in [\[lo, hi\]] with [0 <= lo <= hi <= bound].
    Impure, like {!uniform}. *)

val uniform_keyed : seed:int -> ?lo:float -> bound:float -> unit -> t
(** [uniform_keyed ~seed ~lo ~bound ()] draws a delay uniform in
    [\[lo, bound\]] as a stateless splitmix-style hash of
    [(seed, src, dst, now)] — the same message always gets the same
    delay, with no PRNG stream to advance. Pure with [min_lat = lo]:
    the parallel-window-friendly replacement for {!uniform} (pass
    [lo > 0] to obtain positive lookahead). [lo] defaults to [0.]. *)

val directed :
  ?pure:bool ->
  ?min_lat:float ->
  bound:float ->
  (src:int -> dst:int -> now:float -> float) ->
  t
(** Fully custom policy; used by the lower-bound adversary. Drawn values
    are clamped to [\[0, bound\]] by the engine, which records a
    {!Trace.kind.Delay_clamped} warning for each clamp — an out-of-range
    draw almost always means the policy is broken, and silently narrowing
    it would skew any coverage argument built on top of it.
    [pure]/[min_lat] (defaults [false]/[0.]) are promises about [f] the
    caller takes responsibility for; see the field docs. *)

val per_edge :
  ?min_lat:float -> bound:float -> default:t -> ((int * int) -> float option) -> t
(** [per_edge ~bound ~default f] uses the fixed delay [f (u, v)] on edges
    where it is defined ([(u, v)] normalized with [u < v]) and [default]
    elsewhere. This realizes a delay mask (Definition 4.1). Inherits
    [default]'s purity; [min_lat] defaults to [0.] because the mask's
    minimum is not knowable here — pass it explicitly if a positive
    lookahead is wanted. *)

val describe : t -> string
(** One-line human description of a policy's engine-relevant shape —
    constant value, or purity/lossiness plus bound and minimum latency.
    [gcs_sim sim --window-stats] prints it when explaining why a run did
    or did not take the parallel dispatch path. *)

val lossy : Prng.t -> rate:float -> t -> t
(** [lossy prng ~rate policy] drops each message independently with the
    given probability (in [\[0, 1)]) and otherwise behaves like [policy].
    Deliberately outside the paper's model — see experiment A6. Impure
    (the drop draw advances a shared stream). *)
