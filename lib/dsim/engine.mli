(** Discrete-event simulator for dynamic networks of drifting-clock nodes.

    The engine realizes the model of Section 3.2 of the paper:

    - a node set [0 .. n-1] (growable through {!add_node}), each with a
      hardware clock that is an arbitrary piecewise-linear function
      within the drift bound;
    - an undirected dynamic edge set changed by scheduled add/remove
      events;
    - discovery: endpoints learn of a persistent change [discovery_lag]
      after it happens; changes reversed within the lag are suppressed
      (transient changes "may or may not" be detected);
    - reliable FIFO links: a message sent on a present edge is delivered
      after a policy-chosen delay in [\[0, T\]], unless the edge changes
      while the message is in flight, in which case it is dropped (and the
      removal is discovered within the lag);
    - subjective-time timers: nodes set alarms measured on their own
      hardware clocks; the engine fires them at the exact real time using
      the clock inverse.

    Node algorithms see the network only through {!ctx}: their hardware
    clock, message sends, and timers. Real time is not exposed to node
    code. The engine is generic in the message type ['msg] and the timer
    label type ['timer] (labels are compared with structural equality, so
    use simple variant types). *)

type ('msg, 'timer) t

type ('msg, 'timer) ctx
(** Node-side capability handle. *)

type ('msg, 'timer) handlers = {
  on_init : unit -> unit;
      (** Called once at time 0, before any event is processed. *)
  on_discover_add : int -> unit;
      (** [on_discover_add v]: a [discover(add({u, v}))] event (the peer's
          id is [v]). *)
  on_discover_remove : int -> unit;
  on_receive : int -> 'msg -> unit;
      (** [on_receive src msg]. *)
  on_timer : 'timer -> unit;
}

(** {1 Construction} *)

val create :
  clocks:Hwclock.t array ->
  delay:Delay.t ->
  ?discovery_lag:float ->
  ?initial_edges:(int * int) list ->
  ?trace:Trace.t ->
  ?timer_label:('timer -> int) ->
  ?scheduler:[ `Heap | `Wheel of float ] ->
  ?shards:int ->
  ?partition:[ `Contiguous | `Greedy | `Explicit of int array ] ->
  ?faults:Fault.schedule ->
  ?fault_seed:int ->
  ?corrupt_msg:(src:int -> Prng.t -> 'msg -> 'msg) ->
  unit ->
  ('msg, 'timer) t
(** [create ~clocks ~delay ()] builds an engine over
    [Array.length clocks] nodes. [discovery_lag] (default [0.]) is the
    fixed time between a topology change and its discovery by the
    endpoints; the paper's [D] is an upper bound on it. [initial_edges]
    exist from time 0 and are discovered at time [0.].

    [timer_label] encodes a timer label as a non-negative int; when
    given, [Timer_fire]/[Timer_stale] trace records carry it (otherwise
    they record [-1]). Distinct labels of one node must encode to
    distinct ints.

    [scheduler] picks where armed timers wait (default [`Heap], timers
    share the event heap). [`Wheel granularity] keeps them in a
    hierarchical timer wheel with [granularity]-sized level-0 buckets
    instead: O(1) arm/cancel/re-arm in dense int arrays, and superseded
    entries stop occupying heap slots — the heap then holds only
    deliveries, discoveries and callbacks, so its size no longer grows
    with message rate times the timeout span. Requires [timer_label]
    (raises [Invalid_argument] without it). Both schedulers produce
    identical executions — same dispatch order, same trace — because
    wheel entries draw their tie-break ranks from the queue's sequence
    counter and surface in the same total [(time, seq)] order.

    [shards] (default 1) partitions the node ids into that many groups,
    each owning its own event queue (and, under the wheel scheduler, its
    own timer wheel). [partition] picks the id-to-shard map:
    [`Contiguous] (the default) splits ids into equal ranges, [`Greedy]
    runs the traffic-aware partitioner {!partition} over the initial
    topology, and [`Explicit p] uses [p] verbatim ([p.(id)] is the
    shard; raises [Invalid_argument] on a wrong length or out-of-range
    entry). The partition is a pure performance knob — dispatch order
    and trace are identical under every choice. When the delay policy
    is pure with positive [min_lat], no faults are injected and the
    trace does not stream, the run loop dispatches the shards in
    parallel windows — on one domain by default, or on several via
    {!set_executor}. A window starts [min_lat] wide and, while no
    cross-shard event or control event would fall inside it, keeps
    extending past the current frontier (adaptive lookahead, DESIGN
    §14), so many dispatch rounds can share one merge barrier. Events
    created inside a window carry provisional per-shard rank blocks
    that the barrier rewrites to the exact dense ranks the sequential
    run would have assigned, so the dispatch order and trace are
    byte-identical at every shard count {e and} every domain count,
    including [shards = 1]. Order-sensitive global events (faults,
    callbacks, topology changes spanning two shards) are kept in a
    dedicated control queue and always dispatch sequentially between
    windows; topology events internal to one shard and callbacks
    declared commuting ({!at}) ride the lane queues and may dispatch
    inside windows. Raises [Invalid_argument] when [shards < 1].

    [faults] (default []) is a deterministic fault schedule (validated
    against [n]; raises [Invalid_argument] on a malformed one). Crash and
    restart ops flow through the shared event queue as first-class traced
    events ({!Trace.Fault_crash} / {!Trace.Fault_restart}): a crash
    purges the node's armed timers and FIFO floors, drops everything it
    had in flight, and suppresses every event addressed to it until its
    restart, which invokes the handler registered with {!on_restart} (so
    the algorithm resets — or, under {!Trace.Fault_corrupt}, corrupts —
    its own state) and re-discovers the current neighborhood within the
    lag. Duplication/reordering windows act on the send path, and
    Byzantine windows pass outgoing messages through [corrupt_msg]
    (traced as {!Trace.Fault_byzantine_msg}). All fault-local randomness
    is drawn from a dedicated PRNG seeded by [fault_seed] (default 0) in
    dispatch order, so fault runs stay byte-identical across both
    schedulers. An empty schedule allocates no fault state and adds a
    single tag check to the hot paths. *)

val install : ('msg, 'timer) t -> int -> (('msg, 'timer) ctx -> ('msg, 'timer) handlers) -> unit
(** Install node [i]'s algorithm. Must be called for every node before
    running. The builder receives the node's {!ctx}. After the engine has
    started, only a node without handlers — one that just joined through
    {!add_node} — may be installed; its [on_init] then runs immediately.
    Re-installing a live node raises [Invalid_argument]. *)

val add_node : ('msg, 'timer) t -> clock:Hwclock.t -> int
(** Grow the network by one node and return its id (the previous node
    count). The node starts isolated and without handlers; call {!install}
    to give it an algorithm and {!schedule_edge_add} to connect it. Ids
    are never reused, and every engine structure grows by O(1) amortized —
    joining nodes never re-keys existing state. *)

(** {1 Node-side API (used from handlers)} *)

val node_id : ('msg, 'timer) ctx -> int

val node_count : ('msg, 'timer) ctx -> int

val hardware_clock : ('msg, 'timer) ctx -> float
(** The node's hardware clock value at the current instant. *)

val send : ('msg, 'timer) ctx -> dst:int -> 'msg -> unit
(** Send a message. If the edge to [dst] is currently absent the message
    is dropped and the absence will be (re-)discovered within the lag. *)

val set_timer : ('msg, 'timer) ctx -> after:float -> 'timer -> unit
(** Arm (or re-arm) the timer labelled by the given value to fire after
    [after] subjective time units. A previously pending timer with an
    equal label is superseded. *)

val cancel_timer : ('msg, 'timer) ctx -> 'timer -> unit

val on_restart : ('msg, 'timer) ctx -> (corrupt:Prng.t option -> unit) -> unit
(** Register the node's restart entry point, called when a scheduled
    {!Fault.Restart} op fires. The handler must reinitialize the node's
    algorithm state (the engine has already purged its timers and FIFO
    floors) and re-arm its initial timers. [corrupt] is [Some prng] when
    the op asked for arbitrary-state corruption: the handler should then
    draw a corrupted-but-type-correct state from the PRNG instead of the
    initial one. Without a registered handler a restart only restores
    engine-side liveness. *)

(** {1 Environment control (harness side)} *)

val now : ('msg, 'timer) t -> float

val graph : ('msg, 'timer) t -> Dyngraph.t
(** Live view of the dynamic edge set. Treat as read-only; use the
    scheduling functions to change topology. *)

val clock : ('msg, 'timer) t -> int -> Hwclock.t

val trace : ('msg, 'timer) t -> Trace.t
(** The trace the engine records into — the one passed to {!create}, or
    the private counters-only trace it made otherwise. *)

val schedule_edge_add : ('msg, 'timer) t -> at:float -> int -> int -> unit

val schedule_edge_remove : ('msg, 'timer) t -> at:float -> int -> int -> unit

val at :
  ?commuting:bool -> ('msg, 'timer) t -> time:float -> (unit -> unit) -> unit
(** Run a callback (e.g. a metrics probe) at the given time.

    By default a callback is a control event: under sharding it stops
    any parallel window at its timestamp and runs sequentially, which is
    always safe. Passing [~commuting:true] promises the callback
    {e commutes} with node events — it only reads engine state and/or
    schedules further commuting callbacks, and its observable behavior
    does not depend on whether same-window node events at other shards
    have dispatched yet (sampled values may differ; use it for probes
    whose output is not compared across shard counts, or that read only
    state settled before the window). A commuting callback rides the
    lane queues like a node event and no longer cuts windows short.
    Inside a parallel window it must not call the non-commuting
    scheduling entry points ({!schedule_edge_add}, {!at} without
    [~commuting], ...) — those fail loudly rather than race — and
    {!now} may lag the callback's own timestamp; use the time it was
    scheduled for. *)

val run_until : ('msg, 'timer) t -> float -> unit
(** Process all events with timestamp [<= horizon], then advance the
    current time to [horizon]. May be called repeatedly with increasing
    horizons. *)

val set_executor :
  ('msg, 'timer) t -> ((unit -> unit) array -> unit) option -> unit
(** Install (or clear) the executor that runs a parallel dispatch
    window's per-lane thunks. The engine hands it one thunk per active
    lane and requires every thunk to have completed when the call
    returns — {!Runner.run} on a scoped pool is the intended
    implementation. [None] (the default) runs the thunks in the calling
    domain, in index order. The executor only decides {e where} thunks
    run: window formation, dispatch order and the trace are identical
    with and without one, which is what the parity suite pins. Windows
    only form at all when [shards > 1], the delay policy is pure with
    positive [min_lat], no fault schedule is installed and the trace
    does not stream entries; on every other configuration the engine
    stays on the sequential dispatch path and the executor is never
    called. *)

val set_tie_break : ('msg, 'timer) t -> (int -> int) option -> unit
(** Install (or clear) the adversary tie-break hook used by the bounded
    model explorer. When set, each time the dispatch loop is about to pop
    a queue event it first gathers the whole group of events due at that
    instant and calls the hook with the group size [k]; the hook returns
    the index (in (time, seq) order, i.e. scheduling order) of the event
    to dispatch next. Returning out-of-range raises. The hook is
    consulted before {e every} queue-event dispatch, including groups of
    size 1 (where it must return 0) — this doubles as a clean
    between-events callback for probing, since no handler is mid-flight
    when it runs. Events the chosen handler schedules at the same
    instant join the next group, so an enumerating caller visits every
    permutation of a same-instant group one choice at a time, and a hook
    that always returns 0 reproduces the default (time, seq) order
    exactly. Only supported under the [`Heap] scheduler with a single
    shard; setting it on any other configuration raises
    [Invalid_argument]. *)

val events_processed : ('msg, 'timer) t -> int
(** Events dispatched so far. Stale timer entries (cancelled or
    superseded) are discarded when they surface in the queue and are
    {e not} counted. *)

val pending_events : ('msg, 'timer) t -> int
(** Queued events that will actually dispatch: the heap size (plus the
    wheel size under the [`Wheel] scheduler) minus the stale timer
    entries still awaiting lazy removal. *)

val queue_depth : ('msg, 'timer) t -> int
(** Raw size of the event queues (and pending outbox entries) alone.
    Under the [`Wheel] scheduler this excludes timers entirely, so
    sustained timer re-arm traffic leaves it bounded by the in-flight
    message and discovery count. *)

val shards : ('msg, 'timer) t -> int

val partition :
  ?prev:int array -> ?threshold:float -> shards:int -> Dyngraph.t -> int array
(** Traffic-aware shard partition of a graph's current topology: greedy
    BFS growth from the lowest unassigned id, each shard capped at
    ⌈n/shards⌉ nodes, neighbors visited in increasing order.
    Deterministic and O(n + edges). On a path topology it reproduces the
    contiguous split exactly (each sweep claims the next segment of the
    line); on clustered or shuffled id spaces it cuts far fewer edges
    than a contiguous split, which means fewer cross-shard events and
    longer adaptive windows. [prev] adds stability under churn: the
    fresh partition only replaces [prev] when its edge cut is more than
    [threshold] (default [0.1], relative) better — otherwise a copy of
    [prev] is returned. Feed the result to {!create}'s
    [`Explicit]. Raises [Invalid_argument] when [shards < 1] or
    [threshold < 0]. *)

val par_blocker : ('msg, 'timer) t -> string option
(** [None] when this engine can form parallel dispatch windows; otherwise
    a one-line reason for the sequential fallback (single shard, impure
    or zero-lookahead delay policy, fault injection, streaming trace) —
    surfaced by [gcs_sim sim --window-stats]. *)

val footprint_words : ('msg, 'timer) t -> int
(** Words currently allocated by engine-owned storage: event queues,
    outboxes, timer wheels, per-node FIFO/absence/armed tables and the
    dynamic graph. Grows as O(n + edges ever present), never O(n²) —
    pinned by the scaling tests. *)

val live_timers : ('msg, 'timer) t -> int
(** Currently armed timer labels across all nodes (each cancel or re-arm
    retires the previous entry). *)

val alive : ('msg, 'timer) t -> int -> bool
(** Is the node currently up? Always [true] without a fault schedule. *)
