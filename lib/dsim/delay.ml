type t = {
  bound : float;
  draw : src:int -> dst:int -> now:float -> float;
  drop : src:int -> dst:int -> now:float -> bool;
  const : float;
  may_drop : bool;
  pure : bool;
  min_lat : float;
}

let never_drop ~src:_ ~dst:_ ~now:_ = false

let check_bound bound =
  if bound < 0. || not (Float.is_finite bound) then
    invalid_arg "Delay: bound must be finite and non-negative"

let constant ~bound d =
  check_bound bound;
  if d < 0. || d > bound then invalid_arg "Delay.constant: delay out of range";
  {
    bound;
    draw = (fun ~src:_ ~dst:_ ~now:_ -> d);
    drop = never_drop;
    const = d;
    may_drop = false;
    pure = true;
    min_lat = d;
  }

let zero ~bound = constant ~bound 0.

let maximal ~bound = constant ~bound bound

let uniform prng ~bound =
  check_bound bound;
  {
    bound;
    draw = (fun ~src:_ ~dst:_ ~now:_ -> Prng.float prng bound);
    drop = never_drop;
    const = -1.;
    may_drop = false;
    pure = false;
    min_lat = 0.;
  }

let uniform_in prng ~bound ~lo ~hi =
  check_bound bound;
  if lo < 0. || hi > bound || lo > hi then
    invalid_arg "Delay.uniform_in: range out of bounds";
  {
    bound;
    draw = (fun ~src:_ ~dst:_ ~now:_ -> Prng.float_in prng lo hi);
    drop = never_drop;
    const = (if lo = hi then lo else -1.);
    may_drop = false;
    pure = false;
    min_lat = lo;
  }

(* splitmix64 finalizer: statistically strong enough for jitter, and a pure
   function of its input — no shared stream state to race on. *)
let mix64 (z : int64) =
  let open Int64 in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let uniform_keyed ~seed ?(lo = 0.) ~bound () =
  check_bound bound;
  if lo < 0. || lo > bound then
    invalid_arg "Delay.uniform_keyed: lo out of [0, bound]";
  let draw ~src ~dst ~now =
    let open Int64 in
    let h = mix64 (add (of_int seed) 0x9E3779B97F4A7C15L) in
    let h = mix64 (logxor h (of_int src)) in
    let h = mix64 (logxor h (of_int dst)) in
    let h = mix64 (logxor h (bits_of_float now)) in
    (* 53 uniform bits -> [0, 1) *)
    let u = Int64.to_float (shift_right_logical h 11) *. 0x1p-53 in
    lo +. (u *. (bound -. lo))
  in
  {
    bound;
    draw;
    drop = never_drop;
    const = (if lo = bound then lo else -1.);
    may_drop = false;
    pure = true;
    min_lat = lo;
  }

let directed ?(pure = false) ?(min_lat = 0.) ~bound f =
  check_bound bound;
  if min_lat < 0. || min_lat > bound then
    invalid_arg "Delay.directed: min_lat out of [0, bound]";
  { bound; draw = f; drop = never_drop; const = -1.; may_drop = false; pure; min_lat }

let per_edge ?min_lat ~bound ~default f =
  check_bound bound;
  let draw ~src ~dst ~now =
    let key = if src < dst then (src, dst) else (dst, src) in
    match f key with
    | Some d -> d
    | None -> default.draw ~src ~dst ~now
  in
  let min_lat = match min_lat with Some m -> m | None -> 0. in
  if min_lat < 0. || min_lat > bound then
    invalid_arg "Delay.per_edge: min_lat out of [0, bound]";
  {
    bound;
    draw;
    drop = default.drop;
    const = -1.;
    may_drop = default.may_drop;
    pure = default.pure;
    min_lat;
  }

let describe d =
  if d.const >= 0. then Printf.sprintf "constant %g" d.const
  else
    Printf.sprintf "%s%s, bound %g, min latency %g"
      (if d.pure then "pure" else "impure")
      (if d.may_drop then " lossy" else "")
      d.bound d.min_lat

let lossy prng ~rate inner =
  if rate < 0. || rate >= 1. then invalid_arg "Delay.lossy: rate must be in [0, 1)";
  {
    inner with
    drop =
      (fun ~src ~dst ~now ->
        inner.drop ~src ~dst ~now || Prng.float prng 1. < rate);
    may_drop = true;
    pure = false;
  }
