type t = {
  bound : float;
  draw : src:int -> dst:int -> now:float -> float;
  drop : src:int -> dst:int -> now:float -> bool;
  const : float;
  may_drop : bool;
}

let never_drop ~src:_ ~dst:_ ~now:_ = false

let check_bound bound =
  if bound < 0. || not (Float.is_finite bound) then
    invalid_arg "Delay: bound must be finite and non-negative"

let constant ~bound d =
  check_bound bound;
  if d < 0. || d > bound then invalid_arg "Delay.constant: delay out of range";
  {
    bound;
    draw = (fun ~src:_ ~dst:_ ~now:_ -> d);
    drop = never_drop;
    const = d;
    may_drop = false;
  }

let zero ~bound = constant ~bound 0.

let maximal ~bound = constant ~bound bound

let uniform prng ~bound =
  check_bound bound;
  {
    bound;
    draw = (fun ~src:_ ~dst:_ ~now:_ -> Prng.float prng bound);
    drop = never_drop;
    const = -1.;
    may_drop = false;
  }

let uniform_in prng ~bound ~lo ~hi =
  check_bound bound;
  if lo < 0. || hi > bound || lo > hi then
    invalid_arg "Delay.uniform_in: range out of bounds";
  {
    bound;
    draw = (fun ~src:_ ~dst:_ ~now:_ -> Prng.float_in prng lo hi);
    drop = never_drop;
    const = (if lo = hi then lo else -1.);
    may_drop = false;
  }

let directed ~bound f =
  check_bound bound;
  { bound; draw = f; drop = never_drop; const = -1.; may_drop = false }

let per_edge ~bound ~default f =
  check_bound bound;
  let draw ~src ~dst ~now =
    let key = if src < dst then (src, dst) else (dst, src) in
    match f key with
    | Some d -> d
    | None -> default.draw ~src ~dst ~now
  in
  { bound; draw; drop = default.drop; const = -1.; may_drop = default.may_drop }

let lossy prng ~rate inner =
  if rate < 0. || rate >= 1. then invalid_arg "Delay.lossy: rate must be in [0, 1)";
  {
    inner with
    drop =
      (fun ~src ~dst ~now ->
        inner.drop ~src ~dst ~now || Prng.float prng 1. < rate);
    may_drop = true;
  }
