(** Hierarchical timer wheel for the engine's periodic timer traffic.

    The wheel holds integer-identified timer entries — [(node, label, gen,
    seq)] plus a float deadline — in dense per-bucket arrays. Arming is
    O(1): the entry is appended to the bucket covering its deadline's
    granule at the right level. The engine's run loop resolves entries
    lazily: {!peek} advances an internal cursor granule by granule,
    cascading coarser levels down as their boundaries are crossed, and
    moves the current granule's entries into a small binary heap ordered
    by [(deadline, seq)].

    The wheel never decides whether an entry is live: cancellation and
    re-arm are generation-counter checks performed by the engine when an
    entry surfaces (exactly like the heap scheduler's lazy stale-slot
    discard), so superseded entries stay in their bucket as flat integers
    until their deadline passes.

    Determinism: entries surface in strictly increasing [(deadline, seq)]
    order, the same total order a single binary heap over all events
    produces, which is what lets the engine interleave wheel timers with
    its event queue byte-identically to the heap-only scheduler. *)

type t

val create : granularity:float -> ?slots:int -> ?levels:int -> unit -> t
(** [create ~granularity ()] builds an empty wheel whose level-0 buckets
    each span [granularity] time units; level [l] buckets span
    [granularity * slots^l]. Defaults: [slots = 64], [levels = 4] (spans
    ~16.7M granules before far-future entries are parked in the top level
    and re-cascaded). Raises [Invalid_argument] unless
    [granularity > 0], [slots >= 2] and [levels >= 1]. *)

val arm : t -> node:int -> label:int -> gen:int -> seq:int -> deadline:float -> unit
(** Add an entry. [deadline] must be finite and non-negative; [seq] must
    exceed every previously armed seq (the engine's shared tie-break
    counter guarantees this). Entries whose granule has already been
    resolved go straight into the due heap. *)

val size : t -> int
(** Entries currently held, including superseded ones that have not yet
    surfaced. *)

val footprint_words : t -> int
(** Words currently allocated across bucket, due-heap and scratch
    arrays — read by the engine's memory-growth checks. *)

val peek : t -> upto:float -> bool
(** [peek w ~upto] is [true] iff the earliest entry's deadline is
    [<= upto], resolving granules no further than [upto]. When it returns
    [true], {!top_time}, {!top_seq}, {!top_node}, {!top_label} and
    {!top_gen} read that entry; they are meaningless otherwise. *)

val top_time : t -> float

val top_seq : t -> int

val top_node : t -> int

val top_label : t -> int

val top_gen : t -> int

val pop : t -> unit
(** Drop the entry exposed by the last successful {!peek}. Raises
    [Invalid_argument] if no resolved entry is pending. *)

val remap_batch : t -> finals:int array -> unit
(** [remap_batch w ~finals] replaces every held provisional seq [s] —
    bucket entries and resolved due entries alike — with
    [finals.(s land Equeue.cre_mask)] in place, stopping as soon as the
    wheel's provisional count (maintained by {!arm}/{!pop}) is
    exhausted; a wheel holding none pays one load. The rewrite must
    preserve the pairwise order of the live seqs, which the engine's
    barrier re-ranking guarantees (see {!Equeue.remap_batch}); the due
    heap's shape is untouched, which is valid exactly under that
    condition (DESIGN §14). *)
