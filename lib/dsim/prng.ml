type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = seed }

let of_int seed = create (Int64.of_int seed)

let copy g = { state = g.state }

(* splitmix64 finalizer (Steele, Lea, Flood 2014). *)
let mix z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let next_int64 g =
  g.state <- Int64.add g.state golden_gamma;
  mix g.state

let split g =
  let seed = next_int64 g in
  (* A distinct finalization of the drawn seed keeps the child stream away
     from the parent's trajectory. *)
  create (mix (Int64.logxor seed 0xD1B54A32D192ED03L))

let bits30 g = Int64.to_int (Int64.shift_right_logical (next_int64 g) 34)

let int g bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  if bound <= 1 lsl 30 then begin
    (* Rejection sampling for exact uniformity on small bounds. The
       acceptance limit must derive from the number of distinct 30-bit
       draws (2^30), not the largest draw (2^30 - 1): dividing the latter
       yields limit = 0 when bound = 2^30 (every draw rejected — an
       infinite loop) and needlessly rejects the top values whenever
       bound divides 2^30. *)
    let range = 1 lsl 30 in
    let limit = range / bound * bound in
    let rec draw () =
      let v = bits30 g in
      if v < limit then v mod bound else draw ()
    in
    draw ()
  end
  else
    (* Large bounds: 62 random bits, modulo bias is negligible. *)
    let v = Int64.to_int (Int64.shift_right_logical (next_int64 g) 2) in
    v mod bound

let int_in g lo hi =
  if hi < lo then invalid_arg "Prng.int_in: hi < lo";
  lo + int g (hi - lo + 1)

let unit_float g =
  (* 53 uniform bits in [0, 1). *)
  let bits = Int64.to_int (Int64.shift_right_logical (next_int64 g) 11) in
  float_of_int bits *. 0x1p-53

let float g bound =
  if not (bound >= 0.) then invalid_arg "Prng.float: bound must be >= 0";
  unit_float g *. bound

let float_in g lo hi =
  if hi < lo then invalid_arg "Prng.float_in: hi < lo";
  lo +. (unit_float g *. (hi -. lo))

let bool g = Int64.compare (next_int64 g) 0L < 0

let shuffle g a =
  for i = Array.length a - 1 downto 1 do
    let j = int g (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let pick g a =
  if Array.length a = 0 then invalid_arg "Prng.pick: empty array";
  a.(int g (Array.length a))
