(** Priority queue of timestamped events.

    A binary heap ordered by [(time, sequence)]: events at equal times pop
    in insertion order, which gives the simulator a deterministic total
    order and preserves FIFO delivery for zero-delay messages.

    The implementation stores times in an unboxed float array and keeps no
    reference to popped payloads, so the engine's push/pop cycle allocates
    nothing beyond the payloads themselves. *)

type 'a t

val create : ?capacity:int -> unit -> 'a t
(** [create ?capacity ()] pre-allocates room for [capacity] events
    (default 64); the heap still grows on demand past it. Raises
    [Invalid_argument] on a negative capacity. *)

val push : 'a t -> time:float -> 'a -> unit
(** Insert an event at [time]. [time] must be finite. *)

val alloc_seq : 'a t -> int
(** Reserve and return the next tie-break sequence number without
    inserting an event. Lets an external structure (e.g. a timer wheel)
    hold events whose ranks interleave with this queue's under one total
    [(time, seq)] order. *)

val top_seq : 'a t -> int
(** Sequence number of the earliest event, or [max_int] when empty — so
    an equal-time comparison against an external source's rank always
    prefers the non-empty side. *)

val pop : 'a t -> (float * 'a) option
(** Remove and return the earliest event, if any. *)

val pop_exn : 'a t -> 'a
(** Remove and return the earliest event's payload. Raises
    [Invalid_argument] on an empty queue. Combined with {!next_time} this
    is the allocation-free variant of {!pop}. *)

val peek_time : 'a t -> float option
(** Time of the earliest event without removing it. *)

val next_time : 'a t -> float
(** Time of the earliest event, or [infinity] when the queue is empty.
    Unlike {!peek_time} this allocates nothing. *)

val drain : 'a t -> (time:float -> 'a -> unit) -> unit
(** [drain q f] pops every event in order, calling [f ~time payload] on
    each. The queue is empty afterwards (the tie-break sequence keeps
    counting). *)

val size : 'a t -> int

val capacity : 'a t -> int
(** Current allocated room (≥ {!size}). *)

val is_empty : 'a t -> bool

val clear : 'a t -> unit
(** Drop all pending events and release their payloads to the GC. The
    tie-break sequence is {e not} reset: ranks already handed out via
    {!alloc_seq} may still be live in an external scheduler, and new
    pushes must keep ranking after them. *)
