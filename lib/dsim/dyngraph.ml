(* Edge-sparse dynamic graph. Storage is O(n + edges-ever-touched), not
   O(n^2): each node keeps a sorted array of the peers it has ever shared
   an edge with, parallel to a slot index into a struct-of-arrays edge
   pool holding present/epoch/since. Entries persist across removes so an
   edge's epoch counter survives re-adds (Section 3.2's transient-change
   semantics). The old representation packed pairs as [u * n + v] into a
   Hashtbl — that key collides once node ids reach or exceed the n the
   graph was built with (e.g. n=4: {1,7} and {2,3} both pack to 11), and
   it caps the id space at construction time. Sorted-array lookups are
   collision-free for any id, allocation-free, and [add_node] grows the
   graph in place for populations that join mid-run. *)

type t = {
  mutable node_count : int;
  (* Per-node adjacency: [adj_peer.(u)] holds the sorted peer ids of every
     edge {u, peer} ever touched (present or not); [adj_slot.(u)] is the
     parallel edge-pool slot. [adj_len.(u)] entries are live; the rest is
     capacity. [deg.(u)] counts currently-present neighbors. *)
  mutable adj_peer : int array array;
  mutable adj_slot : int array array;
  mutable adj_len : int array;
  mutable deg : int array;
  (* Edge pool, one slot per edge ever touched, normalized u < v. *)
  mutable eu : int array;
  mutable ev : int array;
  mutable epresent : Bytes.t;
  mutable eepoch : int array;
  mutable esince : float array;
  mutable pool_len : int;
  mutable live : int;
}

let empty_ints : int array = [||]

let create ~n =
  if n <= 0 then invalid_arg "Dyngraph.create: n must be positive";
  {
    node_count = n;
    adj_peer = Array.make n empty_ints;
    adj_slot = Array.make n empty_ints;
    adj_len = Array.make n 0;
    deg = Array.make n 0;
    eu = empty_ints;
    ev = empty_ints;
    epresent = Bytes.empty;
    eepoch = empty_ints;
    esince = [||];
    pool_len = 0;
    live = 0;
  }

let n g = g.node_count

let add_node g =
  let id = g.node_count in
  let cap = Array.length g.adj_len in
  if id >= cap then begin
    let cap' = max 8 (2 * cap) in
    let grow_arr a = Array.init cap' (fun i -> if i < cap then a.(i) else empty_ints) in
    g.adj_peer <- grow_arr g.adj_peer;
    g.adj_slot <- grow_arr g.adj_slot;
    let grow_int a =
      let a' = Array.make cap' 0 in
      Array.blit a 0 a' 0 cap;
      a'
    in
    g.adj_len <- grow_int g.adj_len;
    g.deg <- grow_int g.deg
  end;
  g.adj_peer.(id) <- empty_ints;
  g.adj_slot.(id) <- empty_ints;
  g.adj_len.(id) <- 0;
  g.deg.(id) <- 0;
  g.node_count <- id + 1;
  id

let normalize u v = if u <= v then (u, v) else (v, u)

(* Lexicographic on the int endpoints: what polymorphic [compare] would
   compute, minus the generic-comparison dispatch per element. *)
let compare_edge (u1, v1) (u2, v2) =
  let c = Int.compare u1 u2 in
  if c <> 0 then c else Int.compare v1 v2

let check_nodes g u v =
  if u < 0 || v < 0 || u >= g.node_count || v >= g.node_count then
    invalid_arg "Dyngraph: node out of range";
  if u = v then invalid_arg "Dyngraph: self-loop"

(* Binary search for [v] in u's adjacency. Returns the pool slot, or
   [(-1 - insertion_point)] when absent — allocation-free either way. *)
let find_slot g u v =
  let peers = g.adj_peer.(u) in
  let lo = ref 0 and hi = ref (g.adj_len.(u) - 1) in
  let found = ref min_int in
  while !found = min_int && !lo <= !hi do
    let mid = (!lo + !hi) lsr 1 in
    let p = Array.unsafe_get peers mid in
    if p = v then found := Array.unsafe_get g.adj_slot.(u) mid
    else if p < v then lo := mid + 1
    else hi := mid - 1
  done;
  if !found = min_int then -1 - !lo else !found

(* Insert (peer, slot) into u's adjacency at the sorted position. *)
let adj_insert g u ~at ~peer ~slot =
  let len = g.adj_len.(u) in
  let peers = g.adj_peer.(u) in
  let cap = Array.length peers in
  if len = cap then begin
    let cap' = max 4 (2 * cap) in
    let peers' = Array.make cap' 0 and slots' = Array.make cap' 0 in
    Array.blit peers 0 peers' 0 len;
    Array.blit g.adj_slot.(u) 0 slots' 0 len;
    g.adj_peer.(u) <- peers';
    g.adj_slot.(u) <- slots'
  end;
  let peers = g.adj_peer.(u) and slots = g.adj_slot.(u) in
  Array.blit peers at peers (at + 1) (len - at);
  Array.blit slots at slots (at + 1) (len - at);
  peers.(at) <- peer;
  slots.(at) <- slot;
  g.adj_len.(u) <- len + 1

let pool_grow g =
  let cap = Array.length g.eu in
  let cap' = max 16 (2 * cap) in
  let grow_int a =
    let a' = Array.make cap' 0 in
    Array.blit a 0 a' 0 cap;
    a'
  in
  g.eu <- grow_int g.eu;
  g.ev <- grow_int g.ev;
  g.eepoch <- grow_int g.eepoch;
  let f' = Array.make cap' 0. in
  Array.blit g.esince 0 f' 0 cap;
  g.esince <- f';
  let b' = Bytes.make cap' '\000' in
  Bytes.blit g.epresent 0 b' 0 cap;
  g.epresent <- b'

let alloc_slot g u v =
  if g.pool_len = Array.length g.eu then pool_grow g;
  let s = g.pool_len in
  g.pool_len <- s + 1;
  let lo, hi = normalize u v in
  g.eu.(s) <- lo;
  g.ev.(s) <- hi;
  Bytes.set g.epresent s '\000';
  g.eepoch.(s) <- 0;
  g.esince.(s) <- 0.;
  s

let present g s = Bytes.unsafe_get g.epresent s <> '\000'

let has_edge g u v =
  let s = find_slot g u v in
  s >= 0 && present g s

let add_edge g ~now u v =
  check_nodes g u v;
  let s =
    let s = find_slot g u v in
    if s >= 0 then s
    else begin
      let s = alloc_slot g u v in
      (* find_slot returned -1 - insertion_point for u; recompute v's. *)
      adj_insert g u ~at:(-1 - find_slot g u v) ~peer:v ~slot:s;
      adj_insert g v ~at:(-1 - find_slot g v u) ~peer:u ~slot:s;
      s
    end
  in
  if present g s then false
  else begin
    Bytes.set g.epresent s '\001';
    g.eepoch.(s) <- g.eepoch.(s) + 1;
    g.esince.(s) <- now;
    g.deg.(u) <- g.deg.(u) + 1;
    g.deg.(v) <- g.deg.(v) + 1;
    g.live <- g.live + 1;
    true
  end

(* Parallel-window seam (DESIGN §14). A topology event whose endpoints
   share a shard can dispatch inside that shard's window — but only if
   every allocation the dispatch might need happened up front: growing
   the pool or an adjacency array from a lane domain would race with the
   read-only neighbor scans other lanes run concurrently. [reserve] is
   called at schedule time (always sequential) and pre-allocates the
   slot and both adjacency entries without changing edge presence;
   [flip_add]/[flip_remove] then only write lane-owned cells — the
   slot's presence/epoch/since bytes and the two endpoints' degrees —
   plus nothing shared except [live], which they skip entirely: the
   lane accumulates a delta the barrier folds back via [adjust_live]. *)
let reserve g u v =
  if u < 0 || v < 0 || u >= g.node_count || v >= g.node_count || u = v then
    false
  else begin
    (let s = find_slot g u v in
     if s < 0 then begin
       let s = alloc_slot g u v in
       adj_insert g u ~at:(-1 - find_slot g u v) ~peer:v ~slot:s;
       adj_insert g v ~at:(-1 - find_slot g v u) ~peer:u ~slot:s
     end);
    true
  end

let flip_add g ~now u v =
  let s = find_slot g u v in
  if s < 0 || present g s then false
  else begin
    Bytes.set g.epresent s '\001';
    g.eepoch.(s) <- g.eepoch.(s) + 1;
    g.esince.(s) <- now;
    g.deg.(u) <- g.deg.(u) + 1;
    g.deg.(v) <- g.deg.(v) + 1;
    true
  end

let flip_remove g u v =
  let s = find_slot g u v in
  if s >= 0 && present g s then begin
    Bytes.set g.epresent s '\000';
    g.eepoch.(s) <- g.eepoch.(s) + 1;
    g.deg.(u) <- g.deg.(u) - 1;
    g.deg.(v) <- g.deg.(v) - 1;
    true
  end
  else false

let adjust_live g delta = g.live <- g.live + delta

let remove_edge g ~now u v =
  check_nodes g u v;
  ignore now;
  let s = find_slot g u v in
  if s >= 0 && present g s then begin
    Bytes.set g.epresent s '\000';
    g.eepoch.(s) <- g.eepoch.(s) + 1;
    g.deg.(u) <- g.deg.(u) - 1;
    g.deg.(v) <- g.deg.(v) - 1;
    g.live <- g.live - 1;
    true
  end
  else false

let epoch g u v =
  let s = find_slot g u v in
  if s >= 0 then Array.unsafe_get g.eepoch s else 0

let since g u v =
  let s = find_slot g u v in
  if s >= 0 && present g s then Some g.esince.(s) else None

let neighbors g u =
  let peers = g.adj_peer.(u) and slots = g.adj_slot.(u) in
  let acc = ref [] in
  for i = g.adj_len.(u) - 1 downto 0 do
    if present g slots.(i) then acc := peers.(i) :: !acc
  done;
  !acc

let edges g =
  let acc = ref [] in
  for s = 0 to g.pool_len - 1 do
    if present g s then acc := (g.eu.(s), g.ev.(s)) :: !acc
  done;
  List.sort compare_edge !acc

(* Allocation-free traversals for periodic samplers: no list is built, so
   a probe that runs every few time units costs nothing beyond the visit
   itself. Order is unspecified (pool order), unlike [edges]. *)
let iter_edges g f =
  for s = 0 to g.pool_len - 1 do
    if present g s then f (Array.unsafe_get g.eu s) (Array.unsafe_get g.ev s)
  done

let fold_edges g f init =
  let acc = ref init in
  for s = 0 to g.pool_len - 1 do
    if present g s then
      acc := f !acc (Array.unsafe_get g.eu s) (Array.unsafe_get g.ev s)
  done;
  !acc

let edge_count g = g.live

let footprint_words g =
  let acc = ref (4 * Array.length g.adj_len) in
  for u = 0 to g.node_count - 1 do
    acc := !acc + Array.length g.adj_peer.(u) + Array.length g.adj_slot.(u)
  done;
  (* epresent is a byte per slot; count it as words rounded up. *)
  !acc + (4 * Array.length g.eu) + ((Bytes.length g.epresent + 7) / 8)

let degree g u = g.deg.(u)

let is_connected g =
  let n = g.node_count in
  if n <= 1 then true
  else begin
    let seen = Bytes.make n '\000' in
    let stack = Array.make n 0 in
    let sp = ref 0 in
    let push u =
      if Bytes.get seen u = '\000' then begin
        Bytes.set seen u '\001';
        stack.(!sp) <- u;
        incr sp
      end
    in
    push 0;
    let visited = ref 0 in
    while !sp > 0 do
      decr sp;
      let u = stack.(!sp) in
      incr visited;
      let peers = g.adj_peer.(u) and slots = g.adj_slot.(u) in
      for i = 0 to g.adj_len.(u) - 1 do
        if present g slots.(i) then push peers.(i)
      done
    done;
    !visited = n
  end
