module Int_set = Set.Make (Int)

(* Edge records are keyed by the packed int [u * n + v] with [u <= v], so
   the engine's per-send lookups ([has_edge], [epoch]) hash an immediate
   int instead of building an [(int * int)] tuple. The endpoints are kept
   in the record for [edges]. Lookups go through [Hashtbl.find] with a
   [Not_found] handler rather than [find_opt] to avoid the [Some]
   allocation on the event hot path. *)
type record = {
  ru : int;
  rv : int;
  mutable present : bool;
  mutable epoch : int;
  mutable since : float;
}

type t = {
  node_count : int;
  table : (int, record) Hashtbl.t;
  adjacency : Int_set.t array;
}

let create ~n =
  if n <= 0 then invalid_arg "Dyngraph.create: n must be positive";
  { node_count = n; table = Hashtbl.create 64; adjacency = Array.make n Int_set.empty }

let n g = g.node_count

let normalize u v = if u <= v then (u, v) else (v, u)

(* Lexicographic on the int endpoints: what polymorphic [compare] would
   compute, minus the generic-comparison dispatch per element. *)
let compare_edge (u1, v1) (u2, v2) =
  let c = Int.compare u1 u2 in
  if c <> 0 then c else Int.compare v1 v2

let key g u v = if u <= v then (u * g.node_count) + v else (v * g.node_count) + u

let check_nodes g u v =
  if u < 0 || v < 0 || u >= g.node_count || v >= g.node_count then
    invalid_arg "Dyngraph: node out of range";
  if u = v then invalid_arg "Dyngraph: self-loop"

let has_edge g u v =
  match Hashtbl.find g.table (key g u v) with
  | r -> r.present
  | exception Not_found -> false

let add_edge g ~now u v =
  check_nodes g u v;
  let k = key g u v in
  let r =
    match Hashtbl.find g.table k with
    | r -> r
    | exception Not_found ->
      let lo, hi = normalize u v in
      let r = { ru = lo; rv = hi; present = false; epoch = 0; since = 0. } in
      Hashtbl.add g.table k r;
      r
  in
  if r.present then false
  else begin
    r.present <- true;
    r.epoch <- r.epoch + 1;
    r.since <- now;
    g.adjacency.(u) <- Int_set.add v g.adjacency.(u);
    g.adjacency.(v) <- Int_set.add u g.adjacency.(v);
    true
  end

let remove_edge g ~now u v =
  check_nodes g u v;
  ignore now;
  match Hashtbl.find g.table (key g u v) with
  | r when r.present ->
    r.present <- false;
    r.epoch <- r.epoch + 1;
    g.adjacency.(u) <- Int_set.remove v g.adjacency.(u);
    g.adjacency.(v) <- Int_set.remove u g.adjacency.(v);
    true
  | _ -> false
  | exception Not_found -> false

let epoch g u v =
  match Hashtbl.find g.table (key g u v) with
  | r -> r.epoch
  | exception Not_found -> 0

let since g u v =
  match Hashtbl.find g.table (key g u v) with
  | r when r.present -> Some r.since
  | _ -> None
  | exception Not_found -> None

let neighbors g u = Int_set.elements g.adjacency.(u)

let edges g =
  Hashtbl.fold (fun _ r acc -> if r.present then (r.ru, r.rv) :: acc else acc) g.table []
  |> List.sort compare_edge

(* Allocation-free traversals for periodic samplers: no list is built, so
   a probe that runs every few time units costs nothing beyond the visit
   itself. Order is unspecified (hash order), unlike [edges]. *)
let iter_edges g f =
  Hashtbl.iter (fun _ r -> if r.present then f r.ru r.rv) g.table

let fold_edges g f init =
  Hashtbl.fold (fun _ r acc -> if r.present then f acc r.ru r.rv else acc) g.table init

let edge_count g =
  Hashtbl.fold (fun _ r acc -> if r.present then acc + 1 else acc) g.table 0

let degree g u = Int_set.cardinal g.adjacency.(u)

let is_connected g =
  let n = g.node_count in
  if n <= 1 then true
  else begin
    let seen = Array.make n false in
    let rec dfs u =
      seen.(u) <- true;
      Int_set.iter (fun v -> if not seen.(v) then dfs v) g.adjacency.(u)
    in
    dfs 0;
    Array.for_all Fun.id seen
  end
