type kind =
  | Send
  | Deliver
  | Drop_no_edge
  | Drop_in_flight
  | Drop_lossy
  | Edge_add
  | Edge_remove
  | Discover_add
  | Discover_remove
  | Discover_stale
  | Timer_fire
  | Timer_stale
  | Fault_crash
  | Fault_restart
  | Fault_corrupt
  | Fault_byzantine_msg
  | Fault_duplicate
  | Delay_clamped

let kind_index = function
  | Send -> 0
  | Deliver -> 1
  | Drop_no_edge -> 2
  | Drop_in_flight -> 3
  | Drop_lossy -> 4
  | Edge_add -> 5
  | Edge_remove -> 6
  | Discover_add -> 7
  | Discover_remove -> 8
  | Discover_stale -> 9
  | Timer_fire -> 10
  | Timer_stale -> 11
  | Fault_crash -> 12
  | Fault_restart -> 13
  | Fault_corrupt -> 14
  | Fault_byzantine_msg -> 15
  | Fault_duplicate -> 16
  | Delay_clamped -> 17

let kind_count = 18

let kind_to_string = function
  | Send -> "send"
  | Deliver -> "deliver"
  | Drop_no_edge -> "drop-no-edge"
  | Drop_in_flight -> "drop-in-flight"
  | Drop_lossy -> "drop-lossy"
  | Edge_add -> "edge-add"
  | Edge_remove -> "edge-remove"
  | Discover_add -> "discover-add"
  | Discover_remove -> "discover-remove"
  | Discover_stale -> "discover-stale"
  | Timer_fire -> "timer-fire"
  | Timer_stale -> "timer-stale"
  | Fault_crash -> "fault-crash"
  | Fault_restart -> "fault-restart"
  | Fault_corrupt -> "fault-corrupt"
  | Fault_byzantine_msg -> "fault-byz-msg"
  | Fault_duplicate -> "fault-duplicate"
  | Delay_clamped -> "delay-clamped"

let all_kinds =
  [ Send; Deliver; Drop_no_edge; Drop_in_flight; Drop_lossy; Edge_add; Edge_remove;
    Discover_add; Discover_remove; Discover_stale; Timer_fire; Timer_stale;
    Fault_crash; Fault_restart; Fault_corrupt; Fault_byzantine_msg;
    Fault_duplicate; Delay_clamped ]

let kinds_by_index = Array.of_list all_kinds

let kind_of_index i = kinds_by_index.(i)

type entry = { time : float; kind : kind; a : int; b : int; c : int }

type t = {
  counters : int array;
  log_limit : int;
  verbosity : int;
  sink : Format.formatter;
  mutable log : entry list; (* newest first *)
  mutable log_size : int;
  (* Parallel-dispatch shape counters, bumped by the engine's (single)
     coordinating domain only — windows formed, merge barriers paid,
     events dispatched inside windows, total simulated span the windows
     covered, and events that crossed a shard boundary in flight. They
     describe scheduling structure, not the execution, so they are kept
     out of the per-kind counters and the CSV. *)
  mutable windows : int;
  mutable barriers : int;
  mutable window_events : int;
  mutable window_span : float;
  mutable cross_shard : int;
}

let create ?(log_limit = 0) ?(verbosity = 0) ?(sink = Format.err_formatter) () =
  {
    counters = Array.make kind_count 0;
    log_limit;
    verbosity;
    sink;
    log = [];
    log_size = 0;
    windows = 0;
    barriers = 0;
    window_events = 0;
    window_span = 0.;
    cross_shard = 0;
  }

(* Entry fields are formatted to match the free-form detail strings the
   engine used to build eagerly: endpoints for message events, the edge
   for topology events, the observing node for discovery and timers. *)
let pp_detail fmt e =
  match e.kind with
  | Send | Deliver | Drop_no_edge | Drop_in_flight | Drop_lossy ->
    Format.fprintf fmt "%d->%d" e.a e.b
  | Edge_add | Edge_remove -> Format.fprintf fmt "{%d,%d}" e.a e.b
  | Discover_add | Discover_remove | Discover_stale ->
    Format.fprintf fmt "%d:{%d,%d}" e.a e.a e.b
  | Timer_fire | Timer_stale -> Format.fprintf fmt "%d" e.a
  | Fault_crash | Fault_restart | Fault_corrupt -> Format.fprintf fmt "%d" e.a
  | Fault_byzantine_msg | Fault_duplicate | Delay_clamped ->
    Format.fprintf fmt "%d->%d" e.a e.b

let detail e = Format.asprintf "%a" pp_detail e

let pp_entry fmt e =
  Format.fprintf fmt "@[<h>%12.6f  %-16s %a@]" e.time (kind_to_string e.kind)
    pp_detail e

let record_slow t ~time kind a b c =
  if t.log_limit > 0 && t.log_size < t.log_limit then begin
    t.log <- { time; kind; a; b; c } :: t.log;
    t.log_size <- t.log_size + 1
  end;
  if t.verbosity > 0 then
    Format.fprintf t.sink "%a@." pp_entry { time; kind; a; b; c }

(* Inlined so the counters-only configuration — every experiment's hot
   path — compiles to an in-caller counter bump: crossing a function
   boundary here would box [time] on every traced event. *)
let[@inline] record t ~time kind a b c =
  let i = kind_index kind in
  Array.unsafe_set t.counters i (Array.unsafe_get t.counters i + 1);
  if t.log_limit > 0 || t.verbosity > 0 then record_slow t ~time kind a b c

let note_window t ~span =
  t.windows <- t.windows + 1;
  t.window_span <- t.window_span +. span

let note_barrier t ~events =
  t.barriers <- t.barriers + 1;
  t.window_events <- t.window_events + events

let note_cross t n = t.cross_shard <- t.cross_shard + n

let windows t = t.windows

let barriers t = t.barriers

let window_events t = t.window_events

let window_span t = t.window_span

let cross_shard_events t = t.cross_shard

let wants_entries t = t.log_limit > 0

let streams t = t.verbosity > 0

let append_entry t ~time kind a b c = record_slow t ~time kind a b c

let merge_counts t deltas =
  if Array.length deltas <> kind_count then
    invalid_arg "Trace.merge_counts: wrong array length";
  for i = 0 to kind_count - 1 do
    t.counters.(i) <- t.counters.(i) + deltas.(i)
  done

let count t kind = t.counters.(kind_index kind)

let total t = Array.fold_left ( + ) 0 t.counters

let counts t = List.map (fun k -> (k, count t k)) all_kinds

let entries t = List.rev t.log

let to_csv t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "time,kind,a,b,c\n";
  List.iter
    (fun e ->
      Buffer.add_string buf
        (Printf.sprintf "%.9g,%s,%d,%d,%d\n" e.time (kind_to_string e.kind) e.a
           e.b e.c))
    (entries t);
  Buffer.contents buf

let pp_summary fmt t =
  Format.fprintf fmt "@[<v>";
  List.iter
    (fun k ->
      let c = count t k in
      if c > 0 then Format.fprintf fmt "%-18s %d@," (kind_to_string k) c)
    all_kinds;
  Format.fprintf fmt "@]"
