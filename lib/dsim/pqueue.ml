(* Binary heap over three parallel arrays instead of an array of cells:
   [times] is an unboxed [float array], so a push allocates nothing (the
   old cell-per-push representation allocated a 4-word block per event and
   kept popped cells — and therefore delivered payloads — live in the
   heap array until they were overwritten by later pushes).

   The payload array is typed [Obj.t] internally so vacated slots can be
   reset to a sentinel ([dummy]) the moment an element leaves the heap;
   without that, the queue retains the last max-size payloads against the
   GC. The [Obj] casts never escape this module: every payload stored is
   an ['a] boxed/immediate value belonging to the phantom parameter of
   ['a t], and slots beyond [size] always hold [dummy]. *)

type 'a t = {
  mutable times : float array; (* heap order lives in [0, size) *)
  mutable seqs : int array;
  mutable payloads : Obj.t array;
  mutable size : int;
  mutable next_seq : int;
}

let dummy : Obj.t = Obj.repr ()

let create ?(capacity = 64) () =
  if capacity < 0 then invalid_arg "Pqueue.create: negative capacity";
  let cap = max capacity 1 in
  {
    times = Array.make cap 0.;
    seqs = Array.make cap 0;
    payloads = Array.make cap dummy;
    size = 0;
    next_seq = 0;
  }

let is_empty q = q.size = 0

let size q = q.size

let capacity q = Array.length q.times

let clear q =
  (* Release every retained payload. The tie-break counter deliberately
     keeps counting: [alloc_seq] hands ranks to external schedulers (the
     engine's timer wheel) that survive a clear, and resetting here would
     let fresh pushes reuse ranks those live entries already hold —
     breaking the one total (time, seq) order across both sources. *)
  Array.fill q.payloads 0 q.size dummy;
  q.size <- 0

let grow q =
  let n = Array.length q.times in
  let cap = 2 * n in
  let times = Array.make cap 0. in
  let seqs = Array.make cap 0 in
  let payloads = Array.make cap dummy in
  Array.blit q.times 0 times 0 q.size;
  Array.blit q.seqs 0 seqs 0 q.size;
  Array.blit q.payloads 0 payloads 0 q.size;
  q.times <- times;
  q.seqs <- seqs;
  q.payloads <- payloads

let alloc_seq q =
  (* Reserve the next tie-break rank without inserting anything. An
     external scheduler (Engine's timer wheel) stores events the heap
     never sees; drawing their ranks from this counter keeps one total
     (time, seq) order across both sources. *)
  let seq = q.next_seq in
  q.next_seq <- seq + 1;
  seq

let top_seq q = if q.size = 0 then max_int else q.seqs.(0)

let push q ~time payload =
  if not (Float.is_finite time) then invalid_arg "Pqueue.push: non-finite time";
  let seq = q.next_seq in
  q.next_seq <- seq + 1;
  if q.size >= Array.length q.times then grow q;
  (* Sift a hole up from the end to the insertion point, then fill it. *)
  let i = ref q.size in
  q.size <- q.size + 1;
  let continue = ref true in
  while !continue && !i > 0 do
    let parent = (!i - 1) / 2 in
    let pt = q.times.(parent) in
    if time < pt || (time = pt && seq < q.seqs.(parent)) then begin
      q.times.(!i) <- pt;
      q.seqs.(!i) <- q.seqs.(parent);
      q.payloads.(!i) <- q.payloads.(parent);
      i := parent
    end
    else continue := false
  done;
  q.times.(!i) <- time;
  q.seqs.(!i) <- seq;
  q.payloads.(!i) <- Obj.repr payload

(* Remove the root. Precondition: [q.size > 0]. The vacated slot (and, at
   size 1, the root itself) is reset to [dummy] so the payload is
   collectable as soon as the caller drops it. *)
let remove_min q =
  let payload = q.payloads.(0) in
  let last = q.size - 1 in
  q.size <- last;
  if last = 0 then q.payloads.(0) <- dummy
  else begin
    let time = q.times.(last) and seq = q.seqs.(last) in
    let pl = q.payloads.(last) in
    q.payloads.(last) <- dummy;
    (* Sift the hole down from the root, then drop the former last
       element into it. *)
    let i = ref 0 in
    let continue = ref true in
    while !continue do
      let l = (2 * !i) + 1 in
      if l >= last then continue := false
      else begin
        let r = l + 1 in
        let c =
          if
            r < last
            && (q.times.(r) < q.times.(l)
               || (q.times.(r) = q.times.(l) && q.seqs.(r) < q.seqs.(l)))
          then r
          else l
        in
        if q.times.(c) < time || (q.times.(c) = time && q.seqs.(c) < seq) then begin
          q.times.(!i) <- q.times.(c);
          q.seqs.(!i) <- q.seqs.(c);
          q.payloads.(!i) <- q.payloads.(c);
          i := c
        end
        else continue := false
      end
    done;
    q.times.(!i) <- time;
    q.seqs.(!i) <- seq;
    q.payloads.(!i) <- pl
  end;
  payload

let pop q =
  if q.size = 0 then None
  else begin
    let time = q.times.(0) in
    Some (time, Obj.obj (remove_min q))
  end

let pop_exn q =
  if q.size = 0 then invalid_arg "Pqueue.pop_exn: empty queue";
  Obj.obj (remove_min q)

let peek_time q = if q.size = 0 then None else Some q.times.(0)

let next_time q = if q.size = 0 then Float.infinity else q.times.(0)

let drain q f =
  while q.size > 0 do
    let time = q.times.(0) in
    let payload = Obj.obj (remove_min q) in
    f ~time payload
  done
