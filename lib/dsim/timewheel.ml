(* Hierarchical timer wheel: [levels] rings of [slots] buckets each, where
   a level-[l] bucket spans [granularity * slots^l] time units. Entries
   are four ints plus an unboxed float deadline in per-bucket parallel
   arrays, so arming allocates nothing once a bucket has warmed up.

   The cursor is the next unresolved granule (granule = deadline /
   granularity, floored). Resolving granule [c] first cascades every
   coarser ring whose boundary [c] crosses (top ring first), re-arming
   each displaced entry relative to the new cursor, then drains level-0
   slot [c mod slots] into [due], a small binary heap ordered by
   (deadline, seq). Two invariants make the merge with the event queue
   exact:

   - every bucket entry's granule is >= cursor, so its deadline is
     >= cursor * granularity;
   - every due entry's deadline is < cursor * granularity (it entered due
     either when its granule was resolved or because it was armed into
     the already-resolved past).

   Hence whenever [due] is non-empty its root is the wheel's global
   minimum, and [peek] needs to advance the cursor only while [due] is
   empty. Entries further than [slots^levels] granules away are parked at
   the top ring's last covered slot and re-cascaded when the cursor gets
   there; the granule check in [resolve] re-arms instead of surfacing
   them, so clamping never reorders anything. *)

type t = {
  granularity : float;
  slots : int;
  levels : int;
  w_pow : int array; (* w_pow.(l) = slots^l; length levels + 1 *)
  span : int; (* slots^levels *)
  mutable cursor : int;
  mutable bucket_count : int;
  mutable prov : int; (* held entries whose seq is provisional *)
  (* Buckets, struct-of-arrays: bucket [l * slots + s] owns index ranges
     [0, b_len.(i)) of the inner arrays. *)
  b_len : int array;
  b_deadline : float array array;
  b_seq : int array array;
  b_node : int array array;
  b_label : int array array;
  b_gen : int array array;
  (* Due heap, parallel arrays ordered by (deadline, seq). *)
  mutable d_len : int;
  mutable d_deadline : float array;
  mutable d_seq : int array;
  mutable d_node : int array;
  mutable d_label : int array;
  mutable d_gen : int array;
  (* Detached-bucket scratch: draining a bucket swaps its arrays with
     these instead of dropping them to [empty_*], so the capacity a
     bucket built up keeps circulating instead of being reallocated from
     4 on the next push — under sustained re-arm traffic that detach
     churn dominated the wheel's minor-heap traffic. *)
  mutable s_deadline : float array;
  mutable s_seq : int array;
  mutable s_node : int array;
  mutable s_label : int array;
  mutable s_gen : int array;
}

let empty_f : float array = [||]
let empty_i : int array = [||]

let create ~granularity ?(slots = 64) ?(levels = 4) () =
  if not (Float.is_finite granularity) || granularity <= 0. then
    invalid_arg "Timewheel.create: granularity must be positive";
  if slots < 2 then invalid_arg "Timewheel.create: need at least 2 slots";
  if levels < 1 then invalid_arg "Timewheel.create: need at least 1 level";
  let w_pow = Array.make (levels + 1) 1 in
  for l = 1 to levels do
    w_pow.(l) <- w_pow.(l - 1) * slots
  done;
  let nb = levels * slots in
  {
    granularity;
    slots;
    levels;
    w_pow;
    span = w_pow.(levels);
    cursor = 0;
    bucket_count = 0;
    prov = 0;
    b_len = Array.make nb 0;
    b_deadline = Array.make nb empty_f;
    b_seq = Array.make nb empty_i;
    b_node = Array.make nb empty_i;
    b_label = Array.make nb empty_i;
    b_gen = Array.make nb empty_i;
    d_len = 0;
    d_deadline = Array.make 16 0.;
    d_seq = Array.make 16 0;
    d_node = Array.make 16 0;
    d_label = Array.make 16 0;
    d_gen = Array.make 16 0;
    s_deadline = empty_f;
    s_seq = empty_i;
    s_node = empty_i;
    s_label = empty_i;
    s_gen = empty_i;
  }

let size t = t.bucket_count + t.d_len

let footprint_words t =
  let acc = ref (5 * Array.length t.d_deadline) in
  for b = 0 to Array.length t.b_deadline - 1 do
    acc := !acc + (5 * Array.length t.b_deadline.(b))
  done;
  !acc + (5 * Array.length t.s_deadline) + (6 * Array.length t.b_len)

(* Due heap ----------------------------------------------------------- *)

let due_grow t =
  let cap = 2 * Array.length t.d_deadline in
  let g_f a = let b = Array.make cap 0. in Array.blit a 0 b 0 t.d_len; b in
  let g_i a = let b = Array.make cap 0 in Array.blit a 0 b 0 t.d_len; b in
  t.d_deadline <- g_f t.d_deadline;
  t.d_seq <- g_i t.d_seq;
  t.d_node <- g_i t.d_node;
  t.d_label <- g_i t.d_label;
  t.d_gen <- g_i t.d_gen

let due_push t ~deadline ~seq ~node ~label ~gen =
  if t.d_len >= Array.length t.d_deadline then due_grow t;
  (* Sift a hole up from the end, then fill it (same as Pqueue.push). *)
  let i = ref t.d_len in
  t.d_len <- t.d_len + 1;
  let continue = ref true in
  while !continue && !i > 0 do
    let parent = (!i - 1) / 2 in
    let pd = t.d_deadline.(parent) in
    if deadline < pd || (deadline = pd && seq < t.d_seq.(parent)) then begin
      t.d_deadline.(!i) <- pd;
      t.d_seq.(!i) <- t.d_seq.(parent);
      t.d_node.(!i) <- t.d_node.(parent);
      t.d_label.(!i) <- t.d_label.(parent);
      t.d_gen.(!i) <- t.d_gen.(parent);
      i := parent
    end
    else continue := false
  done;
  t.d_deadline.(!i) <- deadline;
  t.d_seq.(!i) <- seq;
  t.d_node.(!i) <- node;
  t.d_label.(!i) <- label;
  t.d_gen.(!i) <- gen

let due_pop t =
  let last = t.d_len - 1 in
  t.d_len <- last;
  if last > 0 then begin
    let deadline = t.d_deadline.(last) and seq = t.d_seq.(last) in
    let node = t.d_node.(last)
    and label = t.d_label.(last)
    and gen = t.d_gen.(last) in
    let i = ref 0 in
    let continue = ref true in
    while !continue do
      let l = (2 * !i) + 1 in
      if l >= last then continue := false
      else begin
        let r = l + 1 in
        let c =
          if
            r < last
            && (t.d_deadline.(r) < t.d_deadline.(l)
               || (t.d_deadline.(r) = t.d_deadline.(l) && t.d_seq.(r) < t.d_seq.(l)))
          then r
          else l
        in
        if
          t.d_deadline.(c) < deadline
          || (t.d_deadline.(c) = deadline && t.d_seq.(c) < seq)
        then begin
          t.d_deadline.(!i) <- t.d_deadline.(c);
          t.d_seq.(!i) <- t.d_seq.(c);
          t.d_node.(!i) <- t.d_node.(c);
          t.d_label.(!i) <- t.d_label.(c);
          t.d_gen.(!i) <- t.d_gen.(c);
          i := c
        end
        else continue := false
      end
    done;
    t.d_deadline.(!i) <- deadline;
    t.d_seq.(!i) <- seq;
    t.d_node.(!i) <- node;
    t.d_label.(!i) <- label;
    t.d_gen.(!i) <- gen
  end

(* Buckets ------------------------------------------------------------ *)

let bucket_push t b ~deadline ~seq ~node ~label ~gen =
  let len = t.b_len.(b) in
  if len >= Array.length t.b_deadline.(b) then begin
    let cap = max 4 (2 * len) in
    let g_f a = let c = Array.make cap 0. in Array.blit a 0 c 0 len; c in
    let g_i a = let c = Array.make cap 0 in Array.blit a 0 c 0 len; c in
    t.b_deadline.(b) <- g_f t.b_deadline.(b);
    t.b_seq.(b) <- g_i t.b_seq.(b);
    t.b_node.(b) <- g_i t.b_node.(b);
    t.b_label.(b) <- g_i t.b_label.(b);
    t.b_gen.(b) <- g_i t.b_gen.(b)
  end;
  t.b_deadline.(b).(len) <- deadline;
  t.b_seq.(b).(len) <- seq;
  t.b_node.(b).(len) <- node;
  t.b_label.(b).(len) <- label;
  t.b_gen.(b).(len) <- gen;
  t.b_len.(b) <- len + 1;
  t.bucket_count <- t.bucket_count + 1

let granule t deadline = int_of_float (Float.floor (deadline /. t.granularity))

(* Place an entry relative to the current cursor: already-resolved
   granules go straight to [due]; everything else picks the ring whose
   reach covers its distance, with far-future entries parked at the top
   ring's last covered granule (their stored deadline is untouched, so
   they re-place themselves correctly when that slot is revisited). *)
let place t ~deadline ~seq ~node ~label ~gen =
  let g = granule t deadline in
  if g < t.cursor then due_push t ~deadline ~seq ~node ~label ~gen
  else begin
    let d = g - t.cursor in
    let gp = if d >= t.span then t.cursor + t.span - 1 else g in
    let dp = gp - t.cursor in
    let l = ref 0 in
    while dp >= t.w_pow.(!l + 1) do incr l done;
    let slot = (gp / t.w_pow.(!l)) mod t.slots in
    bucket_push t ((!l * t.slots) + slot) ~deadline ~seq ~node ~label ~gen
  end

let arm t ~node ~label ~gen ~seq ~deadline =
  if not (Float.is_finite deadline) || deadline < 0. then
    invalid_arg "Timewheel.arm: bad deadline";
  if seq >= Equeue.prov_flag then t.prov <- t.prov + 1;
  place t ~deadline ~seq ~node ~label ~gen

(* Detach bucket [b]'s arrays for draining: a re-placed entry may land
   back in [b] (a parked far-future entry can stay on the top ring), so
   the drain must read from arrays the concurrent pushes cannot touch.
   The bucket is handed the scratch set in exchange, and the caller
   returns the detached arrays to scratch when the drain ends — capacity
   circulates instead of being reallocated from 4 on the next push. *)
let detach t b =
  t.b_len.(b) <- 0;
  let d = t.b_deadline.(b) in
  t.b_deadline.(b) <- t.s_deadline;
  t.s_deadline <- d;
  let s = t.b_seq.(b) in
  t.b_seq.(b) <- t.s_seq;
  t.s_seq <- s;
  let n = t.b_node.(b) in
  t.b_node.(b) <- t.s_node;
  t.s_node <- n;
  let l = t.b_label.(b) in
  t.b_label.(b) <- t.s_label;
  t.s_label <- l;
  let g = t.b_gen.(b) in
  t.b_gen.(b) <- t.s_gen;
  t.s_gen <- g

(* Empty bucket [b] and re-place every entry it held. *)
let redistribute t b =
  let len = t.b_len.(b) in
  if len > 0 then begin
    detach t b;
    let deadline = t.s_deadline
    and seq = t.s_seq
    and node = t.s_node
    and label = t.s_label
    and gen = t.s_gen in
    t.bucket_count <- t.bucket_count - len;
    for k = 0 to len - 1 do
      place t ~deadline:deadline.(k) ~seq:seq.(k) ~node:node.(k)
        ~label:label.(k) ~gen:gen.(k)
    done
  end

(* Resolve granule [cursor]: cascade each coarser ring whose boundary the
   cursor crosses (coarsest first, so entries can fall several rings in
   one step), then surface level-0 slot [cursor mod slots] — after the
   cascades every entry there has granule = cursor (parked entries are
   caught by the granule check and re-placed instead). *)
let resolve t =
  let c = t.cursor in
  for l = t.levels - 1 downto 1 do
    if c mod t.w_pow.(l) = 0 then
      redistribute t ((l * t.slots) + ((c / t.w_pow.(l)) mod t.slots))
  done;
  let b = c mod t.slots in
  let len = t.b_len.(b) in
  if len > 0 then begin
    (* Detach the drained arrays before re-placing, exactly as
       [redistribute] does: with one level a parked far-future entry
       re-parks at [cursor + span - 1], whose level-0 slot is this very
       bucket [b], so [place] below can push into the slot being read.
       Detaching makes the reads immune to those writes instead of
       relying on the write index trailing the read index. *)
    detach t b;
    let deadline = t.s_deadline
    and seq = t.s_seq
    and node = t.s_node
    and label = t.s_label
    and gen = t.s_gen in
    t.bucket_count <- t.bucket_count - len;
    t.cursor <- c + 1;
    for k = 0 to len - 1 do
      if granule t deadline.(k) = c then
        due_push t ~deadline:deadline.(k) ~seq:seq.(k) ~node:node.(k)
          ~label:label.(k) ~gen:gen.(k)
      else
        place t ~deadline:deadline.(k) ~seq:seq.(k) ~node:node.(k)
          ~label:label.(k) ~gen:gen.(k)
    done
  end
  else t.cursor <- c + 1

let peek t ~upto =
  if t.d_len = 0 then begin
    (* Advance at most to the granule containing [upto]: anything beyond
       it cannot surface an entry with deadline <= upto. *)
    let limit = granule t upto in
    while t.d_len = 0 && t.bucket_count > 0 && t.cursor <= limit do
      resolve t
    done
  end;
  t.d_len > 0 && t.d_deadline.(0) <= upto

let top_time t = t.d_deadline.(0)

let top_seq t = if t.d_len = 0 then max_int else t.d_seq.(0)

let top_node t = t.d_node.(0)

let top_label t = t.d_label.(0)

let top_gen t = t.d_gen.(0)

let pop t =
  if t.d_len = 0 then invalid_arg "Timewheel.pop: no resolved entry";
  if t.d_seq.(0) >= Equeue.prov_flag then t.prov <- t.prov - 1;
  due_pop t

(* Buckets are unordered flat arrays, so any value rewrite is safe there;
   the due heap is ordered by (deadline, seq), so — as in Equeue — the
   rewrite must preserve the pairwise order of the live seqs to keep the
   heap shape valid (the engine's barrier re-ranking does; see
   Equeue.remap_batch). The provisional count held by [arm]/[pop] makes
   the no-window-creations case one load instead of a sweep over every
   bucket. *)
let remap_batch t ~finals =
  if t.prov > 0 then begin
    let left = ref t.prov in
    let b = ref 0 in
    while !left > 0 && !b < Array.length t.b_seq do
      let seq = t.b_seq.(!b) in
      for k = 0 to t.b_len.(!b) - 1 do
        let s = seq.(k) in
        if s >= Equeue.prov_flag then begin
          seq.(k) <- finals.(s land Equeue.cre_mask);
          decr left
        end
      done;
      incr b
    done;
    let seq = t.d_seq in
    let k = ref 0 in
    while !left > 0 && !k < t.d_len do
      let s = seq.(!k) in
      if s >= Equeue.prov_flag then begin
        seq.(!k) <- finals.(s land Equeue.cre_mask);
        decr left
      end;
      incr k
    done;
    t.prov <- 0
  end
