(* Struct-of-arrays event queue: the engine's events, flattened.

   A binary heap ordered by (time, seq) — same contract as [Pqueue] — but
   holding *encoded* events instead of boxed variant blocks: a kind tag
   plus four int operands and one optional boxed payload (the message or
   timer value, which the engine cannot unbox without losing genericity).
   Times live in an off-heap Float64 [Bigarray], so the steady-state
   push/pop cycle allocates nothing at all: no event block, no float
   boxing, and the GC never scans or moves the time column.

   The heap is indirect: sift operations move (time, seq, slot) triples
   while the operand columns stay put in a free-listed slot pool, so a
   deep sift touches three arrays, not eight. Popping decodes the event
   into per-queue registers ([ev_kind] .. [ev_payload]) read by the
   dispatcher — returning a tuple or record would put an allocation back
   on the hot path. *)

type ba = (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t

(* Provisional-rank encoding, shared with the engine's parallel dispatch
   windows (DESIGN §14): a seq at or above [prov_flag] is a provisional
   block rank whose low [cre_mask] bits index the creating lane's
   final-rank table. The queue counts live provisional entries so the
   barrier's batch remap can skip queues that hold none. *)
let prov_flag = 1 lsl 60

let cre_mask = (1 lsl 40) - 1

type t = {
  (* Heap columns, parallel, first [size] cells live. *)
  mutable times : ba;
  mutable seqs : int array;
  mutable slots : int array;
  mutable size : int;
  (* Slot pool: operand columns, free-listed through [ia]. *)
  mutable kinds : int array;
  mutable ia : int array;
  mutable ib : int array;
  mutable ic : int array;
  mutable id_ : int array;
  mutable payloads : Obj.t array;
  mutable free : int; (* head of the free list, -1 when exhausted *)
  mutable pool_len : int;
  mutable prov : int; (* live entries whose seq is provisional *)
  (* Registers holding the last popped event. *)
  mutable p_kind : int;
  mutable p_a : int;
  mutable p_b : int;
  mutable p_c : int;
  mutable p_d : int;
  mutable p_payload : Obj.t;
}

let dummy : Obj.t = Obj.repr ()

let ba_make cap : ba = Bigarray.Array1.create Bigarray.float64 Bigarray.c_layout cap

let create ?(capacity = 64) () =
  if capacity < 0 then invalid_arg "Equeue.create: negative capacity";
  let cap = max 1 capacity in
  {
    times = ba_make cap;
    seqs = Array.make cap 0;
    slots = Array.make cap 0;
    size = 0;
    kinds = Array.make cap 0;
    ia = Array.make cap 0;
    ib = Array.make cap 0;
    ic = Array.make cap 0;
    id_ = Array.make cap 0;
    payloads = Array.make cap dummy;
    free = -1;
    pool_len = 0;
    prov = 0;
    p_kind = -1;
    p_a = 0;
    p_b = 0;
    p_c = 0;
    p_d = 0;
    p_payload = dummy;
  }

let size q = q.size

let is_empty q = q.size = 0

let grow_heap q =
  let cap = Array.length q.seqs in
  let cap' = 2 * cap in
  let times' = ba_make cap' in
  Bigarray.Array1.blit q.times (Bigarray.Array1.sub times' 0 cap);
  q.times <- times';
  let grow a =
    let a' = Array.make cap' 0 in
    Array.blit a 0 a' 0 cap;
    a'
  in
  q.seqs <- grow q.seqs;
  q.slots <- grow q.slots

let grow_pool q =
  let cap = Array.length q.kinds in
  let cap' = 2 * cap in
  let grow a =
    let a' = Array.make cap' 0 in
    Array.blit a 0 a' 0 cap;
    a'
  in
  q.kinds <- grow q.kinds;
  q.ia <- grow q.ia;
  q.ib <- grow q.ib;
  q.ic <- grow q.ic;
  q.id_ <- grow q.id_;
  let p' = Array.make cap' dummy in
  Array.blit q.payloads 0 p' 0 cap;
  q.payloads <- p'

let push q ~time ~seq ~kind ~a ~b ~c ~d payload =
  if not (Float.is_finite time) then invalid_arg "Equeue.push: non-finite time";
  if seq >= prov_flag then q.prov <- q.prov + 1;
  let slot =
    if q.free >= 0 then begin
      let s = q.free in
      q.free <- q.ia.(s);
      s
    end
    else begin
      if q.pool_len >= Array.length q.kinds then grow_pool q;
      let s = q.pool_len in
      q.pool_len <- s + 1;
      s
    end
  in
  q.kinds.(slot) <- kind;
  q.ia.(slot) <- a;
  q.ib.(slot) <- b;
  q.ic.(slot) <- c;
  q.id_.(slot) <- d;
  q.payloads.(slot) <- payload;
  if q.size >= Array.length q.seqs then grow_heap q;
  let times = q.times and seqs = q.seqs and slots = q.slots in
  let i = ref q.size in
  q.size <- q.size + 1;
  let continue = ref true in
  while !continue && !i > 0 do
    let p = (!i - 1) lsr 1 in
    let pt = Bigarray.Array1.unsafe_get times p in
    if pt > time || (pt = time && Array.unsafe_get seqs p > seq) then begin
      Bigarray.Array1.unsafe_set times !i pt;
      Array.unsafe_set seqs !i (Array.unsafe_get seqs p);
      Array.unsafe_set slots !i (Array.unsafe_get slots p);
      i := p
    end
    else continue := false
  done;
  Bigarray.Array1.unsafe_set times !i time;
  Array.unsafe_set seqs !i seq;
  Array.unsafe_set slots !i slot

let next_time q = if q.size = 0 then infinity else Bigarray.Array1.unsafe_get q.times 0

let top_seq q = if q.size = 0 then max_int else Array.unsafe_get q.seqs 0

let pop q =
  if q.size = 0 then invalid_arg "Equeue.pop: empty queue";
  if Array.unsafe_get q.seqs 0 >= prov_flag then q.prov <- q.prov - 1;
  let slot = q.slots.(0) in
  q.p_kind <- q.kinds.(slot);
  q.p_a <- q.ia.(slot);
  q.p_b <- q.ib.(slot);
  q.p_c <- q.ic.(slot);
  q.p_d <- q.id_.(slot);
  q.p_payload <- q.payloads.(slot);
  q.payloads.(slot) <- dummy;
  q.ia.(slot) <- q.free;
  q.free <- slot;
  q.size <- q.size - 1;
  let n = q.size in
  if n > 0 then begin
    let times = q.times and seqs = q.seqs and slots = q.slots in
    let time = Bigarray.Array1.unsafe_get times n in
    let seq = Array.unsafe_get seqs n in
    let sl = Array.unsafe_get slots n in
    let i = ref 0 in
    let continue = ref true in
    while !continue do
      let l = (2 * !i) + 1 in
      if l >= n then continue := false
      else begin
        let r = l + 1 in
        let c =
          if r < n then begin
            let lt = Bigarray.Array1.unsafe_get times l
            and rt = Bigarray.Array1.unsafe_get times r in
            if rt < lt || (rt = lt && Array.unsafe_get seqs r < Array.unsafe_get seqs l)
            then r
            else l
          end
          else l
        in
        let ct = Bigarray.Array1.unsafe_get times c in
        if ct < time || (ct = time && Array.unsafe_get seqs c < seq) then begin
          Bigarray.Array1.unsafe_set times !i ct;
          Array.unsafe_set seqs !i (Array.unsafe_get seqs c);
          Array.unsafe_set slots !i (Array.unsafe_get slots c);
          i := c
        end
        else continue := false
      end
    done;
    Bigarray.Array1.unsafe_set times !i time;
    Array.unsafe_set seqs !i seq;
    Array.unsafe_set slots !i sl
  end

(* Rewriting seq values in place is safe exactly when the rewrite
   preserves the pairwise order of the live seqs: the heap shape encodes
   only comparisons, so an order-preserving rewrite leaves every
   parent/child relation valid. The engine's barrier re-ranking satisfies
   this — a lane's provisional ranks resolve to final ranks in creation
   order, and every final rank a window assigns exceeds every rank the
   queue already held (DESIGN §14). The provisional count makes the
   common case — a queue that took no window creations — one load. *)
let remap_batch q ~finals =
  if q.prov > 0 then begin
    let seqs = q.seqs in
    let left = ref q.prov in
    let i = ref 0 in
    while !left > 0 do
      let s = Array.unsafe_get seqs !i in
      if s >= prov_flag then begin
        Array.unsafe_set seqs !i (Array.unsafe_get finals (s land cre_mask));
        decr left
      end;
      incr i
    done;
    q.prov <- 0
  end

let release q = q.p_payload <- dummy

let ev_kind q = q.p_kind

let ev_a q = q.p_a

let ev_b q = q.p_b

let ev_c q = q.p_c

let ev_d q = q.p_d

let ev_payload q = q.p_payload

(* Allocated footprint in words, for memory-growth checks: heap columns
   (seqs/slots + the off-heap time column counted at 1 word/cell) plus the
   pool columns. *)
let footprint_words q =
  let heap_cap = Array.length q.seqs in
  let pool_cap = Array.length q.kinds in
  (3 * heap_cap) + (6 * pool_cap)
