(* Events are flattened into [Equeue]'s int encoding — a kind tag, four
   int operands and one boxed payload (message, timer value or callback
   closure) — so pushing an event allocates nothing. The decoding key:

     kind              a      b        c      d      payload
     k_edge_add        u      v               rsvd
     k_edge_remove     u      v               rsvd
     k_discover_add    node   peer     epoch
     k_discover_rm     node   peer     epoch
     k_absence         node   peer
     k_deliver         src    dst      epoch  inc    'msg
     k_timer           node   gen                    'timer (heap mode)
     k_crash           node
     k_restart         node   corrupt
     k_callback                                      unit -> unit
     k_commute_cb                                    unit -> unit

   [rsvd] on topology events records whether the edge's graph storage
   was pre-allocated at schedule time (Dyngraph.reserve), which is what
   licenses in-window dispatch when both endpoints share a shard. *)
let k_edge_add = 0
let k_edge_remove = 1
let k_discover_add = 2
let k_discover_rm = 3
let k_absence = 4
let k_deliver = 5
let k_timer = 6
let k_crash = 7
let k_restart = 8
let k_callback = 9
let k_commute_cb = 10

let no_payload : Obj.t = Obj.repr ()

(* Binary search in the first [len] cells of sorted [keys]: the index of
   [k], or [lnot] of its insertion point when absent (always negative).
   The per-node tables below are keyed by peer/label ids and are
   degree-bounded, so a branchless-ish search plus an [Array.blit] shift
   beats hashing — no key boxing, no bucket chains, cache-linear. *)
let bfind (keys : int array) len k =
  let lo = ref 0 and hi = ref len in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if keys.(mid) < k then lo := mid + 1 else hi := mid
  done;
  if !lo < len && keys.(!lo) = k then !lo else lnot !lo

(* FIFO floor of one source's outgoing links, sorted by destination:
   latest scheduled delivery time per dst, valid only for the edge epoch
   it was recorded under. The send path touches one small per-source
   table; memory is O(live out-degree), never O(n) per node. *)
module Fifo_store = struct
  type t = {
    mutable dst : int array;
    mutable epoch : int array;
    mutable deadline : float array;
    mutable len : int;
  }

  let create () = { dst = [||]; epoch = [||]; deadline = [||]; len = 0 }

  let grow s =
    let cap = max 4 (2 * Array.length s.dst) in
    let d = Array.make cap 0
    and e = Array.make cap 0
    and dl = Array.make cap 0. in
    Array.blit s.dst 0 d 0 s.len;
    Array.blit s.epoch 0 e 0 s.len;
    Array.blit s.deadline 0 dl 0 s.len;
    s.dst <- d;
    s.epoch <- e;
    s.deadline <- dl

  let insert s ~at dst epoch deadline =
    if s.len >= Array.length s.dst then grow s;
    let tail = s.len - at in
    Array.blit s.dst at s.dst (at + 1) tail;
    Array.blit s.epoch at s.epoch (at + 1) tail;
    Array.blit s.deadline at s.deadline (at + 1) tail;
    s.dst.(at) <- dst;
    s.epoch.(at) <- epoch;
    s.deadline.(at) <- deadline;
    s.len <- s.len + 1

  let remove s dst =
    let i = bfind s.dst s.len dst in
    if i >= 0 then begin
      let tail = s.len - i - 1 in
      Array.blit s.dst (i + 1) s.dst i tail;
      Array.blit s.epoch (i + 1) s.epoch i tail;
      Array.blit s.deadline (i + 1) s.deadline i tail;
      s.len <- s.len - 1
    end

  let footprint_words s = 3 * Array.length s.dst
end

(* Sorted set of peers with a pending absence notice (per node). *)
module Iset = struct
  type t = { mutable keys : int array; mutable len : int }

  let create () = { keys = [||]; len = 0 }

  let mem s k = bfind s.keys s.len k >= 0

  (* Add [k]; no-op when present. *)
  let add s k =
    let i = bfind s.keys s.len k in
    if i < 0 then begin
      let at = lnot i in
      if s.len >= Array.length s.keys then begin
        let cap = max 4 (2 * Array.length s.keys) in
        let ks = Array.make cap 0 in
        Array.blit s.keys 0 ks 0 s.len;
        s.keys <- ks
      end;
      Array.blit s.keys at s.keys (at + 1) (s.len - at);
      s.keys.(at) <- k;
      s.len <- s.len + 1
    end

  let remove s k =
    let i = bfind s.keys s.len k in
    if i >= 0 then begin
      Array.blit s.keys (i + 1) s.keys i (s.len - i - 1);
      s.len <- s.len - 1
    end
end

(* One node's armed timers under the wheel scheduler, sorted by encoded
   label: the live generation plus the ['timer] value to hand back to
   [on_timer] when the wheel entry surfaces. Values are [Obj.t] so a
   retired slot can be reset to a sentinel, exactly as in [Equeue]; the
   casts never escape: every stored value is a ['timer] of the owning
   engine and slots at or beyond [len] always hold [dummy]. *)
module Armed = struct
  type t = {
    mutable labels : int array;
    mutable gens : int array;
    mutable vals : Obj.t array;
    mutable len : int;
  }

  let dummy : Obj.t = Obj.repr ()

  let create () = { labels = [||]; gens = [||]; vals = [||]; len = 0 }

  let find s label = bfind s.labels s.len label

  let insert s ~at label gen v =
    if s.len >= Array.length s.labels then begin
      let cap = max 4 (2 * Array.length s.labels) in
      let ls = Array.make cap 0
      and gs = Array.make cap 0
      and vs = Array.make cap dummy in
      Array.blit s.labels 0 ls 0 s.len;
      Array.blit s.gens 0 gs 0 s.len;
      Array.blit s.vals 0 vs 0 s.len;
      s.labels <- ls;
      s.gens <- gs;
      s.vals <- vs
    end;
    let tail = s.len - at in
    Array.blit s.labels at s.labels (at + 1) tail;
    Array.blit s.gens at s.gens (at + 1) tail;
    Array.blit s.vals at s.vals (at + 1) tail;
    s.labels.(at) <- label;
    s.gens.(at) <- gen;
    s.vals.(at) <- v;
    s.len <- s.len + 1

  let remove_at s i =
    let tail = s.len - i - 1 in
    Array.blit s.labels (i + 1) s.labels i tail;
    Array.blit s.gens (i + 1) s.gens i tail;
    Array.blit s.vals (i + 1) s.vals i tail;
    s.len <- s.len - 1;
    s.vals.(s.len) <- dummy
end

(* Cross-shard mailbox: events a lane creates for nodes another lane owns
   during a parallel dispatch window. Only the owning lane's domain
   touches its outbox inside a window; the coordinating domain remaps the
   provisional ranks and flushes every outbox into the destination queues
   at the merge barrier (DESIGN §14). Outside windows, pushes go straight
   to the owner's queue and outboxes stay empty. *)
module Outbox = struct
  type t = {
    mutable dst : int array; (* destination shard *)
    mutable times : float array;
    mutable seqs : int array;
    mutable kinds : int array;
    mutable ia : int array;
    mutable ib : int array;
    mutable ic : int array;
    mutable id_ : int array;
    mutable payloads : Obj.t array;
    mutable len : int;
    mutable min_time : float;
  }

  let create () =
    {
      dst = [||];
      times = [||];
      seqs = [||];
      kinds = [||];
      ia = [||];
      ib = [||];
      ic = [||];
      id_ = [||];
      payloads = [||];
      len = 0;
      min_time = infinity;
    }

  let grow ob =
    let cap = max 8 (2 * Array.length ob.dst) in
    let g_i a =
      let a' = Array.make cap 0 in
      Array.blit a 0 a' 0 ob.len;
      a'
    in
    ob.dst <- g_i ob.dst;
    ob.seqs <- g_i ob.seqs;
    ob.kinds <- g_i ob.kinds;
    ob.ia <- g_i ob.ia;
    ob.ib <- g_i ob.ib;
    ob.ic <- g_i ob.ic;
    ob.id_ <- g_i ob.id_;
    let f' = Array.make cap 0. in
    Array.blit ob.times 0 f' 0 ob.len;
    ob.times <- f';
    let p' = Array.make cap no_payload in
    Array.blit ob.payloads 0 p' 0 ob.len;
    ob.payloads <- p'

  let add ob ~dst ~time ~seq ~kind ~a ~b ~c ~d payload =
    if ob.len >= Array.length ob.dst then grow ob;
    let i = ob.len in
    ob.dst.(i) <- dst;
    ob.times.(i) <- time;
    ob.seqs.(i) <- seq;
    ob.kinds.(i) <- kind;
    ob.ia.(i) <- a;
    ob.ib.(i) <- b;
    ob.ic.(i) <- c;
    ob.id_.(i) <- d;
    ob.payloads.(i) <- payload;
    ob.len <- i + 1;
    if time < ob.min_time then ob.min_time <- time

  let flush ob (queues : Equeue.t array) =
    for i = 0 to ob.len - 1 do
      Equeue.push queues.(ob.dst.(i)) ~time:ob.times.(i) ~seq:ob.seqs.(i)
        ~kind:ob.kinds.(i) ~a:ob.ia.(i) ~b:ob.ib.(i) ~c:ob.ic.(i) ~d:ob.id_.(i)
        ob.payloads.(i);
      ob.payloads.(i) <- no_payload
    done;
    ob.len <- 0;
    ob.min_time <- infinity

  let footprint_words ob = 9 * Array.length ob.dst
end

type sched = Heap | Wheel

(* Live fault-injection state. Allocated only when the engine was created
   with a non-empty schedule, so the no-fault hot path pays exactly one
   option-tag check per send/delivery. The PRNG drives every fault-local
   draw (duplicate delays, Byzantine corruption, restart-state
   corruption); draws happen in dispatch/send order, which is identical
   under both schedulers, so fault schedules replay byte-identically. *)
type fault_state = {
  ops : Fault.schedule;
  fprng : Prng.t;
  mutable f_alive : bool array;
  mutable f_inc : int array; (* per-node incarnation, bumped at each crash *)
}

(* All-float so the per-event [now] store writes an unboxed double; a
   mutable float field in the main (mixed) record would box on every
   assignment. [whorizon] is the horizon of the window group in flight,
   read by the prebuilt lane thunks (which outlive any one call). *)
type fscratch = {
  mutable now : float;
  mutable cand_time : float;
  mutable whorizon : float;
}

(* Scratch for the tie-break hook: the same-instant event group is popped
   out of the queue registers into these parallel arrays before the hook
   picks which member dispatches next. *)
type tb_scratch = {
  mutable tb_seq : int array;
  mutable tb_kind : int array;
  mutable tb_a : int array;
  mutable tb_b : int array;
  mutable tb_c : int array;
  mutable tb_d : int array;
  mutable tb_payload : Obj.t array;
  mutable tb_len : int;
}

(* Provisional ranks: inside a parallel dispatch window, lane [s] tags
   its [j]-th creation with [prov_flag lor (s lsl 40) lor j] — block
   base 2^60 (above every final rank the counter can reach) plus a
   per-lane block of width 2^40. The barrier replays the per-lane
   dispatch logs in merged (time, rank) order and rewrites every
   provisional rank to the exact dense rank the sequential run would
   have assigned, so the (time, seq) order — and the trace — stays
   byte-identical at every shard and domain count (DESIGN §14). The
   numeric constants live in [Equeue] so the queue and wheel can count
   provisional entries for their batch remaps. *)
let prov_flag = Equeue.prov_flag

let cre_mask = Equeue.cre_mask

(* A lane stops dispatching this far before its block runs out, leaving
   room for the creations of the dispatch in flight; the next window
   re-opens with a fresh block. 2^40 creations per window is out of
   reach in practice (the buffered state alone would exhaust memory). *)
let cre_slack = 1 lsl 16

(* All-float scratch (see [fscratch]): [lnow] is the lane's current event
   time inside a window, [lhead] the lane's earliest pending (time) as of
   the last [select], [lwstop] the window end (exclusive). *)
type lscratch = {
  mutable lnow : float;
  mutable lhead : float;
  mutable lwstop : float;
}

(* Per-shard lane: dispatch state one domain owns during a parallel
   window, plus running counters the accessors sum over. Trace activity
   inside a window is buffered here — counter deltas always, structured
   entries only when the trace retains them — and folded/replayed at the
   barrier; the dispatch log ([mt]/[mseq]/[mcre]/[ment], one row per
   in-window dispatch) is what the barrier merges to re-rank. *)
type lane = {
  ls : int; (* shard index *)
  lf : lscratch;
  mutable lpar : bool; (* inside a parallel window *)
  mutable lcre : int; (* provisional ranks handed out this window *)
  mutable ldelta : int;
      (* live-edge delta from in-window topology flips, folded into the
         graph's edge count at the barrier *)
  (* Running totals; lane-owned, summed by the accessors. *)
  mutable levents : int;
  mutable llive : int;
  mutable lstale : int;
  (* Window-buffered trace state. *)
  lcounters : int array; (* per-kind deltas, folded at the barrier *)
  mutable bt : float array; (* entry buffer: time *)
  mutable bk : int array; (* kind index *)
  mutable ba : int array;
  mutable bb : int array;
  mutable bc : int array;
  mutable blen : int;
  (* Dispatch log: one row per in-window dispatch, in dispatch order. *)
  mutable mt : float array; (* event time *)
  mutable mseq : int array; (* rank at dispatch (provisional or final) *)
  mutable mcre : int array; (* [lcre] before the dispatch ran *)
  mutable ment : int array; (* [blen] before the dispatch ran *)
  mutable mlen : int;
  mutable lfinal : int array; (* final rank per creation index (barrier) *)
  mutable lmerged : int;
      (* creations whose final rank is already assigned — the watermark a
         mid-group relay advances to [lcre]; a provisional head below it
         resolves through [lfinal] when breaking an exact-time tie
         against a relayed (final-ranked) inbox head *)
}

type ('msg, 'timer) t = {
  mutable n : int;
  mutable clocks : Hwclock.t array;
  delay : Delay.t;
  discovery_lag : float;
  graph : Dyngraph.t;
  (* Sharding: [part.(id)] names the shard owning node [id] — filled by
     a contiguous split, the traffic-aware greedy partitioner or an
     explicit caller array ([[||]] at one shard; nodes joining after
     construction land in the last shard). Each shard owns an event
     queue, an outbox and — under the wheel scheduler — a timer wheel.
     Sequentially-created events draw ranks from one global sequence
     counter; window-created events get provisional block ranks that the
     barrier rewrites to the exact sequential ranks, so the (time, seq)
     merge order, and therefore the trace, is byte-identical at every
     shard count and every partition. Global events whose dispatch must
     stay sequential (faults, callbacks, multi-shard topology) live in a
     dedicated control queue when [shards > 1]. *)
  shards : int;
  part : int array;
  queues : Equeue.t array;
  outboxes : Outbox.t array;
  inboxes : Equeue.t array;
      (* per shard: cross-shard events a mid-group relay already resolved
         to final ranks, pending dispatch by the destination lane inside
         the still-open window; drained into the real queues at the
         barrier *)
  wheels : Timewheel.t array; (* per shard; empty under Heap *)
  lanes : lane array; (* per shard *)
  control : Equeue.t; (* order-sensitive global events; empty at shards=1 *)
  trace : Trace.t;
  mutable handlers : ('msg, 'timer) handlers option array;
  timer_label : ('timer -> int) option;
      (* Encodes a label for Timer_fire/Timer_stale trace records; the
         wheel scheduler additionally keys its dense tables by it. *)
  sched : sched;
  mutable timers : ('timer, int) Hashtbl.t array;
      (* heap mode: label -> live generation *)
  mutable armed : Armed.t array; (* wheel mode: per-node armed-label table *)
  mutable absence_pending : Iset.t array;
      (* node -> peers with a pending absence notice *)
  mutable fifo : Fifo_store.t array; (* src -> per-destination delivery floors *)
  mutable gens : int array;
      (* per-node timer generation counters: lane-safe, unlike a global
         one, and still unique per (node, label) *)
  mutable next_seq : int; (* global (time, seq) tie-break counter *)
  fs : fscratch;
  mutable started : bool;
  mutable ctrl_events : int; (* control-queue events dispatched *)
  (* Merge-loop candidate (scratch fields, not refs: allocation-free). *)
  mutable cand_seq : int;
  mutable cand_shard : int;
  mutable cand_wheel : bool;
  mutable cand_ctrl : bool;
  (* Parallel-window eligibility, fixed at creation: several shards, a
     pure delay policy with positive lookahead, no fault injection and no
     entry streaming. Everything else always takes the sequential path. *)
  par_ok : bool;
  log_on : bool; (* the trace retains entries; lanes must buffer them *)
  mutable executor : ((unit -> unit) array -> unit) option;
      (* runs one window's lane thunks to completion (Runner.run);
         [None] runs them in the caller, in index order *)
  mutable lane_thunks : (unit -> unit) array;
      (* one prebuilt thunk per lane (built on first parallel window):
         reads its round stop from the lane's [lwstop] and the horizon
         from [fs.whorizon], so no closure is allocated per round *)
  (* Window-group scratch (coordinator-only): lanes that joined the
     current group ([w_member] indexed by shard, [w_members.(0..w_mn)]
     the member list) and the per-round active list. *)
  w_member : bool array;
  w_members : lane array;
  mutable w_mn : int;
  w_actives : lane array;
  (* In-dispatch commuting-callback context: set while a [k_commute_cb]
     payload runs so a commuting callback it schedules can stay on the
     dispatching lane (and a non-commuting schedule from inside a window
     can fail loudly instead of racing on the control queue). *)
  mutable in_cb : bool;
  mutable cb_lane : lane;
  faults : fault_state option;
  corrupt_msg : (src:int -> Prng.t -> 'msg -> 'msg) option;
      (* Applied to messages a Byzantine node sends during its window. *)
  mutable restart_handlers : (corrupt:Prng.t option -> unit) option array;
  mutable tie_break : (int -> int) option;
      (* Adversary hook: given the size k of the same-instant event group
         at the queue head, returns the index (in seq order) of the event
         to dispatch next. Heap scheduler + single shard only. *)
  tb : tb_scratch;
}

and ('msg, 'timer) handlers = {
  on_init : unit -> unit;
  on_discover_add : int -> unit;
  on_discover_remove : int -> unit;
  on_receive : int -> 'msg -> unit;
  on_timer : 'timer -> unit;
}

type ('msg, 'timer) ctx = { engine : ('msg, 'timer) t; id : int; lane : lane }

let[@inline] shard_of t id =
  if id < Array.length t.part then Array.unsafe_get t.part id
  else t.shards - 1

(* Is this kind's dispatch order-sensitive beyond its own node — topology
   changes, faults, harness callbacks? Those mutate global state (the
   graph, liveness) or run arbitrary harness code, so they are kept out
   of the lane queues and dispatched sequentially from the control queue
   whenever the engine is sharded. Commuting callbacks are the deliberate
   exception: the caller promised they commute with node events, so they
   ride the lane queues like node events do. At [shards = 1] the single
   queue IS the sequential dispatcher, and routing nothing keeps that
   configuration exactly the traditional one (tie-break enumeration
   included). *)
let[@inline] ctrl_kind kind =
  kind <= k_edge_remove || (kind >= k_crash && kind <= k_callback)

(* Sequential push of an encoded event for the node [owner]: draws the
   next global rank and goes straight to the owner's queue (or the
   control queue for order-sensitive kinds under sharding). All
   harness-side scheduling and all sequential dispatch lands here.
   Topology events whose edge was reserved ([d = 1]) and whose endpoints
   share a shard skip the control queue: their dispatch only touches that
   shard's state, so they can run inside its window (DESIGN §14). *)
let push_ev t ~owner ~time ~kind ~a ~b ~c ~d payload =
  if t.in_cb && t.cb_lane.lpar then
    failwith
      "Engine: a commuting callback scheduled a non-commuting event inside \
       a parallel window";
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  if
    t.shards > 1
    && ctrl_kind kind
    && not (kind <= k_edge_remove && d = 1 && shard_of t a = shard_of t b)
  then Equeue.push t.control ~time ~seq ~kind ~a ~b ~c ~d payload
  else
    Equeue.push t.queues.(shard_of t owner) ~time ~seq ~kind ~a ~b ~c ~d payload

(* Lane-side push, used by the node API (send / set_timer / absence
   notices): inside a parallel window it allocates a provisional block
   rank and keeps same-lane events local, routing cross-lane events
   through the lane's outbox for the barrier; outside a window it is
   [push_ev]. Node code never creates control kinds. *)
let push_from t lane ~owner ~time ~kind ~a ~b ~c ~d payload =
  if lane.lpar then begin
    let j = lane.lcre in
    if j > cre_mask then failwith "Engine: window rank block exhausted";
    lane.lcre <- j + 1;
    let seq = prov_flag lor (lane.ls lsl 40) lor j in
    let dst = shard_of t owner in
    if dst = lane.ls then
      Equeue.push t.queues.(dst) ~time ~seq ~kind ~a ~b ~c ~d payload
    else begin
      (* The window's soundness rests on the lookahead: a cross-lane
         event created inside [t_start, wstop) must land at or beyond
         the window end, or the destination lane may already have
         dispatched past it. *)
      if time < lane.lf.lwstop then
        failwith
          "Engine: delay policy violated its min_lat promise inside a \
           parallel window";
      Outbox.add t.outboxes.(lane.ls) ~dst ~time ~seq ~kind ~a ~b ~c ~d payload
    end
  end
  else push_ev t ~owner ~time ~kind ~a ~b ~c ~d payload

(* Lane-aware trace record: buffered during a window (counter delta plus,
   when the trace retains entries, the structured entry), direct
   otherwise. The buffered entries replay at the barrier in the global
   (time, seq) order, so the retained log is byte-identical to the
   sequential run's. *)
let lane_record t lane ~time kind a b c =
  if lane.lpar then begin
    let i = Trace.kind_index kind in
    lane.lcounters.(i) <- lane.lcounters.(i) + 1;
    if t.log_on then begin
      let len = lane.blen in
      if len >= Array.length lane.bk then begin
        let cap = max 64 (2 * len) in
        let g_i a =
          let a' = Array.make cap 0 in
          Array.blit a 0 a' 0 len;
          a'
        in
        let bt' = Array.make cap 0. in
        Array.blit lane.bt 0 bt' 0 len;
        lane.bt <- bt';
        lane.bk <- g_i lane.bk;
        lane.ba <- g_i lane.ba;
        lane.bb <- g_i lane.bb;
        lane.bc <- g_i lane.bc
      end;
      lane.bt.(len) <- time;
      lane.bk.(len) <- i;
      lane.ba.(len) <- a;
      lane.bb.(len) <- b;
      lane.bc.(len) <- c;
      lane.blen <- len + 1
    end
  end
  else Trace.record t.trace ~time kind a b c

(* Append one row to the lane's dispatch log, before the dispatch runs:
   the event's (time, rank) key plus the creation/entry watermarks that
   delimit what this dispatch produced. *)
let lane_mark lane ~time ~seq =
  let len = lane.mlen in
  if len >= Array.length lane.mseq then begin
    let cap = max 64 (2 * len) in
    let g_i a =
      let a' = Array.make cap 0 in
      Array.blit a 0 a' 0 len;
      a'
    in
    let mt' = Array.make cap 0. in
    Array.blit lane.mt 0 mt' 0 len;
    lane.mt <- mt';
    lane.mseq <- g_i lane.mseq;
    lane.mcre <- g_i lane.mcre;
    lane.ment <- g_i lane.ment
  end;
  lane.mt.(len) <- time;
  lane.mseq.(len) <- seq;
  lane.mcre.(len) <- lane.lcre;
  lane.ment.(len) <- lane.blen;
  lane.mlen <- len + 1

(* Shard partitioning --------------------------------------------------

   [shard_of] only affects which queue an event waits in and which lane
   dispatches it — never the (time, seq) dispatch order — so any
   total function from ids to shards yields the same trace. What it does
   change is how many events cross shards (outbox traffic, and how soon
   a window's extension is cut off by a pending cross-shard delivery),
   so the partition is a pure performance knob. *)

let contiguous_part ~n ~shards =
  if shards <= 1 then [||]
  else begin
    let chunk = (n + shards - 1) / shards in
    Array.init n (fun i -> min (i / chunk) (shards - 1))
  end

(* Count edges whose endpoints land in different shards. *)
let edge_cut g part =
  Dyngraph.fold_edges g
    (fun acc u v -> if part.(u) <> part.(v) then acc + 1 else acc)
    0

(* Greedy traffic-aware partition: grow each shard by BFS from the lowest
   unassigned id, visiting neighbors in increasing order, up to the
   balanced capacity ceil(n/shards). Deterministic, O(n + edges), and it
   reproduces the contiguous split exactly on a path (each BFS sweep
   walks the next chunk of the line), while cutting far fewer edges than
   a blind contiguous split on clustered or scrambled topologies. With
   [~prev], the fresh cut must beat the previous partition's cut by more
   than [threshold] (relative) to replace it — hysteresis so steady
   churn doesn't thrash the assignment. *)
let partition ?prev ?(threshold = 0.1) ~shards g =
  if shards < 1 then invalid_arg "Engine.partition: need at least one shard";
  if threshold < 0. then invalid_arg "Engine.partition: negative threshold";
  let n = Dyngraph.n g in
  let fresh =
    if shards = 1 then Array.make n 0
    else begin
      let cap = (n + shards - 1) / shards in
      let part = Array.make n (-1) in
      let inq = Array.make n (-1) in (* shard a node is queued for *)
      let queue = Array.make n 0 in
      let next_seed = ref 0 in
      for s = 0 to shards - 1 do
        let qh = ref 0 and qt = ref 0 in
        let filled = ref 0 in
        let continue_ = ref true in
        while !filled < cap && !continue_ do
          let u =
            if !qh < !qt then begin
              let u = queue.(!qh) in
              incr qh;
              u
            end
            else begin
              while !next_seed < n && part.(!next_seed) >= 0 do
                incr next_seed
              done;
              if !next_seed < n then !next_seed else -1
            end
          in
          if u < 0 then continue_ := false
          else if part.(u) < 0 then begin
            part.(u) <- s;
            incr filled;
            List.iter
              (fun v ->
                if part.(v) < 0 && inq.(v) <> s then begin
                  inq.(v) <- s;
                  queue.(!qt) <- v;
                  incr qt
                end)
              (Dyngraph.neighbors g u)
          end
        done
      done;
      (* A shard can fill before its frontier empties; anything still
         unassigned joins the last shard (it has spare capacity: the
         others stopped exactly at [cap]). *)
      for u = 0 to n - 1 do
        if part.(u) < 0 then part.(u) <- shards - 1
      done;
      part
    end
  in
  match prev with
  | Some p when Array.length p = n && shards > 1 ->
    let pc = edge_cut g p and fc = edge_cut g fresh in
    if float_of_int fc < (1. -. threshold) *. float_of_int pc then fresh
    else Array.copy p
  | _ -> fresh

(* [create]'s [?partition] argument shadows the function above. *)
let greedy_partition ~shards g = partition ~shards g

let create ~clocks ~delay ?(discovery_lag = 0.) ?(initial_edges = []) ?trace
    ?timer_label ?(scheduler = `Heap) ?(shards = 1)
    ?(partition = `Contiguous) ?(faults = []) ?(fault_seed = 0) ?corrupt_msg
    () =
  let n = Array.length clocks in
  if n = 0 then invalid_arg "Engine.create: no nodes";
  if discovery_lag < 0. then invalid_arg "Engine.create: negative discovery lag";
  if shards < 1 then invalid_arg "Engine.create: need at least one shard";
  (match Fault.validate ~n faults with
  | Ok () -> ()
  | Error m -> invalid_arg ("Engine.create: " ^ m));
  let fault_state =
    match faults with
    | [] -> None
    | ops ->
      Some
        {
          ops;
          fprng = Prng.of_int fault_seed;
          f_alive = Array.make n true;
          f_inc = Array.make n 0;
        }
  in
  let sched, granularity =
    match scheduler with
    | `Heap -> (Heap, 0.)
    | `Wheel granularity ->
      if timer_label = None then
        invalid_arg "Engine.create: the wheel scheduler needs ~timer_label";
      (Wheel, granularity)
  in
  let qcap = max 64 (8 * n / shards) in
  let tr = match trace with Some tr -> tr | None -> Trace.create () in
  (* Build the graph and apply the initial edges before anything else:
     the traffic-aware partitioner is seeded from the initial topology.
     The trace records and discovery events for fresh edges are emitted
     after [t] exists, in the same list order as before, so rank
     allocation is unchanged. *)
  let graph = Dyngraph.create ~n in
  let fresh_edges =
    List.filter (fun (u, v) -> Dyngraph.add_edge graph ~now:0. u v) initial_edges
  in
  let part =
    if shards = 1 then [||]
    else
      match partition with
      | `Contiguous -> contiguous_part ~n ~shards
      | `Greedy -> greedy_partition ~shards graph
      | `Explicit p ->
        if Array.length p <> n then
          invalid_arg "Engine.create: partition array length <> n";
        Array.iter
          (fun s ->
            if s < 0 || s >= shards then
              invalid_arg "Engine.create: partition entry out of range")
          p;
        Array.copy p
  in
  let mk_lane s =
    {
      ls = s;
      lf = { lnow = 0.; lhead = infinity; lwstop = infinity };
      lpar = false;
      lcre = 0;
      ldelta = 0;
      levents = 0;
      llive = 0;
      lstale = 0;
      lcounters = Array.make Trace.kind_count 0;
      bt = [||];
      bk = [||];
      ba = [||];
      bb = [||];
      bc = [||];
      blen = 0;
      mt = [||];
      mseq = [||];
      mcre = [||];
      ment = [||];
      mlen = 0;
      lfinal = [||];
      lmerged = 0;
    }
  in
  let lanes = Array.init shards mk_lane in
  let t =
    {
      n;
      clocks;
      delay;
      discovery_lag;
      graph;
      shards;
      part;
      queues = Array.init shards (fun _ -> Equeue.create ~capacity:qcap ());
      outboxes = Array.init shards (fun _ -> Outbox.create ());
      inboxes = Array.init shards (fun _ -> Equeue.create ~capacity:16 ());
      wheels =
        (match sched with
        | Heap -> [||]
        | Wheel -> Array.init shards (fun _ -> Timewheel.create ~granularity ()));
      lanes;
      control = Equeue.create ~capacity:64 ();
      trace = tr;
      handlers = Array.make n None;
      timer_label;
      sched;
      timers =
        (match sched with
        | Heap -> Array.init n (fun _ -> Hashtbl.create 8)
        | Wheel -> [||]);
      armed =
        (match sched with
        | Heap -> [||]
        | Wheel -> Array.init n (fun _ -> Armed.create ()));
      absence_pending = Array.init n (fun _ -> Iset.create ());
      fifo = Array.init n (fun _ -> Fifo_store.create ());
      gens = Array.make n 0;
      next_seq = 0;
      fs = { now = 0.; cand_time = infinity; whorizon = infinity };
      started = false;
      ctrl_events = 0;
      cand_seq = max_int;
      cand_shard = -1;
      cand_wheel = false;
      cand_ctrl = false;
      par_ok =
        shards > 1 && delay.Delay.pure
        && delay.Delay.min_lat > 0.
        && fault_state = None
        && not (Trace.streams tr);
      log_on = Trace.wants_entries tr;
      executor = None;
      lane_thunks = [||];
      w_member = Array.make shards false;
      w_members = Array.make shards lanes.(0);
      w_mn = 0;
      w_actives = Array.make shards lanes.(0);
      in_cb = false;
      cb_lane = lanes.(0);
      faults = fault_state;
      corrupt_msg;
      restart_handlers = Array.make n None;
      tie_break = None;
      tb =
        {
          tb_seq = [||];
          tb_kind = [||];
          tb_a = [||];
          tb_b = [||];
          tb_c = [||];
          tb_d = [||];
          tb_payload = [||];
          tb_len = 0;
        };
    }
  in
  List.iter
    (fun (u, v) ->
      let epoch = Dyngraph.epoch t.graph u v in
      (* Record the initial topology so an offline trace replay knows the
         full edge history, not just the changes scheduled later. *)
      Trace.record t.trace ~time:0. Edge_add u v (-1);
      (* Initial topology is known immediately. *)
      push_ev t ~owner:u ~time:0. ~kind:k_discover_add ~a:u ~b:v ~c:epoch ~d:0
        no_payload;
      push_ev t ~owner:v ~time:0. ~kind:k_discover_add ~a:v ~b:u ~c:epoch ~d:0
        no_payload)
    fresh_edges;
  (* Crash/restart ops flow through the shared queues as first-class
     events: both schedulers pop them at identical (time, seq) ranks, so
     fault timing can never desynchronize the heap and wheel traces. *)
  List.iter
    (fun op ->
      match op with
      | Fault.Crash { node; at } ->
        push_ev t ~owner:node ~time:at ~kind:k_crash ~a:node ~b:0 ~c:0 ~d:0
          no_payload
      | Fault.Restart { node; at; corrupt } ->
        push_ev t ~owner:node ~time:at ~kind:k_restart ~a:node
          ~b:(if corrupt then 1 else 0)
          ~c:0 ~d:0 no_payload
      | Fault.Duplicate _ | Fault.Reorder _ | Fault.Byzantine _ -> ())
    (List.stable_sort
       (fun a b -> Float.compare (Fault.op_time a) (Fault.op_time b))
       faults);
  t

(* Growth: every per-node table doubles in place so nodes can join a
   running engine. The graph grows through [Dyngraph.add_node]. *)
let ensure_nodes t n' =
  let cap = Array.length t.handlers in
  if n' > cap then begin
    let cap' = max n' (2 * cap) in
    let grow_opt a =
      let a' = Array.make cap' None in
      Array.blit a 0 a' 0 cap;
      a'
    in
    t.handlers <- grow_opt t.handlers;
    t.restart_handlers <- grow_opt t.restart_handlers;
    let grow_make a fresh =
      Array.init cap' (fun i -> if i < cap then a.(i) else fresh ())
    in
    t.absence_pending <- grow_make t.absence_pending Iset.create;
    t.fifo <- grow_make t.fifo Fifo_store.create;
    let gens' = Array.make cap' 0 in
    Array.blit t.gens 0 gens' 0 cap;
    t.gens <- gens';
    (match t.sched with
    | Heap -> t.timers <- grow_make t.timers (fun () -> Hashtbl.create 8)
    | Wheel -> t.armed <- grow_make t.armed Armed.create);
    match t.faults with
    | None -> ()
    | Some f ->
      let alive' = Array.make cap' true in
      Array.blit f.f_alive 0 alive' 0 cap;
      f.f_alive <- alive';
      let inc' = Array.make cap' 0 in
      Array.blit f.f_inc 0 inc' 0 cap;
      f.f_inc <- inc'
  end

let add_node t ~clock =
  let id = Dyngraph.add_node t.graph in
  ensure_nodes t (id + 1);
  let ccap = Array.length t.clocks in
  if id >= ccap then begin
    let c' = Array.make (Array.length t.handlers) clock in
    Array.blit t.clocks 0 c' 0 ccap;
    t.clocks <- c'
  end;
  t.clocks.(id) <- clock;
  t.n <- id + 1;
  id

let handlers_of t i =
  match t.handlers.(i) with
  | Some h -> h
  | None -> invalid_arg (Printf.sprintf "Engine: node %d has no handlers installed" i)

let install t i build =
  if i < 0 || i >= t.n then invalid_arg "Engine.install: node out of range";
  if t.started then begin
    (* A node that joined mid-run installs and initializes on the spot;
       re-installing a live node's algorithm is not a thing. *)
    match t.handlers.(i) with
    | Some _ -> invalid_arg "Engine.install: engine already started"
    | None ->
      let ctx = { engine = t; id = i; lane = t.lanes.(shard_of t i) } in
      let h = build ctx in
      t.handlers.(i) <- Some h;
      h.on_init ()
  end
  else begin
    let ctx = { engine = t; id = i; lane = t.lanes.(shard_of t i) } in
    t.handlers.(i) <- Some (build ctx)
  end

let trace_label t timer =
  match t.timer_label with Some encode -> encode timer | None -> -1

(* Node-side API ----------------------------------------------------- *)

let node_id ctx = ctx.id

let node_count ctx = ctx.engine.n

let on_restart ctx h =
  ctx.engine.restart_handlers.(ctx.id) <- Some h

let alive t i =
  match t.faults with None -> true | Some f -> f.f_alive.(i)

(* A node's view of "now": its lane's current event time inside a
   parallel window, the engine's global time otherwise (equal to the
   dispatching event's time on the sequential path). *)
let[@inline] node_now ctx =
  if ctx.lane.lpar then ctx.lane.lf.lnow else ctx.engine.fs.now

(* Forced inline: a non-inlined call returning [float] boxes its result
   at every call site, and this runs several times per dispatched event
   (receive, adjust-clock, send-update). Inlined, the [Hwclock.value]
   arithmetic stays on unboxed floats end to end. *)
let[@inline always] hardware_clock ctx =
  Hwclock.value ctx.engine.clocks.(ctx.id) (node_now ctx)

let send ctx ~dst msg =
  let t = ctx.engine in
  let lane = ctx.lane in
  let src = ctx.id in
  if dst < 0 || dst >= t.n || dst = src then invalid_arg "Engine.send: bad destination";
  let now = node_now ctx in
  if Dyngraph.has_edge t.graph src dst then begin
    let epoch = Dyngraph.epoch t.graph src dst in
    (* The send carries its edge epoch so an offline auditor can pair it
       with the matching deliver/drop under the per-epoch FIFO discipline. *)
    lane_record t lane ~time:now Send src dst epoch;
    (* A Byzantine sender's outgoing messages are corrupted in flight
       during its window; the substitution is traced so auditors can
       exclude the edge from guarantee probes. (Fault injection forces
       the sequential path, so the direct records here never race.) *)
    let msg =
      match (t.faults, t.corrupt_msg) with
      | Some f, Some corrupt when Fault.byzantine f.ops ~node:src ~at:now ->
        Trace.record t.trace ~time:now Fault_byzantine_msg src dst epoch;
        corrupt ~src f.fprng msg
      | _ -> msg
    in
    if t.delay.Delay.may_drop && t.delay.Delay.drop ~src ~dst ~now then
      (* Silent loss (outside the paper's reliable-link model): no
         delivery and no discovery; only the receiver's lost-timer will
         notice the silence. *)
      lane_record t lane ~time:now Drop_lossy src dst epoch
    else begin
      let inc =
        match t.faults with None -> 0 | Some f -> f.f_inc.(src)
      in
      let reordered =
        match t.faults with
        | None -> false
        | Some f -> Fault.reordered f.ops ~src ~dst ~at:now
      in
      (* Fixed-delay policies skip the closure call: a generic
         closure-field call boxes its float result on every send. *)
      let d =
        let c = t.delay.Delay.const in
        if c >= 0. then c
        else begin
          let d = t.delay.Delay.draw ~src ~dst ~now in
          (* An out-of-range draw is clamped but loudly traced: a silent
             clamp can mask a broken adversary policy (and would quietly
             shrink the delay space an exhaustive explorer thinks it is
             covering). *)
          if d < 0. then begin
            lane_record t lane ~time:now Delay_clamped src dst epoch;
            0.
          end
          else if d > t.delay.Delay.bound then begin
            lane_record t lane ~time:now Delay_clamped src dst epoch;
            t.delay.Delay.bound
          end
          else d
        end
      in
      let deliver_at = now +. d in
      (* FIFO per directed link *and* edge epoch: never deliver before an
         earlier message of the same epoch, but a floor recorded under a
         previous life of the edge is dead — in-flight messages of that
         epoch are dropped at delivery, so nothing can be overtaken. A
         reordering fault window suspends the floor (the link stops being
         FIFO for its duration) without touching the recorded state. *)
      let fs = t.fifo.(src) in
      let i = bfind fs.Fifo_store.dst fs.Fifo_store.len dst in
      let deliver_at =
        if reordered then deliver_at
        else if i >= 0 then begin
          let floor =
            if fs.Fifo_store.epoch.(i) = epoch
               && fs.Fifo_store.deadline.(i) > deliver_at
            then fs.Fifo_store.deadline.(i)
            else deliver_at
          in
          fs.Fifo_store.epoch.(i) <- epoch;
          fs.Fifo_store.deadline.(i) <- floor;
          floor
        end
        else begin
          Fifo_store.insert fs ~at:(lnot i) dst epoch deliver_at;
          deliver_at
        end
      in
      push_from t lane ~owner:dst ~time:deliver_at ~kind:k_deliver ~a:src
        ~b:dst ~c:epoch ~d:inc (Obj.repr msg);
      (* Bounded duplication: a second copy with its own (fault-PRNG)
         delay, floored at the original's delivery so the duplicate can
         never overtake the message it copies. *)
      match t.faults with
      | Some f when Fault.duplicated f.ops ~src ~dst ~at:now ->
        Trace.record t.trace ~time:now Fault_duplicate src dst epoch;
        let d2 = Prng.float f.fprng t.delay.Delay.bound in
        let dup_at = Float.max deliver_at (now +. d2) in
        push_ev t ~owner:dst ~time:dup_at ~kind:k_deliver ~a:src ~b:dst ~c:epoch
          ~d:inc (Obj.repr msg)
      | _ -> ()
    end
  end
  else begin
    lane_record t lane ~time:now Send src dst (-1);
    lane_record t lane ~time:now Drop_no_edge src dst (-1);
    (* The model: the sender discovers the absence within D. Coalesce
       multiple failed sends into a single pending notification. *)
    if not (Iset.mem t.absence_pending.(src) dst) then begin
      Iset.add t.absence_pending.(src) dst;
      push_from t lane ~owner:src ~time:(now +. t.discovery_lag) ~kind:k_absence
        ~a:src ~b:dst ~c:0 ~d:0 no_payload
    end
  end

let set_timer ctx ~after timer =
  let t = ctx.engine in
  let lane = ctx.lane in
  if after < 0. then invalid_arg "Engine.set_timer: negative delay";
  let clock = t.clocks.(ctx.id) in
  let now = node_now ctx in
  let deadline = Hwclock.inverse clock (Hwclock.value clock now +. after) in
  let gen = t.gens.(ctx.id) in
  t.gens.(ctx.id) <- gen + 1;
  (* A re-arm supersedes the pending entry: its heap or wheel slot goes
     stale and will be discarded when it surfaces; the live count is
     unchanged. *)
  match t.sched with
  | Heap ->
    if Hashtbl.mem t.timers.(ctx.id) timer then
      lane.lstale <- lane.lstale + 1
    else lane.llive <- lane.llive + 1;
    Hashtbl.replace t.timers.(ctx.id) timer gen;
    push_from t lane ~owner:ctx.id ~time:deadline ~kind:k_timer ~a:ctx.id
      ~b:gen ~c:0 ~d:0 (Obj.repr timer)
  | Wheel ->
    let label = trace_label t timer in
    let s = t.armed.(ctx.id) in
    let i = Armed.find s label in
    if i >= 0 then begin
      lane.lstale <- lane.lstale + 1;
      s.Armed.gens.(i) <- gen;
      s.Armed.vals.(i) <- Obj.repr timer
    end
    else begin
      lane.llive <- lane.llive + 1;
      Armed.insert s ~at:(lnot i) label gen (Obj.repr timer)
    end;
    (* The tie-break rank comes from the engine's global counter (or the
       lane's provisional block inside a window) so wheel timers keep the
       exact (time, seq) position a queue push would have had. Timers
       never cross shards: a node only arms its own. *)
    let seq =
      if lane.lpar then begin
        let j = lane.lcre in
        if j > cre_mask then failwith "Engine: window rank block exhausted";
        lane.lcre <- j + 1;
        prov_flag lor (lane.ls lsl 40) lor j
      end
      else begin
        let s = t.next_seq in
        t.next_seq <- s + 1;
        s
      end
    in
    Timewheel.arm t.wheels.(lane.ls) ~node:ctx.id ~label ~gen ~seq ~deadline

let cancel_timer ctx timer =
  let t = ctx.engine in
  let lane = ctx.lane in
  match t.sched with
  | Heap ->
    if Hashtbl.mem t.timers.(ctx.id) timer then begin
      Hashtbl.remove t.timers.(ctx.id) timer;
      lane.llive <- lane.llive - 1;
      lane.lstale <- lane.lstale + 1
    end
  | Wheel ->
    let s = t.armed.(ctx.id) in
    let i = Armed.find s (trace_label t timer) in
    if i >= 0 then begin
      Armed.remove_at s i;
      lane.llive <- lane.llive - 1;
      lane.lstale <- lane.lstale + 1
    end

(* Harness-side API --------------------------------------------------- *)

let now t = t.fs.now

let graph t = t.graph

let clock t i = t.clocks.(i)

let trace t = t.trace

let shards t = t.shards

(* Why this engine cannot take the parallel dispatch path (None when it
   can). Mirrors the [par_ok] conjunction at creation, in check order,
   so `gcs_sim sim --window-stats` can explain a sequential fallback. *)
let par_blocker t =
  if t.par_ok then None
  else if t.shards <= 1 then Some "single shard"
  else if not t.delay.Delay.pure then
    Some ("impure delay policy (" ^ Delay.describe t.delay ^ ")")
  else if t.delay.Delay.min_lat <= 0. then
    Some "delay policy has zero minimum latency (no lookahead)"
  else if t.faults <> None then Some "fault injection requires sequential dispatch"
  else Some "trace entry streaming requires sequential dispatch"

let check_future t at =
  if at < t.fs.now then invalid_arg "Engine: cannot schedule in the past"

(* Topology events pre-allocate the edge's graph storage at schedule time
   ([d = 1] on success): a reserved single-shard event may then dispatch
   inside its shard's parallel window without allocating or touching
   shared arrays. An unreservable pair (out of range, self-loop) keeps
   [d = 0] and dispatches sequentially, so it raises from [add_edge] /
   [remove_edge] exactly as it always did. *)
(* The reservation mutates shared graph storage, so it must not run from
   inside a window — fail before touching the graph rather than letting
   [push_ev]'s guard fire after the damage. *)
let check_not_in_window t =
  if t.in_cb && t.cb_lane.lpar then
    failwith
      "Engine: a commuting callback scheduled a non-commuting event inside \
       a parallel window"

let schedule_edge_add t ~at u v =
  check_not_in_window t;
  check_future t at;
  let d = if Dyngraph.reserve t.graph u v then 1 else 0 in
  push_ev t ~owner:(min u v) ~time:at ~kind:k_edge_add ~a:u ~b:v ~c:0 ~d
    no_payload

let schedule_edge_remove t ~at u v =
  check_not_in_window t;
  check_future t at;
  let d = if Dyngraph.reserve t.graph u v then 1 else 0 in
  push_ev t ~owner:(min u v) ~time:at ~kind:k_edge_remove ~a:u ~b:v ~c:0 ~d
    no_payload

let at ?(commuting = false) t ~time f =
  check_future t time;
  if commuting then begin
    (* Commuting callbacks ride the lane queues (owner 0, so exactly one
       lane ever dispatches them). A commuting callback scheduling
       another from inside a window stays on its lane with a provisional
       rank; everywhere else this is a plain sequential push. *)
    if t.in_cb && t.cb_lane.lpar then begin
      if time < t.cb_lane.lf.lnow then
        invalid_arg "Engine: cannot schedule in the past";
      push_from t t.cb_lane ~owner:0 ~time ~kind:k_commute_cb ~a:0 ~b:0 ~c:0
        ~d:0 (Obj.repr f)
    end
    else
      push_ev t ~owner:0 ~time ~kind:k_commute_cb ~a:0 ~b:0 ~c:0 ~d:0
        (Obj.repr f)
  end
  else push_ev t ~owner:0 ~time ~kind:k_callback ~a:0 ~b:0 ~c:0 ~d:0 (Obj.repr f)

let events_processed t =
  let acc = ref t.ctrl_events in
  for s = 0 to t.shards - 1 do
    acc := !acc + t.lanes.(s).levents
  done;
  !acc

let queue_depth t =
  let acc = ref (Equeue.size t.control) in
  for s = 0 to t.shards - 1 do
    acc := !acc + Equeue.size t.queues.(s) + t.outboxes.(s).Outbox.len
           + Equeue.size t.inboxes.(s)
  done;
  !acc

let stale_timer_entries t =
  let acc = ref 0 in
  for s = 0 to t.shards - 1 do
    acc := !acc + t.lanes.(s).lstale
  done;
  !acc

let pending_events t =
  let wheel_entries = ref 0 in
  (match t.sched with
  | Heap -> ()
  | Wheel ->
    for s = 0 to t.shards - 1 do
      wheel_entries := !wheel_entries + Timewheel.size t.wheels.(s)
    done);
  queue_depth t + !wheel_entries - stale_timer_entries t

let live_timers t =
  let acc = ref 0 in
  for s = 0 to t.shards - 1 do
    acc := !acc + t.lanes.(s).llive
  done;
  !acc

(* Engine-owned storage in words — queues, outboxes, wheels, per-node
   tables and the graph. The scaling tests pin this to O(n + live edges);
   a pair-keyed regression would show up as O(n^2) growth here. *)
let footprint_words t =
  let acc = ref (Equeue.footprint_words t.control) in
  for s = 0 to t.shards - 1 do
    acc := !acc + Equeue.footprint_words t.queues.(s)
           + Outbox.footprint_words t.outboxes.(s)
           + Equeue.footprint_words t.inboxes.(s)
  done;
  (match t.sched with
  | Heap -> ()
  | Wheel ->
    for s = 0 to t.shards - 1 do
      acc := !acc + Timewheel.footprint_words t.wheels.(s)
    done);
  for i = 0 to t.n - 1 do
    acc := !acc + Fifo_store.footprint_words t.fifo.(i)
           + Array.length t.absence_pending.(i).Iset.keys
  done;
  (match t.sched with
  | Heap -> ()
  | Wheel ->
    for i = 0 to t.n - 1 do
      acc := !acc + (3 * Array.length t.armed.(i).Armed.labels)
    done);
  !acc + Dyngraph.footprint_words t.graph

(* Event dispatch ----------------------------------------------------- *)

let schedule_discovery t u v ~epoch ~add =
  let time = t.fs.now +. t.discovery_lag in
  let kind = if add then k_discover_add else k_discover_rm in
  push_ev t ~owner:u ~time ~kind ~a:u ~b:v ~c:epoch ~d:0 no_payload;
  push_ev t ~owner:v ~time ~kind ~a:v ~b:u ~c:epoch ~d:0 no_payload

let node_dead t node =
  match t.faults with None -> false | Some f -> not f.f_alive.(node)

(* Crash: the node loses every piece of state it owns inside the engine —
   armed timers (their heap/wheel slots go stale, surfacing later exactly
   like cancelled timers do, so both schedulers stay in lockstep) and its
   outgoing FIFO floors (everything it had in flight is dropped at
   delivery by the incarnation check, so clearing the floors cannot let a
   post-restart message overtake a delivery that actually happens). *)
let apply_crash t f node =
  Trace.record t.trace ~time:t.fs.now Fault_crash node (-1) (-1);
  f.f_alive.(node) <- false;
  f.f_inc.(node) <- f.f_inc.(node) + 1;
  let lane = t.lanes.(shard_of t node) in
  (match t.sched with
  | Heap ->
    let tbl = t.timers.(node) in
    let k = Hashtbl.length tbl in
    Hashtbl.reset tbl;
    lane.llive <- lane.llive - k;
    lane.lstale <- lane.lstale + k
  | Wheel ->
    let s = t.armed.(node) in
    let k = s.Armed.len in
    for i = 0 to k - 1 do
      s.Armed.vals.(i) <- Armed.dummy
    done;
    s.Armed.len <- 0;
    lane.llive <- lane.llive - k;
    lane.lstale <- lane.lstale + k);
  t.fifo.(node).Fifo_store.len <- 0

let apply_restart t f node ~corrupt =
  f.f_alive.(node) <- true;
  Trace.record t.trace ~time:t.fs.now Fault_restart node (-1) (-1);
  let corrupt_prng =
    if corrupt then begin
      Trace.record t.trace ~time:t.fs.now Fault_corrupt node (-1) (-1);
      Some f.fprng
    end
    else None
  in
  (match t.restart_handlers.(node) with
  | Some h -> h ~corrupt:corrupt_prng
  | None -> ());
  (* The restarted node relearns its current neighborhood within the
     discovery lag, as if every incident edge had just appeared to it. *)
  List.iter
    (fun peer ->
      let epoch = Dyngraph.epoch t.graph node peer in
      push_ev t ~owner:node ~time:(t.fs.now +. t.discovery_lag)
        ~kind:k_discover_add ~a:node ~b:peer ~c:epoch ~d:0 no_payload)
    (Dyngraph.neighbors t.graph node)

(* Dispatch the event latched in [q]'s registers (everything except
   k_timer, which [run_queue_event] handles for the staleness check).
   [lane] is the owner's lane; node-addressed kinds may run inside a
   parallel window, in which case [now] is the lane's event time and all
   records buffer. Faults and plain callbacks are only ever dispatched
   sequentially: under sharding they live in the control queue, and at
   one shard there are no windows. Topology events whose edge was
   reserved and is internal to one shard, and commuting callbacks, may
   additionally dispatch inside that shard's window — their branches
   check [lane.lpar]. *)
let dispatch t lane q kind =
  let now = if lane.lpar then lane.lf.lnow else t.fs.now in
  if kind = k_deliver then begin
    let src = Equeue.ev_a q
    and dst = Equeue.ev_b q
    and epoch = Equeue.ev_c q
    and inc = Equeue.ev_d q in
    let crash_lost =
      match t.faults with
      | None -> false
      | Some f ->
        (* The message is lost if the receiver is down or the sender
           crashed after sending it (its incarnation moved on): a crash
           severs the node from the network, in both directions. *)
        (not f.f_alive.(dst)) || inc <> f.f_inc.(src)
    in
    if crash_lost then lane_record t lane ~time:now Drop_lossy src dst epoch
    else if
      Dyngraph.has_edge t.graph src dst && Dyngraph.epoch t.graph src dst = epoch
    then begin
      lane_record t lane ~time:now Deliver src dst epoch;
      (handlers_of t dst).on_receive src (Obj.obj (Equeue.ev_payload q))
    end
    else lane_record t lane ~time:now Drop_in_flight src dst epoch
  end
  else if kind = k_discover_add || kind = k_discover_rm then begin
    let node = Equeue.ev_a q
    and peer = Equeue.ev_b q
    and epoch = Equeue.ev_c q in
    (* Deliver only if this is still the edge's latest change (a change
       reversed within the lag is superseded by its reversal's own
       discovery) and the observer is up — a crashed node observes
       nothing; it relearns its neighborhood after restarting. *)
    if node_dead t node then
      lane_record t lane ~time:now Discover_stale node peer epoch
    else if Dyngraph.epoch t.graph node peer = epoch then begin
      if kind = k_discover_add then begin
        lane_record t lane ~time:now Discover_add node peer epoch;
        (handlers_of t node).on_discover_add peer
      end
      else begin
        lane_record t lane ~time:now Discover_remove node peer epoch;
        (handlers_of t node).on_discover_remove peer
      end
    end
    else lane_record t lane ~time:now Discover_stale node peer epoch
  end
  else if kind = k_absence then begin
    let node = Equeue.ev_a q and peer = Equeue.ev_b q in
    Iset.remove t.absence_pending.(node) peer;
    if node_dead t node then
      lane_record t lane ~time:now Discover_stale node peer (-1)
    else if not (Dyngraph.has_edge t.graph node peer) then begin
      lane_record t lane ~time:now Discover_remove node peer (-1);
      (handlers_of t node).on_discover_remove peer
    end
    else lane_record t lane ~time:now Discover_stale node peer (-1)
  end
  else if kind = k_edge_add then begin
    let u = Equeue.ev_a q and v = Equeue.ev_b q in
    if lane.lpar then begin
      (* Reserved single-shard edge, dispatched inside the owning lane's
         window: the flip writes only lane-owned cells (both endpoints
         live here), discoveries stay in-lane, and the live-edge count is
         settled at the barrier. *)
      if Dyngraph.flip_add t.graph ~now u v then begin
        lane.ldelta <- lane.ldelta + 1;
        lane_record t lane ~time:now Edge_add u v (-1);
        let epoch = Dyngraph.epoch t.graph u v in
        let dt = now +. t.discovery_lag in
        push_from t lane ~owner:u ~time:dt ~kind:k_discover_add ~a:u ~b:v
          ~c:epoch ~d:0 no_payload;
        push_from t lane ~owner:v ~time:dt ~kind:k_discover_add ~a:v ~b:u
          ~c:epoch ~d:0 no_payload
      end
    end
    else if Dyngraph.add_edge t.graph ~now:t.fs.now u v then begin
      Trace.record t.trace ~time:t.fs.now Edge_add u v (-1);
      schedule_discovery t u v ~epoch:(Dyngraph.epoch t.graph u v) ~add:true
    end
  end
  else if kind = k_edge_remove then begin
    let u = Equeue.ev_a q and v = Equeue.ev_b q in
    if lane.lpar then begin
      if Dyngraph.flip_remove t.graph u v then begin
        lane.ldelta <- lane.ldelta - 1;
        lane_record t lane ~time:now Edge_remove u v (-1);
        Fifo_store.remove t.fifo.(u) v;
        Fifo_store.remove t.fifo.(v) u;
        let epoch = Dyngraph.epoch t.graph u v in
        let dt = now +. t.discovery_lag in
        push_from t lane ~owner:u ~time:dt ~kind:k_discover_rm ~a:u ~b:v
          ~c:epoch ~d:0 no_payload;
        push_from t lane ~owner:v ~time:dt ~kind:k_discover_rm ~a:v ~b:u
          ~c:epoch ~d:0 no_payload
      end
    end
    else if Dyngraph.remove_edge t.graph ~now:t.fs.now u v then begin
      Trace.record t.trace ~time:t.fs.now Edge_remove u v (-1);
      (* The FIFO floors of the removed edge belong to a finished epoch:
         drop them so a later re-add starts fresh instead of queueing new
         messages behind the dead epoch's last delivery time. *)
      Fifo_store.remove t.fifo.(u) v;
      Fifo_store.remove t.fifo.(v) u;
      schedule_discovery t u v ~epoch:(Dyngraph.epoch t.graph u v) ~add:false
    end
  end
  else if kind = k_crash then begin
    match t.faults with
    | Some f -> apply_crash t f (Equeue.ev_a q)
    | None -> assert false
  end
  else if kind = k_restart then begin
    match t.faults with
    | Some f -> apply_restart t f (Equeue.ev_a q) ~corrupt:(Equeue.ev_b q = 1)
    | None -> assert false
  end
  else if kind = k_callback then (Obj.obj (Equeue.ev_payload q) : unit -> unit) ()
  else if kind = k_commute_cb then begin
    (* Commuting callback: always owner 0, so only shard_of(0)'s lane
       ever reaches this branch — [in_cb]/[cb_lane] are single-writer. *)
    t.cb_lane <- lane;
    t.in_cb <- true;
    (Obj.obj (Equeue.ev_payload q) : unit -> unit) ();
    t.in_cb <- false
  end
  else assert false

let start t =
  if not t.started then begin
    t.started <- true;
    for i = 0 to t.n - 1 do
      (handlers_of t i).on_init ()
    done
  end

(* A wheel entry just surfaced: fire it if it still holds the armed
   generation for its label, otherwise it was superseded or cancelled
   after being armed — same lazy discard, and at the same instant, as the
   heap path's stale-slot check, which is what keeps the two schedulers'
   traces byte-identical. *)
let wheel_timer t lane ~node ~label ~gen =
  let now = if lane.lpar then lane.lf.lnow else t.fs.now in
  let s = t.armed.(node) in
  let i = Armed.find s label in
  if i >= 0 && s.Armed.gens.(i) = gen then begin
    let timer = Obj.obj s.Armed.vals.(i) in
    Armed.remove_at s i;
    lane.llive <- lane.llive - 1;
    lane.levents <- lane.levents + 1;
    lane_record t lane ~time:now Timer_fire node label (-1);
    (handlers_of t node).on_timer timer
  end
  else begin
    lane.lstale <- lane.lstale - 1;
    lane_record t lane ~time:now Timer_stale node label (-1)
  end

(* A queue event just popped into [q]'s registers. Heap-mode timer
   entries resolve staleness here — cancelled or superseded slots are
   bookkeeping garbage, not events: they don't count as processed and
   never reach a handler. *)
let run_queue_event t lane q =
  let kind = Equeue.ev_kind q in
  if kind = k_timer then begin
    let now = if lane.lpar then lane.lf.lnow else t.fs.now in
    let node = Equeue.ev_a q and gen = Equeue.ev_b q in
    let timer = Obj.obj (Equeue.ev_payload q) in
    let stale =
      match Hashtbl.find t.timers.(node) timer with
      | live -> live <> gen
      | exception Not_found -> true
    in
    if stale then begin
      lane.lstale <- lane.lstale - 1;
      lane_record t lane ~time:now Timer_stale node (trace_label t timer) (-1)
    end
    else begin
      Hashtbl.remove t.timers.(node) timer;
      lane.llive <- lane.llive - 1;
      lane.levents <- lane.levents + 1;
      lane_record t lane ~time:now Timer_fire node (trace_label t timer) (-1);
      (handlers_of t node).on_timer timer
    end
  end
  else begin
    lane.levents <- lane.levents + 1;
    dispatch t lane q kind
  end

let set_tie_break t hook =
  (match hook with
  | Some _ when t.sched <> Heap || t.shards <> 1 ->
    invalid_arg
      "Engine.set_tie_break: the hook requires the heap scheduler and a \
       single shard"
  | _ -> ());
  t.tie_break <- hook

let tb_push tb ~seq ~kind ~a ~b ~c ~d payload =
  let cap = Array.length tb.tb_seq in
  if tb.tb_len = cap then begin
    let ncap = if cap = 0 then 8 else 2 * cap in
    let grow arr =
      let n = Array.make ncap 0 in
      Array.blit arr 0 n 0 tb.tb_len;
      n
    in
    tb.tb_seq <- grow tb.tb_seq;
    tb.tb_kind <- grow tb.tb_kind;
    tb.tb_a <- grow tb.tb_a;
    tb.tb_b <- grow tb.tb_b;
    tb.tb_c <- grow tb.tb_c;
    tb.tb_d <- grow tb.tb_d;
    let np = Array.make ncap no_payload in
    Array.blit tb.tb_payload 0 np 0 tb.tb_len;
    tb.tb_payload <- np
  end;
  let i = tb.tb_len in
  tb.tb_seq.(i) <- seq;
  tb.tb_kind.(i) <- kind;
  tb.tb_a.(i) <- a;
  tb.tb_b.(i) <- b;
  tb.tb_c.(i) <- c;
  tb.tb_d.(i) <- d;
  tb.tb_payload.(i) <- payload;
  tb.tb_len <- i + 1

(* With a tie-break hook installed, every event due at the candidate
   instant is popped into scratch and the hook picks which one dispatches
   next. The group is re-pushed with the chosen event's seq lowered to -1
   (below every allocated rank, so the following [Equeue.pop] surfaces it)
   while the others keep their original seqs. The hook is consulted again
   before each subsequent dispatch at the instant — including any events
   the chosen handler just scheduled at the same time — so repeated calls
   enumerate every permutation of a same-instant group one choice at a
   time. Groups of one dispatch without consulting the hook. *)
let tie_break_pop t q pick =
  let tm = Equeue.next_time q in
  let tb = t.tb in
  tb.tb_len <- 0;
  while (not (Equeue.is_empty q)) && Equeue.next_time q = tm do
    let seq = Equeue.top_seq q in
    Equeue.pop q;
    tb_push tb ~seq ~kind:(Equeue.ev_kind q) ~a:(Equeue.ev_a q)
      ~b:(Equeue.ev_b q) ~c:(Equeue.ev_c q) ~d:(Equeue.ev_d q)
      (Equeue.ev_payload q);
    Equeue.release q
  done;
  let k = tb.tb_len in
  let j = pick k in
  if j < 0 || j >= k then
    invalid_arg "Engine tie-break hook returned an out-of-range choice";
  for i = 0 to k - 1 do
    let seq = if i = j then -1 else tb.tb_seq.(i) in
    Equeue.push q ~time:tm ~seq ~kind:tb.tb_kind.(i) ~a:tb.tb_a.(i)
      ~b:tb.tb_b.(i) ~c:tb.tb_c.(i) ~d:tb.tb_d.(i) tb.tb_payload.(i);
    tb.tb_payload.(i) <- no_payload
  done

(* Pick the earliest (time, seq) candidate across every shard's queue and
   wheel — and the control queue — into the [cand_*] scratch fields. The
   per-shard wheel is only resolved up to its own queue head (or the
   horizon) — the same lazy bound the single-shard loop used. Each lane's
   own earliest time is recorded in [lhead] for the window gate. *)
let select t ~horizon =
  t.fs.cand_time <- infinity;
  t.cand_seq <- max_int;
  t.cand_shard <- -1;
  t.cand_wheel <- false;
  t.cand_ctrl <- false;
  for s = 0 to t.shards - 1 do
    let q = t.queues.(s) in
    let qt = Equeue.next_time q in
    let qseq = Equeue.top_seq q in
    let wheel_wins =
      match t.sched with
      | Heap -> false
      | Wheel ->
        let w = t.wheels.(s) in
        let bound = if qt < horizon then qt else horizon in
        Timewheel.peek w ~upto:bound
        && (Timewheel.top_time w < qt || Timewheel.top_seq w < qseq)
    in
    if wheel_wins then begin
      let w = t.wheels.(s) in
      let wt = Timewheel.top_time w and wseq = Timewheel.top_seq w in
      t.lanes.(s).lf.lhead <- wt;
      if wt < t.fs.cand_time || (wt = t.fs.cand_time && wseq < t.cand_seq)
      then begin
        t.fs.cand_time <- wt;
        t.cand_seq <- wseq;
        t.cand_shard <- s;
        t.cand_wheel <- true
      end
    end
    else begin
      t.lanes.(s).lf.lhead <- qt;
      if qt < t.fs.cand_time || (qt = t.fs.cand_time && qseq < t.cand_seq)
      then begin
        t.fs.cand_time <- qt;
        t.cand_seq <- qseq;
        t.cand_shard <- s;
        t.cand_wheel <- false
      end
    end
  done;
  if t.shards > 1 then begin
    let ct = Equeue.next_time t.control in
    let cseq = Equeue.top_seq t.control in
    if ct < t.fs.cand_time || (ct = t.fs.cand_time && cseq < t.cand_seq)
    then begin
      t.fs.cand_time <- ct;
      t.cand_seq <- cseq;
      t.cand_shard <- -1;
      t.cand_wheel <- false;
      t.cand_ctrl <- true
    end
  end

(* Dispatch the selected candidate sequentially — the traditional path,
   and the only one control events, fault runs, impure delay policies and
   tie-break enumeration ever take. *)
let seq_step t =
  t.fs.now <- t.fs.cand_time;
  if t.cand_ctrl then begin
    let q = t.control in
    Equeue.pop q;
    t.ctrl_events <- t.ctrl_events + 1;
    (* Control kinds never include k_timer; any lane serves as the
       (sequential) record context, but crash bookkeeping inside picks
       the node's own lane. *)
    dispatch t t.lanes.(0) q (Equeue.ev_kind q);
    Equeue.release q
  end
  else begin
    let s = t.cand_shard in
    let lane = t.lanes.(s) in
    if t.cand_wheel then begin
      let w = t.wheels.(s) in
      let node = Timewheel.top_node w
      and label = Timewheel.top_label w
      and gen = Timewheel.top_gen w in
      Timewheel.pop w;
      wheel_timer t lane ~node ~label ~gen
    end
    else begin
      let q = t.queues.(s) in
      (match t.tie_break with
      | Some pick -> tie_break_pop t q pick
      | None -> ());
      Equeue.pop q;
      run_queue_event t lane q;
      Equeue.release q
    end
  end

(* One lane's share of a parallel dispatch window: drain the lane's own
   queue and wheel strictly below the window end (and at most to the
   horizon), logging one mark per dispatch. Runs on its own domain; it
   only touches lane-owned state, performs pure reads of the graph and
   clocks, and routes cross-lane creations through the lane's outbox. *)
let lane_window_loop t lane ~wstop ~horizon =
  let s = lane.ls in
  let q = t.queues.(s) in
  let ib = t.inboxes.(s) in
  let continue_ = ref true in
  while !continue_ do
    if lane.lcre >= cre_mask - cre_slack then
      (* Rank block nearly exhausted: stop and let the barrier re-open a
         fresh window (unreachable in practice — 2^40 creations). *)
      continue_ := false
    else begin
      let qt = Equeue.next_time q in
      let wheel_wins =
        match t.sched with
        | Heap -> false
        | Wheel ->
          let w = t.wheels.(s) in
          let bound = Float.min qt (Float.min wstop horizon) in
          Timewheel.peek w ~upto:bound
          && (Timewheel.top_time w < qt || Timewheel.top_seq w < Equeue.top_seq q)
      in
      let ibt = Equeue.next_time ib in
      let inbox_wins =
        (* Relayed cross-shard events carry final ranks; an exact-time
           tie against an own provisional head resolves through
           [lfinal] when the creation is merged ([lmerged]), and falls
           to the inbox otherwise — an unmerged creation postdates the
           relay that ranked the inbox head, so its final rank is
           provably larger. *)
        let own_t =
          if wheel_wins then Timewheel.top_time t.wheels.(s) else qt
        in
        ibt < own_t
        || ibt = own_t && ibt < wstop
           &&
           let own_seq =
             if wheel_wins then Timewheel.top_seq t.wheels.(s)
             else Equeue.top_seq q
           in
           let f = Equeue.top_seq ib in
           if own_seq < prov_flag then f < own_seq
           else
             let j = own_seq land cre_mask in
             j >= lane.lmerged || f < lane.lfinal.(j)
      in
      if inbox_wins then begin
        if ibt < wstop && ibt <= horizon then begin
          lane_mark lane ~time:ibt ~seq:(Equeue.top_seq ib);
          Equeue.pop ib;
          lane.lf.lnow <- ibt;
          run_queue_event t lane ib;
          Equeue.release ib
        end
        else continue_ := false
      end
      else if wheel_wins then begin
        let w = t.wheels.(s) in
        let et = Timewheel.top_time w in
        if et < wstop && et <= horizon then begin
          let node = Timewheel.top_node w
          and label = Timewheel.top_label w
          and gen = Timewheel.top_gen w in
          lane_mark lane ~time:et ~seq:(Timewheel.top_seq w);
          Timewheel.pop w;
          lane.lf.lnow <- et;
          wheel_timer t lane ~node ~label ~gen
        end
        else continue_ := false
      end
      else if qt < wstop && qt <= horizon then begin
        lane_mark lane ~time:qt ~seq:(Equeue.top_seq q);
        Equeue.pop q;
        lane.lf.lnow <- qt;
        run_queue_event t lane q;
        Equeue.release q
      end
      else continue_ := false
    end
  done

(* The merge barrier: replay the member lanes' dispatch logs in the
   global (time, rank) order — exactly the order the sequential loop
   would have dispatched them — assigning each window creation the dense
   final rank the sequential run's counter would have produced, and
   appending the buffered trace entries in that same order. A
   provisional rank is always resolvable when it matters: its creator
   dispatched earlier in the same lane's log, so by the time the mark
   can win the merge its final rank was already assigned (a stale read
   during the scan can only involve a mark that loses on time anyway).

   Instead of re-ranking one mark at a time, the merge consumes marks in
   per-lane runs: once a lane's head wins, every following mark of that
   lane strictly below the other lanes' earliest head time must also win
   — no rank comparison can reorder across a strict time gap — so the
   run's creations take a contiguous block of final ranks in one pass
   and its trace entries replay in one sweep. With few, large windows
   (adaptive extension) most of a window's marks fall in a handful of
   runs, which is what makes the barrier cheap. Returns the number of
   marks merged. *)
let barrier_merge t =
  let k = t.w_mn in
  let members = t.w_members in
  let heads = Array.make k 0 in
  for x = 0 to k - 1 do
    let lane = members.(x) in
    if Array.length lane.lfinal < lane.lcre then begin
      (* Grow preserving assigned ranks: queue entries created before an
         earlier relay still carry provisional seqs indexing them. The
         table spans a whole window group (relays do not reset [lcre]),
         so grow 4x to keep the realloc-and-blit cost sublinear. *)
      let a = Array.make (max 1024 (4 * lane.lcre)) 0 in
      Array.blit lane.lfinal 0 a 0 (Array.length lane.lfinal);
      lane.lfinal <- a
    end
  done;
  let resolve lane seq =
    if seq >= prov_flag then lane.lfinal.(seq land cre_mask) else seq
  in
  let merged = ref 0 in
  let running = ref true in
  while !running do
    let best = ref (-1) in
    let best_t = ref infinity in
    let best_s = ref max_int in
    for x = 0 to k - 1 do
      let lane = members.(x) in
      let h = heads.(x) in
      if h < lane.mlen then begin
        let tm = lane.mt.(h) in
        if tm < !best_t then begin
          best := x;
          best_t := tm;
          best_s := resolve lane lane.mseq.(h)
        end
        else if tm = !best_t then begin
          let sq = resolve lane lane.mseq.(h) in
          if sq < !best_s then begin
            best := x;
            best_s := sq
          end
        end
      end
    done;
    if !best < 0 then running := false
    else begin
      let x = !best in
      let lane = members.(x) in
      let h0 = heads.(x) in
      (* Earliest head time among the other lanes bounds the run. *)
      let stop = ref infinity in
      for y = 0 to k - 1 do
        if y <> x then begin
          let l2 = members.(y) in
          let h2 = heads.(y) in
          if h2 < l2.mlen && l2.mt.(h2) < !stop then stop := l2.mt.(h2)
        end
      done;
      let stop = !stop in
      let hend = ref (h0 + 1) in
      while !hend < lane.mlen && lane.mt.(!hend) < stop do incr hend done;
      let hend = !hend in
      let cre0 = lane.mcre.(h0) in
      let cre1 = if hend < lane.mlen then lane.mcre.(hend) else lane.lcre in
      let fin = lane.lfinal in
      let base = t.next_seq - cre0 in
      for j = cre0 to cre1 - 1 do
        Array.unsafe_set fin j (base + j)
      done;
      t.next_seq <- base + cre1;
      if t.log_on then begin
        let e1 = if hend < lane.mlen then lane.ment.(hend) else lane.blen in
        for e = lane.ment.(h0) to e1 - 1 do
          Trace.append_entry t.trace ~time:lane.bt.(e)
            (Trace.kind_of_index lane.bk.(e))
            lane.ba.(e) lane.bb.(e) lane.bc.(e)
        done
      end;
      merged := !merged + (hend - h0);
      heads.(x) <- hend
    end
  done;
  !merged

(* Mid-group relay (DESIGN §14): deliver pending cross-shard events
   without closing the window group. At a round boundary every logged
   mark lies strictly below every outbox entry's time (an entry lands at
   or beyond the stop of the round that created it), so the merge can
   consume the members' full dispatch logs — assigning every creation so
   far its exact final rank — after which each outbox entry's
   provisional rank resolves and the entry can be flushed into the
   destination shard's inbox. The group then keeps extending: queues and
   wheels keep their provisional ranks (the eventual barrier still
   remaps them), consumed logs reset, and [lmerged] records how far the
   final-rank table is valid so the dispatch loop can break exact-time
   ties between an inbox head and a provisional head. Successive relays
   are time-monotone (round r+1's marks all lie at or beyond round r's
   stop), so ranks and replayed trace entries stay in global order.
   Returns the number of marks merged. *)
let relay t =
  let merged = barrier_merge t in
  for x = 0 to t.w_mn - 1 do
    let lane = t.w_members.(x) in
    lane.lmerged <- lane.lcre;
    lane.mlen <- 0;
    lane.blen <- 0;
    let ob = t.outboxes.(lane.ls) in
    if ob.Outbox.len > 0 then begin
      Trace.note_cross t.trace ob.Outbox.len;
      let seqs = ob.Outbox.seqs and fin = lane.lfinal in
      for i = 0 to ob.Outbox.len - 1 do
        let s = seqs.(i) in
        if s >= prov_flag then seqs.(i) <- fin.(s land cre_mask)
      done;
      Outbox.flush ob t.inboxes
    end
  done;
  merged

(* A lane's earliest pending time, mirroring [select]'s per-shard logic
   (wheel resolved lazily up to the queue head or the horizon) plus the
   lane's inbox. Used to refresh lanes' [lhead] between the rounds of a
   window group — lanes that are neither members nor relay destinations
   keep the value [select] computed, which stays valid because nothing
   is pushed to them while the group runs. *)
let shard_head t s ~horizon =
  let q = t.queues.(s) in
  let qt = Equeue.next_time q in
  let own =
    match t.sched with
    | Heap -> qt
    | Wheel ->
      let w = t.wheels.(s) in
      let bound = if qt < horizon then qt else horizon in
      if Timewheel.peek w ~upto:bound && Timewheel.top_time w < qt then
        Timewheel.top_time w
      else qt
  in
  let ib = Equeue.next_time t.inboxes.(s) in
  if ib < own then ib else own

(* Run one window group — one or more dispatch rounds under a single
   merge barrier — then merge: rewrite every provisional rank (queues,
   wheels, outboxes) to its final rank, flush the outboxes, fold the
   buffered counters and deltas, and reset the lanes. After the barrier
   the engine state is exactly what the sequential loop would have
   produced at this point.

   Adaptive extension (DESIGN §14): after a round drains every active
   lane below the round stop, the lookahead argument can be replayed
   from the new frontier — any event a future dispatch creates lands at
   least [min_lat] after the earliest pending event time [e]. Pending
   cross-shard events do not cut the group off: [relay] resolves their
   final ranks (every mark so far is mergeable) and delivers them into
   the destination inboxes mid-group. So as long as no control event
   (order-sensitive, dispatched sequentially) falls at or below the
   proposed stop, the group extends to [min (e + min_lat) limit] and
   runs another round without paying a barrier — on a steady workload
   the group spans the whole stretch to the next control event or the
   horizon, paying one barrier where PR 8 paid one per [min_lat]. The
   extension decision uses only engine state, never the executor, so the
   round structure (and the trace) is identical at every domain
   count. *)
let run_window t ~wstop ~horizon =
  let tr = t.trace in
  t.fs.whorizon <- horizon;
  t.w_mn <- 0;
  (match t.executor with
  | Some _ when Array.length t.lane_thunks <> t.shards ->
    t.lane_thunks <-
      Array.init t.shards (fun s ->
          let lane = t.lanes.(s) in
          fun () ->
            lane_window_loop t lane ~wstop:lane.lf.lwstop
              ~horizon:t.fs.whorizon)
  | _ -> ());
  let round_start = ref t.fs.cand_time in
  let round_stop = ref wstop in
  let merged_acc = ref 0 in
  let rounds = ref true in
  while !rounds do
    (* Collect the lanes with work strictly below the round stop; lanes
       join the member set the first round they activate. *)
    let na = ref 0 in
    for s = 0 to t.shards - 1 do
      let lane = t.lanes.(s) in
      let lh = lane.lf.lhead in
      if lh < !round_stop && lh <= horizon then begin
        t.w_actives.(!na) <- lane;
        incr na;
        if not t.w_member.(s) then begin
          t.w_member.(s) <- true;
          t.w_members.(t.w_mn) <- lane;
          t.w_mn <- t.w_mn + 1
        end;
        lane.lpar <- true;
        lane.lf.lwstop <- !round_stop
      end
    done;
    (match t.executor with
    | Some exec when !na > 1 ->
      exec (Array.init !na (fun i -> t.lane_thunks.(t.w_actives.(i).ls)))
    | _ ->
      for i = 0 to !na - 1 do
        lane_window_loop t t.w_actives.(i) ~wstop:!round_stop ~horizon
      done);
    Trace.note_window tr ~span:(Float.min !round_stop horizon -. !round_start);
    (* Relay pending cross-shard events, then try to extend: only a
       control event (order-sensitive, dispatched sequentially) or the
       horizon cuts the group off — cross-shard traffic is resolved and
       delivered in flight instead of forcing a barrier. *)
    let have_ob = ref false in
    for x = 0 to t.w_mn - 1 do
      if t.outboxes.(t.w_members.(x).ls).Outbox.len > 0 then have_ob := true
    done;
    if !have_ob then merged_acc := !merged_acc + relay t;
    (* Earliest pending event across all lanes vs. the next control
       event: members' heads moved, and a relay may have landed work on
       a lane that was idle until now. *)
    let e = ref infinity in
    for s = 0 to t.shards - 1 do
      let lane = t.lanes.(s) in
      if t.w_member.(s) || Equeue.size t.inboxes.(s) > 0 then
        lane.lf.lhead <- shard_head t s ~horizon;
      if lane.lf.lhead < !e then e := lane.lf.lhead
    done;
    let limit = Equeue.next_time t.control in
    if !e <= horizon && !e < limit then begin
      let w' = Float.min (!e +. t.delay.Delay.min_lat) limit in
      (* [w' > round_stop] is guaranteed mathematically (e >= the drained
         stop, limit > e) but guards against float rounding stalls. *)
      if w' > !round_stop then begin
        round_start := !round_stop;
        round_stop := w'
      end
      else rounds := false
    end
    else rounds := false
  done;
  let merged = !merged_acc + barrier_merge t in
  Trace.note_barrier tr ~events:merged;
  for x = 0 to t.w_mn - 1 do
    let lane = t.w_members.(x) in
    Equeue.remap_batch t.queues.(lane.ls) ~finals:lane.lfinal;
    (match t.sched with
    | Heap -> ()
    | Wheel -> Timewheel.remap_batch t.wheels.(lane.ls) ~finals:lane.lfinal);
    let ob = t.outboxes.(lane.ls) in
    if ob.Outbox.len > 0 then begin
      Trace.note_cross tr ob.Outbox.len;
      let seqs = ob.Outbox.seqs and fin = lane.lfinal in
      for i = 0 to ob.Outbox.len - 1 do
        let s = seqs.(i) in
        if s >= prov_flag then seqs.(i) <- fin.(s land cre_mask)
      done
    end;
    Trace.merge_counts tr lane.lcounters;
    Array.fill lane.lcounters 0 Trace.kind_count 0;
    if lane.ldelta <> 0 then begin
      Dyngraph.adjust_live t.graph lane.ldelta;
      lane.ldelta <- 0
    end;
    lane.lcre <- 0;
    lane.lmerged <- 0;
    lane.mlen <- 0;
    lane.blen <- 0;
    lane.lpar <- false;
    t.w_member.(lane.ls) <- false
  done;
  for x = 0 to t.w_mn - 1 do
    let ob = t.outboxes.(t.w_members.(x).ls) in
    if ob.Outbox.len > 0 then Outbox.flush ob t.queues
  done;
  (* Drain relayed-but-undispatched inbox events into the real queues:
     they already carry final ranks, and after the remap so does
     everything else, so plain pushes restore the sequential invariant.
     Any shard can hold them — a relay may target a lane that never
     activated. *)
  for s = 0 to t.shards - 1 do
    let ib = t.inboxes.(s) in
    if Equeue.size ib > 0 then begin
      let q = t.queues.(s) in
      while Equeue.size ib > 0 do
        let time = Equeue.next_time ib and seq = Equeue.top_seq ib in
        Equeue.pop ib;
        Equeue.push q ~time ~seq ~kind:(Equeue.ev_kind ib)
          ~a:(Equeue.ev_a ib) ~b:(Equeue.ev_b ib) ~c:(Equeue.ev_c ib)
          ~d:(Equeue.ev_d ib) (Equeue.ev_payload ib);
        Equeue.release ib
      done
    end
  done;
  t.fs.now <- Float.min !round_stop horizon

let set_executor t exec = t.executor <- exec

let run_until t horizon =
  if horizon < t.fs.now then invalid_arg "Engine.run_until: horizon in the past";
  start t;
  let running = ref true in
  while !running do
    select t ~horizon;
    if t.fs.cand_time <= horizon then begin
      assert (t.fs.cand_time >= t.fs.now);
      if t.par_ok && not t.cand_ctrl then begin
        (* Window gate: the first round [cand_time, wstop) must end
           strictly after it starts, stop before the next control event
           (whose dispatch is order-sensitive and sequential), and have
           at least two lanes with work — otherwise the sequential step
           is both correct and cheaper. The gate depends only on engine
           state, never on the executor, so the window structure (and
           the trace) is identical at every domain count. *)
        let ctrl_next = Equeue.next_time t.control in
        let wstop =
          Float.min (t.fs.cand_time +. t.delay.Delay.min_lat) ctrl_next
        in
        let active = ref 0 in
        for s = 0 to t.shards - 1 do
          let lh = t.lanes.(s).lf.lhead in
          if lh < wstop && lh <= horizon then incr active
        done;
        if wstop > t.fs.cand_time && !active >= 2 then
          run_window t ~wstop ~horizon
        else seq_step t
      end
      else seq_step t
    end
    else running := false
  done;
  t.fs.now <- horizon
