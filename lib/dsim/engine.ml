type ('msg, 'timer) event =
  | Edge_add of int * int
  | Edge_remove of int * int
  | Discover of { node : int; peer : int; epoch : int; add : bool }
  | Absence of { node : int; peer : int }
      (* Pending notification that a send failed because the edge is absent. *)
  | Deliver of { src : int; dst : int; epoch : int; msg : 'msg; inc : int }
      (* [inc] is the sender's incarnation at send time; a crash bumps it,
         so everything the dead incarnation had in flight is dropped. *)
  | Timer of { node : int; timer : 'timer; gen : int }
  | Fault_crash_ev of int
  | Fault_restart_ev of { node : int; corrupt : bool }
  | Callback of (unit -> unit)

(* Binary search in the first [len] cells of sorted [keys]: the index of
   [k], or [lnot] of its insertion point when absent (always negative).
   The per-node tables below are keyed by peer/label ids and are
   degree-bounded, so a branchless-ish search plus an [Array.blit] shift
   beats hashing — no key boxing, no bucket chains, cache-linear. *)
let bfind (keys : int array) len k =
  let lo = ref 0 and hi = ref len in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if keys.(mid) < k then lo := mid + 1 else hi := mid
  done;
  if !lo < len && keys.(!lo) = k then !lo else lnot !lo

(* FIFO floor of one source's outgoing links, sorted by destination:
   latest scheduled delivery time per dst, valid only for the edge epoch
   it was recorded under. Replaces a global int-keyed Hashtbl — the send
   path now touches one small per-source table instead of hashing
   [src * n + dst] into a structure shared by all n^2 directed pairs. *)
module Fifo_store = struct
  type t = {
    mutable dst : int array;
    mutable epoch : int array;
    mutable deadline : float array;
    mutable len : int;
  }

  let create () = { dst = [||]; epoch = [||]; deadline = [||]; len = 0 }

  let grow s =
    let cap = max 4 (2 * Array.length s.dst) in
    let d = Array.make cap 0
    and e = Array.make cap 0
    and dl = Array.make cap 0. in
    Array.blit s.dst 0 d 0 s.len;
    Array.blit s.epoch 0 e 0 s.len;
    Array.blit s.deadline 0 dl 0 s.len;
    s.dst <- d;
    s.epoch <- e;
    s.deadline <- dl

  let insert s ~at dst epoch deadline =
    if s.len >= Array.length s.dst then grow s;
    let tail = s.len - at in
    Array.blit s.dst at s.dst (at + 1) tail;
    Array.blit s.epoch at s.epoch (at + 1) tail;
    Array.blit s.deadline at s.deadline (at + 1) tail;
    s.dst.(at) <- dst;
    s.epoch.(at) <- epoch;
    s.deadline.(at) <- deadline;
    s.len <- s.len + 1

  let remove s dst =
    let i = bfind s.dst s.len dst in
    if i >= 0 then begin
      let tail = s.len - i - 1 in
      Array.blit s.dst (i + 1) s.dst i tail;
      Array.blit s.epoch (i + 1) s.epoch i tail;
      Array.blit s.deadline (i + 1) s.deadline i tail;
      s.len <- s.len - 1
    end
end

(* Sorted set of peers with a pending absence notice (per node). *)
module Iset = struct
  type t = { mutable keys : int array; mutable len : int }

  let create () = { keys = [||]; len = 0 }

  let mem s k = bfind s.keys s.len k >= 0

  (* Add [k]; no-op when present. *)
  let add s k =
    let i = bfind s.keys s.len k in
    if i < 0 then begin
      let at = lnot i in
      if s.len >= Array.length s.keys then begin
        let cap = max 4 (2 * Array.length s.keys) in
        let ks = Array.make cap 0 in
        Array.blit s.keys 0 ks 0 s.len;
        s.keys <- ks
      end;
      Array.blit s.keys at s.keys (at + 1) (s.len - at);
      s.keys.(at) <- k;
      s.len <- s.len + 1
    end

  let remove s k =
    let i = bfind s.keys s.len k in
    if i >= 0 then begin
      Array.blit s.keys (i + 1) s.keys i (s.len - i - 1);
      s.len <- s.len - 1
    end
end

(* One node's armed timers under the wheel scheduler, sorted by encoded
   label: the live generation plus the ['timer] value to hand back to
   [on_timer] when the wheel entry surfaces. Values are [Obj.t] so a
   retired slot can be reset to a sentinel, exactly as in [Pqueue]; the
   casts never escape: every stored value is a ['timer] of the owning
   engine and slots at or beyond [len] always hold [dummy]. *)
module Armed = struct
  type t = {
    mutable labels : int array;
    mutable gens : int array;
    mutable vals : Obj.t array;
    mutable len : int;
  }

  let dummy : Obj.t = Obj.repr ()

  let create () = { labels = [||]; gens = [||]; vals = [||]; len = 0 }

  let find s label = bfind s.labels s.len label

  let insert s ~at label gen v =
    if s.len >= Array.length s.labels then begin
      let cap = max 4 (2 * Array.length s.labels) in
      let ls = Array.make cap 0
      and gs = Array.make cap 0
      and vs = Array.make cap dummy in
      Array.blit s.labels 0 ls 0 s.len;
      Array.blit s.gens 0 gs 0 s.len;
      Array.blit s.vals 0 vs 0 s.len;
      s.labels <- ls;
      s.gens <- gs;
      s.vals <- vs
    end;
    let tail = s.len - at in
    Array.blit s.labels at s.labels (at + 1) tail;
    Array.blit s.gens at s.gens (at + 1) tail;
    Array.blit s.vals at s.vals (at + 1) tail;
    s.labels.(at) <- label;
    s.gens.(at) <- gen;
    s.vals.(at) <- v;
    s.len <- s.len + 1

  let remove_at s i =
    let tail = s.len - i - 1 in
    Array.blit s.labels (i + 1) s.labels i tail;
    Array.blit s.gens (i + 1) s.gens i tail;
    Array.blit s.vals (i + 1) s.vals i tail;
    s.len <- s.len - 1;
    s.vals.(s.len) <- dummy
end

type sched = Heap | Wheel of Timewheel.t

(* Live fault-injection state. Allocated only when the engine was created
   with a non-empty schedule, so the no-fault hot path pays exactly one
   option-tag check per send/delivery. The PRNG drives every fault-local
   draw (duplicate delays, Byzantine corruption, restart-state
   corruption); draws happen in dispatch/send order, which is identical
   under both schedulers, so fault schedules replay byte-identically. *)
type fault_state = {
  ops : Fault.schedule;
  fprng : Prng.t;
  f_alive : bool array;
  f_inc : int array; (* per-node incarnation, bumped at each crash *)
}

type ('msg, 'timer) t = {
  n : int;
  clocks : Hwclock.t array;
  delay : Delay.t;
  discovery_lag : float;
  graph : Dyngraph.t;
  queue : ('msg, 'timer) event Pqueue.t;
  trace : Trace.t;
  handlers : ('msg, 'timer) handlers option array;
  timer_label : ('timer -> int) option;
      (* Encodes a label for Timer_fire/Timer_stale trace records; the
         wheel scheduler additionally keys its dense tables by it. *)
  sched : sched;
  timers : ('timer, int) Hashtbl.t array; (* heap mode: label -> live generation *)
  armed : Armed.t array; (* wheel mode: per-node armed-label table *)
  absence_pending : Iset.t array; (* node -> peers with a pending absence notice *)
  fifo : Fifo_store.t array; (* src -> per-destination delivery floors *)
  mutable next_gen : int;
  mutable now : float;
  mutable started : bool;
  mutable events_processed : int;
  mutable live_timers : int; (* armed labels across all nodes *)
  mutable stale_timer_entries : int; (* heap/wheel slots whose label was cancelled/re-armed *)
  faults : fault_state option;
  corrupt_msg : (src:int -> Prng.t -> 'msg -> 'msg) option;
      (* Applied to messages a Byzantine node sends during its window. *)
  restart_handlers : (corrupt:Prng.t option -> unit) option array;
}

and ('msg, 'timer) handlers = {
  on_init : unit -> unit;
  on_discover_add : int -> unit;
  on_discover_remove : int -> unit;
  on_receive : int -> 'msg -> unit;
  on_timer : 'timer -> unit;
}

type ('msg, 'timer) ctx = { engine : ('msg, 'timer) t; id : int }

let create ~clocks ~delay ?(discovery_lag = 0.) ?(initial_edges = []) ?trace
    ?timer_label ?(scheduler = `Heap) ?(faults = []) ?(fault_seed = 0)
    ?corrupt_msg () =
  let n = Array.length clocks in
  if n = 0 then invalid_arg "Engine.create: no nodes";
  if discovery_lag < 0. then invalid_arg "Engine.create: negative discovery lag";
  (match Fault.validate ~n faults with
  | Ok () -> ()
  | Error m -> invalid_arg ("Engine.create: " ^ m));
  let fault_state =
    match faults with
    | [] -> None
    | ops ->
      Some
        {
          ops;
          fprng = Prng.of_int fault_seed;
          f_alive = Array.make n true;
          f_inc = Array.make n 0;
        }
  in
  let sched =
    match scheduler with
    | `Heap -> Heap
    | `Wheel granularity ->
      if timer_label = None then
        invalid_arg "Engine.create: the wheel scheduler needs ~timer_label";
      Wheel (Timewheel.create ~granularity ())
  in
  let t =
    {
      n;
      clocks;
      delay;
      discovery_lag;
      graph = Dyngraph.create ~n;
      queue = Pqueue.create ~capacity:(max 64 (8 * n)) ();
      trace = (match trace with Some tr -> tr | None -> Trace.create ());
      handlers = Array.make n None;
      timer_label;
      sched;
      timers =
        (match sched with
        | Heap -> Array.init n (fun _ -> Hashtbl.create 8)
        | Wheel _ -> [||]);
      armed =
        (match sched with
        | Heap -> [||]
        | Wheel _ -> Array.init n (fun _ -> Armed.create ()));
      absence_pending = Array.init n (fun _ -> Iset.create ());
      fifo = Array.init n (fun _ -> Fifo_store.create ());
      next_gen = 0;
      now = 0.;
      started = false;
      events_processed = 0;
      live_timers = 0;
      stale_timer_entries = 0;
      faults = fault_state;
      corrupt_msg;
      restart_handlers = Array.make n None;
    }
  in
  List.iter
    (fun (u, v) ->
      if Dyngraph.add_edge t.graph ~now:0. u v then begin
        let epoch = Dyngraph.epoch t.graph u v in
        (* Record the initial topology so an offline trace replay knows the
           full edge history, not just the changes scheduled later. *)
        Trace.record t.trace ~time:0. Edge_add u v (-1);
        (* Initial topology is known immediately. *)
        Pqueue.push t.queue ~time:0. (Discover { node = u; peer = v; epoch; add = true });
        Pqueue.push t.queue ~time:0. (Discover { node = v; peer = u; epoch; add = true })
      end)
    initial_edges;
  (* Crash/restart ops flow through the shared queue as first-class
     events: both schedulers pop them at identical (time, seq) ranks, so
     fault timing can never desynchronize the heap and wheel traces. *)
  List.iter
    (fun op ->
      match op with
      | Fault.Crash { node; at } ->
        Pqueue.push t.queue ~time:at (Fault_crash_ev node)
      | Fault.Restart { node; at; corrupt } ->
        Pqueue.push t.queue ~time:at (Fault_restart_ev { node; corrupt })
      | Fault.Duplicate _ | Fault.Reorder _ | Fault.Byzantine _ -> ())
    (List.stable_sort
       (fun a b -> Float.compare (Fault.op_time a) (Fault.op_time b))
       faults);
  t

let install t i build =
  if i < 0 || i >= t.n then invalid_arg "Engine.install: node out of range";
  if t.started then invalid_arg "Engine.install: engine already started";
  let ctx = { engine = t; id = i } in
  t.handlers.(i) <- Some (build ctx)

let handlers_of t i =
  match t.handlers.(i) with
  | Some h -> h
  | None -> invalid_arg (Printf.sprintf "Engine: node %d has no handlers installed" i)

let trace_label t timer =
  match t.timer_label with Some encode -> encode timer | None -> -1

(* Node-side API ----------------------------------------------------- *)

let node_id ctx = ctx.id

let node_count ctx = ctx.engine.n

let on_restart ctx h =
  ctx.engine.restart_handlers.(ctx.id) <- Some h

let alive t i =
  match t.faults with None -> true | Some f -> f.f_alive.(i)

let hardware_clock ctx = Hwclock.value ctx.engine.clocks.(ctx.id) ctx.engine.now

let send ctx ~dst msg =
  let t = ctx.engine in
  let src = ctx.id in
  if dst < 0 || dst >= t.n || dst = src then invalid_arg "Engine.send: bad destination";
  if Dyngraph.has_edge t.graph src dst then begin
    let epoch = Dyngraph.epoch t.graph src dst in
    (* The send carries its edge epoch so an offline auditor can pair it
       with the matching deliver/drop under the per-epoch FIFO discipline. *)
    Trace.record t.trace ~time:t.now Send src dst epoch;
    (* A Byzantine sender's outgoing messages are corrupted in flight
       during its window; the substitution is traced so auditors can
       exclude the edge from guarantee probes. *)
    let msg =
      match (t.faults, t.corrupt_msg) with
      | Some f, Some corrupt when Fault.byzantine f.ops ~node:src ~at:t.now ->
        Trace.record t.trace ~time:t.now Fault_byzantine_msg src dst epoch;
        corrupt ~src f.fprng msg
      | _ -> msg
    in
    if t.delay.Delay.drop ~src ~dst ~now:t.now then
      (* Silent loss (outside the paper's reliable-link model): no
         delivery and no discovery; only the receiver's lost-timer will
         notice the silence. *)
      Trace.record t.trace ~time:t.now Drop_lossy src dst epoch
    else begin
      let inc =
        match t.faults with None -> 0 | Some f -> f.f_inc.(src)
      in
      let reordered =
        match t.faults with
        | None -> false
        | Some f -> Fault.reordered f.ops ~src ~dst ~at:t.now
      in
      let d = t.delay.Delay.draw ~src ~dst ~now:t.now in
      let d = Float.min (Float.max d 0.) t.delay.Delay.bound in
      let deliver_at = t.now +. d in
      (* FIFO per directed link *and* edge epoch: never deliver before an
         earlier message of the same epoch, but a floor recorded under a
         previous life of the edge is dead — in-flight messages of that
         epoch are dropped at delivery, so nothing can be overtaken. A
         reordering fault window suspends the floor (the link stops being
         FIFO for its duration) without touching the recorded state. *)
      let fs = t.fifo.(src) in
      let i = bfind fs.Fifo_store.dst fs.Fifo_store.len dst in
      let deliver_at =
        if reordered then deliver_at
        else if i >= 0 then begin
          let floor =
            if fs.Fifo_store.epoch.(i) = epoch then
              Float.max deliver_at fs.Fifo_store.deadline.(i)
            else deliver_at
          in
          fs.Fifo_store.epoch.(i) <- epoch;
          fs.Fifo_store.deadline.(i) <- floor;
          floor
        end
        else begin
          Fifo_store.insert fs ~at:(lnot i) dst epoch deliver_at;
          deliver_at
        end
      in
      Pqueue.push t.queue ~time:deliver_at (Deliver { src; dst; epoch; msg; inc });
      (* Bounded duplication: a second copy with its own (fault-PRNG)
         delay, floored at the original's delivery so the duplicate can
         never overtake the message it copies. *)
      match t.faults with
      | Some f when Fault.duplicated f.ops ~src ~dst ~at:t.now ->
        Trace.record t.trace ~time:t.now Fault_duplicate src dst epoch;
        let d2 = Prng.float f.fprng t.delay.Delay.bound in
        let dup_at = Float.max deliver_at (t.now +. d2) in
        Pqueue.push t.queue ~time:dup_at (Deliver { src; dst; epoch; msg; inc })
      | _ -> ()
    end
  end
  else begin
    Trace.record t.trace ~time:t.now Send src dst (-1);
    Trace.record t.trace ~time:t.now Drop_no_edge src dst (-1);
    (* The model: the sender discovers the absence within D. Coalesce
       multiple failed sends into a single pending notification. *)
    if not (Iset.mem t.absence_pending.(src) dst) then begin
      Iset.add t.absence_pending.(src) dst;
      Pqueue.push t.queue ~time:(t.now +. t.discovery_lag)
        (Absence { node = src; peer = dst })
    end
  end

let set_timer ctx ~after timer =
  let t = ctx.engine in
  if after < 0. then invalid_arg "Engine.set_timer: negative delay";
  let clock = t.clocks.(ctx.id) in
  let deadline = Hwclock.inverse clock (Hwclock.value clock t.now +. after) in
  let gen = t.next_gen in
  t.next_gen <- gen + 1;
  (* A re-arm supersedes the pending entry: its heap or wheel slot goes
     stale and will be discarded when it surfaces; the live count is
     unchanged. *)
  match t.sched with
  | Heap ->
    if Hashtbl.mem t.timers.(ctx.id) timer then
      t.stale_timer_entries <- t.stale_timer_entries + 1
    else t.live_timers <- t.live_timers + 1;
    Hashtbl.replace t.timers.(ctx.id) timer gen;
    Pqueue.push t.queue ~time:deadline (Timer { node = ctx.id; timer; gen })
  | Wheel w ->
    let label = trace_label t timer in
    let s = t.armed.(ctx.id) in
    let i = Armed.find s label in
    if i >= 0 then begin
      t.stale_timer_entries <- t.stale_timer_entries + 1;
      s.Armed.gens.(i) <- gen;
      s.Armed.vals.(i) <- Obj.repr timer
    end
    else begin
      t.live_timers <- t.live_timers + 1;
      Armed.insert s ~at:(lnot i) label gen (Obj.repr timer)
    end;
    (* Draw the tie-break rank from the queue's counter so wheel timers
       keep the exact (time, seq) position a heap push would have had. *)
    let seq = Pqueue.alloc_seq t.queue in
    Timewheel.arm w ~node:ctx.id ~label ~gen ~seq ~deadline

let cancel_timer ctx timer =
  let t = ctx.engine in
  match t.sched with
  | Heap ->
    if Hashtbl.mem t.timers.(ctx.id) timer then begin
      Hashtbl.remove t.timers.(ctx.id) timer;
      t.live_timers <- t.live_timers - 1;
      t.stale_timer_entries <- t.stale_timer_entries + 1
    end
  | Wheel _ ->
    let s = t.armed.(ctx.id) in
    let i = Armed.find s (trace_label t timer) in
    if i >= 0 then begin
      Armed.remove_at s i;
      t.live_timers <- t.live_timers - 1;
      t.stale_timer_entries <- t.stale_timer_entries + 1
    end

(* Harness-side API --------------------------------------------------- *)

let now t = t.now

let graph t = t.graph

let clock t i = t.clocks.(i)

let trace t = t.trace

let check_future t at =
  if at < t.now then invalid_arg "Engine: cannot schedule in the past"

let schedule_edge_add t ~at u v =
  check_future t at;
  Pqueue.push t.queue ~time:at (Edge_add (u, v))

let schedule_edge_remove t ~at u v =
  check_future t at;
  Pqueue.push t.queue ~time:at (Edge_remove (u, v))

let at t ~time f =
  check_future t time;
  Pqueue.push t.queue ~time (Callback f)

let events_processed t = t.events_processed

let queue_depth t = Pqueue.size t.queue

let pending_events t =
  let wheel_entries = match t.sched with Heap -> 0 | Wheel w -> Timewheel.size w in
  Pqueue.size t.queue + wheel_entries - t.stale_timer_entries

let live_timers t = t.live_timers

(* Event dispatch ----------------------------------------------------- *)

let schedule_discovery t u v ~epoch ~add =
  let time = t.now +. t.discovery_lag in
  Pqueue.push t.queue ~time (Discover { node = u; peer = v; epoch; add });
  Pqueue.push t.queue ~time (Discover { node = v; peer = u; epoch; add })

let node_dead t node =
  match t.faults with None -> false | Some f -> not f.f_alive.(node)

(* Crash: the node loses every piece of state it owns inside the engine —
   armed timers (their heap/wheel slots go stale, surfacing later exactly
   like cancelled timers do, so both schedulers stay in lockstep) and its
   outgoing FIFO floors (everything it had in flight is dropped at
   delivery by the incarnation check, so clearing the floors cannot let a
   post-restart message overtake a delivery that actually happens). *)
let apply_crash t f node =
  Trace.record t.trace ~time:t.now Fault_crash node (-1) (-1);
  f.f_alive.(node) <- false;
  f.f_inc.(node) <- f.f_inc.(node) + 1;
  (match t.sched with
  | Heap ->
    let tbl = t.timers.(node) in
    let k = Hashtbl.length tbl in
    Hashtbl.reset tbl;
    t.live_timers <- t.live_timers - k;
    t.stale_timer_entries <- t.stale_timer_entries + k
  | Wheel _ ->
    let s = t.armed.(node) in
    let k = s.Armed.len in
    for i = 0 to k - 1 do
      s.Armed.vals.(i) <- Armed.dummy
    done;
    s.Armed.len <- 0;
    t.live_timers <- t.live_timers - k;
    t.stale_timer_entries <- t.stale_timer_entries + k);
  t.fifo.(node).Fifo_store.len <- 0

let apply_restart t f node ~corrupt =
  f.f_alive.(node) <- true;
  Trace.record t.trace ~time:t.now Fault_restart node (-1) (-1);
  let corrupt_prng =
    if corrupt then begin
      Trace.record t.trace ~time:t.now Fault_corrupt node (-1) (-1);
      Some f.fprng
    end
    else None
  in
  (match t.restart_handlers.(node) with
  | Some h -> h ~corrupt:corrupt_prng
  | None -> ());
  (* The restarted node relearns its current neighborhood within the
     discovery lag, as if every incident edge had just appeared to it. *)
  List.iter
    (fun peer ->
      let epoch = Dyngraph.epoch t.graph node peer in
      Pqueue.push t.queue ~time:(t.now +. t.discovery_lag)
        (Discover { node; peer; epoch; add = true }))
    (Dyngraph.neighbors t.graph node)

let dispatch t event =
  match event with
  | Edge_add (u, v) ->
    if Dyngraph.add_edge t.graph ~now:t.now u v then begin
      Trace.record t.trace ~time:t.now Edge_add u v (-1);
      schedule_discovery t u v ~epoch:(Dyngraph.epoch t.graph u v) ~add:true
    end
  | Edge_remove (u, v) ->
    if Dyngraph.remove_edge t.graph ~now:t.now u v then begin
      Trace.record t.trace ~time:t.now Edge_remove u v (-1);
      (* The FIFO floors of the removed edge belong to a finished epoch:
         drop them so a later re-add starts fresh instead of queueing new
         messages behind the dead epoch's last delivery time. *)
      Fifo_store.remove t.fifo.(u) v;
      Fifo_store.remove t.fifo.(v) u;
      schedule_discovery t u v ~epoch:(Dyngraph.epoch t.graph u v) ~add:false
    end
  | Discover { node; peer; epoch; add } ->
    (* Deliver only if this is still the edge's latest change (a change
       reversed within the lag is superseded by its reversal's own
       discovery) and the observer is up — a crashed node observes
       nothing; it relearns its neighborhood after restarting. *)
    if node_dead t node then
      Trace.record t.trace ~time:t.now Discover_stale node peer epoch
    else if Dyngraph.epoch t.graph node peer = epoch then begin
      if add then begin
        Trace.record t.trace ~time:t.now Discover_add node peer epoch;
        (handlers_of t node).on_discover_add peer
      end
      else begin
        Trace.record t.trace ~time:t.now Discover_remove node peer epoch;
        (handlers_of t node).on_discover_remove peer
      end
    end
    else Trace.record t.trace ~time:t.now Discover_stale node peer epoch
  | Absence { node; peer } ->
    Iset.remove t.absence_pending.(node) peer;
    if node_dead t node then
      Trace.record t.trace ~time:t.now Discover_stale node peer (-1)
    else if not (Dyngraph.has_edge t.graph node peer) then begin
      Trace.record t.trace ~time:t.now Discover_remove node peer (-1);
      (handlers_of t node).on_discover_remove peer
    end
    else Trace.record t.trace ~time:t.now Discover_stale node peer (-1)
  | Deliver { src; dst; epoch; msg; inc } ->
    let crash_lost =
      match t.faults with
      | None -> false
      | Some f ->
        (* The message is lost if the receiver is down or the sender
           crashed after sending it (its incarnation moved on): a crash
           severs the node from the network, in both directions. *)
        (not f.f_alive.(dst)) || inc <> f.f_inc.(src)
    in
    if crash_lost then Trace.record t.trace ~time:t.now Drop_lossy src dst epoch
    else if
      Dyngraph.has_edge t.graph src dst && Dyngraph.epoch t.graph src dst = epoch
    then begin
      Trace.record t.trace ~time:t.now Deliver src dst epoch;
      (handlers_of t dst).on_receive src msg
    end
    else Trace.record t.trace ~time:t.now Drop_in_flight src dst epoch
  | Timer { node; timer; _ } ->
    (* Heap mode only (the wheel keeps timers out of the queue entirely).
       Staleness is resolved in the run loop; only live timers reach here. *)
    Hashtbl.remove t.timers.(node) timer;
    t.live_timers <- t.live_timers - 1;
    Trace.record t.trace ~time:t.now Timer_fire node (trace_label t timer) (-1);
    (handlers_of t node).on_timer timer
  | Fault_crash_ev node -> (
    match t.faults with
    | Some f -> apply_crash t f node
    | None -> assert false)
  | Fault_restart_ev { node; corrupt } -> (
    match t.faults with
    | Some f -> apply_restart t f node ~corrupt
    | None -> assert false)
  | Callback f -> f ()

(* Is this heap entry a cancelled or superseded timer? Those are discarded
   at the top of the run loop — they are bookkeeping garbage, not events:
   they don't count as processed and never reach a handler. *)
let is_stale_timer t = function
  | Timer { node; timer; gen } -> (
    match Hashtbl.find t.timers.(node) timer with
    | live -> live <> gen
    | exception Not_found -> true)
  | _ -> false

let start t =
  if not t.started then begin
    t.started <- true;
    for i = 0 to t.n - 1 do
      (handlers_of t i).on_init ()
    done
  end

(* A wheel entry just surfaced: fire it if it still holds the armed
   generation for its label, otherwise it was superseded or cancelled
   after being armed — same lazy discard, and at the same instant, as the
   heap path's stale-slot check, which is what keeps the two schedulers'
   traces byte-identical. *)
let wheel_timer t ~node ~label ~gen =
  let s = t.armed.(node) in
  let i = Armed.find s label in
  if i >= 0 && s.Armed.gens.(i) = gen then begin
    let timer = Obj.obj s.Armed.vals.(i) in
    Armed.remove_at s i;
    t.live_timers <- t.live_timers - 1;
    t.events_processed <- t.events_processed + 1;
    Trace.record t.trace ~time:t.now Timer_fire node label (-1);
    (handlers_of t node).on_timer timer
  end
  else begin
    t.stale_timer_entries <- t.stale_timer_entries - 1;
    Trace.record t.trace ~time:t.now Timer_stale node label (-1)
  end

let run_queue_event t event =
  if is_stale_timer t event then begin
    t.stale_timer_entries <- t.stale_timer_entries - 1;
    match event with
    | Timer { node; timer; _ } ->
      Trace.record t.trace ~time:t.now Timer_stale node (trace_label t timer) (-1)
    | _ -> assert false
  end
  else begin
    t.events_processed <- t.events_processed + 1;
    dispatch t event
  end

let run_until t horizon =
  if horizon < t.now then invalid_arg "Engine.run_until: horizon in the past";
  start t;
  (match t.sched with
  | Heap ->
    (* [next_time]/[pop_exn] instead of [peek_time]/[pop]: no option or
       tuple allocation per event. *)
    let rec loop () =
      let time = Pqueue.next_time t.queue in
      if time <= horizon then begin
        assert (time >= t.now);
        t.now <- time;
        let event = Pqueue.pop_exn t.queue in
        run_queue_event t event;
        loop ()
      end
    in
    loop ()
  | Wheel w ->
    (* Two sources, one total (time, seq) order: the wheel is only asked
       to resolve up to the queue's head (or the horizon), and an
       equal-time tie goes to the smaller sequence number — the order a
       single heap holding both kinds of event would have produced. *)
    let rec loop () =
      let qt = Pqueue.next_time t.queue in
      let bound = Float.min qt horizon in
      if
        Timewheel.peek w ~upto:bound
        && (Timewheel.top_time w < qt
           || Timewheel.top_seq w < Pqueue.top_seq t.queue)
      then begin
        let time = Timewheel.top_time w in
        assert (time >= t.now);
        t.now <- time;
        let node = Timewheel.top_node w
        and label = Timewheel.top_label w
        and gen = Timewheel.top_gen w in
        Timewheel.pop w;
        wheel_timer t ~node ~label ~gen;
        loop ()
      end
      else if qt <= horizon then begin
        assert (qt >= t.now);
        t.now <- qt;
        let event = Pqueue.pop_exn t.queue in
        run_queue_event t event;
        loop ()
      end
    in
    loop ());
  t.now <- horizon
