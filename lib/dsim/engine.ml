type ('msg, 'timer) event =
  | Edge_add of int * int
  | Edge_remove of int * int
  | Discover of { node : int; peer : int; epoch : int; add : bool }
  | Absence of { node : int; peer : int }
      (* Pending notification that a send failed because the edge is absent. *)
  | Deliver of { src : int; dst : int; epoch : int; msg : 'msg }
  | Timer of { node : int; timer : 'timer; gen : int }
  | Callback of (unit -> unit)

(* FIFO floor of one directed link: the latest scheduled delivery time,
   valid only for the edge epoch it was recorded under. A float-only
   record has flat (unboxed) fields, so the per-send update mutates in
   place without allocating; the epoch is stored as a float for that
   reason (exact for any realistic change count). *)
type fifo_cell = { mutable f_epoch : float; mutable f_deadline : float }

type ('msg, 'timer) t = {
  n : int;
  clocks : Hwclock.t array;
  delay : Delay.t;
  discovery_lag : float;
  graph : Dyngraph.t;
  queue : ('msg, 'timer) event Pqueue.t;
  trace : Trace.t;
  handlers : ('msg, 'timer) handlers option array;
  timers : ('timer, int) Hashtbl.t array; (* label -> live generation *)
  absence_pending : (int, unit) Hashtbl.t array; (* node -> peers with a pending absence notice *)
  fifo_last : (int, fifo_cell) Hashtbl.t; (* src * n + dst -> last delivery *)
  mutable next_gen : int;
  mutable now : float;
  mutable started : bool;
  mutable events_processed : int;
  mutable live_timers : int; (* armed labels across all nodes *)
  mutable stale_timer_entries : int; (* heap slots whose label was cancelled/re-armed *)
}

and ('msg, 'timer) handlers = {
  on_init : unit -> unit;
  on_discover_add : int -> unit;
  on_discover_remove : int -> unit;
  on_receive : int -> 'msg -> unit;
  on_timer : 'timer -> unit;
}

type ('msg, 'timer) ctx = { engine : ('msg, 'timer) t; id : int }

let create ~clocks ~delay ?(discovery_lag = 0.) ?(initial_edges = []) ?trace () =
  let n = Array.length clocks in
  if n = 0 then invalid_arg "Engine.create: no nodes";
  if discovery_lag < 0. then invalid_arg "Engine.create: negative discovery lag";
  let t =
    {
      n;
      clocks;
      delay;
      discovery_lag;
      graph = Dyngraph.create ~n;
      queue = Pqueue.create ~capacity:(max 64 (8 * n)) ();
      trace = (match trace with Some tr -> tr | None -> Trace.create ());
      handlers = Array.make n None;
      timers = Array.init n (fun _ -> Hashtbl.create 8);
      absence_pending = Array.init n (fun _ -> Hashtbl.create 4);
      fifo_last = Hashtbl.create 64;
      next_gen = 0;
      now = 0.;
      started = false;
      events_processed = 0;
      live_timers = 0;
      stale_timer_entries = 0;
    }
  in
  List.iter
    (fun (u, v) ->
      if Dyngraph.add_edge t.graph ~now:0. u v then begin
        let epoch = Dyngraph.epoch t.graph u v in
        (* Record the initial topology so an offline trace replay knows the
           full edge history, not just the changes scheduled later. *)
        Trace.record t.trace ~time:0. Edge_add u v (-1);
        (* Initial topology is known immediately. *)
        Pqueue.push t.queue ~time:0. (Discover { node = u; peer = v; epoch; add = true });
        Pqueue.push t.queue ~time:0. (Discover { node = v; peer = u; epoch; add = true })
      end)
    initial_edges;
  t

let install t i build =
  if i < 0 || i >= t.n then invalid_arg "Engine.install: node out of range";
  if t.started then invalid_arg "Engine.install: engine already started";
  let ctx = { engine = t; id = i } in
  t.handlers.(i) <- Some (build ctx)

let handlers_of t i =
  match t.handlers.(i) with
  | Some h -> h
  | None -> invalid_arg (Printf.sprintf "Engine: node %d has no handlers installed" i)

(* Node-side API ----------------------------------------------------- *)

let node_id ctx = ctx.id

let node_count ctx = ctx.engine.n

let hardware_clock ctx = Hwclock.value ctx.engine.clocks.(ctx.id) ctx.engine.now

let send ctx ~dst msg =
  let t = ctx.engine in
  let src = ctx.id in
  if dst < 0 || dst >= t.n || dst = src then invalid_arg "Engine.send: bad destination";
  if Dyngraph.has_edge t.graph src dst then begin
    let epoch = Dyngraph.epoch t.graph src dst in
    (* The send carries its edge epoch so an offline auditor can pair it
       with the matching deliver/drop under the per-epoch FIFO discipline. *)
    Trace.record t.trace ~time:t.now Send src dst epoch;
    if t.delay.Delay.drop ~src ~dst ~now:t.now then
      (* Silent loss (outside the paper's reliable-link model): no
         delivery and no discovery; only the receiver's lost-timer will
         notice the silence. *)
      Trace.record t.trace ~time:t.now Drop_lossy src dst epoch
    else begin
      let d = t.delay.Delay.draw ~src ~dst ~now:t.now in
      let d = Float.min (Float.max d 0.) t.delay.Delay.bound in
      let deliver_at = t.now +. d in
      (* FIFO per directed link *and* edge epoch: never deliver before an
         earlier message of the same epoch, but a floor recorded under a
         previous life of the edge is dead — in-flight messages of that
         epoch are dropped at delivery, so nothing can be overtaken. *)
      let fe = float_of_int epoch in
      let deliver_at =
        let k = (src * t.n) + dst in
        match Hashtbl.find t.fifo_last k with
        | cell ->
          let floor =
            if cell.f_epoch = fe then Float.max deliver_at cell.f_deadline
            else deliver_at
          in
          cell.f_epoch <- fe;
          cell.f_deadline <- floor;
          floor
        | exception Not_found ->
          Hashtbl.add t.fifo_last k { f_epoch = fe; f_deadline = deliver_at };
          deliver_at
      in
      Pqueue.push t.queue ~time:deliver_at (Deliver { src; dst; epoch; msg })
    end
  end
  else begin
    Trace.record t.trace ~time:t.now Send src dst (-1);
    Trace.record t.trace ~time:t.now Drop_no_edge src dst (-1);
    (* The model: the sender discovers the absence within D. Coalesce
       multiple failed sends into a single pending notification. *)
    if not (Hashtbl.mem t.absence_pending.(src) dst) then begin
      Hashtbl.replace t.absence_pending.(src) dst ();
      Pqueue.push t.queue ~time:(t.now +. t.discovery_lag)
        (Absence { node = src; peer = dst })
    end
  end

let set_timer ctx ~after timer =
  let t = ctx.engine in
  if after < 0. then invalid_arg "Engine.set_timer: negative delay";
  let clock = t.clocks.(ctx.id) in
  let deadline = Hwclock.inverse clock (Hwclock.value clock t.now +. after) in
  let gen = t.next_gen in
  t.next_gen <- gen + 1;
  (* A re-arm supersedes the pending entry: its heap slot goes stale and
     will be discarded when it surfaces; the live count is unchanged. *)
  if Hashtbl.mem t.timers.(ctx.id) timer then
    t.stale_timer_entries <- t.stale_timer_entries + 1
  else t.live_timers <- t.live_timers + 1;
  Hashtbl.replace t.timers.(ctx.id) timer gen;
  Pqueue.push t.queue ~time:deadline (Timer { node = ctx.id; timer; gen })

let cancel_timer ctx timer =
  let t = ctx.engine in
  if Hashtbl.mem t.timers.(ctx.id) timer then begin
    Hashtbl.remove t.timers.(ctx.id) timer;
    t.live_timers <- t.live_timers - 1;
    t.stale_timer_entries <- t.stale_timer_entries + 1
  end

(* Harness-side API --------------------------------------------------- *)

let now t = t.now

let graph t = t.graph

let clock t i = t.clocks.(i)

let trace t = t.trace

let check_future t at =
  if at < t.now then invalid_arg "Engine: cannot schedule in the past"

let schedule_edge_add t ~at u v =
  check_future t at;
  Pqueue.push t.queue ~time:at (Edge_add (u, v))

let schedule_edge_remove t ~at u v =
  check_future t at;
  Pqueue.push t.queue ~time:at (Edge_remove (u, v))

let at t ~time f =
  check_future t time;
  Pqueue.push t.queue ~time (Callback f)

let events_processed t = t.events_processed

let pending_events t = Pqueue.size t.queue - t.stale_timer_entries

let live_timers t = t.live_timers

(* Event dispatch ----------------------------------------------------- *)

let schedule_discovery t u v ~epoch ~add =
  let time = t.now +. t.discovery_lag in
  Pqueue.push t.queue ~time (Discover { node = u; peer = v; epoch; add });
  Pqueue.push t.queue ~time (Discover { node = v; peer = u; epoch; add })

let dispatch t event =
  match event with
  | Edge_add (u, v) ->
    if Dyngraph.add_edge t.graph ~now:t.now u v then begin
      Trace.record t.trace ~time:t.now Edge_add u v (-1);
      schedule_discovery t u v ~epoch:(Dyngraph.epoch t.graph u v) ~add:true
    end
  | Edge_remove (u, v) ->
    if Dyngraph.remove_edge t.graph ~now:t.now u v then begin
      Trace.record t.trace ~time:t.now Edge_remove u v (-1);
      (* The FIFO floors of the removed edge belong to a finished epoch:
         drop them so a later re-add starts fresh instead of queueing new
         messages behind the dead epoch's last delivery time. *)
      Hashtbl.remove t.fifo_last ((u * t.n) + v);
      Hashtbl.remove t.fifo_last ((v * t.n) + u);
      schedule_discovery t u v ~epoch:(Dyngraph.epoch t.graph u v) ~add:false
    end
  | Discover { node; peer; epoch; add } ->
    (* Deliver only if this is still the edge's latest change: a change
       reversed within the lag is superseded by its reversal's own
       discovery (transient changes need not be reported). *)
    if Dyngraph.epoch t.graph node peer = epoch then begin
      if add then begin
        Trace.record t.trace ~time:t.now Discover_add node peer epoch;
        (handlers_of t node).on_discover_add peer
      end
      else begin
        Trace.record t.trace ~time:t.now Discover_remove node peer epoch;
        (handlers_of t node).on_discover_remove peer
      end
    end
    else Trace.record t.trace ~time:t.now Discover_stale node peer epoch
  | Absence { node; peer } ->
    Hashtbl.remove t.absence_pending.(node) peer;
    if not (Dyngraph.has_edge t.graph node peer) then begin
      Trace.record t.trace ~time:t.now Discover_remove node peer (-1);
      (handlers_of t node).on_discover_remove peer
    end
    else Trace.record t.trace ~time:t.now Discover_stale node peer (-1)
  | Deliver { src; dst; epoch; msg } ->
    if Dyngraph.has_edge t.graph src dst && Dyngraph.epoch t.graph src dst = epoch
    then begin
      Trace.record t.trace ~time:t.now Deliver src dst epoch;
      (handlers_of t dst).on_receive src msg
    end
    else Trace.record t.trace ~time:t.now Drop_in_flight src dst epoch
  | Timer { node; timer; _ } ->
    (* Staleness is resolved in the run loop; only live timers reach here. *)
    Hashtbl.remove t.timers.(node) timer;
    t.live_timers <- t.live_timers - 1;
    Trace.record t.trace ~time:t.now Timer_fire node (-1) (-1);
    (handlers_of t node).on_timer timer
  | Callback f -> f ()

(* Is this heap entry a cancelled or superseded timer? Those are discarded
   at the top of the run loop — they are bookkeeping garbage, not events:
   they don't count as processed and never reach a handler. *)
let is_stale_timer t = function
  | Timer { node; timer; gen } -> (
    match Hashtbl.find t.timers.(node) timer with
    | live -> live <> gen
    | exception Not_found -> true)
  | _ -> false

let start t =
  if not t.started then begin
    t.started <- true;
    for i = 0 to t.n - 1 do
      (handlers_of t i).on_init ()
    done
  end

let run_until t horizon =
  if horizon < t.now then invalid_arg "Engine.run_until: horizon in the past";
  start t;
  (* [next_time]/[pop_exn] instead of [peek_time]/[pop]: no option or
     tuple allocation per event. *)
  let rec loop () =
    let time = Pqueue.next_time t.queue in
    if time <= horizon then begin
      assert (time >= t.now);
      t.now <- time;
      let event = Pqueue.pop_exn t.queue in
      if is_stale_timer t event then begin
        t.stale_timer_entries <- t.stale_timer_entries - 1;
        (match event with
        | Timer { node; _ } -> Trace.record t.trace ~time:t.now Timer_stale node (-1) (-1)
        | _ -> assert false)
      end
      else begin
        t.events_processed <- t.events_processed + 1;
        dispatch t event
      end;
      loop ()
    end
  in
  loop ();
  t.now <- horizon
