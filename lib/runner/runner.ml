(* Fixed-size domain pool with a Mutex/Condition task queue and an
   order-preserving merge. See runner.mli for the determinism contract. *)

let default =
  let initial =
    match Sys.getenv_opt "GCS_JOBS" with
    | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some j when j >= 1 -> j
      | Some _ | None -> Domain.recommended_domain_count ())
    | None -> Domain.recommended_domain_count ()
  in
  Atomic.make initial

let default_jobs () = Atomic.get default

let set_default_jobs jobs =
  if jobs < 1 then invalid_arg "Runner.set_default_jobs: jobs must be >= 1";
  Atomic.set default jobs

let live = Atomic.make 0

let live_domains () = Atomic.get live

(* One pool per map call: the queue holds item indices; it is filled and
   closed before the workers start, so [Condition.wait] only matters for
   future producers (none today) — workers drain until empty-and-closed.
   Each slot of [results] is written by exactly one worker and read by
   the caller only after joining that worker, so the array never races. *)
type 'b pool = {
  mutex : Mutex.t;
  nonempty : Condition.t;
  queue : int Queue.t;
  mutable closed : bool;
  results : ('b, exn * Printexc.raw_backtrace) result option array;
}

let rec take pool =
  if not (Queue.is_empty pool.queue) then Some (Queue.pop pool.queue)
  else if pool.closed then None
  else begin
    Condition.wait pool.nonempty pool.mutex;
    take pool
  end

let worker pool f =
  let rec loop () =
    Mutex.lock pool.mutex;
    let item = take pool in
    Mutex.unlock pool.mutex;
    match item with
    | None -> ()
    | Some i ->
      (pool.results.(i) <-
        Some
          (match f i with
          | v -> Ok v
          | exception e -> Error (e, Printexc.get_raw_backtrace ())));
      loop ()
  in
  loop ()

let resolve_jobs = function
  | None -> default_jobs ()
  | Some j when j >= 1 -> j
  | Some _ -> invalid_arg "Runner: jobs must be >= 1"

let map_indexed ?jobs f items =
  let arr = Array.of_list items in
  let n = Array.length arr in
  let jobs = min (resolve_jobs jobs) n in
  if jobs <= 1 then List.mapi (fun i x -> f i x) items
  else begin
    let pool =
      {
        mutex = Mutex.create ();
        nonempty = Condition.create ();
        queue = Queue.create ();
        closed = false;
        results = Array.make n None;
      }
    in
    Mutex.lock pool.mutex;
    for i = 0 to n - 1 do
      Queue.push i pool.queue
    done;
    pool.closed <- true;
    Condition.broadcast pool.nonempty;
    Mutex.unlock pool.mutex;
    let domains =
      List.init jobs (fun _ ->
          Atomic.incr live;
          Domain.spawn (fun () -> worker pool (fun i -> f i arr.(i))))
    in
    List.iter
      (fun d ->
        Domain.join d;
        Atomic.decr live)
      domains;
    (* Deterministic error choice: the smallest failing index wins. *)
    Array.iter
      (function
        | Some (Error (e, bt)) -> Printexc.raise_with_backtrace e bt
        | Some (Ok _) | None -> ())
      pool.results;
    Array.to_list
      (Array.map
         (function Some (Ok v) -> v | Some (Error _) | None -> assert false)
         pool.results)
  end

let map ?jobs f items = map_indexed ?jobs (fun _ x -> f x) items

let map_prng ?jobs prng f items =
  (* Split serially, in item order, before any fan-out: the streams (and
     the parent's final state) are independent of jobs and scheduling. *)
  let streams = Array.of_list (List.map (fun _ -> Dsim.Prng.split prng) items) in
  map_indexed ?jobs (fun i x -> f streams.(i) x) items

let sweep ?jobs f points = map ?jobs (fun p -> (p, f p)) points
