(* Fixed-size domain pool with a Mutex/Condition task queue and an
   order-preserving merge. See runner.mli for the determinism contract. *)

let default =
  let initial =
    match Sys.getenv_opt "GCS_JOBS" with
    | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some j when j >= 1 -> j
      | Some _ | None -> Domain.recommended_domain_count ())
    | None -> Domain.recommended_domain_count ()
  in
  Atomic.make initial

let default_jobs () = Atomic.get default

let set_default_jobs jobs =
  if jobs < 1 then invalid_arg "Runner.set_default_jobs: jobs must be >= 1";
  Atomic.set default jobs

let live = Atomic.make 0

let live_domains () = Atomic.get live

(* One pool per map call: the queue holds item indices; it is filled and
   closed before the workers start, so [Condition.wait] only matters for
   future producers (none today) — workers drain until empty-and-closed.
   Each slot of [results] is written by exactly one worker and read by
   the caller only after joining that worker, so the array never races. *)
type 'b mpool = {
  mutex : Mutex.t;
  nonempty : Condition.t;
  queue : int Queue.t;
  mutable closed : bool;
  results : ('b, exn * Printexc.raw_backtrace) result option array;
}

let rec take pool =
  if not (Queue.is_empty pool.queue) then Some (Queue.pop pool.queue)
  else if pool.closed then None
  else begin
    Condition.wait pool.nonempty pool.mutex;
    take pool
  end

let worker pool f =
  let rec loop () =
    Mutex.lock pool.mutex;
    let item = take pool in
    Mutex.unlock pool.mutex;
    match item with
    | None -> ()
    | Some i ->
      (pool.results.(i) <-
        Some
          (match f i with
          | v -> Ok v
          | exception e -> Error (e, Printexc.get_raw_backtrace ())));
      loop ()
  in
  loop ()

let resolve_jobs = function
  | None -> default_jobs ()
  | Some j when j >= 1 -> j
  | Some _ -> invalid_arg "Runner: jobs must be >= 1"

(* Oversubscription cap: every fan-out point (nested maps, scoped pools
   inside experiments) sizes itself independently, so without a global
   brake the process can end up with far more live domains than cores.
   [default_jobs] is the process-wide budget; a new fan-out only gets
   what is left of it. *)
let capped_jobs requested = min requested (max 1 (default_jobs () - Atomic.get live))

let map_indexed ?jobs f items =
  let arr = Array.of_list items in
  let n = Array.length arr in
  let jobs = min (capped_jobs (resolve_jobs jobs)) n in
  if jobs <= 1 then List.mapi (fun i x -> f i x) items
  else begin
    let pool =
      {
        mutex = Mutex.create ();
        nonempty = Condition.create ();
        queue = Queue.create ();
        closed = false;
        results = Array.make n None;
      }
    in
    Mutex.lock pool.mutex;
    for i = 0 to n - 1 do
      Queue.push i pool.queue
    done;
    pool.closed <- true;
    Condition.broadcast pool.nonempty;
    Mutex.unlock pool.mutex;
    let domains =
      List.init jobs (fun _ ->
          Atomic.incr live;
          Domain.spawn (fun () -> worker pool (fun i -> f i arr.(i))))
    in
    List.iter
      (fun d ->
        Domain.join d;
        Atomic.decr live)
      domains;
    (* Deterministic error choice: the smallest failing index wins. *)
    Array.iter
      (function
        | Some (Error (e, bt)) -> Printexc.raise_with_backtrace e bt
        | Some (Ok _) | None -> ())
      pool.results;
    Array.to_list
      (Array.map
         (function Some (Ok v) -> v | Some (Error _) | None -> assert false)
         pool.results)
  end

let map ?jobs f items = map_indexed ?jobs (fun _ x -> f x) items

let map_prng ?jobs prng f items =
  (* Split serially, in item order, before any fan-out: the streams (and
     the parent's final state) are independent of jobs and scheduling. *)
  let streams = Array.of_list (List.map (fun _ -> Dsim.Prng.split prng) items) in
  map_indexed ?jobs (fun i x -> f streams.(i) x) items

let sweep ?jobs f points = map ?jobs (fun p -> (p, f p)) points

(* ------------------- scoped barrier-synchronized pool ------------------- *)

(* Unlike the per-call pools above, a scoped pool keeps its worker domains
   alive across many [run] rounds: the engine's parallel dispatch windows
   fire thousands of tiny barrier-synchronized rounds per run_until, and
   spawning domains per round would dominate. Workers sleep on [work]
   between rounds; the caller participates in each round, so a pool of
   [jobs] runs thunks on [jobs] domains total ([jobs - 1] spawned). *)
type pool = {
  pworkers : int; (* spawned worker domains; the caller makes it +1 *)
  pmutex : Mutex.t;
  work : Condition.t; (* a round started, or the pool closed *)
  finished : Condition.t; (* the last thunk of a round completed *)
  mutable thunks : (unit -> unit) array;
  mutable next : int; (* next unclaimed thunk of the current round *)
  mutable remaining : int; (* claimed-or-not thunks not yet completed *)
  mutable failures : (int * exn * Printexc.raw_backtrace) list;
  mutable pclosed : bool;
}

(* Runs thunk [i]; the pool mutex is held on entry and on exit. *)
let run_thunk pool i =
  let f = pool.thunks.(i) in
  Mutex.unlock pool.pmutex;
  let res =
    match f () with
    | () -> None
    | exception e -> Some (e, Printexc.get_raw_backtrace ())
  in
  Mutex.lock pool.pmutex;
  (match res with
  | Some (e, bt) -> pool.failures <- (i, e, bt) :: pool.failures
  | None -> ());
  pool.remaining <- pool.remaining - 1;
  if pool.remaining = 0 then Condition.broadcast pool.finished

let scoped_worker pool =
  Mutex.lock pool.pmutex;
  let rec loop () =
    if pool.pclosed then Mutex.unlock pool.pmutex
    else if pool.next < Array.length pool.thunks then begin
      let i = pool.next in
      pool.next <- i + 1;
      run_thunk pool i;
      loop ()
    end
    else begin
      Condition.wait pool.work pool.pmutex;
      loop ()
    end
  in
  loop ()

let pool_size pool = pool.pworkers + 1

let run pool thunks =
  let len = Array.length thunks in
  if len > 0 then begin
    Mutex.lock pool.pmutex;
    if pool.pclosed then begin
      Mutex.unlock pool.pmutex;
      invalid_arg "Runner.run: pool used outside its scoped block"
    end;
    pool.thunks <- thunks;
    pool.next <- 0;
    pool.remaining <- len;
    pool.failures <- [];
    Condition.broadcast pool.work;
    (* The caller claims thunks like any worker, then waits the stragglers
       out. With zero spawned workers this runs every thunk here, in index
       order. *)
    let rec help () =
      if pool.next < len then begin
        let i = pool.next in
        pool.next <- i + 1;
        run_thunk pool i;
        help ()
      end
    in
    help ();
    while pool.remaining > 0 do
      Condition.wait pool.finished pool.pmutex
    done;
    let failures = pool.failures in
    pool.thunks <- [||];
    pool.failures <- [];
    Mutex.unlock pool.pmutex;
    (* Deterministic error choice, as in map: smallest failing index wins.
       Indices are unique, so the sort never compares the exceptions. *)
    match List.sort (fun (i, _, _) (j, _, _) -> Int.compare i j) failures with
    | (_, e, bt) :: _ -> Printexc.raise_with_backtrace e bt
    | [] -> ()
  end

let scoped ?jobs f =
  let requested = capped_jobs (resolve_jobs jobs) in
  let pool =
    {
      pworkers = requested - 1;
      pmutex = Mutex.create ();
      work = Condition.create ();
      finished = Condition.create ();
      thunks = [||];
      next = 0;
      remaining = 0;
      failures = [];
      pclosed = false;
    }
  in
  let domains =
    List.init (requested - 1) (fun _ ->
        Atomic.incr live;
        Domain.spawn (fun () -> scoped_worker pool))
  in
  let finish () =
    Mutex.lock pool.pmutex;
    pool.pclosed <- true;
    Condition.broadcast pool.work;
    Mutex.unlock pool.pmutex;
    List.iter
      (fun d ->
        Domain.join d;
        Atomic.decr live)
      domains
  in
  Fun.protect ~finally:finish (fun () -> f pool)
