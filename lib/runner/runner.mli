(** Deterministic multicore fan-out over a fixed-size domain pool.

    The simulator's three embarrassingly parallel workloads — the
    experiment registry, the audit fuzzer's seed sweep, and grid-style
    parameter sweeps inside individual experiments — are independently
    seeded: no run reads another run's state. {!map} exploits that on an
    OCaml 5 runtime by distributing items over worker domains while
    keeping the results indistinguishable from the serial path.

    {2 Determinism contract}

    - {b Order-preserving merge.} Results come back in submission order,
      whatever order the workers finished in. [map ~jobs f items] equals
      [List.map f items] element for element, so any output derived from
      it (reports, tables, CSV) is byte-identical for every [jobs].
    - {b Per-item split streams.} {!map_prng} derives one child stream
      per item by calling {!Dsim.Prng.split} on the parent serially, in
      item order, {e before} any work is distributed. Child streams — and
      the parent's state afterwards — therefore depend only on the parent
      seed and the number of items, never on [jobs] or scheduling.
    - {b No shared mutable state.} The pool hands each worker the item
      and (for {!map_prng}) its private stream; workers may not touch
      anything else that is mutable. All code run under the pool must be
      domain-safe, which every experiment and scenario audit in this
      repository is (each builds its own engine, trace and tables).

    Exceptions raised by [f] are caught per item; the pool always drains
    the queue and joins every domain, then re-raises the exception of the
    smallest failing item index (again independent of scheduling).

    {2 Oversubscription cap}

    Fan-out points nest: an experiment mapped over the pool may itself
    call {!sweep}, and a simulation may open a {!scoped} dispatch pool
    while a fuzz [map] is in flight. Each call sizes itself independently,
    so without a brake the process could hold far more live domains than
    [default_jobs] (the ambient budget, [GCS_JOBS] / [--jobs]). Every
    pool therefore claims only what is left of the budget:
    [min requested (max 1 (default_jobs () - live_domains ()))]. A
    fan-out issued when the budget is exhausted runs serially in its
    caller — same results, by the determinism contract. *)

val default_jobs : unit -> int
(** Ambient pool size used when [?jobs] is omitted. Initially the value
    of the [GCS_JOBS] environment variable if it parses as a positive
    integer, otherwise [Domain.recommended_domain_count ()]. *)

val set_default_jobs : int -> unit
(** Override the ambient pool size ([gcs_sim]'s [--jobs] does this).
    Raises [Invalid_argument] if the value is not positive. *)

val live_domains : unit -> int
(** Number of worker domains currently spawned and not yet joined, over
    all pools. Always [0] outside {!map} calls and {!scoped} blocks —
    including after a call that re-raised a worker exception; the test
    suite asserts this. *)

val map : ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** [map ~jobs f items] applies [f] to every item on a pool of [jobs]
    worker domains and returns the results in submission order. With
    [jobs = 1] (or fewer items than that) no domain is spawned and the
    call is exactly [List.map f items]. [jobs] defaults to
    {!default_jobs}. Raises [Invalid_argument] on [jobs < 1]. *)

val map_prng :
  ?jobs:int -> Dsim.Prng.t -> (Dsim.Prng.t -> 'a -> 'b) -> 'a list -> 'b list
(** [map_prng ~jobs prng f items] is {!map}, with each item assigned its
    own {!Dsim.Prng.split} child of [prng] (split serially in item order
    before fan-out, advancing [prng] once per item). [f] must draw only
    from the stream it is handed. *)

val sweep : ?jobs:int -> ('a -> 'b) -> 'a list -> ('a * 'b) list
(** [sweep ~jobs f points] runs [f] on every grid point in parallel and
    pairs each point with its result, in submission order — the shape
    wanted by parameter sweeps that tabulate [point -> measurement]
    rows (E3's B0/n sweeps, A7's optimal-B0 grids). *)

(** {2 Scoped barrier-synchronized pool}

    {!map} spawns and joins its domains per call, which is right for
    coarse items (whole experiments, whole audited scenarios) but far too
    heavy for the engine's parallel dispatch windows: one [run_until]
    fires many thousands of tiny rounds, each of which must fully
    complete before the next (an outbox merge barrier, DESIGN §14).
    [scoped] keeps [jobs - 1] worker domains parked on a condition
    variable for the duration of a block, and each {!run} is one
    barrier-synchronized round over them plus the calling domain. *)

type pool
(** A scoped pool. Valid only inside the [scoped] block that created it. *)

val scoped : ?jobs:int -> (pool -> 'a) -> 'a
(** [scoped ~jobs f] spawns [jobs - 1] worker domains (after the
    oversubscription cap above; [jobs] defaults to {!default_jobs}),
    runs [f pool], and always tears the workers down — also on
    exceptions. With an exhausted budget (or [jobs = 1]) no domain is
    spawned and every {!run} executes in the caller. *)

val pool_size : pool -> int
(** Domains a {!run} round executes on: the pool's parked workers plus
    the calling domain. This is what the oversubscription cap actually
    granted, not what [scoped] was asked for — [1] means every round
    runs serially in the caller. Callers sizing work per domain (the
    engine's per-shard dispatch thunks) should read this, not [jobs]. *)

val run : pool -> (unit -> unit) array -> unit
(** [run pool thunks] executes every thunk exactly once on the pool's
    domains plus the calling domain, and returns only when all have
    completed — a barrier. Thunks are claimed dynamically in index
    order; with no spawned workers they run in the caller, in index
    order. Thunks must be domain-safe and must not call [run] on the
    same pool. Exceptions are collected and the smallest thunk index's
    exception is re-raised after the round completes. Calling [run]
    outside the pool's [scoped] block raises [Invalid_argument]. *)
