module Table = Analysis.Table
module Series = Analysis.Series

type outcome = {
  n : int;
  b0 : float;
  initial_skew : float;
  settle : float option; (* time from edge add until skew <= I/4 *)
  valid : bool;
}

(* One run of the beta-adversary path scenario with a closing edge. *)
let scenario ~n ~b0 =
  let params = Common.default_params ~b0 ~n () in
  let edges = Topology.Static.path n in
  let layered =
    Lowerbound.Layered.prepare ~n ~edges ~mask:Lowerbound.Mask.empty ~source:0
      ~rho:params.Gcs.Params.rho ~delay_bound:params.Gcs.Params.delay_bound
  in
  let t_add = Lowerbound.Layered.min_time layered (n - 1) +. 10. in
  let horizon = t_add +. Float.max 400. (float_of_int n *. 4.) in
  let cfg =
    Gcs.Sim.config ~params
      ~clocks:(Lowerbound.Layered.beta_clocks layered)
      ~delay:(Lowerbound.Layered.beta_delay_policy layered)
      ~initial_edges:edges ()
  in
  let run =
    Common.launch cfg ~horizon ~sample_every:0.5
      ~watch:[ (0, n - 1) ]
      ~churn:(Topology.Churn.single_new_edge ~at:t_add 0 (n - 1))
  in
  let trace = Gcs.Metrics.pair_trace run.Common.recorder (0, n - 1) in
  let aged = List.map (fun (t, s) -> (t -. t_add, s)) (Series.after t_add trace) in
  let initial_skew = match aged with (_, s) :: _ -> s | [] -> 0. in
  let settle = Series.first_below (initial_skew /. 4.) aged in
  { n; b0; initial_skew; settle; valid = Gcs.Invariant.ok run.Common.invariants }

let run ~quick =
  let n_fixed = if quick then 48 else 96 in
  let b0_base = Common.default_params ~n:n_fixed () in
  let min_b0 = Gcs.Params.min_b0 b0_base in
  let b0_factors = if quick then [ 1.2; 2.5; 5.0 ] else [ 1.2; 2.5; 5.0; 10.0 ] in
  let b0_sweep =
    List.map snd (Runner.sweep (fun f -> scenario ~n:n_fixed ~b0:(f *. min_b0)) b0_factors)
  in
  let ns = if quick then [ 32; 48; 64 ] else [ 32; 64; 96; 128 ] in
  let b0_fixed = 1.5 *. min_b0 in
  let n_sweep = List.map snd (Runner.sweep (fun n -> scenario ~n ~b0:b0_fixed) ns) in
  let table_b0 =
    Table.create
      ~title:(Printf.sprintf "Settle time vs B0 (path + new edge, n=%d)" n_fixed)
      ~columns:[ "B0"; "initial skew"; "settle time"; "settle*B0"; "valid" ]
  in
  List.iter
    (fun o ->
      Table.add_row table_b0
        [
          Table.Float o.b0;
          Table.Float o.initial_skew;
          (match o.settle with Some s -> Table.Float s | None -> Table.Str "none");
          (match o.settle with Some s -> Table.Float (s *. o.b0) | None -> Table.Str "-");
          Table.Bool o.valid;
        ])
    b0_sweep;
  let table_n =
    Table.create
      ~title:(Printf.sprintf "Settle time vs n (path + new edge, B0=%.1f)" b0_fixed)
      ~columns:[ "n"; "initial skew"; "settle time"; "settle/n"; "valid" ]
  in
  List.iter
    (fun o ->
      Table.add_row table_n
        [
          Table.Int o.n;
          Table.Float o.initial_skew;
          (match o.settle with Some s -> Table.Float s | None -> Table.Str "none");
          (match o.settle with
          | Some s -> Table.Float (s /. float_of_int o.n)
          | None -> Table.Str "-");
          Table.Bool o.valid;
        ])
    n_sweep;
  let settled outcomes = List.for_all (fun o -> o.settle <> None) outcomes in
  let settle_of o = Option.value ~default:infinity o.settle in
  let monotone_decreasing =
    let rec go = function
      | a :: (b :: _ as rest) -> settle_of a >= settle_of b -. 1. && go rest
      | _ -> true
    in
    go b0_sweep
  in
  let corr_inv_b0 =
    Analysis.Stats.correlation (List.map (fun o -> (1. /. o.b0, settle_of o)) b0_sweep)
  in
  let corr_n =
    Analysis.Stats.correlation
      (List.map (fun o -> (float_of_int o.n, settle_of o)) n_sweep)
  in
  let checks =
    [
      Common.check ~name:"all runs settle" ~pass:(settled b0_sweep && settled n_sweep)
        "every scenario reduced the new edge's skew below I/4";
      Common.check ~name:"settle time decreases as B0 grows" ~pass:monotone_decreasing
        "settle times along B0 sweep: %s"
        (String.concat ", "
           (List.map (fun o -> Printf.sprintf "%.1f" (settle_of o)) b0_sweep));
      Common.check ~name:"settle time ~ 1/B0" ~pass:(corr_inv_b0 > 0.85)
        "correlation(1/B0, settle) = %.3f" corr_inv_b0;
      Common.check ~name:"settle time grows with n" ~pass:(corr_n > 0.85)
        "correlation(n, settle) = %.3f" corr_n;
      Common.check ~name:"validity in all runs"
        ~pass:(List.for_all (fun o -> o.valid) (b0_sweep @ n_sweep))
        "invariant monitors clean in %d runs"
        (List.length b0_sweep + List.length n_sweep);
    ]
  in
  {
    Common.id = "E3";
    title = "Stabilization-time / stable-skew trade-off (Corollary 6.14)";
    tables = [ table_b0; table_n ];
    checks;
  }
