(** A8 (self-stabilization) — crash, restart and corrupted state.

    The paper's guarantees assume nodes keep their state; a crash/restart
    campaign (with {!Dsim.Fault} schedules) deliberately violates that:
    crashed nodes go silent and lose everything, restarts resume from
    zeroed or adversarially corrupted [⟨L, Lmax⟩]. The experiment sweeps
    fault intensity × topology × churn and reports the first-class
    recovery metric ({!Gcs.Metrics.recovery_time}): how long after the
    last fault the global skew re-enters [G(n)] for good.

    Checks: the no-fault baseline never leaves the bound; every faulted
    run recovers; recovery fits the analytic budget
    [(n-1)ΔT + stabilize_real] (max-propagation plus the paper's
    convergence horizon); corrupted restarts really push the run outside
    the bound first (so recovery is non-vacuous); and the fault-aware
    validity monitor stays clean throughout. *)

val run : quick:bool -> Common.result
