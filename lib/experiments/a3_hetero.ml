module Table = Analysis.Table
module Hetero = Gcs.Hetero

let tight_fraction = 0.1

let link_classes n =
  (* First half of the path is a tight cluster (a wired backbone), the
     second half loose (radio links). Clustering matters: with alternating
     classes every node would keep a fresh view through its tight link,
     masking the loose links' staleness. *)
  List.init (n - 1) (fun i -> ((i, i + 1), i < (n - 1) / 2))

let run ~quick =
  let n = if quick then 16 else 32 in
  let params = Gcs.Params.make ~delta_h:0.2 ~n () in
  let t = params.Gcs.Params.delay_bound in
  let classes = link_classes n in
  let link_bound =
    Hetero.of_alist ~default:t
      (List.filter_map
         (fun (e, tight) -> if tight then Some (e, tight_fraction *. t) else None)
         classes)
  in
  let horizon = 400. in
  let warmup = 150. in
  let clocks = Gcs.Drift.assign params ~horizon ~seed:9 (Gcs.Drift.Alternating 30.) in
  let edges = Topology.Static.path n in
  let delay = Hetero.delay_policy (Dsim.Prng.of_int 31) params ~link_bound in
  let engine, nodes =
    Hetero.create_sim ~params ~clocks ~delay ~link_bound ~initial_edges:edges ()
  in
  let view = Hetero.view nodes (Dsim.Dyngraph.iter_edges (Dsim.Engine.graph engine)) in
  let recorder =
    Gcs.Metrics.attach engine view ~every:0.5 ~until:horizon ~watch:edges ()
  in
  let monitor = Gcs.Invariant.attach engine view ~params ~every:0.5 ~until:horizon () in
  Dsim.Engine.run_until engine horizon;
  let steady_peak e =
    Analysis.Series.max_value
      (Analysis.Series.after warmup (Gcs.Metrics.pair_trace recorder e))
  in
  let tight_edges = List.filter_map (fun (e, c) -> if c then Some e else None) classes in
  let loose_edges =
    List.filter_map (fun (e, c) -> if not c then Some e else None) classes
  in
  let mean xs = Analysis.Stats.mean xs in
  let tight_skews = List.map steady_peak tight_edges in
  let loose_skews = List.map steady_peak loose_edges in
  let tight_bound = Hetero.stable_local_skew_e params ~t_e:(tight_fraction *. t) in
  let loose_bound = Hetero.stable_local_skew_e params ~t_e:t in
  let table =
    Table.create
      ~title:
        (Printf.sprintf
           "Per-link steady skew under mixed uncertainty (path n=%d, dH=%.1f)" n
           params.Gcs.Params.delta_h)
      ~columns:
        [ "link class"; "T_e"; "mean peak skew"; "max peak skew"; "B0_e"; "stable bound_e" ]
  in
  Table.add_row table
    [
      Table.Str "tight";
      Table.Float (tight_fraction *. t);
      Table.Float (mean tight_skews);
      Table.Float (Analysis.Stats.maximum tight_skews);
      Table.Float (Hetero.b0_e params ~t_e:(tight_fraction *. t));
      Table.Float tight_bound;
    ];
  Table.add_row table
    [
      Table.Str "loose";
      Table.Float t;
      Table.Float (mean loose_skews);
      Table.Float (Analysis.Stats.maximum loose_skews);
      Table.Float (Hetero.b0_e params ~t_e:t);
      Table.Float loose_bound;
    ];
  let checks =
    [
      Common.check ~name:"skew tracks link uncertainty"
        ~pass:(mean loose_skews > 2. *. mean tight_skews)
        "loose mean %.4f vs tight mean %.4f" (mean loose_skews) (mean tight_skews);
      Common.check ~name:"tight links honor their refined bound"
        ~pass:(Analysis.Stats.maximum tight_skews <= tight_bound)
        "max tight skew %.4f vs B0_e + 2rhoW = %.4f"
        (Analysis.Stats.maximum tight_skews)
        tight_bound;
      Common.check ~name:"loose links honor their bound"
        ~pass:(Analysis.Stats.maximum loose_skews <= loose_bound)
        "max loose skew %.4f vs %.4f" (Analysis.Stats.maximum loose_skews) loose_bound;
      Common.check ~name:"refined bound is genuinely tighter"
        ~pass:(tight_bound < 0.8 *. loose_bound)
        "B0_e-based %.3f vs uniform %.3f" tight_bound loose_bound;
      Common.check ~name:"validity" ~pass:(Gcs.Invariant.ok monitor) "%d probes"
        (Gcs.Invariant.probes monitor);
    ]
  in
  {
    Common.id = "A3";
    title = "Extension: heterogeneous link delay bounds (Section 7 / [9])";
    tables = [ table ];
    checks;
  }
