module Table = Analysis.Table

type outcome = {
  pairs : int;
  corrupt : bool;
  topo : string;
  churn : bool;
  last_fault : float;
  recovery : float option;  (* time from the last fault back into G(n) *)
  peak : float;  (* worst global skew from the first fault on *)
  final_global : float;
  valid : bool;
}

(* [pairs] staggered crash/restart pairs on distinct nodes starting at
   [t0]; even-indexed restarts corrupt their state when [corrupt]. *)
let schedule ~n ~pairs ~corrupt ~t0 =
  List.concat
    (List.init pairs (fun k ->
         let node = (1 + (k * (n / Stdlib.max 1 pairs))) mod n in
         let crash_at = t0 +. (6. *. float_of_int k) in
         let restart_at = crash_at +. 15. in
         [
           Dsim.Fault.Crash { node; at = crash_at };
           Dsim.Fault.Restart
             { node; at = restart_at; corrupt = corrupt && k mod 2 = 0 };
         ]))

let scenario ~n ~pairs ~corrupt ~topo ~churn =
  let params = Common.default_params ~n () in
  let horizon = 240. in
  let t0 = 80. in
  let faults = schedule ~n ~pairs ~corrupt ~t0 in
  let clocks = Gcs.Drift.assign params ~horizon ~seed:8 Gcs.Drift.Split_extremes in
  let delay =
    Dsim.Delay.uniform (Dsim.Prng.of_int 61) ~bound:params.Gcs.Params.delay_bound
  in
  let edges =
    match topo with
    | "ring" -> Topology.Static.ring n
    | _ -> Topology.Static.binary_tree n
  in
  let cfg =
    Gcs.Sim.config ~params ~clocks ~delay ~initial_edges:edges ~faults ~fault_seed:9 ()
  in
  let churn_events =
    if churn then
      Topology.Churn.random_churn (Dsim.Prng.of_int 62) ~n ~base:edges ~rate:0.2
        ~horizon
    else []
  in
  let run = Common.launch ~churn:churn_events cfg ~horizon in
  let samples = Gcs.Metrics.samples run.Common.recorder in
  let last_fault =
    match Dsim.Fault.last_time faults with Some t -> t | None -> 0.
  in
  let bound = Gcs.Params.global_skew_bound params in
  {
    pairs;
    corrupt;
    topo;
    churn;
    last_fault;
    recovery = Gcs.Metrics.recovery_time ~after:last_fault ~bound samples;
    peak =
      List.fold_left
        (fun acc s ->
          if s.Gcs.Metrics.time >= t0 then Float.max acc s.Gcs.Metrics.global_skew
          else acc)
        0. samples;
    final_global =
      (match List.rev samples with [] -> 0. | s :: _ -> s.Gcs.Metrics.global_skew);
    valid = Gcs.Invariant.ok run.Common.invariants;
  }

let run ~quick =
  let n = if quick then 12 else 16 in
  let grid =
    if quick then
      [ (0, false, "ring", false); (1, false, "ring", false); (2, true, "ring", true) ]
    else
      [
        (0, false, "ring", false);
        (1, false, "ring", false);
        (2, true, "ring", false);
        (2, true, "tree", false);
        (2, true, "ring", true);
        (3, true, "tree", true);
      ]
  in
  let outcomes =
    List.map
      (fun (pairs, corrupt, topo, churn) -> scenario ~n ~pairs ~corrupt ~topo ~churn)
      grid
  in
  let params = Common.default_params ~n () in
  let bound = Gcs.Params.global_skew_bound params in
  let table =
    Table.create
      ~title:
        (Printf.sprintf
           "Crash/restart campaign (n=%d): recovery time back into G(n)=%.2f" n bound)
      ~columns:
        [ "pairs"; "corrupt"; "topo"; "churn"; "peak skew"; "recovery"; "final skew";
          "valid" ]
  in
  List.iter
    (fun o ->
      Table.add_row table
        [
          Table.Int o.pairs;
          Table.Bool o.corrupt;
          Table.Str o.topo;
          Table.Bool o.churn;
          Table.Float o.peak;
          (match o.recovery with Some r -> Table.Float r | None -> Table.Str "never");
          Table.Float o.final_global;
          Table.Bool o.valid;
        ])
    outcomes;
  let faulted = List.filter (fun o -> o.pairs > 0) outcomes in
  let corrupted = List.filter (fun o -> o.corrupt) outcomes in
  let baseline = List.hd outcomes in
  (* The analytic budget: Lmax re-propagates across the network in
     (n-1)ΔT, then edges re-converge on the paper's stabilization
     horizon. *)
  let budget =
    (float_of_int (n - 1) *. Gcs.Params.delta_t params)
    +. Gcs.Params.stabilize_real params
  in
  let checks =
    [
      Common.check ~name:"baseline needs no recovery"
        ~pass:(baseline.pairs = 0 && baseline.recovery = Some 0.)
        "no faults: the run never leaves G(n)";
      Common.check ~name:"every faulted run recovers"
        ~pass:(List.for_all (fun o -> o.recovery <> None) faulted)
        "global skew re-enters G(n)=%.2f for good after the last fault in all %d runs"
        bound (List.length faulted);
      Common.check ~name:"recovery within the analytic budget"
        ~pass:
          (List.for_all
             (fun o ->
               match o.recovery with None -> false | Some r -> r <= budget +. 5.)
             faulted)
        "worst recovery %.1f vs budget (n-1)dT + stabilize_real = %.1f"
        (List.fold_left
           (fun acc o ->
             match o.recovery with Some r -> Float.max acc r | None -> acc)
           0. faulted)
        budget;
      Common.check ~name:"corruption actually perturbed the run"
        ~pass:(List.for_all (fun o -> o.peak > bound) corrupted)
        "peak post-fault skew exceeds G(n)=%.2f in every corrupting run" bound;
      Common.check ~name:"validity holds around faults"
        ~pass:(List.for_all (fun o -> o.valid) outcomes)
        "fault-aware validity monitor: 0 violations in all %d runs"
        (List.length outcomes);
    ]
  in
  {
    Common.id = "A8";
    title = "Self-stabilization: crash, restart and corrupted state";
    tables = [ table ];
    checks;
  }
