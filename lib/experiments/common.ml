type check = { name : string; pass : bool; detail : string }

type result = {
  id : string;
  title : string;
  tables : Analysis.Table.t list;
  checks : check list;
}

let check ~name ~pass fmt =
  Format.kasprintf (fun detail -> { name; pass; detail }) fmt

let all_pass r = List.for_all (fun c -> c.pass) r.checks

let pp_result fmt r =
  Format.fprintf fmt "@[<v>### %s: %s@,@," r.id r.title;
  List.iter (fun t -> Format.fprintf fmt "%a@," Analysis.Table.pp t) r.tables;
  List.iter
    (fun c ->
      Format.fprintf fmt "[%s] %s — %s@," (if c.pass then "PASS" else "FAIL") c.name
        c.detail)
    r.checks;
  Format.fprintf fmt "@]"

type run = {
  sim : Gcs.Sim.t;
  recorder : Gcs.Metrics.recorder;
  invariants : Gcs.Invariant.monitor;
}

let launch ?(watch = []) ?(churn = []) ?(sample_every = 1.0) cfg ~horizon =
  let sim = Gcs.Sim.create cfg in
  let engine = Gcs.Sim.engine sim in
  let view = Gcs.Sim.view sim in
  let recorder = Gcs.Metrics.attach engine view ~every:sample_every ~until:horizon ~watch () in
  let invariants =
    Gcs.Invariant.attach engine view ~params:(Gcs.Sim.params sim) ~every:sample_every
      ~until:horizon ~faults:cfg.Gcs.Sim.faults ()
  in
  Topology.Churn.schedule engine churn;
  Gcs.Sim.run_until sim horizon;
  { sim; recorder; invariants }

let default_params ?(rho = 0.05) ?b0 ~n () = Gcs.Params.make ~rho ?b0 ~n ()

let invariants_check run =
  let violations = Gcs.Invariant.violations run.invariants in
  check ~name:"logical-clock validity" ~pass:(violations = [])
    "%d violations over %d probes (monotone, rate >= 1-rho, L <= Lmax)"
    (List.length violations)
    (Gcs.Invariant.probes run.invariants)
