module Table = Analysis.Table
module Params = Gcs.Params

(* Stable-skew bound as a function of b0 at a given parameter point. *)
let stable_bound ~n ~rho b0 =
  let p = Params.make ~rho ~b0 ~n () in
  Params.stable_local_skew p

let grid_minimizer ~n ~rho =
  let base = Params.make ~rho ~n () in
  let lo = 1.0001 *. Params.min_b0 base in
  let hi = 100. *. lo in
  let steps = 4000 in
  let best = ref (lo, stable_bound ~n ~rho lo) in
  for i = 1 to steps do
    (* geometric grid *)
    let b0 = lo *. ((hi /. lo) ** (float_of_int i /. float_of_int steps)) in
    let s = stable_bound ~n ~rho b0 in
    if s < snd !best then best := (b0, s)
  done;
  !best

let analytic_minimizer ~n ~rho =
  let base = Params.make ~rho ~n () in
  let unconstrained =
    sqrt (8. *. rho *. Params.global_skew_bound base *. Params.tau base)
  in
  Float.max unconstrained (1.0001 *. Params.min_b0 base)

let loglog_slope points =
  fst (Analysis.Stats.linear_fit (List.map (fun (x, y) -> (log x, log y)) points))

let run ~quick =
  let rho0 = 0.05 in
  let ns = if quick then [ 64; 128; 256; 512 ] else [ 64; 128; 256; 512; 1024; 2048 ] in
  let table_n =
    Table.create
      ~title:(Printf.sprintf "Optimal B0 vs n (rho=%.2f): B0* = sqrt(8 rho G tau)" rho0)
      ~columns:[ "n"; "B0* (grid)"; "B0* (analytic)"; "S(B0*)"; "S(B0*)/sqrt(n)" ]
  in
  (* The grid searches fan out over the domain pool; rows are added
     serially afterwards so table order never depends on scheduling. *)
  let n_points =
    List.map
      (fun (n, (b0_grid, s_min)) ->
        let b0_formula = analytic_minimizer ~n ~rho:rho0 in
        Table.add_row table_n
          [
            Table.Int n;
            Table.Float b0_grid;
            Table.Float b0_formula;
            Table.Float s_min;
            Table.Float (s_min /. sqrt (float_of_int n));
          ];
        (float_of_int n, b0_grid, b0_formula))
      (Runner.sweep (fun n -> grid_minimizer ~n ~rho:rho0) ns)
  in
  (* rho sweep at fixed n *)
  let n_fixed = 256 in
  let rhos = [ 0.01; 0.02; 0.05; 0.1; 0.2 ] in
  let table_rho =
    Table.create
      ~title:(Printf.sprintf "Optimal B0 vs rho (n=%d)" n_fixed)
      ~columns:[ "rho"; "B0* (grid)"; "S(B0*)" ]
  in
  let rho_points =
    List.map
      (fun (rho, (b0_grid, s_min)) ->
        Table.add_row table_rho
          [ Table.Float rho; Table.Float b0_grid; Table.Float s_min ];
        (rho, b0_grid))
      (Runner.sweep (fun rho -> grid_minimizer ~n:n_fixed ~rho) rhos)
  in
  let slope_n = loglog_slope (List.map (fun (n, b, _) -> (n, b)) n_points) in
  let max_rel_err =
    List.fold_left
      (fun acc (_, grid, formula) ->
        Float.max acc (Float.abs (grid -. formula) /. formula))
      0. n_points
  in
  (* Simulation check at B0* for a real (small) n. *)
  let n_sim = if quick then 48 else 96 in
  let b0_star = analytic_minimizer ~n:n_sim ~rho:rho0 in
  let params = Params.make ~rho:rho0 ~b0:b0_star ~n:n_sim () in
  let horizon = 300. in
  let cfg =
    Gcs.Sim.config ~params
      ~clocks:(Gcs.Drift.assign params ~horizon ~seed:2 Gcs.Drift.Split_extremes)
      ~delay:(Dsim.Delay.maximal ~bound:params.Params.delay_bound)
      ~initial_edges:(Topology.Static.path n_sim) ()
  in
  let sim_run = Common.launch cfg ~horizon in
  let measured = Gcs.Metrics.max_local_skew sim_run.Common.recorder in
  let checks =
    [
      Common.check ~name:"grid search matches the calculus minimizer"
        ~pass:(max_rel_err < 0.02) "max relative error %.4f over %d sizes" max_rel_err
        (List.length n_points);
      Common.check ~name:"B0* scales as sqrt(n)"
        ~pass:(Float.abs (slope_n -. 0.5) < 0.05)
        "log-log slope %.3f (Corollary 6.14: Theta(sqrt(rho n)))" slope_n;
      Common.check ~name:"B0* grows with rho"
        ~pass:
          (let rec increasing = function
             | (_, a) :: ((_, b) :: _ as rest) -> a < b && increasing rest
             | _ -> true
           in
           increasing rho_points)
        "monotone over rho in [%.2f, %.2f]" (List.hd rhos)
        (List.nth rhos (List.length rhos - 1));
      Common.check ~name:"simulation at B0* stays within S(B0*)"
        ~pass:(measured <= Params.stable_local_skew params)
        "measured %.3f vs S(B0*) = %.3f (n=%d, B0*=%.2f)" measured
        (Params.stable_local_skew params)
        n_sim b0_star;
      Common.invariants_check sim_run;
    ]
  in
  {
    Common.id = "A7";
    title = "Corollary 6.14's optimal B0 = Theta(sqrt(rho n))";
    tables = [ table_n; table_rho ];
    checks;
  }
