type entry = {
  id : string;
  title : string;
  run : quick:bool -> Common.result;
}

let all =
  [
    { id = "E1"; title = "Global skew bound (Theorem 6.9)"; run = E1_global_skew.run };
    {
      id = "E2";
      title = "Dynamic local skew envelope (Corollary 6.13)";
      run = E2_envelope.run;
    };
    {
      id = "E3";
      title = "Stabilization/skew trade-off (Corollary 6.14)";
      run = E3_tradeoff.run;
    };
    {
      id = "E4";
      title = "Lower bound constructions (Theorem 4.1, Figure 1)";
      run = E4_lowerbound.run;
    };
    {
      id = "E5";
      title = "Stable local skew / gradient property (Theorem 6.12)";
      run = E5_stable_skew.run;
    };
    {
      id = "E6";
      title = "Baseline comparison (Section 1 example)";
      run = E6_baseline.run;
    };
    {
      id = "E7";
      title = "Interval-connectivity requirement (Lemma 6.8)";
      run = E7_churn.run;
    };
    { id = "E8"; title = "Validity and determinism"; run = E8_validity.run };
    {
      id = "A1";
      title = "Ablation: broadcast period dH (message cost vs skew)";
      run = A1_message_cost.run;
    };
    {
      id = "A2";
      title = "Ablation: discovery lag (Section 3.2's D)";
      run = A2_discovery.run;
    };
    {
      id = "A3";
      title = "Extension: heterogeneous link delay bounds (Section 7 / [9])";
      run = A3_hetero.run;
    };
    {
      id = "A4";
      title = "Extension: node joins and leaves (Section 7)";
      run = A4_join_leave.run;
    };
    {
      id = "A5";
      title = "Extension: weighted-graph view / effective diameter (Section 7)";
      run = A5_weights.run;
    };
    {
      id = "A6";
      title = "Robustness: silent message loss (outside the model)";
      run = A6_lossy.run;
    };
    {
      id = "A7";
      title = "Corollary 6.14's optimal B0 = Theta(sqrt(rho n))";
      run = A7_optimal_b0.run;
    };
    {
      id = "A8";
      title = "Self-stabilization: crash, restart and corrupted state";
      run = A8_faults.run;
    };
  ]

let find id =
  let id = String.uppercase_ascii id in
  List.find_opt (fun e -> e.id = id) all

(* Entries are independently seeded, so the registry fans out over the
   domain pool; Runner.map's order-preserving merge keeps the result list
   (and anything printed from it) byte-identical to the serial path. *)
let run_all ?jobs ~quick () = Runner.map ?jobs (fun e -> e.run ~quick) all
