(** The experiment catalog: every reproduced result of the paper, indexed
    by the ids used in DESIGN.md and EXPERIMENTS.md. *)

type entry = {
  id : string;
  title : string;
  run : quick:bool -> Common.result;
}

val all : entry list

val find : string -> entry option
(** Case-insensitive lookup by id ("e1" .. "e8"). *)

val run_all : ?jobs:int -> quick:bool -> unit -> Common.result list
(** Run every experiment on {!Runner.map}'s domain pool ([jobs] defaults
    to {!Runner.default_jobs}); results come back in registry order and
    are byte-identical for every [jobs]. *)
