(** One-line replay specs for the bounded model explorer.

    A spec pins an explored configuration — node count, delay grid,
    per-node drift rates, horizon, branching depth, the enumerated
    adversary dimensions — plus the {e choice tape}: the option index the
    adversary took at each choice point of one branch. Re-executing the
    spec replays that branch byte-identically (the engine's (time, seq)
    determinism contract, DESIGN §9/§13), which is how counterexamples
    found by {!Explorer.explore} become one-command repros. *)

type t = {
  n : int;  (** nodes; the topology is the complete graph on them *)
  delays : int;
      (** delay grid size [k >= 1]: each in-flight message picks its
          delay from [{i·T/(k-1) | 0 <= i < k}] ([{T}] when [k = 1]);
          [k = 3] gives the issue's [{0, T/2, T}] *)
  drift : string;
      (** one rate letter per node: ['s']low [(1-ρ)], ['n']ominal [1],
          ['f']ast [(1+ρ)] — constant-rate clocks on the drift grid *)
  horizon : float;  (** run end (real time) *)
  depth : int;
      (** branching depth: choice points beyond this many take option 0
          (the canonical completion) and are never branched on *)
  tie : bool;
      (** enumerate same-instant dispatch orders via the engine
          tie-break hook (off: default (time, seq) order) *)
  churn : bool;
      (** flap the edge {0,1}: remove at [t=1], re-add at [t=2] *)
  faults : Dsim.Fault.schedule;  (** discretized fault ops, may be empty *)
  choices : int list;
      (** the choice tape; [[]] explores from the root, non-empty forces
          a prefix (a full tape replays a single branch) *)
}

val make :
  ?delays:int ->
  ?drift:string ->
  ?horizon:float ->
  ?depth:int ->
  ?tie:bool ->
  ?churn:bool ->
  ?faults:Dsim.Fault.schedule ->
  ?choices:int list ->
  n:int ->
  unit ->
  t
(** Defaults: [delays = 3], [drift] alternating ["sfsf…"], [horizon = 4],
    [depth = 12], [tie = true], [churn = false], no faults, empty tape.
    Raises [Invalid_argument] on an inconsistent combination. *)

val validate : t -> (unit, string) result

val to_spec : t -> string
(** One line, e.g.
    [n=2 delays=3 drift=sf horizon=4 depth=12 tie=1 churn=0 choices=0.2.1].
    The fault token is omitted when the schedule is empty; an empty tape
    prints as [choices=-]. *)

val of_spec : string -> (t, string) result
(** Inverse of {!to_spec}: [of_spec (to_spec s) = Ok s]. *)

val pp : Format.formatter -> t -> unit
