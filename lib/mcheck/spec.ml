type t = {
  n : int;
  delays : int;
  drift : string;
  horizon : float;
  depth : int;
  tie : bool;
  churn : bool;
  faults : Dsim.Fault.schedule;
  choices : int list;
}

let rate_chars = "snf"

let validate s =
  if s.n < 2 then Error "n must be >= 2"
  else if String.length s.drift <> s.n then
    Error
      (Printf.sprintf "drift=%s needs exactly one rate letter per node (n=%d)"
         s.drift s.n)
  else if String.exists (fun c -> not (String.contains rate_chars c)) s.drift
  then Error (Printf.sprintf "drift=%s: rate letters are s, n, f" s.drift)
  else if s.delays < 1 then Error "delays must be >= 1"
  else if s.horizon <= 0. then Error "horizon must be positive"
  else if s.depth < 0 then Error "depth must be >= 0"
  else if List.exists (fun c -> c < 0) s.choices then
    Error "choices must be non-negative"
  else
    Result.map_error
      (fun m -> "faults: " ^ m)
      (Dsim.Fault.validate ~n:s.n s.faults)

let make ?(delays = 3) ?drift ?(horizon = 4.) ?(depth = 12) ?(tie = true)
    ?(churn = false) ?(faults = []) ?(choices = []) ~n () =
  let drift =
    match drift with
    | Some d -> d
    (* Default grid: alternate slow and fast clocks — the adversary's
       classic worst case, and never all-identical rates. *)
    | None -> String.init n (fun i -> if i land 1 = 0 then 's' else 'f')
  in
  let s = { n; delays; drift; horizon; depth; tie; churn; faults; choices } in
  match validate s with Ok () -> s | Error m -> invalid_arg ("Mcheck.Spec: " ^ m)

let choices_token = function
  | [] -> "-"
  | cs -> String.concat "." (List.map string_of_int cs)

let to_spec s =
  Printf.sprintf "n=%d delays=%d drift=%s horizon=%g depth=%d tie=%d churn=%d%s choices=%s"
    s.n s.delays s.drift s.horizon s.depth
    (if s.tie then 1 else 0)
    (if s.churn then 1 else 0)
    (match s.faults with [] -> "" | f -> " faults=" ^ Dsim.Fault.to_spec f)
    (choices_token s.choices)

let of_spec spec =
  let ( let* ) = Result.bind in
  let fields =
    String.split_on_char ' ' (String.trim spec) |> List.filter (fun f -> f <> "")
  in
  let lookup key =
    let prefix = key ^ "=" in
    match
      List.find_opt
        (fun f ->
          String.length f > String.length prefix
          && String.sub f 0 (String.length prefix) = prefix)
        fields
    with
    | Some f ->
      Ok (String.sub f (String.length prefix) (String.length f - String.length prefix))
    | None -> Error (Printf.sprintf "spec is missing %s=" key)
  in
  let int_field key =
    let* v = lookup key in
    match int_of_string_opt v with
    | Some i -> Ok i
    | None -> Error (Printf.sprintf "%s=%s is not an integer" key v)
  in
  let* n = int_field "n" in
  let* delays = int_field "delays" in
  let* drift = lookup "drift" in
  let* horizon_s = lookup "horizon" in
  let* horizon =
    match float_of_string_opt horizon_s with
    | Some h when h > 0. -> Ok h
    | _ -> Error (Printf.sprintf "horizon=%s is not a positive number" horizon_s)
  in
  let* depth = int_field "depth" in
  let* tie = int_field "tie" in
  let* churn = int_field "churn" in
  let* faults =
    match lookup "faults" with
    | Error _ -> Ok [] (* optional, like Scenario specs *)
    | Ok v -> Dsim.Fault.of_spec v
  in
  let* choices_s = lookup "choices" in
  let* choices =
    if choices_s = "-" then Ok []
    else
      let parts = String.split_on_char '.' choices_s in
      let rec go acc = function
        | [] -> Ok (List.rev acc)
        | p :: rest -> (
          match int_of_string_opt p with
          | Some c when c >= 0 -> go (c :: acc) rest
          | _ -> Error (Printf.sprintf "choices token %s is not a choice index" p))
      in
      go [] parts
  in
  let s =
    { n; delays; drift; horizon; depth; tie = tie <> 0; churn = churn <> 0; faults; choices }
  in
  let* () = validate s in
  Ok s

let pp fmt s = Format.pp_print_string fmt (to_spec s)
