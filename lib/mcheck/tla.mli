(** TLA+ trace-instance export for Apalache cross-validation.

    Turns one explored branch's probe samples ({!Explorer.samples}) into
    a standalone TLA+ module embedding the integer-scaled
    [(time, L, Lmax)] sequence and re-stating the abstract sample-step
    relation of [spec/ClockSyncGcs.tla] ([SampleOk]: minimum logical
    rate between samples, Lmax dominance), so a simulator execution can
    be checked against the hand-written spec's abstraction with
    [apalache-mc check --inv=StepOk]. See [spec/README.md]. *)

val scale : int
(** Fixed-point factor applied to times and clock values (1000). *)

val export :
  module_name:string -> Spec.t -> (float * float array * float array) list -> string
(** The full module text. [module_name] must match the file name the
    caller writes it to (a TLA+ requirement). Branches with faults or
    churn set [RATE_CHECK == FALSE]: discontinuities legitimately break
    the sampled min-rate bound, so those traces only check dominance. *)
