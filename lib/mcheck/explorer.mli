(** Bounded exhaustive explorer over the real {!Dsim.Engine}.

    The explorer enumerates {e every} adversary choice sequence of a tiny
    configuration ({!Spec.t}): the per-message delay pick from a
    discretized grid, the dispatch order of same-instant event groups
    (via {!Dsim.Engine.set_tie_break}), and optionally churn and fault
    placement — and checks every resulting execution against the Section
    6 obligations with the {e same} checker code as the offline auditor
    ({!Audit.Conformance.step} fed incrementally, the
    {!Gcs.Invariant.checker} validity rules, and the Lemma 6.8 Lmax-lag
    bound from {!Audit.Guarantees.lmax_lag_bound}).

    There is no snapshotting: a branch is identified by its {e choice
    tape} (the option index taken at each choice point), and the engine's
    (time, seq) determinism contract (DESIGN §9) makes re-execution from
    a tape prefix byte-identical, so DFS backtracking is just "re-run
    with the incremented prefix". Visited states are pruned by a
    canonical state key (sorted live-edge set, quantized clock offsets,
    in-flight message multiset); a state reached again at an
    equal-or-greater depth is abandoned mid-run. *)

exception Replay_diverged of string
(** A forced tape choice was out of range for the choice point it landed
    on — the spec does not describe an execution of this configuration. *)

(** {1 Exploration} *)

type stats = {
  traces : int;  (** complete executions checked *)
  pruned : int;  (** branches abandoned at a visited state *)
  distinct_states : int;  (** canonical states in the visited set *)
  choice_points : int;  (** total adversary choices consumed *)
  events : int;  (** engine events dispatched, all branches *)
  max_depth : int;  (** longest choice tape seen *)
}

type counterexample = {
  spec : Spec.t;
      (** the input spec with [choices] set to the failing branch's full
          tape — a one-line, one-command repro (see {!Spec.to_spec}) *)
  report : Audit.Report.t;
}

type outcome = {
  stats : stats;
  violations : counterexample list;  (** in discovery order *)
  exhausted : bool;
      (** every branch to [depth] was explored or pruned; [false] when a
          budget or the violation cap stopped the search early *)
  truncated : bool;
      (** some branch had a real (multi-option) choice point beyond
          [depth] — deeper exploration could reach more states *)
}

val explore :
  ?max_states:int ->
  ?budget_ms:float ->
  ?max_violations:int ->
  ?quantum:float ->
  ?entry_shim:(Dsim.Trace.entry -> Dsim.Trace.entry list) ->
  ?view_shim:(Gcs.Metrics.view -> Gcs.Metrics.view) ->
  Spec.t ->
  outcome
(** Exhaust the choice tree of the spec's configuration up to its
    branching depth. [s.choices], when non-empty, roots the search at
    that forced prefix instead of the empty tape.

    [max_states] (default unlimited) and [budget_ms] (default unlimited;
    wall clock) are safety valves — crossing either stops the search with
    [exhausted = false]. [max_violations] (default 16) stops after that
    many counterexamples. [quantum] (default ΔH/8) is the clock-offset
    quantization of the canonical state key: smaller separates more
    states (slower, more faithful), larger merges more.

    [entry_shim] rewrites each trace entry before the incremental
    conformance checker sees it, and [view_shim] wraps the metrics view
    the validity probes read — both exist so tests can present a {e
    broken} engine to the checkers without breaking the real engine
    (default: identity). Raises [Invalid_argument] on an invalid spec. *)

type level = { at_depth : int; outcome : outcome }

val explore_deepening :
  ?max_states:int ->
  ?budget_ms:float ->
  ?max_violations:int ->
  ?quantum:float ->
  ?entry_shim:(Dsim.Trace.entry -> Dsim.Trace.entry list) ->
  ?view_shim:(Gcs.Metrics.view -> Gcs.Metrics.view) ->
  Spec.t ->
  level list
(** Iterative deepening: run {!explore} at doubling depths
    (4, 8, … , [s.depth]), each with a fresh visited set, sharing one
    wall-clock budget. Stops early at a level that was not truncated
    (the whole tree fits under its depth — deeper levels are identical)
    or that was itself stopped early. The last element is the final
    verdict. *)

(** {1 Replay} *)

val replay :
  ?entry_shim:(Dsim.Trace.entry -> Dsim.Trace.entry list) ->
  ?view_shim:(Gcs.Metrics.view -> Gcs.Metrics.view) ->
  Spec.t ->
  Audit.Report.t * string
(** Re-execute the single branch forced by the spec's choice tape
    (choice points past the tape take option 0) and return its audit
    report and full trace CSV. Deterministic: equal specs yield
    byte-identical CSV and rendered reports. Raises {!Replay_diverged}
    on a tape that does not fit the configuration's choice tree. *)

val samples : Spec.t -> (float * float array * float array) list
(** Replay the spec's branch collecting a [(time, L array, Lmax array)]
    sample at every between-events probe point, chronologically — the
    input to {!Tla.export}. *)

val shrink :
  ?entry_shim:(Dsim.Trace.entry -> Dsim.Trace.entry list) ->
  ?view_shim:(Gcs.Metrics.view -> Gcs.Metrics.view) ->
  Spec.t ->
  Spec.t
(** Greedily minimize a failing spec ({!Audit.Fuzz.greedy}): drop faults
    and churn, halve or trim the choice tape, flatten drift to nominal,
    halve the horizon — keeping each step only if {!replay} still
    reports a violation. Returns the input unchanged if it passes. *)

(** {1 Configuration grids} *)

val roots :
  ?delays:int ->
  ?horizon:float ->
  ?depth:int ->
  ?tie:bool ->
  ?churn:bool ->
  ?fault_grid:bool ->
  ?alphabet:string ->
  n:int ->
  unit ->
  Spec.t list
(** The root specs [gcs_sim mcheck] sweeps: every drift assignment over
    [alphabet] (default ["sf"], so [2^n] assignments), optionally crossed
    with a small fault grid ([fault_grid], default off: no-faults plus a
    crash of node [n-1] at [t=1] with restart at [t=2]). *)

val default_quantum : float
