module Report = Audit.Report

(* Raised (by the explorer's own fresh-choice callback) to abandon a
   branch whose canonical state was already explored at a depth no worse
   than the current one. It unwinds straight through the engine's
   dispatch loop; the engine instance is simply discarded — deterministic
   re-execution from the choice prefix replaces snapshotting (DESIGN §9),
   so there is nothing to restore. *)
exception Prune

exception Replay_diverged of string

(* ------------------------------------------------------------------ *)
(* Choice driver                                                       *)
(* ------------------------------------------------------------------ *)

(* One adversary choice stream per branch: positions < |tape| replay the
   forced prefix, positions beyond consult [on_fresh] (which may raise
   [Prune]). Every consumed choice is logged with its option count so the
   explorer can backtrack over the exact tree shape it saw. *)
type driver = {
  tape : int array;
  on_fresh : pos:int -> options:int -> key:(unit -> string) -> int;
  mutable pos : int;
  mutable log_rev : (int * int) list;
}

let take dr ~options ~key =
  let i = dr.pos in
  dr.pos <- i + 1;
  let c =
    if i < Array.length dr.tape then begin
      let c = dr.tape.(i) in
      if c >= options then
        raise
          (Replay_diverged
             (Printf.sprintf
                "choice %d forces option %d but only %d options exist here" i c
                options));
      c
    end
    else dr.on_fresh ~pos:i ~options ~key
  in
  dr.log_rev <- (c, options) :: dr.log_rev;
  c

(* ------------------------------------------------------------------ *)
(* Canonical state key                                                 *)
(* ------------------------------------------------------------------ *)

(* ΔH/8 for the default parameters: fine enough to separate genuinely
   different schedules, coarse enough to merge float jitter. *)
let default_quantum = 0.125

(* The canonical key: quantized time, dispatchable-event count, per-node
   alive bit and clock offsets relative to node 0's L (logical behavior
   is translation-invariant; the message schedule is pinned by the
   quantized time since hardware rates are constant), the sorted live
   edge set, and the in-flight message multiset with quantized remaining
   delays. Two branches with equal keys have (up to quantization) the
   same future, so the later-or-equal-depth arrival is prunable. *)
let canon ~quantum ~n ~now ~epending ~view ~alive ~pending =
  let b = Buffer.create 128 in
  let q x = int_of_float (Float.round (x /. quantum)) in
  Buffer.add_string b (string_of_int (q now));
  Buffer.add_char b '#';
  Buffer.add_string b (string_of_int epending);
  let base = view.Gcs.Metrics.clock_of 0 in
  for i = 0 to n - 1 do
    Buffer.add_char b (if alive i then '|' else '!');
    Buffer.add_string b (string_of_int (q (view.Gcs.Metrics.clock_of i -. base)));
    Buffer.add_char b ',';
    Buffer.add_string b (string_of_int (q (view.Gcs.Metrics.lmax_of i -. base)))
  done;
  let edges = ref [] in
  view.Gcs.Metrics.iter_edges (fun u v -> edges := (u, v) :: !edges);
  List.iter
    (fun (u, v) -> Buffer.add_string b (Printf.sprintf ";%d-%d" u v))
    (List.sort compare !edges);
  let live = List.filter (fun (_, _, due) -> due > now +. 1e-12) !pending in
  pending := live;
  List.iter
    (fun (s, d, r) -> Buffer.add_string b (Printf.sprintf "@%d>%d:%d" s d r))
    (List.sort compare (List.map (fun (s, d, due) -> (s, d, q (due -. now))) live));
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* One branch = one deterministic execution                            *)
(* ------------------------------------------------------------------ *)

let eps_abs = 1e-9
let eps_rel = 1e-7
let slack m = eps_abs +. (eps_rel *. Float.abs m)

type branch = {
  b_log : (int * int) array;  (* (taken, options) per choice point *)
  b_report : Report.t option;  (* None: pruned before completion *)
  b_events : int;
  b_trace : Dsim.Trace.t;
  b_samples : (float * float array * float array) list;  (* chronological *)
}

let complete_edges n =
  let es = ref [] in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      es := (u, v) :: !es
    done
  done;
  List.rev !es

(* Execute one branch of [s]'s configuration on the real engine:
   - delay draws and (when [s.tie]) same-instant dispatch orders consume
     choices from [dr];
   - the engine tie-break hook doubles as a clean between-events probe:
     the shared Invariant checker, the Lemma 6.8 Lmax-lag bound and the
     incremental Conformance feed all advance there (and once more at the
     horizon);
   - [entry_shim] / [view_shim] let tests inject broken-engine behavior
     into the checkers without breaking the real engine. *)
let run_branch (s : Spec.t) ~tape ~on_fresh ~entry_shim ~view_shim ~quantum
    ~sample =
  let params = Gcs.Params.make ~n:s.Spec.n () in
  let rho = params.Gcs.Params.rho in
  let bound = params.Gcs.Params.delay_bound in
  let clocks =
    Array.init s.Spec.n (fun i ->
        match s.Spec.drift.[i] with
        | 's' -> Dsim.Hwclock.slowest ~rho
        | 'f' -> Dsim.Hwclock.fastest ~rho
        | _ -> Dsim.Hwclock.perfect)
  in
  let dr = { tape; on_fresh; pos = 0; log_rev = [] } in
  let pending = ref [] in
  let key_ref = ref (fun () -> assert false) in
  let key () = !key_ref () in
  let grid c =
    if s.Spec.delays = 1 then bound
    else float_of_int c *. bound /. float_of_int (s.Spec.delays - 1)
  in
  let delay =
    Dsim.Delay.directed ~bound (fun ~src ~dst ~now ->
        let c =
          if s.Spec.delays = 1 then 0
          else take dr ~options:s.Spec.delays ~key
        in
        let d = grid c in
        pending := (src, dst, now +. d) :: !pending;
        d)
  in
  let trace = Dsim.Trace.create ~log_limit:1_000_000 () in
  let cfg =
    Gcs.Sim.config ~algo:Gcs.Sim.Gradient ~scheduler:Gcs.Sim.Heap ~params
      ~clocks ~delay ~trace
      ~initial_edges:(complete_edges s.Spec.n)
      ~faults:s.Spec.faults ~fault_seed:0 ()
  in
  let sim = Gcs.Sim.create cfg in
  let engine = Gcs.Sim.engine sim in
  let view = view_shim (Gcs.Sim.view sim) in
  if s.Spec.churn then begin
    Gcs.Sim.remove_edge_at sim ~at:1. 0 1;
    Gcs.Sim.add_edge_at sim ~at:2. 0 1
  end;
  (key_ref :=
     fun () ->
       canon ~quantum ~n:s.Spec.n ~now:(Gcs.Sim.now sim)
         ~epending:(Dsim.Engine.pending_events engine)
         ~view
         ~alive:(Gcs.Sim.alive sim)
         ~pending);
  let inv =
    Gcs.Invariant.checker ~n:s.Spec.n ~params ~faults:s.Spec.faults ()
  in
  (* Lemma 6.8 holds on a connected network with no faults; churn
     disconnects tiny graphs and faults legitimately break it until
     recovery, so the lag probe is scoped to the clean configurations. *)
  let check_lag = s.Spec.faults = [] && not s.Spec.churn in
  let lag_bound = Audit.Guarantees.lmax_lag_bound params in
  let lag_violations = ref [] in
  let conf =
    Audit.Conformance.create
      (Audit.Conformance.of_params params ~horizon:s.Spec.horizon
         ~faults:s.Spec.faults ())
  in
  let fed = ref 0 in
  let feed () =
    let rec drop k l =
      if k = 0 then l else match l with [] -> [] | _ :: t -> drop (k - 1) t
    in
    List.iter
      (fun e ->
        incr fed;
        List.iter (Audit.Conformance.step conf) (entry_shim e))
      (drop !fed (Dsim.Trace.entries trace))
  in
  let samples = ref [] in
  let probe () =
    let time = Gcs.Sim.now sim in
    Gcs.Invariant.observe inv ~time ~l:view.Gcs.Metrics.clock_of
      ~lmax:view.Gcs.Metrics.lmax_of;
    if check_lag then begin
      let lo = ref infinity and hi = ref neg_infinity in
      for i = 0 to s.Spec.n - 1 do
        if Gcs.Sim.alive sim i then begin
          let m = view.Gcs.Metrics.lmax_of i in
          if m < !lo then lo := m;
          if m > !hi then hi := m
        end
      done;
      let lag = !hi -. !lo in
      if lag > lag_bound +. slack lag_bound then
        lag_violations :=
          {
            Report.time;
            rule = "lmax-propagation";
            detail =
              Printf.sprintf "Lmax lag %.9g > (1+rho)(n-1)dT=%.9g" lag
                lag_bound;
          }
          :: !lag_violations
    end;
    if sample then
      samples :=
        ( time,
          Array.init s.Spec.n view.Gcs.Metrics.clock_of,
          Array.init s.Spec.n view.Gcs.Metrics.lmax_of )
        :: !samples;
    feed ()
  in
  Dsim.Engine.set_tie_break engine
    (Some
       (fun k ->
         probe ();
         if k > 1 && s.Spec.tie then take dr ~options:k ~key else 0));
  let finish_run () =
    probe ();
    let conformance = Audit.Conformance.finish conf in
    let validity =
      {
        Report.violations =
          List.map
            (fun v ->
              {
                Report.time = v.Gcs.Invariant.time;
                rule = "validity-" ^ v.Gcs.Invariant.kind;
                detail =
                  Printf.sprintf "node %d: %s" v.Gcs.Invariant.node
                    v.Gcs.Invariant.detail;
              })
            (Gcs.Invariant.violations inv);
        events_audited = 0;
        probes = Gcs.Invariant.probes inv;
      }
    in
    let lag_report =
      { Report.violations = List.rev !lag_violations; events_audited = 0; probes = 0 }
    in
    let clamped = Dsim.Trace.count trace Dsim.Trace.Delay_clamped in
    let clamp_report =
      {
        Report.violations =
          (if clamped = 0 then []
           else
             [
               {
                 Report.time = 0.;
                 rule = "delay-clamped";
                 detail =
                   Printf.sprintf
                     "%d delay draw(s) clamped to [0, T] — a broken \
                      adversary policy voids the coverage claim"
                     clamped;
               };
             ]);
        events_audited = 0;
        probes = 0;
      }
    in
    Report.merge conformance
      (Report.merge validity (Report.merge lag_report clamp_report))
  in
  let report =
    match Gcs.Sim.run_until sim s.Spec.horizon with
    | () -> Some (finish_run ())
    | exception Prune -> None
  in
  {
    b_log = Array.of_list (List.rev dr.log_rev);
    b_report = report;
    b_events = Dsim.Engine.events_processed engine;
    b_trace = trace;
    b_samples = List.rev !samples;
  }

(* ------------------------------------------------------------------ *)
(* Exhaustive DFS by re-execution                                      *)
(* ------------------------------------------------------------------ *)

type stats = {
  traces : int;
  pruned : int;
  distinct_states : int;
  choice_points : int;
  events : int;
  max_depth : int;
}

type counterexample = { spec : Spec.t; report : Report.t }

type outcome = {
  stats : stats;
  violations : counterexample list;
  exhausted : bool;
  truncated : bool;
}

let no_entry_shim e = [ e ]

let no_view_shim (v : Gcs.Metrics.view) = v

let explore ?(max_states = max_int) ?(budget_ms = 0.) ?(max_violations = 16)
    ?(quantum = default_quantum) ?(entry_shim = no_entry_shim)
    ?(view_shim = no_view_shim) (s : Spec.t) =
  (match Spec.validate s with
  | Ok () -> ()
  | Error m -> invalid_arg ("Mcheck.Explorer.explore: " ^ m));
  let visited : (string, int) Hashtbl.t = Hashtbl.create 4096 in
  let t0 = Unix.gettimeofday () in
  let over_budget () =
    (budget_ms > 0. && (Unix.gettimeofday () -. t0) *. 1000. > budget_ms)
    || Hashtbl.length visited > max_states
  in
  let traces = ref 0
  and pruned = ref 0
  and choice_points = ref 0
  and events = ref 0
  and max_depth = ref 0
  and truncated = ref false
  and exhausted = ref true
  and violations = ref [] in
  let tape = ref (Array.of_list s.Spec.choices) in
  let running = ref true in
  while !running do
    let on_fresh ~pos ~options ~key =
      if pos >= s.Spec.depth then begin
        (* Beyond the branching depth every choice point takes option 0:
           the rest of the branch is the canonical completion, explored
           once and never branched or deduplicated. *)
        if options > 1 then truncated := true;
        0
      end
      else begin
        let k = key () in
        (match Hashtbl.find_opt visited k with
        | Some p when p <= pos -> raise_notrace Prune
        | _ -> Hashtbl.replace visited k pos);
        0
      end
    in
    let br =
      run_branch s ~tape:!tape ~on_fresh ~entry_shim ~view_shim ~quantum
        ~sample:false
    in
    events := !events + br.b_events;
    choice_points := !choice_points + Array.length br.b_log;
    if Array.length br.b_log > !max_depth then max_depth := Array.length br.b_log;
    (match br.b_report with
    | None -> incr pruned
    | Some r ->
      incr traces;
      if not (Report.ok r) then
        violations :=
          {
            spec = { s with Spec.choices = List.map fst (Array.to_list br.b_log) };
            report = r;
          }
          :: !violations);
    if List.length !violations >= max_violations then begin
      running := false;
      exhausted := false
    end
    else begin
      (* Backtrack: the deepest choice point (within depth) with an
         untried option; everything before it is the next forced tape. *)
      let log = br.b_log in
      let rec back i =
        if i < 0 then None
        else
          let c, opts = log.(i) in
          if i < s.Spec.depth && c + 1 < opts then Some i else back (i - 1)
      in
      match back (Array.length log - 1) with
      | None -> running := false
      | Some i ->
        if over_budget () then begin
          running := false;
          exhausted := false
        end
        else
          tape :=
            Array.init (i + 1) (fun j ->
                if j = i then fst log.(j) + 1 else fst log.(j))
    end
  done;
  {
    stats =
      {
        traces = !traces;
        pruned = !pruned;
        distinct_states = Hashtbl.length visited;
        choice_points = !choice_points;
        events = !events;
        max_depth = !max_depth;
      };
    violations = List.rev !violations;
    exhausted = !exhausted;
    truncated = !truncated;
  }

type level = { at_depth : int; outcome : outcome }

let explore_deepening ?max_states ?(budget_ms = 0.) ?max_violations ?quantum
    ?entry_shim ?view_shim (s : Spec.t) =
  let rec depths d acc =
    if d >= s.Spec.depth then List.rev (s.Spec.depth :: acc)
    else depths (2 * d) (d :: acc)
  in
  let ds = if s.Spec.depth <= 4 then [ s.Spec.depth ] else depths 4 [] in
  let t0 = Unix.gettimeofday () in
  let rec go acc = function
    | [] -> List.rev acc
    | d :: rest ->
      let remaining =
        if budget_ms <= 0. then 0.
        else Float.max 1. (budget_ms -. ((Unix.gettimeofday () -. t0) *. 1000.))
      in
      let outcome =
        explore ?max_states ~budget_ms:remaining ?max_violations ?quantum
          ?entry_shim ?view_shim
          { s with Spec.depth = d }
      in
      let acc = { at_depth = d; outcome } :: acc in
      (* A level that never met a branchable point past its depth limit
         already explored the whole tree: deeper levels are identical.
         A level cut short by budget or violation cap also ends the
         deepening — its successors would only re-tread the same work. *)
      if (not outcome.truncated) || not outcome.exhausted then List.rev acc
      else go acc rest
  in
  go [] ds

(* ------------------------------------------------------------------ *)
(* Replay, sampling, shrinking                                         *)
(* ------------------------------------------------------------------ *)

let replay_branch ?(entry_shim = no_entry_shim) ?(view_shim = no_view_shim)
    ~sample (s : Spec.t) =
  (match Spec.validate s with
  | Ok () -> ()
  | Error m -> invalid_arg ("Mcheck.Explorer.replay: " ^ m));
  let on_fresh ~pos:_ ~options:_ ~key:_ = 0 in
  run_branch s
    ~tape:(Array.of_list s.Spec.choices)
    ~on_fresh ~entry_shim ~view_shim ~quantum:default_quantum ~sample

let replay ?entry_shim ?view_shim s =
  let br = replay_branch ?entry_shim ?view_shim ~sample:false s in
  match br.b_report with
  | Some r -> (r, Dsim.Trace.to_csv br.b_trace)
  | None -> assert false (* replay never prunes *)

let samples s =
  let br = replay_branch ~sample:true s in
  br.b_samples

let shrink_candidates (sp : Spec.t) =
  List.filter_map
    (fun c -> c)
    [
      (match sp.Spec.faults with
      | [] -> None
      | _ -> Some { sp with Spec.faults = [] });
      (if sp.Spec.churn then Some { sp with Spec.churn = false } else None);
      (match sp.Spec.choices with
      | [] -> None
      | cs ->
        let k = List.length cs in
        if k < 2 then None
        else Some { sp with Spec.choices = List.filteri (fun i _ -> i < k / 2) cs });
      (match sp.Spec.choices with
      | [] -> None
      | cs ->
        let k = List.length cs in
        Some { sp with Spec.choices = List.filteri (fun i _ -> i < k - 1) cs });
      (if String.exists (fun c -> c <> 'n') sp.Spec.drift then
         Some { sp with Spec.drift = String.make sp.Spec.n 'n' }
       else None);
      (if sp.Spec.horizon > 2. then
         Some { sp with Spec.horizon = Float.max 2. (sp.Spec.horizon /. 2.) }
       else None);
    ]

let shrink ?entry_shim ?view_shim s =
  let fails sp =
    match replay ?entry_shim ?view_shim sp with
    | r, _ -> not (Report.ok r)
    | exception Replay_diverged _ -> false
    | exception Invalid_argument _ -> false
  in
  Audit.Fuzz.greedy ~fails ~candidates:shrink_candidates s

(* ------------------------------------------------------------------ *)
(* Root configuration grid                                             *)
(* ------------------------------------------------------------------ *)

let rec int_pow b e = if e = 0 then 1 else b * int_pow b (e - 1)

let roots ?(delays = 3) ?(horizon = 4.) ?(depth = 12) ?(tie = true)
    ?(churn = false) ?(fault_grid = false) ?(alphabet = "sf") ~n () =
  let k = String.length alphabet in
  if k = 0 then invalid_arg "Mcheck.Explorer.roots: empty drift alphabet";
  let drifts =
    List.init (int_pow k n) (fun idx ->
        String.init n (fun i -> alphabet.[idx / int_pow k i mod k]))
  in
  let fault_variants =
    if fault_grid then
      [
        [];
        [
          Dsim.Fault.Crash { node = n - 1; at = 1. };
          Dsim.Fault.Restart { node = n - 1; at = 2.; corrupt = false };
        ];
      ]
    else [ [] ]
  in
  List.concat_map
    (fun drift ->
      List.map
        (fun faults ->
          Spec.make ~delays ~drift ~horizon ~depth ~tie ~churn ~faults ~n ())
        fault_variants)
    drifts
