type t = {
  n : int;
  k : int;
  a_len : int;
  b_len : int;
  u : int;
  v : int;
  edges : (int * int) list;
  block : (int * int) list;
}

(* Id scheme: w0 = 0; chain-A position i in 1..a_len-1 has id i;
   wn = a_len; chain-B position j in 1..b_len-1 has id a_len + j.
   Total ids: a_len + b_len = n. *)

let a_id t i =
  if i < 0 || i > t.a_len then invalid_arg "Twochain.a_id: position out of range";
  i

let b_id t j =
  if j < 0 || j > t.b_len then invalid_arg "Twochain.b_id: position out of range";
  if j = 0 then 0 else if j = t.b_len then t.a_len else t.a_len + j

let w0 _ = 0

let wn t = t.a_len

let build ~n ~k =
  if n < 6 then invalid_arg "Twochain.build: need n >= 6";
  let a_len = n / 2 in
  let b_len = n - a_len in
  if k < 1 || k >= (a_len / 2) - 1 then
    invalid_arg "Twochain.build: need 1 <= k < a_len/2 - 1";
  let t = { n; k; a_len; b_len; u = k; v = a_len - k; edges = []; block = [] } in
  let norm = Dsim.Dyngraph.normalize in
  let a_edges =
    List.init a_len (fun i -> norm (a_id t i) (a_id t (i + 1)))
  in
  let b_edges =
    List.init b_len (fun j -> norm (b_id t j) (b_id t (j + 1)))
  in
  let block =
    List.init k (fun i -> norm (a_id t i) (a_id t (i + 1)))
    @ List.init k (fun i -> norm (a_id t (a_len - k + i)) (a_id t (a_len - k + i + 1)))
  in
  {
    t with
    edges = List.sort Dsim.Dyngraph.compare_edge (a_edges @ b_edges);
    block = List.sort Dsim.Dyngraph.compare_edge block;
  }

let a_chain t = List.init (t.a_len + 1) (a_id t)

let b_chain t = List.init (t.b_len + 1) (b_id t)

let mask t ~delay = Mask.create (List.map (fun e -> (e, delay)) t.block)

let is_block_edge t u v = List.mem (Dsim.Dyngraph.normalize u v) t.block
