module Prng = Dsim.Prng

let check_n ?(min = 1) n =
  if n < min then invalid_arg (Printf.sprintf "Static: need at least %d nodes" min)

let path n =
  check_n ~min:2 n;
  List.init (n - 1) (fun i -> (i, i + 1))

let ring n =
  check_n ~min:3 n;
  (0, n - 1) :: List.init (n - 1) (fun i -> (i, i + 1))
  |> List.sort Dsim.Dyngraph.compare_edge

let star n =
  check_n ~min:2 n;
  List.init (n - 1) (fun i -> (0, i + 1))

let complete n =
  check_n ~min:2 n;
  List.concat_map (fun u -> List.init (n - 1 - u) (fun k -> (u, u + 1 + k))) (List.init n Fun.id)

let grid ~rows ~cols =
  if rows < 1 || cols < 1 then invalid_arg "Static.grid: empty grid";
  let id r c = (r * cols) + c in
  let horizontal =
    List.concat_map
      (fun r -> List.init (cols - 1) (fun c -> (id r c, id r (c + 1))))
      (List.init rows Fun.id)
  in
  let vertical =
    List.concat_map
      (fun r -> List.init cols (fun c -> (id r c, id (r + 1) c)))
      (List.init (rows - 1) Fun.id)
  in
  List.sort Dsim.Dyngraph.compare_edge (horizontal @ vertical)

let binary_tree n =
  check_n ~min:2 n;
  List.init (n - 1) (fun i ->
      let child = i + 1 in
      ((child - 1) / 2, child))

let adjacency n edges =
  let adj = Array.make n [] in
  List.iter
    (fun (u, v) ->
      adj.(u) <- v :: adj.(u);
      adj.(v) <- u :: adj.(v))
    edges;
  adj

let distances ~n edges src =
  let adj = adjacency n edges in
  let dist = Array.make n max_int in
  let queue = Queue.create () in
  dist.(src) <- 0;
  Queue.push src queue;
  while not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    List.iter
      (fun v ->
        if dist.(v) = max_int then begin
          dist.(v) <- dist.(u) + 1;
          Queue.push v queue
        end)
      adj.(u)
  done;
  dist

let is_connected ~n edges =
  n <= 1 || Array.for_all (fun d -> d < max_int) (distances ~n edges 0)

let dist ~n edges u v = (distances ~n edges u).(v)

let diameter ~n edges =
  let best = ref 0 in
  for u = 0 to n - 1 do
    let d = distances ~n edges u in
    Array.iter
      (fun x ->
        if x = max_int then invalid_arg "Static.diameter: graph is disconnected";
        if x > !best then best := x)
      d
  done;
  !best

let spanning_tree ~n edges =
  if not (is_connected ~n edges) then
    invalid_arg "Static.spanning_tree: graph is disconnected";
  let adj = adjacency n edges in
  let seen = Array.make n false in
  let tree = ref [] in
  let queue = Queue.create () in
  seen.(0) <- true;
  Queue.push 0 queue;
  while not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    List.iter
      (fun v ->
        if not seen.(v) then begin
          seen.(v) <- true;
          tree := Dsim.Dyngraph.normalize u v :: !tree;
          Queue.push v queue
        end)
      adj.(u)
  done;
  List.sort Dsim.Dyngraph.compare_edge !tree

let non_tree_edges ~n edges =
  let tree = spanning_tree ~n edges in
  List.filter (fun e -> not (List.mem e tree)) (List.sort_uniq Dsim.Dyngraph.compare_edge edges)

(* Clustered communities over a *shuffled* id space: dense intra-cluster
   rings plus random chords, sparse bridges closing a ring of clusters.
   Because membership comes from a random permutation, nodes of one
   community are scattered across the id range — the contiguous shard
   split cuts almost every intra-cluster edge, which is exactly the
   adversarial case the traffic-aware partitioner exists for. O(n *
   degree) construction, usable at the tens-of-thousands scale the
   parallel-dispatch smoke runs at. *)
let cluster prng ~n ~clusters ~degree =
  check_n ~min:2 n;
  if clusters < 1 || clusters > n / 2 then
    invalid_arg "Static.cluster: clusters must be in [1, n/2]";
  if degree < 2 then invalid_arg "Static.cluster: degree must be >= 2";
  let perm = Array.init n (fun i -> i) in
  Prng.shuffle prng perm;
  let bounds c = c * n / clusters in
  let edges = ref [] in
  let add u v =
    if u <> v then edges := (if u < v then (u, v) else (v, u)) :: !edges
  in
  for c = 0 to clusters - 1 do
    let lo = bounds c and hi = bounds (c + 1) in
    let m = hi - lo in
    (* Ring through the community keeps it connected. *)
    for i = lo to hi - 1 do
      add perm.(i) perm.(lo + ((i - lo + 1) mod m))
    done;
    (* Random chords up to the requested average degree. *)
    let chords = (degree - 2) * m / 2 in
    for _ = 1 to chords do
      add perm.(lo + Prng.int prng m) perm.(lo + Prng.int prng m)
    done;
    (* One bridge to the next community closes a ring of clusters. *)
    let lo' = bounds ((c + 1) mod clusters) and hi' = bounds (((c + 1) mod clusters) + 1) in
    add perm.(lo + Prng.int prng m) perm.(lo' + Prng.int prng (hi' - lo'))
  done;
  List.sort_uniq Dsim.Dyngraph.compare_edge !edges

let erdos_renyi prng ~n ~p =
  check_n ~min:2 n;
  if p <= 0. || p > 1. then invalid_arg "Static.erdos_renyi: p must be in (0, 1]";
  let attempt () =
    List.filter (fun _ -> Prng.float prng 1. < p) (complete n)
  in
  let rec go k =
    if k = 0 then invalid_arg "Static.erdos_renyi: could not draw a connected graph";
    let edges = attempt () in
    if is_connected ~n edges then edges else go (k - 1)
  in
  go 1000

let random_geometric prng ~n ~radius =
  check_n ~min:2 n;
  if radius <= 0. then invalid_arg "Static.random_geometric: radius must be positive";
  let points = Array.init n (fun _ -> (Prng.float prng 1., Prng.float prng 1.)) in
  let edges_for r =
    let r2 = r *. r in
    List.filter
      (fun (u, v) ->
        let xu, yu = points.(u) and xv, yv = points.(v) in
        let dx = xu -. xv and dy = yu -. yv in
        (dx *. dx) +. (dy *. dy) <= r2)
      (complete n)
  in
  let rec grow r =
    let edges = edges_for r in
    if is_connected ~n edges then (points, edges) else grow (r *. 1.1)
  in
  grow radius
