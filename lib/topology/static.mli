(** Static topology generators and graph utilities.

    All generators return normalized edge lists ([u < v]) over nodes
    [0 .. n-1]; every generated graph is connected. *)

val path : int -> (int * int) list
(** [0-1-2-...-(n-1)]. *)

val ring : int -> (int * int) list
(** Requires [n >= 3]. *)

val star : int -> (int * int) list
(** Node 0 is the hub. *)

val complete : int -> (int * int) list

val grid : rows:int -> cols:int -> (int * int) list
(** Node [(r, c)] has id [r * cols + c]. *)

val binary_tree : int -> (int * int) list
(** Node [i]'s parent is [(i - 1) / 2]. *)

val erdos_renyi : Dsim.Prng.t -> n:int -> p:float -> (int * int) list
(** G(n, p), resampled (up to 1000 attempts) until connected. *)

val cluster :
  Dsim.Prng.t -> n:int -> clusters:int -> degree:int -> (int * int) list
(** Clustered communities over a shuffled id space: each community is a
    ring plus random chords to an average [degree], communities joined
    in a ring by single bridge edges (always connected). Node ids are
    scattered by a random permutation, so a contiguous shard split cuts
    almost every intra-cluster edge — the adversarial input for
    {!Dsim.Engine.partition}. O(n * degree); [clusters] in [1, n/2],
    [degree >= 2]. *)

val random_geometric :
  Dsim.Prng.t -> n:int -> radius:float -> (float * float) array * (int * int) list
(** Uniform points in the unit square, edges within [radius]. The radius
    is grown (by 10% steps) until the graph is connected; positions are
    returned for mobility-style rewiring. *)

(** {1 Utilities} *)

val is_connected : n:int -> (int * int) list -> bool

val distances : n:int -> (int * int) list -> int -> int array
(** BFS hop distances from a source; [max_int] for unreachable nodes. *)

val dist : n:int -> (int * int) list -> int -> int -> int

val diameter : n:int -> (int * int) list -> int
(** Hop diameter; raises [Invalid_argument] on disconnected graphs. *)

val spanning_tree : n:int -> (int * int) list -> (int * int) list
(** Some spanning tree (BFS from node 0); requires connectivity. *)

val non_tree_edges : n:int -> (int * int) list -> (int * int) list
(** Edges outside {!spanning_tree}. *)
