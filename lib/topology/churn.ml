module Prng = Dsim.Prng
module Engine = Dsim.Engine

type op = Add | Remove

type event = { time : float; op : op; u : int; v : int }

(* Same order polymorphic [compare] on [(u, v, op)] gave (Add sorts
   before Remove at equal endpoints), without building the tuples. *)
let op_rank = function Add -> 0 | Remove -> 1

let compare_event a b =
  let c = Float.compare a.time b.time in
  if c <> 0 then c
  else
    let c = Int.compare a.u b.u in
    if c <> 0 then c
    else
      let c = Int.compare a.v b.v in
      if c <> 0 then c else Int.compare (op_rank a.op) (op_rank b.op)

let normalize events =
  List.map
    (fun e ->
      let u, v = Dsim.Dyngraph.normalize e.u e.v in
      { e with u; v })
    events
  |> List.sort compare_event

let schedule engine events =
  List.iter
    (fun e ->
      match e.op with
      | Add -> Engine.schedule_edge_add engine ~at:e.time e.u e.v
      | Remove -> Engine.schedule_edge_remove engine ~at:e.time e.u e.v)
    events

module Edge_set = Set.Make (struct
  type t = int * int

  let compare = Dsim.Dyngraph.compare_edge
end)

let final_edges ~initial events =
  let init =
    Edge_set.of_list (List.map (fun (u, v) -> Dsim.Dyngraph.normalize u v) initial)
  in
  List.fold_left
    (fun acc e ->
      let key = Dsim.Dyngraph.normalize e.u e.v in
      match e.op with
      | Add -> Edge_set.add key acc
      | Remove -> Edge_set.remove key acc)
    init (normalize events)
  |> Edge_set.elements

let flapping ~extra ~period ~up_for ~horizon =
  if period <= 0. || up_for < 0. || up_for >= period then
    invalid_arg "Churn.flapping: need 0 <= up_for < period";
  (* Hoisted: recomputing the length inside per_edge made the generator
     quadratic in the number of flapping edges. *)
  let edge_count = float_of_int (Stdlib.max 1 (List.length extra)) in
  let per_edge i (u, v) =
    let phase = period *. float_of_int i /. edge_count in
    let rec cycle t acc =
      if t >= horizon then acc
      else
        let down = { time = t; op = Remove; u; v } in
        let up_time = t +. (period -. up_for) in
        if up_time >= horizon then down :: acc
        else cycle (up_time +. up_for) ({ time = up_time; op = Add; u; v } :: down :: acc)
    in
    cycle (phase +. up_for) []
  in
  normalize (List.concat (List.mapi per_edge extra))

let random_churn prng ~n ~base ~rate ~horizon =
  if rate <= 0. then invalid_arg "Churn.random_churn: rate must be positive";
  let tree = Edge_set.of_list (Static.spanning_tree ~n base) in
  let present =
    ref
      (Edge_set.of_list
         (List.filter
            (fun e -> not (Edge_set.mem e tree))
            (List.map (fun (u, v) -> Dsim.Dyngraph.normalize u v) base)))
  in
  let candidates =
    Array.of_list (List.filter (fun e -> not (Edge_set.mem e tree)) (Static.complete n))
  in
  if Array.length candidates = 0 then []
  else begin
    let events = ref [] in
    let t = ref 0. in
    let mean = 1. /. rate in
    let continue = ref true in
    while !continue do
      let u = Float.max 1e-9 (Prng.float prng 1.) in
      t := !t +. (-.mean *. log u);
      if !t >= horizon then continue := false
      else begin
        let u', v' = Prng.pick prng candidates in
        let key = Dsim.Dyngraph.normalize u' v' in
        if Edge_set.mem key !present then begin
          present := Edge_set.remove key !present;
          events := { time = !t; op = Remove; u = fst key; v = snd key } :: !events
        end
        else begin
          present := Edge_set.add key !present;
          events := { time = !t; op = Add; u = fst key; v = snd key } :: !events
        end
      end
    done;
    normalize !events
  end

let periodic_partition ~cut ~first_cut_at ~down_for ~every ~horizon =
  if down_for <= 0. || every <= down_for then
    invalid_arg "Churn.periodic_partition: need 0 < down_for < every";
  let rec cycles t acc =
    if t >= horizon then acc
    else
      let downs = List.map (fun (u, v) -> { time = t; op = Remove; u; v }) cut in
      let ups =
        if t +. down_for >= horizon then []
        else List.map (fun (u, v) -> { time = t +. down_for; op = Add; u; v }) cut
      in
      cycles (t +. every) (ups @ downs @ acc)
  in
  normalize (cycles first_cut_at [])

let single_new_edge ~at u v = [ { time = at; op = Add; u; v } ]
