(** Dynamic-topology schedules: timed sequences of edge insertions and
    removals, with generators that do or do not preserve the paper's
    T-interval connectivity requirement (Definition 3.1). *)

type op = Add | Remove

type event = { time : float; op : op; u : int; v : int }

val compare_event : event -> event -> int
(** Chronological order (ties broken deterministically). At equal
    timestamps and endpoints, [Add] sorts — and is therefore applied —
    before [Remove]: an edge that is both added and removed at the same
    instant ends down. [test_churn.ml] pins this tie-break. *)

val normalize : event list -> event list
(** Sort chronologically and normalize endpoints. *)

val schedule : ('msg, 'timer) Dsim.Engine.t -> event list -> unit
(** Push every event onto an engine. *)

val final_edges : initial:(int * int) list -> event list -> (int * int) list
(** Edge set after applying all events to the initial set. *)

(** {1 Generators}

    All generators keep a fixed connected backbone (a spanning tree of the
    base graph) untouched, so every instant — hence every interval — is
    connected, unless stated otherwise. *)

val flapping :
  extra:(int * int) list ->
  period:float ->
  up_for:float ->
  horizon:float ->
  event list
(** Each non-backbone edge [e_i] is removed at phase [i]'s offset within
    every [period] and re-added [up_for] later... i.e. each extra edge
    cycles: present for [up_for], absent for [period - up_for], with
    staggered phases. Edges are assumed initially present. *)

val random_churn :
  Dsim.Prng.t ->
  n:int ->
  base:(int * int) list ->
  rate:float ->
  horizon:float ->
  event list
(** Poisson-like churn: every [1/rate] expected time, a uniformly chosen
    non-backbone pair is toggled (added if absent, removed if present).
    The spanning tree of [base] is never touched. *)

val periodic_partition :
  cut:(int * int) list ->
  first_cut_at:float ->
  down_for:float ->
  every:float ->
  horizon:float ->
  event list
(** Removes all [cut] edges simultaneously for [down_for] time, every
    [every], starting at [first_cut_at] — deliberately breaking interval
    connectivity when [cut] is a cut-set and [down_for] exceeds the
    window. *)

val single_new_edge : at:float -> int -> int -> event list
(** The canonical Section 1 scenario: one new edge appears at [at]. *)
