type violation = { time : float; rule : string; detail : string }

type t = { violations : violation list; events_audited : int; probes : int }

let ok r = r.violations = []

(* Stable sort keeps same-time violations in pass order, so merging the
   conformance and guarantee passes is deterministic. *)
let merge a b =
  {
    violations =
      List.stable_sort
        (fun x y -> compare x.time y.time)
        (a.violations @ b.violations);
    events_audited = a.events_audited + b.events_audited;
    probes = a.probes + b.probes;
  }

let pp_violation fmt v =
  Format.fprintf fmt "t=%.9g %s: %s" v.time v.rule v.detail

let pp fmt r =
  Format.fprintf fmt "@[<v>";
  List.iter (fun v -> Format.fprintf fmt "%a@," pp_violation v) r.violations;
  Format.fprintf fmt "%s: %d violations (%d trace events, %d probes)@]"
    (if ok r then "PASS" else "FAIL")
    (List.length r.violations) r.events_audited r.probes

let render r = Format.asprintf "%a" pp r
