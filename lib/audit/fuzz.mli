(** Seeded scenario fuzzer with greedy shrinking.

    [run ~seed ~count] draws [count] scenarios from the seeded space,
    audits each ({!Scenario.run}) and, for every failure, greedily
    shrinks the scenario — drop the fault schedule (then its last op),
    disable churn, halve the horizon, fewer nodes, tamer drift, simpler
    delays, simpler topology — re-running the audit after each candidate
    step and keeping it only if it still fails. Shrinking is
    deterministic: the same failing scenario always converges to the
    same minimal spec. *)

type failure = {
  original : Scenario.t;  (** the scenario as drawn *)
  shrunk : Scenario.t;  (** greedy fixpoint that still fails *)
  report : Report.t;  (** the shrunk scenario's audit report *)
}

type outcome = {
  scenarios_run : int;  (** scenarios drawn and audited (shrink re-runs excluded) *)
  failures : failure list;
}

val greedy : fails:('a -> bool) -> candidates:('a -> 'a list) -> 'a -> 'a
(** The shrinking engine, polymorphic over the spec type: repeatedly
    replace the input with the first candidate that still satisfies
    [fails], restarting from it, until no candidate fails. [candidates]
    must eventually return an empty (or all-passing) list or shrinking
    diverges. Returns the input unchanged if it does not fail. The model
    explorer shrinks its counterexample specs through this with its own
    candidate rules. *)

val shrink_with : fails:(Scenario.t -> bool) -> Scenario.t -> Scenario.t
(** Greedy deterministic minimization against an arbitrary failure
    predicate: repeatedly take the first simplification (drop faults,
    drop churn, halve horizon, fewer nodes, tamer drift, simpler delay,
    path topology) that still satisfies [fails], until none does.
    Shrinking [n] also drops fault ops naming removed nodes, keeping the
    schedule valid. Returns the input unchanged if it does not fail. *)

val shrink : Scenario.t -> Scenario.t
(** [shrink_with] against the real audit verdict ([Scenario.run]). *)

val run : ?jobs:int -> ?faults:bool -> seed:int -> count:int -> unit -> outcome
(** Scenarios are drawn serially from the seeded stream, then audited
    (and any failures shrunk) on {!Runner.map}'s domain pool — [jobs]
    defaults to {!Runner.default_jobs}. With [~faults:true] (default
    false) every drawn scenario carries a generated fault schedule.
    Failures are reported in draw order, so the outcome is
    byte-identical for every [jobs]. *)

val pp_failure : Format.formatter -> failure -> unit
(** The shrunk replay spec on the first line, then the report. *)
