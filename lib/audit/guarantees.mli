(** Online monitor for the paper's quantitative guarantees, sampled
    periodically while the execution runs (the envelope check needs live
    edge ages, which the trace does not carry).

    Checked at every probe:

    - {b global skew} ≤ [G(n)] (Theorem 6.9); requires the scenario to
      preserve interval connectivity, which the fuzzer's topologies and
      backbone-preserving churn guarantee;
    - {b max-estimate propagation} (Lemma 6.8): the worst-informed
      node's [Lmax] trails the best by at most [(1+ρ)(n-1)ΔT] — the
      true max grows at rate ≤ [1+ρ] while propagating one hop per
      [ΔT];
    - {b dynamic local-skew envelope} (Corollary 6.13, optional): every
      present edge of real age [Δt] carries skew ≤ [s(n, Δt)]
      ([Params.dynamic_local_skew]). Only the full gradient algorithm
      guarantees this; disable for the flat and max-only baselines.

    Under a fault schedule the guarantees cannot hold while faults are
    active, so every check is suspended from the first fault until
    [recovery_bound] after the last. Once the window closes the probe
    demands self-stabilization instead: crashed nodes are skipped, and a
    global skew still above [G(n)] is reported under the rule
    ["recovery-exceeded"]. *)

type t

val lmax_lag_bound : Gcs.Params.t -> float
(** The Lemma 6.8 bound [(1+ρ)(n-1)ΔT] on the spread of the [Lmax]
    estimates over a connected network — the exact expression the probe
    checks, exported so the model explorer checks the same number. *)

val attach :
  (Gcs.Proto.message, Gcs.Proto.timer) Dsim.Engine.t ->
  Gcs.Metrics.view ->
  params:Gcs.Params.t ->
  ?check_envelope:bool ->
  ?faults:Dsim.Fault.schedule ->
  ?recovery_bound:float ->
  every:float ->
  until:float ->
  unit ->
  t
(** Schedule probes from the engine's current time to [until].
    [check_envelope] defaults to [false]. [recovery_bound] defaults to
    [(n-1)ΔT + stabilize_real] — max-propagation across the network plus
    the paper's convergence horizon. *)

val report : t -> Report.t
