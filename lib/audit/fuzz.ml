type failure = { original : Scenario.t; shrunk : Scenario.t; report : Report.t }

type outcome = { scenarios_run : int; failures : failure list }

let fails s = not (Report.ok (Scenario.run s))

(* Candidate simplifications in priority order: each returns a strictly
   "smaller" scenario or None if the knob is already minimal. The greedy
   pass takes the first candidate that still fails and restarts, so a
   given failing scenario always walks the same path to its fixpoint. *)
let candidates s =
  List.filter_map
    (fun c -> c)
    [
      (if s.Scenario.churn then Some { s with Scenario.churn = false } else None);
      (if s.Scenario.horizon > 30. then
         Some { s with Scenario.horizon = Float.max 30. (s.Scenario.horizon /. 2.) }
       else None);
      (if s.Scenario.n > 4 then Some { s with Scenario.n = s.Scenario.n - 1 } else None);
      (if s.Scenario.n > 4 then Some { s with Scenario.n = 4 } else None);
      (if s.Scenario.drift <> 0 then Some { s with Scenario.drift = 0 } else None);
      (if s.Scenario.delay <> 0 then Some { s with Scenario.delay = 0 } else None);
      (if s.Scenario.topo <> 0 then Some { s with Scenario.topo = 0 } else None);
    ]

let shrink_with ~fails s =
  if not (fails s) then s
  else begin
    let rec go s =
      match List.find_opt fails (candidates s) with
      | Some smaller -> go smaller
      | None -> s
    in
    go s
  end

let shrink s = shrink_with ~fails s

let run ~seed ~count =
  let prng = Dsim.Prng.of_int seed in
  let runs = ref 0 in
  let failures = ref [] in
  for _ = 1 to count do
    let s = Scenario.generate prng in
    incr runs;
    let report = Scenario.run s in
    if not (Report.ok report) then begin
      let shrunk = shrink s in
      failures := { original = s; shrunk; report = Scenario.run shrunk } :: !failures
    end
  done;
  { scenarios_run = !runs; failures = List.rev !failures }

let pp_failure fmt f =
  Format.fprintf fmt "@[<v>replay spec: %s@,(original:  %s)@,%a@]"
    (Scenario.to_spec f.shrunk) (Scenario.to_spec f.original) Report.pp f.report
