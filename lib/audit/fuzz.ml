type failure = { original : Scenario.t; shrunk : Scenario.t; report : Report.t }

type outcome = { scenarios_run : int; failures : failure list }

let fails s = not (Report.ok (Scenario.run s))

(* Candidate simplifications in priority order: each returns a strictly
   "smaller" scenario or None if the knob is already minimal. The greedy
   pass takes the first candidate that still fails and restarts, so a
   given failing scenario always walks the same path to its fixpoint. *)
(* Keep only fault ops whose nodes survive a shrink of n. Crash and
   restart name the same node, so they are kept or dropped together and
   the alternation rule stays satisfied. *)
let fault_fit n sched =
  List.filter
    (fun op ->
      match op with
      | Dsim.Fault.Crash { node; _ }
      | Dsim.Fault.Restart { node; _ }
      | Dsim.Fault.Byzantine { node; _ } -> node < n
      | Dsim.Fault.Duplicate { src; dst; _ } | Dsim.Fault.Reorder { src; dst; _ } ->
        src < n && dst < n)
    sched

let drop_last l = List.filteri (fun i _ -> i < List.length l - 1) l

let candidates s =
  List.filter_map
    (fun c -> c)
    [
      (* Faults shrink first: a failure that survives without its fault
         schedule is an ordinary engine/algorithm bug, not a fault bug. *)
      (match s.Scenario.faults with
      | [] -> None
      | _ -> Some { s with Scenario.faults = [] });
      (match s.Scenario.faults with
      | [] | [ _ ] -> None
      | f -> Some { s with Scenario.faults = drop_last f });
      (if s.Scenario.churn then Some { s with Scenario.churn = false } else None);
      (if s.Scenario.horizon > 30. then
         Some { s with Scenario.horizon = Float.max 30. (s.Scenario.horizon /. 2.) }
       else None);
      (if s.Scenario.n > 4 then
         Some
           {
             s with
             Scenario.n = s.Scenario.n - 1;
             faults = fault_fit (s.Scenario.n - 1) s.Scenario.faults;
           }
       else None);
      (if s.Scenario.n > 4 then
         Some { s with Scenario.n = 4; faults = fault_fit 4 s.Scenario.faults }
       else None);
      (if s.Scenario.drift <> 0 then Some { s with Scenario.drift = 0 } else None);
      (if s.Scenario.delay <> 0 then Some { s with Scenario.delay = 0 } else None);
      (if s.Scenario.topo <> 0 then Some { s with Scenario.topo = 0 } else None);
    ]

(* The generic greedy fixpoint: take the first candidate that still
   fails and restart from it, so a given failing input always walks the
   same path to its minimum. Polymorphic so other spec types (e.g. the
   model explorer's counterexample specs) shrink with the same engine. *)
let greedy ~fails ~candidates s =
  if not (fails s) then s
  else begin
    let rec go s =
      match List.find_opt fails (candidates s) with
      | Some smaller -> go smaller
      | None -> s
    in
    go s
  end

let shrink_with ~fails s = greedy ~fails ~candidates s

let shrink s = shrink_with ~fails s

let run ?jobs ?(faults = false) ~seed ~count () =
  (* Scenarios are drawn serially from the one seeded stream (explicit
     recursion: the draw order is the spec), so the scenario set — every
     per-scenario seed included — is identical whatever the pool size.
     Audits and shrinks then fan out; Runner.map returns results in draw
     order, so the failure list (the order failures are reported and
     shrunk in) matches the serial path byte for byte. *)
  let scenarios =
    let prng = Dsim.Prng.of_int seed in
    let rec draw acc k =
      if k = 0 then List.rev acc
      else draw (Scenario.generate ~faults prng :: acc) (k - 1)
    in
    draw [] count
  in
  let failures =
    Runner.map ?jobs
      (fun s ->
        let report = Scenario.run s in
        if Report.ok report then None
        else
          let shrunk = shrink s in
          Some { original = s; shrunk; report = Scenario.run shrunk })
      scenarios
    |> List.filter_map Fun.id
  in
  { scenarios_run = count; failures }

let pp_failure fmt f =
  Format.fprintf fmt "@[<v>replay spec: %s@,(original:  %s)@,%a@]"
    (Scenario.to_spec f.shrunk) (Scenario.to_spec f.original) Report.pp f.report
