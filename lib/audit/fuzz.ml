type failure = { original : Scenario.t; shrunk : Scenario.t; report : Report.t }

type outcome = { scenarios_run : int; failures : failure list }

let fails s = not (Report.ok (Scenario.run s))

(* Candidate simplifications in priority order: each returns a strictly
   "smaller" scenario or None if the knob is already minimal. The greedy
   pass takes the first candidate that still fails and restarts, so a
   given failing scenario always walks the same path to its fixpoint. *)
let candidates s =
  List.filter_map
    (fun c -> c)
    [
      (if s.Scenario.churn then Some { s with Scenario.churn = false } else None);
      (if s.Scenario.horizon > 30. then
         Some { s with Scenario.horizon = Float.max 30. (s.Scenario.horizon /. 2.) }
       else None);
      (if s.Scenario.n > 4 then Some { s with Scenario.n = s.Scenario.n - 1 } else None);
      (if s.Scenario.n > 4 then Some { s with Scenario.n = 4 } else None);
      (if s.Scenario.drift <> 0 then Some { s with Scenario.drift = 0 } else None);
      (if s.Scenario.delay <> 0 then Some { s with Scenario.delay = 0 } else None);
      (if s.Scenario.topo <> 0 then Some { s with Scenario.topo = 0 } else None);
    ]

let shrink_with ~fails s =
  if not (fails s) then s
  else begin
    let rec go s =
      match List.find_opt fails (candidates s) with
      | Some smaller -> go smaller
      | None -> s
    in
    go s
  end

let shrink s = shrink_with ~fails s

let run ?jobs ~seed ~count () =
  (* Scenarios are drawn serially from the one seeded stream (explicit
     recursion: the draw order is the spec), so the scenario set — every
     per-scenario seed included — is identical whatever the pool size.
     Audits and shrinks then fan out; Runner.map returns results in draw
     order, so the failure list (the order failures are reported and
     shrunk in) matches the serial path byte for byte. *)
  let scenarios =
    let prng = Dsim.Prng.of_int seed in
    let rec draw acc k =
      if k = 0 then List.rev acc else draw (Scenario.generate prng :: acc) (k - 1)
    in
    draw [] count
  in
  let failures =
    Runner.map ?jobs
      (fun s ->
        let report = Scenario.run s in
        if Report.ok report then None
        else
          let shrunk = shrink s in
          Some { original = s; shrunk; report = Scenario.run shrunk })
      scenarios
    |> List.filter_map Fun.id
  in
  { scenarios_run = count; failures }

let pp_failure fmt f =
  Format.fprintf fmt "@[<v>replay spec: %s@,(original:  %s)@,%a@]"
    (Scenario.to_spec f.shrunk) (Scenario.to_spec f.original) Report.pp f.report
