(** Offline conformance auditor: replays a structured trace and checks
    every obligation the model of Section 3.2 places on the simulator.

    The auditor reconstructs the dynamic edge set from [Edge_add] /
    [Edge_remove] entries and a per-directed-link, per-epoch send queue
    from [Send] entries, then verifies:

    - {b FIFO delivery within the delay bound}: each [Deliver] consumes
      the oldest outstanding send of its link and epoch; the implied
      delay must lie in [[0, T]]. Out-of-order delivery surfaces either
      as a delivery with no outstanding send or as a head-of-queue delay
      exceeding [T].
    - {b no delivery across epochs}: a [Deliver] whose epoch is not the
      edge's current epoch, or whose edge is absent, is a violation —
      in-flight messages must be dropped when their edge changes.
    - {b drop justification}: [Drop_in_flight] is only legal if the
      edge's epoch really did change since the send; [Drop_no_edge] and
      absence notifications are only legal while the edge is absent.
    - {b discovery within D}: every topology change obliges both
      endpoints to observe a matching discovery within
      [discovery_bound], unless a newer change to the same edge
      supersedes it first (the paper's transient-change licence).
    - {b liveness of surviving links} (optional, [check_gaps]): with
      every algorithm broadcasting each [ΔH] of subjective time,
      consecutive receipts on an unchanged link may be at most
      [ΔT = T + ΔH/(1-ρ)] apart — the window that calibrates the
      [ΔT'] lost-timeout (Section 5).
    - {b lost-timer cadence} (optional, [check_lost_timers]): a
      [Timer_fire] whose label encodes [lost(v)] (label [v + 1], see
      {!Gcs.Proto.timer_label}) must come at least [ΔT'/(1+ρ)] real time
      after the last delivery from [v] — each receipt re-arms the timer
      for subjective [ΔT'], and a clock runs at most [(1+ρ)] fast.
      A gap of exactly zero (a delivery at the fire's own timestamp) is
      not premature: the fire was armed by the receipt before it.
      Traces recorded without timer labels (label [-1]) are skipped.

    When the execution ran under a fault schedule, pass the same schedule
    here: obligations touching crashed nodes are suspended (gap checks
    across a sender outage, discovery by a dead endpoint, lateness of the
    restart re-discovery), and each traced [Fault_duplicate] licenses one
    extra deliver/drop with no matching send on its link. Byzantine
    windows corrupt content, not timing, so they need no excusal here.

    The trace must carry a structured log ([log_limit] > total events);
    counters alone are not enough to audit. *)

type config = {
  delay_bound : float;  (** T *)
  discovery_bound : float;  (** D *)
  delta_t : float;  (** ΔT, the max gap between receipts on a live link *)
  min_lost_gap : float;
      (** ΔT'/(1+ρ), the min real time from a receipt to a lost-fire *)
  horizon : float;  (** end of the audited execution *)
  check_gaps : bool;
  check_lost_timers : bool;
  faults : Dsim.Fault.schedule;  (** the schedule the execution ran under *)
}

val of_params :
  Gcs.Params.t ->
  horizon:float ->
  ?check_gaps:bool ->
  ?check_lost_timers:bool ->
  ?faults:Dsim.Fault.schedule ->
  unit ->
  config
(** [check_gaps] defaults to [true]; disable it for executions whose
    algorithm does not broadcast every [ΔH] or whose delay policy drops
    messages beyond what the trace records. [check_lost_timers] defaults
    to [true]; disable it for algorithms with per-peer timeouts shorter
    than [ΔT'] (e.g. {!Gcs.Hetero}). [faults] defaults to none; it must
    match the schedule the traced execution was run with. *)

val audit : config -> Dsim.Trace.entry list -> Report.t
(** Replay the entries (which must be in time order, as recorded) and
    return every violation found. Equivalent to {!create}, {!step} over
    each entry, then {!finish}. *)

(** {1 Incremental interface}

    The same checks, fed one entry at a time — this is what the bounded
    model explorer uses to audit a trace as the engine produces it, and
    [audit] above is implemented on top of it, so the two can never
    diverge. *)

type state
(** In-progress audit: the reconstructed edge set, per-link send queues
    and the violations found so far. *)

val create : config -> state

val step : state -> Dsim.Trace.entry -> unit
(** Feed the next entry. Entries must arrive in recorded (time) order. *)

val finish : state -> Report.t
(** Run the end-of-execution checks (undelivered sends, final receipt
    gaps, unmet discovery obligations) and return the full report. Call
    at most once; the state must not be stepped afterwards. *)

val violation_count : state -> int
(** Violations found so far, {e not} counting end-of-run checks — cheap
    enough to poll after every [step] so an explorer can abandon a branch
    at the first violation. *)
