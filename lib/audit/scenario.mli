(** The fuzzer's scenario space — a seeded point in
    topology × drift × delay × churn × algorithm, serializable to a
    one-line replay spec.

    The space generalizes [test_random_scenarios.ml]: small connected
    topologies, every drift pattern, every lossless delay policy, all
    three algorithms, optional backbone-preserving churn. A spec string
    like

    {[ n=8 topo=ring drift=split delay=uniform algo=gradient churn=1 seed=42 horizon=120 ]}

    round-trips through {!to_spec} / {!of_spec}, so a failing scenario
    can be stored in a test or CI artifact and replayed byte-identically
    (executions are deterministic given the spec). *)

type t = {
  n : int;  (** 2 .. *)
  topo : int;  (** 0 path, 1 ring, 2 binary tree, 3 Erdős–Rényi *)
  drift : int;  (** 0 perfect, 1 split, 2 alternating, 3 random walk *)
  delay : int;  (** 0 maximal, 1 zero, 2 uniform *)
  algo : int;  (** 0 gradient, 1 flat gradient, 2 max-only *)
  churn : bool;
  seed : int;
  horizon : float;
  faults : Dsim.Fault.schedule;
      (** deterministic fault-injection schedule, possibly empty *)
}

val to_spec : t -> string
(** Appends [faults=<Fault.to_spec>] only when the schedule is non-empty,
    so pre-fault specs round-trip unchanged. *)

val of_spec : string -> (t, string) result
(** The [faults=] token is optional (absent means no faults) and is
    validated against [n]. *)

val generate : ?faults:bool -> Dsim.Prng.t -> t
(** Draw a scenario (n in 4–14, horizon 120, all knobs uniform). With
    [~faults:true] (default false) a fault schedule is drawn last from
    the same PRNG — non-fault campaigns are unchanged by the flag's
    existence. *)

val run : t -> Report.t
(** Build and run the scenario with a structured trace, then audit it:
    conformance over the trace, guarantees ({!Guarantees}) and validity
    ({!Gcs.Invariant}) sampled during the run — all three fault-aware
    when the scenario carries a schedule (the simulation uses fault seed
    [seed + 4]). The local-skew envelope is only asserted for the
    gradient algorithm. *)
