type t = {
  n : int;
  topo : int;
  drift : int;
  delay : int;
  algo : int;
  churn : bool;
  seed : int;
  horizon : float;
  faults : Dsim.Fault.schedule;
}

let topo_names = [| "path"; "ring"; "tree"; "er" |]
let drift_names = [| "perfect"; "split"; "alternating"; "walk" |]
let delay_names = [| "maximal"; "zero"; "uniform" |]
let algo_names = [| "gradient"; "flat"; "max" |]

let to_spec s =
  Printf.sprintf "n=%d topo=%s drift=%s delay=%s algo=%s churn=%d seed=%d horizon=%g%s"
    s.n topo_names.(s.topo) drift_names.(s.drift) delay_names.(s.delay)
    algo_names.(s.algo)
    (if s.churn then 1 else 0)
    s.seed s.horizon
    (* The fault token is omitted when empty so pre-fault specs round-trip
       unchanged (and old specs keep parsing). *)
    (match s.faults with [] -> "" | f -> " faults=" ^ Dsim.Fault.to_spec f)

let index_of names value =
  let rec go i =
    if i >= Array.length names then None else if names.(i) = value then Some i else go (i + 1)
  in
  go 0

let of_spec spec =
  let ( let* ) = Result.bind in
  let fields =
    String.split_on_char ' ' (String.trim spec) |> List.filter (fun f -> f <> "")
  in
  let lookup key =
    let prefix = key ^ "=" in
    match
      List.find_opt (fun f -> String.length f > String.length prefix
                              && String.sub f 0 (String.length prefix) = prefix)
        fields
    with
    | Some f ->
      Ok (String.sub f (String.length prefix) (String.length f - String.length prefix))
    | None -> Error (Printf.sprintf "spec is missing %s=" key)
  in
  let int_field key =
    let* v = lookup key in
    match int_of_string_opt v with
    | Some i -> Ok i
    | None -> Error (Printf.sprintf "%s=%s is not an integer" key v)
  in
  let named_field key names =
    let* v = lookup key in
    match index_of names v with
    | Some i -> Ok i
    | None ->
      Error
        (Printf.sprintf "%s=%s (expected one of: %s)" key v
           (String.concat ", " (Array.to_list names)))
  in
  let* n = int_field "n" in
  let* topo = named_field "topo" topo_names in
  let* drift = named_field "drift" drift_names in
  let* delay = named_field "delay" delay_names in
  let* algo = named_field "algo" algo_names in
  let* churn = int_field "churn" in
  let* seed = int_field "seed" in
  let* horizon_s = lookup "horizon" in
  let* horizon =
    match float_of_string_opt horizon_s with
    | Some h when h > 0. -> Ok h
    | _ -> Error (Printf.sprintf "horizon=%s is not a positive number" horizon_s)
  in
  let* faults =
    match lookup "faults" with
    | Error _ -> Ok []  (* optional: absent in pre-fault specs *)
    | Ok v -> Dsim.Fault.of_spec v
  in
  if n < 2 then Error "n must be >= 2"
  else
    let* () = Dsim.Fault.validate ~n faults in
    Ok { n; topo; drift; delay; algo; churn = churn <> 0; seed; horizon; faults }

let generate ?(faults = false) prng =
  let s =
    {
      n = Dsim.Prng.int_in prng 4 14;
      topo = Dsim.Prng.int prng 4;
      drift = Dsim.Prng.int prng 4;
      delay = Dsim.Prng.int prng 3;
      algo = Dsim.Prng.int prng 3;
      churn = Dsim.Prng.bool prng;
      seed = Dsim.Prng.int prng 1_000_000;
      horizon = 120.;
      faults = [];
    }
  in
  (* Fault draws come last so non-fault campaigns generate the exact same
     scenarios as before the fault dimension existed. *)
  if faults then { s with faults = Dsim.Fault.generate prng ~n:s.n ~horizon:s.horizon }
  else s

let build_topology s =
  match s.topo with
  | 0 -> Topology.Static.path s.n
  | 1 -> Topology.Static.ring s.n
  | 2 -> Topology.Static.binary_tree s.n
  | _ -> Topology.Static.erdos_renyi (Dsim.Prng.of_int s.seed) ~n:s.n ~p:0.5

let run s =
  let params = Gcs.Params.make ~n:s.n () in
  let edges = build_topology s in
  let drift =
    match s.drift with
    | 0 -> Gcs.Drift.Perfect
    | 1 -> Gcs.Drift.Split_extremes
    | 2 -> Gcs.Drift.Alternating 17.
    | _ -> Gcs.Drift.Random_walk 9.
  in
  let bound = params.Gcs.Params.delay_bound in
  let delay =
    match s.delay with
    | 0 -> Dsim.Delay.maximal ~bound
    | 1 -> Dsim.Delay.zero ~bound
    | _ -> Dsim.Delay.uniform (Dsim.Prng.of_int (s.seed + 1)) ~bound
  in
  let algo =
    match s.algo with
    | 0 -> Gcs.Sim.Gradient
    | 1 -> Gcs.Sim.Flat_gradient
    | _ -> Gcs.Sim.Max_only
  in
  let clocks = Gcs.Drift.assign params ~horizon:s.horizon ~seed:s.seed drift in
  let trace = Dsim.Trace.create ~log_limit:2_000_000 () in
  let cfg =
    Gcs.Sim.config ~algo ~params ~clocks ~delay ~trace ~initial_edges:edges
      ~faults:s.faults ~fault_seed:(s.seed + 4) ()
  in
  let sim = Gcs.Sim.create cfg in
  let engine = Gcs.Sim.engine sim in
  let view = Gcs.Sim.view sim in
  let guarantees =
    Guarantees.attach engine view ~params ~check_envelope:(s.algo = 0) ~faults:s.faults
      ~every:1. ~until:s.horizon ()
  in
  let invariants =
    Gcs.Invariant.attach engine view ~params ~every:1. ~until:s.horizon ~faults:s.faults
      ()
  in
  if s.churn then
    Topology.Churn.schedule engine
      (Topology.Churn.random_churn
         (Dsim.Prng.of_int (s.seed + 2))
         ~n:s.n ~base:edges ~rate:0.3 ~horizon:s.horizon);
  Gcs.Sim.run_until sim s.horizon;
  let conformance =
    Conformance.audit
      (Conformance.of_params params ~horizon:s.horizon ~faults:s.faults ())
      (Dsim.Trace.entries trace)
  in
  let validity =
    {
      Report.violations =
        List.map
          (fun v ->
            {
              Report.time = v.Gcs.Invariant.time;
              rule = "validity-" ^ v.Gcs.Invariant.kind;
              detail = Printf.sprintf "node %d: %s" v.Gcs.Invariant.node v.Gcs.Invariant.detail;
            })
          (Gcs.Invariant.violations invariants);
      events_audited = 0;
      probes = Gcs.Invariant.probes invariants;
    }
  in
  Report.merge conformance (Report.merge (Guarantees.report guarantees) validity)
