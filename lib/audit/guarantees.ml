module Engine = Dsim.Engine

type t = {
  mutable violations : Report.violation list;  (* newest first *)
  mutable probes : int;
}

let eps_abs = 1e-9
let eps_rel = 1e-7
let slack m = eps_abs +. (eps_rel *. Float.abs m)

(* Lemma 6.8: on a connected network the spread of the Lmax estimates is
   at most (1+rho)(n-1)dT — one dT propagation hop per node, each aged by
   at most the fastest clock rate. Shared with the model explorer. *)
let lmax_lag_bound params =
  (1. +. params.Gcs.Params.rho)
  *. float_of_int (params.Gcs.Params.n - 1)
  *. Gcs.Params.delta_t params

(* Fold a node statistic over the nodes that are up at [time]; crashed
   nodes keep stale frozen state that proves nothing about the engine. *)
let fold_alive view faults ~time f init =
  let acc = ref init in
  for i = 0 to view.Gcs.Metrics.n - 1 do
    if Dsim.Fault.alive faults ~node:i ~at:time then acc := f !acc i
  done;
  !acc

let probe engine view ~params ~check_envelope ~faults ~suspend_from ~suspend_until mon ()
    =
  let time = Engine.now engine in
  mon.probes <- mon.probes + 1;
  if time < suspend_from || time > suspend_until then begin
    let add rule detail =
      mon.violations <- { Report.time; rule; detail } :: mon.violations
    in
    let recovering = faults <> [] && time > suspend_until in
    let alive i = Dsim.Fault.alive faults ~node:i ~at:time in
    let g_bound = Gcs.Params.global_skew_bound params in
    let g =
      fold_alive view faults ~time
        (fun (lo, hi) i ->
          let l = view.Gcs.Metrics.clock_of i in
          (Float.min lo l, Float.max hi l))
        (infinity, neg_infinity)
      |> fun (lo, hi) -> hi -. lo
    in
    if g > g_bound +. slack g_bound then
      if recovering then
        add "recovery-exceeded"
          (Printf.sprintf
             "global skew %.9g > G(n)=%.9g beyond the recovery window (last fault + %.9g)"
             g g_bound (suspend_until -. (match Dsim.Fault.last_time faults with
                                         | Some l -> l
                                         | None -> suspend_until)))
      else add "global-skew-bound" (Printf.sprintf "global skew %.9g > G(n)=%.9g" g g_bound);
    let lag_bound = lmax_lag_bound params in
    let lag =
      fold_alive view faults ~time
        (fun (lo, hi) i ->
          let m = view.Gcs.Metrics.lmax_of i in
          (Float.min lo m, Float.max hi m))
        (infinity, neg_infinity)
      |> fun (lo, hi) -> hi -. lo
    in
    if (not recovering) && lag > lag_bound +. slack lag_bound then
      add "lmax-propagation"
        (Printf.sprintf "Lmax lag %.9g > (1+rho)(n-1)dT=%.9g" lag lag_bound);
    if check_envelope then begin
      let graph = Engine.graph engine in
      Dsim.Dyngraph.fold_edges graph
        (fun () u v ->
          if alive u && alive v then
            match Dsim.Dyngraph.since graph u v with
            | None -> ()
            | Some since ->
              let age = time -. since in
              let bound = Gcs.Params.dynamic_local_skew params age in
              let skew = Gcs.Metrics.edge_skew view u v in
              if (not recovering) && skew > bound +. slack bound then
                add "local-skew-envelope"
                  (Printf.sprintf "{%d,%d} age %.9g skew %.9g > s(n,age)=%.9g" u v age
                     skew bound))
        ()
    end
  end

let attach engine view ~params ?(check_envelope = false) ?(faults = []) ?recovery_bound
    ~every ~until () =
  if every <= 0. then invalid_arg "Guarantees.attach: period must be positive";
  let recovery_bound =
    match recovery_bound with
    | Some b -> b
    | None ->
      (* Lmax propagates across the network in (n-1)ΔT real time; blocked
         or corrupted clocks then converge on the paper's stabilization
         horizon. Together this dominates re-synchronization from any
         single crash burst. *)
      let base =
        (float_of_int (params.Gcs.Params.n - 1) *. Gcs.Params.delta_t params)
        +. Gcs.Params.stabilize_real params
      in
      (* Faults that inflate Lmax above every honest clock leave the whole
         network chasing a phantom ceiling; skew only re-enters the
         envelope once the chase ends. While below Lmax the gradient jump
         cap advances a node at most ~B0 per ΔT' round, so the ceiling
         excess is burned off at [B0/ΔT' - (1+rho)] per unit of real time
         (the ceiling itself keeps drifting at up to 1+rho). Bounded
         Byzantine lies add at most 8 B0 of excess; a corrupted restart at
         time t draws registers scaled to the hardware clock, at most
         3(1+rho)t. *)
      let ceiling_excess =
        List.fold_left
          (fun acc op ->
            match op with
            | Dsim.Fault.Byzantine _ ->
              Float.max acc (8. *. params.Gcs.Params.b0)
            | Dsim.Fault.Restart { corrupt = true; at; _ } ->
              Float.max acc (3. *. (1. +. params.Gcs.Params.rho) *. at)
            | _ -> acc)
          0. faults
      in
      if ceiling_excess = 0. then base
      else
        let burn_rate =
          Float.max params.Gcs.Params.rho
            ((params.Gcs.Params.b0 /. Gcs.Params.delta_t' params)
            -. (1. +. params.Gcs.Params.rho))
        in
        base +. (ceiling_excess /. burn_rate)
  in
  (* All probe checks are suspended from the first fault until
     [recovery_bound] after the last: inside the window the guarantees
     simply do not hold (that is what the faults are for). What the probe
     *does* demand is that the run re-enters the legal envelope once the
     window closes — a post-window global-skew excess is reported as
     "recovery-exceeded". Only the global-skew / recovery check stays on
     after the window: lag and envelope bounds assume bounded initial
     conditions that corruption deliberately violates, and their
     re-convergence is exactly the recovery being measured. *)
  let suspend_from, suspend_until =
    match (Dsim.Fault.first_time faults, Dsim.Fault.last_time faults) with
    | Some f, Some l -> (f, l +. recovery_bound)
    | _ -> (infinity, neg_infinity)
  in
  let mon = { violations = []; probes = 0 } in
  let rec schedule time =
    if time <= until then
      Engine.at engine ~time (fun () ->
          probe engine view ~params ~check_envelope ~faults ~suspend_from ~suspend_until
            mon ();
          schedule (time +. every))
  in
  schedule (Engine.now engine);
  mon

let report mon =
  { Report.violations = List.rev mon.violations; events_audited = 0; probes = mon.probes }
