module Engine = Dsim.Engine

type t = {
  mutable violations : Report.violation list;  (* newest first *)
  mutable probes : int;
}

let eps_abs = 1e-9
let eps_rel = 1e-7
let slack m = eps_abs +. (eps_rel *. Float.abs m)

let probe engine view ~params ~check_envelope mon () =
  let time = Engine.now engine in
  mon.probes <- mon.probes + 1;
  let add rule detail = mon.violations <- { Report.time; rule; detail } :: mon.violations in
  let g_bound = Gcs.Params.global_skew_bound params in
  let g = Gcs.Metrics.global_skew view in
  if g > g_bound +. slack g_bound then
    add "global-skew-bound" (Printf.sprintf "global skew %.9g > G(n)=%.9g" g g_bound);
  let lag_bound =
    (1. +. params.Gcs.Params.rho)
    *. float_of_int (params.Gcs.Params.n - 1)
    *. Gcs.Params.delta_t params
  in
  let lag = Gcs.Metrics.lmax_lag view in
  if lag > lag_bound +. slack lag_bound then
    add "lmax-propagation"
      (Printf.sprintf "Lmax lag %.9g > (1+rho)(n-1)dT=%.9g" lag lag_bound);
  if check_envelope then begin
    let graph = Engine.graph engine in
    Dsim.Dyngraph.fold_edges graph
      (fun () u v ->
        match Dsim.Dyngraph.since graph u v with
        | None -> ()
        | Some since ->
          let age = time -. since in
          let bound = Gcs.Params.dynamic_local_skew params age in
          let skew = Gcs.Metrics.edge_skew view u v in
          if skew > bound +. slack bound then
            add "local-skew-envelope"
              (Printf.sprintf "{%d,%d} age %.9g skew %.9g > s(n,age)=%.9g" u v age skew
                 bound))
      ()
  end

let attach engine view ~params ?(check_envelope = false) ~every ~until () =
  if every <= 0. then invalid_arg "Guarantees.attach: period must be positive";
  let mon = { violations = []; probes = 0 } in
  let rec schedule time =
    if time <= until then
      Engine.at engine ~time (fun () ->
          probe engine view ~params ~check_envelope mon ();
          schedule (time +. every))
  in
  schedule (Engine.now engine);
  mon

let report mon =
  { Report.violations = List.rev mon.violations; events_audited = 0; probes = mon.probes }
