module Trace = Dsim.Trace

type config = {
  delay_bound : float;
  discovery_bound : float;
  delta_t : float;
  min_lost_gap : float;
  horizon : float;
  check_gaps : bool;
  check_lost_timers : bool;
  faults : Dsim.Fault.schedule;
}

let of_params params ~horizon ?(check_gaps = true) ?(check_lost_timers = true)
    ?(faults = []) () =
  {
    delay_bound = params.Gcs.Params.delay_bound;
    discovery_bound = params.Gcs.Params.discovery_bound;
    delta_t = Gcs.Params.delta_t params;
    (* A lost(v) timer is armed for subjective ΔT' at every receipt from
       v; a clock runs at most (1+ρ) fast, so the fire can come no
       earlier than ΔT'/(1+ρ) real time after the arming delivery. *)
    min_lost_gap = Gcs.Params.delta_t' params /. (1. +. params.Gcs.Params.rho);
    horizon;
    check_gaps;
    check_lost_timers;
    faults;
  }

(* Did the sender suffer a crash or restart inside (t0, t1]? Any silence
   or cadence break on its outgoing links over that span is the fault's
   doing, not the engine's. (A Deliver implies the sender kept one
   incarnation from send to delivery, so an outage *before* t0 cannot
   explain a gap that only opens after it.) *)
let sender_outage cfg ~src t0 t1 =
  Dsim.Fault.crashed_in cfg.faults ~node:src t0 t1
  || Dsim.Fault.restarted_in cfg.faults ~node:src t0 t1

(* Float comparisons tolerate accumulation relative to the magnitudes
   involved, mirroring Invariant's slack policy. *)
let eps_abs = 1e-9
let eps_rel = 1e-7
let slack m = eps_abs +. (eps_rel *. Float.abs m)

(* One outstanding discovery obligation: change [o_epoch] at [o_time]
   must reach both endpoints by [o_deadline] unless superseded by a
   newer change to the same edge first. *)
type obligation = {
  o_epoch : int;
  o_time : float;
  o_deadline : float;
  o_add : bool;
  mutable o_lo_seen : bool;  (* smaller endpoint notified *)
  mutable o_hi_seen : bool;
}

type edge_state = {
  e_lo : int;
  e_hi : int;
  mutable present : bool;
  mutable epoch : int;
  mutable obligations : obligation list;  (* newest first *)
}

type pending_send = { s_time : float; s_epoch : int }

(* Directed-link replay state: the FIFO send queue plus the receipt-gap
   anchor (last delivery time and the epoch it happened on). *)
type link_state = {
  sends : pending_send Queue.t;
  mutable last_receipt : float;
  mutable last_receipt_epoch : int;  (* -1: no anchor *)
  mutable dup_credit : int;
      (* outstanding Fault_duplicate copies: each licenses exactly one
         deliver/drop on this link with no matching send *)
}

type state = {
  cfg : config;
  edges : (int * int, edge_state) Hashtbl.t;
  links : (int * int, link_state) Hashtbl.t;
  mutable violations : Report.violation list;  (* newest first *)
  mutable audited : int;
}

let violation st ~time rule detail = st.violations <- { Report.time; rule; detail } :: st.violations

let violationf st ~time rule fmt = Printf.ksprintf (violation st ~time rule) fmt

let edge_state st u v =
  let k = Dsim.Dyngraph.normalize u v in
  match Hashtbl.find_opt st.edges k with
  | Some e -> e
  | None ->
    let e = { e_lo = fst k; e_hi = snd k; present = false; epoch = 0; obligations = [] } in
    Hashtbl.add st.edges k e;
    e

let link_state st src dst =
  match Hashtbl.find_opt st.links (src, dst) with
  | Some l -> l
  | None ->
    let l =
      { sends = Queue.create (); last_receipt = 0.; last_receipt_epoch = -1; dup_credit = 0 }
    in
    Hashtbl.add st.links (src, dst) l;
    l

(* Remove and return the oldest queued send of the given epoch, keeping
   older sends of other (dead) epochs in place: they are awaiting their
   own Drop_in_flight. *)
let take_send link epoch =
  let keep = Queue.create () in
  let found = ref None in
  Queue.iter
    (fun s ->
      if !found = None && s.s_epoch = epoch then found := Some s else Queue.add s keep)
    link.sends;
  Queue.clear link.sends;
  Queue.transfer keep link.sends;
  !found

(* A take_send miss is licensed when the link holds a duplication credit:
   the engine traced a Fault_duplicate at send time, so exactly one extra
   delivery (or drop, if the copy outlives its edge or receiver) will
   arrive with its send already consumed by the original. *)
let consume_dup link =
  if link.dup_credit > 0 then begin
    link.dup_credit <- link.dup_credit - 1;
    true
  end
  else false

let on_edge_change st ~time ~add u v =
  let e = edge_state st u v in
  if add && e.present then
    violationf st ~time "edge-double-add" "{%d,%d} added while present" u v;
  if (not add) && not e.present then
    violationf st ~time "edge-double-remove" "{%d,%d} removed while absent" u v;
  e.present <- add;
  e.epoch <- e.epoch + 1;
  (* A newer change supersedes every outstanding obligation: the old
     change became transient and "may or may not" be discovered. *)
  e.obligations <-
    [
      {
        o_epoch = e.epoch;
        o_time = time;
        o_deadline = time +. st.cfg.discovery_bound;
        o_add = add;
        o_lo_seen = false;
        o_hi_seen = false;
      };
    ]

let on_discover st ~time ~add node peer epoch =
  let e = edge_state st node peer in
  if epoch < 0 then begin
    (* Absence (re-)notification from a failed send: legal only while
       the edge is really absent. *)
    if add then
      violationf st ~time "absence-notify-add" "%d:{%d,%d} absence notified as add" node
        node peer
    else if e.present then
      violationf st ~time "absence-notify-present" "%d told {%d,%d} absent but it exists"
        node node peer
  end
  else begin
    match List.find_opt (fun o -> o.o_epoch = epoch) e.obligations with
    | None ->
      violationf st ~time "unsolicited-discovery"
        "%d discovered {%d,%d} epoch %d with no outstanding change" node node peer epoch
    | Some o ->
      if o.o_add <> add then
        violationf st ~time "discovery-kind-mismatch"
          "{%d,%d} epoch %d changed to %s but discovered as %s" node peer epoch
          (if o.o_add then "present" else "absent")
          (if add then "present" else "absent");
      if
        time > o.o_deadline +. slack time
        (* A restart re-discovery replays the current neighborhood with
           the lag measured from the restart, not from the change. *)
        && not (Dsim.Fault.restarted_in st.cfg.faults ~node o.o_time time)
      then
        violationf st ~time "late-discovery"
          "%d discovered {%d,%d} epoch %d at %.9g, deadline %.9g" node node peer epoch time
          o.o_deadline;
      if node = e.e_lo then o.o_lo_seen <- true else o.o_hi_seen <- true
  end

let on_send st ~time src dst epoch =
  let e = edge_state st src dst in
  if epoch < 0 then begin
    if e.present then
      violationf st ~time "send-misclassified-absent" "%d->%d dropped but {%d,%d} exists"
        src dst src dst
  end
  else begin
    if not e.present then
      violationf st ~time "send-on-absent-edge" "%d->%d sent but {%d,%d} is absent" src dst
        src dst
    else if e.epoch <> epoch then
      violationf st ~time "send-epoch-mismatch" "%d->%d sent on epoch %d, edge at %d" src
        dst epoch e.epoch;
    Queue.add { s_time = time; s_epoch = epoch } (link_state st src dst).sends
  end

let on_deliver st ~time src dst epoch =
  let e = edge_state st src dst in
  if not e.present then
    violationf st ~time "deliver-on-absent-edge" "%d->%d delivered but {%d,%d} is absent"
      src dst src dst
  else if e.epoch <> epoch then
    violationf st ~time "deliver-across-epochs"
      "%d->%d delivered on epoch %d but edge is at epoch %d (in-flight messages of a \
       changed edge must be dropped)"
      src dst epoch e.epoch;
  let link = link_state st src dst in
  (match take_send link epoch with
  | None ->
    if not (consume_dup link) then
      violationf st ~time "deliver-without-send"
        "%d->%d delivery on epoch %d has no outstanding send (out-of-order or phantom)" src
        dst epoch
  | Some s ->
    let delay = time -. s.s_time in
    if delay > st.cfg.delay_bound +. slack time then
      violationf st ~time "delay-exceeds-T" "%d->%d delay %.9g > T=%.9g" src dst delay
        st.cfg.delay_bound;
    if delay < -.slack time then
      violationf st ~time "deliver-before-send" "%d->%d delivered %.9g before its send" src
        dst (-.delay));
  if st.cfg.check_gaps && link.last_receipt_epoch = epoch then begin
    let gap = time -. link.last_receipt in
    if
      gap > st.cfg.delta_t +. slack time
      && not (sender_outage st.cfg ~src link.last_receipt time)
    then
      violationf st ~time "receipt-gap-exceeds-dT"
        "%d->%d silent for %.9g on an unchanged link, bound dT=%.9g" src dst gap
        st.cfg.delta_t
  end;
  (* The anchor also dates the arming of dst's lost(src) timer, so keep
     it current even when gap checking is off. *)
  link.last_receipt <- time;
  link.last_receipt_epoch <- epoch

(* [label] >= 1 encodes lost(v) with v = label - 1 (Tick is 0; -1 means
   the trace predates timer labels). Every receipt from v re-arms the
   timer for subjective ΔT', so a live fire earlier than [min_lost_gap]
   after the last delivery v -> node means the engine fired it early or
   dropped a re-arm. *)
let on_timer_fire st ~time node label =
  if st.cfg.check_lost_timers && label >= 1 then begin
    let v = label - 1 in
    match Hashtbl.find_opt st.links (v, node) with
    | Some link when link.last_receipt_epoch >= 0 ->
      let gap = time -. link.last_receipt in
      (* gap = 0 is the same-instant race: a delivery processed at the
         fire's own timestamp updated the anchor, but the fire was armed
         by the receipt *before* it — not premature. Only a strictly
         positive yet too-small gap convicts the engine. *)
      if gap > slack time && gap < st.cfg.min_lost_gap -. slack time then
        violationf st ~time "premature-lost-timer"
          "%d's lost(%d) fired %.9g after the last receipt, minimum gap %.9g" node v gap
          st.cfg.min_lost_gap
    | _ -> ()
  end

let on_drop_in_flight st ~time src dst epoch =
  let e = edge_state st src dst in
  if e.present && e.epoch = epoch then
    violationf st ~time "drop-live-message"
      "%d->%d epoch-%d message dropped though the edge never changed" src dst epoch;
  let link = link_state st src dst in
  (match take_send link epoch with
  | Some _ -> ()
  | None ->
    if not (consume_dup link) then
      violationf st ~time "drop-without-send"
        "%d->%d in-flight drop with no outstanding send" src dst)

let on_drop_lossy st ~time src dst epoch =
  let link = link_state st src dst in
  (match take_send link epoch with
  | Some _ -> ()
  | None ->
    if not (consume_dup link) then
      violationf st ~time "drop-without-send" "%d->%d lossy drop with no outstanding send"
        src dst);
  (* Loss breaks the receipt cadence through no fault of the engine:
     reset the gap anchor rather than report a phantom silence. *)
  link.last_receipt_epoch <- -1

let finish st =
  let horizon = st.cfg.horizon in
  (* Undelivered messages whose delivery window closed before the end of
     the run, on an edge that never changed under them. *)
  Hashtbl.iter
    (fun (src, dst) link ->
      let e = edge_state st src dst in
      Queue.iter
        (fun s ->
          if
            e.present && e.epoch = s.s_epoch
            && s.s_time +. st.cfg.delay_bound < horizon -. slack horizon
          then
            violationf st ~time:horizon "undelivered-within-T"
              "%d->%d send at %.9g neither delivered nor dropped by %.9g" src dst s.s_time
              (s.s_time +. st.cfg.delay_bound))
        link.sends;
      if st.cfg.check_gaps && link.last_receipt_epoch >= 0 then begin
        let e = edge_state st src dst in
        if e.present && e.epoch = link.last_receipt_epoch then begin
          let gap = horizon -. link.last_receipt in
          if
            gap > st.cfg.delta_t +. slack horizon
            && not (sender_outage st.cfg ~src link.last_receipt horizon)
          then
            violationf st ~time:horizon "receipt-gap-exceeds-dT"
              "%d->%d silent for the last %.9g of the run, bound dT=%.9g" src dst gap
              st.cfg.delta_t
        end
      end)
    st.links;
  (* Discovery obligations whose deadline passed unmet. An endpoint that
     was dead at any point of the obligation window is excused: crashed
     nodes observe nothing, and what they missed is replayed (for edges
     still present) by the restart re-discovery instead. *)
  Hashtbl.iter
    (fun _ e ->
      List.iter
        (fun o ->
          let excused node =
            Dsim.Fault.dead_during st.cfg.faults ~node o.o_time o.o_deadline
          in
          let lo_missing = (not o.o_lo_seen) && not (excused e.e_lo) in
          let hi_missing = (not o.o_hi_seen) && not (excused e.e_hi) in
          if o.o_deadline < horizon -. slack horizon && (lo_missing || hi_missing) then
            violationf st ~time:o.o_deadline "missed-discovery"
              "{%d,%d} change at %.9g (epoch %d) undiscovered by %s by deadline %.9g"
              e.e_lo e.e_hi o.o_time o.o_epoch
              (match (lo_missing, hi_missing) with
              | true, true -> "both endpoints"
              | true, false -> Printf.sprintf "node %d" e.e_lo
              | false, true -> Printf.sprintf "node %d" e.e_hi
              | false, false -> assert false)
              o.o_deadline)
        e.obligations)
    st.edges

(* ---- Incremental API: the explorer feeds entries one at a time as the
   engine produces them; [audit] below is the offline replay built on the
   same three calls, so the two can never drift apart. ---- *)

let create cfg =
  {
    cfg;
    edges = Hashtbl.create 64;
    links = Hashtbl.create 64;
    violations = [];
    audited = 0;
  }

let step st { Trace.time; kind; a; b; c } =
  st.audited <- st.audited + 1;
  match kind with
  | Trace.Send -> on_send st ~time a b c
  | Trace.Deliver -> on_deliver st ~time a b c
  | Trace.Drop_no_edge ->
    let e = edge_state st a b in
    if e.present then
      violationf st ~time "drop-no-edge-but-present" "%d->%d dropped as edgeless but {%d,%d} exists" a b a b
  | Trace.Drop_in_flight -> on_drop_in_flight st ~time a b c
  | Trace.Drop_lossy -> on_drop_lossy st ~time a b c
  | Trace.Edge_add -> on_edge_change st ~time ~add:true a b
  | Trace.Edge_remove -> on_edge_change st ~time ~add:false a b
  | Trace.Discover_add -> on_discover st ~time ~add:true a b c
  | Trace.Discover_remove -> on_discover st ~time ~add:false a b c
  | Trace.Timer_fire -> on_timer_fire st ~time a b
  | Trace.Fault_duplicate ->
    (* Recorded at send time: licenses one extra sendless deliver or
       drop on this directed link, whenever the copy lands. *)
    let link = link_state st a b in
    link.dup_credit <- link.dup_credit + 1
  | Trace.Fault_crash | Trace.Fault_restart | Trace.Fault_corrupt
  | Trace.Fault_byzantine_msg ->
    (* Informational: excusals key off the schedule in the config. *)
    ()
  | Trace.Delay_clamped ->
    (* A clamped adversary draw is the policy's bug, not the engine's;
       the explorer treats it as fatal separately (it voids coverage). *)
    ()
  | Trace.Discover_stale | Trace.Timer_stale -> ()

let violation_count st = List.length st.violations

let finish st =
  finish st;
  {
    Report.violations = List.rev st.violations;
    events_audited = st.audited;
    probes = 0;
  }

let audit cfg entries =
  let st = create cfg in
  List.iter (step st) entries;
  finish st
