(** Audit verdicts: a flat list of rule violations plus coverage
    counters, with a deterministic rendering so that replaying a stored
    scenario spec can be checked for byte-identical output. *)

type violation = { time : float; rule : string; detail : string }
(** [rule] is a stable kebab-case identifier (e.g. ["delay-exceeds-T"],
    ["late-discovery"], ["global-skew-bound"]). *)

type t = {
  violations : violation list;  (** chronological *)
  events_audited : int;  (** trace entries replayed by the conformance pass *)
  probes : int;  (** guarantee-monitor samples taken *)
}

val ok : t -> bool

val merge : t -> t -> t
(** Union of violations (re-sorted by time, stable on ties) and summed
    counters. *)

val pp_violation : Format.formatter -> violation -> unit

val pp : Format.formatter -> t -> unit

val render : t -> string
(** Canonical text form: one line per violation plus a trailing summary
    line. Identical executions render identically. *)
