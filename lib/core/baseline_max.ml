module Engine = Dsim.Engine
module Int_set = Set.Make (Int)

type t = {
  ctx : Proto.ctx;
  params : Params.t;
  mutable upsilon : Int_set.t;
  l : Estimate.t;
  lmax : Estimate.t;
  mutable discrete_jumps : int;
  mutable messages_sent : int;
}

let create params ctx =
  {
    ctx;
    params;
    upsilon = Int_set.empty;
    l = Estimate.create ~value:0. ~anchor:0.;
    lmax = Estimate.create ~value:0. ~anchor:0.;
    discrete_jumps = 0;
    messages_sent = 0;
  }

let hardware_clock t = Engine.hardware_clock t.ctx

let id t = Engine.node_id t.ctx

let logical_clock t = Estimate.get t.l ~at:(hardware_clock t)

let max_estimate t = Estimate.get t.lmax ~at:(hardware_clock t)

let adjust_clock t =
  let h = hardware_clock t in
  if Estimate.raise_to t.l ~at:h (Estimate.get t.lmax ~at:h) then
    t.discrete_jumps <- t.discrete_jumps + 1

let send_update t v =
  let h = hardware_clock t in
  t.messages_sent <- t.messages_sent + 1;
  Engine.send t.ctx ~dst:v
    { Proto.l = Estimate.get t.l ~at:h; lmax = Estimate.get t.lmax ~at:h }

(* Fault-injection restart: same contract as Node.restart — forget the
   neighbor set, reset (or corrupt) the clock registers, re-arm the tick. *)
let restart t ~corrupt =
  t.upsilon <- Int_set.empty;
  let h = hardware_clock t in
  (match corrupt with
  | None ->
    Estimate.set t.l ~at:h 0.;
    Estimate.set t.lmax ~at:h 0.
  | Some prng ->
    let scale = Float.max 1. (2. *. h) in
    let l_val = Dsim.Prng.float prng scale in
    let lmax_val = l_val +. Dsim.Prng.float prng (0.5 *. scale) in
    Estimate.set t.l ~at:h l_val;
    Estimate.set t.lmax ~at:h lmax_val);
  Engine.set_timer t.ctx ~after:t.params.Params.delta_h Proto.Tick

let handlers t =
  Engine.on_restart t.ctx (restart t);
  {
    Engine.on_init = (fun () -> Engine.set_timer t.ctx ~after:t.params.Params.delta_h Proto.Tick);
    on_discover_add =
      (fun v ->
        send_update t v;
        t.upsilon <- Int_set.add v t.upsilon);
    on_discover_remove = (fun v -> t.upsilon <- Int_set.remove v t.upsilon);
    on_receive =
      (fun v { Proto.lmax = lmax_v; _ } ->
        ignore v;
        let h = hardware_clock t in
        ignore (Estimate.raise_to t.lmax ~at:h lmax_v);
        adjust_clock t);
    on_timer =
      (function
      | Proto.Tick ->
        Int_set.iter (fun v -> send_update t v) t.upsilon;
        adjust_clock t;
        Engine.set_timer t.ctx ~after:t.params.Params.delta_h Proto.Tick
      | Proto.Lost _ -> ());
  }

let upsilon t = Int_set.elements t.upsilon

let discrete_jumps t = t.discrete_jumps

let messages_sent t = t.messages_sent
