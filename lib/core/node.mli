(** The dynamic gradient clock synchronization algorithm (Algorithm 2 of
    the paper), as the event handlers of one node.

    Each node maintains:
    - [Υ] (upsilon): peers it believes it has an edge to (discovered adds
      not yet followed by a discovered remove);
    - [Γ] (gamma) ⊆ Υ: peers heard from within the last subjective [ΔT'];
    - a logical clock [L], an estimate [Lmax] of the maximal logical clock
      in the network, and per-peer estimates [L^v] with the hardware
      timestamp [C^v] of when [v] last (re-)entered Γ.

    After every event, [AdjustClock] raises [L] as far as possible subject
    to [L <= Lmax] and, for every [v ∈ Γ],
    [L - L^v <= B(H - C^v)] where [B] is the per-edge tolerance function
    ({!Params.b}).

    The [tolerance] parameter generalizes [B]: the flat-gradient baseline
    passes a constant function. *)

type t

type tolerance =
  | Tol_default  (** [Params.b params], in its precomputed linear form. *)
  | Tol_const of float  (** A flat tolerance — the non-gradient baseline. *)
  | Tol_fun of (peer:int -> float -> float)
      (** Fully general: receives the peer id and the subjective age
          [H_u - C^v_u] of its Γ-membership. Per-peer values support the
          heterogeneous-link extension ({!Hetero}). *)

type timeout =
  | Timeout_default  (** [Params.delta_t' params]. *)
  | Timeout_fun of (peer:int -> float)

val create : ?tolerance:tolerance -> ?timeout:timeout -> Params.t -> Proto.ctx -> t
(** [tolerance] is the per-edge [B]; [timeout] the subjective silence
    after which a peer leaves Γ. The defaults realize Algorithm 2 as
    written. The variants exist for the hot path: [Tol_default] and
    [Tol_const] run AdjustClock's Γ loop on unboxed floats, whereas a
    closure-valued [B] boxes its argument and result on every call. *)

val handlers : t -> Proto.handlers
(** The Algorithm 2 event handlers, to be installed in the engine. Also
    registers {!restart} as the node's {!Dsim.Engine.on_restart} entry
    point. *)

val restart : t -> corrupt:Dsim.Prng.t option -> unit
(** Fault-injection restart entry point: drop every peer slot (Γ, Υ,
    estimates, membership timestamps), reset [L] and [Lmax], and re-arm
    the periodic tick. With [corrupt = Some prng], [L] and [Lmax] restart
    from arbitrary PRNG-drawn values (kept ordered [L <= Lmax]) instead
    of zero — the self-stabilization starting point. *)

(** {1 Introspection (harness side; reads the node's current state)} *)

val id : t -> int

val params_of : t -> Params.t

val logical_clock : t -> float
(** [L_u] at the engine's current instant. *)

val max_estimate : t -> float
(** [Lmax_u] at the engine's current instant. *)

val hardware_clock : t -> float

val gamma : t -> int list
(** Current members of Γ, sorted. *)

val upsilon : t -> int list
(** Current members of Υ, sorted. *)

val peer_estimate : t -> int -> float option
(** [L^v_u] if [v ∈ Γ]. *)

val peer_tolerance : t -> int -> float option
(** Current [B^v_u = B(H_u - C^v_u)] if [v ∈ Γ]. *)

val peer_age : t -> int -> float option
(** Subjective age [H_u - C^v_u] of [v]'s Γ-membership. *)

val is_blocked : t -> bool
(** Definition 6.1: [Lmax_u > L_u] and some [v ∈ Γ] has
    [L_u - L^v_u > B^v_u]. By Property 6.4 the first condition alone is
    equivalent; we check both and the pair is asserted consistent in
    tests. *)

val discrete_jumps : t -> int
(** Number of strictly positive discrete adjustments made so far. *)

val messages_sent : t -> int
