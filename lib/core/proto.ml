type message = { l : float; lmax : float }

type timer = Tick | Lost of int

let timer_label = function Tick -> 0 | Lost v -> v + 1

type ctx = (message, timer) Dsim.Engine.ctx

type handlers = (message, timer) Dsim.Engine.handlers

let pp_message fmt m = Format.fprintf fmt "<L=%g, Lmax=%g>" m.l m.lmax
