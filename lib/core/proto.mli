(** Wire protocol shared by the gradient algorithm and the baselines. *)

type message = { l : float; lmax : float }
(** The update [⟨L_u, Lmax_u⟩] broadcast every subjective [ΔH]
    (Algorithm 2). *)

type timer =
  | Tick          (** the periodic broadcast alarm *)
  | Lost of int   (** [lost(v)]: armed on each receipt from [v], fires
                      after subjective [ΔT'] of silence *)

val timer_label : timer -> int
(** Injective int encoding for the engine's timer tables and trace
    records: [Tick] is [0], [Lost v] is [v + 1]. *)

type ctx = (message, timer) Dsim.Engine.ctx

type handlers = (message, timer) Dsim.Engine.handlers

val pp_message : Format.formatter -> message -> unit
