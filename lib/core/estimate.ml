type t = { mutable value : float; mutable anchor : float }

let create ~value ~anchor = { value; anchor }

(* Forced inline: these are one-line float arithmetic on an all-float
   record, called several times per simulation event — as out-of-line
   calls each would box its float argument and result. *)
let[@inline always] get e ~at = e.value +. (at -. e.anchor)

let[@inline always] set e ~at x =
  e.value <- x;
  e.anchor <- at

let[@inline always] raise_to e ~at x =
  let current = get e ~at in
  if x > current then begin
    set e ~at x;
    true
  end
  else false
