module Engine = Dsim.Engine
module Int_set = Set.Make (Int)

type peer = {
  mutable c : float;      (* C^v_u: hardware clock when v last entered Γ *)
  estimate : Estimate.t;  (* L^v_u, drifting at u's hardware rate *)
}

type t = {
  ctx : Proto.ctx;
  params : Params.t;
  tolerance : peer:int -> float -> float;
  timeout : peer:int -> float;
  gamma : (int, peer) Hashtbl.t;
  mutable upsilon : Int_set.t;
  l : Estimate.t;
  lmax : Estimate.t;
  mutable discrete_jumps : int;
  mutable messages_sent : int;
}

let create ?tolerance ?timeout params ctx =
  let tolerance =
    match tolerance with Some f -> f | None -> fun ~peer:_ -> Params.b params
  in
  let timeout =
    match timeout with Some f -> f | None -> fun ~peer:_ -> Params.delta_t' params
  in
  {
    ctx;
    params;
    tolerance;
    timeout;
    gamma = Hashtbl.create 8;
    upsilon = Int_set.empty;
    l = Estimate.create ~value:0. ~anchor:0.;
    lmax = Estimate.create ~value:0. ~anchor:0.;
    discrete_jumps = 0;
    messages_sent = 0;
  }

let hardware_clock t = Engine.hardware_clock t.ctx

let id t = Engine.node_id t.ctx

let params_of t = t.params

let logical_clock t = Estimate.get t.l ~at:(hardware_clock t)

let max_estimate t = Estimate.get t.lmax ~at:(hardware_clock t)

(* Procedure AdjustClock:
   L <- max{L, min{Lmax, min_{v in Gamma}(L^v + B(H - C^v))}}. *)
let adjust_clock t =
  let h = hardware_clock t in
  let l = Estimate.get t.l ~at:h in
  let lmax = Estimate.get t.lmax ~at:h in
  let constraint_cap =
    Hashtbl.fold
      (fun v peer acc ->
        Float.min acc
          (Estimate.get peer.estimate ~at:h +. t.tolerance ~peer:v (h -. peer.c)))
      t.gamma infinity
  in
  let target = Float.max l (Float.min lmax constraint_cap) in
  if target > l then begin
    t.discrete_jumps <- t.discrete_jumps + 1;
    Estimate.set t.l ~at:h target
  end

let send_update t v =
  let h = hardware_clock t in
  t.messages_sent <- t.messages_sent + 1;
  Engine.send t.ctx ~dst:v
    { Proto.l = Estimate.get t.l ~at:h; lmax = Estimate.get t.lmax ~at:h }

let on_init t () = Engine.set_timer t.ctx ~after:t.params.Params.delta_h Proto.Tick

let on_discover_add t v =
  send_update t v;
  t.upsilon <- Int_set.add v t.upsilon;
  adjust_clock t

let on_discover_remove t v =
  (* The lost-timer watches for silence on a live link; once the removal
     is discovered, v has already left Γ, so letting it fire would only
     produce a stale-timer event and a spurious AdjustClock. Cancel it,
     mirroring the re-arm in [on_receive]. *)
  Engine.cancel_timer t.ctx (Proto.Lost v);
  Hashtbl.remove t.gamma v;
  t.upsilon <- Int_set.remove v t.upsilon;
  adjust_clock t

let on_receive t v { Proto.l = l_v; lmax = lmax_v } =
  Engine.cancel_timer t.ctx (Proto.Lost v);
  let h = hardware_clock t in
  (match Hashtbl.find_opt t.gamma v with
  | Some peer ->
    (* Line 20: the estimate is refreshed on every receipt; C^v only when
       v (re-)enters Gamma (lines 17-19, cf. Lemma 6.10). *)
    Estimate.set peer.estimate ~at:h l_v
  | None ->
    Hashtbl.replace t.gamma v { c = h; estimate = Estimate.create ~value:l_v ~anchor:h });
  (* A message can only arrive on an edge the environment delivered on, so
     v belongs in Upsilon even if the discover(add) was suppressed as
     transient. *)
  t.upsilon <- Int_set.add v t.upsilon;
  ignore (Estimate.raise_to t.lmax ~at:h lmax_v);
  adjust_clock t;
  Engine.set_timer t.ctx ~after:(t.timeout ~peer:v) (Proto.Lost v)

let on_timer t = function
  | Proto.Tick ->
    Int_set.iter (fun v -> send_update t v) t.upsilon;
    adjust_clock t;
    Engine.set_timer t.ctx ~after:t.params.Params.delta_h Proto.Tick
  | Proto.Lost v ->
    Hashtbl.remove t.gamma v;
    adjust_clock t

let handlers t =
  {
    Engine.on_init = on_init t;
    on_discover_add = on_discover_add t;
    on_discover_remove = on_discover_remove t;
    on_receive = on_receive t;
    on_timer = on_timer t;
  }

(* Introspection ------------------------------------------------------ *)

let gamma t = Hashtbl.fold (fun v _ acc -> v :: acc) t.gamma [] |> List.sort compare

let upsilon t = Int_set.elements t.upsilon

let peer_estimate t v =
  Option.map
    (fun peer -> Estimate.get peer.estimate ~at:(hardware_clock t))
    (Hashtbl.find_opt t.gamma v)

let peer_age t v =
  Option.map (fun peer -> hardware_clock t -. peer.c) (Hashtbl.find_opt t.gamma v)

let peer_tolerance t v = Option.map (t.tolerance ~peer:v) (peer_age t v)

let is_blocked t =
  let h = hardware_clock t in
  let l = Estimate.get t.l ~at:h in
  Estimate.get t.lmax ~at:h > l
  && Hashtbl.fold
       (fun v peer acc ->
         acc
         || l -. Estimate.get peer.estimate ~at:h > t.tolerance ~peer:v (h -. peer.c))
       t.gamma false

let discrete_jumps t = t.discrete_jumps

let messages_sent t = t.messages_sent
