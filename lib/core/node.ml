module Engine = Dsim.Engine

(* All-float record, so the field lives unboxed and the running minimum
   in [adjust_clock] can be updated without allocating (a [float ref] or
   a mutable float field in a mixed record would box every store). *)
type scratch = { mutable acc : float }

type tolerance =
  | Tol_default
  | Tol_const of float
  | Tol_fun of (peer:int -> float -> float)

type timeout = Timeout_default | Timeout_fun of (peer:int -> float)

(* Lowered tolerance. [Tol_default] becomes the closed linear form of
   {!Params.b} — [max floor (icpt -. slope *. age)] over precomputed
   floats — so the per-peer term in [adjust_clock] is pure unboxed
   arithmetic; a closure-field call there boxes the float argument and
   result on every Γ member of every event. The inline record is
   all-float, hence flat. *)
type tol =
  | T_const of float
  | T_linear of { floor : float; icpt : float; slope : float }
  | T_fun of (peer:int -> float -> float)

type tmo = Tm_const of float | Tm_fun of (peer:int -> float)

(* Peer state lives in parallel arrays sorted by peer id — one slot per
   peer currently in Υ or Γ, flat floats instead of a Hashtbl of boxed
   cells, so the per-event [AdjustClock] minimum is a cache-linear loop
   and membership updates are a binary search plus a blit. The estimate
   [L^v_u] is stored inline as (value, anchor) with
   [get at = value +. (at -. anchor)], exactly {!Estimate}'s arithmetic. *)
type t = {
  ctx : Proto.ctx;
  params : Params.t;
  tolerance : tol;
  timeout : tmo;
  mutable p_id : int array;
  mutable p_gamma : bool array; (* v ∈ Γ: heard from within subjective ΔT' *)
  mutable p_upsilon : bool array; (* v ∈ Υ: edge believed present *)
  mutable p_c : float array; (* C^v_u: hardware clock when v last entered Γ *)
  mutable p_val : float array; (* L^v_u estimate value ... *)
  mutable p_anchor : float array; (* ... anchored at this hardware time *)
  mutable p_len : int;
  scratch : scratch;
  l : Estimate.t;
  lmax : Estimate.t;
  mutable discrete_jumps : int;
  mutable messages_sent : int;
}

let create ?(tolerance = Tol_default) ?(timeout = Timeout_default) params ctx =
  let tolerance =
    match tolerance with
    | Tol_const b -> T_const b
    | Tol_fun f -> T_fun f
    | Tol_default ->
      (* Close over Params.b's linear form (Section 5):
         B(dt) = max(b0, 5G + unit + b0 - b0 * dt / unit). *)
      let unit = (1. +. params.Params.rho) *. Params.tau params in
      T_linear
        {
          floor = params.Params.b0;
          icpt = (5. *. Params.global_skew_bound params) +. unit +. params.Params.b0;
          slope = params.Params.b0 /. unit;
        }
  in
  let timeout =
    match timeout with
    | Timeout_fun f -> Tm_fun f
    | Timeout_default -> Tm_const (Params.delta_t' params)
  in
  {
    ctx;
    params;
    tolerance;
    timeout;
    p_id = [||];
    p_gamma = [||];
    p_upsilon = [||];
    p_c = [||];
    p_val = [||];
    p_anchor = [||];
    p_len = 0;
    scratch = { acc = 0. };
    l = Estimate.create ~value:0. ~anchor:0.;
    lmax = Estimate.create ~value:0. ~anchor:0.;
    discrete_jumps = 0;
    messages_sent = 0;
  }

let[@inline always] hardware_clock t = Engine.hardware_clock t.ctx

let id t = Engine.node_id t.ctx

let params_of t = t.params

let logical_clock t = Estimate.get t.l ~at:(hardware_clock t)

let max_estimate t = Estimate.get t.lmax ~at:(hardware_clock t)

(* Slot management ---------------------------------------------------- *)

(* Index of peer [v], or [lnot] of its insertion point when absent. *)
let find t v =
  let lo = ref 0 and hi = ref t.p_len in
  let ids = t.p_id in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if ids.(mid) < v then lo := mid + 1 else hi := mid
  done;
  if !lo < t.p_len && ids.(!lo) = v then !lo else lnot !lo

let grow t =
  let cap = max 4 (2 * Array.length t.p_id) in
  let ids = Array.make cap 0
  and ga = Array.make cap false
  and up = Array.make cap false
  and c = Array.make cap 0.
  and vl = Array.make cap 0.
  and an = Array.make cap 0. in
  Array.blit t.p_id 0 ids 0 t.p_len;
  Array.blit t.p_gamma 0 ga 0 t.p_len;
  Array.blit t.p_upsilon 0 up 0 t.p_len;
  Array.blit t.p_c 0 c 0 t.p_len;
  Array.blit t.p_val 0 vl 0 t.p_len;
  Array.blit t.p_anchor 0 an 0 t.p_len;
  t.p_id <- ids;
  t.p_gamma <- ga;
  t.p_upsilon <- up;
  t.p_c <- c;
  t.p_val <- vl;
  t.p_anchor <- an

(* Insert a fresh (non-Γ, non-Υ) slot for [v] at position [at]. *)
let insert t ~at v =
  if t.p_len >= Array.length t.p_id then grow t;
  let tail = t.p_len - at in
  Array.blit t.p_id at t.p_id (at + 1) tail;
  Array.blit t.p_gamma at t.p_gamma (at + 1) tail;
  Array.blit t.p_upsilon at t.p_upsilon (at + 1) tail;
  Array.blit t.p_c at t.p_c (at + 1) tail;
  Array.blit t.p_val at t.p_val (at + 1) tail;
  Array.blit t.p_anchor at t.p_anchor (at + 1) tail;
  t.p_id.(at) <- v;
  t.p_gamma.(at) <- false;
  t.p_upsilon.(at) <- false;
  t.p_c.(at) <- 0.;
  t.p_val.(at) <- 0.;
  t.p_anchor.(at) <- 0.;
  t.p_len <- t.p_len + 1

(* Drop slot [i] once the peer is in neither Γ nor Υ. *)
let drop_if_empty t i =
  if (not t.p_gamma.(i)) && not t.p_upsilon.(i) then begin
    let tail = t.p_len - i - 1 in
    Array.blit t.p_id (i + 1) t.p_id i tail;
    Array.blit t.p_gamma (i + 1) t.p_gamma i tail;
    Array.blit t.p_upsilon (i + 1) t.p_upsilon i tail;
    Array.blit t.p_c (i + 1) t.p_c i tail;
    Array.blit t.p_val (i + 1) t.p_val i tail;
    Array.blit t.p_anchor (i + 1) t.p_anchor i tail;
    t.p_len <- t.p_len - 1
  end

(* Algorithm 2 -------------------------------------------------------- *)

(* Current tolerance [B^v_u] for slot [i] at hardware time [h]. Cold
   callers only (introspection); the hot loop in [adjust_clock] matches
   once outside its iteration instead. *)
let tol_at t i h =
  match t.tolerance with
  | T_const b -> b
  | T_linear { floor; icpt; slope } ->
    let b = icpt -. (slope *. (h -. t.p_c.(i))) in
    if b < floor then floor else b
  | T_fun f -> f ~peer:t.p_id.(i) (h -. t.p_c.(i))

(* Procedure AdjustClock:
   L <- max{L, min{Lmax, min_{v in Gamma}(L^v + B(H - C^v))}}.
   The match on the tolerance is hoisted out of the Γ loop: the default
   and constant forms then run entirely on unboxed floats. *)
let adjust_clock t =
  let h = hardware_clock t in
  let l = Estimate.get t.l ~at:h in
  let lmax = Estimate.get t.lmax ~at:h in
  t.scratch.acc <- infinity;
  (match t.tolerance with
  | T_const b ->
    for i = 0 to t.p_len - 1 do
      if t.p_gamma.(i) then begin
        let cap = t.p_val.(i) +. (h -. t.p_anchor.(i)) +. b in
        if cap < t.scratch.acc then t.scratch.acc <- cap
      end
    done
  | T_linear { floor; icpt; slope } ->
    for i = 0 to t.p_len - 1 do
      if t.p_gamma.(i) then begin
        let b = icpt -. (slope *. (h -. t.p_c.(i))) in
        let b = if b < floor then floor else b in
        let cap = t.p_val.(i) +. (h -. t.p_anchor.(i)) +. b in
        if cap < t.scratch.acc then t.scratch.acc <- cap
      end
    done
  | T_fun f ->
    for i = 0 to t.p_len - 1 do
      if t.p_gamma.(i) then begin
        let cap =
          t.p_val.(i) +. (h -. t.p_anchor.(i))
          +. f ~peer:t.p_id.(i) (h -. t.p_c.(i))
        in
        if cap < t.scratch.acc then t.scratch.acc <- cap
      end
    done);
  let target = if lmax < t.scratch.acc then lmax else t.scratch.acc in
  if target > l then begin
    t.discrete_jumps <- t.discrete_jumps + 1;
    Estimate.set t.l ~at:h target
  end

let send_update t v =
  let h = hardware_clock t in
  t.messages_sent <- t.messages_sent + 1;
  Engine.send t.ctx ~dst:v
    { Proto.l = Estimate.get t.l ~at:h; lmax = Estimate.get t.lmax ~at:h }

let on_init t () = Engine.set_timer t.ctx ~after:t.params.Params.delta_h Proto.Tick

let on_discover_add t v =
  send_update t v;
  (let i = find t v in
   if i >= 0 then t.p_upsilon.(i) <- true
   else begin
     insert t ~at:(lnot i) v;
     t.p_upsilon.(lnot i) <- true
   end);
  adjust_clock t

let on_discover_remove t v =
  (* The lost-timer watches for silence on a live link; once the removal
     is discovered, v has already left Γ, so letting it fire would only
     produce a stale-timer event and a spurious AdjustClock. Cancel it,
     mirroring the re-arm in [on_receive]. *)
  Engine.cancel_timer t.ctx (Proto.Lost v);
  (let i = find t v in
   if i >= 0 then begin
     t.p_gamma.(i) <- false;
     t.p_upsilon.(i) <- false;
     drop_if_empty t i
   end);
  adjust_clock t

let on_receive t v { Proto.l = l_v; lmax = lmax_v } =
  let lost = Proto.Lost v in
  Engine.cancel_timer t.ctx lost;
  let h = hardware_clock t in
  let i = find t v in
  let i =
    if i >= 0 then i
    else begin
      let at = lnot i in
      insert t ~at v;
      at
    end
  in
  if t.p_gamma.(i) then begin
    (* Line 20: the estimate is refreshed on every receipt; C^v only when
       v (re-)enters Gamma (lines 17-19, cf. Lemma 6.10). *)
    t.p_val.(i) <- l_v;
    t.p_anchor.(i) <- h
  end
  else begin
    t.p_gamma.(i) <- true;
    t.p_c.(i) <- h;
    t.p_val.(i) <- l_v;
    t.p_anchor.(i) <- h
  end;
  (* A message can only arrive on an edge the environment delivered on, so
     v belongs in Upsilon even if the discover(add) was suppressed as
     transient. *)
  t.p_upsilon.(i) <- true;
  ignore (Estimate.raise_to t.lmax ~at:h lmax_v);
  adjust_clock t;
  let after =
    match t.timeout with Tm_const d -> d | Tm_fun f -> f ~peer:v
  in
  Engine.set_timer t.ctx ~after lost

let on_timer t = function
  | Proto.Tick ->
    for i = 0 to t.p_len - 1 do
      if t.p_upsilon.(i) then send_update t t.p_id.(i)
    done;
    adjust_clock t;
    Engine.set_timer t.ctx ~after:t.params.Params.delta_h Proto.Tick
  | Proto.Lost v ->
    (let i = find t v in
     if i >= 0 then begin
       t.p_gamma.(i) <- false;
       drop_if_empty t i
     end);
    adjust_clock t

(* Restart entry point (fault injection): the crash lost every piece of
   volatile state, so empty the peer table and restart the clock
   registers. Without corruption the node resumes from the initial state
   (L = Lmax = 0 at the current hardware reading — validity re-converges
   through received Lmax values). With corruption, draw an arbitrary but
   type-correct state from the fault PRNG: the registers stay ordered
   (L <= Lmax) but their values are garbage scaled to the current
   hardware clock, which is exactly the transient-fault starting point of
   the self-stabilization question. *)
let restart t ~corrupt =
  t.p_len <- 0;
  let h = hardware_clock t in
  (match corrupt with
  | None ->
    Estimate.set t.l ~at:h 0.;
    Estimate.set t.lmax ~at:h 0.
  | Some prng ->
    let scale = Float.max 1. (2. *. h) in
    let l_val = Dsim.Prng.float prng scale in
    let lmax_val = l_val +. Dsim.Prng.float prng (0.5 *. scale) in
    Estimate.set t.l ~at:h l_val;
    Estimate.set t.lmax ~at:h lmax_val);
  (* Timers were purged by the engine; re-arm the periodic tick exactly
     as on_init does. Lost timers re-arm as messages arrive. *)
  Engine.set_timer t.ctx ~after:t.params.Params.delta_h Proto.Tick

let handlers t =
  Engine.on_restart t.ctx (restart t);
  {
    Engine.on_init = on_init t;
    on_discover_add = on_discover_add t;
    on_discover_remove = on_discover_remove t;
    on_receive = on_receive t;
    on_timer = on_timer t;
  }

(* Introspection ------------------------------------------------------ *)

let members t which =
  let out = ref [] in
  for i = t.p_len - 1 downto 0 do
    if which.(i) then out := t.p_id.(i) :: !out
  done;
  !out

let gamma t = members t t.p_gamma

let upsilon t = members t t.p_upsilon

let in_gamma t v =
  let i = find t v in
  if i >= 0 && t.p_gamma.(i) then i else -1

let peer_estimate t v =
  let i = in_gamma t v in
  if i < 0 then None
  else Some (t.p_val.(i) +. (hardware_clock t -. t.p_anchor.(i)))

let peer_age t v =
  let i = in_gamma t v in
  if i < 0 then None else Some (hardware_clock t -. t.p_c.(i))

let peer_tolerance t v =
  let i = in_gamma t v in
  if i < 0 then None else Some (tol_at t i (hardware_clock t))

let is_blocked t =
  let h = hardware_clock t in
  let l = Estimate.get t.l ~at:h in
  if Estimate.get t.lmax ~at:h <= l then false
  else begin
    let blocked = ref false in
    for i = 0 to t.p_len - 1 do
      if
        t.p_gamma.(i)
        && l -. (t.p_val.(i) +. (h -. t.p_anchor.(i))) > tol_at t i h
      then blocked := true
    done;
    !blocked
  end

let discrete_jumps t = t.discrete_jumps

let messages_sent t = t.messages_sent
