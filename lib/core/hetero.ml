module Engine = Dsim.Engine

type link_bound = int -> int -> float

let uniform_bounds params _ _ = params.Params.delay_bound

let of_alist ~default pairs =
  let table = Hashtbl.create 16 in
  List.iter
    (fun ((u, v), b) -> Hashtbl.replace table (Dsim.Dyngraph.normalize u v) b)
    pairs;
  fun u v ->
    match Hashtbl.find_opt table (Dsim.Dyngraph.normalize u v) with
    | Some b -> b
    | None -> default

let delta_t_e p ~t_e = t_e +. (p.Params.delta_h /. (1. -. p.Params.rho))

let timeout_e p ~t_e = (1. +. p.Params.rho) *. delta_t_e p ~t_e

let tau_e p ~t_e =
  ((1. +. p.Params.rho) /. (1. -. p.Params.rho) *. delta_t_e p ~t_e)
  +. t_e +. p.Params.discovery_bound

let b0_e p ~t_e = p.Params.b0 *. tau_e p ~t_e /. Params.tau p

let b_e p ~t_e age =
  let unit = (1. +. p.Params.rho) *. tau_e p ~t_e in
  let b0 = b0_e p ~t_e in
  Float.max b0
    ((5. *. Params.global_skew_bound p) +. unit +. b0 -. (b0 *. age /. unit))

let stable_local_skew_e p ~t_e = b0_e p ~t_e +. (2. *. p.Params.rho *. Params.w p)

let check_bound p t_e =
  if t_e <= 0. || t_e > p.Params.delay_bound +. 1e-12 then
    invalid_arg
      (Printf.sprintf "Hetero: link bound %g outside (0, T = %g]" t_e
         p.Params.delay_bound)

let node params ~link_bound ctx =
  let me = Engine.node_id ctx in
  let t_e peer =
    let b = link_bound me peer in
    check_bound params b;
    b
  in
  Node.create
    ~tolerance:(Node.Tol_fun (fun ~peer age -> b_e params ~t_e:(t_e peer) age))
    ~timeout:(Node.Timeout_fun (fun ~peer -> timeout_e params ~t_e:(t_e peer)))
    params ctx

let delay_policy prng params ~link_bound =
  Dsim.Delay.directed ~bound:params.Params.delay_bound (fun ~src ~dst ~now:_ ->
      let b = link_bound src dst in
      check_bound params b;
      Dsim.Prng.float prng b)

let create_sim ?discovery_lag ~params ~clocks ~delay ~link_bound ~initial_edges () =
  let n = params.Params.n in
  if Array.length clocks <> n then
    invalid_arg "Hetero.create_sim: clocks array length must equal params.n";
  Array.iteri
    (fun i c ->
      if not (Dsim.Hwclock.within_drift ~rho:params.Params.rho c) then
        invalid_arg (Printf.sprintf "Hetero.create_sim: clock %d violates drift" i))
    clocks;
  let discovery_lag =
    match discovery_lag with
    | Some lag -> lag
    | None -> 0.9 *. params.Params.discovery_bound
  in
  let engine = Engine.create ~clocks ~delay ~discovery_lag ~initial_edges () in
  let nodes = Array.make n None in
  for i = 0 to n - 1 do
    Engine.install engine i (fun ctx ->
        let nd = node params ~link_bound ctx in
        nodes.(i) <- Some nd;
        Node.handlers nd)
  done;
  (engine, Array.map Option.get nodes)

let view nodes iter_edges =
  {
    Metrics.n = Array.length nodes;
    clock_of = (fun i -> Node.logical_clock nodes.(i));
    lmax_of = (fun i -> Node.max_estimate nodes.(i));
    iter_edges;
  }
