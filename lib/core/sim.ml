module Engine = Dsim.Engine
module Hwclock = Dsim.Hwclock

type algo = Gradient | Flat_gradient | Max_only

let algo_to_string = function
  | Gradient -> "gradient"
  | Flat_gradient -> "flat-gradient"
  | Max_only -> "max-only"

type scheduler = Heap | Wheel

let scheduler_to_string = function Heap -> "heap" | Wheel -> "wheel"

type config = {
  params : Params.t;
  clocks : Hwclock.t array;
  delay : Dsim.Delay.t;
  discovery_lag : float;
  initial_edges : (int * int) list;
  algo : algo;
  trace : Dsim.Trace.t option;
  scheduler : scheduler;
  shards : int;
  partition : [ `Contiguous | `Greedy | `Explicit of int array ];
  faults : Dsim.Fault.schedule;
  fault_seed : int;
}

let config ?(algo = Gradient) ?discovery_lag ?trace ?(scheduler = Wheel)
    ?(shards = 1) ?(partition = `Contiguous) ?(faults = []) ?(fault_seed = 0)
    ~params ~clocks ~delay ~initial_edges () =
  let discovery_lag =
    match discovery_lag with
    | Some lag -> lag
    | None -> 0.9 *. params.Params.discovery_bound
  in
  if Array.length clocks <> params.Params.n then
    invalid_arg "Sim.config: clocks array length must equal params.n";
  if discovery_lag < 0. || discovery_lag > params.Params.discovery_bound then
    invalid_arg "Sim.config: discovery lag must lie in [0, D]";
  Array.iteri
    (fun i c ->
      if not (Hwclock.within_drift ~rho:params.Params.rho c) then
        invalid_arg (Printf.sprintf "Sim.config: clock %d violates the drift bound" i))
    clocks;
  if delay.Dsim.Delay.bound > params.Params.delay_bound then
    invalid_arg "Sim.config: delay policy bound exceeds params.delay_bound";
  (match Dsim.Fault.validate ~n:params.Params.n faults with
  | Ok () -> ()
  | Error m -> invalid_arg ("Sim.config: " ^ m));
  if shards < 1 then invalid_arg "Sim.config: shards must be positive";
  { params; clocks; delay; discovery_lag; initial_edges; algo; trace; scheduler;
    shards; partition; faults; fault_seed }

type impl = Gradient_node of Node.t | Max_node of Baseline_max.t

type t = {
  cfg : config;
  engine : (Proto.message, Proto.timer) Engine.t;
  impls : impl array;
}

let create cfg =
  let scheduler =
    match cfg.scheduler with
    | Heap -> `Heap
    (* Level-0 buckets a fraction of the shortest timer period (ΔH), so
       consecutive ticks land in distinct granules and the cursor does a
       handful of cheap slot scans per fire. *)
    | Wheel -> `Wheel (cfg.params.Params.delta_h /. 16.)
  in
  (* Byzantine corruption lies *upward*: for a max-propagation family the
     damaging direction is inflating ⟨L, Lmax⟩, which drags every honest
     neighbour's estimates (and hence clocks) ahead. The lie is scaled to
     a few tolerance units so it is large against B but stays finite. *)
  (* Bounded Byzantine lie: both fields are derived from the sender's
     true L, never its Lmax register. Deriving from Lmax would compound —
     victims echo the inflated Lmax back, the liar's register absorbs it
     via max-propagation and the next lie stacks on top, growing the
     ceiling by O(window / dH * B0). Anchoring at L caps the total Lmax
     inflation at 8 B0 above the honest maximum, which is what makes the
     recovery budget in {!Audit.Guarantees} finite. *)
  let corrupt_msg ~src:_ prng { Proto.l; lmax = _ } =
    let scale = 4. *. cfg.params.Params.b0 in
    let lie = Dsim.Prng.float prng scale in
    { Proto.l = l +. lie; lmax = l +. lie +. Dsim.Prng.float prng scale }
  in
  let engine =
    Engine.create ~clocks:cfg.clocks ~delay:cfg.delay ~discovery_lag:cfg.discovery_lag
      ~initial_edges:cfg.initial_edges ?trace:cfg.trace
      ~faults:cfg.faults ~fault_seed:cfg.fault_seed ~corrupt_msg
      ~timer_label:Proto.timer_label ~scheduler ~shards:cfg.shards
      ~partition:cfg.partition ()
  in
  let n = cfg.params.Params.n in
  (* Build node implementations while installing handlers: the ctx only
     exists inside the install callback. *)
  let impls = Array.make n None in
  for i = 0 to n - 1 do
    Engine.install engine i (fun ctx ->
        match cfg.algo with
        | Gradient ->
          let node = Node.create cfg.params ctx in
          impls.(i) <- Some (Gradient_node node);
          Node.handlers node
        | Flat_gradient ->
          let node =
            Node.create ~tolerance:(Node.Tol_const cfg.params.Params.b0)
              cfg.params ctx
          in
          impls.(i) <- Some (Gradient_node node);
          Node.handlers node
        | Max_only ->
          let node = Baseline_max.create cfg.params ctx in
          impls.(i) <- Some (Max_node node);
          Baseline_max.handlers node)
  done;
  let impls =
    Array.map
      (function Some impl -> impl | None -> failwith "Sim.create: node not installed")
      impls
  in
  { cfg; engine; impls }

let engine t = t.engine

let trace t = Engine.trace t.engine

let params t = t.cfg.params

let run_until t horizon = Engine.run_until t.engine horizon

let now t = Engine.now t.engine

let logical_clock t i =
  match t.impls.(i) with
  | Gradient_node node -> Node.logical_clock node
  | Max_node node -> Baseline_max.logical_clock node

let lmax t i =
  match t.impls.(i) with
  | Gradient_node node -> Node.max_estimate node
  | Max_node node -> Baseline_max.max_estimate node

let view t =
  {
    Metrics.n = t.cfg.params.Params.n;
    clock_of = logical_clock t;
    lmax_of = lmax t;
    iter_edges = (fun f -> Dsim.Dyngraph.iter_edges (Engine.graph t.engine) f);
  }

let gradient_node t i =
  match t.impls.(i) with Gradient_node node -> Some node | Max_node _ -> None

let total_messages t =
  Array.fold_left
    (fun acc impl ->
      acc
      +
      match impl with
      | Gradient_node node -> Node.messages_sent node
      | Max_node node -> Baseline_max.messages_sent node)
    0 t.impls

let total_jumps t =
  Array.fold_left
    (fun acc impl ->
      acc
      +
      match impl with
      | Gradient_node node -> Node.discrete_jumps node
      | Max_node node -> Baseline_max.discrete_jumps node)
    0 t.impls

let alive t i = Engine.alive t.engine i

let faults t = t.cfg.faults

let add_edge_at t ~at u v = Engine.schedule_edge_add t.engine ~at u v

let remove_edge_at t ~at u v = Engine.schedule_edge_remove t.engine ~at u v
