(** Max-propagation baseline DCSA (the classic [18]-style algorithm the
    paper's introduction argues against for local skew).

    Every node floods [⟨L, Lmax⟩] updates exactly like Algorithm 2, but its
    logical clock simply chases the max estimate: [AdjustClock] sets
    [L <- Lmax] unconditionally. Global skew is the same [G(n)] (the
    analysis of Section 6.2 does not use the tolerance function), but a
    node whose [Lmax] jumps — e.g. when a new edge delivers a far-away
    max — yanks its logical clock by Θ(n) in one step, creating Θ(n) local
    skew with all of its old neighbours. *)

type t

val create : Params.t -> Proto.ctx -> t

val handlers : t -> Proto.handlers
(** Also registers {!restart} as the node's restart entry point. *)

val restart : t -> corrupt:Dsim.Prng.t option -> unit
(** Fault-injection restart: forget the neighbor set, reset (or, with
    [Some prng], corrupt) [L]/[Lmax], re-arm the tick. *)

val id : t -> int

val logical_clock : t -> float

val max_estimate : t -> float

val upsilon : t -> int list

val discrete_jumps : t -> int

val messages_sent : t -> int
