(** Full-simulation assembly: an engine, one algorithm instance per node,
    and uniform access to their state.

    This is the main entry point of the library: pick parameters, clocks,
    a delay policy and an initial topology, then run and measure. *)

type algo =
  | Gradient
      (** Algorithm 2 — the paper's dynamic gradient algorithm *)
  | Flat_gradient
      (** ablation: the same algorithm with the constant tolerance
          [B(Δt) = B0] (no decay on new edges) *)
  | Max_only
      (** baseline: chase the max estimate ({!Baseline_max}) *)

val algo_to_string : algo -> string

type scheduler =
  | Heap  (** timers share the engine's event heap *)
  | Wheel
      (** timers live in a hierarchical timer wheel (granularity
          [ΔH / 16]); identical executions, lower cost at large [n] *)

val scheduler_to_string : scheduler -> string

type config = {
  params : Params.t;
  clocks : Dsim.Hwclock.t array;
  delay : Dsim.Delay.t;
  discovery_lag : float;
  initial_edges : (int * int) list;
  algo : algo;
  trace : Dsim.Trace.t option;
  scheduler : scheduler;
  shards : int;
  partition : [ `Contiguous | `Greedy | `Explicit of int array ];
  faults : Dsim.Fault.schedule;
  fault_seed : int;
}

val config :
  ?algo:algo ->
  ?discovery_lag:float ->
  ?trace:Dsim.Trace.t ->
  ?scheduler:scheduler ->
  ?shards:int ->
  ?partition:[ `Contiguous | `Greedy | `Explicit of int array ] ->
  ?faults:Dsim.Fault.schedule ->
  ?fault_seed:int ->
  params:Params.t ->
  clocks:Dsim.Hwclock.t array ->
  delay:Dsim.Delay.t ->
  initial_edges:(int * int) list ->
  unit ->
  config
(** [discovery_lag] defaults to [0.9 *. params.discovery_bound]; it must
    not exceed [params.discovery_bound]. Raises [Invalid_argument] if the
    clocks violate the drift bound, the array length differs from
    [params.n], or [faults] fails {!Dsim.Fault.validate}. [scheduler]
    defaults to [Wheel]; both schedulers produce the same execution
    (pinned by a byte-identical-trace parity test), so the choice is
    purely a performance one. [shards] (default 1) partitions the engine's
    node state into that many independently scheduled lanes; executions
    are byte-identical at every value (see {!Dsim.Engine.create}).
    [partition] (default [`Contiguous]) chooses how nodes map to shards:
    [`Greedy] runs the traffic-aware edge-cut partitioner over the
    initial topology, [`Explicit] supplies the map — both pure
    performance knobs, the trace is identical under any of them.
    [faults] (default none) is a deterministic fault-injection schedule,
    replayed from [fault_seed]; Byzantine windows corrupt outgoing
    ⟨L, Lmax⟩ upward by a few [b0] units. *)

type t

val create : config -> t

val engine : t -> (Proto.message, Proto.timer) Dsim.Engine.t

val trace : t -> Dsim.Trace.t
(** The engine's trace: the one given in the config, or the engine's own
    counters-only trace when none was. *)

val params : t -> Params.t

val run_until : t -> float -> unit

val now : t -> float

(** {1 Node state} *)

val logical_clock : t -> int -> float

val lmax : t -> int -> float

val view : t -> Metrics.view

val gradient_node : t -> int -> Node.t option
(** The underlying {!Node.t} when running [Gradient] or [Flat_gradient]. *)

val total_messages : t -> int

val total_jumps : t -> int

val alive : t -> int -> bool
(** False while node [i] is crashed (always true without faults). *)

val faults : t -> Dsim.Fault.schedule
(** The fault schedule this simulation runs under (possibly empty). *)

(** {1 Topology scheduling (thin wrappers over the engine)} *)

val add_edge_at : t -> at:float -> int -> int -> unit

val remove_edge_at : t -> at:float -> int -> int -> unit
