module Engine = Dsim.Engine

type violation = { time : float; node : int; kind : string; detail : string }

(* The checker is engine-independent: it sees only probe instants and the
   per-node clock accessors, so the offline monitor ([attach]) and the
   bounded model explorer share one implementation of the rules. *)
type checker = {
  n : int;
  rate_floor : float;
  faults : Dsim.Fault.schedule;
  mutable violations : violation list; (* newest first *)
  mutable probes : int;
  prev_clock : float array;
  mutable prev_time : float;
  mutable primed : bool;
}

type monitor = checker

(* Float slack must scale with the magnitudes compared: clocks and probe
   gaps grow with the horizon, and a fixed absolute epsilon both masks
   real sub-epsilon deficits on short runs and fabricates violations on
   multi-thousand-unit horizons where rounding alone exceeds it. *)
let eps_abs = 1e-9
let eps_rel = 1e-7
let slack magnitude = eps_abs +. (eps_rel *. Float.abs magnitude)

let checker ~n ~params ?rate_floor ?(faults = []) () =
  let rate_floor =
    match rate_floor with
    | Some f -> f
    | None -> 1. -. params.Params.rho
  in
  {
    n;
    rate_floor;
    faults;
    violations = [];
    probes = 0;
    prev_clock = Array.make n 0.;
    prev_time = 0.;
    primed = false;
  }

let observe c ~time ~l:clock_of ~lmax:lmax_of =
  c.probes <- c.probes + 1;
  for i = 0 to c.n - 1 do
    (* Crashed nodes have no state to check; a node that crashed or
       restarted since the previous probe lost (or had corrupted) its
       clock, so the min-rate window does not span the discontinuity. *)
    let up = Dsim.Fault.alive c.faults ~node:i ~at:time in
    (* Left-closed window, unlike [Fault.crashed_in]: a probe can land at
       the exact instant of a pending op but before its dispatch (the
       explorer probes before every same-instant event), so an op at
       [prev_time] may postdate the previous sample and must still
       suspend this window. *)
    let discontinuity =
      List.exists
        (function
          | Dsim.Fault.Crash { node = v; at }
          | Dsim.Fault.Restart { node = v; at; _ } ->
            v = i && at >= c.prev_time && at <= time
          | _ -> false)
        c.faults
    in
    if up then begin
      let l = clock_of i in
      let lmax = lmax_of i in
      if lmax < l -. slack l then
        c.violations <-
          {
            time;
            node = i;
            kind = "lmax-dominance";
            detail = Printf.sprintf "L=%.9g > Lmax=%.9g" l lmax;
          }
          :: c.violations;
      if c.primed && not discontinuity then begin
        let dt = time -. c.prev_time in
        let dl = l -. c.prev_clock.(i) in
        if dl < (c.rate_floor *. dt) -. slack (Float.abs l +. dt) then
          c.violations <-
            {
              time;
              node = i;
              kind = "min-rate";
              detail =
                Printf.sprintf "dL=%.9g over dt=%.9g (floor %.3g)" dl dt
                  c.rate_floor;
            }
            :: c.violations
      end;
      c.prev_clock.(i) <- l
    end
  done;
  c.prev_time <- time;
  c.primed <- true

let observe_view c view ~time =
  observe c ~time ~l:view.Metrics.clock_of ~lmax:view.Metrics.lmax_of

let attach engine view ~params ~every ~until ?rate_floor ?(faults = []) () =
  if every <= 0. then invalid_arg "Invariant.attach: period must be positive";
  let monitor = checker ~n:view.Metrics.n ~params ?rate_floor ~faults () in
  let rec schedule time =
    if time <= until then
      Engine.at engine ~time (fun () ->
          observe_view monitor view ~time:(Engine.now engine);
          schedule (time +. every))
  in
  schedule (Engine.now engine);
  monitor

let violations monitor = List.rev monitor.violations

let ok monitor = monitor.violations = []

let probes monitor = monitor.probes

let pp_violation fmt v =
  Format.fprintf fmt "t=%.6g node=%d %s: %s" v.time v.node v.kind v.detail
