module Engine = Dsim.Engine

type violation = { time : float; node : int; kind : string; detail : string }

type monitor = {
  mutable violations : violation list; (* newest first *)
  mutable probes : int;
  prev_clock : float array;
  mutable prev_time : float;
  mutable primed : bool;
}

(* Float slack must scale with the magnitudes compared: clocks and probe
   gaps grow with the horizon, and a fixed absolute epsilon both masks
   real sub-epsilon deficits on short runs and fabricates violations on
   multi-thousand-unit horizons where rounding alone exceeds it. *)
let eps_abs = 1e-9
let eps_rel = 1e-7
let slack magnitude = eps_abs +. (eps_rel *. Float.abs magnitude)

let probe view faults rate_floor monitor time =
  monitor.probes <- monitor.probes + 1;
  for i = 0 to view.Metrics.n - 1 do
    (* Crashed nodes have no state to check; a node that crashed or
       restarted since the previous probe lost (or had corrupted) its
       clock, so the min-rate window does not span the discontinuity. *)
    let up = Dsim.Fault.alive faults ~node:i ~at:time in
    let discontinuity =
      Dsim.Fault.crashed_in faults ~node:i monitor.prev_time time
      || Dsim.Fault.restarted_in faults ~node:i monitor.prev_time time
    in
    if up then begin
      let l = view.Metrics.clock_of i in
      let lmax = view.Metrics.lmax_of i in
      if lmax < l -. slack l then
        monitor.violations <-
          {
            time;
            node = i;
            kind = "lmax-dominance";
            detail = Printf.sprintf "L=%.9g > Lmax=%.9g" l lmax;
          }
          :: monitor.violations;
      if monitor.primed && not discontinuity then begin
        let dt = time -. monitor.prev_time in
        let dl = l -. monitor.prev_clock.(i) in
        if dl < (rate_floor *. dt) -. slack (Float.abs l +. dt) then
          monitor.violations <-
            {
              time;
              node = i;
              kind = "min-rate";
              detail = Printf.sprintf "dL=%.9g over dt=%.9g (floor %.3g)" dl dt rate_floor;
            }
            :: monitor.violations
      end;
      monitor.prev_clock.(i) <- l
    end
  done;
  monitor.prev_time <- time;
  monitor.primed <- true

let attach engine view ~params ~every ~until ?rate_floor ?(faults = []) () =
  if every <= 0. then invalid_arg "Invariant.attach: period must be positive";
  let rate_floor =
    match rate_floor with
    | Some f -> f
    | None -> 1. -. params.Params.rho
  in
  let monitor =
    {
      violations = [];
      probes = 0;
      prev_clock = Array.make view.Metrics.n 0.;
      prev_time = 0.;
      primed = false;
    }
  in
  let rec schedule time =
    if time <= until then
      Engine.at engine ~time (fun () ->
          probe view faults rate_floor monitor (Engine.now engine);
          schedule (time +. every))
  in
  schedule (Engine.now engine);
  monitor

let violations monitor = List.rev monitor.violations

let ok monitor = monitor.violations = []

let probes monitor = monitor.probes

let pp_violation fmt v =
  Format.fprintf fmt "t=%.6g node=%d %s: %s" v.time v.node v.kind v.detail
