module Engine = Dsim.Engine

type view = {
  n : int;
  clock_of : int -> float;
  lmax_of : int -> float;
  iter_edges : (int -> int -> unit) -> unit;
}

let fold_clocks view f init =
  let acc = ref init in
  for i = 0 to view.n - 1 do
    acc := f !acc (view.clock_of i)
  done;
  !acc

let global_skew view =
  let max_l = fold_clocks view Float.max neg_infinity in
  let min_l = fold_clocks view Float.min infinity in
  max_l -. min_l

let edge_skew view u v = Float.abs (view.clock_of u -. view.clock_of v)

let local_skew view =
  let worst = ref 0. in
  view.iter_edges (fun u v -> worst := Float.max !worst (edge_skew view u v));
  !worst

let lmax_lag view =
  let best = ref neg_infinity and worst = ref infinity in
  for i = 0 to view.n - 1 do
    let m = view.lmax_of i in
    if m > !best then best := m;
    if m < !worst then worst := m
  done;
  !best -. !worst

let clock_lag view =
  let lag = ref 0. in
  for i = 0 to view.n - 1 do
    lag := Float.max !lag (view.lmax_of i -. view.clock_of i)
  done;
  !lag

type sample = {
  time : float;
  global_skew : float;
  local_skew : float;
  lmax_lag : float;
  clock_lag : float;
  events : int;
}

type recorder = {
  mutable samples : sample list; (* newest first *)
  r_n : int; (* packs a watched pair (u, v) as the int u * r_n + v *)
  traces : (int, (float * float) list ref) Hashtbl.t;
}

let probe engine view recorder () =
  let time = Engine.now engine in
  recorder.samples <-
    {
      time;
      global_skew = global_skew view;
      local_skew = local_skew view;
      lmax_lag = lmax_lag view;
      clock_lag = clock_lag view;
      events = Engine.events_processed engine;
    }
    :: recorder.samples;
  (* Keys are packed ints, so the per-sample iteration hashes immediates
     instead of allocating an (int * int) tuple per watched pair. *)
  Hashtbl.iter
    (fun k trace ->
      trace := (time, edge_skew view (k / recorder.r_n) (k mod recorder.r_n)) :: !trace)
    recorder.traces

let attach engine view ~every ~until ?(watch = []) () =
  if every <= 0. then invalid_arg "Metrics.attach: sampling period must be positive";
  let recorder = { samples = []; r_n = view.n; traces = Hashtbl.create 4 } in
  List.iter
    (fun (u, v) ->
      let u, v = Dsim.Dyngraph.normalize u v in
      Hashtbl.replace recorder.traces ((u * recorder.r_n) + v) (ref []))
    watch;
  let rec schedule time =
    if time <= until then
      Engine.at engine ~time (fun () ->
          probe engine view recorder ();
          schedule (time +. every))
  in
  schedule (Engine.now engine);
  recorder

let samples recorder = List.rev recorder.samples

let pair_trace recorder (u, v) =
  let u, v = Dsim.Dyngraph.normalize u v in
  match Hashtbl.find_opt recorder.traces ((u * recorder.r_n) + v) with
  | Some trace -> List.rev !trace
  | None -> []

let recovery_time ~after ~bound samples =
  (* First sample time t >= after such that every sample from t onward has
     global_skew <= bound; the recovery time is t - after. Walking the
     time-sorted list backwards keeps this O(|samples|). *)
  let rec scan best = function
    | [] -> best
    | s :: earlier ->
      if s.time < after then best
      else if s.global_skew <= bound then scan (Some s.time) earlier
      else best (* a violation ends the maximal in-bound suffix *)
  in
  match scan None (List.rev samples) with
  | None -> None
  | Some t -> Some (Float.max 0. (t -. after))

let max_global_skew recorder =
  List.fold_left (fun acc s -> Float.max acc s.global_skew) 0. recorder.samples

let max_local_skew recorder =
  List.fold_left (fun acc s -> Float.max acc s.local_skew) 0. recorder.samples
